// Soil parameter estimation: from Wenner field soundings to a two-layer
// model to a grounding analysis.
//
// The paper's layer conductivities are "experimentally obtained"; this
// example shows the full workflow on a synthetic survey.
//
//   $ ./soil_estimation
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // Ground truth soil used to synthesize the survey (Barbera-like).
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::printf("True soil: rho1 = %.1f Ohm m, rho2 = %.1f Ohm m, H = %.2f m\n",
              truth.resistivity(0), truth.resistivity(1), truth.interface_depth(0));

  // Simulated Wenner sounding at standard spacings.
  std::vector<estimation::WennerReading> survey;
  std::printf("\n%8s %14s\n", "a (m)", "rho_a (Ohm m)");
  for (double a : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double rho = estimation::wenner_apparent_resistivity(truth, a);
    survey.push_back({a, rho});
    std::printf("%8.1f %14.2f\n", a, rho);
  }

  // Invert for the two-layer parameters.
  const estimation::TwoLayerFit fit = estimation::fit_two_layer(survey);
  std::printf("\nFitted soil (in %zu iterations, rms log-misfit %.2e):\n", fit.iterations,
              fit.rms_log_misfit);
  std::printf("  rho1 = %.1f Ohm m, rho2 = %.1f Ohm m, H = %.2f m\n",
              fit.soil.resistivity(0), fit.soil.resistivity(1), fit.soil.interface_depth(0));

  // Use the fitted model in an actual grounding analysis.
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  cad::DesignOptions options;
  options.analysis.gpr = 10e3;
  cad::GroundingSystem system(geom::make_rect_grid(spec), fit.soil, options);
  const cad::Report& report = system.analyze();
  std::printf("\nGrid analysis with fitted soil: Req = %.4f Ohm, I = %.2f kA\n",
              report.equivalent_resistance, report.total_current / 1e3);
  return 0;
}

// Soil parameter estimation: from Wenner field soundings to a two-layer
// model to a grounding analysis.
//
// The paper's layer conductivities are "experimentally obtained"; this
// example shows the full workflow on a synthetic survey.
//
//   $ ./soil_estimation
#include <cmath>
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // Ground truth soil used to synthesize the survey (Barbera-like).
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::printf("True soil: rho1 = %.1f Ohm m, rho2 = %.1f Ohm m, H = %.2f m\n",
              truth.resistivity(0), truth.resistivity(1), truth.interface_depth(0));

  // Simulated Wenner sounding at standard spacings.
  std::vector<estimation::WennerReading> survey;
  std::printf("\n%8s %14s\n", "a (m)", "rho_a (Ohm m)");
  for (double a : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double rho = estimation::wenner_apparent_resistivity(truth, a);
    survey.push_back({a, rho});
    std::printf("%8.1f %14.2f\n", a, rho);
  }

  // Invert for the two-layer parameters.
  const estimation::TwoLayerFit fit = estimation::fit_two_layer(survey);
  std::printf("\nFitted soil (in %zu iterations, rms log-misfit %.2e):\n", fit.iterations,
              fit.rms_log_misfit);
  std::printf("  rho1 = %.1f Ohm m, rho2 = %.1f Ohm m, H = %.2f m\n",
              fit.soil.resistivity(0), fit.soil.resistivity(1), fit.soil.interface_depth(0));

  // Use the fitted model in an actual grounding analysis, and quantify the
  // fit's leverage with a GPR sweep off one factorization: the normalized
  // problem is solved once per soil; every GPR scales it (paper §2), and a
  // FactoredSystem would answer arbitrary further right-hand sides without
  // refactoring.
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  cad::DesignOptions options;
  options.analysis.gpr = 10e3;
  engine::Engine engine;
  cad::GroundingSystem system(geom::make_rect_grid(spec), fit.soil, options);
  const cad::Report& report = system.analyze(engine);
  std::printf("\nGrid analysis with fitted soil: Req = %.4f Ohm, I = %.2f kA\n",
              report.equivalent_resistance, report.total_current / 1e3);

  // Cross-check against the ground truth through the same warm engine; the
  // soil change re-fingerprints the cache automatically.
  cad::GroundingSystem truth_system(geom::make_rect_grid(spec), truth, options);
  const cad::Report& truth_report = truth_system.analyze(engine);
  std::printf("Same grid in the true soil:     Req = %.4f Ohm (fit error %.2f%%)\n",
              truth_report.equivalent_resistance,
              100.0 * std::abs(report.equivalent_resistance -
                               truth_report.equivalent_resistance) /
                  truth_report.equivalent_resistance);
  return 0;
}

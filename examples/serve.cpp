// Engine-as-a-service: run the BEM engine behind a multi-tenant network
// front door and talk to it over a real socket.
//
//   $ ./serve
//
// One process plays both sides. The server half registers two tenants —
// "utility" with roomy quotas and "consultant" with tight ones — and serves
// the line-delimited JSON protocol on an ephemeral loopback port. The
// client half then walks the whole wire surface: submit analyses, poll and
// wait for reports, trip the admission controller's typed rejections
// (oversized model, exhausted quota), read the per-tenant bills, and
// finally shut the service down gracefully over the wire. Everything the
// clients see — admission, per-tenant warm caches, cost accounting — lives
// in service::Dispatcher; the socket layer only moves bytes.
#include <cstdio>
#include <string>

#include "src/ebem.hpp"

namespace {

using ebem::service::Json;

std::string submit_line(const std::string& tenant, std::size_t cells, const char* type) {
  const double extent = 5.0 * static_cast<double>(cells);
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"type\":\"%s\",\"tenant\":\"%s\",\"model\":{\"grid\":{\"length_x\":%.1f,"
                "\"length_y\":%.1f,\"cells_x\":%zu,\"cells_y\":%zu},\"soil\":{"
                "\"conductivities\":[0.005,0.016],\"thicknesses\":[1.0]}}}",
                type, tenant.c_str(), extent, extent, cells, cells);
  return buffer;
}

double field(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_number() ? value->as_number() : 0.0;
}

std::string text(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_string() ? value->as_string() : std::string();
}

}  // namespace

int main() {
  using namespace ebem;

  // --- server side --------------------------------------------------------

  // Two tenants, each with its own engine + warm congruence cache behind
  // one Dispatcher; the "consultant" tenant is capped at 2 outstanding runs
  // and 60 elements per model.
  service::ServiceConfig config;
  service::TenantConfig utility;
  utility.name = "utility";
  utility.quotas.max_outstanding_runs = 8;
  utility.gpr = 10e3;  // this tenant's studies run at a 10 kV GPR
  service::TenantConfig consultant;
  consultant.name = "consultant";
  consultant.quotas.max_outstanding_runs = 2;
  consultant.quotas.max_elements_per_model = 60;
  consultant.quotas.max_runs_per_window = 2;  // at most 2 admissions per minute
  consultant.quotas.window_seconds = 60.0;
  config.tenants = {utility, consultant};

  service::Dispatcher dispatcher(config);
  service::Server server(dispatcher);  // port 0 -> kernel picks a free port
  std::printf("serving on 127.0.0.1:%u\n\n", server.port());

  // --- client side --------------------------------------------------------

  service::Client client(server.port());

  // 1. Submit an analysis and wait for its report on the same connection.
  const Json submitted =
      service::decode_response(client.call(submit_line("utility", 4, "submit_analysis")));
  std::printf("utility submitted run %.0f (%.0f elements)\n", field(submitted, "run_id"),
              field(submitted, "elements"));
  const std::string wait_line =
      "{\"type\":\"get_report\",\"tenant\":\"utility\",\"run_id\":" +
      std::to_string(static_cast<long long>(field(submitted, "run_id"))) +
      ",\"wait_ms\":30000}";
  const Json report = service::decode_response(client.call(wait_line));
  std::printf("  status=%s  R_eq=%.4f Ohm  I=%.1f A  (assembly %.1f ms, solve %.1f ms)\n",
              text(report, "status").c_str(), field(report, "equivalent_resistance"),
              field(report, "total_current"), 1e3 * field(report, "assembly_seconds"),
              1e3 * field(report, "solve_seconds"));

  // 2. Typed rejections: the consultant's quotas stop bad requests at the
  //    door — the engine never sees them.
  const Json too_large =
      service::decode_response(client.call(submit_line("consultant", 8, "submit_analysis")));
  std::printf("\nconsultant, 8x8 grid:   %s (%s)\n", text(too_large, "code").c_str(),
              text(too_large, "message").c_str());
  (void)client.call(submit_line("consultant", 3, "submit_analysis"));
  (void)client.call(submit_line("consultant", 3, "submit_analysis"));
  const Json over_quota =
      service::decode_response(client.call(submit_line("consultant", 3, "submit_analysis")));
  // Third submit in the window: quota_exceeded while the first two are still
  // in flight, rate_limited once they finish — rejected at the door either way.
  std::printf("consultant, 3rd submit:  %s\n", text(over_quota, "code").c_str());

  // 3. Graceful shutdown over the wire: stop admitting, drain in-flight
  //    runs (the consultant's two are still cooking), flush the accounts.
  const Json ack = service::decode_response(client.call("{\"type\":\"shutdown\"}"));
  std::printf("\nshutdown: %s (harvested %.0f runs)\n", text(ack, "type").c_str(),
              field(ack, "runs_harvested"));
  const Json refused =
      service::decode_response(client.call(submit_line("utility", 2, "submit_analysis")));
  std::printf("post-shutdown submit: %s\n", text(refused, "code").c_str());

  // 4. Per-tenant bills: every completed run's PhaseReport landed on its
  //    tenant's account (rejections tallied too), and the final accounts
  //    stay readable after the drain.
  for (const char* tenant : {"utility", "consultant"}) {
    const Json stats = service::decode_response(
        client.call(std::string("{\"type\":\"stats\",\"tenant\":\"") + tenant + "\"}"));
    std::printf("\n%s bill: %.0f done / %.0f rejected, %.0f elements, %.1f ms compute, "
                "cache %.0f hits\n",
                tenant, field(stats, "runs_completed"), field(stats, "runs_rejected"),
                field(stats, "elements_billed"), 1e3 * field(stats, "total_seconds"),
                field(stats, "cache_hits"));
  }

  server.stop();
  return 0;
}

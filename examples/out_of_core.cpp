// Out-of-core analysis: run a grounding-grid study with only a fraction of
// the coefficient matrix resident in memory.
//
//   $ ./out_of_core
//
// The Galerkin matrix is the one O(N^2) object of the method. By default it
// lives in an in-memory tile arena; setting a residency budget on
// engine::ExecutionConfig::storage swaps in the file-backed spill pager
// (la::SpillTileStore), so grids whose matrix exceeds RAM still assemble,
// factor and solve — tiles beyond the budget page through an anonymous
// scratch file, and the eviction/IO counters land on the session report.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // 1. A 15 x 15 cell bench-style grid: big enough that the tile pager has
  //    real work, small enough to run in seconds.
  geom::RectGridSpec spec;
  spec.length_x = 75.0;
  spec.length_y = 75.0;
  spec.cells_x = 15;
  spec.cells_y = 15;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)), soil);

  // 2. Reference session: fully resident (the default in-memory arena).
  engine::Engine resident;
  const bem::AnalysisResult reference = resident.analyze(model);
  const std::size_t n = reference.sigma.size();

  // 3. Out-of-core session: 32 x 32 tiles, capped at 40% of the matrix
  //    bytes resident per store (matrix and Cholesky factor each hold one
  //    budget). spill_dir defaults to "." — point it at fast local scratch
  //    in production.
  engine::ExecutionConfig config;
  config.storage.tile_size = 32;
  config.storage.residency_budget_bytes =
      la::TileLayout(n, 32).total_bytes() * 2 / 5;
  // Skip the solve's residual statistic: its O(N^2) check matvec would
  // re-page the whole matrix once more per analysis.
  config.measure_residual = false;
  engine::Engine spilling(config);
  const bem::AnalysisResult result = spilling.analyze(model);

  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = reference.sigma[i] != 0.0 ? reference.sigma[i] : 1.0;
    worst = std::max(worst, std::abs(result.sigma[i] - reference.sigma[i]) / std::abs(scale));
  }

  std::printf("N = %zu unknowns, matrix tiles = %zu bytes total\n", n,
              la::TileLayout(n, 32).total_bytes());
  std::printf("residency budget   = %zu bytes per store (40%%)\n",
              config.storage.residency_budget_bytes);
  std::printf("Req resident       = %.6f Ohm\n", reference.equivalent_resistance);
  std::printf("Req out-of-core    = %.6f Ohm\n", result.equivalent_resistance);
  std::printf("max rel deviation  = %.2e\n", worst);
  std::printf("pager counters     : %.0f evictions, %.0f spill writes, %.0f read-backs\n",
              spilling.report().counter(engine::kTileEvictionsCounter),
              spilling.report().counter(engine::kTileSpillWritesCounter),
              spilling.report().counter(engine::kTileSpillReadsCounter));
  std::printf("\n%s\n", spilling.report().to_string().c_str());
  return worst <= 1e-12 ? 0 : 1;
}

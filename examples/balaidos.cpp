// Balaidos substation reproduction (paper §5.2, Table 5.1, Figs. 5.3-5.4).
//
// Analyzes the rod-supplemented Balaidos grid under three soil models and
// prints Table 5.1 next to the paper's values.
//
//   $ ./balaidos
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BalaidosCase balaidos = cad::balaidos_case();
  std::printf("Balaidos grounding system: %zu conductors (incl. 67 rods), GPR = %.0f kV\n\n",
              balaidos.conductors.size(), balaidos.gpr / 1e3);

  cad::DesignOptions options;
  options.analysis.gpr = balaidos.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  io::Table table({"Soil Model", "Req (Ohm)", "I (kA)", "paper Req", "paper I"});
  const struct {
    const char* name;
    soil::LayeredSoil soil;
    double paper_req;
    double paper_current;
  } models[] = {
      {"A (uniform)", balaidos.soil_a, 0.3366, 29.71},
      {"B (2-layer, h=0.7m)", balaidos.soil_b, 0.3522, 28.39},
      {"C (2-layer, h=1.0m)", balaidos.soil_c, 0.4860, 20.58},
  };

  for (const auto& model : models) {
    cad::GroundingSystem system(balaidos.conductors, model.soil, options);
    const cad::Report& report = system.analyze();
    table.add_row({model.name, io::Table::num(report.equivalent_resistance),
                   io::Table::num(report.total_current / 1e3, 2),
                   io::Table::num(model.paper_req), io::Table::num(model.paper_current, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper Table 5.1 reference: results vary noticeably across soil models,\n"
              "which is the argument for multi-layer analysis in grounding design.\n");
  return 0;
}

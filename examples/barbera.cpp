// Barbera substation reproduction (paper §5.1, Figs. 5.1-5.2).
//
// Analyzes the right-triangle Barbera grid in the uniform and two-layer
// soil models and renders the earth-surface potential distributions.
//
//   $ ./barbera [refinement]     (default 12; paper scale is ~15)
#include <cstdio>
#include <cstdlib>

#include "src/ebem.hpp"

int main(int argc, char** argv) {
  using namespace ebem;
  const std::size_t refinement = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

  const cad::BarberaCase barbera = cad::barbera_case(refinement);
  std::printf("Barbera grounding grid: %zu conductor segments, GPR = %.0f kV\n",
              barbera.conductors.size(), barbera.gpr / 1e3);

  cad::DesignOptions options;
  options.analysis.gpr = barbera.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  for (const auto& [name, soil_model] :
       {std::pair{"Uniform soil model", barbera.uniform_soil},
        std::pair{"Two-layer soil model", barbera.two_layer_soil}}) {
    cad::GroundingSystem system(barbera.conductors, soil_model, options);
    const cad::Report& report = system.analyze();
    std::printf("\n--- %s ---\n", name);
    std::printf("Equivalent resistance  %.4f Ohm   (paper: 0.3128 uniform / 0.3704 two-layer)\n",
                report.equivalent_resistance);
    std::printf("Total surge current    %.2f kA    (paper: 31.97 uniform / 26.99 two-layer)\n",
                report.total_current / 1e3);

    // Surface potential map over the substation site (Fig. 5.2).
    const auto evaluator = system.potential_evaluator();
    const auto grid = evaluator.surface_grid(-20.0, 100.0, -20.0, 160.0, 37, 37);
    std::printf("Surface potential distribution (x10 kV bands):\n%s",
                post::ascii_contour(grid, 60).c_str());
  }
  return 0;
}

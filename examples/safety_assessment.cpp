// Safety assessment workflow: check a design against IEEE Std 80 touch and
// step limits, then strengthen it until it passes.
//
//   $ ./safety_assessment
#include <cstdio>

#include "src/ebem.hpp"

namespace {

ebem::post::SafetyAssessment assess(ebem::engine::Engine& engine,
                                    const std::vector<ebem::geom::Conductor>& grid,
                                    const ebem::soil::LayeredSoil& soil, double gpr,
                                    const ebem::post::SafetyCriteria& criteria) {
  ebem::cad::DesignOptions options;
  options.analysis.gpr = gpr;
  ebem::cad::GroundingSystem system(grid, soil, options);
  // Both assessments run on one engine: the strengthened design replays
  // every elemental block the sparse design shares with it.
  system.analyze(engine);
  const auto evaluator = system.potential_evaluator();
  return ebem::post::assess_safety(evaluator, gpr, -5.0, 45.0, -5.0, 35.0, 11, 9, criteria);
}

void print(const char* label, const ebem::post::SafetyAssessment& a) {
  std::printf("%s\n", label);
  std::printf("  touch: %7.0f V (limit %5.0f V)  %s\n", a.max_touch_voltage, a.tolerable_touch,
              a.touch_safe() ? "OK" : "UNSAFE");
  std::printf("  step:  %7.0f V (limit %5.0f V)  %s\n", a.max_step_voltage, a.tolerable_step,
              a.step_safe() ? "OK" : "UNSAFE");
}

}  // namespace

int main() {
  using namespace ebem;
  const double gpr = 5e3;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.02, 1.0);

  post::SafetyCriteria criteria;
  criteria.fault_duration = 0.5;
  criteria.soil_resistivity = 200.0;       // native upper-layer rho
  criteria.surface_resistivity = 2500.0;   // crushed-rock dressing
  criteria.surface_layer_thickness = 0.1;

  engine::Engine engine;

  // Initial design: a sparse 40 x 30 m grid.
  geom::RectGridSpec sparse;
  sparse.length_x = 40.0;
  sparse.length_y = 30.0;
  sparse.cells_x = 2;
  sparse.cells_y = 2;
  print("Initial design (2x2 mesh):",
        assess(engine, geom::make_rect_grid(sparse), soil, gpr, criteria));

  // Strengthened design: denser mesh + perimeter rods reaching the
  // conductive lower layer.
  geom::RectGridSpec dense = sparse;
  dense.cells_x = 6;
  dense.cells_y = 5;
  auto grid = geom::make_rect_grid(dense);
  geom::RodSpec rod;
  rod.length = 3.0;
  geom::add_rods(grid, geom::perimeter_rod_positions(dense, 16), dense.depth, rod);
  print("\nStrengthened design (6x5 mesh + 16 rods):",
        assess(engine, grid, soil, gpr, criteria));

  std::printf("\nMesh densification flattens the surface potential inside the grid and the\n"
              "rods couple into the conductive lower layer, pulling touch voltages down.\n");
  return 0;
}

// Schedule tuning: pick the best OpenMP-style schedule for matrix
// generation on *your* machine (paper §6.2, Table 6.2 methodology).
//
// Measures the real per-column costs of the triangular assembly loop, then
// replays them through the schedule simulator for the processor counts you
// care about, and cross-checks with a real threaded run.
//
//   $ ./schedule_tuning
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // A mid-size two-layer case so matrix generation dominates.
  geom::RectGridSpec spec;
  spec.length_x = 60.0;
  spec.length_y = 60.0;
  spec.cells_x = 6;
  spec.cells_y = 6;
  const auto grid = geom::make_rect_grid(spec);
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);

  cad::DesignOptions options;
  options.analysis.assembly.series.tolerance = 1e-6;
  // Execution setup is the Engine's job now: one config carries the
  // measurement switch; cache off so costs reflect real integration work.
  engine::ExecutionConfig config;
  config.measure_column_costs = true;
  config.use_congruence_cache = false;
  engine::Engine engine(config);
  cad::GroundingSystem system(grid, soil, options);
  const cad::Report& report = system.analyze(engine);
  std::printf("Measured %zu column costs (matrix generation %.2f s CPU)\n\n",
              report.column_costs.size(),
              report.phases.cpu_seconds(Phase::kMatrixGeneration));

  const par::Schedule candidates[] = {
      par::Schedule::static_blocked(),   par::Schedule::static_chunked(16),
      par::Schedule::static_chunked(1),  par::Schedule::dynamic(16),
      par::Schedule::dynamic(1),         par::Schedule::guided(1),
  };

  io::Table table({"Schedule", "p=2", "p=4", "p=8"});
  for (const par::Schedule& schedule : candidates) {
    std::vector<std::string> row{par::to_string(schedule)};
    for (std::size_t p : {2u, 4u, 8u}) {
      row.push_back(io::Table::num(
          par::simulated_speedup(report.column_costs, p, schedule), 2));
    }
    table.add_row(row);
  }
  std::printf("Predicted speed-up by schedule (simulated from measured costs):\n%s\n",
              table.to_string().c_str());

  std::printf("Recommendation: Dynamic,1 or Guided,1 — matching the paper's finding\n"
              "that lively schedules win on the linearly-decreasing column costs.\n");
  return 0;
}

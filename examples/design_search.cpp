// Automated design search: give the CAD loop a site, a soil model and the
// design goals; it walks the candidate ladder until Req and IEEE Std 80
// touch/step limits are met.
//
//   $ ./design_search
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // Site and soil (two-layer: resistive crust over conductive subsoil).
  cad::DesignSearchOptions options;
  options.site_x = 50.0;
  options.site_y = 40.0;
  options.rod.length = 3.0;

  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.03, 1.2);

  cad::DesignGoal goal;
  goal.gpr = 1.5e3;
  goal.max_resistance = 0.6;
  goal.criteria.fault_duration = 0.5;
  goal.criteria.soil_resistivity = 200.0;
  goal.criteria.surface_resistivity = 2500.0;  // crushed-rock dressing

  std::printf("Goal: Req <= %.2f Ohm, touch <= %.0f V, step <= %.0f V at GPR %.0f kV\n\n",
              goal.max_resistance, post::tolerable_touch_voltage(goal.criteria),
              post::tolerable_step_voltage(goal.criteria), goal.gpr / 1e3);

  const cad::DesignSearchResult result = cad::search_design(soil, goal, options);

  // The whole ladder ran through one engine::Study, so each candidate's
  // "cache" column shows how much of its matrix generation was replayed
  // from the blocks earlier candidates already integrated.
  io::Table table({"candidate", "Req (Ohm)", "max touch (V)", "max step (V)", "cache hit %",
                   "verdict"});
  for (const cad::DesignCandidate& candidate : result.history) {
    table.add_row({candidate.label(), io::Table::num(candidate.resistance),
                   io::Table::num(candidate.max_touch, 0), io::Table::num(candidate.max_step, 0),
                   io::Table::num(100.0 * candidate.cache.hit_rate(), 1),
                   candidate.satisfied ? "PASS" : "fail"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Ladder totals: %zu cache hits, %zu misses (%.1f%% of pair integrations saved)\n\n",
              result.cache_stats.hits, result.cache_stats.misses,
              100.0 * result.cache_stats.hit_rate());

  if (result.satisfied) {
    std::printf("Chosen design: %s (%zu conductors)\n", result.chosen.label().c_str(),
                result.conductors.size());
  } else {
    std::printf("No candidate met the goals; strengthen the ladder (deeper rods, denser\n"
                "meshes) or revisit the GPR assumption.\n");
  }
  return 0;
}

// Automated design search: give the CAD loop a site, a soil model and the
// design goals; it walks the candidate ladder until Req and IEEE Std 80
// touch/step limits are met.
//
//   $ ./design_search
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // Site and soil (two-layer: resistive crust over conductive subsoil).
  cad::DesignSearchOptions options;
  options.site_x = 50.0;
  options.site_y = 40.0;
  options.rod.length = 3.0;

  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.03, 1.2);

  cad::DesignGoal goal;
  goal.gpr = 1.5e3;
  goal.max_resistance = 0.6;
  goal.criteria.fault_duration = 0.5;
  goal.criteria.soil_resistivity = 200.0;
  goal.criteria.surface_resistivity = 2500.0;  // crushed-rock dressing

  std::printf("Goal: Req <= %.2f Ohm, touch <= %.0f V, step <= %.0f V at GPR %.0f kV\n\n",
              goal.max_resistance, post::tolerable_touch_voltage(goal.criteria),
              post::tolerable_step_voltage(goal.criteria), goal.gpr / 1e3);

  const cad::DesignSearchResult result = cad::search_design(soil, goal, options);

  io::Table table({"candidate", "Req (Ohm)", "max touch (V)", "max step (V)", "verdict"});
  for (const cad::DesignCandidate& candidate : result.history) {
    table.add_row({candidate.label(), io::Table::num(candidate.resistance),
                   io::Table::num(candidate.max_touch, 0), io::Table::num(candidate.max_step, 0),
                   candidate.satisfied ? "PASS" : "fail"});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (result.satisfied) {
    std::printf("Chosen design: %s (%zu conductors)\n", result.chosen.label().c_str(),
                result.conductors.size());
  } else {
    std::printf("No candidate met the goals; strengthen the ladder (deeper rods, denser\n"
                "meshes) or revisit the GPR assumption.\n");
  }
  return 0;
}

// Quickstart: design a small grounding grid, analyze it in uniform and
// two-layer soil, and read off the engineering numbers.
//
//   $ ./quickstart
//
// Walkthrough of the core public API: grid builders -> LayeredSoil ->
// GroundingSystem -> report -> surface potentials.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // 1. Describe the grid: a 40 x 30 m mesh with 10 m spacing, buried 0.8 m,
  //    12 mm conductors, plus four corner rods.
  geom::RectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 30.0;
  spec.cells_x = 4;
  spec.cells_y = 3;
  spec.depth = 0.8;
  spec.radius = 0.006;
  std::vector<geom::Conductor> grid = geom::make_rect_grid(spec);

  geom::RodSpec rod;  // 1.5 m x 14 mm rods
  geom::add_rods(grid, {{0, 0, 0}, {40, 0, 0}, {0, 30, 0}, {40, 30, 0}}, spec.depth, rod);

  // 2. Pick the soil models to compare.
  const auto uniform = soil::LayeredSoil::uniform(0.02);             // 50 Ohm m
  const auto layered = soil::LayeredSoil::two_layer(0.005, 0.02, 1.0);  // 200 / 50 Ohm m

  // 3. Analyze at a 10 kV Ground Potential Rise.
  cad::DesignOptions options;
  options.analysis.gpr = 10e3;

  for (const auto& [name, soil_model] :
       {std::pair{"uniform", uniform}, std::pair{"two-layer", layered}}) {
    cad::GroundingSystem system(grid, soil_model, options);
    const cad::Report& report = system.analyze();
    std::printf("=== %s soil ===\n", name);
    std::printf("  Req  = %.4f Ohm\n", report.equivalent_resistance);
    std::printf("  I    = %.2f kA\n", report.total_current / 1e3);
    std::printf("  mesh = %zu elements, %zu DoF\n", report.element_count, report.dof_count);

    // 4. Surface potential right above the grid center and one step outside.
    const auto evaluator = system.potential_evaluator();
    std::printf("  V(center)  = %.0f V\n", evaluator.at({20.0, 15.0, 0.0}));
    std::printf("  V(outside) = %.0f V\n\n", evaluator.at({60.0, 15.0, 0.0}));
  }
  return 0;
}

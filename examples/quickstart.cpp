// Quickstart: design a small grounding grid, analyze it in uniform and
// two-layer soil, and read off the engineering numbers.
//
//   $ ./quickstart
//
// Walkthrough of the core public API: grid builders -> LayeredSoil ->
// engine::Engine (one execution context for the whole session) ->
// GroundingSystem -> report -> surface potentials.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // 1. Describe the grid: a 40 x 30 m mesh with 10 m spacing, buried 0.8 m,
  //    12 mm conductors, plus four corner rods.
  geom::RectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 30.0;
  spec.cells_x = 4;
  spec.cells_y = 3;
  spec.depth = 0.8;
  spec.radius = 0.006;
  std::vector<geom::Conductor> grid = geom::make_rect_grid(spec);

  geom::RodSpec rod;  // 1.5 m x 14 mm rods
  geom::add_rods(grid, {{0, 0, 0}, {40, 0, 0}, {0, 30, 0}, {40, 30, 0}}, spec.depth, rod);

  // 2. Pick the soil models to compare.
  const auto uniform = soil::LayeredSoil::uniform(0.02);             // 50 Ohm m
  const auto layered = soil::LayeredSoil::two_layer(0.005, 0.02, 1.0);  // 200 / 50 Ohm m

  // 3. One Engine for the whole session: every execution knob (threads,
  //    schedule, warm congruence cache, solver) lives in a single validated
  //    ExecutionConfig, configured once. The defaults — serial, direct
  //    solver, warm cache on — are right for a quick look; bump num_threads
  //    for large grids. The cache re-warms automatically when the soil
  //    changes between runs.
  engine::Engine engine;

  // 4. Analyze at a 10 kV Ground Potential Rise. Physics options (GPR,
  //    meshing, series tolerances) stay with the design; the engine carries
  //    the execution state.
  cad::DesignOptions options;
  options.analysis.gpr = 10e3;

  for (const auto& [name, soil_model] :
       {std::pair{"uniform", uniform}, std::pair{"two-layer", layered}}) {
    cad::GroundingSystem system(grid, soil_model, options);
    const cad::Report& report = system.analyze(engine);
    std::printf("=== %s soil ===\n", name);
    std::printf("  Req  = %.4f Ohm\n", report.equivalent_resistance);
    std::printf("  I    = %.2f kA\n", report.total_current / 1e3);
    std::printf("  mesh = %zu elements, %zu DoF\n", report.element_count, report.dof_count);
    std::printf("  cache: %zu replayed / %zu integrated\n", report.cache_stats.hits,
                report.cache_stats.misses);

    // 5. Surface potential right above the grid center and one step outside.
    const auto evaluator = system.potential_evaluator();
    std::printf("  V(center)  = %.0f V\n", evaluator.at({20.0, 15.0, 0.0}));
    std::printf("  V(outside) = %.0f V\n\n", evaluator.at({60.0, 15.0, 0.0}));
  }

  // 6. Factor once, solve often: a FactoredSystem answers any number of
  //    right-hand sides with substitutions only — the pattern parameter
  //    sweeps and safety scans build on (see safety_assessment.cpp).
  cad::GroundingSystem system(grid, layered, options);
  engine::Study study(engine, options.analysis);
  const engine::FactoredSystem factored = study.factor(system.model());
  const std::vector<double> sigma_hat = factored.solve();  // unit-GPR solution
  double current = 0.0;
  for (std::size_t i = 0; i < sigma_hat.size(); ++i) current += factored.rhs()[i] * sigma_hat[i];
  std::printf("Factored once (N = %zu): Req from factor reuse = %.4f Ohm\n", factored.size(),
              1.0 / current);
  std::printf("Session totals: %.0f factorizations, %.0f RHS solved, cache %zu entries\n",
              engine.report().counter(engine::kFactorizationsCounter),
              engine.report().counter(engine::kRhsSolvedCounter),
              engine.cache_stats().entries);
  return 0;
}

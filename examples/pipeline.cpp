// Pipelined sessions: submit a whole ladder of candidate designs at once,
// let the engine's scheduler overlap their assemble/factor/solve stages,
// and consume the futures in any order.
//
//   $ ./pipeline
//
// Walkthrough of the asynchronous engine API: Engine/Study::submit ->
// RunFuture (wait / ready / get, per-run PhaseReport and cache delta) ->
// out-of-order consumption -> session totals. This is the machinery
// cad::search_design uses for its candidate ladder; here it is driven by
// hand on a ladder of growing uniform grids.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;

  // A design ladder: growing extent, fixed 5 m cell size — each candidate's
  // element pairs are mostly translated copies of the previous ones, so the
  // engine's warm congruence cache pays off across the whole batch.
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::vector<bem::BemModel> candidates;
  for (const std::size_t cells : {4u, 5u, 6u, 7u}) {
    geom::RectGridSpec spec;
    spec.length_x = 5.0 * static_cast<double>(cells);
    spec.length_y = 5.0 * static_cast<double>(cells);
    spec.cells_x = cells;
    spec.cells_y = cells;
    candidates.emplace_back(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
  }

  // One engine, one Study pinning the physics, the whole ladder submitted
  // before the first result is touched. submit() returns immediately; the
  // scheduler decomposes every run into assemble -> factor -> solve stages
  // and pipelines them over the shared pool (pipeline_width runs in
  // flight), so candidate k+1 assembles while candidate k factors.
  engine::Engine engine;
  engine::Study study(engine);
  std::vector<engine::RunFuture> futures;
  futures.reserve(candidates.size());
  for (const bem::BemModel& model : candidates) {
    futures.push_back(study.submit(model));
  }
  std::printf("submitted %zu candidates; %zu already finished\n", futures.size(),
              static_cast<std::size_t>(
                  std::count_if(futures.begin(), futures.end(),
                                [](const engine::RunFuture& f) { return f.ready(); })));

  // Futures are independent handles: consume them in any order. Walk the
  // ladder backwards — the largest candidate first — and read each run's
  // result, its own Table 6.1 report and its exact warm-cache delta.
  for (std::size_t k = futures.size(); k-- > 0;) {
    const bem::AnalysisResult& result = futures[k].get();
    const bem::CongruenceCacheStats& cache = futures[k].cache_delta();
    std::printf("\n--- candidate %zu (%zu elements) ---\n", k,
                candidates[k].element_count());
    std::printf("  Req = %.4f Ohm\n", result.equivalent_resistance);
    std::printf("  cache: %zu replayed / %zu integrated (%.0f%% warm)\n", cache.hits,
                cache.misses, 100.0 * cache.hit_rate());
    std::printf("%s", futures[k].report().to_string().c_str());
  }

  // The session report accumulated every run (merge is thread-safe, so
  // concurrent completions lose nothing).
  std::printf("\n=== session totals ===\n");
  std::printf("%.0f factorizations, cache %.0f hits / %.0f misses\n",
              engine.report().counter(engine::kFactorizationsCounter),
              engine.report().counter(bem::kCacheHitsCounter),
              engine.report().counter(bem::kCacheMissesCounter));
  return 0;
}

// Three-layer soil analysis — the extension beyond the paper's two-layer
// evaluation (its §4.2 names the multi-layer case and warns about the cost).
//
// A small grid is analyzed over a three-layer profile (dry crust /
// clay / bedrock-ish) via the spectral kernel; the same design is also run
// with the two-layer truncations of the profile to show what the third
// layer changes.
//
//   $ ./three_layer
#include <cstdio>

#include "src/ebem.hpp"

namespace {

double analyze(const std::vector<ebem::geom::Conductor>& grid,
               const ebem::soil::LayeredSoil& soil) {
  ebem::cad::DesignOptions options;
  options.analysis.gpr = 10e3;
  options.analysis.assembly.hankel.tolerance = 1e-6;
  ebem::cad::GroundingSystem system(grid, soil, options);
  return system.analyze().equivalent_resistance;
}

}  // namespace

int main() {
  using namespace ebem;

  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const auto grid = geom::make_rect_grid(spec);

  // Profile: 1.5 m of resistive crust (400 Ohm m) over 3 m of conductive
  // clay (25 Ohm m) over resistive basement (250 Ohm m).
  const soil::LayeredSoil three({soil::Layer{1.0 / 400.0, 1.5}, soil::Layer{1.0 / 25.0, 3.0},
                                 soil::Layer{1.0 / 250.0, 0.0}});
  // Two-layer truncations an engineer might use instead.
  const auto ignore_basement = soil::LayeredSoil::two_layer(1.0 / 400.0, 1.0 / 25.0, 1.5);
  const auto ignore_clay = soil::LayeredSoil::two_layer(1.0 / 400.0, 1.0 / 250.0, 1.5);

  std::printf("20 x 20 m grid at 0.8 m depth, GPR 10 kV\n\n");
  io::Table table({"Soil model", "Req (Ohm)"});
  ebem::WallTimer timer;
  table.add_row({"3-layer (crust/clay/basement)", io::Table::num(analyze(grid, three))});
  const double three_layer_seconds = timer.seconds();
  table.add_row({"2-layer (ignores basement)", io::Table::num(analyze(grid, ignore_basement))});
  table.add_row({"2-layer (ignores clay)", io::Table::num(analyze(grid, ignore_clay))});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("The conductive clay dominates: ignoring it (bottom row) badly\n"
              "over-predicts Req; ignoring the basement is mild here. The 3-layer\n"
              "run needed %.1f s — the cost regime the paper calls 'un-admissible'\n"
              "for large grids without parallel hardware (§4.2).\n",
              three_layer_seconds);
  return 0;
}

// Scenario campaigns: from one Wenner sounding to a percentile safety
// report.
//
//   $ ./campaign
//
// The single-soil workflow (soil_estimation.cpp -> safety_assessment.cpp)
// answers "is this design safe for the fitted soil?". This walkthrough
// answers the campaign question instead: the sounding is noisy, so the
// fitted two-layer model carries uncertainty — what does the *distribution*
// of plausible soils do to GPR and the touch/step margins? And separately:
// what happens to the same design when conductors corrode away?
#include <cstdio>
#include <random>
#include <vector>

#include "src/ebem.hpp"

namespace {

void print_metric(const char* name, const ebem::campaign::MetricSummary& metric,
                  const char* unit) {
  std::printf("  %-14s P5 %9.2f   P50 %9.2f   P95 %9.2f   P99 %9.2f %s\n", name, metric.p5(),
              metric.p50(), metric.p95(), metric.p99(), unit);
}

}  // namespace

int main() {
  using namespace ebem;

  // --- 1. A noisy sounding and its fit -----------------------------------
  // Synthetic Wenner survey over a "true" site (rho1=200, rho2=62.5, h=1 m)
  // with 5% log-normal measurement noise — the field reality the campaign
  // machinery exists for.
  const auto true_site = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::mt19937 rng(7);
  std::normal_distribution<double> noise(0.0, 0.05);
  std::vector<estimation::WennerReading> survey;
  for (const double a : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    survey.push_back({a, estimation::wenner_apparent_resistivity(true_site, a) *
                             std::exp(noise(rng))});
  }
  const estimation::TwoLayerFit fit = estimation::fit_two_layer(survey);
  std::printf("fit: rho1 %.1f  rho2 %.1f  h %.2f   (log-sigmas %.3f / %.3f / %.3f)\n",
              fit.soil.resistivity(0), fit.soil.resistivity(1), fit.soil.interface_depth(0),
              fit.sigma_log_rho1, fit.sigma_log_rho2, fit.sigma_log_h);

  // --- 2. The design under study -----------------------------------------
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 6;
  spec.cells_y = 6;
  const std::vector<geom::Conductor> grid = geom::make_rect_grid(spec);

  // --- 3. Soil campaign: the fit's own uncertainty, propagated ------------
  // SoilDistribution::from_fit turns the inversion's per-parameter sigmas
  // into a sampling distribution; 128 stratified scenarios, seeded — the
  // same seed always yields the same ensemble and the same percentiles.
  const campaign::SoilEnsemble soils(campaign::SoilDistribution::from_fit(fit), 128, 42);

  campaign::CampaignOptions options;
  options.window = 4;               // in-flight cap: backpressure, not queue
  options.fault_current = 1000.0;   // GPR_i = I_f x R_eq_i per scenario
  campaign::SafetyPatch patch;
  patch.x1 = spec.length_x;
  patch.y1 = spec.length_y;
  patch.criteria.surface_resistivity = 3000.0;  // 10 cm gravel layer
  options.safety = patch;

  engine::Engine engine;
  engine::Study study(engine);
  campaign::Runner runner(study, options);
  const campaign::CampaignResult soil_report = runner.run(
      campaign::SoilSweep(grid, {}, soils));

  std::printf("\n=== soil campaign: %zu scenarios (1 kA fault) ===\n", soil_report.completed);
  print_metric("R_eq", soil_report.resistance, "Ohm");
  print_metric("GPR", soil_report.gpr, "V");
  print_metric("touch margin", soil_report.touch_margin, "V");
  print_metric("step margin", soil_report.step_margin, "V");
  std::printf("  violations: %zu touch, %zu step of %zu scenarios\n",
              soil_report.touch_violations, soil_report.step_violations, soil_report.completed);
  std::printf("  fingerprint-guard cost: %.0f cache drops, %.3f s parked at the gate\n",
              soil_report.phases.counter(engine::kCacheDropsCounter),
              soil_report.phases.counter(engine::kGateWaitSecondsCounter));

  // --- 4. Damage campaign: corrosion ablations, one fixed physics ---------
  // Same soil for every scenario, so all scenarios share the warm cache —
  // compare the hit rate with the soil sweep's counters above.
  campaign::DamageOptions damage;
  damage.max_breaks = 3;
  campaign::Runner damage_runner(study, options);
  const campaign::CampaignResult damage_report = damage_runner.run(
      campaign::DamageSweep(campaign::DamageEnsemble(grid, fit.soil, damage, 32, 42)));

  std::printf("\n=== damage campaign: %zu ablated variants ===\n", damage_report.completed);
  print_metric("R_eq", damage_report.resistance, "Ohm");
  print_metric("touch margin", damage_report.touch_margin, "V");
  std::printf("  warm cache: %.0f%% of pair integrals replayed across scenarios\n",
              100.0 * damage_report.cache.hit_rate());
  return 0;
}

// CAD facade: end-to-end GroundingSystem behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/error.hpp"
#include "src/cad/cases.hpp"
#include "src/cad/grounding_system.hpp"
#include "src/geom/grid_builder.hpp"

namespace ebem::cad {
namespace {

std::vector<geom::Conductor> small_grid() {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  return geom::make_rect_grid(spec);
}

TEST(GroundingSystem, AnalyzeProducesConsistentReport) {
  DesignOptions options;
  options.analysis.gpr = 10e3;
  GroundingSystem system(small_grid(), soil::LayeredSoil::uniform(0.02), options);
  const Report& report = system.analyze();
  EXPECT_GT(report.equivalent_resistance, 0.0);
  EXPECT_NEAR(report.total_current, 10e3 / report.equivalent_resistance, 1e-6);
  EXPECT_EQ(report.gpr, 10e3);
  EXPECT_GT(report.element_count, 0u);
  EXPECT_GT(report.dof_count, 0u);
  EXPECT_GT(report.phases.wall_seconds(Phase::kMatrixGeneration), 0.0);
}

TEST(GroundingSystem, ReportBeforeAnalyzeThrows) {
  GroundingSystem system(small_grid(), soil::LayeredSoil::uniform(0.02));
  EXPECT_THROW((void)system.report(), ebem::InvalidArgument);
  EXPECT_THROW((void)system.solution(), ebem::InvalidArgument);
  EXPECT_THROW((void)system.potential_evaluator(), ebem::InvalidArgument);
}

TEST(GroundingSystem, SummaryMentionsKeyQuantities) {
  GroundingSystem system(small_grid(), soil::LayeredSoil::uniform(0.02));
  system.analyze();
  const std::string summary = system.report().summary();
  EXPECT_NE(summary.find("Equivalent resistance"), std::string::npos);
  EXPECT_NE(summary.find("Matrix Generation"), std::string::npos);
}

TEST(GroundingSystem, RodsAcrossInterfaceAreSplitDuringPreprocessing) {
  auto grid = small_grid();
  geom::RodSpec rod;
  rod.length = 1.5;
  geom::add_rods(grid, {{0, 0, 0}, {20, 20, 0}}, 0.8, rod);
  // Upper layer 1.0 m: rods span -0.8..-2.3 and must be split at -1.0.
  GroundingSystem system(grid, soil::LayeredSoil::two_layer(0.0025, 0.02, 1.0));
  // 12 bars + 2 rods -> each rod split into 2 elements.
  EXPECT_EQ(system.model().element_count(), 12u + 2u * 2u);
  const Report& report = system.analyze();
  EXPECT_GT(report.equivalent_resistance, 0.0);
}

TEST(GroundingSystem, FromFileRunsFullPipeline) {
  const std::string path = testing::TempDir() + "/ebem_test_grid.txt";
  {
    std::ofstream os(path);
    os << "soil layer 0.005 1.0\n"
       << "soil layer 0.016 0\n"
       << "conductor 0 0 -0.8 10 0 -0.8 0.006\n"
       << "conductor 0 0 -0.8 0 10 -0.8 0.006\n"
       << "rod 0 0 0.8 1.5 0.007\n";
  }
  GroundingSystem system = GroundingSystem::from_file(path);
  const Report& report = system.analyze();
  EXPECT_GT(report.equivalent_resistance, 0.0);
  EXPECT_GT(report.phases.wall_seconds(Phase::kDataInput), 0.0);
  std::remove(path.c_str());
}

TEST(GroundingSystem, PotentialEvaluatorUsesActualGpr) {
  DesignOptions options;
  options.analysis.gpr = 10e3;
  GroundingSystem system(small_grid(), soil::LayeredSoil::uniform(0.02), options);
  system.analyze();
  const auto evaluator = system.potential_evaluator();
  const double v = evaluator.at({10, 10, 0});
  EXPECT_GT(v, 1000.0);  // potentials scale with the 10 kV GPR
  EXPECT_LT(v, 10e3);
}

TEST(GroundingSystem, MeasuredColumnCostsForwarded) {
  engine::ExecutionConfig config;
  config.measure_column_costs = true;
  engine::Engine engine(config);
  GroundingSystem system(small_grid(), soil::LayeredSoil::uniform(0.02));
  const Report& report = system.analyze(engine);
  EXPECT_EQ(report.column_costs.size(), system.model().element_count());
}

TEST(GroundingSystem, EngineRunMatchesSerialShimAndWarmsTheCache) {
  GroundingSystem cold(small_grid(), soil::LayeredSoil::uniform(0.02));
  const double serial = cold.analyze().equivalent_resistance;

  engine::Engine engine;  // default config: serial, warm cache on
  GroundingSystem warm(small_grid(), soil::LayeredSoil::uniform(0.02));
  const Report& first = warm.analyze(engine);
  EXPECT_NEAR(first.equivalent_resistance, serial, 1e-12 * serial);
  EXPECT_GT(first.cache_stats.misses, 0u);

  // Re-running the same system against the warm engine replays every pair.
  const Report& second = warm.analyze(engine);
  EXPECT_NEAR(second.equivalent_resistance, serial, 1e-12 * serial);
  EXPECT_EQ(second.cache_stats.misses, 0u);
  EXPECT_GT(second.cache_stats.hits, 0u);
  // The session report accumulated both runs' phase timings.
  EXPECT_GT(engine.report().cpu_seconds(Phase::kMatrixGeneration), 0.0);
}

TEST(Cases, BarberaMatchesPaperDiscretizationScale) {
  const BarberaCase c = barbera_case();
  // Paper: 408 segments. The parametric triangle lands within a few percent.
  EXPECT_NEAR(static_cast<double>(c.conductors.size()), 408.0, 25.0);
  EXPECT_DOUBLE_EQ(c.gpr, 10e3);
  EXPECT_EQ(c.two_layer_soil.layer_count(), 2u);
  const auto stats = geom::grid_stats(c.conductors);
  EXPECT_NEAR(stats.area_bbox, 89.0 * 143.0, 1.0);
  EXPECT_DOUBLE_EQ(stats.min_z, -0.8);
}

TEST(Cases, BalaidosMatchesPaperInventory) {
  const BalaidosCase c = balaidos_case();
  // Paper: 107 conductors + 67 rods; our regular layout gives 110 + 67.
  EXPECT_EQ(c.conductors.size(), 110u + 67u);
  std::size_t rods = 0;
  for (const auto& conductor : c.conductors) {
    if (conductor.a.x == conductor.b.x && conductor.a.y == conductor.b.y) ++rods;
  }
  EXPECT_EQ(rods, 67u);
  EXPECT_DOUBLE_EQ(c.soil_b.interface_depth(0), 0.70);
  EXPECT_DOUBLE_EQ(c.soil_c.interface_depth(0), 1.00);
}

}  // namespace
}  // namespace ebem::cad

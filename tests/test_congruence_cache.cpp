// Congruence cache subsystem: signature invariance under the horizontal
// isometries the layered-soil kernels admit, discrimination of incongruent
// pairs, no-collision safety on graded grids, hit/miss statistics, and
// cache-on == cache-off parity across every parallel assembly mode.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/pair_signature.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {
namespace {

BemElement make_element(geom::Vec3 a, geom::Vec3 b, double radius = 0.006,
                        std::size_t layer = 0) {
  BemElement element;
  element.a = a;
  element.b = b;
  element.radius = radius;
  element.length = geom::distance(a, b);
  element.layer = layer;
  return element;
}

/// A generic (skew, depth-varying) pair with no accidental symmetry.
std::pair<BemElement, BemElement> generic_pair() {
  return {make_element({0.3, 0.2, -0.8}, {2.3, 1.2, -0.8}),
          make_element({4.1, -0.7, -0.8}, {5.0, 2.0, -1.4})};
}

/// Loose quantum for the invariance unit tests: the rotations below produce
/// irrational canonical coordinates, and a lattice fine enough for assembly
/// parity would make the pass/fail of an exact-equality assertion depend on
/// ~1e-15 libm rounding landing next to a quantum boundary.
constexpr double kLooseQuantum = 1e-9;

TEST(PairSignature, InvariantUnderHorizontalTranslation) {
  const auto [field, source] = generic_pair();
  const geom::Vec3 shift{13.5, -7.25, 0.0};
  const BemElement field_t = make_element(field.a + shift, field.b + shift);
  const BemElement source_t = make_element(source.a + shift, source.b + shift);

  const PairSignature base = make_pair_signature(field, source, kLooseQuantum);
  const PairSignature translated = make_pair_signature(field_t, source_t, kLooseQuantum);
  EXPECT_EQ(base, translated);
}

TEST(PairSignature, VerticalTranslationChangesSignature) {
  // z is physical (surface and interface planes): burial depth must be part
  // of the key even though horizontal position is not.
  const auto [field, source] = generic_pair();
  const geom::Vec3 shift{0.0, 0.0, -0.5};
  const BemElement field_t = make_element(field.a + shift, field.b + shift);
  const BemElement source_t = make_element(source.a + shift, source.b + shift);
  EXPECT_NE(make_pair_signature(field, source, kLooseQuantum),
            make_pair_signature(field_t, source_t, kLooseQuantum));
}

TEST(PairSignature, InvariantUnderRotationAboutVerticalAxis) {
  const auto [field, source] = generic_pair();
  const double theta = 0.7;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  const geom::Vec3 center{1.0, -2.0, 0.0};
  const auto rotate = [&](geom::Vec3 p) {
    const double x = p.x - center.x;
    const double y = p.y - center.y;
    return geom::Vec3{center.x + c * x - s * y, center.y + s * x + c * y, p.z};
  };
  const BemElement field_r = make_element(rotate(field.a), rotate(field.b));
  const BemElement source_r = make_element(rotate(source.a), rotate(source.b));
  EXPECT_EQ(make_pair_signature(field, source, kLooseQuantum),
            make_pair_signature(field_r, source_r, kLooseQuantum));
}

TEST(PairSignature, InvariantUnderReflection) {
  const auto [field, source] = generic_pair();
  const auto mirror = [](geom::Vec3 p) { return geom::Vec3{-p.x, p.y, p.z}; };
  const BemElement field_m = make_element(mirror(field.a), mirror(field.b));
  const BemElement source_m = make_element(mirror(source.a), mirror(source.b));
  EXPECT_EQ(make_pair_signature(field, source, kLooseQuantum),
            make_pair_signature(field_m, source_m, kLooseQuantum));
}

TEST(PairSignature, DiscriminatesIncongruentPairs) {
  const auto [field, source] = generic_pair();
  const PairSignature base = make_pair_signature(field, source, kLooseQuantum);

  // Longer source.
  EXPECT_NE(base, make_pair_signature(
                      field, make_element(source.a, source.b + geom::Vec3{0.5, 0.0, 0.0}),
                      kLooseQuantum));
  // Shifted source (different relative displacement).
  const geom::Vec3 shift{1.0, 0.0, 0.0};
  EXPECT_NE(base, make_pair_signature(
                      field, make_element(source.a + shift, source.b + shift), kLooseQuantum));
  // Different radius.
  EXPECT_NE(base,
            make_pair_signature(field, make_element(source.a, source.b, 0.009), kLooseQuantum));
  // Different layer tag.
  EXPECT_NE(base, make_pair_signature(
                      field, make_element(source.a, source.b, 0.006, 1), kLooseQuantum));
  // Swapped roles are a transpose, not the same block: the ordered signature
  // must not identify them.
  EXPECT_NE(base, make_pair_signature(source, field, kLooseQuantum));
}

/// Two elements a comfortable ~5 element lengths apart: inside the
/// transpose-replay regime (>= kTransposeSeparationRatio).
std::pair<BemElement, BemElement> separated_pair() {
  return {make_element({0.0, 0.0, -0.8}, {1.0, 0.2, -0.8}),
          make_element({6.0, 1.0, -0.8}, {7.0, 1.5, -1.2})};
}

TEST(PairSignature, CanonicalSignatureMergesSwappedRolesWhenSeparated) {
  const auto [field, source] = separated_pair();
  const CanonicalPairSignature fs = make_canonical_pair_signature(field, source, kLooseQuantum);
  const CanonicalPairSignature sf = make_canonical_pair_signature(source, field, kLooseQuantum);
  // One cache key for both orientations; exactly one of them is the
  // transposed view of the stored canonical block.
  EXPECT_EQ(fs.signature, sf.signature);
  EXPECT_NE(fs.transposed, sf.transposed);
  // The ordered signatures still discriminate the orientations.
  EXPECT_NE(make_pair_signature(field, source, kLooseQuantum),
            make_pair_signature(source, field, kLooseQuantum));
}

TEST(PairSignature, CanonicalSignatureIsInvariantUnderIsometryPlusSwap) {
  // The full claimed invariance group: horizontal isometry composed with a
  // role swap must land on the same key.
  const auto [field, source] = separated_pair();
  const double c = std::cos(1.1);
  const double s = std::sin(1.1);
  const auto rotate_shift = [&](geom::Vec3 p) {
    return geom::Vec3{c * p.x - s * p.y + 11.0, s * p.x + c * p.y - 3.5, p.z};
  };
  const BemElement field_t = make_element(rotate_shift(field.a), rotate_shift(field.b));
  const BemElement source_t = make_element(rotate_shift(source.a), rotate_shift(source.b));

  const CanonicalPairSignature base = make_canonical_pair_signature(field, source, kLooseQuantum);
  const CanonicalPairSignature moved_swapped =
      make_canonical_pair_signature(source_t, field_t, kLooseQuantum);
  EXPECT_EQ(base.signature, moved_swapped.signature);
  EXPECT_NE(base.transposed, moved_swapped.transposed);
}

TEST(PairSignature, NearPairsKeepTheOrderedKey) {
  // Adjacent elements (shared node): the transpose identity only holds to
  // quadrature accuracy (~1e-4 relative), so canonicalization must not
  // merge the orientations there.
  const BemElement left = make_element({0.0, 0.0, -0.8}, {1.0, 0.0, -0.8});
  const BemElement right = make_element({1.0, 0.0, -0.8}, {2.0, 0.0, -0.8});
  const CanonicalPairSignature lr = make_canonical_pair_signature(left, right, kLooseQuantum);
  const CanonicalPairSignature rl = make_canonical_pair_signature(right, left, kLooseQuantum);
  EXPECT_FALSE(lr.transposed);
  EXPECT_FALSE(rl.transposed);
  EXPECT_EQ(lr.signature, make_pair_signature(left, right, kLooseQuantum));
  EXPECT_EQ(rl.signature, make_pair_signature(right, left, kLooseQuantum));
  EXPECT_NE(lr.signature, rl.signature);
}

TEST(CongruenceCache, TransposedReplayReturnsTheTransposedBlock) {
  const auto [field, source] = separated_pair();
  CongruenceCache cache(kLooseQuantum);

  LocalMatrix block;
  block.value = {{{1.0, 2.0}, {3.0, 4.0}}};
  cache.insert(make_canonical_pair_signature(field, source, kLooseQuantum), block);

  LocalMatrix replay;
  ASSERT_TRUE(cache.lookup(make_canonical_pair_signature(source, field, kLooseQuantum), replay));
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      EXPECT_DOUBLE_EQ(replay.value[p][q], block.value[q][p]) << p << q;
    }
  }
  // Same orientation replays verbatim.
  ASSERT_TRUE(cache.lookup(make_canonical_pair_signature(field, source, kLooseQuantum), replay));
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      EXPECT_DOUBLE_EQ(replay.value[p][q], block.value[p][q]) << p << q;
    }
  }
}

TEST(PairSignature, CanonicalKeysCollapseClassesOnTheUniformGrid) {
  // The point of the exercise: role canonicalization must merge a
  // substantial share of the ordered congruence classes (the ROADMAP's
  // "~2x more hits" follow-up), because every merged class is one saved
  // integration on the warm path.
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 6;
  spec.cells_y = 6;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
  const auto& elements = model.elements();
  const std::size_t m = elements.size();

  std::unordered_map<PairSignature, int, PairSignatureHash> ordered;
  std::unordered_map<PairSignature, int, PairSignatureHash> canonical;
  for (std::size_t beta = 0; beta < m; ++beta) {
    for (std::size_t alpha = beta; alpha < m; ++alpha) {
      ++ordered[make_pair_signature(elements[beta], elements[alpha])];
      ++canonical[make_canonical_pair_signature(elements[beta], elements[alpha]).signature];
    }
  }
  EXPECT_LT(canonical.size(), ordered.size());
  // At least a quarter of the classes must merge; measured on this grid the
  // reduction is ~1.8x (474 vs 870 on the 12-cell bench grid).
  EXPECT_LT(static_cast<double>(canonical.size()), 0.75 * static_cast<double>(ordered.size()));
}

TEST(PairSignature, NoCollisionsOnGradedGrid) {
  // The adversarial case: geometric grading makes most pair geometries
  // distinct. Group all pairs by signature at the default (parity-grade)
  // quantum and verify that every pair mapped to an occupied key has the
  // same elemental block as the key's first occupant — i.e. a signature
  // match never glues genuinely different geometries together.
  geom::GradedRectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 4;
  spec.cells_y = 4;
  spec.grading = 2.0;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const BemModel model(geom::Mesh::build(geom::make_graded_rect_grid(spec)), soil);

  const soil::ImageKernel kernel(soil);
  const Integrator integrator(kernel, IntegratorOptions{});
  const auto& elements = model.elements();
  const std::size_t m = elements.size();

  std::unordered_map<PairSignature, LocalMatrix, PairSignatureHash> seen;
  std::size_t replays = 0;
  for (std::size_t beta = 0; beta < m; ++beta) {
    for (std::size_t alpha = beta; alpha < m; ++alpha) {
      const PairSignature sig = make_pair_signature(elements[beta], elements[alpha]);
      const LocalMatrix block = integrator.element_pair(elements[beta], elements[alpha]);
      const auto [it, inserted] = seen.try_emplace(sig, block);
      if (inserted) continue;
      ++replays;
      for (std::size_t p = 0; p < 2; ++p) {
        for (std::size_t q = 0; q < 2; ++q) {
          EXPECT_NEAR(block.value[p][q], it->second.value[p][q],
                      1e-12 * std::abs(block.value[p][q]) + 1e-15)
              << "pair (" << beta << "," << alpha << ") local " << p << q;
        }
      }
    }
  }
  // The symmetric graded partition still has mirror copies, so some keys
  // must repeat — otherwise this test exercised nothing.
  EXPECT_GT(replays, 0u);
  // But grading must keep far more keys alive than the uniform grid's few
  // hundred classes (graceful low hit rate, not accidental gluing).
  EXPECT_GT(seen.size(), m * (m + 1) / 2 / 10);
}

BemModel uniform_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  return BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

void expect_parity(const la::SymMatrix& expected, const la::SymMatrix& actual,
                   const std::string& label) {
  const auto e = expected.packed();
  const auto a = actual.packed();
  ASSERT_EQ(e.size(), a.size()) << label;
  for (std::size_t k = 0; k < e.size(); ++k) {
    EXPECT_NEAR(e[k], a[k], 1e-12 * std::abs(e[k]) + 1e-15) << label << " packed index " << k;
  }
}

TEST(CongruenceCache, UniformGridHitRateAndParity) {
  const BemModel model = uniform_model(6);
  const AssemblyResult off = assemble(model, {});
  EXPECT_EQ(off.cache_stats.hits + off.cache_stats.misses, 0u);  // disabled by default

  CongruenceCache cache;
  const AssemblyResult on = assemble(model, {}, {.cache = &cache});

  expect_parity(off.matrix, on.matrix, "uniform sequential");
  const CongruenceCacheStats& stats = on.cache_stats;
  EXPECT_EQ(stats.hits + stats.misses, on.element_pairs);
  EXPECT_EQ(stats.entries, stats.misses);  // sequential: every miss inserts
  EXPECT_GE(stats.hit_rate(), 0.9);
}

TEST(CongruenceCache, ParityAcrossSchedulesLoopsBackends) {
  // Thread-safety parity: concurrent workers share the sharded cache under
  // every schedule x loop x backend combination, and the result must match
  // the cache-off sequential assembly to reordering tolerance.
  const BemModel model = uniform_model(3);
  const AssemblyResult reference = assemble(model, {});

  const std::pair<par::Schedule, const char*> schedules[] = {
      {par::Schedule::static_blocked(), "static"},
      {par::Schedule::dynamic(1), "dynamic1"},
      {par::Schedule::guided(1), "guided1"},
  };
  for (const auto& [loop, loop_name] :
       {std::pair{ParallelLoop::kOuter, "outer"}, std::pair{ParallelLoop::kInner, "inner"}}) {
    for (const auto& [backend, backend_name] :
         {std::pair{Backend::kThreadPool, "pool"}, std::pair{Backend::kOpenMp, "omp"}}) {
      for (const auto& [schedule, schedule_name] : schedules) {
        CongruenceCache cache;
        AssemblyExecution execution;
        execution.num_threads = 4;
        execution.loop = loop;
        execution.schedule = schedule;
        execution.backend = backend;
        execution.cache = &cache;
        const AssemblyResult on = assemble(model, {}, execution);
        const std::string label =
            std::string(loop_name) + "_" + schedule_name + "_" + backend_name;
        expect_parity(reference.matrix, on.matrix, label);
        EXPECT_EQ(on.cache_stats.hits + on.cache_stats.misses, on.element_pairs) << label;
        EXPECT_GT(on.cache_stats.hits, 0u) << label;
      }
    }
  }
}

TEST(CongruenceCache, ExternalCacheReusedAcrossAssemblies) {
  const BemModel model = uniform_model(3);
  const AssemblyResult reference = assemble(model, {});

  CongruenceCache cache;
  const AssemblyExecution execution{.cache = &cache};
  const AssemblyResult first = assemble(model, {}, execution);
  expect_parity(reference.matrix, first.matrix, "first warm-up run");
  const std::size_t entries_after_first = first.cache_stats.entries;
  EXPECT_GT(entries_after_first, 0u);

  const AssemblyResult second = assemble(model, {}, execution);
  expect_parity(reference.matrix, second.matrix, "fully warm run");
  // cache_stats is each run's own tally (not the shared cache's cumulative
  // counters): the warm run replays every pair and learns nothing new.
  EXPECT_EQ(second.cache_stats.hits, second.element_pairs);
  EXPECT_EQ(second.cache_stats.misses, 0u);
  EXPECT_EQ(second.cache_stats.entries, entries_after_first);
}

TEST(CongruenceCache, StatsReportedThroughPhaseReport) {
  const BemModel model = uniform_model(2);
  CongruenceCache cache;
  AnalysisExecution execution;
  execution.assembly.cache = &cache;
  PhaseReport report;
  const AnalysisResult result = analyze(model, {}, execution, &report);

  EXPECT_EQ(static_cast<std::size_t>(report.counter(kCacheHitsCounter)),
            result.cache_stats.hits);
  EXPECT_EQ(static_cast<std::size_t>(report.counter(kCacheMissesCounter)),
            result.cache_stats.misses);
  EXPECT_GT(result.cache_stats.hits, 0u);
  EXPECT_NE(report.to_string().find("Congruence cache hits"), std::string::npos);
}

TEST(CongruenceCache, PhaseReportCountsPerRunDeltasForExternalCache) {
  // An external cache's stats are lifetime-cumulative; repeated analyze()
  // calls into one report must add each run's delta, not re-add history.
  const BemModel model = uniform_model(2);
  const std::size_t pairs = model.element_count() * (model.element_count() + 1) / 2;
  CongruenceCache cache;
  AnalysisExecution execution;
  execution.assembly.cache = &cache;
  PhaseReport report;
  (void)analyze(model, {}, execution, &report);
  (void)analyze(model, {}, execution, &report);
  // Two runs look up every pair once each; the warm second run adds pure hits.
  EXPECT_DOUBLE_EQ(report.counter(kCacheHitsCounter) +
                       report.counter(kCacheMissesCounter),
                   static_cast<double>(2 * pairs));
}

TEST(CongruenceCache, CapStopsInsertionsButKeepsCorrectness) {
  const BemModel model = uniform_model(3);
  const AssemblyResult reference = assemble(model, {});

  CongruenceCache tiny(kDefaultCongruenceQuantum, /*max_entries=*/4);
  const AssemblyResult result = assemble(model, {}, {.cache = &tiny});
  expect_parity(reference.matrix, result.matrix, "capped cache");
  EXPECT_LE(result.cache_stats.entries, 4u);
}

}  // namespace
}  // namespace ebem::bem

// Integration tests: the paper's evaluation cases end to end.
//
// Absolute agreement with the paper is not expected (the exact CAD plans are
// not published; DESIGN.md §4.2) — but the reproduced values land close and
// every qualitative ordering the paper reports must hold.
#include <gtest/gtest.h>

#include "src/cad/cases.hpp"
#include "src/cad/grounding_system.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/post/surface_potential.hpp"

namespace ebem::cad {
namespace {

double analyze_req(const std::vector<geom::Conductor>& conductors,
                   const soil::LayeredSoil& soil, double series_tolerance = 1e-6) {
  DesignOptions options;
  options.analysis.gpr = 10e3;
  options.analysis.assembly.series.tolerance = series_tolerance;
  GroundingSystem system(conductors, soil, options);
  return system.analyze().equivalent_resistance;
}

class BalaidosSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { case_ = new BalaidosCase(balaidos_case()); }
  static void TearDownTestSuite() {
    delete case_;
    case_ = nullptr;
  }
  static BalaidosCase* case_;
};
BalaidosCase* BalaidosSuite::case_ = nullptr;

TEST_F(BalaidosSuite, ModelAReproducesTable51) {
  // Paper Table 5.1: A = 0.3366 Ohm, 29.71 kA.
  const double req = analyze_req(case_->conductors, case_->soil_a);
  EXPECT_NEAR(req, 0.3366, 0.05 * 0.3366);
}

TEST_F(BalaidosSuite, ModelBReproducesTable51) {
  // Paper Table 5.1: B = 0.3522 Ohm, 28.39 kA.
  const double req = analyze_req(case_->conductors, case_->soil_b);
  EXPECT_NEAR(req, 0.3522, 0.05 * 0.3522);
}

TEST_F(BalaidosSuite, ModelCReproducesTable51) {
  // Paper Table 5.1: C = 0.4860 Ohm, 20.58 kA.
  const double req = analyze_req(case_->conductors, case_->soil_c);
  EXPECT_NEAR(req, 0.4860, 0.05 * 0.4860);
}

TEST_F(BalaidosSuite, SoilModelOrderingHolds) {
  // The paper's headline qualitative result: A < B < C.
  const double a = analyze_req(case_->conductors, case_->soil_a);
  const double b = analyze_req(case_->conductors, case_->soil_b);
  const double c = analyze_req(case_->conductors, case_->soil_c);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Barbera, UniformAndTwoLayerReproduceSection51) {
  // Coarser refinement keeps the test fast; values stay within ~10% of the
  // paper (0.3128 uniform / 0.3704 two-layer) and the ordering is strict.
  const BarberaCase c = barbera_case(10);
  const double uniform = analyze_req(c.conductors, c.uniform_soil);
  const double layered = analyze_req(c.conductors, c.two_layer_soil);
  EXPECT_NEAR(uniform, 0.3128, 0.10 * 0.3128);
  EXPECT_NEAR(layered, 0.3704, 0.10 * 0.3704);
  EXPECT_GT(layered, uniform);
}

TEST(Barbera, SurfacePotentialHigherOverGridThanOutside) {
  const BarberaCase c = barbera_case(8);
  DesignOptions options;
  options.analysis.gpr = 10e3;
  GroundingSystem system(c.conductors, c.uniform_soil, options);
  system.analyze();
  const auto evaluator = system.potential_evaluator();
  const double over = evaluator.at({25.0, 40.0, 0.0});    // inside the triangle
  const double outside = evaluator.at({200.0, 200.0, 0.0});
  EXPECT_GT(over, 3.0 * outside);
}

TEST_F(BalaidosSuite, ParallelAnalysisMatchesSequential) {
  DesignOptions options;
  options.analysis.assembly.series.tolerance = 1e-6;
  GroundingSystem seq(case_->conductors, case_->soil_b, options);

  engine::ExecutionConfig config;
  config.num_threads = 4;
  config.schedule = par::Schedule::dynamic(1);
  config.use_congruence_cache = false;  // bitwise comparison below
  engine::Engine engine(config);
  GroundingSystem threaded(case_->conductors, case_->soil_b, options);

  const double r_seq = seq.analyze().equivalent_resistance;
  const double r_par = threaded.analyze(engine).equivalent_resistance;
  EXPECT_DOUBLE_EQ(r_seq, r_par);
}

TEST(ConstantVsLinear, GalerkinLinearStaysStableUnderRefinement) {
  // The motivation of paper ref [6]: cruder discretizations drift as
  // segmentation increases; Galerkin linear stays put. We check that the
  // two bases agree at the coarse level and that linear moves little.
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const auto grid = geom::make_rect_grid(spec);
  const auto soil = soil::LayeredSoil::uniform(0.02);

  const auto run = [&](bem::BasisKind basis, double element_length) {
    DesignOptions options;
    options.mesh.target_element_length = element_length;
    options.analysis.assembly.integrator.basis = basis;
    GroundingSystem system(grid, soil, options);
    return system.analyze().equivalent_resistance;
  };

  const double linear_coarse = run(bem::BasisKind::kLinear, 10.0);
  const double linear_fine = run(bem::BasisKind::kLinear, 1.0);
  const double constant_coarse = run(bem::BasisKind::kConstant, 10.0);
  EXPECT_NEAR(constant_coarse, linear_coarse, 0.08 * linear_coarse);
  EXPECT_NEAR(linear_fine, linear_coarse, 0.03 * linear_coarse);
}

}  // namespace
}  // namespace ebem::cad

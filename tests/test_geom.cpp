// Geometry primitives and grid builders.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/vec3.hpp"

namespace ebem::geom {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_EQ(cross(x, y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{1, 1, 1}, Vec3{1, 1, 4}), 3.0);
}

TEST(Vec3, NormalizedRejectsZero) {
  EXPECT_THROW(normalized(Vec3{}), InvalidArgument);
  const Vec3 u = normalized(Vec3{0, 0, 5});
  EXPECT_DOUBLE_EQ(u.z, 1.0);
}

TEST(Conductor, LengthMidpointArea) {
  const Conductor c{{0, 0, -1}, {4, 0, -1}, 0.01};
  EXPECT_DOUBLE_EQ(c.length(), 4.0);
  EXPECT_EQ(c.midpoint(), (Vec3{2, 0, -1}));
  EXPECT_NEAR(c.surface_area(), 2.0 * kPi * 0.01 * 4.0, 1e-12);
}

TEST(RectGrid, ConductorCountAndLength) {
  RectGridSpec spec;
  spec.length_x = 80.0;
  spec.length_y = 60.0;
  spec.cells_x = 8;
  spec.cells_y = 6;
  const auto grid = make_rect_grid(spec);
  // x-parallel: (cells_y+1) rows of cells_x pieces; y-parallel symmetric.
  EXPECT_EQ(grid.size(), (6u + 1) * 8u + (8u + 1) * 6u);
  EXPECT_NEAR(total_length(grid), 7.0 * 80.0 + 9.0 * 60.0, 1e-9);
}

TEST(RectGrid, AllConductorsAtDepth) {
  RectGridSpec spec;
  spec.length_x = 10.0;
  spec.length_y = 10.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  spec.depth = 0.8;
  for (const Conductor& c : make_rect_grid(spec)) {
    EXPECT_DOUBLE_EQ(c.a.z, -0.8);
    EXPECT_DOUBLE_EQ(c.b.z, -0.8);
  }
}

TEST(RectGrid, ValidatesInput) {
  RectGridSpec spec;  // zero extents
  EXPECT_THROW(make_rect_grid(spec), InvalidArgument);
  spec.length_x = 1.0;
  spec.length_y = 1.0;
  spec.depth = -1.0;
  EXPECT_THROW(make_rect_grid(spec), InvalidArgument);
}

TEST(TriangularGrid, EveryEndpointInsideTriangle) {
  TriangularGridSpec spec;
  spec.leg_x = 89.0;
  spec.leg_y = 143.0;
  spec.cells_x = 10;
  spec.cells_y = 16;
  for (const Conductor& c : make_triangular_grid(spec)) {
    for (const Vec3& p : {c.a, c.b}) {
      EXPECT_LE(p.x / spec.leg_x + p.y / spec.leg_y, 1.0 + 1e-6);
      EXPECT_GE(p.x, -1e-9);
      EXPECT_GE(p.y, -1e-9);
    }
  }
}

TEST(TriangularGrid, CoversRoughlyHalfTheRectangleLength) {
  TriangularGridSpec spec;
  spec.leg_x = 100.0;
  spec.leg_y = 100.0;
  spec.cells_x = 10;
  spec.cells_y = 10;
  const auto tri = make_triangular_grid(spec);
  RectGridSpec rect;
  rect.length_x = 100.0;
  rect.length_y = 100.0;
  rect.cells_x = 10;
  rect.cells_y = 10;
  const double rect_length = total_length(make_rect_grid(rect));
  const double tri_length = total_length(tri);
  // Triangle holds ~half the bars plus the hypotenuse.
  EXPECT_GT(tri_length, 0.45 * rect_length);
  EXPECT_LT(tri_length, 0.75 * rect_length);
}

TEST(TriangularGrid, NoDegenerateConductors) {
  TriangularGridSpec spec;
  spec.leg_x = 89.0;
  spec.leg_y = 143.0;
  spec.cells_x = 15;
  spec.cells_y = 24;
  for (const Conductor& c : make_triangular_grid(spec)) {
    EXPECT_GT(c.length(), 1e-6);
  }
}

TEST(Rods, AppendedAtRequestedPositions) {
  std::vector<Conductor> grid;
  RodSpec rod;
  rod.length = 1.5;
  rod.radius = 0.007;
  add_rods(grid, {{1.0, 2.0, 0.0}, {3.0, 4.0, 0.0}}, 0.8, rod);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].a, (Vec3{1.0, 2.0, -0.8}));
  EXPECT_EQ(grid[0].b, (Vec3{1.0, 2.0, -2.3}));
  EXPECT_DOUBLE_EQ(grid[1].length(), 1.5);
}

TEST(Rods, PerimeterPositionsLieOnPerimeter) {
  RectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 20.0;
  const auto positions = perimeter_rod_positions(spec, 12);
  ASSERT_EQ(positions.size(), 12u);
  for (const Vec3& p : positions) {
    const bool on_x_edge = almost_equal(p.y, 0.0, 0, 1e-9) || almost_equal(p.y, 20.0, 0, 1e-9);
    const bool on_y_edge = almost_equal(p.x, 0.0, 0, 1e-9) || almost_equal(p.x, 40.0, 0, 1e-9);
    EXPECT_TRUE(on_x_edge || on_y_edge) << p.x << "," << p.y;
  }
}

TEST(GridStats, ReportsCountsAndBounds) {
  RectGridSpec spec;
  spec.length_x = 10.0;
  spec.length_y = 20.0;
  spec.cells_x = 1;
  spec.cells_y = 2;
  spec.depth = 0.5;
  const auto grid = make_rect_grid(spec);
  const GridStats stats = grid_stats(grid);
  EXPECT_EQ(stats.conductor_count, grid.size());
  EXPECT_NEAR(stats.total_length, 3.0 * 10.0 + 2.0 * 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min_z, -0.5);
  EXPECT_DOUBLE_EQ(stats.max_z, -0.5);
  EXPECT_NEAR(stats.area_bbox, 200.0, 1e-9);
}

}  // namespace
}  // namespace ebem::geom

// campaign:: — counter-based sampling, soil/damage ensembles, streaming
// summaries and the campaign runner: determinism of every layer (same seed,
// same numbers — regardless of pipeline width, consumption order or
// re-generation), statistical sanity of the stratified sampler, P-squared
// vs exact quantile agreement, damage re-meshing validity, backpressure and
// early stop, and an FDM cross-validation smoke of one sampled scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "src/campaign/damage_ensemble.hpp"
#include "src/campaign/runner.hpp"
#include "src/campaign/sampler.hpp"
#include "src/campaign/soil_ensemble.hpp"
#include "src/campaign/summary.hpp"
#include "src/common/error.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/study.hpp"
#include "src/estimation/wenner.hpp"
#include "src/fdm/fd_solver.hpp"
#include "src/geom/grid_builder.hpp"

namespace ebem::campaign {
namespace {

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(Sampler, IsAPureFunctionOfSeedIndexAndDimension) {
  const Sampler a(42, 3, 64);
  const Sampler b(42, 3, 64);
  for (std::size_t i : {0u, 17u, 63u}) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(a.uniform01(i, d), b.uniform01(i, d)) << i << "," << d;
      EXPECT_EQ(a.normal(i, d), b.normal(i, d)) << i << "," << d;
    }
  }
  // A different seed reshuffles the strata.
  const Sampler c(43, 3, 64);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (a.uniform01(i, 0) != c.uniform01(i, 0)) ++differing;
  }
  EXPECT_GT(differing, 32u);
}

TEST(Sampler, StratifiesEveryMarginal) {
  // Latin hypercube: over the campaign, each dimension puts exactly one
  // sample into each of the `count` equal-width bins.
  const std::size_t count = 32;
  const Sampler sampler(7, 3, count);
  for (std::size_t d = 0; d < 3; ++d) {
    std::set<std::size_t> strata;
    for (std::size_t i = 0; i < count; ++i) {
      const double u = sampler.uniform01(i, d);
      ASSERT_GT(u, 0.0);
      ASSERT_LT(u, 1.0);
      strata.insert(static_cast<std::size_t>(u * static_cast<double>(count)));
    }
    EXPECT_EQ(strata.size(), count) << "dimension " << d;
  }
}

TEST(Sampler, RejectsEmptyConfigurations) {
  EXPECT_THROW(Sampler(1, 0, 8), ebem::InvalidArgument);
  EXPECT_THROW(Sampler(1, 2, 0), ebem::InvalidArgument);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_DOUBLE_EQ(inverse_normal_cdf(0.5), 0.0);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.84134474606854293), 1.0, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980316300933), -3.0, 1e-11);
  EXPECT_NEAR(inverse_normal_cdf(1e-10), -6.361340902404056, 1e-9);
  // Symmetry.
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-12) << p;
  }
}

// ---------------------------------------------------------------------------
// SoilEnsemble
// ---------------------------------------------------------------------------

TEST(SoilEnsemble, ScenariosAreDeterministicAndBounded) {
  const auto nominal = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  SoilDistribution distribution = SoilDistribution::relative(nominal, 0.2, 0.2, 0.3);
  distribution.truncate_sigmas = 2.0;
  const SoilEnsemble ensemble(distribution, 64, 11);
  const SoilEnsemble again(distribution, 64, 11);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    const soil::LayeredSoil soil = ensemble.scenario(i);
    ASSERT_EQ(soil.layer_count(), 2u);
    // Same seed, same soil — bitwise.
    EXPECT_EQ(soil.resistivity(0), again.scenario(i).resistivity(0)) << i;
    // Truncation: every parameter stays within exp(+-cap * sigma_log).
    const double cap1 = std::exp(2.0 * distribution.sigma_log_rho1);
    EXPECT_LE(soil.resistivity(0), nominal.resistivity(0) * cap1 * (1.0 + 1e-12)) << i;
    EXPECT_GE(soil.resistivity(0), nominal.resistivity(0) / cap1 * (1.0 - 1e-12)) << i;
    EXPECT_GT(soil.interface_depth(0), 0.0) << i;
  }
}

TEST(SoilEnsemble, CoversBothSidesOfTheNominal) {
  const auto nominal = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const SoilEnsemble ensemble(SoilDistribution::relative(nominal, 0.2, 0.2, 0.3), 32, 5);
  std::size_t above = 0;
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    if (ensemble.scenario(i).resistivity(0) > nominal.resistivity(0)) ++above;
  }
  // Stratified sampling of a symmetric distribution: close to half above.
  EXPECT_GE(above, 12u);
  EXPECT_LE(above, 20u);
}

TEST(SoilEnsemble, FromFitIngestsWennerUncertainty) {
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::mt19937 rng(3);
  std::normal_distribution<double> jitter(0.0, 0.03);
  std::vector<estimation::WennerReading> readings;
  for (double a : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double rho = estimation::wenner_apparent_resistivity(truth, a);
    readings.push_back({a, rho * std::exp(jitter(rng))});
  }
  const estimation::TwoLayerFit fit = estimation::fit_two_layer(readings);
  ASSERT_TRUE(fit.uncertainty_valid);

  const SoilDistribution distribution = SoilDistribution::from_fit(fit);
  EXPECT_EQ(distribution.nominal.resistivity(0), fit.soil.resistivity(0));
  EXPECT_EQ(distribution.sigma_log_rho1, fit.sigma_log_rho1);
  EXPECT_EQ(distribution.sigma_log_h, fit.sigma_log_h);
  // And it samples: scenarios scatter around the fitted point.
  const SoilEnsemble ensemble(distribution, 16, 1);
  double spread = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    spread = std::max(spread, std::abs(std::log(ensemble.scenario(i).resistivity(0) /
                                                fit.soil.resistivity(0))));
  }
  EXPECT_GT(spread, 0.0);
}

TEST(SoilEnsemble, FromFitRejectsAFitWithoutUncertainty) {
  estimation::TwoLayerFit fit;  // uncertainty_valid defaults to false
  EXPECT_THROW((void)SoilDistribution::from_fit(fit), ebem::InvalidArgument);
}

TEST(SoilEnsemble, ValidatesItsDistribution) {
  SoilDistribution one_layer;
  one_layer.nominal = soil::LayeredSoil::uniform(0.01);
  EXPECT_THROW(SoilEnsemble(one_layer, 8, 1), ebem::InvalidArgument);

  SoilDistribution negative = SoilDistribution::relative(
      soil::LayeredSoil::two_layer(0.005, 0.016, 1.0), 0.1, 0.1, 0.1);
  negative.sigma_log_rho2 = -0.1;
  EXPECT_THROW(SoilEnsemble(negative, 8, 1), ebem::InvalidArgument);
  EXPECT_THROW((void)SoilDistribution::relative(soil::LayeredSoil::two_layer(0.005, 0.016, 1.0),
                                                -0.2, 0.2, 0.2),
               ebem::InvalidArgument);
}

// ---------------------------------------------------------------------------
// DamageEnsemble
// ---------------------------------------------------------------------------

DamageEnsemble small_damage_ensemble(std::size_t count, std::uint64_t seed) {
  geom::RectGridSpec spec;
  spec.length_x = 15.0;
  spec.length_y = 15.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  DamageOptions options;
  options.min_breaks = 1;
  options.max_breaks = 3;
  options.mesh.target_element_length = 2.5;
  return DamageEnsemble(geom::make_rect_grid(spec), soil::LayeredSoil::two_layer(0.005, 0.016, 1.0),
                        options, count, seed);
}

TEST(DamageEnsemble, BreaksAreDeterministicDistinctAndInRange) {
  const DamageEnsemble ensemble = small_damage_ensemble(16, 9);
  const DamageEnsemble again = small_damage_ensemble(16, 9);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    const std::vector<ConductorBreak> breaks = ensemble.breaks(i);
    ASSERT_GE(breaks.size(), 1u) << i;
    ASSERT_LE(breaks.size(), 3u) << i;
    for (std::size_t k = 0; k < breaks.size(); ++k) {
      EXPECT_LT(breaks[k].conductor, ensemble.base().size()) << i;
      if (k > 0) EXPECT_GT(breaks[k].conductor, breaks[k - 1].conductor) << i;
    }
    // Re-generated ensemble: identical damage.
    const std::vector<ConductorBreak> replay = again.breaks(i);
    ASSERT_EQ(replay.size(), breaks.size()) << i;
    for (std::size_t k = 0; k < breaks.size(); ++k) {
      EXPECT_EQ(replay[k].conductor, breaks[k].conductor) << i;
      EXPECT_EQ(replay[k].removed, breaks[k].removed) << i;
    }
  }
}

TEST(DamageEnsemble, ScenariosAreDistinctAcrossTheEnsemble) {
  const DamageEnsemble ensemble = small_damage_ensemble(16, 9);
  std::set<std::vector<std::size_t>> signatures;
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    std::vector<std::size_t> signature;
    for (const ConductorBreak& b : ensemble.breaks(i)) {
      signature.push_back(b.conductor * 2 + (b.removed ? 1 : 0));
    }
    signatures.insert(signature);
  }
  // Not all 16 need be unique (collisions are legal samples), but the
  // ensemble must actually explore the damage space.
  EXPECT_GE(signatures.size(), 8u);
}

TEST(DamageEnsemble, RemeshingIsValidAndDeterministic) {
  const DamageEnsemble ensemble = small_damage_ensemble(8, 13);
  const geom::Mesh base_mesh =
      geom::Mesh::build(bem::split_at_interfaces(ensemble.base(), ensemble.soil()),
                        ensemble.options().mesh);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    const std::vector<geom::Conductor> damaged = ensemble.scenario_conductors(i);
    const std::vector<ConductorBreak> breaks = ensemble.breaks(i);
    const std::size_t removed = static_cast<std::size_t>(
        std::count_if(breaks.begin(), breaks.end(), [](const auto& b) { return b.removed; }));
    const std::size_t segmented = breaks.size() - removed;
    // Removal drops one conductor; segmentation replaces one with two.
    EXPECT_EQ(damaged.size(), ensemble.base().size() - removed + segmented) << i;

    const geom::Mesh mesh = ensemble.scenario_mesh(i);
    EXPECT_GT(mesh.element_count(), 0u) << i;
    EXPECT_LT(mesh.element_count(), 2 * base_mesh.element_count()) << i;
    // Deterministic re-mesh: same element count and same coordinates.
    const geom::Mesh replay = ensemble.scenario_mesh(i);
    ASSERT_EQ(replay.element_count(), mesh.element_count()) << i;
    for (std::size_t e = 0; e < mesh.element_count(); ++e) {
      EXPECT_EQ(replay.elements()[e].a.x, mesh.elements()[e].a.x) << i;
      EXPECT_EQ(replay.elements()[e].b.z, mesh.elements()[e].b.z) << i;
    }
    // A damaged grid dissipates through less metal than the base design.
    EXPECT_LT(mesh.total_length(), base_mesh.total_length() + 1e-9) << i;
    // And the model is analyzable as-is.
    const bem::BemModel model = ensemble.scenario_model(i);
    EXPECT_EQ(model.element_count(), mesh.element_count()) << i;
  }
}

TEST(DamageEnsemble, ValidatesItsOptions) {
  geom::RectGridSpec spec;
  spec.length_x = 10.0;
  spec.length_y = 10.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const auto base = geom::make_rect_grid(spec);
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);

  DamageOptions all_broken;
  all_broken.max_breaks = base.size();  // nothing intact
  EXPECT_THROW(DamageEnsemble(base, soil, all_broken, 4, 1), ebem::InvalidArgument);

  DamageOptions inverted;
  inverted.min_breaks = 3;
  inverted.max_breaks = 2;
  EXPECT_THROW(DamageEnsemble(base, soil, inverted, 4, 1), ebem::InvalidArgument);

  DamageOptions bad_gap;
  bad_gap.gap_fraction = 1.0;
  EXPECT_THROW(DamageEnsemble(base, soil, bad_gap, 4, 1), ebem::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Streaming summaries
// ---------------------------------------------------------------------------

TEST(StreamingMoments, MatchesClosedForms) {
  StreamingMoments moments;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) moments.add(x);
  EXPECT_EQ(moments.count(), 8u);
  EXPECT_DOUBLE_EQ(moments.mean(), 5.0);
  EXPECT_NEAR(moments.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(moments.min(), 2.0);
  EXPECT_DOUBLE_EQ(moments.max(), 9.0);
}

TEST(MetricSummary, ExactQuantilesInterpolateOrderStatistics) {
  MetricSummary summary(QuantileMode::kExact);
  for (double x = 1.0; x <= 100.0; x += 1.0) summary.add(x);
  EXPECT_DOUBLE_EQ(summary.p50(), 50.5);
  EXPECT_NEAR(summary.p95(), 95.05, 1e-12);
  EXPECT_NEAR(summary.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(summary.quantile(1.0), 100.0, 1e-12);
}

TEST(MetricSummary, ExactQuantilesAreConsumptionOrderIndependent) {
  std::vector<double> values(257);
  std::mt19937 rng(17);
  std::normal_distribution<double> normal(10.0, 3.0);
  for (double& v : values) v = normal(rng);

  MetricSummary forward(QuantileMode::kExact);
  for (double v : values) forward.add(v);
  MetricSummary shuffled(QuantileMode::kExact);
  std::shuffle(values.begin(), values.end(), rng);
  for (double v : values) shuffled.add(v);

  for (double p : kSummaryProbabilities) {
    EXPECT_EQ(forward.quantile(p), shuffled.quantile(p)) << p;
  }
}

TEST(P2Quantile, AgreesWithExactOnALargeSample) {
  std::mt19937 rng(23);
  std::lognormal_distribution<double> lognormal(0.0, 0.5);
  MetricSummary exact(QuantileMode::kExact);
  MetricSummary p2(QuantileMode::kP2);
  for (std::size_t i = 0; i < 5000; ++i) {
    const double x = lognormal(rng);
    exact.add(x);
    p2.add(x);
  }
  for (double p : kSummaryProbabilities) {
    // P-squared is an approximation; a few percent on a smooth unimodal
    // distribution is its design accuracy.
    EXPECT_NEAR(p2.quantile(p), exact.quantile(p), 0.05 * exact.quantile(p)) << p;
  }
  // P2 is deterministic for a fixed insertion order.
  MetricSummary replay(QuantileMode::kP2);
  std::mt19937 rng2(23);
  std::lognormal_distribution<double> lognormal2(0.0, 0.5);
  for (std::size_t i = 0; i < 5000; ++i) replay.add(lognormal2(rng2));
  for (double p : kSummaryProbabilities) EXPECT_EQ(replay.quantile(p), p2.quantile(p)) << p;
}

TEST(P2Quantile, IsExactBelowFiveObservations) {
  P2Quantile median(0.5);
  EXPECT_THROW((void)median.value(), ebem::InvalidArgument);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
  EXPECT_THROW(P2Quantile(0.0), ebem::InvalidArgument);
  EXPECT_THROW(P2Quantile(1.0), ebem::InvalidArgument);
}

TEST(MetricSummary, ConfidenceHalfWidthShrinksAndGatesOnSampleSize) {
  MetricSummary small(QuantileMode::kExact);
  for (std::size_t i = 0; i < 10; ++i) small.add(static_cast<double>(i));
  // 10 samples cannot bracket P95 at z=1.96.
  EXPECT_FALSE(small.confidence_half_width(0.95).has_value());

  std::mt19937 rng(31);
  std::normal_distribution<double> normal(100.0, 10.0);
  MetricSummary medium(QuantileMode::kExact);
  MetricSummary large(QuantileMode::kExact);
  for (std::size_t i = 0; i < 200; ++i) medium.add(normal(rng));
  for (std::size_t i = 0; i < 200; ++i) large.add(normal(rng));
  for (std::size_t i = 0; i < 1800; ++i) large.add(normal(rng));

  const auto hw_medium = medium.confidence_half_width(0.95);
  const auto hw_large = large.confidence_half_width(0.95);
  ASSERT_TRUE(hw_medium.has_value());
  ASSERT_TRUE(hw_large.has_value());
  EXPECT_GT(*hw_medium, 0.0);
  EXPECT_LT(*hw_large, *hw_medium);

  // P2 mode never claims a bound.
  MetricSummary p2(QuantileMode::kP2);
  for (std::size_t i = 0; i < 1000; ++i) p2.add(normal(rng));
  EXPECT_FALSE(p2.confidence_half_width(0.95).has_value());
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

std::vector<geom::Conductor> small_grid() {
  geom::RectGridSpec spec;
  spec.length_x = 15.0;
  spec.length_y = 15.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  return geom::make_rect_grid(spec);
}

SoilSweep small_soil_sweep(std::size_t count, std::uint64_t seed) {
  const auto nominal = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  geom::MeshOptions mesh;
  mesh.target_element_length = 5.0;
  return SoilSweep(small_grid(), mesh,
                   SoilEnsemble(SoilDistribution::relative(nominal, 0.2, 0.2, 0.3), count, seed));
}

CampaignResult run_soil_campaign(std::size_t pipeline_width, std::size_t count) {
  engine::ExecutionConfig config;
  config.num_threads = 1;
  config.pipeline_width = pipeline_width;
  engine::Engine engine(config);
  engine::Study study(engine);
  CampaignOptions options;
  options.window = 2 * pipeline_width;
  options.fault_current = 100.0;
  SafetyPatch patch;
  patch.x0 = 0.0;
  patch.x1 = 15.0;
  patch.y0 = 0.0;
  patch.y1 = 15.0;
  patch.nx = 3;
  patch.ny = 3;
  patch.criteria.surface_resistivity = 3000.0;
  options.safety = patch;
  Runner runner(study, options);
  return runner.run(small_soil_sweep(count, 77));
}

TEST(Runner, PercentilesAreBitIdenticalAcrossPipelineWidths) {
  // The acceptance contract: fixed seed, workers 1 / 2 / 4 — identical
  // percentile output, because observations commit in scenario-index order
  // no matter how completions interleave.
  const CampaignResult w1 = run_soil_campaign(1, 12);
  const CampaignResult w2 = run_soil_campaign(2, 12);
  const CampaignResult w4 = run_soil_campaign(4, 12);

  ASSERT_EQ(w1.completed, 12u);
  ASSERT_EQ(w2.completed, 12u);
  ASSERT_EQ(w4.completed, 12u);
  for (double p : kSummaryProbabilities) {
    EXPECT_EQ(w1.resistance.quantile(p), w2.resistance.quantile(p)) << p;
    EXPECT_EQ(w1.resistance.quantile(p), w4.resistance.quantile(p)) << p;
    EXPECT_EQ(w1.gpr.quantile(p), w2.gpr.quantile(p)) << p;
    EXPECT_EQ(w1.gpr.quantile(p), w4.gpr.quantile(p)) << p;
    EXPECT_EQ(w1.touch_margin.quantile(p), w4.touch_margin.quantile(p)) << p;
    EXPECT_EQ(w1.step_margin.quantile(p), w4.step_margin.quantile(p)) << p;
  }
  EXPECT_EQ(w1.resistance.moments().mean(), w4.resistance.moments().mean());
  EXPECT_EQ(w1.touch_violations, w4.touch_violations);

  // The backpressure window held.
  EXPECT_LE(w2.peak_in_flight, 4u);
  EXPECT_LE(w4.peak_in_flight, 8u);
}

TEST(Runner, SoilSweepReportsPhysicallyCoherentDistributions) {
  const CampaignResult result = run_soil_campaign(2, 12);
  EXPECT_EQ(result.scenarios, 12u);
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.resistance.count(), 12u);
  EXPECT_EQ(result.touch_margin.count(), 12u);
  EXPECT_EQ(result.step_margin.count(), 12u);

  // Resistance varies across soils and the percentiles are ordered.
  EXPECT_GT(result.resistance.moments().stddev(), 0.0);
  EXPECT_LE(result.resistance.p5(), result.resistance.p50());
  EXPECT_LE(result.resistance.p50(), result.resistance.p95());
  EXPECT_LE(result.resistance.p95(), result.resistance.p99());

  // fault_current mode: GPR_i = I_f x R_eq_i, so the quantiles map through.
  EXPECT_NEAR(result.gpr.p95(), 100.0 * result.resistance.p95(),
              1e-9 * result.gpr.p95());

  // Soil sweeps are the fingerprint guard's worst case: every scenario
  // changed the physics, and the cost is visible on the campaign rollup.
  EXPECT_DOUBLE_EQ(result.phases.counter(engine::kCacheDropsCounter), 12.0);
  EXPECT_GT(result.phases.counter(bem::kCacheMissesCounter), 0.0);
  EXPECT_GT(result.phases.total_wall_seconds(), 0.0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runner, DamageSweepSharesTheWarmCache) {
  engine::Engine engine;
  engine::Study study(engine);
  DamageOptions options;
  options.mesh.target_element_length = 5.0;
  DamageSweep sweep(DamageEnsemble(small_grid(), soil::LayeredSoil::two_layer(0.005, 0.016, 1.0),
                                   options, 8, 21));
  CampaignOptions campaign;
  campaign.window = 4;
  Runner runner(study, campaign);
  const CampaignResult result = runner.run(sweep);

  EXPECT_EQ(result.completed, 8u);
  // One physics across the batch: at most one drop (the first install),
  // and later scenarios replay the undamaged majority of the grid.
  EXPECT_LE(result.phases.counter(engine::kCacheDropsCounter), 1.0);
  EXPECT_GT(result.cache.hits, 0u);
  // Without a safety patch, margins stay empty but resistances flow.
  EXPECT_EQ(result.touch_margin.count(), 0u);
  EXPECT_EQ(result.resistance.count(), 8u);
  // Damage can only weaken the grid relative to... nothing monotone per
  // scenario, but every Req must be physical.
  EXPECT_GT(result.resistance.moments().min(), 0.0);
}

TEST(Runner, EarlyStopTerminatesOnATightPercentile) {
  engine::ExecutionConfig config;
  config.num_threads = 1;
  engine::Engine engine(config);
  engine::Study study(engine);
  CampaignOptions options;
  options.window = 4;
  options.early_stop.relative_half_width = 0.5;  // generous: stops quickly
  options.early_stop.min_scenarios = 40;
  options.early_stop.quantile = 0.5;
  Runner runner(study, options);
  const CampaignResult result = runner.run(small_soil_sweep(64, 3));
  EXPECT_TRUE(result.stopped_early);
  EXPECT_GE(result.completed, 40u);
  EXPECT_LT(result.completed, 64u);
  // The committed statistics are still a prefix of the deterministic
  // scenario stream: re-running with the same settings reproduces them.
  engine::Engine engine2(config);
  engine::Study study2(engine2);
  Runner runner2(study2, options);
  const CampaignResult replay = runner2.run(small_soil_sweep(64, 3));
  EXPECT_EQ(replay.completed, result.completed);
  EXPECT_EQ(replay.resistance.p50(), result.resistance.p50());
}

TEST(Runner, ValidatesItsOptions) {
  engine::Engine engine;
  engine::Study study(engine);
  CampaignOptions zero_window;
  zero_window.window = 0;
  EXPECT_THROW(Runner(study, zero_window), ebem::InvalidArgument);

  CampaignOptions p2_early_stop;
  p2_early_stop.quantiles = QuantileMode::kP2;
  p2_early_stop.early_stop.relative_half_width = 0.1;
  EXPECT_THROW(Runner(study, p2_early_stop), ebem::InvalidArgument);

  CampaignOptions flat_patch;
  flat_patch.safety = SafetyPatch{};  // zero-area rectangle
  EXPECT_THROW(Runner(study, flat_patch), ebem::InvalidArgument);
}

// ---------------------------------------------------------------------------
// FDM cross-validation of a sampled scenario
// ---------------------------------------------------------------------------

TEST(CampaignCrossValidation, SampledSoilScenarioMatchesFdm) {
  // One sampled soil from a campaign ensemble, analyzed by both solvers: the
  // stochastic machinery must hand the engine physically meaningful models,
  // not just numbers. Thick rod (FD-resolvable), validation tolerance as in
  // test_fdm.cpp.
  const auto nominal = soil::LayeredSoil::two_layer(0.01, 0.05, 3.0);
  const SoilEnsemble ensemble(SoilDistribution::relative(nominal, 0.15, 0.15, 0.1), 8, 41);
  const soil::LayeredSoil sampled = ensemble.scenario(5);

  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -8.5}, 0.5}};
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = 1.0;
  const bem::BemModel model(
      geom::Mesh::build(bem::split_at_interfaces(rod, sampled), mesh_options), sampled);
  const double bem_req = bem::analyze(model, {}).equivalent_resistance;

  fdm::FdOptions options;
  options.padding = 40.0;
  options.cells_x = 48;
  options.cells_y = 48;
  options.cells_z = 36;
  const fdm::FdResult fd = fdm::solve_grounding(rod, sampled, options);
  ASSERT_TRUE(fd.converged);
  EXPECT_NEAR(fd.equivalent_resistance, bem_req, 0.15 * bem_req);
}

}  // namespace
}  // namespace ebem::campaign

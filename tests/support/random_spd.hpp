// Shared random SPD matrix generator for solver tests and benches, so both
// exercise identically conditioned (diagonally dominant) systems.
#pragma once

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::la::testing {

/// Random symmetric matrix with entries in [-1, 1] and the diagonal shifted
/// by +n, making it strictly diagonally dominant and hence SPD.
inline SymMatrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) a(i, j) = dist(rng);
    a(i, i) = std::abs(a(i, i)) + static_cast<double>(n);
  }
  return a;
}

/// Random vector with entries in [-1, 1].
inline std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (double& v : x) v = dist(rng);
  return x;
}

}  // namespace ebem::la::testing

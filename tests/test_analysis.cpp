// End-to-end analysis: classical closed-form anchors and exact invariances.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/bem/analysis.hpp"
#include "src/common/math_utils.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"

namespace ebem::bem {
namespace {

AnalysisResult analyze_conductors(const std::vector<geom::Conductor>& conductors,
                                  const soil::LayeredSoil& soil, double element_length,
                                  double gpr = 1.0) {
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = element_length;
  const auto split = split_at_interfaces(conductors, soil);
  const BemModel model(geom::Mesh::build(split, mesh_options), soil);
  AnalysisOptions options;
  options.gpr = gpr;
  return analyze(model, options);
}

TEST(Analysis, VerticalRodMatchesDwightFormula) {
  // R = rho/(2 pi L) (ln(8L/d) - 1), Dwight/IEEE Std 80 eq. (52) for a rod
  // near the surface.
  const double rho = 100.0;
  const double length = 3.0;
  const double radius = 0.007;
  const std::vector<geom::Conductor> rod{
      {{0, 0, -1e-4}, {0, 0, -1e-4 - length}, radius}};
  const AnalysisResult result =
      analyze_conductors(rod, soil::LayeredSoil::uniform(1.0 / rho), 0.2);
  const double dwight =
      rho / (2.0 * kPi * length) * (std::log(8.0 * length / (2.0 * radius)) - 1.0);
  EXPECT_NEAR(result.equivalent_resistance, dwight, 0.03 * dwight);
}

TEST(Analysis, BuriedHorizontalWireMatchesSundeFormula) {
  // R = rho/(pi L) (ln(2L / sqrt(2 r h)) - 1) for a wire of length L,
  // radius r, buried at depth h (Sunde / IEEE Std 80 eq. (53) form).
  const double rho = 50.0;
  const double length = 20.0;
  const double radius = 0.006;
  const double depth = 0.8;
  const std::vector<geom::Conductor> wire{{{0, 0, -depth}, {length, 0, -depth}, radius}};
  const AnalysisResult result =
      analyze_conductors(wire, soil::LayeredSoil::uniform(1.0 / rho), 0.5);
  const double sunde =
      rho / (kPi * length) * (std::log(2.0 * length / std::sqrt(2.0 * radius * depth)) - 1.0);
  EXPECT_NEAR(result.equivalent_resistance, sunde, 0.04 * sunde);
}

TEST(Analysis, SquareGridNearIeeeStd80Estimate) {
  // IEEE Std 80 (Sverak) grid formula:
  // R = rho [ 1/L_T + 1/sqrt(20 A) (1 + 1/(1 + h sqrt(20/A))) ].
  const double rho = 50.0;
  geom::RectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 40.0;
  spec.cells_x = 4;
  spec.cells_y = 4;
  spec.depth = 0.8;
  spec.radius = 0.006;
  const auto grid = geom::make_rect_grid(spec);
  const AnalysisResult result =
      analyze_conductors(grid, soil::LayeredSoil::uniform(1.0 / rho), 0.0);
  const double area = 40.0 * 40.0;
  const double total = geom::total_length(grid);
  const double sverak =
      rho * (1.0 / total +
             1.0 / std::sqrt(20.0 * area) *
                 (1.0 + 1.0 / (1.0 + spec.depth * std::sqrt(20.0 / area))));
  EXPECT_NEAR(result.equivalent_resistance, sverak, 0.12 * sverak);
}

TEST(Analysis, ConductivityScalingIsExact) {
  // gamma -> s * gamma rescales the kernel by 1/s, so Req -> Req / s exactly
  // (same discretization, same quadrature).
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  const AnalysisResult base =
      analyze_conductors(wire, soil::LayeredSoil::uniform(0.01), 1.0);
  const AnalysisResult scaled =
      analyze_conductors(wire, soil::LayeredSoil::uniform(0.04), 1.0);
  EXPECT_NEAR(scaled.equivalent_resistance, base.equivalent_resistance / 4.0,
              1e-10 * base.equivalent_resistance);
}

TEST(Analysis, TwoLayerScalingIsExact) {
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  const AnalysisResult base =
      analyze_conductors(wire, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0), 1.0);
  const AnalysisResult scaled =
      analyze_conductors(wire, soil::LayeredSoil::two_layer(0.010, 0.032, 1.0), 1.0);
  EXPECT_NEAR(scaled.equivalent_resistance, base.equivalent_resistance / 2.0,
              1e-9 * base.equivalent_resistance);
}

TEST(Analysis, GprProportionality) {
  // V_Gamma = 1 is not restrictive (paper §2): doubling the GPR doubles the
  // current and the leakage densities, leaving Req unchanged.
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const AnalysisResult v1 = analyze_conductors(wire, soil, 1.0, 1.0);
  const AnalysisResult v2 = analyze_conductors(wire, soil, 1.0, 10e3);
  EXPECT_NEAR(v2.equivalent_resistance, v1.equivalent_resistance,
              1e-12 * v1.equivalent_resistance);
  EXPECT_NEAR(v2.total_current, 10e3 * v1.total_current, 1e-9 * v2.total_current);
  for (std::size_t i = 0; i < v1.sigma.size(); ++i) {
    EXPECT_NEAR(v2.sigma[i], 10e3 * v1.sigma[i], 1e-9 * std::abs(v2.sigma[i]));
  }
}

TEST(Analysis, EqualLayerTwoLayerMatchesUniform) {
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006},
                                          {{0, 0, -0.8}, {0, 10, -0.8}, 0.006}};
  const AnalysisResult uniform =
      analyze_conductors(wire, soil::LayeredSoil::uniform(0.02), 1.0);
  const AnalysisResult layered =
      analyze_conductors(wire, soil::LayeredSoil::two_layer(0.02, 0.02, 1.0), 1.0);
  EXPECT_NEAR(layered.equivalent_resistance, uniform.equivalent_resistance,
              1e-10 * uniform.equivalent_resistance);
}

TEST(Analysis, ResistiveUpperLayerRaisesResistance) {
  // The Barbera observation: a resistive layer above the grid raises Req
  // relative to uniform lower-layer soil.
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {20, 0, -0.8}, 0.006}};
  const AnalysisResult uniform =
      analyze_conductors(wire, soil::LayeredSoil::uniform(0.016), 0.5);
  const AnalysisResult layered =
      analyze_conductors(wire, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0), 0.5);
  EXPECT_GT(layered.equivalent_resistance, uniform.equivalent_resistance);
}

TEST(Analysis, RefinementConvergesMonotonically) {
  // Galerkin refinement should settle, not diverge (the "anomalous results"
  // the paper's ref [6] warns about do not appear with this formulation).
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  const auto soil = soil::LayeredSoil::uniform(0.02);
  double previous = 0.0;
  double previous_delta = 1e300;
  for (double h : {5.0, 2.5, 1.25, 0.625}) {
    const AnalysisResult result = analyze_conductors(wire, soil, h);
    if (previous != 0.0) {
      const double delta = std::abs(result.equivalent_resistance - previous);
      EXPECT_LT(delta, previous_delta * 1.05);
      previous_delta = delta;
    }
    previous = result.equivalent_resistance;
  }
  EXPECT_LT(previous_delta / previous, 0.01);
}

TEST(Analysis, MoreConductorsLowerResistance) {
  geom::RectGridSpec coarse;
  coarse.length_x = 40.0;
  coarse.length_y = 40.0;
  coarse.cells_x = 2;
  coarse.cells_y = 2;
  geom::RectGridSpec dense = coarse;
  dense.cells_x = 6;
  dense.cells_y = 6;
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const AnalysisResult r_coarse =
      analyze_conductors(geom::make_rect_grid(coarse), soil, 0.0);
  const AnalysisResult r_dense = analyze_conductors(geom::make_rect_grid(dense), soil, 0.0);
  EXPECT_LT(r_dense.equivalent_resistance, r_coarse.equivalent_resistance);
}

TEST(Analysis, RodsReduceResistanceInLayeredSoil) {
  // Adding rods that reach the conductive lower layer must lower Req.
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.05, 1.0);
  const auto bare = geom::make_rect_grid(spec);
  auto with_rods = bare;
  geom::RodSpec rod;
  rod.length = 3.0;
  geom::add_rods(with_rods, {{0, 0, 0}, {20, 0, 0}, {0, 20, 0}, {20, 20, 0}}, spec.depth, rod);
  const AnalysisResult without = analyze_conductors(bare, soil, 0.0);
  const AnalysisResult with = analyze_conductors(with_rods, soil, 0.0);
  EXPECT_LT(with.equivalent_resistance, without.equivalent_resistance);
}

TEST(Analysis, PhaseReportCapturesMatrixGenerationDominance) {
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  const BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                       soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
  PhaseReport report;
  AnalysisOptions options;
  (void)analyze(model, options, &report);
  EXPECT_GT(report.cpu_seconds(Phase::kMatrixGeneration), 0.0);
  EXPECT_GT(report.cpu_fraction(Phase::kMatrixGeneration), 0.5);
}

TEST(Analysis, RejectsNonPositiveGpr) {
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  const BemModel model(geom::Mesh::build(wire), soil::LayeredSoil::uniform(0.02));
  AnalysisOptions options;
  options.gpr = 0.0;
  EXPECT_THROW((void)analyze(model, options), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::bem

// Three-and-more-layer soils end to end: the extension the paper names in
// §4.2 (double/triple series; "CPU time may increase up to un-admissible
// levels"). Assembly falls back to the spectral kernel with quadrature, so
// meshes here are kept deliberately tiny.
#include <gtest/gtest.h>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/geom/mesh.hpp"
#include "src/post/surface_potential.hpp"

namespace ebem::bem {
namespace {

AnalysisResult analyze_wire(const soil::LayeredSoil& soil, double hankel_tolerance = 1e-7) {
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = 2.5;  // 4 elements
  const auto split = split_at_interfaces(wire, soil);
  const BemModel model(geom::Mesh::build(split, mesh_options), soil);
  AnalysisOptions options;
  options.assembly.hankel.tolerance = hankel_tolerance;
  options.assembly.integrator.inner_gauss_points = 8;
  return analyze(model, options);
}

TEST(MultiLayer, DegenerateThreeLayerMatchesTwoLayerAnalysis) {
  // Two identical lower layers must reproduce the two-layer result. The
  // two-layer path uses analytic-inner image integration, the three-layer
  // path generic quadrature of the spectral kernel, so agreement here
  // validates the whole fallback chain (within quadrature tolerance).
  const auto two = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::LayeredSoil three(
      {soil::Layer{0.005, 1.0}, soil::Layer{0.016, 2.0}, soil::Layer{0.016, 0.0}});
  const double r2 = analyze_wire(two).equivalent_resistance;
  const double r3 = analyze_wire(three).equivalent_resistance;
  EXPECT_NEAR(r3, r2, 0.01 * r2);
}

TEST(MultiLayer, DegenerateUniformSandwich) {
  const auto uniform = soil::LayeredSoil::uniform(0.02);
  const soil::LayeredSoil sandwich(
      {soil::Layer{0.02, 0.5}, soil::Layer{0.02, 1.0}, soil::Layer{0.02, 0.0}});
  const double r1 = analyze_wire(uniform).equivalent_resistance;
  const double r3 = analyze_wire(sandwich).equivalent_resistance;
  EXPECT_NEAR(r3, r1, 0.01 * r1);
}

TEST(MultiLayer, ResistiveMiddleLayerRaisesResistance) {
  // A resistive blanket between the electrode layer and the deep earth
  // obstructs current spreading: Req must rise relative to no blanket.
  const soil::LayeredSoil open(
      {soil::Layer{0.02, 1.5}, soil::Layer{0.02, 2.0}, soil::Layer{0.02, 0.0}});
  const soil::LayeredSoil blanketed(
      {soil::Layer{0.02, 1.5}, soil::Layer{0.002, 2.0}, soil::Layer{0.02, 0.0}});
  const double r_open = analyze_wire(open).equivalent_resistance;
  const double r_blanket = analyze_wire(blanketed).equivalent_resistance;
  EXPECT_GT(r_blanket, 1.2 * r_open);
}

TEST(MultiLayer, ConductiveBottomLowersResistance) {
  const soil::LayeredSoil shallow(
      {soil::Layer{0.01, 1.5}, soil::Layer{0.01, 1.5}, soil::Layer{0.01, 0.0}});
  const soil::LayeredSoil deep_conductor(
      {soil::Layer{0.01, 1.5}, soil::Layer{0.01, 1.5}, soil::Layer{0.1, 0.0}});
  EXPECT_LT(analyze_wire(deep_conductor).equivalent_resistance,
            analyze_wire(shallow).equivalent_resistance);
}

TEST(MultiLayer, SurfacePotentialEvaluatorWorks) {
  const soil::LayeredSoil three(
      {soil::Layer{0.01, 1.0}, soil::Layer{0.004, 1.0}, soil::Layer{0.04, 0.0}});
  const std::vector<geom::Conductor> wire{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = 5.0;
  const BemModel model(geom::Mesh::build(wire, mesh_options), three);
  AnalysisOptions options;
  const AnalysisResult result = analyze(model, options);

  post::PotentialOptions potential_options;
  const post::PotentialEvaluator evaluator(model, result.sigma, potential_options);
  const double above = evaluator.at({5.0, 0.0, 0.0});
  const double away = evaluator.at({5.0, 50.0, 0.0});
  EXPECT_GT(above, 0.0);
  EXPECT_GT(above, 2.0 * away);
}

TEST(MultiLayer, AnalyticInnerRequestIsRedirected) {
  // Requesting analytic inner integration with a 3-layer soil silently
  // falls back to Gauss in assembly (there are no closed-form images).
  const soil::LayeredSoil three(
      {soil::Layer{0.01, 1.0}, soil::Layer{0.02, 1.0}, soil::Layer{0.04, 0.0}});
  const std::vector<geom::Conductor> wire{{{0, 0, -0.5}, {6, 0, -0.5}, 0.006}};
  const BemModel model(geom::Mesh::build(wire), three);
  AnalysisOptions options;
  options.assembly.integrator.inner = InnerIntegration::kAnalytic;
  EXPECT_NO_THROW((void)analyze(model, options));
}

TEST(MultiLayer, DirectIntegratorConstructionWithHankelRequiresGauss) {
  const soil::LayeredSoil three(
      {soil::Layer{0.01, 1.0}, soil::Layer{0.02, 1.0}, soil::Layer{0.04, 0.0}});
  const soil::HankelKernel kernel(three);
  IntegratorOptions analytic;
  analytic.inner = InnerIntegration::kAnalytic;
  EXPECT_THROW(Integrator(kernel, analytic), ebem::InvalidArgument);
  IntegratorOptions gauss;
  gauss.inner = InnerIntegration::kGauss;
  EXPECT_NO_THROW(Integrator(kernel, gauss));
}

}  // namespace
}  // namespace ebem::bem

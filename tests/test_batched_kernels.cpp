// Property tests of the batched SIMD kernel path: batch-vs-scalar parity at
// every batch size, the log1p formulation vs the asinh reference, the
// branch-free transcendentals vs libm, the fused image sweep vs its
// term-by-term reference across series lengths (both sides of the
// vectorize-over-terms threshold), the mixed-precision tail's documented
// bound and off-by-default contract, and congruence-cache replay through the
// batched entry points down to the far-field sampling counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/integrator.hpp"
#include "src/bem/segment_integrals.hpp"
#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/soil/image_series.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::bem {
namespace {

using geom::Vec3;

/// Deterministic off-axis point cloud around a segment (no RNG: the tests
/// must be reproducible bit-for-bit across runs and sanitizers).
std::vector<Vec3> field_cloud(std::size_t count) {
  std::vector<Vec3> points;
  points.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double s = static_cast<double>(k);
    points.push_back({0.37 * s - 2.0, 1.1 + 0.23 * std::cos(1.7 * s), -0.4 - 0.31 * s});
  }
  return points;
}

struct Soa {
  std::vector<double> xs, ys, zs;
  explicit Soa(const std::vector<Vec3>& points) {
    for (const Vec3& p : points) {
      xs.push_back(p.x);
      ys.push_back(p.y);
      zs.push_back(p.z);
    }
  }
};

TEST(BatchedKernels, BatchAgreesWithScalarAtEveryCount) {
  // Covers: radius 0 (off axis), thin-wire radius, and a tilted segment;
  // batch sizes straddling every vector width and epilogue combination.
  const SegmentFrame frames[] = {
      make_segment_frame({0, 0, -0.8}, {3, 0, -0.8}, 0.0),
      make_segment_frame({0, 0, -0.8}, {3, 0, -0.8}, 0.006),
      make_segment_frame({-1, 0.5, -0.3}, {2, 1.5, -2.3}, 0.01),
  };
  for (const SegmentFrame& frame : frames) {
    for (const std::size_t count : {1u, 2u, 3u, 7u, 8u, 9u, 16u, 31u, 32u, 33u}) {
      const std::vector<Vec3> points = field_cloud(count);
      const Soa soa(points);
      std::vector<double> i0(count), i1(count);
      segment_potentials_batch(frame, soa.xs.data(), soa.ys.data(), soa.zs.data(), count,
                               i0.data(), i1.data());
      for (std::size_t q = 0; q < count; ++q) {
        const SegmentPotentials one = segment_potentials(frame, points[q]);
        EXPECT_NEAR(i0[q], one.i0, 1e-14 * (std::abs(one.i0) + 1.0)) << "count " << count;
        EXPECT_NEAR(i1[q], one.i1, 1e-14 * (std::abs(one.i1) + 1.0)) << "count " << count;
      }
    }
  }
}

TEST(BatchedKernels, MatchesAsinhReference) {
  const SegmentFrame frame = make_segment_frame({-1, 0.5, -0.3}, {2, 1.5, -2.3}, 0.008);
  for (const Vec3& p : field_cloud(24)) {
    const SegmentPotentials batched = segment_potentials(frame, p);
    const SegmentPotentials reference = segment_potentials_reference(frame, p);
    EXPECT_NEAR(batched.i0, reference.i0, 1e-12 * (std::abs(reference.i0) + 1.0));
    EXPECT_NEAR(batched.i1, reference.i1, 1e-12 * (std::abs(reference.i1) + 1.0));
  }
}

TEST(BatchedKernels, OnAxisLaneThrowsAnywhereInBatch) {
  // The multiversioned core cannot throw (target_clones dispatch cannot
  // unwind); the wrapper must still surface the documented exception even
  // when the offending lane sits mid-batch.
  const SegmentFrame frame = make_segment_frame({0, 0, -1}, {2, 0, -1}, 0.0);
  std::vector<Vec3> points = field_cloud(8);
  points[5] = {1.0, 0.0, -1.0};  // on the unregularized axis
  const Soa soa(points);
  std::vector<double> i0(points.size()), i1(points.size());
  EXPECT_THROW(segment_potentials_batch(frame, soa.xs.data(), soa.ys.data(), soa.zs.data(),
                                        points.size(), i0.data(), i1.data()),
               ebem::InvalidArgument);
}

TEST(SimdMath, Log1pMatchesStd) {
  // The kernels only pass y > 0; sweep 24 decades of it.
  for (double y = 1e-12; y < 1e12; y *= 3.7) {
    const double reference = std::log1p(y);
    EXPECT_NEAR(simd_log1p(y), reference, 1e-14 * (std::abs(reference) + 1e-300)) << y;
  }
}

TEST(SimdMath, ExpMatchesStdAndSaturates) {
  for (double x = -700.0; x <= 700.0; x += 13.7) {
    const double reference = std::exp(x);
    EXPECT_NEAR(simd_exp(x), reference, 1e-13 * reference) << x;
  }
  EXPECT_EQ(simd_exp(-800.0), 0.0);
  EXPECT_EQ(simd_exp(720.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(simd_exp(0.0), 1.0);
}

/// A synthetic mirrored-image sweep of `terms` terms over the segment
/// a->b: alternating mirrors, geometrically decaying weights — the shape
/// (not the values) of a two-layer image series.
ImageSegmentSweep synthetic_sweep(std::size_t terms, double decay) {
  const Vec3 a{0.4, -0.2, -0.7};
  const Vec3 b{2.9, 0.8, -1.4};
  const SegmentFrame frame = make_segment_frame(a, b, 0.006);
  ImageSegmentSweep sweep;
  sweep.ax = frame.a.x;
  sweep.ay = frame.a.y;
  sweep.ux = frame.u.x;
  sweep.uy = frame.u.y;
  sweep.length = frame.length;
  sweep.radius2 = frame.radius2;
  double weight = 1.0;
  for (std::size_t t = 0; t < terms; ++t) {
    const double mirror = (t % 2 == 0) ? 1.0 : -1.0;
    const double offset = (t % 2 == 0) ? -0.37 * static_cast<double>(t)
                                       : 0.41 * static_cast<double>(t) + 0.8;
    sweep.az.push_back(mirror * frame.a.z + offset);
    sweep.muz.push_back(mirror * frame.u.z);
    sweep.weight.push_back(weight);
    weight *= -decay;
  }
  sweep.tail_begin = terms;
  return sweep;
}

TEST(ImageSweep, MatchesReferenceAcrossSeriesLengths) {
  // Series lengths straddle the vectorize-over-terms threshold (16): both
  // the point-vectorized short path and the term-vectorized long path must
  // honor the same parity contract, at every batch size and basis.
  for (const std::size_t terms : {1u, 2u, 8u, 15u, 16u, 17u, 64u, 130u}) {
    const ImageSegmentSweep sweep = synthetic_sweep(terms, 0.82);
    for (const std::size_t count : {1u, 3u, 8u, 9u, 33u}) {
      const Soa soa(field_cloud(count));
      for (const bool linear : {true, false}) {
        std::vector<double> acc0(count, 0.0), acc1(count, 0.0);
        std::vector<double> ref0(count, 0.0), ref1(count, 0.0);
        accumulate_image_sweep(sweep, soa.xs.data(), soa.ys.data(), soa.zs.data(), count,
                               linear, acc0.data(), acc1.data());
        accumulate_image_sweep_reference(sweep, soa.xs.data(), soa.ys.data(), soa.zs.data(),
                                         count, linear, ref0.data(), ref1.data());
        for (std::size_t q = 0; q < count; ++q) {
          EXPECT_NEAR(acc0[q], ref0[q], 1e-12 * (std::abs(ref0[q]) + 1.0))
              << "terms " << terms << " count " << count << " linear " << linear;
          EXPECT_NEAR(acc1[q], ref1[q], 1e-12 * (std::abs(ref1[q]) + 1.0));
        }
      }
    }
  }
}

TEST(ImageSweep, MixedTailWithinDocumentedBound) {
  // Float tail over the terms whose |weight| < 1e-5 of the largest: the
  // sweep-level deviation from the all-double sweep must stay within the
  // single-precision budget those weights can carry (~1e-9 relative of the
  // head's scale; 1e-7 leaves contraction headroom, matching bench_kernels).
  ImageSegmentSweep sweep = synthetic_sweep(130, 0.82);
  std::size_t cut = sweep.size();
  for (std::size_t t = 0; t < sweep.size(); ++t) {
    if (std::abs(sweep.weight[t]) < 1e-5) {
      cut = t;
      break;
    }
  }
  ASSERT_LT(cut, sweep.size());

  const std::size_t count = 9;
  const Soa soa(field_cloud(count));
  std::vector<double> full0(count, 0.0), full1(count, 0.0);
  accumulate_image_sweep(sweep, soa.xs.data(), soa.ys.data(), soa.zs.data(), count, true,
                         full0.data(), full1.data());
  sweep.tail_begin = cut;
  std::vector<double> mixed0(count, 0.0), mixed1(count, 0.0);
  accumulate_image_sweep(sweep, soa.xs.data(), soa.ys.data(), soa.zs.data(), count, true,
                         mixed0.data(), mixed1.data());
  for (std::size_t q = 0; q < count; ++q) {
    EXPECT_NEAR(mixed0[q], full0[q], 1e-7 * (std::abs(full0[q]) + 1.0));
    EXPECT_NEAR(mixed1[q], full1[q], 1e-7 * (std::abs(full1[q]) + 1.0));
  }
}

bem::BemModel grid_model(std::size_t cells_x, std::size_t cells_y,
                         const soil::LayeredSoil& soil) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells_x);
  spec.length_y = 5.0 * static_cast<double>(cells_y);
  spec.cells_x = cells_x;
  spec.cells_y = cells_y;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

TEST(MixedTail, OffByDefaultAndBoundedAtAssemblyLevel) {
  ASSERT_EQ(IntegratorOptions{}.mixed_tail_threshold, 0.0);
  const BemModel model = grid_model(4, 4, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
  const AssemblyResult plain = assemble(model);

  // threshold 0 is the same code path as the default — bitwise identical.
  AssemblyOptions zero;
  zero.integrator.mixed_tail_threshold = 0.0;
  const AssemblyResult explicit_zero = assemble(model, zero);
  const auto plain_packed = plain.matrix.packed();
  const auto zero_packed = explicit_zero.matrix.packed();
  ASSERT_EQ(plain_packed.size(), zero_packed.size());
  for (std::size_t k = 0; k < plain_packed.size(); ++k) {
    EXPECT_EQ(plain_packed[k], zero_packed[k]);
  }

  // The documented assembly-level bound at the 1e-5 threshold.
  AssemblyOptions mixed;
  mixed.integrator.mixed_tail_threshold = 1e-5;
  const AssemblyResult tail = assemble(model, mixed);
  const auto tail_packed = tail.matrix.packed();
  double worst = 0.0;
  for (std::size_t k = 0; k < plain_packed.size(); ++k) {
    worst = std::max(worst,
                     std::abs(plain_packed[k] - tail_packed[k]) /
                         (std::abs(plain_packed[k]) + 1e-300));
  }
  EXPECT_GT(worst, 0.0);  // the tail really ran in single precision
  EXPECT_LE(worst, 1e-9);
}

BemElement make_element(Vec3 a, Vec3 b, double radius = 0.006) {
  BemElement element;
  element.a = a;
  element.b = b;
  element.radius = radius;
  element.length = geom::distance(a, b);
  element.layer = 0;
  return element;
}

TEST(CongruenceCache, BatchedEntryReplaysCongruentFields) {
  const soil::LayeredSoil soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::ImageKernel kernel(soil);
  const Integrator integrator(kernel, IntegratorOptions{});

  // The source lies on y = 0, so the y-mirror maps the (first field, source)
  // pair onto the (second field, source) pair: congruent within one batch.
  // The third field's orientation is incongruent with both.
  const BemElement source = make_element({0, 0, -0.6}, {5, 0, -0.6});
  std::vector<BemElement> storage;
  storage.push_back(make_element({0, 10.0, -0.6}, {5, 10.0, -0.6}));
  storage.push_back(make_element({0, -10.0, -0.6}, {5, -10.0, -0.6}));
  storage.push_back(make_element({3.0, 9.0, -0.6}, {3.0, 14.0, -0.6}));
  std::vector<const BemElement*> fields;
  for (const BemElement& e : storage) fields.push_back(&e);

  std::vector<LocalMatrix> plain(fields.size());
  integrator.element_pair_batch(source, fields, plain.data());

  CongruenceCache cache;
  std::vector<LocalMatrix> cold(fields.size());
  std::size_t cold_replays = 0;
  integrator.element_pair_batch(source, fields, cold.data(), &cache, &cold_replays);
  // The mirror copy replays within the very first batch.
  EXPECT_EQ(cold_replays, 1u);

  std::vector<LocalMatrix> warm(fields.size());
  std::size_t warm_replays = 0;
  integrator.element_pair_batch(source, fields, warm.data(), &cache, &warm_replays);
  EXPECT_EQ(warm_replays, fields.size());

  for (std::size_t k = 0; k < fields.size(); ++k) {
    for (std::size_t p = 0; p < 2; ++p) {
      for (std::size_t q = 0; q < 2; ++q) {
        EXPECT_EQ(cold[k].value[p][q], plain[k].value[p][q]);
        EXPECT_EQ(warm[k].value[p][q], plain[k].value[p][q]);
      }
    }
  }
}

TEST(CongruenceCache, FarFieldSamplingReplaysOnOrderedGrid) {
  // End to end: compressed assembly over a translation-invariant grid with a
  // warm cache must serve part of its ACA sampling bill from the cache (the
  // exact bill is pairs_near + pairs_sampled - pairs_replayed).
  const BemModel model = grid_model(4, 60, soil::LayeredSoil::uniform(0.01));
  CongruenceCache cache;
  AssemblyExecution execution;
  execution.cache = &cache;
  execution.storage.tile_size = 32;
  execution.storage.compression = {
      .epsilon = 1e-8, .min_block = 32, .max_rank = 64, .min_rank_budget = 8};
  const AssemblyResult result = assemble(model, {}, execution);
  ASSERT_GT(result.far_field.pairs_sampled, 0u);
  EXPECT_GT(result.far_field.pairs_replayed, 0u);
  EXPECT_LE(result.far_field.pairs_replayed, result.far_field.pairs_sampled);
}

}  // namespace
}  // namespace ebem::bem

// Leakage-density post-processing: consistency with I_Gamma, edge effect,
// layer splits.
#include <gtest/gtest.h>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/post/leakage.hpp"

namespace ebem::post {
namespace {

struct Solved {
  bem::BemModel model;
  bem::AnalysisResult result;
};

Solved solve(const std::vector<geom::Conductor>& conductors, const soil::LayeredSoil& soil,
             bem::BasisKind basis = bem::BasisKind::kLinear) {
  const auto split = bem::split_at_interfaces(conductors, soil);
  bem::BemModel model(geom::Mesh::build(split), soil);
  bem::AnalysisOptions options;
  options.assembly.integrator.basis = basis;
  bem::AnalysisResult result = bem::analyze(model, options);
  return {std::move(model), std::move(result)};
}

std::vector<geom::Conductor> square_grid() {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  return geom::make_rect_grid(spec);
}

TEST(Leakage, ElementCurrentsSumToTotalCurrentConstantBasis) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::uniform(0.02),
                         bem::BasisKind::kConstant);
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kConstant);
  const LeakageStats stats = leakage_stats(s.model, leakage);
  // With piecewise-constant lambda the element sums reproduce I exactly.
  EXPECT_NEAR(stats.total_current, s.result.total_current, 1e-9 * s.result.total_current);
}

TEST(Leakage, ElementCurrentsSumToTotalCurrentLinearBasis) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::uniform(0.02));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  const LeakageStats stats = leakage_stats(s.model, leakage);
  // Midpoint value x length integrates linear lambda exactly as well.
  EXPECT_NEAR(stats.total_current, s.result.total_current, 1e-9 * s.result.total_current);
}

TEST(Leakage, AllDensitiesPositive) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  for (const ElementLeakage& entry : leakage) {
    EXPECT_GT(entry.mean_line_density, 0.0);
    EXPECT_GT(entry.surface_density, entry.mean_line_density);  // 2 pi a < 1
  }
}

TEST(Leakage, EdgeElementsLeakMoreThanCenter) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::uniform(0.02));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  // Compare the element nearest the corner with the one nearest the center.
  double corner_density = 0.0;
  double center_density = 1e300;
  for (const ElementLeakage& entry : leakage) {
    const double corner_distance = std::hypot(entry.midpoint.x, entry.midpoint.y);
    const double center_distance =
        std::hypot(entry.midpoint.x - 10.0, entry.midpoint.y - 10.0);
    if (corner_distance < 6.0) corner_density = std::max(corner_density, entry.mean_line_density);
    if (center_distance < 6.0) center_density = std::min(center_density, entry.mean_line_density);
  }
  EXPECT_GT(corner_density, center_density);
}

TEST(Leakage, HottestElementIsReported) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::uniform(0.02));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  const LeakageStats stats = leakage_stats(s.model, leakage);
  EXPECT_EQ(leakage[stats.hottest_element].mean_line_density, stats.max_line_density);
  EXPECT_GE(stats.max_line_density, stats.mean_line_density);
  EXPECT_LE(stats.min_line_density, stats.mean_line_density);
}

TEST(Leakage, LayerFractionsSumToOne) {
  // Grid + rods crossing into the lower layer.
  auto grid = square_grid();
  geom::RodSpec rod;
  rod.length = 2.0;
  geom::add_rods(grid, {{0, 0, 0}, {20, 20, 0}}, 0.8, rod);
  const Solved s = solve(grid, soil::LayeredSoil::two_layer(0.005, 0.05, 1.0));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  const LeakageStats stats = leakage_stats(s.model, leakage);
  ASSERT_EQ(stats.layer_current_fraction.size(), 2u);
  EXPECT_NEAR(stats.layer_current_fraction[0] + stats.layer_current_fraction[1], 1.0, 1e-12);
  EXPECT_GT(stats.layer_current_fraction[1], 0.0);
}

TEST(Leakage, RodsInConductiveLayerCarryDisproportionateCurrent) {
  auto grid = square_grid();
  geom::RodSpec rod;
  rod.length = 3.0;
  geom::add_rods(grid, {{0, 0, 0}, {20, 0, 0}, {0, 20, 0}, {20, 20, 0}}, 0.8, rod);
  // Lower layer 20x more conductive: rod tips should leak far above their
  // length share.
  const Solved s = solve(grid, soil::LayeredSoil::two_layer(0.005, 0.1, 1.0));
  const auto leakage = element_leakage(s.model, s.result, bem::BasisKind::kLinear);
  const LeakageStats stats = leakage_stats(s.model, leakage);
  double lower_length = 0.0;
  double total_length = 0.0;
  for (const auto& element : s.model.elements()) {
    total_length += element.length;
    if (element.layer == 1) lower_length += element.length;
  }
  const double length_share = lower_length / total_length;
  EXPECT_GT(stats.layer_current_fraction[1], 2.0 * length_share);
}

TEST(Leakage, SizeMismatchRejected) {
  const Solved s = solve(square_grid(), soil::LayeredSoil::uniform(0.02));
  bem::AnalysisResult truncated = s.result;
  truncated.sigma.pop_back();
  EXPECT_THROW((void)element_leakage(s.model, truncated, bem::BasisKind::kLinear),
               ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::post

// IEEE Std 80 safety parameters: tolerable limits and field assessment.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/bem/analysis.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/post/safety.hpp"

namespace ebem::post {
namespace {

TEST(SafetyLimits, NoSurfaceLayerDeratingIsUnity) {
  SafetyCriteria criteria;
  criteria.surface_resistivity = 0.0;
  EXPECT_DOUBLE_EQ(derating_factor(criteria), 1.0);
}

TEST(SafetyLimits, DeratingMatchesIeeeExample) {
  // IEEE Std 80-2000 worked example: rho = 100, rho_s = 2500, h_s = 0.1:
  // Cs = 1 - 0.09 (1 - 100/2500) / (2*0.1 + 0.09) ~= 0.702.
  SafetyCriteria criteria;
  criteria.soil_resistivity = 100.0;
  criteria.surface_resistivity = 2500.0;
  criteria.surface_layer_thickness = 0.1;
  EXPECT_NEAR(derating_factor(criteria), 0.702, 0.002);
}

TEST(SafetyLimits, TouchLimitMatchesIeeeExample) {
  // With the Cs above and t_s = 0.5 s, 50 kg body:
  // E_touch = (1000 + 1.5 * 0.702 * 2500) * 0.116 / sqrt(0.5).
  SafetyCriteria criteria;
  criteria.soil_resistivity = 100.0;
  criteria.surface_resistivity = 2500.0;
  criteria.surface_layer_thickness = 0.1;
  criteria.fault_duration = 0.5;
  const double cs = derating_factor(criteria);
  const double expected = (1000.0 + 1.5 * cs * 2500.0) * 0.116 / std::sqrt(0.5);
  EXPECT_NEAR(tolerable_touch_voltage(criteria), expected, 1e-9);
  EXPECT_NEAR(expected, 595.0, 10.0);  // the standard's ballpark number
}

TEST(SafetyLimits, StepLimitExceedsTouchLimit) {
  // The step path (foot-to-foot) tolerates more than the touch path.
  SafetyCriteria criteria;
  criteria.surface_resistivity = 2500.0;
  EXPECT_GT(tolerable_step_voltage(criteria), tolerable_touch_voltage(criteria));
}

TEST(SafetyLimits, ShorterFaultAllowsHigherVoltage) {
  SafetyCriteria fast;
  fast.fault_duration = 0.1;
  SafetyCriteria slow;
  slow.fault_duration = 1.0;
  EXPECT_GT(tolerable_touch_voltage(fast), tolerable_touch_voltage(slow));
}

TEST(SafetyLimits, HeavierBodyTolerance) {
  SafetyCriteria light;
  SafetyCriteria heavy;
  heavy.body_weight_50kg = false;
  EXPECT_GT(tolerable_touch_voltage(heavy), tolerable_touch_voltage(light));
}

TEST(SafetyLimits, InvalidDurationRejected) {
  SafetyCriteria criteria;
  criteria.fault_duration = 0.0;
  EXPECT_THROW(tolerable_touch_voltage(criteria), ebem::InvalidArgument);
}

struct Solved {
  bem::BemModel model;
  bem::AnalysisResult result;
};

Solved solve_grid(double gpr) {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                      soil::LayeredSoil::uniform(0.02));
  bem::AnalysisOptions options;
  options.gpr = gpr;
  bem::AnalysisResult result = bem::analyze(model, options);
  return {std::move(model), std::move(result)};
}

TEST(SafetyAssessment, TouchVoltageBoundedByGpr) {
  const Solved solved = solve_grid(10e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const SafetyAssessment a =
      assess_safety(evaluator, 10e3, -10.0, 30.0, -10.0, 30.0, 9, 9, {});
  EXPECT_GT(a.max_touch_voltage, 0.0);
  EXPECT_LT(a.max_touch_voltage, 10e3);
  EXPECT_GT(a.max_step_voltage, 0.0);
  EXPECT_LT(a.max_step_voltage, a.max_touch_voltage);
}

TEST(SafetyAssessment, WorstTouchIsAwayFromGridCenter) {
  const Solved solved = solve_grid(10e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const SafetyAssessment a =
      assess_safety(evaluator, 10e3, -10.0, 30.0, -10.0, 30.0, 9, 9, {});
  // The surface potential sags (touch voltage grows) away from the grid.
  const double dist = std::hypot(a.worst_touch_point.x - 10.0, a.worst_touch_point.y - 10.0);
  EXPECT_GT(dist, 10.0);
}

TEST(SafetyAssessment, MeshVoltageInsideGridIsLowerThanPatchWorstCase) {
  const Solved solved = solve_grid(10e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const double inside = mesh_voltage(evaluator, 10e3, 2.0, 18.0, 2.0, 18.0, 9, 9);
  const SafetyAssessment wide =
      assess_safety(evaluator, 10e3, -20.0, 40.0, -20.0, 40.0, 9, 9, {});
  EXPECT_GT(inside, 0.0);
  EXPECT_LT(inside, wide.max_touch_voltage);
}

TEST(SafetyAssessment, SafeFlagsFollowLimits) {
  const Solved solved = solve_grid(100.0);  // tiny GPR: everything safe
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  SafetyCriteria criteria;
  criteria.surface_resistivity = 2500.0;
  const SafetyAssessment a =
      assess_safety(evaluator, 100.0, 0.0, 20.0, 0.0, 20.0, 5, 5, criteria);
  EXPECT_TRUE(a.touch_safe());
  EXPECT_TRUE(a.step_safe());
}

TEST(SafetyAssessment, HighGprTripsLimits) {
  const Solved solved = solve_grid(50e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const SafetyAssessment a =
      assess_safety(evaluator, 50e3, -30.0, 50.0, -30.0, 50.0, 9, 9, {});
  EXPECT_FALSE(a.touch_safe());
}

}  // namespace
}  // namespace ebem::post

// Parallel solve-phase kernels: blocked Cholesky vs the unblocked reference,
// determinism across pool sizes, the strip-parallel symmetric matvec, and
// pool-backed PCG.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "src/common/error.hpp"
#include "src/la/cg.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/parallel/thread_pool.hpp"
#include "tests/support/random_spd.hpp"

namespace ebem::la {
namespace {

using testing::random_spd;
using testing::random_vector;

/// Unblocked textbook LL^T, the seed implementation, kept as the reference
/// the blocked factorization is checked against.
std::vector<double> reference_factor(const SymMatrix& a) {
  const std::size_t n = a.size();
  std::vector<double> l = a.packed();
  const auto index = [](std::size_t i, std::size_t j) { return i * (i + 1) / 2 + j; };
  for (std::size_t j = 0; j < n; ++j) {
    double diag = l[index(j, j)];
    for (std::size_t k = 0; k < j; ++k) diag -= l[index(j, k)] * l[index(j, k)];
    EXPECT_GT(diag, 0.0);
    const double ljj = std::sqrt(diag);
    l[index(j, j)] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = l[index(i, j)];
      for (std::size_t k = 0; k < j; ++k) sum -= l[index(i, k)] * l[index(j, k)];
      l[index(i, j)] = sum / ljj;
    }
  }
  return l;
}

struct BlockedCase {
  std::size_t n;
  std::size_t block;
};

class BlockedCholesky : public ::testing::TestWithParam<BlockedCase> {};

TEST_P(BlockedCholesky, MatchesUnblockedReference) {
  const auto [n, block] = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(1000 + n + block));
  const std::vector<double> reference = reference_factor(a);

  const Cholesky blocked(a, {.block = block});
  const auto factor = blocked.packed_factor();
  ASSERT_EQ(factor.size(), reference.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_NEAR(factor[k], reference[k], 1e-12 * std::abs(reference[k]) + 1e-13) << k;
  }
}

TEST_P(BlockedCholesky, ParallelFactorIsBitIdenticalToSerialBlocked) {
  // Every entry of L is produced by one worker with a fixed summation
  // order, so threading must not change a single bit.
  const auto [n, block] = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(2000 + n + block));
  const Cholesky serial(a, {.block = block});
  for (std::size_t threads : {2, 4}) {
    par::ThreadPool pool(threads);
    const Cholesky parallel(a, {.block = block, .pool = &pool});
    const auto s = serial.packed_factor();
    const auto p = parallel.packed_factor();
    ASSERT_EQ(s.size(), p.size());
    for (std::size_t k = 0; k < s.size(); ++k) EXPECT_EQ(s[k], p[k]) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, BlockedCholesky,
                         ::testing::Values(BlockedCase{1, 4}, BlockedCase{7, 2},
                                           BlockedCase{16, 16}, BlockedCase{33, 8},
                                           BlockedCase{64, 16}, BlockedCase{97, 32},
                                           BlockedCase{130, 64}, BlockedCase{50, 1},
                                           BlockedCase{40, 128}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_b" +
                                  std::to_string(info.param.block);
                         });

TEST(BlockedCholeskyErrors, RejectsIndefiniteMatrixInAnyBlocking) {
  SymMatrix a(3);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // leading 2x2 block is indefinite
  a(2, 2) = 5.0;
  for (std::size_t block : {1, 2, 8}) {
    EXPECT_THROW(Cholesky(a, {.block = block}), InvalidArgument) << block;
  }
  par::ThreadPool pool(2);
  EXPECT_THROW(Cholesky(a, {.block = 2, .pool = &pool}), InvalidArgument);
}

TEST(BlockedCholeskyErrors, RejectsZeroBlock) {
  const SymMatrix a = random_spd(4, 7);
  EXPECT_THROW(Cholesky(a, {.block = 0}), InvalidArgument);
}

TEST(ParallelMultiply, MatchesSerialWalk) {
  for (std::size_t n : {SymMatrix::kParallelCutoff, SymMatrix::kParallelCutoff + 89}) {
    const SymMatrix a = random_spd(n, static_cast<unsigned>(n));
    const std::vector<double> x = random_vector(n, static_cast<unsigned>(n + 1));
    std::vector<double> serial(n), parallel(n);
    a.multiply(x, serial);
    for (std::size_t threads : {1, 2, 4}) {
      par::ThreadPool pool(threads);
      a.multiply(x, parallel, &pool);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(serial[i], parallel[i], 1e-12 * std::abs(serial[i]) + 1e-13)
            << "n=" << n << " t=" << threads << " i=" << i;
      }
    }
    // Null pool must take the serial path exactly.
    a.multiply(x, parallel, nullptr);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], parallel[i]);
  }
}

TEST(ParallelMultiply, SmallSystemsFallBackToSerialBitwise) {
  // Minimum-size threshold: below kParallelCutoff the pool dispatch costs
  // more than the matvec (169-DoF PCG ran 0.37x at 4 threads), so the
  // pooled overload must take the exact serial path — bitwise, not merely
  // within reordering tolerance.
  for (std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{169},
                        SymMatrix::kParallelCutoff - 1}) {
    const SymMatrix a = random_spd(n, static_cast<unsigned>(100 + n));
    const std::vector<double> x = random_vector(n, static_cast<unsigned>(n + 1));
    std::vector<double> serial(n), pooled(n);
    a.multiply(x, serial);
    par::ThreadPool pool(4);
    a.multiply(x, pooled, &pool);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], pooled[i]) << "n=" << n << " " << i;
  }
}

TEST(ParallelMultiply, DeterministicForFixedPoolSize) {
  const std::size_t n = SymMatrix::kParallelCutoff + 27;
  const SymMatrix a = random_spd(n, 5);
  const std::vector<double> x = random_vector(n, 6);
  par::ThreadPool pool(3);
  std::vector<double> first(n), repeat(n);
  a.multiply(x, first, &pool);
  for (int round = 0; round < 5; ++round) {
    a.multiply(x, repeat, &pool);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(first[i], repeat[i]) << i;
  }
}

TEST(ParallelCg, PoolBackedSolveMatchesSerial) {
  // Above kParallelCutoff so the pooled matvec actually runs in parallel.
  const std::size_t n = SymMatrix::kParallelCutoff + 88;
  const SymMatrix a = random_spd(n, 11);
  std::vector<double> x_true = random_vector(n, 12);
  std::vector<double> b(n);
  a.multiply(x_true, b);

  CgOptions serial_options;
  serial_options.tolerance = 1e-13;
  const CgResult serial = conjugate_gradient(a, b, serial_options);
  ASSERT_TRUE(serial.converged);

  par::ThreadPool pool(4);
  CgOptions pool_options = serial_options;
  pool_options.pool = &pool;
  const CgResult parallel = conjugate_gradient(a, b, pool_options);
  ASSERT_TRUE(parallel.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(serial.x[i], parallel.x[i], 1e-9 * std::abs(serial.x[i]) + 1e-11) << i;
  }
}

}  // namespace
}  // namespace ebem::la

// Tests for the common substrate: contracts, timers, phase report.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/phase_report.hpp"
#include "src/common/timer.hpp"

namespace ebem {
namespace {

TEST(Error, ExpectThrowsInvalidArgument) {
  EXPECT_THROW(EBEM_EXPECT(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(EBEM_EXPECT(true, "fine"));
}

TEST(Error, EnsureThrowsInternalError) {
  EXPECT_THROW(EBEM_ENSURE(false, "bug"), InternalError);
  EXPECT_NO_THROW(EBEM_ENSURE(true, "fine"));
}

TEST(Error, MessageCarriesContext) {
  try {
    EBEM_EXPECT(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(MathUtils, AlmostEqual) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-15));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
  EXPECT_TRUE(almost_equal(1e308, 1e308));
}

TEST(MathUtils, Square) {
  EXPECT_DOUBLE_EQ(square(3.0), 9.0);
  EXPECT_DOUBLE_EQ(square(-2.5), 6.25);
}

TEST(Timers, WallTimerAdvances) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.seconds(), 0.005);
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.5);
}

TEST(Timers, CpuTimerMeasuresWork) {
  CpuTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  EXPECT_GT(timer.seconds(), 0.0);
}

TEST(PhaseReport, AccumulatesAndTotals) {
  PhaseReport report;
  report.add(Phase::kMatrixGeneration, 2.0, 1.5);
  report.add(Phase::kMatrixGeneration, 1.0, 0.5);
  report.add(Phase::kLinearSolve, 0.25, 0.25);
  EXPECT_DOUBLE_EQ(report.wall_seconds(Phase::kMatrixGeneration), 3.0);
  EXPECT_DOUBLE_EQ(report.cpu_seconds(Phase::kMatrixGeneration), 2.0);
  EXPECT_DOUBLE_EQ(report.total_wall_seconds(), 3.25);
  EXPECT_DOUBLE_EQ(report.total_cpu_seconds(), 2.25);
}

TEST(PhaseReport, CpuFraction) {
  PhaseReport report;
  EXPECT_DOUBLE_EQ(report.cpu_fraction(Phase::kLinearSolve), 0.0);
  report.add(Phase::kMatrixGeneration, 0.0, 3.0);
  report.add(Phase::kLinearSolve, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(report.cpu_fraction(Phase::kMatrixGeneration), 0.75);
}

TEST(PhaseReport, ToStringNamesEveryPhase) {
  PhaseReport report;
  const std::string text = report.to_string();
  for (const char* name : {"Data Input", "Data Preprocessing", "Matrix Generation",
                           "Linear System Solving", "Results Storage", "Total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(PhaseReport, CountersAccumulateByName) {
  PhaseReport report;
  EXPECT_DOUBLE_EQ(report.counter("Congruence cache hits"), 0.0);
  report.add_counter("Congruence cache hits", 100.0);
  report.add_counter("Congruence cache misses", 7.0);
  report.add_counter("Congruence cache hits", 23.0);
  EXPECT_DOUBLE_EQ(report.counter("Congruence cache hits"), 123.0);
  EXPECT_DOUBLE_EQ(report.counter("Congruence cache misses"), 7.0);
  ASSERT_EQ(report.counters().size(), 2u);
  // First-added order is preserved.
  EXPECT_EQ(report.counters()[0].first, "Congruence cache hits");
}

TEST(PhaseReport, ToStringIncludesCounters) {
  PhaseReport report;
  EXPECT_EQ(report.to_string().find("cache"), std::string::npos);
  report.add_counter("Congruence cache hits", 42.0);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("Congruence cache hits"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(PhaseReport, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kDataInput), "Data Input");
  EXPECT_STREQ(phase_name(Phase::kResultsStorage), "Results Storage");
}

}  // namespace
}  // namespace ebem

// Elemental Galerkin integrator: analytic vs quadrature paths, influence
// coefficients, layer handling.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bem/integrator.hpp"
#include "src/common/math_utils.hpp"
#include "src/geom/mesh.hpp"

namespace ebem::bem {
namespace {

using geom::Conductor;
using geom::Vec3;

BemModel make_two_bar_model(const soil::LayeredSoil& soil) {
  const std::vector<Conductor> bars{{{0, 0, -0.8}, {5, 0, -0.8}, 0.006},
                                    {{0, 3, -0.8}, {5, 3, -0.8}, 0.006}};
  return BemModel(geom::Mesh::build(bars), soil);
}

TEST(Integrator, AnalyticAndGaussInnerAgreeForSeparatedElements) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::ImageKernel kernel(soil, {1e-10, 4096});
  const BemModel model = make_two_bar_model(soil);

  IntegratorOptions analytic;
  analytic.inner = InnerIntegration::kAnalytic;
  IntegratorOptions gauss;
  gauss.inner = InnerIntegration::kGauss;
  gauss.inner_gauss_points = 24;

  const Integrator ia(kernel, analytic);
  const Integrator ig(kernel, gauss);
  const LocalMatrix ma = ia.element_pair(model.elements()[0], model.elements()[1]);
  const LocalMatrix mg = ig.element_pair(model.elements()[0], model.elements()[1]);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      EXPECT_NEAR(ma.value[p][q], mg.value[p][q], 1e-8 * std::abs(ma.value[p][q]));
    }
  }
}

TEST(Integrator, SelfPairAnalyticBeatsCoarseGaussInner) {
  // On the self element the integrand peaks at distance ~radius: the
  // analytic path nails the inner integral where coarse Gauss struggles —
  // this is the justification for the paper's analytic technique.
  const auto soil = soil::LayeredSoil::uniform(0.016);
  const soil::ImageKernel kernel(soil);
  const BemModel model = make_two_bar_model(soil);

  IntegratorOptions analytic;
  const Integrator ia(kernel, analytic);

  IntegratorOptions fine_gauss;
  fine_gauss.inner = InnerIntegration::kGauss;
  fine_gauss.inner_gauss_points = 64;
  const Integrator ifine(kernel, fine_gauss);

  IntegratorOptions coarse_gauss = fine_gauss;
  coarse_gauss.inner_gauss_points = 4;
  const Integrator icoarse(kernel, coarse_gauss);

  const double ref = ifine.element_pair(model.elements()[0], model.elements()[0]).value[0][0];
  const double va = ia.element_pair(model.elements()[0], model.elements()[0]).value[0][0];
  const double vc = icoarse.element_pair(model.elements()[0], model.elements()[0]).value[0][0];
  EXPECT_LT(std::abs(va - ref), std::abs(vc - ref));
}

TEST(Integrator, SelfBlockIsSymmetricAndPositive) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const soil::ImageKernel kernel(soil);
  const BemModel model = make_two_bar_model(soil);
  const Integrator integrator(kernel, {});
  const LocalMatrix m = integrator.element_pair(model.elements()[0], model.elements()[0]);
  EXPECT_GT(m.value[0][0], 0.0);
  EXPECT_GT(m.value[1][1], 0.0);
  EXPECT_GT(m.value[0][1], 0.0);
  EXPECT_NEAR(m.value[0][1], m.value[1][0], 1e-8 * m.value[0][1]);
  // Diagonal dominance of the singular self term.
  EXPECT_GT(m.value[0][0], m.value[0][1]);
}

TEST(Integrator, CrossPairReciprocityThroughTranspose) {
  // Block(beta, alpha) must equal Block(alpha, beta)^T (same radius case).
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::ImageKernel kernel(soil, {1e-11, 4096});
  const BemModel model = make_two_bar_model(soil);
  const Integrator integrator(kernel, {});
  const LocalMatrix ab = integrator.element_pair(model.elements()[0], model.elements()[1]);
  const LocalMatrix ba = integrator.element_pair(model.elements()[1], model.elements()[0]);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      EXPECT_NEAR(ab.value[p][q], ba.value[q][p], 1e-7 * std::abs(ab.value[p][q]));
    }
  }
}

TEST(Integrator, CrossLayerReciprocity) {
  // One bar in the upper layer, one rod piece in the lower layer: the
  // transpose relation must hold across layers (prefactor included).
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::ImageKernel kernel(soil, {1e-11, 4096});
  const std::vector<Conductor> mixed{{{0, 0, -0.8}, {5, 0, -0.8}, 0.006},
                                     {{2, 1, -1.2}, {2, 1, -2.2}, 0.007}};
  const BemModel model(geom::Mesh::build(mixed), soil);
  ASSERT_EQ(model.elements()[0].layer, 0u);
  ASSERT_EQ(model.elements()[1].layer, 1u);
  const Integrator integrator(kernel, {});
  const LocalMatrix ab = integrator.element_pair(model.elements()[0], model.elements()[1]);
  const LocalMatrix ba = integrator.element_pair(model.elements()[1], model.elements()[0]);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      // Radii differ (bar vs rod) so the thin-wire regularization leaves a
      // small residual asymmetry; the kernel itself is reciprocal.
      EXPECT_NEAR(ab.value[p][q], ba.value[q][p], 1e-3 * std::abs(ab.value[p][q]));
    }
  }
}

TEST(Integrator, ConstantBasisUsesSingleLocalDof) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const soil::ImageKernel kernel(soil);
  const BemModel model = make_two_bar_model(soil);
  IntegratorOptions options;
  options.basis = BasisKind::kConstant;
  const Integrator integrator(kernel, options);
  const LocalMatrix m = integrator.element_pair(model.elements()[0], model.elements()[1]);
  EXPECT_GT(m.value[0][0], 0.0);
  EXPECT_DOUBLE_EQ(m.value[0][1], 0.0);
  EXPECT_DOUBLE_EQ(m.value[1][0], 0.0);
  EXPECT_DOUBLE_EQ(m.value[1][1], 0.0);
}

TEST(Integrator, ConstantBlockEqualsSumOfLinearBlock) {
  // The constant shape function is the sum of the two hats, so the constant
  // coefficient equals the sum of the four linear entries.
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const soil::ImageKernel kernel(soil);
  const BemModel model = make_two_bar_model(soil);
  IntegratorOptions constant;
  constant.basis = BasisKind::kConstant;
  const Integrator ic(kernel, constant);
  const Integrator il(kernel, {});
  const LocalMatrix mc = ic.element_pair(model.elements()[0], model.elements()[1]);
  const LocalMatrix ml = il.element_pair(model.elements()[0], model.elements()[1]);
  const double linear_sum =
      ml.value[0][0] + ml.value[0][1] + ml.value[1][0] + ml.value[1][1];
  EXPECT_NEAR(mc.value[0][0], linear_sum, 1e-10 * linear_sum);
}

TEST(Integrator, PotentialInfluenceMatchesPointKernelFarAway) {
  // Far from the element, sum(influences) ~ G(x, midpoint) * L.
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const soil::ImageKernel kernel(soil);
  const BemModel model = make_two_bar_model(soil);
  const Integrator integrator(kernel, {});
  const Vec3 x{200, 0, 0};
  const auto influence = integrator.potential_influence(x, model.elements()[0]);
  const BemElement& e = model.elements()[0];
  const double expected =
      kernel.evaluate(x, 0.5 * (e.a + e.b)) * e.length;
  EXPECT_NEAR(influence[0] + influence[1], expected, 1e-3 * expected);
}

TEST(Integrator, PotentialInfluenceSurfacePoint) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::ImageKernel kernel(soil, {1e-10, 4096});
  const BemModel model = make_two_bar_model(soil);
  const Integrator integrator(kernel, {});
  const auto influence = integrator.potential_influence({2.5, 1.5, 0.0}, model.elements()[0]);
  EXPECT_GT(influence[0], 0.0);
  EXPECT_GT(influence[1], 0.0);
  EXPECT_TRUE(std::isfinite(influence[0]));
}

}  // namespace
}  // namespace ebem::bem

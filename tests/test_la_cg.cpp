// Jacobi-preconditioned conjugate gradient tests.
#include <gtest/gtest.h>

#include <random>

#include "src/la/cg.hpp"
#include "src/la/cholesky.hpp"

namespace ebem::la {
namespace {

SymMatrix random_spd(std::size_t n, unsigned seed, double diag_boost) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) a(i, j) = dist(rng);
    a(i, i) = std::abs(a(i, i)) + diag_boost;
  }
  return a;
}

TEST(ConjugateGradient, SolvesIdentityInOneIteration) {
  SymMatrix eye(5);
  for (std::size_t i = 0; i < 5; ++i) eye(i, i) = 1.0;
  const std::vector<double> b{1, 2, 3, 4, 5};
  const CgResult result = conjugate_gradient(eye, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(result.x[i], b[i], 1e-12);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  SymMatrix a(3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 2.0;
  const CgResult result = conjugate_gradient(a, std::vector<double>(3, 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (double v : result.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConjugateGradient, EmptySystem) {
  SymMatrix a(0);
  const CgResult result = conjugate_gradient(a, std::vector<double>{});
  EXPECT_TRUE(result.converged);
}

class CgSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgSizes, MatchesCholesky) {
  const std::size_t n = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(n), static_cast<double>(n));
  std::vector<double> b(n);
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (double& v : b) v = dist(rng);

  const std::vector<double> reference = Cholesky(a).solve(b);
  const CgResult result = conjugate_gradient(a, b, {.tolerance = 1e-13});
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(result.x[i], reference[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSizes, ::testing::Values(1, 2, 4, 8, 16, 33, 64, 100));

TEST(ConjugateGradient, PreconditionerHelpsIllScaledSystem) {
  // Badly scaled diagonal: Jacobi scaling should cut iteration counts.
  const std::size_t n = 60;
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = std::pow(10.0, static_cast<double>(i % 6));
    if (i > 0) a(i, i - 1) = 0.1;
  }
  std::vector<double> b(n, 1.0);
  const CgResult plain = conjugate_gradient(a, b, {.tolerance = 1e-10,
                                                   .jacobi_preconditioner = false});
  const CgResult jacobi = conjugate_gradient(a, b, {.tolerance = 1e-10,
                                                    .jacobi_preconditioner = true});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(jacobi.converged);
  EXPECT_LT(jacobi.iterations, plain.iterations);
}

/// 1D Laplacian: SPD with condition O(n^2), so CG converges slowly —
/// ideal for iteration-budget tests.
SymMatrix laplacian(std::size_t n) {
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i > 0) a(i, i - 1) = -1.0;
  }
  return a;
}

TEST(ConjugateGradient, ReportsNonConvergenceWithinBudget) {
  const SymMatrix a = laplacian(50);
  std::vector<double> b(50, 1.0);
  const CgResult result = conjugate_gradient(a, b, {.tolerance = 1e-16, .max_iterations = 2});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2u);
  EXPECT_GT(result.relative_residual, 0.0);
}

TEST(ConjugateGradient, ResidualDecreasesWithMoreIterations) {
  const SymMatrix a = laplacian(40);
  std::vector<double> b(40, 1.0);
  const CgResult few = conjugate_gradient(a, b, {.tolerance = 0.0, .max_iterations = 3});
  const CgResult many = conjugate_gradient(a, b, {.tolerance = 0.0, .max_iterations = 20});
  EXPECT_LT(many.relative_residual, few.relative_residual);
}

}  // namespace
}  // namespace ebem::la

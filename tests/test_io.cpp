// Grid file parser/writer, table formatter, CSV writer.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/io/csv.hpp"
#include "src/io/grid_file.hpp"
#include "src/io/table.hpp"

namespace ebem::io {
namespace {

TEST(GridFile, ParsesUniformSoilAndConductors) {
  std::istringstream is(R"(# test grid
soil uniform 0.016
conductor 0 0 -0.8  10 0 -0.8  0.006
conductor 0 0 -0.8  0 10 -0.8  0.006
)");
  const GridDescription d = read_grid(is);
  ASSERT_EQ(d.soil_layers.size(), 1u);
  EXPECT_DOUBLE_EQ(d.soil_layers[0].conductivity, 0.016);
  ASSERT_EQ(d.conductors.size(), 2u);
  EXPECT_DOUBLE_EQ(d.conductors[0].b.x, 10.0);
  EXPECT_TRUE(d.soil().is_uniform());
}

TEST(GridFile, ParsesLayeredSoilAndRods) {
  std::istringstream is(R"(
soil layer 0.005 1.0
soil layer 0.016 0
rod 5 5 0.8 1.5 0.007
)");
  const GridDescription d = read_grid(is);
  const auto soil = d.soil();
  EXPECT_EQ(soil.layer_count(), 2u);
  EXPECT_DOUBLE_EQ(soil.interface_depth(0), 1.0);
  ASSERT_EQ(d.conductors.size(), 1u);
  EXPECT_DOUBLE_EQ(d.conductors[0].a.z, -0.8);
  EXPECT_DOUBLE_EQ(d.conductors[0].b.z, -2.3);
  EXPECT_DOUBLE_EQ(d.conductors[0].radius, 0.007);
}

TEST(GridFile, CommentsAndBlankLinesIgnored) {
  std::istringstream is(R"(
# full-line comment

soil uniform 0.02   # trailing comment
conductor 0 0 -1 1 0 -1 0.01
)");
  const GridDescription d = read_grid(is);
  EXPECT_EQ(d.conductors.size(), 1u);
}

TEST(GridFile, ErrorsCarryLineNumbers) {
  std::istringstream is("soil uniform 0.02\nconductor 1 2 3\n");
  try {
    (void)read_grid(is);
    FAIL() << "should have thrown";
  } catch (const ebem::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GridFile, UnknownKeywordRejected) {
  std::istringstream is("wire 0 0 0 1 1 1 0.01\n");
  EXPECT_THROW((void)read_grid(is), ebem::InvalidArgument);
}

TEST(GridFile, MissingSoilRejected) {
  std::istringstream is("conductor 0 0 -1 1 0 -1 0.01\n");
  EXPECT_THROW((void)read_grid(is), ebem::InvalidArgument);
}

TEST(GridFile, MissingConductorsRejected) {
  std::istringstream is("soil uniform 0.02\n");
  EXPECT_THROW((void)read_grid(is), ebem::InvalidArgument);
}

TEST(GridFile, RoundTripPreservesEverything) {
  GridDescription original;
  original.soil_layers = {{0.005, 1.0}, {0.016, 0.0}};
  original.conductors = {{{0, 0, -0.8}, {12.5, 0, -0.8}, 0.006},
                         {{5, 5, -0.8}, {5, 5, -2.3}, 0.007}};
  std::ostringstream os;
  write_grid(os, original);
  std::istringstream is(os.str());
  const GridDescription parsed = read_grid(is);
  ASSERT_EQ(parsed.soil_layers.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.soil_layers[0].thickness, 1.0);
  ASSERT_EQ(parsed.conductors.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.conductors[0].b.x, 12.5);
  EXPECT_DOUBLE_EQ(parsed.conductors[1].radius, 0.007);
}

TEST(Table, FormatsAlignedColumns) {
  Table table({"Soil Model", "R (Ohm)"});
  table.add_row({"A", Table::num(0.3366)});
  table.add_row({"B", Table::num(0.3522)});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("Soil Model"), std::string::npos);
  EXPECT_NE(text.find("0.3366"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RowWidthValidated) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ebem::InvalidArgument);
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(8.0, 0), "8");
}

TEST(Csv, WritesHeaderAndColumns) {
  std::ostringstream os;
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{3.0, 4.0};
  write_csv(os, {"x", "y"}, {x, y});
  EXPECT_EQ(os.str(), "x,y\n1,3\n2,4\n");
}

TEST(Csv, RejectsRaggedColumns) {
  std::ostringstream os;
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{3.0};
  EXPECT_THROW(write_csv(os, {"x", "y"}, {x, y}), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::io

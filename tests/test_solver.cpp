// Solver front-end: Cholesky vs PCG on real assembled systems.
#include <gtest/gtest.h>

#include "src/bem/assembly.hpp"
#include "src/bem/solver.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"

namespace ebem::bem {
namespace {

AssemblyResult assembled_system() {
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  const BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                       soil::LayeredSoil::uniform(0.02));
  return assemble(model, {});
}

TEST(Solver, CholeskyAndPcgAgree) {
  const AssemblyResult system = assembled_system();
  SolveStats direct_stats{};
  SolveStats pcg_stats{};
  const auto direct = solve(system.matrix, system.rhs,
                            {.kind = SolverKind::kCholesky}, &direct_stats);
  const auto iterative =
      solve(system.matrix, system.rhs,
            {.kind = SolverKind::kPcg, .cg_tolerance = 1e-13}, &pcg_stats);
  ASSERT_EQ(direct.size(), iterative.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], iterative[i], 1e-8 * std::abs(direct[i]) + 1e-12);
  }
  EXPECT_EQ(direct_stats.iterations, 0u);
  EXPECT_GT(pcg_stats.iterations, 0u);
  EXPECT_LT(pcg_stats.relative_residual, 1e-12);
}

TEST(Solver, PcgIterationsWellBelowN) {
  // The paper's observation: PCG on the Jacobi-scaled BEM matrix converges
  // in far fewer iterations than the dimension.
  const AssemblyResult system = assembled_system();
  SolveStats stats{};
  (void)solve(system.matrix, system.rhs, {.kind = SolverKind::kPcg, .cg_tolerance = 1e-12},
              &stats);
  EXPECT_LT(stats.iterations, system.matrix.size());
}

TEST(Solver, DirectResidualIsTiny) {
  const AssemblyResult system = assembled_system();
  SolveStats stats{};
  (void)solve(system.matrix, system.rhs, {.kind = SolverKind::kCholesky}, &stats);
  EXPECT_LT(stats.relative_residual, 1e-12);
}

TEST(Solver, LeakageDensitiesArePositive) {
  // With a unit GPR every nodal leakage density must be positive (current
  // flows out of the electrode everywhere).
  const AssemblyResult system = assembled_system();
  const auto sigma = solve(system.matrix, system.rhs, {});
  for (double v : sigma) EXPECT_GT(v, 0.0);
}

TEST(Solver, CornerNodesLeakMoreThanCenter) {
  // Classical edge effect: current density peaks at grid corners — the
  // anomaly-free behaviour the Galerkin formulation is built to capture.
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const geom::Mesh mesh = geom::Mesh::build(geom::make_rect_grid(spec));
  const BemModel model(mesh, soil::LayeredSoil::uniform(0.02));
  const AssemblyResult system = assemble(model, {});
  const auto sigma = solve(system.matrix, system.rhs, {});

  // Locate the corner (0,0) node and the center (10,10) node.
  std::size_t corner = 0;
  std::size_t center = 0;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const auto& p = mesh.nodes()[i];
    if (p.x == 0.0 && p.y == 0.0) corner = i;
    if (p.x == 10.0 && p.y == 10.0) center = i;
  }
  EXPECT_GT(sigma[corner], sigma[center]);
}

}  // namespace
}  // namespace ebem::bem

// OpenMP backend: schedule mapping and numerical equivalence with the
// portable thread-pool backend (the paper's actual parallelization mode).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "src/bem/assembly.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/openmp_backend.hpp"

namespace ebem {
namespace {

TEST(OpenMpBackend, ReportsAvailability) {
#ifdef EBEM_HAS_OPENMP
  EXPECT_TRUE(par::openmp_available());
#else
  EXPECT_FALSE(par::openmp_available());
#endif
}

TEST(OpenMpBackend, VisitsEveryIndexOnce) {
  for (const par::Schedule schedule :
       {par::Schedule::static_blocked(), par::Schedule::static_chunked(4),
        par::Schedule::dynamic(1), par::Schedule::guided(2)}) {
    std::vector<std::atomic<int>> visits(500);
    par::openmp_parallel_for(3, visits.size(), schedule,
                             [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(OpenMpBackend, ZeroIterationsIsANoop) {
  bool touched = false;
  par::openmp_parallel_for(2, 0, par::Schedule::dynamic(1), [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(OpenMpBackend, AssemblyMatchesThreadPool) {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                            soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));

  bem::AssemblyExecution pool_execution;
  pool_execution.num_threads = 4;
  pool_execution.backend = bem::Backend::kThreadPool;
  const bem::AssemblyResult pool_result = bem::assemble(model, {}, pool_execution);

  bem::AssemblyExecution omp_execution = pool_execution;
  omp_execution.backend = bem::Backend::kOpenMp;
  const bem::AssemblyResult omp_result = bem::assemble(model, {}, omp_execution);

  // Fused streaming assembly scatters concurrently, so the two backends may
  // differ only by floating-point accumulation order.
  const auto a = pool_result.matrix.packed();
  const auto b = omp_result.matrix.packed();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12 * std::abs(a[k]) + 1e-15) << k;
  }
}

TEST(OpenMpBackend, InnerLoopModeAlsoMatches) {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                            soil::LayeredSoil::uniform(0.02));

  const bem::AssemblyResult sequential = bem::assemble(model, {});

  bem::AssemblyExecution omp_execution;
  omp_execution.num_threads = 2;
  omp_execution.backend = bem::Backend::kOpenMp;
  omp_execution.loop = bem::ParallelLoop::kInner;
  const bem::AssemblyResult omp_result = bem::assemble(model, {}, omp_execution);

  const auto a = sequential.matrix.packed();
  const auto b = omp_result.matrix.packed();
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12 * std::abs(a[k]) + 1e-15) << k;
  }
}

}  // namespace
}  // namespace ebem

// Finite-difference validator: independent cross-check of the BEM and of
// the paper's "domain discretization is out of range" claim.
#include <gtest/gtest.h>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/fdm/fd_solver.hpp"
#include "src/geom/mesh.hpp"

namespace ebem::fdm {
namespace {

double bem_req(const std::vector<geom::Conductor>& conductors, const soil::LayeredSoil& soil) {
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = 1.0;
  const auto split = bem::split_at_interfaces(conductors, soil);
  const bem::BemModel model(geom::Mesh::build(split, mesh_options), soil);
  return bem::analyze(model, {}).equivalent_resistance;
}

TEST(FdValidator, ThickRodMatchesBemUniformSoil) {
  // A 0.5 m-radius rod is resolvable by the FD lattice; agreement here is
  // limited by box truncation and the node-line electrode representation.
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -8.5}, 0.5}};
  const auto soil = soil::LayeredSoil::uniform(0.01);
  FdOptions options;
  options.padding = 40.0;
  options.cells_x = 48;
  options.cells_y = 48;
  options.cells_z = 36;
  const FdResult fd = solve_grounding(rod, soil, options);
  ASSERT_TRUE(fd.converged);
  const double bem = bem_req(rod, soil);
  EXPECT_NEAR(fd.equivalent_resistance, bem, 0.12 * bem);
}

TEST(FdValidator, TwoLayerSoilSupported) {
  // Same rod, lower layer 5x more conductive: both solvers must see the
  // drop, and agree within validation tolerance.
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -8.5}, 0.5}};
  const auto uniform = soil::LayeredSoil::uniform(0.01);
  const auto layered = soil::LayeredSoil::two_layer(0.01, 0.05, 3.0);
  FdOptions options;
  options.padding = 40.0;
  options.cells_x = 48;
  options.cells_y = 48;
  options.cells_z = 36;
  const FdResult fd_uniform = solve_grounding(rod, uniform, options);
  const FdResult fd_layered = solve_grounding(rod, layered, options);
  EXPECT_LT(fd_layered.equivalent_resistance, fd_uniform.equivalent_resistance);
  const double bem = bem_req(rod, layered);
  EXPECT_NEAR(fd_layered.equivalent_resistance, bem, 0.15 * bem);
}

TEST(FdValidator, RefinementBehavesLikeShrinkingEffectiveRadius) {
  // At a fixed box, the rod is represented by its nearest node line whose
  // effective radius scales with the cell size: refining the lattice makes
  // the effective conductor thinner, so Req rises monotonically, staying
  // within a broad band of the BEM value throughout.
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -6.5}, 0.5}};
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const double bem = bem_req(rod, soil);
  double previous = 0.0;
  for (std::size_t cells : {24u, 36u, 48u}) {
    FdOptions options;
    options.padding = 30.0;
    options.cells_x = cells;
    options.cells_y = cells;
    options.cells_z = (3 * cells) / 4;
    const FdResult fd = solve_grounding(rod, soil, options);
    EXPECT_GT(fd.equivalent_resistance, previous) << cells;
    EXPECT_NEAR(fd.equivalent_resistance, bem, 0.25 * bem) << cells;
    previous = fd.equivalent_resistance;
  }
}

TEST(FdValidator, ReportsProblemSize) {
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -4.5}, 0.5}};
  FdOptions options;
  options.cells_x = 24;
  options.cells_y = 24;
  options.cells_z = 16;
  const FdResult fd = solve_grounding(rod, soil::LayeredSoil::uniform(0.01), options);
  EXPECT_GT(fd.unknowns, 5000u);
  EXPECT_GT(fd.electrode_nodes, 0u);
  EXPECT_GT(fd.cg_iterations, 10u);
  EXPECT_GT(fd.total_current, 0.0);
}

TEST(FdValidator, ConductivityScaling) {
  // Req scales exactly with 1/gamma on a fixed lattice.
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -4.5}, 0.5}};
  FdOptions options;
  options.cells_x = 24;
  options.cells_y = 24;
  options.cells_z = 16;
  const FdResult base = solve_grounding(rod, soil::LayeredSoil::uniform(0.01), options);
  const FdResult scaled = solve_grounding(rod, soil::LayeredSoil::uniform(0.04), options);
  EXPECT_NEAR(scaled.equivalent_resistance, base.equivalent_resistance / 4.0,
              1e-6 * base.equivalent_resistance);
}

TEST(FdValidator, InputValidation) {
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -4.5}, 0.5}};
  const auto soil = soil::LayeredSoil::uniform(0.01);
  EXPECT_THROW((void)solve_grounding({}, soil), ebem::InvalidArgument);
  FdOptions coarse;
  coarse.cells_x = 4;
  EXPECT_THROW((void)solve_grounding(rod, soil, coarse), ebem::InvalidArgument);
  const std::vector<geom::Conductor> air{{{0, 0, 1.0}, {0, 0, 2.0}, 0.5}};
  EXPECT_THROW((void)solve_grounding(air, soil), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::fdm

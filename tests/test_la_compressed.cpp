// CompressedTileStore backend: low-rank install/decompress parity against a
// dense reference, the read-only contract of covered tiles, byte accounting,
// clone/set_zero semantics, the SymMatrix low-rank matvec fast path,
// copy_tiles densification (the Cholesky input path) and concurrent readers
// on the scratch cache.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/compressed_tile_store.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/la/tile_store.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {
namespace {

constexpr std::size_t kN = 96;
constexpr std::size_t kTile = 16;

StorageConfig compressed_config() {
  StorageConfig config;
  config.tile_size = kTile;
  config.compression.epsilon = 1e-8;
  return config;
}

/// The reference far-field block of most tests: rank 2 over DoF rows
/// [48, 96) x cols [0, 32) — six whole tiles of the 96/16 layout.
constexpr std::size_t kRow0 = 48, kRow1 = 96, kCol0 = 0, kCol1 = 32, kRank = 2;

double u_entry(std::size_t local_row, std::size_t k) {
  return 0.01 * static_cast<double>(local_row + 1) + 0.5 * static_cast<double>(k);
}
double v_entry(std::size_t local_col, std::size_t k) {
  return 0.02 * static_cast<double>(local_col + 1) - 0.3 * static_cast<double>(k);
}
/// Dense value of global entry (i, j) inside the reference block.
double block_entry(std::size_t i, std::size_t j) {
  double sum = 0.0;
  for (std::size_t k = 0; k < kRank; ++k) sum += u_entry(i - kRow0, k) * v_entry(j - kCol0, k);
  return sum;
}

LowRankBlock reference_block() {
  LowRankBlock block;
  block.row_begin = kRow0;
  block.row_end = kRow1;
  block.col_begin = kCol0;
  block.col_end = kCol1;
  block.rank = kRank;
  block.u.resize((kRow1 - kRow0) * kRank);
  block.v.resize((kCol1 - kCol0) * kRank);
  for (std::size_t i = 0; i < kRow1 - kRow0; ++i) {
    for (std::size_t k = 0; k < kRank; ++k) block.u[i * kRank + k] = u_entry(i, k);
  }
  for (std::size_t j = 0; j < kCol1 - kCol0; ++j) {
    for (std::size_t k = 0; k < kRank; ++k) block.v[j * kRank + k] = v_entry(j, k);
  }
  return block;
}

std::unique_ptr<CompressedTileStore> make_store_with_block() {
  auto store = std::make_unique<CompressedTileStore>(TileLayout(kN, kTile), compressed_config());
  store->install(reference_block());
  return store;
}

TEST(CompressedTileStore, MakeTileStoreRoutesOnCompressionConfig) {
  const auto store = make_tile_store(kN, compressed_config());
  EXPECT_NE(dynamic_cast<const CompressedTileStore*>(store.get()), nullptr);
  EXPECT_EQ(store->direct_data(), nullptr);  // never directly addressable
  const auto dense = make_tile_store(kN, {.tile_size = kTile});
  EXPECT_EQ(dynamic_cast<const CompressedTileStore*>(dense.get()), nullptr);
}

TEST(CompressedTileStore, CompressionAndSpillAreMutuallyExclusive) {
  StorageConfig config = compressed_config();
  config.residency_budget_bytes = 1 << 20;
  EXPECT_THROW((void)make_tile_store(kN, config), ebem::InvalidArgument);
}

TEST(CompressedTileStore, RejectsZeroMinRankBudget) {
  StorageConfig config = compressed_config();
  config.compression.min_rank_budget = 0;
  EXPECT_THROW((void)make_tile_store(kN, config), ebem::InvalidArgument);
}

TEST(CompressedTileStore, DecompressesCoveredTilesOnReadCheckout) {
  const auto owned = make_store_with_block();
  const CompressedTileStore& store = *owned;
  EXPECT_TRUE(store.tile_is_low_rank(3, 0));
  EXPECT_TRUE(store.tile_is_low_rank(5, 1));
  EXPECT_FALSE(store.tile_is_low_rank(2, 0));
  EXPECT_FALSE(store.tile_is_low_rank(3, 3));
  for (const auto [ti, tj] : {std::pair<std::size_t, std::size_t>{3, 0}, {4, 1}, {5, 0}}) {
    const TileGuard guard = store.checkout(ti, tj, TileAccess::kRead);
    for (std::size_t i = ti * kTile; i < (ti + 1) * kTile; ++i) {
      for (std::size_t j = tj * kTile; j < (tj + 1) * kTile; ++j) {
        EXPECT_DOUBLE_EQ(guard.data()[(i % kTile) * kTile + (j % kTile)], block_entry(i, j));
      }
    }
  }
}

TEST(CompressedTileStore, CoveredTilesAreReadOnly) {
  const auto owned = make_store_with_block();
  const CompressedTileStore& store = *owned;
  EXPECT_THROW((void)store.checkout(3, 0, TileAccess::kWrite), ebem::InvalidArgument);
  // Uncovered tiles write like the in-memory arena (lazily allocated).
  {
    const TileGuard guard = store.checkout(2, 1, TileAccess::kWrite);
    guard.data()[7] = 42.0;
  }
  const TileGuard again = store.checkout(2, 1, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(again.data()[7], 42.0);
}

TEST(CompressedTileStore, InstallValidatesBlocks) {
  const auto owned = make_store_with_block();
  CompressedTileStore& store = *owned;
  LowRankBlock overlap = reference_block();  // same tiles again
  EXPECT_THROW(store.install(std::move(overlap)), ebem::InvalidArgument);

  LowRankBlock misaligned = reference_block();
  misaligned.row_begin = kRow0 + 1;
  misaligned.u.resize((misaligned.row_end - misaligned.row_begin) * kRank);
  EXPECT_THROW(store.install(std::move(misaligned)), ebem::InvalidArgument);

  LowRankBlock diagonal = reference_block();
  diagonal.col_begin = 32;
  diagonal.col_end = 64;  // col_end > row_begin = 48
  EXPECT_THROW(store.install(std::move(diagonal)), ebem::InvalidArgument);

  LowRankBlock bad_shape = reference_block();
  bad_shape.u.pop_back();
  EXPECT_THROW(store.install(std::move(bad_shape)), ebem::InvalidArgument);

  // A dense tile that already materialized cannot be covered afterwards.
  CompressedTileStore fresh(TileLayout(kN, kTile), compressed_config());
  { const TileGuard guard = fresh.checkout(3, 0, TileAccess::kWrite); }
  EXPECT_THROW(fresh.install(reference_block()), ebem::InvalidArgument);
}

TEST(CompressedTileStore, ByteAccountingPricesFactorsNotDenseTiles) {
  const TileLayout layout(kN, kTile);
  CompressedTileStore store(layout, compressed_config());
  EXPECT_EQ(store.stats().resident_bytes, 0u);
  store.install(reference_block());
  const std::size_t factor_bytes = ((kRow1 - kRow0) + (kCol1 - kCol0)) * kRank * sizeof(double);
  EXPECT_EQ(store.stats().resident_bytes, factor_bytes);
  { const TileGuard guard = store.checkout(0, 0, TileAccess::kWrite); }
  EXPECT_EQ(store.stats().resident_bytes, factor_bytes + layout.tile_bytes());
  // One scratch slot appears when a covered tile decompresses, and repeated
  // checkouts of the same tile reuse it.
  { const TileGuard guard = store.checkout(3, 0, TileAccess::kRead); }
  { const TileGuard guard = store.checkout(3, 0, TileAccess::kRead); }
  EXPECT_EQ(store.stats().resident_bytes, factor_bytes + 2 * layout.tile_bytes());
  EXPECT_EQ(store.stats().evictions, 0u);

  const CompressionStats stats = store.compression_stats();
  EXPECT_EQ(stats.low_rank_blocks, 1u);
  EXPECT_EQ(stats.low_rank_tiles, 6u);
  EXPECT_EQ(stats.dense_tiles, 1u);
  EXPECT_EQ(stats.stored_bytes, factor_bytes + layout.tile_bytes());
  EXPECT_EQ(stats.dense_bytes, layout.total_bytes());
  EXPECT_EQ(stats.rank_sum, kRank);
  EXPECT_EQ(stats.max_rank, kRank);
  EXPECT_DOUBLE_EQ(stats.mean_rank(), static_cast<double>(kRank));
  EXPECT_LT(stats.ratio(), 1.0);
}

TEST(CompressedTileStore, CloneIsADeepCopy) {
  const auto owned = make_store_with_block();
  CompressedTileStore& store = *owned;
  {
    const TileGuard guard = store.checkout(1, 0, TileAccess::kWrite);
    guard.data()[3] = 7.0;
  }
  const auto copy = store.clone();
  {
    const TileGuard guard = store.checkout(1, 0, TileAccess::kWrite);
    guard.data()[3] = -1.0;  // mutate the original after the clone
  }
  const TileGuard dense_tile = copy->checkout(1, 0, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(dense_tile.data()[3], 7.0);
  const TileGuard far_tile = copy->checkout(4, 0, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(far_tile.data()[0], block_entry(64, 0));
}

TEST(CompressedTileStore, SetZeroDropsTheFactors) {
  const auto owned = make_store_with_block();
  CompressedTileStore& store = *owned;
  {
    const TileGuard guard = store.checkout(0, 0, TileAccess::kWrite);
    guard.data()[0] = 5.0;
  }
  store.set_zero();
  EXPECT_TRUE(store.blocks().empty());
  EXPECT_FALSE(store.tile_is_low_rank(3, 0));
  // Previously covered tiles are writable dense tiles now, and dense
  // payloads were zeroed.
  { const TileGuard guard = store.checkout(3, 0, TileAccess::kWrite); }
  const TileGuard zeroed = store.checkout(0, 0, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(zeroed.data()[0], 0.0);
}

/// Compressed matrix with the reference far block plus deterministic dense
/// near entries, and its all-dense twin holding identical logical content.
struct MatrixPair {
  SymMatrix compressed;
  SymMatrix dense;
};

MatrixPair make_matrix_pair() {
  MatrixPair pair{SymMatrix(kN, compressed_config()), SymMatrix(kN, {.tile_size = kTile})};
  auto* store = dynamic_cast<CompressedTileStore*>(&pair.compressed.store());
  EXPECT_NE(store, nullptr);
  store->install(reference_block());
  const TileLayout& layout = pair.compressed.layout();
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (store->tile_is_low_rank(layout.tile_of(i), layout.tile_of(j))) {
        pair.dense.set(i, j, block_entry(i, j));
      } else {
        // Diagonally dominant near field keeps the matrix SPD for the
        // Cholesky test below.
        const double value =
            i == j ? 50.0 + static_cast<double>(i)
                   : 0.3 * std::sin(static_cast<double>(1 + i * 131 + j * 17));
        pair.compressed.set(i, j, value);
        pair.dense.set(i, j, value);
      }
    }
  }
  return pair;
}

TEST(CompressedTileStore, EntryReadsMatchTheDenseTwin) {
  const MatrixPair pair = make_matrix_pair();
  for (std::size_t i = 0; i < kN; i += 7) {
    for (std::size_t j = 0; j <= i; j += 5) {
      EXPECT_DOUBLE_EQ(pair.compressed.get(i, j), pair.dense.get(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(pair.compressed.packed(), pair.dense.packed());
}

TEST(CompressedTileStore, MultiplyAppliesFactorsDirectly) {
  const MatrixPair pair = make_matrix_pair();
  std::vector<double> x(kN);
  for (std::size_t i = 0; i < kN; ++i) x[i] = std::cos(static_cast<double>(i));
  std::vector<double> y_compressed(kN), y_dense(kN);
  pair.compressed.multiply(x, y_compressed);
  pair.dense.multiply(x, y_dense);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(y_compressed[i], y_dense[i], 1e-10 * std::abs(y_dense[i]) + 1e-12) << i;
  }
}

TEST(CompressedTileStore, PooledMultiplyFallsBackToTheSerialWalk) {
  const MatrixPair pair = make_matrix_pair();
  par::ThreadPool pool(4);
  std::vector<double> x(kN);
  for (std::size_t i = 0; i < kN; ++i) x[i] = std::sin(0.1 * static_cast<double>(i));
  std::vector<double> serial(kN), pooled(kN);
  pair.compressed.multiply(x, serial);
  pair.compressed.multiply(x, pooled, &pool, /*parallel_cutoff=*/1);
  EXPECT_EQ(serial, pooled);  // bitwise: the pooled overload must defer
}

TEST(CompressedTileStore, CopyTilesDensifiesForCholesky) {
  const MatrixPair pair = make_matrix_pair();
  // copy_tiles is the Cholesky input path: read checkouts decompress tile by
  // tile into the factor's plain store.
  SymMatrix densified(kN, {.tile_size = kTile});
  copy_tiles(pair.compressed.store(), densified.store());
  EXPECT_EQ(densified.packed(), pair.dense.packed());

  const Cholesky factor_compressed(pair.compressed);
  const Cholesky factor_dense(pair.dense);
  std::vector<double> b(kN, 1.0);
  const std::vector<double> x_compressed = factor_compressed.solve(b);
  const std::vector<double> x_dense = factor_dense.solve(b);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(x_compressed[i], x_dense[i], 1e-12 * std::abs(x_dense[i]) + 1e-15) << i;
  }
}

TEST(CompressedTileStore, ConcurrentReadersSeeConsistentTiles) {
  const auto owned = make_store_with_block();
  const CompressedTileStore& store = *owned;
  // Warm one dense tile so readers mix dense and decompressed checkouts.
  {
    const TileGuard guard = store.checkout(2, 2, TileAccess::kWrite);
    guard.data()[5] = 9.0;
  }
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      const std::pair<std::size_t, std::size_t> far_tiles[] = {{3, 0}, {3, 1}, {4, 0},
                                                               {4, 1}, {5, 0}, {5, 1}};
      for (std::size_t it = 0; it < kIters; ++it) {
        const auto [ti, tj] = far_tiles[(it + t) % 6];
        const TileGuard guard = store.checkout(ti, tj, TileAccess::kRead);
        const std::size_t i = ti * kTile + (it % kTile);
        const std::size_t j = tj * kTile + ((it + t) % kTile);
        if (guard.data()[(i % kTile) * kTile + (j % kTile)] != block_entry(i, j)) {
          failures[t] += 1;
        }
        const TileGuard dense = store.checkout(2, 2, TileAccess::kRead);
        if (dense.data()[5] != 9.0) failures[t] += 1;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace ebem::la

// Image-series kernel: the physics core of the reproduction.
//
// Validation strategy (DESIGN.md §7): exact limits (uniform, kappa -> 0,
// H -> infinity), exact reciprocity, interface continuity, surface Neumann
// condition, and cross-validation against the independent Hankel oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"

namespace ebem::soil {
namespace {

using geom::Vec3;

double uniform_reference(double gamma, Vec3 x, Vec3 xi) {
  const double direct =
      std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(x.z - xi.z));
  const double mirror =
      std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(x.z + xi.z));
  return (1.0 / direct + 1.0 / mirror) / (4.0 * kPi * gamma);
}

TEST(ImageKernel, UniformSoilHasExactlyTwoSummands) {
  const ImageKernel kernel(LayeredSoil::uniform(0.02));
  EXPECT_EQ(kernel.terms(0, 0).size(), 2u);
}

TEST(ImageKernel, UniformSoilMatchesClassicalMirrorFormula) {
  const double gamma = 0.016;
  const ImageKernel kernel(LayeredSoil::uniform(gamma));
  const Vec3 xi{0, 0, -0.8};
  for (const Vec3 x : {Vec3{3, 0, -0.5}, Vec3{0, 10, -2.0}, Vec3{1, 1, 0.0}, Vec3{-4, 2, -0.8}}) {
    EXPECT_NEAR(kernel.evaluate(x, xi), uniform_reference(gamma, x, xi), 1e-14);
  }
}

TEST(ImageKernel, EqualLayersCollapseToUniform) {
  const double gamma = 0.01;
  const ImageKernel two(LayeredSoil::two_layer(gamma, gamma, 1.0));
  const ImageKernel one(LayeredSoil::uniform(gamma));
  // Pick points in every layer combination; kappa = 0 must reproduce the
  // uniform kernel exactly.
  const Vec3 sources[] = {{0, 0, -0.5}, {0, 0, -2.5}};
  const Vec3 fields[] = {{2, 1, -0.3}, {2, 1, -3.0}, {5, 0, 0.0}};
  for (const Vec3& xi : sources) {
    for (const Vec3& x : fields) {
      EXPECT_NEAR(two.evaluate(x, xi), one.evaluate(x, xi), 1e-13)
          << "xi.z=" << xi.z << " x.z=" << x.z;
    }
  }
}

TEST(ImageKernel, DeepInterfaceApproachesUniformUpperLayer) {
  // The n >= 1 images sit at distances ~ 2nH, so the deviation from the
  // uniform kernel falls like 1/H: check monotone decay and the far limit.
  const ImageKernel uniform(LayeredSoil::uniform(0.01));
  const Vec3 xi{0, 0, -0.8};
  const Vec3 x{4, 0, -0.5};
  const double reference = uniform.evaluate(x, xi);
  double previous_error = 1e300;
  for (double h : {20.0, 200.0, 2000.0}) {
    const ImageKernel layered(LayeredSoil::two_layer(0.01, 0.05, h));
    const double error = std::abs(layered.evaluate(x, xi) - reference) / reference;
    EXPECT_LT(error, previous_error) << h;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 3e-3);
}

struct LayerCase {
  Vec3 x;
  Vec3 xi;
  const char* name;
};

class ImageVsHankel : public ::testing::TestWithParam<LayerCase> {};

TEST_P(ImageVsHankel, CrossValidatesAgainstHankelOracle) {
  const LayerCase& c = GetParam();
  // Barbera-like contrast (kappa ~ -0.52).
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel image(soil, {1e-12, 4096});
  const HankelKernel hankel(soil);
  const double a = image.evaluate(c.x, c.xi);
  const double b = hankel.evaluate(c.x, c.xi);
  EXPECT_NEAR(a, b, 1e-6 * std::abs(b)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    LayerCombinations, ImageVsHankel,
    ::testing::Values(LayerCase{{3, 0, -0.5}, {0, 0, -0.8}, "upper_to_upper"},
                      LayerCase{{2, 1, -2.5}, {0, 0, -0.8}, "upper_to_lower"},
                      LayerCase{{2, 1, -0.5}, {0, 0, -1.8}, "lower_to_upper"},
                      LayerCase{{2, 1, -2.0}, {0, 0, -1.5}, "lower_to_lower"},
                      LayerCase{{5, 0, 0.0}, {0, 0, -0.8}, "surface_field"},
                      LayerCase{{0.5, 0, -0.9}, {0, 0, -0.95}, "near_interface"},
                      LayerCase{{20, 5, 0.0}, {0, 0, -2.5}, "far_surface_deep_source"}),
    [](const auto& info) { return info.param.name; });

TEST(ImageKernel, PositiveContrastAlsoMatchesHankel) {
  // Conductive-over-resistive (kappa > 0), the Balaidos B/C sign.
  const LayeredSoil soil = LayeredSoil::two_layer(0.02, 0.0025, 0.7);
  const ImageKernel image(soil, {1e-12, 4096});
  const HankelKernel hankel(soil);
  for (const auto& [x, xi] :
       {std::pair{Vec3{2, 0, -0.4}, Vec3{0, 0, -0.5}}, {Vec3{2, 0, -1.4}, Vec3{0, 0, -0.5}},
        {Vec3{2, 0, -0.4}, Vec3{0, 0, -1.5}}, {Vec3{2, 0, -2.4}, Vec3{0, 0, -1.5}}}) {
    EXPECT_NEAR(image.evaluate(x, xi), hankel.evaluate(x, xi),
                3e-6 * std::abs(hankel.evaluate(x, xi)));
  }
}

class ReciprocityCase : public ::testing::TestWithParam<std::pair<Vec3, Vec3>> {};

TEST_P(ReciprocityCase, GreensFunctionIsSymmetric) {
  const auto& [x, xi] = GetParam();
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-14, 8192});
  const double forward = kernel.evaluate(x, xi);
  const double backward = kernel.evaluate(xi, x);
  EXPECT_NEAR(forward, backward, 1e-12 * std::abs(forward));
}

INSTANTIATE_TEST_SUITE_P(PointPairs, ReciprocityCase,
                         ::testing::Values(std::pair{Vec3{3, 0, -0.5}, Vec3{0, 0, -0.8}},
                                           std::pair{Vec3{2, 1, -2.5}, Vec3{0, 0, -0.8}},
                                           std::pair{Vec3{2, 1, -2.0}, Vec3{0, 1, -1.5}},
                                           std::pair{Vec3{0.3, 0.3, -0.99}, Vec3{0, 0, -1.01}}));

TEST(ImageKernel, PotentialContinuousAcrossInterface) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-13, 8192});
  const Vec3 xi{0, 0, -0.8};
  for (double rho : {0.5, 2.0, 10.0}) {
    const double above = kernel.evaluate({rho, 0, -1.0 + 1e-9}, xi);
    const double below = kernel.evaluate({rho, 0, -1.0 - 1e-9}, xi);
    EXPECT_NEAR(above, below, 1e-6 * std::abs(above)) << rho;
  }
}

TEST(ImageKernel, CurrentFluxContinuousAcrossInterface) {
  // gamma_1 dV1/dz == gamma_2 dV2/dz at the interface (finite differences).
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-13, 8192});
  const Vec3 xi{0, 0, -0.8};
  const double h = 1e-6;
  for (double rho : {1.0, 4.0}) {
    const double grad_up =
        (kernel.evaluate({rho, 0, -1.0 + 2 * h}, xi) - kernel.evaluate({rho, 0, -1.0 + h}, xi)) /
        h;
    const double grad_dn =
        (kernel.evaluate({rho, 0, -1.0 - h}, xi) - kernel.evaluate({rho, 0, -1.0 - 2 * h}, xi)) /
        h;
    const double flux_up = 0.005 * grad_up;
    const double flux_dn = 0.016 * grad_dn;
    EXPECT_NEAR(flux_up, flux_dn, 2e-3 * std::abs(flux_up)) << rho;
  }
}

TEST(ImageKernel, SurfaceIsInsulating) {
  // dV/dz = 0 at z = 0 (air is a perfect insulator): central difference of
  // the even extension vanishes by construction, so probe one-sided.
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-13, 8192});
  const Vec3 xi{0, 0, -0.8};
  const double h = 1e-4;
  for (double rho : {1.0, 5.0}) {
    const double v0 = kernel.evaluate({rho, 0, 0.0}, xi);
    const double v1 = kernel.evaluate({rho, 0, -h}, xi);
    const double v2 = kernel.evaluate({rho, 0, -2 * h}, xi);
    // One-sided second-order derivative estimate at the surface.
    const double dv_dz = (-3.0 * v0 + 4.0 * v1 - v2) / (2.0 * h);
    EXPECT_NEAR(dv_dz / v0, 0.0, 1e-4) << rho;
  }
}

TEST(ImageKernel, KernelDecaysWithDistance) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil);
  const Vec3 xi{0, 0, -0.8};
  double previous = kernel.evaluate({1, 0, 0}, xi);
  for (double rho : {2.0, 5.0, 10.0, 50.0, 200.0}) {
    const double v = kernel.evaluate({rho, 0, 0}, xi);
    EXPECT_LT(v, previous);
    previous = v;
  }
}

TEST(ImageKernel, FarFieldSeesEffectiveHalfSpace) {
  // Far from a shallow source the two-layer response approaches the lower
  // half-space response: V ~ 1/(2 pi gamma_2 r).
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-12, 4096});
  const Vec3 xi{0, 0, -0.8};
  const double r = 2000.0;
  const double v = kernel.evaluate({r, 0, 0}, xi);
  const double expected = 1.0 / (2.0 * kPi * 0.016 * r);
  EXPECT_NEAR(v, expected, 0.05 * expected);
}

TEST(ImageKernel, RegularizedEvaluationBoundsSingularity) {
  const ImageKernel kernel(LayeredSoil::uniform(0.01));
  const Vec3 xi{0, 0, -1.0};
  // On the source point the regularized kernel stays finite: the direct
  // term becomes 1/radius and the mirror sits at the regularized distance
  // sqrt(radius^2 + (2 z_s)^2).
  const double v = kernel.evaluate_regularized(xi, xi, 0.01);
  EXPECT_TRUE(std::isfinite(v));
  const double expected =
      (1.0 / 0.01 + 1.0 / std::sqrt(0.01 * 0.01 + 4.0)) / (4.0 * kPi * 0.01);
  EXPECT_NEAR(v, expected, 1e-9);
}

TEST(ImageKernel, TruncationFollowsTolerance) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel loose(soil, {1e-3, 4096});
  const ImageKernel tight(soil, {1e-12, 4096});
  EXPECT_LT(loose.terms(0, 0).size(), tight.terms(0, 0).size());
  // Values agree within the looser tolerance.
  const Vec3 x{2, 0, -0.5};
  const Vec3 xi{0, 0, -0.8};
  EXPECT_NEAR(loose.evaluate(x, xi), tight.evaluate(x, xi), 2e-3 * tight.evaluate(x, xi));
}

TEST(ImageKernel, MaxReflectionsCapsSeriesLength) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.0025, 0.02, 1.0);  // |kappa| ~ 0.78
  const ImageKernel capped(soil, {1e-15, 5});
  // b=0,c=0 family: 2 + 4 * n_max terms.
  EXPECT_EQ(capped.terms(0, 0).size(), 2u + 4u * 5u);
}

TEST(ImageKernel, UpperToLowerFamilySizes) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ImageKernel kernel(soil, {1e-9, 4096});
  // Same-layer upper family has ~2x the images per reflection of the
  // cross-layer families — the cost asymmetry behind Table 6.3's model C.
  EXPECT_GT(kernel.terms(0, 0).size(), kernel.terms(0, 1).size());
  EXPECT_GT(kernel.terms(0, 0).size(), kernel.terms(1, 1).size());
}

TEST(ImageKernel, ThreeLayersRejected) {
  const LayeredSoil soil({Layer{0.01, 1.0}, Layer{0.005, 1.0}, Layer{0.02, 0.0}});
  EXPECT_THROW(ImageKernel{soil}, ebem::InvalidArgument);
}

TEST(ImageKernel, InvalidOptionsRejected) {
  const LayeredSoil soil = LayeredSoil::uniform(0.01);
  EXPECT_THROW(ImageKernel(soil, {0.0, 100}), ebem::InvalidArgument);
  EXPECT_THROW(ImageKernel(soil, {1e-9, 0}), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::soil

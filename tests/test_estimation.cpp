// Wenner sounding forward model and two-layer inversion.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/common/error.hpp"
#include "src/estimation/wenner.hpp"

namespace ebem::estimation {
namespace {

TEST(WennerForward, UniformSoilReturnsTrueResistivity) {
  const auto soil = soil::LayeredSoil::uniform(0.02);  // rho = 50
  for (double a : {0.5, 2.0, 10.0, 50.0}) {
    EXPECT_DOUBLE_EQ(wenner_apparent_resistivity(soil, a), 50.0);
  }
}

TEST(WennerForward, SmallSpacingSeesUpperLayer) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);  // rho1=200, rho2=62.5
  EXPECT_NEAR(wenner_apparent_resistivity(soil, 0.05), 200.0, 2.0);
}

TEST(WennerForward, LargeSpacingSeesLowerLayer) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  EXPECT_NEAR(wenner_apparent_resistivity(soil, 500.0), 62.5, 2.0);
}

TEST(WennerForward, CurveIsMonotoneForTwoLayerContrast) {
  // With rho1 > rho2 the apparent resistivity decreases with spacing.
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  double previous = wenner_apparent_resistivity(soil, 0.1);
  for (double a : {0.3, 1.0, 3.0, 10.0, 30.0, 100.0}) {
    const double rho = wenner_apparent_resistivity(soil, a);
    EXPECT_LT(rho, previous) << a;
    previous = rho;
  }
}

TEST(WennerForward, EqualLayersGiveFlatCurve) {
  const auto soil = soil::LayeredSoil::two_layer(0.01, 0.01, 2.0);
  EXPECT_NEAR(wenner_apparent_resistivity(soil, 0.5), 100.0, 1e-9);
  EXPECT_NEAR(wenner_apparent_resistivity(soil, 50.0), 100.0, 1e-9);
}

TEST(WennerForward, RejectsBadSpacing) {
  const auto soil = soil::LayeredSoil::uniform(0.01);
  EXPECT_THROW(wenner_apparent_resistivity(soil, 0.0), ebem::InvalidArgument);
}

std::vector<WennerReading> synthetic_survey(const soil::LayeredSoil& soil, double noise,
                                            unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> jitter(0.0, noise);
  std::vector<WennerReading> readings;
  for (double a : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double rho = wenner_apparent_resistivity(soil, a);
    readings.push_back({a, rho * std::exp(jitter(rng))});
  }
  return readings;
}

struct FitCase {
  double rho1;
  double rho2;
  double h;
  const char* name;
};

class TwoLayerInversion : public ::testing::TestWithParam<FitCase> {};

TEST_P(TwoLayerInversion, RecoversSyntheticParameters) {
  const FitCase& c = GetParam();
  const auto truth = soil::LayeredSoil::two_layer(1.0 / c.rho1, 1.0 / c.rho2, c.h);
  const auto readings = synthetic_survey(truth, 0.0, 1);
  const TwoLayerFit fit = fit_two_layer(readings);
  EXPECT_TRUE(fit.converged) << fit.rms_log_misfit;
  EXPECT_NEAR(fit.soil.resistivity(0), c.rho1, 0.02 * c.rho1) << c.name;
  EXPECT_NEAR(fit.soil.resistivity(1), c.rho2, 0.02 * c.rho2) << c.name;
  EXPECT_NEAR(fit.soil.interface_depth(0), c.h, 0.05 * c.h) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, TwoLayerInversion,
    ::testing::Values(FitCase{200.0, 62.5, 1.0, "barbera_like"},
                      FitCase{400.0, 50.0, 0.7, "balaidos_like"},
                      FitCase{50.0, 300.0, 2.0, "conductive_over_resistive"},
                      FitCase{100.0, 120.0, 1.5, "weak_contrast"}),
    [](const auto& info) { return info.param.name; });

TEST(TwoLayerInversion, ToleratesMeasurementNoise) {
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const auto readings = synthetic_survey(truth, 0.02, 7);  // 2% log-noise
  const TwoLayerFit fit = fit_two_layer(readings);
  EXPECT_NEAR(fit.soil.resistivity(0), 200.0, 0.15 * 200.0);
  EXPECT_NEAR(fit.soil.resistivity(1), 62.5, 0.15 * 62.5);
  EXPECT_NEAR(fit.soil.interface_depth(0), 1.0, 0.35);
}

TEST(TwoLayerInversion, RequiresThreeReadings) {
  EXPECT_THROW((void)fit_two_layer({{1.0, 100.0}, {2.0, 90.0}}), ebem::InvalidArgument);
}

TEST(TwoLayerInversion, RejectsNonPositiveReadings) {
  EXPECT_THROW((void)fit_two_layer({{1.0, 100.0}, {2.0, -90.0}, {4.0, 80.0}}),
               ebem::InvalidArgument);
}

TEST(FitUncertainty, RecoversTheInjectedNoiseLevel) {
  // Synthetic sounding with known 3% log-noise: the residual sigma must
  // estimate that noise, the parameter sigmas must be positive/finite, and
  // the truth must lie within a few combined sigmas of the fit.
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const double noise = 0.03;
  const auto readings = synthetic_survey(truth, noise, 11);
  const TwoLayerFit fit = fit_two_layer(readings);
  ASSERT_TRUE(fit.converged);
  ASSERT_TRUE(fit.uncertainty_valid);

  // 9 readings, 3 parameters: s is a 6-dof noise estimate — loose bracket.
  EXPECT_GT(fit.residual_sigma, 0.3 * noise);
  EXPECT_LT(fit.residual_sigma, 3.0 * noise);

  for (double sigma : {fit.sigma_log_rho1, fit.sigma_log_rho2, fit.sigma_log_h}) {
    EXPECT_GT(sigma, 0.0);
    EXPECT_TRUE(std::isfinite(sigma));
  }
  // Coverage: the generating parameters sit inside ~6-sigma intervals (the
  // sigmas are themselves 6-dof estimates, so the bracket is generous).
  EXPECT_LT(std::abs(std::log(truth.resistivity(0) / fit.soil.resistivity(0))),
            6.0 * fit.sigma_log_rho1);
  EXPECT_LT(std::abs(std::log(truth.resistivity(1) / fit.soil.resistivity(1))),
            6.0 * fit.sigma_log_rho2);
  EXPECT_LT(std::abs(std::log(truth.interface_depth(0) / fit.soil.interface_depth(0))),
            6.0 * fit.sigma_log_h);
}

TEST(FitUncertainty, ScalesWithTheNoise) {
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const TwoLayerFit quiet = fit_two_layer(synthetic_survey(truth, 0.01, 5));
  const TwoLayerFit loud = fit_two_layer(synthetic_survey(truth, 0.08, 5));
  ASSERT_TRUE(quiet.uncertainty_valid);
  ASSERT_TRUE(loud.uncertainty_valid);
  EXPECT_GT(loud.residual_sigma, quiet.residual_sigma);
  EXPECT_GT(loud.sigma_log_rho1, quiet.sigma_log_rho1);
  EXPECT_GT(loud.sigma_log_h, quiet.sigma_log_h);
}

TEST(FitUncertainty, NoiseFreeDataGivesNearZeroSigmas) {
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const TwoLayerFit fit = fit_two_layer(synthetic_survey(truth, 0.0, 1));
  ASSERT_TRUE(fit.uncertainty_valid);
  EXPECT_LT(fit.residual_sigma, 1e-4);
  EXPECT_LT(fit.sigma_log_rho1, 1e-3);
}

TEST(FitUncertainty, IsInvalidWithoutRedundancy) {
  // Exactly as many readings as parameters: zero residual degrees of
  // freedom, so no noise estimate and no covariance.
  const auto truth = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  std::vector<WennerReading> three;
  for (double a : {0.5, 2.0, 16.0}) {
    three.push_back({a, wenner_apparent_resistivity(truth, a)});
  }
  const TwoLayerFit fit = fit_two_layer(three);
  EXPECT_FALSE(fit.uncertainty_valid);
}

TEST(FitUncertainty, IsInvalidOnAFlatCurve) {
  // Equal layers: the sounding carries no information about h (the Jacobian
  // column for log h is ~0), J^T J is singular and the guard must refuse to
  // report sigmas rather than invert noise.
  const auto flat = soil::LayeredSoil::two_layer(0.01, 0.01, 2.0);
  const TwoLayerFit fit = fit_two_layer(synthetic_survey(flat, 0.0, 1));
  EXPECT_FALSE(fit.uncertainty_valid);
}

}  // namespace
}  // namespace ebem::estimation

// Cholesky factorization tests.
#include <gtest/gtest.h>

#include <random>

#include "src/common/error.hpp"
#include "src/la/cholesky.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {
namespace {

SymMatrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) a(i, j) = dist(rng);
    a(i, i) = std::abs(a(i, i)) + static_cast<double>(n);  // diagonally dominant
  }
  return a;
}

TEST(Cholesky, SolvesIdentity) {
  SymMatrix eye(4);
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  const Cholesky factor(eye);
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(factor.solve(b), b);
}

TEST(Cholesky, SolvesKnown2x2) {
  SymMatrix a(2);
  a(0, 0) = 4.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const Cholesky factor(a);
  const std::vector<double> x = factor.solve(std::vector<double>{10.0, 11.0});
  // A x = b with x = (1, 3): 4+6=10, 2+9=11.
  EXPECT_NEAR(x[0], 1.0, 1e-13);
  EXPECT_NEAR(x[1], 3.0, 1e-13);
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, RoundTripRandomSpd) {
  const std::size_t n = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(17 + n));
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = dist(rng);
  std::vector<double> b(n);
  a.multiply(x_true, b);
  const Cholesky factor(a);
  const std::vector<double> x = factor.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Cholesky, RejectsIndefiniteMatrix) {
  SymMatrix a(2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

TEST(CholeskyFailurePaths, NonSpdInputRaisesEbemErrorWithClearMessage) {
  // The whole hierarchy roots at ebem::Error, so a boundary handler can
  // catch one type; the message must say what went wrong, not just where.
  SymMatrix a(3);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;
  a(2, 2) = 4.0;
  try {
    const Cholesky factor(a);
    FAIL() << "expected ebem::Error";
  } catch (const ebem::Error& e) {
    EXPECT_NE(std::string(e.what()).find("not positive definite"), std::string::npos)
        << e.what();
  }
}

TEST(CholeskyFailurePaths, NonSpdInputRaisesEbemErrorOnTheSpillBackend) {
  // The out-of-core path must fail with the same typed error, not UB from a
  // half-paged factor: the throw unwinds through pinned tile guards.
  StorageConfig storage;
  storage.tile_size = 2;
  storage.residency_budget_bytes = 2 * TileLayout(4, 2).tile_bytes();
  SymMatrix a(4, storage);
  a.set(0, 0, 1.0);
  a.set(1, 0, 2.0);
  a.set(1, 1, 1.0);  // indefinite leading block
  a.set(2, 2, 5.0);
  a.set(3, 3, 5.0);
  EXPECT_THROW(Cholesky(a, CholeskyOptions{.block = 2}), ebem::Error);
}

TEST(CholeskyFailurePaths, UnwritableSpillDirRaisesEbemErrorWithTheDirInTheMessage) {
  StorageConfig storage;
  storage.tile_size = 4;
  storage.residency_budget_bytes = 1024;
  storage.spill_dir = "/nonexistent-ebem-spill-dir";
  try {
    const SymMatrix a(16, storage);
    FAIL() << "expected ebem::Error";
  } catch (const ebem::Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-ebem-spill-dir"), std::string::npos)
        << e.what();
  }
}

TEST(CholeskyFailurePaths, UnwritableSpillDirForTheFactorStoreRaisesEbemError) {
  // A healthy in-memory matrix whose *factor* is asked to spill somewhere
  // unwritable: the error must surface at construction, typed, and leave
  // the input matrix untouched.
  const SymMatrix a = [] {
    SymMatrix m(8);
    for (std::size_t i = 0; i < 8; ++i) m(i, i) = 10.0;
    return m;
  }();
  StorageConfig storage;
  storage.residency_budget_bytes = 1024;
  storage.spill_dir = "/nonexistent-ebem-spill-dir";
  EXPECT_THROW(Cholesky(a, CholeskyOptions{.block = 4, .storage = storage}), ebem::Error);
  EXPECT_DOUBLE_EQ(a(7, 7), 10.0);
}

TEST(Cholesky, RejectsZeroMatrix) {
  SymMatrix a(3);
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

TEST(Cholesky, RhsSizeMismatchThrows) {
  SymMatrix a(2);
  a(0, 0) = a(1, 1) = 1.0;
  const Cholesky factor(a);
  EXPECT_THROW(factor.solve(std::vector<double>{1.0}), InvalidArgument);
}

/// Row-major n x k block whose column c is a deterministic random vector.
std::vector<double> random_block(std::size_t n, std::size_t k, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> block(n * k);
  for (double& v : block) v = dist(rng);
  return block;
}

TEST(Cholesky, SolveManyMatchesColumnByColumnSolveBitwise) {
  // The blocked substitutions run each column through the exact same
  // operation sequence as solve(), so the match must be bitwise — any
  // looser agreement would indicate a different summation order.
  const std::size_t n = 37;
  const std::size_t k = 11;  // deliberately not a multiple of the chunk width
  const SymMatrix a = random_spd(n, 5);
  const Cholesky factor(a);
  const std::vector<double> block = random_block(n, k, 7);

  const std::vector<double> many = factor.solve_many(block, k);
  ASSERT_EQ(many.size(), n * k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = block[i * k + c];
    const std::vector<double> x = factor.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(many[i * k + c], x[i]) << "column " << c << " row " << i;
    }
  }
}

TEST(Cholesky, SolveManyIsBitwiseStableAcrossThreadCounts) {
  const std::size_t n = 64;
  const std::size_t k = 24;
  const SymMatrix a = random_spd(n, 11);
  const Cholesky factor(a);
  const std::vector<double> block = random_block(n, k, 13);

  const std::vector<double> serial = factor.solve_many(block, k);
  for (const std::size_t threads : {2u, 4u}) {
    par::ThreadPool pool(threads);
    const std::vector<double> parallel = factor.solve_many(block, k, &pool);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(Cholesky, SolveManySingleColumnMatchesSolve) {
  const std::size_t n = 16;
  const SymMatrix a = random_spd(n, 3);
  const Cholesky factor(a);
  const std::vector<double> b = random_block(n, 1, 21);
  EXPECT_EQ(factor.solve_many(b, 1), factor.solve(b));
}

TEST(Cholesky, SolveManyValidatesBlockShape) {
  SymMatrix a(2);
  a(0, 0) = a(1, 1) = 1.0;
  const Cholesky factor(a);
  EXPECT_THROW((void)factor.solve_many(std::vector<double>{1.0, 2.0, 3.0}, 2),
               InvalidArgument);
  EXPECT_THROW((void)factor.solve_many(std::vector<double>{1.0, 2.0}, 0), InvalidArgument);
}

}  // namespace
}  // namespace ebem::la

// Cholesky factorization tests.
#include <gtest/gtest.h>

#include <random>

#include "src/common/error.hpp"
#include "src/la/cholesky.hpp"

namespace ebem::la {
namespace {

SymMatrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) a(i, j) = dist(rng);
    a(i, i) = std::abs(a(i, i)) + static_cast<double>(n);  // diagonally dominant
  }
  return a;
}

TEST(Cholesky, SolvesIdentity) {
  SymMatrix eye(4);
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  const Cholesky factor(eye);
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(factor.solve(b), b);
}

TEST(Cholesky, SolvesKnown2x2) {
  SymMatrix a(2);
  a(0, 0) = 4.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const Cholesky factor(a);
  const std::vector<double> x = factor.solve(std::vector<double>{10.0, 11.0});
  // A x = b with x = (1, 3): 4+6=10, 2+9=11.
  EXPECT_NEAR(x[0], 1.0, 1e-13);
  EXPECT_NEAR(x[1], 3.0, 1e-13);
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, RoundTripRandomSpd) {
  const std::size_t n = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(17 + n));
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = dist(rng);
  std::vector<double> b(n);
  a.multiply(x_true, b);
  const Cholesky factor(a);
  const std::vector<double> x = factor.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Cholesky, RejectsIndefiniteMatrix) {
  SymMatrix a(2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

TEST(Cholesky, RejectsZeroMatrix) {
  SymMatrix a(3);
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

TEST(Cholesky, RhsSizeMismatchThrows) {
  SymMatrix a(2);
  a(0, 0) = a(1, 1) = 1.0;
  const Cholesky factor(a);
  EXPECT_THROW(factor.solve(std::vector<double>{1.0}), InvalidArgument);
}

}  // namespace
}  // namespace ebem::la

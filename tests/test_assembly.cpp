// Global assembly: correctness vs a brute-force ordered-pair reference,
// parallel == sequential, SPD-ness, parallel modes and schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/dense_matrix.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::bem {
namespace {

BemModel small_grid_model(const soil::LayeredSoil& soil) {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  spec.depth = 0.8;
  spec.radius = 0.006;
  return BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

/// Brute-force reference: assemble the FULL dense matrix from all M^2
/// ordered element pairs (no symmetry shortcut), then symmetrize.
la::DenseMatrix reference_full_matrix(const BemModel& model, const AssemblyOptions& options) {
  const soil::ImageKernel kernel(model.soil(), options.series);
  const Integrator integrator(kernel, options.integrator);
  const BasisKind basis = options.integrator.basis;
  const std::size_t n = model.dof_count(basis);
  const std::size_t locals = model.local_dof_count(basis);
  la::DenseMatrix full(n, n);
  for (std::size_t beta = 0; beta < model.element_count(); ++beta) {
    for (std::size_t alpha = 0; alpha < model.element_count(); ++alpha) {
      const LocalMatrix local =
          integrator.element_pair(model.elements()[beta], model.elements()[alpha]);
      for (std::size_t p = 0; p < locals; ++p) {
        for (std::size_t q = 0; q < locals; ++q) {
          full(model.global_dof(basis, beta, p), model.global_dof(basis, alpha, q)) +=
              local.value[p][q];
        }
      }
    }
  }
  // Symmetrize away the quadrature-level transpose error.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = 0.5 * (full(i, j) + full(j, i));
      full(i, j) = v;
      full(j, i) = v;
    }
  }
  return full;
}

TEST(Assembly, MatchesBruteForceReferenceLinearBasis) {
  // This pins down the subtle shared-node double-count in the triangular
  // scatter: any error there shows up immediately against the full matrix.
  const auto soil = soil::LayeredSoil::uniform(0.016);
  const BemModel model = small_grid_model(soil);
  AssemblyOptions options;
  const AssemblyResult result = assemble(model, options);
  const la::DenseMatrix reference = reference_full_matrix(model, options);
  const std::size_t n = model.dof_count(BasisKind::kLinear);
  ASSERT_EQ(result.matrix.size(), n);
  // Tolerance note: the assembled triangle uses each pair's (beta, alpha)
  // orientation for both halves, while the reference averages the two
  // orientations; the outer-Gauss/inner-analytic split makes those differ at
  // the quadrature level (~1e-5 relative). A scatter logic error (missing
  // transpose contribution, wrong double count) shows up at O(1).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(result.matrix(i, j), reference(i, j), 1e-4 * std::abs(reference(i, j)) + 1e-12)
          << i << "," << j;
    }
  }
}

TEST(Assembly, MatchesBruteForceReferenceConstantBasis) {
  const auto soil = soil::LayeredSoil::uniform(0.016);
  const BemModel model = small_grid_model(soil);
  AssemblyOptions options;
  options.integrator.basis = BasisKind::kConstant;
  const AssemblyResult result = assemble(model, options);
  const la::DenseMatrix reference = reference_full_matrix(model, options);
  for (std::size_t i = 0; i < result.matrix.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(result.matrix(i, j), reference(i, j),
                  1e-7 * std::abs(reference(i, j)) + 1e-12);
    }
  }
}

TEST(Assembly, MatchesBruteForceReferenceTwoLayer) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const BemModel model = small_grid_model(soil);
  AssemblyOptions options;
  options.series.tolerance = 1e-10;
  const AssemblyResult result = assemble(model, options);
  const la::DenseMatrix reference = reference_full_matrix(model, options);
  for (std::size_t i = 0; i < result.matrix.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // Same tolerance rationale as the linear-basis reference test.
      EXPECT_NEAR(result.matrix(i, j), reference(i, j),
                  1e-4 * std::abs(reference(i, j)) + 1e-12);
    }
  }
}

TEST(Assembly, SystemIsPositiveDefinite) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const BemModel model = small_grid_model(soil);
  const AssemblyResult result = assemble(model, {});
  EXPECT_NO_THROW(la::Cholesky{result.matrix});
}

TEST(Assembly, RhsIsElementLengthPartition) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const BemModel model = small_grid_model(soil);
  const AssemblyResult linear = assemble(model, {});
  double total = 0.0;
  for (double v : linear.rhs) total += v;
  // Sum of hat integrals over all nodes = total conductor length.
  double length = 0.0;
  for (const BemElement& e : model.elements()) length += e.length;
  EXPECT_NEAR(total, length, 1e-10);

  AssemblyOptions constant;
  constant.integrator.basis = BasisKind::kConstant;
  const AssemblyResult rc = assemble(model, constant);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    EXPECT_DOUBLE_EQ(rc.rhs[e], model.elements()[e].length);
  }
}

TEST(Assembly, ElementPairCountIsTriangular) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const BemModel model = small_grid_model(soil);
  const std::size_t m = model.element_count();
  const AssemblyResult result = assemble(model, {});
  EXPECT_EQ(result.element_pairs, m * (m + 1) / 2);
}

struct ParallelCase {
  ParallelLoop loop;
  par::Schedule schedule;
  Backend backend;
  std::size_t threads;
  std::string name;
};

class ParallelAssembly : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelAssembly, MatchesSequentialWithinTolerance) {
  // The fused streaming scheme scatters elemental matrices concurrently, so
  // per-entry accumulation order — and nothing else — may differ from the
  // sequential path: parity must hold to tight floating-point reordering
  // tolerance for every schedule / loop mode / backend combination.
  const ParallelCase& c = GetParam();
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const BemModel model = small_grid_model(soil);

  const AssemblyResult sequential = assemble(model, {});

  AssemblyExecution execution;
  execution.num_threads = c.threads;
  execution.loop = c.loop;
  execution.schedule = c.schedule;
  execution.backend = c.backend;
  const AssemblyResult parallel = assemble(model, {}, execution);

  const auto seq = sequential.matrix.packed();
  const auto par = parallel.matrix.packed();
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t k = 0; k < seq.size(); ++k) {
    EXPECT_NEAR(seq[k], par[k], 1e-12 * std::abs(seq[k]) + 1e-15) << "packed index " << k;
  }
}

std::vector<ParallelCase> parity_cases() {
  // Full {static, dynamic, guided} x {outer, inner} x {pool, OpenMP} cross
  // product, plus a few chunked variants of the paper's Table 6.2 study.
  std::vector<ParallelCase> cases;
  const std::pair<par::Schedule, const char*> schedules[] = {
      {par::Schedule::static_blocked(), "static"},
      {par::Schedule::dynamic(1), "dynamic1"},
      {par::Schedule::guided(1), "guided1"},
  };
  for (const auto& [loop, loop_name] :
       {std::pair{ParallelLoop::kOuter, "outer"}, std::pair{ParallelLoop::kInner, "inner"}}) {
    for (const auto& [backend, backend_name] :
         {std::pair{Backend::kThreadPool, "pool"}, std::pair{Backend::kOpenMp, "omp"}}) {
      for (const auto& [schedule, schedule_name] : schedules) {
        cases.push_back({loop, schedule, backend, 4,
                         std::string(loop_name) + "_" + schedule_name + "_" + backend_name});
      }
    }
  }
  cases.push_back({ParallelLoop::kOuter, par::Schedule::dynamic(4), Backend::kThreadPool, 4,
                   "outer_dynamic4_pool"});
  cases.push_back({ParallelLoop::kOuter, par::Schedule::static_chunked(2), Backend::kThreadPool,
                   4, "outer_static2_pool"});
  cases.push_back({ParallelLoop::kInner, par::Schedule::guided(2), Backend::kThreadPool, 2,
                   "inner_guided2_pool_t2"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ModesSchedulesBackends, ParallelAssembly,
                         ::testing::ValuesIn(parity_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(Assembly, ExternalPoolIsReusedAcrossAssemblies) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const BemModel model = small_grid_model(soil);
  const AssemblyResult sequential = assemble(model, {});

  par::ThreadPool pool(3);
  AssemblyExecution execution;
  execution.num_threads = 3;
  execution.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    const AssemblyResult result = assemble(model, {}, execution);
    const auto seq = sequential.matrix.packed();
    const auto par = result.matrix.packed();
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t k = 0; k < seq.size(); ++k) {
      EXPECT_NEAR(seq[k], par[k], 1e-12 * std::abs(seq[k]) + 1e-15) << "packed index " << k;
    }
  }
}

TEST(Assembly, ColumnCostsMeasuredWhenRequested) {
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const BemModel model = small_grid_model(soil);
  AssemblyExecution execution;
  execution.measure_column_costs = true;
  const AssemblyResult result = assemble(model, {}, execution);
  ASSERT_EQ(result.column_costs.size(), model.element_count());
  for (double cost : result.column_costs) EXPECT_GE(cost, 0.0);
  // Later columns couple fewer elements, so the first column should cost at
  // least as much as the last one on average (timing noise aside).
  EXPECT_GE(result.column_costs.front(), 0.0);
}

TEST(Assembly, MixedLayerModelAssembles) {
  // Rods crossing the interface (Balaidos model C topology).
  const auto soil = soil::LayeredSoil::two_layer(0.0025, 0.02, 1.0);
  std::vector<geom::Conductor> grid{{{0, 0, -0.8}, {10, 0, -0.8}, 0.006}};
  geom::RodSpec rod;
  geom::add_rods(grid, {{0, 0, 0}, {10, 0, 0}}, 0.8, rod);
  const auto split = split_at_interfaces(grid, soil);
  const BemModel model(geom::Mesh::build(split), soil);
  // The two rods straddle z = -1.0, so splitting yields 5 elements.
  EXPECT_EQ(model.element_count(), 5u);
  const AssemblyResult result = assemble(model, {});
  EXPECT_NO_THROW(la::Cholesky{result.matrix});
}

}  // namespace
}  // namespace ebem::bem

// JSON report writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/cad/grounding_system.hpp"
#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/io/report_writer.hpp"

namespace ebem::io {
namespace {

cad::Report solved_report() {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  cad::DesignOptions options;
  options.analysis.gpr = 10e3;
  cad::GroundingSystem system(geom::make_rect_grid(spec), soil::LayeredSoil::uniform(0.02),
                              options);
  return system.analyze();
}

TEST(ReportWriter, EmitsAllFields) {
  const std::string json = report_json(solved_report());
  for (const char* key :
       {"\"gpr_volts\"", "\"equivalent_resistance_ohm\"", "\"total_current_amps\"",
        "\"element_count\"", "\"dof_count\"", "\"phases_cpu_seconds\"",
        "\"matrix_generation\"", "\"linear_system_solving\"", "\"matrix_generation_share\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ReportWriter, ValuesRoundTripNumerically) {
  const cad::Report report = solved_report();
  const std::string json = report_json(report);
  // Pull the resistance value back out and compare.
  const auto pos = json.find("\"equivalent_resistance_ohm\": ");
  ASSERT_NE(pos, std::string::npos);
  const double parsed = std::stod(json.substr(pos + 29));
  EXPECT_NEAR(parsed, report.equivalent_resistance, 1e-9 * report.equivalent_resistance);
}

TEST(ReportWriter, BalancedBracesAndQuotes) {
  const std::string json = report_json(solved_report());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(ReportWriter, FileWriterFailsOnBadPath) {
  EXPECT_THROW(write_report_json_file("/nonexistent-dir/report.json", solved_report()),
               ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::io

// Dense parameterized cross-validation sweep of the two-layer image kernel
// against the Hankel oracle: reflection-coefficient grid x layer-case grid.
//
// This is the property-style safety net for the physics core: any error in
// an image family's weights or positions shows up somewhere on this grid
// even if it cancels at a particular contrast.
#include <gtest/gtest.h>

#include <cmath>

#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"

namespace ebem::soil {
namespace {

using geom::Vec3;

struct SweepCase {
  double kappa;        ///< target reflection coefficient
  int source_layer;    ///< 0 upper / 1 lower
  int field_layer;
};

class KernelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweep, ImageSeriesMatchesHankelOracle) {
  const SweepCase& c = GetParam();
  // Build a soil with the requested kappa: fix gamma_2, solve for gamma_1
  // from kappa = (g1 - g2) / (g1 + g2).
  const double g2 = 0.016;
  const double g1 = g2 * (1.0 + c.kappa) / (1.0 - c.kappa);
  const double h = 1.0;
  const LayeredSoil soil = LayeredSoil::two_layer(g1, g2, h);
  const ImageKernel image(soil, {1e-12, 8192});
  const HankelKernel hankel(soil);

  const Vec3 xi{0, 0, c.source_layer == 0 ? -0.6 : -1.7};
  const Vec3 fields[] = {
      {1.5, 0.5, c.field_layer == 0 ? -0.3 : -1.4},
      {6.0, 0.0, c.field_layer == 0 ? -0.9 : -2.8},
      {0.4, 0.2, c.field_layer == 0 ? -0.5 : -2.0},
  };
  for (const Vec3& x : fields) {
    const double a = image.evaluate(x, xi);
    const double b = hankel.evaluate(x, xi);
    EXPECT_NEAR(a, b, 5e-6 * std::abs(b))
        << "kappa=" << c.kappa << " b=" << c.source_layer << " c=" << c.field_layer
        << " x=(" << x.x << "," << x.y << "," << x.z << ")";
  }
}

std::vector<SweepCase> sweep() {
  std::vector<SweepCase> cases;
  for (double kappa : {-0.9, -0.5, -0.1, 0.1, 0.5, 0.9}) {
    for (int b : {0, 1}) {
      for (int c : {0, 1}) {
        cases.push_back({kappa, b, c});
      }
    }
  }
  return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = c.kappa < 0 ? "neg" : "pos";
  name += std::to_string(static_cast<int>(std::abs(c.kappa) * 10));
  name += "_b" + std::to_string(c.source_layer) + "c" + std::to_string(c.field_layer);
  return name;
}

INSTANTIATE_TEST_SUITE_P(ContrastAndLayers, KernelSweep, ::testing::ValuesIn(sweep()),
                         sweep_name);

class ReciprocitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ReciprocitySweep, HoldsAcrossContrasts) {
  const double kappa = GetParam();
  const double g2 = 0.02;
  const double g1 = g2 * (1.0 + kappa) / (1.0 - kappa);
  const LayeredSoil soil = LayeredSoil::two_layer(g1, g2, 0.8);
  const ImageKernel kernel(soil, {1e-13, 8192});
  const Vec3 pairs[][2] = {
      {{1, 0, -0.4}, {0, 1, -0.6}},    // both upper
      {{1, 0, -0.4}, {0, 1, -1.6}},    // cross
      {{2, 0, -1.1}, {0, 0, -2.6}},    // both lower
  };
  for (const auto& pair : pairs) {
    const double forward = kernel.evaluate(pair[0], pair[1]);
    const double backward = kernel.evaluate(pair[1], pair[0]);
    EXPECT_NEAR(forward, backward, 1e-11 * std::abs(forward)) << kappa;
  }
}

INSTANTIATE_TEST_SUITE_P(Contrasts, ReciprocitySweep,
                         ::testing::Values(-0.95, -0.6, -0.2, 0.2, 0.6, 0.95));

class InterfaceContinuitySweep : public ::testing::TestWithParam<double> {};

TEST_P(InterfaceContinuitySweep, PotentialContinuousAtAllContrasts) {
  const double kappa = GetParam();
  const double g2 = 0.02;
  const double g1 = g2 * (1.0 + kappa) / (1.0 - kappa);
  const LayeredSoil soil = LayeredSoil::two_layer(g1, g2, 1.2);
  const ImageKernel kernel(soil, {1e-13, 8192});
  for (double source_z : {-0.5, -2.0}) {
    const Vec3 xi{0, 0, source_z};
    const double above = kernel.evaluate({2.0, 0, -1.2 + 1e-9}, xi);
    const double below = kernel.evaluate({2.0, 0, -1.2 - 1e-9}, xi);
    EXPECT_NEAR(above, below, 1e-6 * std::abs(above)) << kappa << " zs=" << source_z;
  }
}

INSTANTIATE_TEST_SUITE_P(Contrasts, InterfaceContinuitySweep,
                         ::testing::Values(-0.9, -0.4, 0.0, 0.4, 0.9));

}  // namespace
}  // namespace ebem::soil

// parallel_for correctness across every schedule kind, chunk and thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "src/common/error.hpp"
#include "src/parallel/parallel_for.hpp"

namespace ebem::par {
namespace {

struct Case {
  ScheduleKind kind;
  std::size_t chunk;
  std::size_t threads;
  std::size_t n;
};

class ParallelForSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelForSweep, EveryIndexVisitedExactlyOnce) {
  const Case c = GetParam();
  std::vector<std::atomic<int>> visits(c.n);
  ThreadPool pool(c.threads);
  parallel_for(pool, c.n, {c.kind, c.chunk},
               [&](std::size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < c.n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForSweep, ChunkedVariantCoversDisjointRanges) {
  const Case c = GetParam();
  std::vector<std::atomic<int>> visits(c.n);
  ThreadPool pool(c.threads);
  parallel_for_chunks(pool, c.n, {c.kind, c.chunk}, [&](ChunkRange range, std::size_t tid) {
    EXPECT_LT(tid, c.threads);
    EXPECT_LT(range.begin, range.end);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < c.n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (ScheduleKind kind : {ScheduleKind::kStatic, ScheduleKind::kDynamic, ScheduleKind::kGuided}) {
    for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{100}}) {
          cases.push_back({kind, chunk, threads, n});
        }
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string kind = c.kind == ScheduleKind::kStatic    ? "Static"
                     : c.kind == ScheduleKind::kDynamic ? "Dynamic"
                                                        : "Guided";
  return kind + "_c" + std::to_string(c.chunk) + "_t" + std::to_string(c.threads) + "_n" +
         std::to_string(c.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelForSweep, ::testing::ValuesIn(sweep_cases()), case_name);

TEST(StaticChunks, DefaultBlockPartitionIsContiguousAndEven) {
  // 10 iterations over 3 threads: blocks of 4, 3, 3.
  const auto t0 = static_chunks_for_thread(10, 3, 0, 0);
  const auto t1 = static_chunks_for_thread(10, 3, 1, 0);
  const auto t2 = static_chunks_for_thread(10, 3, 2, 0);
  ASSERT_EQ(t0.size(), 1u);
  EXPECT_EQ(t0[0].begin, 0u);
  EXPECT_EQ(t0[0].end, 4u);
  EXPECT_EQ(t1[0].begin, 4u);
  EXPECT_EQ(t1[0].end, 7u);
  EXPECT_EQ(t2[0].begin, 7u);
  EXPECT_EQ(t2[0].end, 10u);
}

TEST(StaticChunks, RoundRobinChunked) {
  // 10 iterations, 2 threads, chunk 3: t0 gets [0,3) and [6,9); t1 [3,6), [9,10).
  const auto t0 = static_chunks_for_thread(10, 2, 0, 3);
  const auto t1 = static_chunks_for_thread(10, 2, 1, 3);
  ASSERT_EQ(t0.size(), 2u);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t0[0].begin, 0u);
  EXPECT_EQ(t0[1].begin, 6u);
  EXPECT_EQ(t1[0].begin, 3u);
  EXPECT_EQ(t1[1].begin, 9u);
  EXPECT_EQ(t1[1].end, 10u);
}

TEST(StaticChunks, ThreadWithNoWorkGetsNothing) {
  // 2 iterations, 8 threads, chunk 1: threads 2..7 idle (the paper's
  // "some processors do not get any work" regime).
  for (std::size_t tid = 2; tid < 8; ++tid) {
    EXPECT_TRUE(static_chunks_for_thread(2, 8, tid, 1).empty());
  }
}

TEST(StaticChunks, PartitionIsCompleteAndDisjoint) {
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    std::set<std::size_t> seen;
    for (std::size_t tid = 0; tid < 4; ++tid) {
      for (const ChunkRange& r : static_chunks_for_thread(37, 4, tid, chunk)) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
        }
      }
    }
    EXPECT_EQ(seen.size(), 37u);
  }
}

TEST(GuidedChunkSize, ProportionalWithFloor) {
  EXPECT_EQ(guided_chunk_size(100, 4, 1), 12u);  // remaining / (2p)
  EXPECT_EQ(guided_chunk_size(7, 4, 1), 1u);
  EXPECT_EQ(guided_chunk_size(7, 4, 4), 4u);
  EXPECT_EQ(guided_chunk_size(1, 8, 1), 1u);
}

TEST(ParallelFor, SumReductionMatchesSequential) {
  const std::size_t n = 5000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 1.0);
  const double expected = std::accumulate(data.begin(), data.end(), 0.0);

  std::atomic<long long> sum_milli{0};
  parallel_for(4, n, Schedule::guided(2), [&](std::size_t i) {
    sum_milli.fetch_add(static_cast<long long>(data[i] * 1000.0), std::memory_order_relaxed);
  });
  EXPECT_DOUBLE_EQ(static_cast<double>(sum_milli.load()) / 1000.0, expected);
}

TEST(ParallelFor, ExceptionsPropagateToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 100, Schedule::dynamic(1),
                            [&](std::size_t i) {
                              if (i == 57) throw std::runtime_error("worker failure");
                            }),
               std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> count{0};
  parallel_for(pool, 10, Schedule::dynamic(1), [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RunsEveryThreadOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, ZeroThreadsRejected) { EXPECT_THROW(ThreadPool{0}, InvalidArgument); }

TEST(ScheduleToString, MatchesPaperLabels) {
  EXPECT_EQ(to_string(Schedule::dynamic(1)), "Dynamic,1");
  EXPECT_EQ(to_string(Schedule::static_chunked(64)), "Static,64");
  EXPECT_EQ(to_string(Schedule::guided(16)), "Guided,16");
  EXPECT_EQ(to_string(Schedule::static_blocked()), "Static");
}

}  // namespace
}  // namespace ebem::par

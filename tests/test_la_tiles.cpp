// Tiled storage layer: TileLayout geometry, the in-memory arena, the
// out-of-core spill pager (eviction, read-back, budget accounting), and
// parity of the tile-walking algorithms (multiply, Cholesky factor/solve)
// between the two backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/la/tile_store.hpp"
#include "src/parallel/thread_pool.hpp"
#include "tests/support/random_spd.hpp"

namespace ebem::la {
namespace {

using testing::random_spd;
using testing::random_vector;

/// Spill-backed deep copy of an in-memory matrix (entries go through the
/// pager's set path, the backends' common write interface).
SymMatrix spill_copy(const SymMatrix& a, std::size_t tile_size, double residency_fraction) {
  StorageConfig config;
  config.tile_size = tile_size;
  config.residency_budget_bytes = static_cast<std::size_t>(
      residency_fraction * static_cast<double>(TileLayout(a.size(), tile_size).total_bytes()));
  SymMatrix b(a.size(), config);
  copy_tiles(a.store(), b.store());
  return b;
}

// ---------------------------------------------------------------------------
// TileLayout
// ---------------------------------------------------------------------------

TEST(TileLayout, GeometryAndIndexing) {
  const TileLayout layout(100, 32);
  EXPECT_EQ(layout.tile(), 32u);
  EXPECT_EQ(layout.tile_rows(), 4u);       // ceil(100 / 32)
  EXPECT_EQ(layout.tile_count(), 10u);     // 4 * 5 / 2
  EXPECT_EQ(layout.rows_in(3), 4u);        // 100 - 96
  EXPECT_EQ(layout.row_begin(2), 64u);
  EXPECT_EQ(layout.row_end(3), 100u);
  EXPECT_EQ(layout.tile_of(95), 2u);
  EXPECT_EQ(layout.tile_index(3, 1), 7u);  // 3*4/2 + 1
  EXPECT_EQ(layout.tile_offset(33, 2), 34u);  // local (1, 2) in a 32-tile
}

TEST(TileLayout, TileSizeClampsToDimension) {
  const TileLayout layout(5, 64);
  EXPECT_EQ(layout.tile(), 5u);
  EXPECT_EQ(layout.tile_rows(), 1u);
  EXPECT_EQ(layout.tile_count(), 1u);
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

TEST(InMemoryTileStore, CheckoutIsZeroCopyIntoTheArena) {
  const auto store = make_tile_store(48, {.tile_size = 16});
  ASSERT_NE(store->direct_data(), nullptr);
  {
    const TileGuard guard = store->checkout(2, 1, TileAccess::kWrite);
    guard.data()[5] = 3.5;
    EXPECT_EQ(guard.data(),
              store->direct_data() + store->layout().tile_index(2, 1) * 16 * 16);
  }
  const TileGuard again = store->checkout(2, 1, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(again.data()[5], 3.5);
  const TileStoreStats stats = store->stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_bytes, store->layout().total_bytes());
}

TEST(SpillTileStore, EvictsWritesBackAndReadsBackUnderBudget) {
  const TileLayout layout(64, 8);  // 8 tile rows -> 36 tiles of 512 B
  StorageConfig config;
  config.tile_size = 8;
  config.residency_budget_bytes = 4 * layout.tile_bytes();  // 4 of 36 resident
  SpillTileStore store(layout, config);
  EXPECT_EQ(store.max_resident_tiles(), 4u);

  // Stamp every tile with a distinct pattern, forcing evictions of dirty
  // tiles along the way.
  for (std::size_t ti = 0; ti < layout.tile_rows(); ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      const TileGuard guard = store.checkout(ti, tj, TileAccess::kWrite);
      const double stamp = static_cast<double>(layout.tile_index(ti, tj));
      for (std::size_t k = 0; k < layout.tile_doubles(); ++k) {
        guard.data()[k] = stamp + static_cast<double>(k) * 1e-3;
      }
    }
  }
  TileStoreStats stats = store.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.spill_writes, 0u);
  EXPECT_LE(stats.peak_resident_bytes, config.residency_budget_bytes);

  // Read every tile back and verify the pager round-tripped the payloads.
  for (std::size_t ti = 0; ti < layout.tile_rows(); ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      const TileGuard guard = store.checkout(ti, tj, TileAccess::kRead);
      const double stamp = static_cast<double>(layout.tile_index(ti, tj));
      for (std::size_t k = 0; k < layout.tile_doubles(); ++k) {
        ASSERT_DOUBLE_EQ(guard.data()[k], stamp + static_cast<double>(k) * 1e-3)
            << ti << "," << tj << " k=" << k;
      }
    }
  }
  stats = store.stats();
  EXPECT_GT(stats.spill_reads, 0u);
  EXPECT_EQ(stats.bytes_written, stats.spill_writes * layout.tile_bytes());
  EXPECT_EQ(stats.bytes_read, stats.spill_reads * layout.tile_bytes());
}

TEST(SpillTileStore, FirstTouchIsLogicalZeroAndSetZeroResets) {
  const TileLayout layout(32, 8);
  StorageConfig config;
  config.tile_size = 8;
  config.residency_budget_bytes = 2 * layout.tile_bytes();
  SpillTileStore store(layout, config);
  {
    const TileGuard guard = store.checkout(3, 0, TileAccess::kWrite);
    EXPECT_DOUBLE_EQ(guard.data()[0], 0.0);  // never written, never read
    guard.data()[0] = 7.0;
  }
  store.set_zero();
  const TileGuard guard = store.checkout(3, 0, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(guard.data()[0], 0.0);
}

TEST(SpillTileStore, CloneCarriesContentIntoAFreshScratchFile) {
  SymMatrix a = random_spd(40, 9);
  const SymMatrix spilled = spill_copy(a, 8, 0.3);
  const SymMatrix clone(spilled);  // SymMatrix deep copy goes through clone()
  EXPECT_EQ(clone.packed(), spilled.packed());
  EXPECT_EQ(clone.packed(), a.packed());
}

TEST(SpillTileStore, GrowsPastTheBudgetInsteadOfDeadlockingWhenAllPinned) {
  const TileLayout layout(24, 8);
  StorageConfig config;
  config.tile_size = 8;
  config.residency_budget_bytes = layout.tile_bytes();  // one resident tile
  SpillTileStore store(layout, config);
  const TileGuard a = store.checkout(0, 0, TileAccess::kWrite);
  const TileGuard b = store.checkout(1, 0, TileAccess::kWrite);  // must not deadlock
  const TileGuard c = store.checkout(1, 1, TileAccess::kWrite);
  a.data()[0] = 1.0;
  b.data()[0] = 2.0;
  c.data()[0] = 3.0;
  EXPECT_GE(store.stats().peak_resident_bytes, 3 * layout.tile_bytes());
}

TEST(SpillTileStore, IntrusiveLruEvictsInRecencyOrder) {
  // Pin down the O(1) recency-list pager against hand-computed LRU
  // behaviour: victims must fall out in least-recently-*used* order (a
  // checkout refreshes recency, releasing a pin does not add one), and the
  // counters must account one eviction per displaced tile and one read-back
  // per revisited spilled tile.
  const TileLayout layout(32, 8);  // 4 tile rows -> 10 tiles
  StorageConfig config;
  config.tile_size = 8;
  config.residency_budget_bytes = 2 * layout.tile_bytes();  // 2 resident slots
  SpillTileStore store(layout, config);
  const auto touch = [&](std::size_t ti, std::size_t tj) {
    const TileGuard guard = store.checkout(ti, tj, TileAccess::kWrite);
    guard.data()[0] += 1.0;
  };

  touch(0, 0);  // resident: {00}
  touch(1, 0);  // resident: {00, 10}
  EXPECT_EQ(store.stats().evictions, 0u);

  touch(0, 0);              // refresh 00 -> LRU order is now [10, 00]
  touch(1, 1);              // evicts 10, the stalest
  TileStoreStats stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.spill_writes, 1u);  // 10 was dirty
  EXPECT_EQ(stats.spill_reads, 0u);   // nothing revisited yet

  touch(0, 0);  // still resident: no eviction, no IO
  EXPECT_EQ(store.stats().evictions, 1u);

  touch(1, 0);  // faults back in (read-back), evicting 11
  stats = store.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.spill_reads, 1u);
  EXPECT_EQ(stats.spill_writes, 2u);  // 11 written back on its way out

  // A pinned tile is skipped even when it is the stalest: pin 00 (now LRU
  // after 10's refresh), then fault two fresh tiles — both victims must be
  // the unpinned tiles, never 00.
  const TileGuard pinned = store.checkout(0, 0, TileAccess::kRead);
  touch(2, 0);
  touch(2, 1);
  {
    const TileGuard still_there = store.checkout(0, 0, TileAccess::kRead);
    EXPECT_DOUBLE_EQ(still_there.data()[0], 3.0);  // touched three times
  }
  stats = store.stats();
  EXPECT_EQ(stats.spill_reads, 1u);  // 00 was never evicted, so never re-read
  // Content survived the whole shuffle.
  const TileGuard check10 = store.checkout(1, 0, TileAccess::kRead);
  EXPECT_DOUBLE_EQ(check10.data()[0], 2.0);
}

// ---------------------------------------------------------------------------
// SymMatrix over the spill backend
// ---------------------------------------------------------------------------

TEST(SymMatrixSpill, ScalarAccessRoundTripsThroughThePager) {
  StorageConfig config;
  config.tile_size = 8;
  config.residency_budget_bytes = 2 * TileLayout(30, 8).tile_bytes();
  SymMatrix a(30, config);
  a.set(17, 3, 2.5);
  a.add(17, 3, 0.5);
  a.add(3, 17, 1.0);  // aliases (17, 3)
  EXPECT_DOUBLE_EQ(std::as_const(a)(17, 3), 4.0);
  EXPECT_DOUBLE_EQ(a.get(3, 17), 4.0);
  // Mutable references need direct storage — a paged tile may move.
  EXPECT_THROW(a(17, 3) = 1.0, ebem::InvalidArgument);
}

TEST(SymMatrixSpill, MultiplyMatchesInMemorySerialAndPooled) {
  const std::size_t n = 150;
  const SymMatrix a = random_spd(n, 21);
  const SymMatrix spilled = spill_copy(a, 32, 0.4);
  const std::vector<double> x = random_vector(n, 22);
  std::vector<double> y_mem(n), y_spill(n);
  a.multiply(x, y_mem);
  spilled.multiply(x, y_spill);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_mem[i], y_spill[i], 1e-12 * std::abs(y_mem[i]) + 1e-13) << i;
  }
  par::ThreadPool pool(4);
  // Cutoff 1 forces the pooled tile walk even at this size; the pager's
  // checkout bookkeeping must be safe under concurrent strips.
  spilled.multiply(x, y_spill, &pool, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_mem[i], y_spill[i], 1e-12 * std::abs(y_mem[i]) + 1e-13) << i;
  }
  EXPECT_GT(spilled.tile_stats().evictions, 0u);
}

TEST(SymMatrixSpill, DiagonalAndPackedMatchInMemory) {
  const SymMatrix a = random_spd(45, 31);
  const SymMatrix spilled = spill_copy(a, 16, 0.35);
  EXPECT_EQ(spilled.packed(), a.packed());
  EXPECT_EQ(spilled.diagonal(), a.diagonal());
}

// ---------------------------------------------------------------------------
// Out-of-core Cholesky
// ---------------------------------------------------------------------------

class SpillCholesky : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpillCholesky, FactorAndSolveMatchInMemoryUnderHalfResidency) {
  const std::size_t n = GetParam();
  const SymMatrix a = random_spd(n, static_cast<unsigned>(300 + n));
  const std::vector<double> b = random_vector(n, static_cast<unsigned>(n));

  const Cholesky in_memory(a, {.block = 16});
  const std::vector<double> x_mem = in_memory.solve(b);

  // The spill-backed matrix inherits its policy into the factor's working
  // store; both stay capped below half the matrix bytes resident.
  const SymMatrix spilled = spill_copy(a, 16, 0.4);
  const Cholesky out_of_core(spilled, {.block = 16});
  const std::vector<double> x_spill = out_of_core.solve(b);

  ASSERT_EQ(x_spill.size(), x_mem.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_mem[i], x_spill[i], 1e-12 * std::abs(x_mem[i]) + 1e-13) << i;
  }
  // Identical tile walk, identical arithmetic: the factors agree bitwise.
  EXPECT_EQ(out_of_core.packed_factor(), in_memory.packed_factor());

  const TileStoreStats matrix_stats = spilled.tile_stats();
  const TileStoreStats factor_stats = out_of_core.tile_stats();
  const std::size_t total = spilled.layout().total_bytes();
  EXPECT_GT(factor_stats.evictions, 0u);
  EXPECT_GT(factor_stats.spill_reads, 0u);
  EXPECT_LE(2 * matrix_stats.peak_resident_bytes, total);
  EXPECT_LE(2 * factor_stats.peak_resident_bytes, total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpillCholesky, ::testing::Values(97, 150, 200));

TEST(SpillCholesky2, ParallelFactorMatchesSerialBitwiseOnTheSpillBackend) {
  const std::size_t n = 130;
  const SymMatrix a = random_spd(n, 77);
  const SymMatrix spilled = spill_copy(a, 16, 0.5);
  const Cholesky serial(spilled, {.block = 16});
  for (std::size_t threads : {2u, 4u}) {
    par::ThreadPool pool(threads);
    const Cholesky parallel(spilled, {.block = 16, .pool = &pool});
    EXPECT_EQ(parallel.packed_factor(), serial.packed_factor()) << threads << " threads";
  }
}

TEST(SpillCholesky2, SolveManyMatchesSolveColumnsOnTheSpillBackend) {
  const std::size_t n = 80;
  const std::size_t k = 9;
  const SymMatrix spilled = spill_copy(random_spd(n, 55), 16, 0.5);
  const Cholesky factor(spilled, {.block = 16});
  std::vector<double> block(n * k);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (double& v : block) v = dist(rng);
  const std::vector<double> many = factor.solve_many(block, k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = block[i * k + c];
    const std::vector<double> x = factor.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(many[i * k + c], x[i]) << c << " " << i;
  }
}

TEST(SpillCholesky2, ExplicitStorageOverrideSpillsAnInMemoryMatrix) {
  const std::size_t n = 120;
  const SymMatrix a = random_spd(n, 13);
  const Cholesky reference(a, {.block = 16});
  StorageConfig storage;
  storage.tile_size = 999;  // ignored: the factor's tile size is `block`
  storage.residency_budget_bytes =
      TileLayout(n, 16).total_bytes() / 3;
  const Cholesky spilling(a, {.block = 16, .storage = storage});
  EXPECT_EQ(spilling.packed_factor(), reference.packed_factor());
  EXPECT_GT(spilling.tile_stats().evictions, 0u);
}

}  // namespace
}  // namespace ebem::la

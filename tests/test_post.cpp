// Post-processing: surface potentials, profiles, grids, contours.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/error.hpp"
#include "src/bem/analysis.hpp"
#include "src/common/math_utils.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/post/contour.hpp"
#include "src/post/surface_potential.hpp"

namespace ebem::post {
namespace {

struct Solved {
  bem::BemModel model;
  bem::AnalysisResult result;
};

Solved solve_square_grid(const soil::LayeredSoil& soil, double gpr = 1.0,
                         double element_length = 0.0) {
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  spec.depth = 0.8;
  geom::MeshOptions mesh_options;
  mesh_options.target_element_length = element_length;
  bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec), mesh_options), soil);
  bem::AnalysisOptions options;
  options.gpr = gpr;
  bem::AnalysisResult result = bem::analyze(model, options);
  return {std::move(model), std::move(result)};
}

TEST(PotentialEvaluator, SurfacePotentialAboveGridNearGpr) {
  // Right above a dense shallow grid the surface potential approaches the
  // GPR (it can never exceed it).
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02), 10e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const double v = evaluator.at({10.0, 10.0, 0.0});
  EXPECT_LT(v, 10e3);
  EXPECT_GT(v, 0.6 * 10e3);
}

TEST(PotentialEvaluator, PotentialOnElectrodeSurfaceMatchesGpr) {
  // The boundary condition V = GPR on the electrode surface is what the
  // Galerkin system enforces (weakly): with a refined mesh, the potential a
  // wire radius away from a bar axis sits within a few percent of the GPR.
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02), 1.0, 1.25);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  // Point just beside the middle of the (10, y) bar at burial depth.
  const double v = evaluator.at({10.0 + 0.006, 10.0, -0.8});
  // Weak (Galerkin) enforcement plus the thin-wire regularization leave a
  // few-percent pointwise residual at this mesh density.
  EXPECT_NEAR(v, 1.0, 0.08);
}

TEST(PotentialEvaluator, FarFieldMatchesPointSourceMonopole) {
  // Far away the whole grid is a monopole: V ~ I / (2 pi gamma r).
  const double gamma = 0.02;
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(gamma), 1.0);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const double r = 500.0;
  const double v = evaluator.at({10.0 + r, 10.0, 0.0});
  const double expected = solved.result.total_current / (2.0 * kPi * gamma * r);
  EXPECT_NEAR(v, expected, 0.05 * expected);
}

TEST(PotentialEvaluator, DecaysMonotonicallyOutsideGrid) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  double previous = evaluator.at({21.0, 10.0, 0.0});
  for (double x : {25.0, 30.0, 40.0, 60.0, 100.0}) {
    const double v = evaluator.at({x, 10.0, 0.0});
    EXPECT_LT(v, previous) << x;
    previous = v;
  }
}

TEST(PotentialEvaluator, BatchMatchesPointwise) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const std::vector<geom::Vec3> points{{0, 0, 0}, {5, 5, 0}, {30, -10, 0}, {10, 10, -0.4}};
  const std::vector<double> batch = evaluator.at(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], evaluator.at(points[i]));
  }
}

TEST(PotentialEvaluator, ParallelEvaluationMatchesSequential) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  PotentialOptions parallel_options;
  parallel_options.num_threads = 4;
  const PotentialEvaluator sequential(solved.model, solved.result.sigma);
  const PotentialEvaluator parallel(solved.model, solved.result.sigma, parallel_options);
  std::vector<geom::Vec3> points;
  for (int i = 0; i < 40; ++i) points.push_back({0.7 * i, 0.3 * i, 0.0});
  const auto a = sequential.at(points);
  const auto b = parallel.at(points);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(PotentialEvaluator, SurfaceGridLayoutAndSymmetry) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const auto grid = evaluator.surface_grid(-5.0, 25.0, -5.0, 25.0, 13, 13);
  EXPECT_EQ(grid.values.size(), 13u * 13u);
  EXPECT_DOUBLE_EQ(grid.dx, 30.0 / 12.0);
  // The square grid is symmetric under x <-> y (up to quadrature-level
  // differences between x- and y-oriented elements).
  for (std::size_t j = 0; j < 13; ++j) {
    for (std::size_t i = 0; i < 13; ++i) {
      EXPECT_NEAR(grid.at(i, j), grid.at(j, i), 1e-5 * std::abs(grid.at(i, j)));
    }
  }
  // Peak near the grid center sample.
  const auto max_it = std::max_element(grid.values.begin(), grid.values.end());
  const std::size_t idx = static_cast<std::size_t>(max_it - grid.values.begin());
  const std::size_t ci = idx % 13;
  const std::size_t cj = idx / 13;
  EXPECT_NEAR(static_cast<double>(ci), 6.0, 1.01);
  EXPECT_NEAR(static_cast<double>(cj), 6.0, 1.01);
}

TEST(PotentialEvaluator, ProfileEndpointsMatchPointEvaluation) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const geom::Vec3 a{-10, 10, 0};
  const geom::Vec3 b{30, 10, 0};
  const auto profile = evaluator.profile(a, b, 9);
  ASSERT_EQ(profile.size(), 9u);
  EXPECT_DOUBLE_EQ(profile.front(), evaluator.at(a));
  EXPECT_DOUBLE_EQ(profile.back(), evaluator.at(b));
}

TEST(PotentialEvaluator, TwoLayerSurfacePotentialsDifferFromUniform) {
  // Fig. 5.2's message: layer structure visibly changes surface potentials.
  const Solved uniform = solve_square_grid(soil::LayeredSoil::uniform(0.016), 1.0);
  const Solved layered =
      solve_square_grid(soil::LayeredSoil::two_layer(0.005, 0.016, 1.0), 1.0);
  const PotentialEvaluator eu(uniform.model, uniform.result.sigma);
  const PotentialEvaluator el(layered.model, layered.result.sigma);
  const double vu = eu.at({10, 10, 0});
  const double vl = el.at({10, 10, 0});
  EXPECT_GT(std::abs(vu - vl) / vu, 0.02);
}

TEST(PotentialEvaluator, SigmaSizeValidated) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  std::vector<double> wrong(solved.result.sigma);
  wrong.pop_back();
  EXPECT_THROW(PotentialEvaluator(solved.model, wrong), ebem::InvalidArgument);
}

TEST(Contour, CsvHasHeaderAndAllRows) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02));
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const auto grid = evaluator.surface_grid(0.0, 20.0, 0.0, 20.0, 5, 4);
  std::ostringstream os;
  write_contour_csv(os, grid);
  const std::string text = os.str();
  EXPECT_EQ(text.find("x,y,potential"), 0u);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1 + 5 * 4);
}

TEST(Contour, AsciiShowsHighBandOverGrid) {
  const Solved solved = solve_square_grid(soil::LayeredSoil::uniform(0.02), 10e3);
  const PotentialEvaluator evaluator(solved.model, solved.result.sigma);
  const auto grid = evaluator.surface_grid(-20.0, 40.0, -20.0, 40.0, 31, 31);
  const std::string art = ascii_contour(grid);
  EXPECT_NE(art.find('@'), std::string::npos);   // hot spot over the grid
  EXPECT_NE(art.find("bands:"), std::string::npos);
  // 31 rows plus the legend line.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 32);
}

}  // namespace
}  // namespace ebem::post

// Analytic inner segment integrals vs high-order numeric quadrature.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bem/segment_integrals.hpp"
#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::bem {
namespace {

using geom::Vec3;

struct Geometry {
  Vec3 p;
  Vec3 a;
  Vec3 b;
  double radius;
  const char* name;
};

class SegmentGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(SegmentGeometry, MatchesNumericQuadrature) {
  const Geometry& g = GetParam();
  const double length = geom::distance(g.a, g.b);
  const auto r = [&](double t) {
    const Vec3 xi = g.a + (t / length) * (g.b - g.a);
    return std::sqrt(square(geom::distance(g.p, xi)) + square(g.radius));
  };
  // Composite high-order quadrature as the reference (the integrand is
  // smooth after regularization but can be sharply peaked).
  double i0 = 0.0;
  double i1 = 0.0;
  const std::size_t panels = 200;
  for (std::size_t k = 0; k < panels; ++k) {
    const double t0 = length * static_cast<double>(k) / panels;
    const double t1 = length * static_cast<double>(k + 1) / panels;
    i0 += quad::integrate([&](double t) { return 1.0 / r(t); }, t0, t1, 12);
    i1 += quad::integrate([&](double t) { return t / r(t); }, t0, t1, 12);
  }
  const SegmentPotentials s = segment_potentials(g.p, g.a, g.b, g.radius);
  EXPECT_NEAR(s.i0, i0, 1e-10 * std::abs(i0)) << g.name;
  EXPECT_NEAR(s.i1, i1, 1e-10 * std::abs(i1)) << g.name;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SegmentGeometry,
    ::testing::Values(
        Geometry{{0, 1, 0}, {-1, 0, 0}, {1, 0, 0}, 0.0, "broadside"},
        Geometry{{2, 0, 0}, {-1, 0, 0}, {1, 0, 0}, 0.01, "collinear_off_end"},
        Geometry{{0.5, 0, 0}, {0, 0, 0}, {1, 0, 0}, 0.006, "on_axis_regularized"},
        Geometry{{0, 0, 0}, {0, 0, 0}, {1, 0, 0}, 0.01, "at_start_regularized"},
        Geometry{{3, 4, 5}, {0, 0, -1}, {0, 0, -3}, 0.007, "vertical_rod_far"},
        Geometry{{0.1, 0.05, -0.8}, {0, 0, -0.8}, {5, 0, -0.8}, 0.006, "near_buried_bar"},
        Geometry{{-2, 7, 1}, {1, 1, 1}, {2, 3, 5}, 0.0, "skew_far"}),
    [](const auto& info) { return info.param.name; });

TEST(SegmentPotentials, SelfIntegralLogarithmicForm) {
  // Field point at the segment midpoint on the axis, radius a << L:
  // I0 = 2 asinh(L / (2a)) ~ 2 ln(L/a).
  const double length = 2.0;
  const double a = 1e-3;
  const SegmentPotentials s =
      segment_potentials({1, 0, 0}, {0, 0, 0}, {2, 0, 0}, a);
  EXPECT_NEAR(s.i0, 2.0 * std::asinh(length / (2.0 * a)), 1e-12);
  // Midpoint symmetry: I1 = (L/2) I0.
  EXPECT_NEAR(s.i1, 0.5 * length * s.i0, 1e-10);
}

TEST(SegmentPotentials, SymmetryUnderSegmentReversal) {
  // Reversing the segment swaps the roles of the endpoints:
  // I0 invariant, I1 -> L*I0 - I1.
  const Vec3 p{0.3, 1.2, -0.4};
  const Vec3 a{0, 0, 0};
  const Vec3 b{2, 0.5, -1};
  const double length = geom::distance(a, b);
  const SegmentPotentials fwd = segment_potentials(p, a, b, 0.01);
  const SegmentPotentials rev = segment_potentials(p, b, a, 0.01);
  EXPECT_NEAR(fwd.i0, rev.i0, 1e-12 * std::abs(fwd.i0));
  EXPECT_NEAR(rev.i1, length * fwd.i0 - fwd.i1, 1e-10);
}

TEST(SegmentPotentials, ShapeIntegralsPartitionI0) {
  // N_start + N_end = 1, so the two shape integrals must sum to I0.
  const SegmentPotentials s =
      segment_potentials({1, 2, 0}, {0, 0, 0}, {3, 0, 0}, 0.01);
  EXPECT_NEAR(shape_start_integral(s, 3.0) + shape_end_integral(s, 3.0), s.i0, 1e-12);
}

TEST(SegmentPotentials, FarFieldApproachesLengthOverDistance) {
  // From far away the segment acts as a point: I0 ~ L / r.
  const Vec3 p{100, 0, 0};
  const SegmentPotentials s = segment_potentials(p, {0, -0.5, 0}, {0, 0.5, 0}, 0.0);
  EXPECT_NEAR(s.i0, 1.0 / 100.0, 1e-5);
}

TEST(SegmentPotentials, DegenerateSegmentRejected) {
  EXPECT_THROW(segment_potentials({1, 0, 0}, {0, 0, 0}, {0, 0, 0}, 0.01),
               ebem::InvalidArgument);
}

TEST(SegmentPotentials, UnregularizedOnAxisRejected) {
  EXPECT_THROW(segment_potentials({0.5, 0, 0}, {0, 0, 0}, {1, 0, 0}, 0.0),
               ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::bem

// Mesh building: subdivision, node deduplication, connectivity.
#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"

namespace ebem::geom {
namespace {

TEST(Mesh, SingleConductorSingleElement) {
  const std::vector<Conductor> wire{{{0, 0, -1}, {5, 0, -1}, 0.01}};
  const Mesh mesh = Mesh::build(wire);
  EXPECT_EQ(mesh.element_count(), 1u);
  EXPECT_EQ(mesh.node_count(), 2u);
  EXPECT_DOUBLE_EQ(mesh.total_length(), 5.0);
}

TEST(Mesh, SubdivisionPreservesLengthAndChainsNodes) {
  const std::vector<Conductor> wire{{{0, 0, -1}, {10, 0, -1}, 0.01}};
  MeshOptions options;
  options.target_element_length = 3.0;  // ceil(10/3) = 4 pieces
  const Mesh mesh = Mesh::build(wire, options);
  EXPECT_EQ(mesh.element_count(), 4u);
  EXPECT_EQ(mesh.node_count(), 5u);
  EXPECT_NEAR(mesh.total_length(), 10.0, 1e-12);
  // Consecutive elements share a node.
  for (std::size_t k = 0; k + 1 < mesh.element_count(); ++k) {
    EXPECT_EQ(mesh.elements()[k].node_b, mesh.elements()[k + 1].node_a);
  }
}

TEST(Mesh, SharedEndpointsMergeIntoOneNode) {
  // Two wires meeting at the origin corner.
  const std::vector<Conductor> corner{{{0, 0, -1}, {5, 0, -1}, 0.01},
                                      {{0, 0, -1}, {0, 5, -1}, 0.01}};
  const Mesh mesh = Mesh::build(corner);
  EXPECT_EQ(mesh.element_count(), 2u);
  EXPECT_EQ(mesh.node_count(), 3u);
  EXPECT_EQ(mesh.elements()[0].node_a, mesh.elements()[1].node_a);
}

TEST(Mesh, NearbyEndpointsMergeWithinTolerance) {
  const std::vector<Conductor> wires{{{0, 0, -1}, {5, 0, -1}, 0.01},
                                     {{5.0000001, 0, -1}, {10, 0, -1}, 0.01}};
  MeshOptions options;
  options.node_merge_tolerance = 1e-5;
  const Mesh mesh = Mesh::build(wires, options);
  EXPECT_EQ(mesh.node_count(), 3u);
}

TEST(Mesh, DistinctEndpointsStayDistinct) {
  const std::vector<Conductor> wires{{{0, 0, -1}, {5, 0, -1}, 0.01},
                                     {{5.1, 0, -1}, {10, 0, -1}, 0.01}};
  const Mesh mesh = Mesh::build(wires);
  EXPECT_EQ(mesh.node_count(), 4u);
}

TEST(Mesh, RectGridNodeCountMatchesFormula) {
  RectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 30.0;
  spec.cells_x = 4;
  spec.cells_y = 3;
  const Mesh mesh = Mesh::build(make_rect_grid(spec));
  // One element per conductor piece: nodes are the (nx+1)(ny+1) crossings.
  EXPECT_EQ(mesh.node_count(), 5u * 4u);
  EXPECT_EQ(mesh.element_count(), (3u + 1) * 4u + (4u + 1) * 3u);
}

TEST(Mesh, BarberaSizedGridMatchesPaperDiscretization) {
  // Paper §5.1: 408 segments, 238 degrees of freedom. Our parametric
  // triangle at the default refinement lands within a few elements/nodes.
  TriangularGridSpec spec;
  spec.leg_x = 89.0;
  spec.leg_y = 143.0;
  spec.cells_x = 15;
  spec.cells_y = 24;
  const Mesh mesh = Mesh::build(make_triangular_grid(spec));
  EXPECT_NEAR(static_cast<double>(mesh.element_count()), 408.0, 30.0);
  EXPECT_NEAR(static_cast<double>(mesh.node_count()), 238.0, 25.0);
}

TEST(Mesh, ZeroLengthConductorRejected) {
  const std::vector<Conductor> bad{{{1, 1, -1}, {1, 1, -1}, 0.01}};
  EXPECT_THROW(Mesh::build(bad), ebem::InvalidArgument);
}

TEST(Mesh, EmptyInputRejected) {
  EXPECT_THROW(Mesh::build({}), ebem::InvalidArgument);
}

TEST(Mesh, MinMaxZReportBuriedRange) {
  std::vector<Conductor> grid{{{0, 0, -0.8}, {5, 0, -0.8}, 0.01}};
  RodSpec rod;
  add_rods(grid, {{0, 0, 0}}, 0.8, rod);
  const Mesh mesh = Mesh::build(grid);
  EXPECT_DOUBLE_EQ(mesh.max_z(), -0.8);
  EXPECT_DOUBLE_EQ(mesh.min_z(), -2.3);
}

TEST(Mesh, NodeIndicesAreDense) {
  RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const Mesh mesh = Mesh::build(make_rect_grid(spec));
  std::set<std::size_t> seen;
  for (const MeshElement& e : mesh.elements()) {
    seen.insert(e.node_a);
    seen.insert(e.node_b);
  }
  EXPECT_EQ(seen.size(), mesh.node_count());
  EXPECT_EQ(*seen.rbegin(), mesh.node_count() - 1);
}

}  // namespace
}  // namespace ebem::geom

// Level-1 vector kernel tests.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/la/blas1.hpp"

namespace ebem::la {
namespace {

TEST(Blas1, DotBasic) {
  const Vector x{1.0, 2.0, 3.0};
  const Vector y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Blas1, DotEmptyIsZero) {
  const Vector x, y;
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(Blas1, AxpyAccumulates) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Blas1, ScalScales) {
  Vector x{1.0, -2.0, 4.0};
  scal(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(Blas1, Nrm2KnownValue) {
  const Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(Blas1, AmaxPicksLargestMagnitude) {
  const Vector x{1.0, -7.5, 3.0};
  EXPECT_DOUBLE_EQ(amax(x), 7.5);
  EXPECT_DOUBLE_EQ(amax(Vector{}), 0.0);
}

TEST(Blas1, CauchySchwarzProperty) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x(50), y(50);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = dist(rng);
      y[i] = dist(rng);
    }
    EXPECT_LE(std::abs(dot(x, y)), nrm2(x) * nrm2(y) * (1.0 + 1e-12));
  }
}

TEST(Blas1, AxpyThenDotLinearity) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Vector x(32), y(32), z(32);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dist(rng);
    y[i] = dist(rng);
    z[i] = dist(rng);
  }
  // dot(z, y + a x) == dot(z, y) + a dot(z, x)
  const double a = 1.7;
  const double lhs_base = dot(z, y);
  const double d_zx = dot(z, x);
  Vector y2 = y;
  axpy(a, x, y2);
  EXPECT_NEAR(dot(z, y2), lhs_base + a * d_zx, 1e-12 * (std::abs(lhs_base) + 1.0));
}

}  // namespace
}  // namespace ebem::la

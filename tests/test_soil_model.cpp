// Layered soil model bookkeeping.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::soil {
namespace {

TEST(LayeredSoil, UniformBasics) {
  const LayeredSoil soil = LayeredSoil::uniform(0.016);
  EXPECT_EQ(soil.layer_count(), 1u);
  EXPECT_TRUE(soil.is_uniform());
  EXPECT_DOUBLE_EQ(soil.conductivity(0), 0.016);
  EXPECT_DOUBLE_EQ(soil.resistivity(0), 62.5);
  EXPECT_EQ(soil.layer_of(-100.0), 0u);
  EXPECT_EQ(soil.layer_of(0.0), 0u);
}

TEST(LayeredSoil, TwoLayerLayerOf) {
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  EXPECT_EQ(soil.layer_count(), 2u);
  EXPECT_FALSE(soil.is_uniform());
  EXPECT_EQ(soil.layer_of(-0.5), 0u);
  EXPECT_EQ(soil.layer_of(-1.0), 0u);  // interface belongs to the upper layer
  EXPECT_EQ(soil.layer_of(-1.0001), 1u);
  EXPECT_EQ(soil.layer_of(-50.0), 1u);
  EXPECT_DOUBLE_EQ(soil.interface_depth(0), 1.0);
}

TEST(LayeredSoil, ReflectionCoefficientSignAndRange) {
  // gamma_1 < gamma_2 (resistive over conductive): kappa < 0.
  const LayeredSoil barbera = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  EXPECT_NEAR(barbera.reflection_coefficient(), (0.005 - 0.016) / (0.005 + 0.016), 1e-15);
  EXPECT_LT(barbera.reflection_coefficient(), 0.0);
  // Conductive over resistive: kappa > 0.
  const LayeredSoil inverse = LayeredSoil::two_layer(0.016, 0.005, 1.0);
  EXPECT_GT(inverse.reflection_coefficient(), 0.0);
  // Equal layers: kappa = 0.
  const LayeredSoil equal = LayeredSoil::two_layer(0.01, 0.01, 1.0);
  EXPECT_DOUBLE_EQ(equal.reflection_coefficient(), 0.0);
  // |kappa| < 1 always.
  EXPECT_LT(std::abs(barbera.reflection_coefficient()), 1.0);
}

TEST(LayeredSoil, ThreeLayerStack) {
  const LayeredSoil soil({Layer{0.01, 1.0}, Layer{0.005, 2.0}, Layer{0.02, 0.0}});
  EXPECT_EQ(soil.layer_count(), 3u);
  EXPECT_DOUBLE_EQ(soil.interface_depth(0), 1.0);
  EXPECT_DOUBLE_EQ(soil.interface_depth(1), 3.0);
  EXPECT_EQ(soil.layer_of(-0.5), 0u);
  EXPECT_EQ(soil.layer_of(-2.0), 1u);
  EXPECT_EQ(soil.layer_of(-3.5), 2u);
}

TEST(LayeredSoil, Validation) {
  EXPECT_THROW(LayeredSoil({}), ebem::InvalidArgument);
  EXPECT_THROW(LayeredSoil::uniform(0.0), ebem::InvalidArgument);
  EXPECT_THROW(LayeredSoil::uniform(-1.0), ebem::InvalidArgument);
  EXPECT_THROW(LayeredSoil::two_layer(0.01, 0.02, 0.0), ebem::InvalidArgument);
  EXPECT_THROW(LayeredSoil({Layer{0.01, 0.0}, Layer{0.02, 0.0}}), ebem::InvalidArgument);
}

TEST(LayeredSoil, LayerOfRejectsAirPoints) {
  const LayeredSoil soil = LayeredSoil::uniform(0.01);
  EXPECT_THROW(soil.layer_of(1.0), ebem::InvalidArgument);
}

TEST(LayeredSoil, ReflectionCoefficientRequiresTwoLayers) {
  EXPECT_THROW(LayeredSoil::uniform(0.01).reflection_coefficient(), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::soil

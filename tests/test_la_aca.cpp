// Adaptive Cross Approximation on synthetic implicit matrices: exact
// low-rank recovery, tolerance-bound approximation of smooth kernels, rank
// budget reporting and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "src/common/error.hpp"
#include "src/la/aca.hpp"

namespace ebem::la {
namespace {

/// Dense row-major matrix with samplers — the tests' implicit-matrix stand-in.
struct DenseProbe {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> a;  // rows x cols
  std::size_t row_samples = 0;
  std::size_t col_samples = 0;

  [[nodiscard]] AcaSampler row_sampler() {
    return [this](std::size_t i, double* out) {
      ++row_samples;
      for (std::size_t j = 0; j < cols; ++j) out[j] = a[i * cols + j];
    };
  }
  [[nodiscard]] AcaSampler col_sampler() {
    return [this](std::size_t j, double* out) {
      ++col_samples;
      for (std::size_t i = 0; i < rows; ++i) out[i] = a[i * cols + j];
    };
  }
};

double frobenius(const std::vector<double>& a) {
  double sum = 0.0;
  for (double x : a) sum += x * x;
  return std::sqrt(sum);
}

/// || A - U V^T ||_F of the result against the probe.
double reconstruction_error(const DenseProbe& probe, const AcaResult& result) {
  double sum = 0.0;
  for (std::size_t i = 0; i < probe.rows; ++i) {
    for (std::size_t j = 0; j < probe.cols; ++j) {
      double approx = 0.0;
      for (std::size_t k = 0; k < result.rank; ++k) {
        approx += result.u[i * result.rank + k] * result.v[j * result.rank + k];
      }
      sum += (probe.a[i * probe.cols + j] - approx) * (probe.a[i * probe.cols + j] - approx);
    }
  }
  return std::sqrt(sum);
}

/// Deterministic pseudo-random value in [-1, 1] (no global RNG state).
double hash_unit(std::size_t i, std::size_t j) {
  std::size_t h = i * 2654435761u + j * 40503u + 97u;
  h ^= h >> 13;
  h *= 1099511628211ull;
  h ^= h >> 7;
  return static_cast<double>(h % 20001u) / 10000.0 - 1.0;
}

DenseProbe exact_low_rank(std::size_t rows, std::size_t cols, std::size_t rank) {
  DenseProbe probe{rows, cols, std::vector<double>(rows * cols, 0.0)};
  for (std::size_t k = 0; k < rank; ++k) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        probe.a[i * cols + j] += hash_unit(i, k) * hash_unit(j, k + 100);
      }
    }
  }
  return probe;
}

TEST(Aca, RecoversExactLowRankMatrix) {
  DenseProbe probe = exact_low_rank(40, 30, 3);
  const AcaResult result =
      adaptive_cross(40, 30, probe.row_sampler(), probe.col_sampler(), {1e-12, 20});
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.rank, 3u);
  EXPECT_LE(result.rank, 5u);  // a guard term or two beyond the true rank is fine
  EXPECT_LE(reconstruction_error(probe, result), 1e-10 * frobenius(probe.a));
  EXPECT_EQ(result.u.size(), 40u * result.rank);
  EXPECT_EQ(result.v.size(), 30u * result.rank);
}

TEST(Aca, MeetsToleranceOnSmoothKernel) {
  // Asymptotically smooth displaced-1/r kernel — the structure of an
  // admissible BEM block. Singular values decay exponentially, so ACA should
  // stop at a small rank while honoring the tolerance.
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kCols = 48;
  DenseProbe probe{kRows, kCols, std::vector<double>(kRows * kCols)};
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kCols; ++j) {
      const double x = static_cast<double>(i) / kRows;
      const double y = static_cast<double>(j) / kCols;
      probe.a[i * kCols + j] = 1.0 / (3.0 + x - y);
    }
  }
  constexpr double kEpsilon = 1e-9;
  const AcaResult result =
      adaptive_cross(kRows, kCols, probe.row_sampler(), probe.col_sampler(), {kEpsilon, 48});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rank, 16u);  // far below min(m, n)
  // The stopping rule bounds the *estimated* error; allow a safety factor.
  EXPECT_LE(reconstruction_error(probe, result), 50.0 * kEpsilon * frobenius(probe.a));
  // Sampling cost is O(rank) rows + columns, not O(m n).
  EXPECT_LE(probe.row_samples, result.rank + 2);
  EXPECT_LE(probe.col_samples, result.rank + 2);
}

TEST(Aca, ReportsRankBudgetExhaustion) {
  // Full-rank random matrix with a tight budget: must report !converged so
  // the far-field builder splits the block instead of trusting the factors.
  DenseProbe probe{20, 20, std::vector<double>(400)};
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) probe.a[i * 20 + j] = hash_unit(i, j);
  }
  const AcaResult result =
      adaptive_cross(20, 20, probe.row_sampler(), probe.col_sampler(), {1e-14, 4});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rank, 4u);
}

TEST(Aca, FullRankBudgetAlwaysConverges) {
  // With the budget at min(m, n) the cross approximation can reproduce any
  // block exactly, so the budget alone must never report failure.
  DenseProbe probe{12, 8, std::vector<double>(96)};
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 8; ++j) probe.a[i * 8 + j] = hash_unit(i + 7, j);
  }
  const AcaResult result =
      adaptive_cross(12, 8, probe.row_sampler(), probe.col_sampler(), {1e-14, 8});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(reconstruction_error(probe, result), 1e-10 * frobenius(probe.a));
}

TEST(Aca, ZeroMatrixYieldsRankZero) {
  DenseProbe probe{10, 10, std::vector<double>(100, 0.0)};
  const AcaResult result =
      adaptive_cross(10, 10, probe.row_sampler(), probe.col_sampler(), {1e-8, 10});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rank, 0u);
}

TEST(Aca, SkipsZeroResidualRows) {
  // Rank-1 matrix whose first rows are zero: the pivot search must step past
  // rows the residual annihilates instead of dividing by zero.
  DenseProbe probe{10, 6, std::vector<double>(60, 0.0)};
  for (std::size_t i = 5; i < 10; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      probe.a[i * 6 + j] = static_cast<double>(i) * (1.0 + static_cast<double>(j));
    }
  }
  const AcaResult result =
      adaptive_cross(10, 6, probe.row_sampler(), probe.col_sampler(), {1e-12, 6});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(reconstruction_error(probe, result), 1e-10 * frobenius(probe.a));
}

TEST(Aca, RejectsInvalidArguments) {
  DenseProbe probe = exact_low_rank(4, 4, 1);
  const AcaSampler row = probe.row_sampler();
  const AcaSampler col = probe.col_sampler();
  EXPECT_THROW((void)adaptive_cross(0, 4, row, col, {1e-8, 4}), ebem::InvalidArgument);
  EXPECT_THROW((void)adaptive_cross(4, 0, row, col, {1e-8, 4}), ebem::InvalidArgument);
  EXPECT_THROW((void)adaptive_cross(4, 4, row, col, {0.0, 4}), ebem::InvalidArgument);
  EXPECT_THROW((void)adaptive_cross(4, 4, row, col, {1e-8, 0}), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::la

// Far-field partition and ACA builder: cluster/partition invariants, the
// separation-gate-vs-kernel-decay property tests (uniform AND graded grids),
// and end-to-end compressed-vs-dense assembly/solve parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/far_field.hpp"
#include "src/bem/pair_signature.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/compressed_tile_store.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::bem {
namespace {

BemModel uniform_grid_model(std::size_t cells, double side) {
  geom::RectGridSpec spec;
  spec.length_x = side;
  spec.length_y = side;
  spec.cells_x = cells;
  spec.cells_y = cells;
  return BemModel(geom::Mesh::build(geom::make_rect_grid(spec)),
                  soil::LayeredSoil::uniform(0.016));
}

BemModel graded_grid_model(std::size_t cells, double side, double grading) {
  geom::GradedRectGridSpec spec;
  spec.length_x = side;
  spec.length_y = side;
  spec.cells_x = cells;
  spec.cells_y = cells;
  spec.grading = grading;
  return BemModel(geom::Mesh::build(geom::make_graded_rect_grid(spec)),
                  soil::LayeredSoil::uniform(0.016));
}

/// Elongated (trench-style) grid: tile-row clusters are compact boxes, so
/// the far field is genuinely low rank under the in-place DoF order — the
/// geometry the compressed backend is built for.
BemModel long_grid_model(std::size_t cells_x, std::size_t cells_y) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells_x);
  spec.length_y = 5.0 * static_cast<double>(cells_y);
  spec.cells_x = cells_x;
  spec.cells_y = cells_y;
  return BemModel(geom::Mesh::build(geom::make_rect_grid(spec)),
                  soil::LayeredSoil::uniform(0.016));
}

geom::Vec3 midpoint(const BemElement& e) { return 0.5 * (e.a + e.b); }

/// Relative transpose-reciprocity error of one ordered pair:
/// || R^{ef} - (R^{fe})^T ||_max / || R^{ef} ||_max.
double transpose_error(const Integrator& integrator, const BemElement& e, const BemElement& f,
                       std::size_t locals) {
  const LocalMatrix ef = integrator.element_pair(e, f);
  const LocalMatrix fe = integrator.element_pair(f, e);
  double err = 0.0;
  double scale = 0.0;
  for (std::size_t p = 0; p < locals; ++p) {
    for (std::size_t q = 0; q < locals; ++q) {
      err = std::max(err, std::abs(ef.value[p][q] - fe.value[q][p]));
      scale = std::max(scale, std::abs(ef.value[p][q]));
    }
  }
  return scale > 0.0 ? err / scale : 0.0;
}

TEST(FarField, BoxDistanceBasics) {
  const geom::Vec3 a_min{0.0, 0.0, 0.0};
  const geom::Vec3 a_max{1.0, 1.0, 1.0};
  // Overlap (even partial) is distance zero.
  EXPECT_EQ(box_distance(a_min, a_max, {0.5, 0.5, 0.5}, {2.0, 2.0, 2.0}), 0.0);
  EXPECT_EQ(box_distance(a_min, a_max, a_min, a_max), 0.0);
  // Pure axis gap.
  EXPECT_DOUBLE_EQ(box_distance(a_min, a_max, {3.0, 0.0, 0.0}, {4.0, 1.0, 1.0}), 2.0);
  // Diagonal gap combines per-axis gaps Euclidean-style.
  EXPECT_DOUBLE_EQ(box_distance(a_min, a_max, {4.0, 5.0, 1.0}, {5.0, 6.0, 2.0}), 5.0);
  // Symmetric in its arguments.
  EXPECT_DOUBLE_EQ(box_distance({3.0, 0.0, 0.0}, {4.0, 1.0, 1.0}, a_min, a_max), 2.0);
}

TEST(FarField, TileRowClustersCoverEveryElementSupport) {
  const BemModel model = uniform_grid_model(12, 40.0);
  const BasisKind basis = BasisKind::kLinear;
  const la::TileLayout layout(model.dof_count(basis), 16);
  const std::vector<TileRowCluster> clusters = build_tile_row_clusters(model, basis, layout);
  ASSERT_EQ(clusters.size(), layout.tile_rows());

  for (const TileRowCluster& cluster : clusters) {
    ASSERT_FALSE(cluster.elements.empty());
    EXPECT_TRUE(std::is_sorted(cluster.elements.begin(), cluster.elements.end()));
    EXPECT_EQ(std::adjacent_find(cluster.elements.begin(), cluster.elements.end()),
              cluster.elements.end());
    double longest = 0.0;
    for (const std::size_t e : cluster.elements) {
      const BemElement& element = model.elements()[e];
      longest = std::max(longest, element.length);
      for (const geom::Vec3 p : {element.a, element.b}) {
        EXPECT_LE(cluster.box_min.x, p.x);
        EXPECT_LE(cluster.box_min.y, p.y);
        EXPECT_LE(cluster.box_min.z, p.z);
        EXPECT_GE(cluster.box_max.x, p.x);
        EXPECT_GE(cluster.box_max.y, p.y);
        EXPECT_GE(cluster.box_max.z, p.z);
      }
    }
    EXPECT_DOUBLE_EQ(cluster.max_element_length, longest);
  }

  // Every element belongs to the cluster of every tile row its DoFs touch.
  const std::size_t locals = model.local_dof_count(basis);
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    for (std::size_t l = 0; l < locals; ++l) {
      const std::size_t row = layout.tile_of(model.global_dof(basis, e, l));
      const std::vector<std::size_t>& members = clusters[row].elements;
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), e))
          << "element " << e << " missing from cluster of tile row " << row;
    }
  }
}

TEST(FarField, PartitionBlocksAreMaximalValidAndDisjoint) {
  const BemModel model = uniform_grid_model(12, 40.0);
  const BasisKind basis = BasisKind::kLinear;
  const la::TileLayout layout(model.dof_count(basis), 16);
  la::CompressionConfig compression{.epsilon = 1e-8, .min_block = 16, .max_rank = 64};
  const FarFieldPartition partition = partition_far_field(model, basis, layout, compression);
  ASSERT_EQ(partition.clusters.size(), layout.tile_rows());
  // A 40 m grid with ~3.3 m elements has plenty of >= 10 m separations.
  ASSERT_FALSE(partition.candidates.empty());

  std::set<std::size_t> covered;
  for (const FarBlock& block : partition.candidates) {
    // Valid strictly-below-diagonal tile ranges.
    ASSERT_LT(block.row_tile_begin, block.row_tile_end);
    ASSERT_LT(block.col_tile_begin, block.col_tile_end);
    ASSERT_LE(block.row_tile_end, layout.tile_rows());
    ASSERT_LE(block.col_tile_end, block.row_tile_begin);
    // Both sides carry at least min_block DoFs.
    EXPECT_GE(layout.row_end(block.row_tile_end - 1) - layout.row_begin(block.row_tile_begin),
              compression.min_block);
    EXPECT_GE(layout.row_end(block.col_tile_end - 1) - layout.row_begin(block.col_tile_begin),
              compression.min_block);
    // Pairwise tile-disjoint.
    for (std::size_t ti = block.row_tile_begin; ti < block.row_tile_end; ++ti) {
      for (std::size_t tj = block.col_tile_begin; tj < block.col_tile_end; ++tj) {
        EXPECT_TRUE(covered.insert(layout.tile_index(ti, tj)).second)
            << "tile (" << ti << ", " << tj << ") covered twice";
      }
    }
    // The merged cluster ranges pass the admissibility gate.
    const auto merge = [&](std::size_t begin, std::size_t end) {
      TileRowCluster merged = partition.clusters[begin];
      for (std::size_t t = begin + 1; t < end; ++t) {
        const TileRowCluster& c = partition.clusters[t];
        merged.box_min = {std::min(merged.box_min.x, c.box_min.x),
                          std::min(merged.box_min.y, c.box_min.y),
                          std::min(merged.box_min.z, c.box_min.z)};
        merged.box_max = {std::max(merged.box_max.x, c.box_max.x),
                          std::max(merged.box_max.y, c.box_max.y),
                          std::max(merged.box_max.z, c.box_max.z)};
        merged.max_element_length = std::max(merged.max_element_length, c.max_element_length);
      }
      return merged;
    };
    const TileRowCluster rows = merge(block.row_tile_begin, block.row_tile_end);
    const TileRowCluster cols = merge(block.col_tile_begin, block.col_tile_end);
    EXPECT_TRUE(clusters_admissible(rows, cols));
    // Admissibility of the block implies the per-pair separation gate:
    // every crossing element pair sits beyond the transpose-replay ratio.
    for (std::size_t ti = block.row_tile_begin; ti < block.row_tile_end; ++ti) {
      for (const std::size_t e : partition.clusters[ti].elements) {
        for (std::size_t tj = block.col_tile_begin; tj < block.col_tile_end; ++tj) {
          for (const std::size_t f : partition.clusters[tj].elements) {
            const BemElement& re = model.elements()[e];
            const BemElement& ce = model.elements()[f];
            const double separation = geom::distance(midpoint(re), midpoint(ce));
            EXPECT_TRUE(transpose_separated(separation, std::max(re.length, ce.length)));
          }
        }
      }
    }
  }
}

/// The gate/decay property behind both the congruence cache's transposed
/// replays and H-matrix admissibility: wherever the quantized separation
/// predicate fires, the kernel's measured transpose-reciprocity error is at
/// machine-precision level; the large reciprocity violations all live on
/// pairs the gate rejects. Exhaustive over all ordered pairs of the model.
void check_gate_matches_decay(const BemModel& model) {
  const AssemblyOptions options;
  const soil::ImageKernel kernel(model.soil(), options.series);
  const Integrator integrator(kernel, options.integrator);
  const std::size_t locals = model.local_dof_count(options.integrator.basis);

  double max_separated = 0.0;
  double max_near = 0.0;
  std::size_t separated_pairs = 0;
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    for (std::size_t f = 0; f < e; ++f) {
      const BemElement& a = model.elements()[e];
      const BemElement& b = model.elements()[f];
      const double separation = geom::distance(midpoint(a), midpoint(b));
      const double error = transpose_error(integrator, a, b, locals);
      if (transpose_separated(separation, std::max(a.length, b.length))) {
        ++separated_pairs;
        max_separated = std::max(max_separated, error);
      } else {
        max_near = std::max(max_near, error);
      }
    }
  }
  ASSERT_GT(separated_pairs, 0u);
  // Beyond the gate, reciprocity holds to near machine precision...
  EXPECT_LE(max_separated, 1e-10);
  // ...while inside it the quadrature breaks reciprocity by orders of
  // magnitude more (adjacent pairs sit around 1e-4 relative).
  EXPECT_GT(max_near, 1e-6);
  EXPECT_GT(max_near, 1e3 * max_separated);
}

TEST(FarFieldProperty, SeparationGateMatchesKernelDecayOnUniformGrid) {
  check_gate_matches_decay(uniform_grid_model(6, 20.0));
}

TEST(FarFieldProperty, SeparationGateMatchesKernelDecayOnGradedGrid) {
  // Grading 3:1 shrinks perimeter elements, so the gate must keep working
  // with heterogeneous element lengths (the max of the pair governs).
  check_gate_matches_decay(graded_grid_model(6, 20.0, 3.0));
}

struct AssembledPair {
  AssemblyResult dense;
  AssemblyResult compressed;
};

AssembledPair assemble_both(const BemModel& model, const AssemblyExecution& compressed_execution) {
  const AssemblyOptions options;
  AssemblyExecution dense_execution = compressed_execution;
  dense_execution.storage.compression = {};
  return {assemble(model, options, dense_execution),
          assemble(model, options, compressed_execution)};
}

AssemblyExecution compressed_execution() {
  AssemblyExecution execution;
  execution.storage.tile_size = 32;
  // min_rank_budget lowered to match the small 32-DoF tiles (the default is
  // tuned for 64-DoF production tiles).
  execution.storage.compression = {
      .epsilon = 1e-8, .min_block = 32, .max_rank = 64, .min_rank_budget = 8};
  return execution;
}

TEST(FarField, CompressedAssemblyMatchesDenseWithinEpsilon) {
  const BemModel model = long_grid_model(4, 60);
  const AssembledPair pair = assemble_both(model, compressed_execution());
  const std::size_t n = pair.dense.matrix.size();
  ASSERT_EQ(pair.compressed.matrix.size(), n);

  // Entry parity within the blockwise epsilon contract (global scale).
  double diff2 = 0.0;
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double d = pair.dense.matrix.get(i, j);
      const double c = pair.compressed.matrix.get(i, j);
      diff2 += (d - c) * (d - c);
      norm2 += d * d;
    }
  }
  EXPECT_LE(std::sqrt(diff2), 1e-7 * std::sqrt(norm2));

  // The RHS integrates test functions only — compression must not touch it.
  ASSERT_EQ(pair.compressed.rhs.size(), pair.dense.rhs.size());
  for (std::size_t i = 0; i < pair.dense.rhs.size(); ++i) {
    EXPECT_DOUBLE_EQ(pair.compressed.rhs[i], pair.dense.rhs[i]);
  }

  // Compression actually happened and the accounting is coherent.
  const la::CompressionStats& stats = pair.compressed.compression;
  EXPECT_GE(stats.low_rank_blocks, 1u);
  EXPECT_GE(stats.low_rank_tiles, stats.low_rank_blocks);
  EXPECT_LT(stats.stored_bytes, stats.dense_bytes);
  EXPECT_GE(stats.rank_sum, stats.low_rank_blocks);
  const FarFieldStats& far = pair.compressed.far_field;
  EXPECT_GT(far.pairs_skipped, 0u);
  EXPECT_GT(far.pairs_sampled, 0u);
  EXPECT_EQ(far.pairs_near + far.pairs_skipped, pair.compressed.element_pairs);
  EXPECT_EQ(pair.compressed.element_pairs, pair.dense.element_pairs);
  // The dense run reports no compression.
  EXPECT_EQ(pair.dense.compression.low_rank_blocks, 0u);
  EXPECT_EQ(pair.dense.far_field.pairs_skipped, 0u);
}

TEST(FarField, ParallelFarFieldBuildIsDeterministic) {
  const BemModel model = long_grid_model(4, 60);
  const AssemblyOptions options;
  const AssemblyExecution serial = compressed_execution();
  AssemblyExecution parallel = serial;
  par::ThreadPool pool(4);
  parallel.pool = &pool;
  parallel.num_threads = 4;
  const AssemblyResult a = assemble(model, options, serial);
  const AssemblyResult b = assemble(model, options, parallel);
  // Factors are installed in candidate order regardless of worker count, so
  // the low-rank coverage is identical; the near-field scatter reorders
  // floating-point sums like plain parallel assembly does (same tolerance
  // as the dense parallel == sequential tests).
  ASSERT_EQ(a.matrix.size(), b.matrix.size());
  const std::vector<double> pa = a.matrix.packed();
  const std::vector<double> pb = b.matrix.packed();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12 * std::abs(pa[i]) + 1e-15) << "packed index " << i;
  }
  EXPECT_EQ(a.compression.low_rank_blocks, b.compression.low_rank_blocks);
  EXPECT_EQ(a.compression.rank_sum, b.compression.rank_sum);
  EXPECT_EQ(a.far_field.pairs_skipped, b.far_field.pairs_skipped);
}

TEST(FarField, CompressedAnalysisSolvesToDenseParity) {
  const BemModel model = long_grid_model(4, 60);
  const AnalysisOptions options;
  AnalysisExecution dense_execution;
  AnalysisExecution compressed = dense_execution;
  compressed.assembly = compressed_execution();

  const AnalysisResult reference = analyze(model, options, dense_execution);
  const AnalysisResult result = analyze(model, options, compressed);

  EXPECT_NEAR(result.equivalent_resistance, reference.equivalent_resistance,
              1e-7 * reference.equivalent_resistance);
  ASSERT_EQ(result.sigma.size(), reference.sigma.size());
  double sigma_scale = 0.0;
  for (const double s : reference.sigma) sigma_scale = std::max(sigma_scale, std::abs(s));
  for (std::size_t i = 0; i < reference.sigma.size(); ++i) {
    EXPECT_NEAR(result.sigma[i], reference.sigma[i], 1e-6 * sigma_scale);
  }
  // Compression counters ride through the analysis result.
  EXPECT_GE(result.compression.low_rank_blocks, 1u);
  EXPECT_GT(result.far_field.pairs_skipped, 0u);
  EXPECT_EQ(reference.compression.low_rank_blocks, 0u);
}

}  // namespace
}  // namespace ebem::bem

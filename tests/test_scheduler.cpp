// engine::Scheduler — asynchronous submit/future runs: future lifecycle and
// out-of-order consumption, parity of the pipelined path against the
// blocking and serial references at every thread count, warm-cache
// correctness under concurrent submits (shared hits; deferred
// physics-fingerprint clear), per-run override validation at submit time,
// error propagation and cancellation, and the thread-safety of the
// PhaseReport sink the concurrent runs merge into.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/scheduler.hpp"
#include "src/engine/study.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {
namespace {

/// Uniform bench-grid family: fixed 5 m cell size, growing extent — nearby
/// systems whose pair geometries heavily overlap (the design_search shape).
bem::BemModel bench_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

void expect_sigma_near(const std::vector<double>& actual, const std::vector<double>& expected,
                       const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12 * std::abs(expected[i]) + 1e-15)
        << label << " index " << i;
  }
}

// ---------------------------------------------------------------------------
// Future lifecycle
// ---------------------------------------------------------------------------

TEST(Scheduler, SubmitReturnsAFutureThatMatchesTheBlockingPath) {
  const bem::BemModel model = bench_model(3);
  Engine blocking;
  const bem::AnalysisResult reference = blocking.analyze(model);

  Engine engine;
  RunFuture future = engine.submit(model);
  EXPECT_TRUE(future.valid());
  future.wait();
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.status(), RunStatus::kDone);
  const bem::AnalysisResult& result = future.get();
  EXPECT_NEAR(result.equivalent_resistance, reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
  // get() does not consume: a second read sees the same object.
  EXPECT_EQ(&future.get(), &result);
  // The per-run report carries the same counters the session report got.
  EXPECT_GT(future.report().counter(bem::kCacheMissesCounter), 0.0);
  EXPECT_DOUBLE_EQ(future.report().counter(kFactorizationsCounter), 1.0);
  const std::size_t pairs = model.element_count() * (model.element_count() + 1) / 2;
  EXPECT_EQ(future.cache_delta().hits + future.cache_delta().misses, pairs);
}

TEST(Scheduler, EmptyFutureThrowsOnEveryAccessor) {
  RunFuture empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.ready(), ebem::InvalidArgument);
  EXPECT_THROW(empty.wait(), ebem::InvalidArgument);
  EXPECT_THROW((void)empty.get(), ebem::InvalidArgument);
  EXPECT_THROW((void)empty.wait_for(std::chrono::milliseconds(1)), ebem::InvalidArgument);
}

TEST(Scheduler, WaitForTimesOutOnAQueuedRunThenSeesItTerminal) {
  // Width 1 serializes runs: while the first (deliberately large) run
  // assembles, the second is stuck queued, so a short wait_for on it must
  // time out rather than block — the deadline-polling contract the service
  // dispatcher's harvest loop is built on.
  ExecutionConfig config;
  config.pipeline_width = 1;
  Engine engine(config);
  RunFuture slow = engine.submit(bench_model(14));
  RunFuture queued = engine.submit(bench_model(2));

  EXPECT_FALSE(queued.wait_for(std::chrono::milliseconds(1)));
  EXPECT_FALSE(queued.wait_for(std::chrono::nanoseconds::zero()));  // pure poll
  EXPECT_FALSE(queued.ready());

  EXPECT_TRUE(slow.wait_for(std::chrono::minutes(1)));
  EXPECT_TRUE(queued.wait_for(std::chrono::minutes(1)));
  EXPECT_EQ(queued.status(), RunStatus::kDone);
  // Terminal now: wait_for is a cheap true at any timeout, including zero.
  EXPECT_TRUE(queued.wait_for(std::chrono::nanoseconds::zero()));
  EXPECT_GT(queued.get().equivalent_resistance, 0.0);
}

TEST(Scheduler, WaitForWorksOnFactorFuturesToo) {
  Engine engine;
  FactorFuture future = engine.submit_factor(bench_model(3));
  EXPECT_TRUE(future.wait_for(std::chrono::minutes(1)));
  const FactoredSystem system = future.take();
  EXPECT_GT(system.size(), 0u);
}

TEST(Scheduler, SerialCacheOffPipelineIsBitwiseEqualToTheSerialShim) {
  // With one worker and no cache both paths run the identical sequential
  // arithmetic, so the pipeline must not perturb a single bit.
  const bem::BemModel model = bench_model(3);
  const bem::AnalysisResult reference = bem::analyze(model);

  ExecutionConfig config;
  config.use_congruence_cache = false;
  Engine engine(config);
  RunFuture future = engine.submit(model);
  const bem::AnalysisResult& result = future.get();
  ASSERT_EQ(result.sigma.size(), reference.sigma.size());
  for (std::size_t i = 0; i < result.sigma.size(); ++i) {
    EXPECT_EQ(result.sigma[i], reference.sigma[i]) << i;
  }
  EXPECT_EQ(result.equivalent_resistance, reference.equivalent_resistance);
}

// ---------------------------------------------------------------------------
// Pipelined batches: parity and out-of-order consumption
// ---------------------------------------------------------------------------

class SchedulerThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerThreads, PipelinedLadderMatchesBlockingLadder) {
  const std::size_t threads = GetParam();
  const std::vector<std::size_t> ladder = {3, 4, 5};

  // Blocking reference: same config, runs strictly in sequence.
  std::vector<bem::AnalysisResult> reference;
  {
    ExecutionConfig config;
    config.num_threads = threads;
    Engine engine(config);
    Study study(engine);
    for (const std::size_t cells : ladder) reference.push_back(study.analyze(bench_model(cells)));
  }

  ExecutionConfig config;
  config.num_threads = threads;
  Engine engine(config);
  Study study(engine);
  std::vector<RunFuture> futures;
  for (const std::size_t cells : ladder) futures.push_back(study.submit(bench_model(cells)));
  EXPECT_EQ(study.runs(), ladder.size());

  for (std::size_t k = 0; k < futures.size(); ++k) {
    const bem::AnalysisResult& result = futures[k].get();
    EXPECT_NEAR(result.equivalent_resistance, reference[k].equivalent_resistance,
                1e-12 * reference[k].equivalent_resistance)
        << "candidate " << k << " threads " << threads;
    expect_sigma_near(result.sigma, reference[k].sigma, "pipelined candidate");
  }
  // Session counters: one factorization per run, every pair looked up once
  // per run.
  EXPECT_DOUBLE_EQ(engine.report().counter(kFactorizationsCounter),
                   static_cast<double>(ladder.size()));
  double lookups = 0.0;
  for (const std::size_t cells : ladder) {
    const std::size_t m = bench_model(cells).element_count();
    lookups += static_cast<double>(m * (m + 1) / 2);
  }
  EXPECT_DOUBLE_EQ(engine.report().counter(bem::kCacheHitsCounter) +
                       engine.report().counter(bem::kCacheMissesCounter),
                   lookups);
}

TEST_P(SchedulerThreads, FuturesCanBeConsumedOutOfOrder) {
  const std::size_t threads = GetParam();
  ExecutionConfig config;
  config.num_threads = threads;
  Engine engine(config);

  std::vector<RunFuture> futures;
  for (const std::size_t cells : {3u, 4u, 5u}) futures.push_back(engine.submit(bench_model(cells)));
  // Last first: consuming out of submission order must neither deadlock nor
  // mix up payloads.
  for (std::size_t k = futures.size(); k-- > 0;) {
    const std::size_t cells = 3 + k;
    const bem::AnalysisResult& result = futures[k].get();
    const bem::BemModel model = bench_model(cells);
    EXPECT_EQ(result.sigma.size(), model.dof_count(bem::BasisKind::kLinear)) << cells;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SchedulerThreads, ::testing::Values(1, 2, 4),
                         [](const auto& info) { return "t" + std::to_string(info.param); });

TEST(Scheduler, SubmitFactorYieldsAWorkingFactoredSystem) {
  const bem::BemModel model = bench_model(3);
  Engine reference_engine;
  const FactoredSystem reference = reference_engine.factor(model);
  const std::vector<double> ref_x = reference.solve();

  Engine engine;
  FactorFuture future = engine.submit_factor(model);
  FactoredSystem system = future.take();
  expect_sigma_near(system.solve(), ref_x, "submitted factor");
  EXPECT_DOUBLE_EQ(engine.report().counter(kFactorizationsCounter), 1.0);
  EXPECT_DOUBLE_EQ(engine.report().counter(kRhsSolvedCounter), 1.0);
  const std::size_t pairs = model.element_count() * (model.element_count() + 1) / 2;
  EXPECT_EQ(future.cache_delta().hits + future.cache_delta().misses, pairs);
}

// ---------------------------------------------------------------------------
// Warm cache under pipelining
// ---------------------------------------------------------------------------

TEST(Scheduler, ConcurrentSubmitsWithTheSamePhysicsShareTheWarmCache) {
  const bem::BemModel model = bench_model(4);
  const bem::AnalysisResult reference = bem::analyze(model);
  const std::size_t pairs = model.element_count() * (model.element_count() + 1) / 2;

  Engine engine;  // pipeline_width 2: the two runs' assemblies may overlap
  RunFuture first = engine.submit(model);
  RunFuture second = engine.submit(model);
  const bem::AnalysisResult& r1 = first.get();
  const bem::AnalysisResult& r2 = second.get();
  EXPECT_NEAR(r1.equivalent_resistance, reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
  EXPECT_NEAR(r2.equivalent_resistance, reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);

  // Each run looked up every one of its pairs exactly once; together they
  // integrated at most the distinct classes twice (racing cold keys) and
  // certainly shared whatever was already warm.
  EXPECT_EQ(r1.cache_stats.hits + r1.cache_stats.misses, pairs);
  EXPECT_EQ(r2.cache_stats.hits + r2.cache_stats.misses, pairs);
  EXPECT_GT(r1.cache_stats.hits + r2.cache_stats.hits, 0u);

  // Deterministic regardless of interleaving: the cache now holds every
  // class, so a third run replays everything.
  RunFuture third = engine.submit(model);
  EXPECT_EQ(third.get().cache_stats.misses, 0u);
  EXPECT_EQ(third.cache_delta().hits, pairs);
}

TEST(Scheduler, PhysicsChangeBetweenSubmitsDrainsInFlightRunsBeforeClearing) {
  // Same geometry under two different soils: replaying the uniform-soil
  // blocks for the layered run would be grossly wrong, so the second
  // submit's assembly must wait out the first and then drop the stale
  // entries — while both runs still complete and match their cold
  // references.
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 4;
  spec.cells_y = 4;
  const geom::Mesh mesh = geom::Mesh::build(geom::make_rect_grid(spec));
  const bem::BemModel uniform(mesh, soil::LayeredSoil::uniform(0.02));
  const bem::BemModel layered(mesh, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));

  const bem::AnalysisResult cold_uniform = bem::analyze(uniform);
  const bem::AnalysisResult cold_layered = bem::analyze(layered);

  Engine engine;
  RunFuture warm_uniform = engine.submit(uniform);
  RunFuture warm_layered = engine.submit(layered);
  EXPECT_NEAR(warm_uniform.get().equivalent_resistance, cold_uniform.equivalent_resistance,
              1e-12 * cold_uniform.equivalent_resistance);
  EXPECT_NEAR(warm_layered.get().equivalent_resistance, cold_layered.equivalent_resistance,
              1e-12 * cold_layered.equivalent_resistance);

  // The clear happened between the runs, not under the first one: only the
  // layered physics' classes survive (assemblies dispatch in submission
  // order, so the drop deterministically falls between them).
  bem::CongruenceCache cold_cache;
  const bem::AssemblyResult cold = bem::assemble(layered, {}, {.cache = &cold_cache});
  EXPECT_EQ(engine.cache_stats().entries, cold.cache_stats.entries);
  // And the layered run really did start cold (no cross-physics replays).
  EXPECT_EQ(warm_layered.get().cache_stats.hits,
            cold.cache_stats.hits);
}

TEST(Scheduler, FingerprintSeparatesSoilsAndNumerics) {
  const auto soil_a = soil::LayeredSoil::uniform(0.02);
  const auto soil_b = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  bem::AssemblyOptions options;
  const std::uint64_t a = physics_fingerprint(soil_a, options);
  const std::uint64_t b = physics_fingerprint(soil_b, options);
  EXPECT_NE(a, b);
  bem::AssemblyOptions tighter = options;
  tighter.series.tolerance *= 0.1;
  EXPECT_NE(physics_fingerprint(soil_a, options), physics_fingerprint(soil_a, tighter));
  EXPECT_EQ(a, physics_fingerprint(soil_a, bem::AssemblyOptions{}));
}

// ---------------------------------------------------------------------------
// Per-run overrides and error propagation
// ---------------------------------------------------------------------------

TEST(Scheduler, BrokenOverridesAndOptionsThrowAtSubmitTime) {
  Engine engine;
  const bem::BemModel model = bench_model(2);

  SubmitOptions bad_storage;
  bad_storage.storage = la::StorageConfig{.tile_size = 0};
  EXPECT_THROW((void)engine.submit(model, {}, bad_storage), ebem::InvalidArgument);

  SubmitOptions budget_without_dir;
  budget_without_dir.storage =
      la::StorageConfig{.tile_size = 16, .residency_budget_bytes = 1 << 16, .spill_dir = ""};
  EXPECT_THROW((void)engine.submit(model, {}, budget_without_dir), ebem::InvalidArgument);

  bem::AnalysisOptions bad_gpr;
  bad_gpr.gpr = 0.0;
  EXPECT_THROW((void)engine.submit(model, bad_gpr), ebem::InvalidArgument);
}

TEST(Scheduler, PerRunStorageOverrideSpillsJustThatRun) {
  const bem::BemModel model = bench_model(4);
  Engine engine;
  const bem::AnalysisResult in_memory = engine.analyze(model);
  EXPECT_EQ(in_memory.matrix_tiles.evictions, 0u);

  SubmitOptions spilled;
  la::StorageConfig storage;
  storage.tile_size = 16;
  storage.residency_budget_bytes =
      la::TileLayout(in_memory.sigma.size(), 16).total_bytes() / 3;
  spilled.storage = storage;
  RunFuture future = engine.submit(model, {}, spilled);
  const bem::AnalysisResult& result = future.get();
  EXPECT_GT(result.matrix_tiles.evictions, 0u);
  expect_sigma_near(result.sigma, in_memory.sigma, "spilled run");
  // The pager counters of the overridden run landed on the session report.
  EXPECT_GT(engine.report().counter(kTileEvictionsCounter), 0.0);
}

TEST(Scheduler, StageFailureIsRethrownByTheFuture) {
  // One CG iteration cannot converge to 1e-12: the solve stage throws on an
  // executor and the future must deliver exactly that failure.
  ExecutionConfig config;
  config.solver = bem::SolverKind::kPcg;
  config.cg_max_iterations = 1;
  Engine engine(config);
  RunFuture future = engine.submit(bench_model(3));
  future.wait();
  EXPECT_EQ(future.status(), RunStatus::kFailed);
  EXPECT_THROW((void)future.get(), ebem::InvalidArgument);
  // A failed run leaves no partial timings on the session report.
  EXPECT_DOUBLE_EQ(engine.report().total_wall_seconds(), 0.0);

  // The engine keeps scheduling after a failure (looser tolerance converges).
  bem::AnalysisOptions relaxed;
  RunFuture after = engine.submit(bench_model(2), relaxed);
  after.wait();
  EXPECT_EQ(after.status(), RunStatus::kFailed);  // still 1 iteration: fails too
  // Fresh engine sanity: the default CG budget converges.
  ExecutionConfig pcg;
  pcg.solver = bem::SolverKind::kPcg;
  Engine healthy(pcg);
  EXPECT_GT(healthy.submit(bench_model(2)).get().equivalent_resistance, 0.0);
}

TEST(Scheduler, CancelIsBestEffortAndOnlyHitsQueuedRuns) {
  ExecutionConfig config;
  config.pipeline_width = 1;  // one executor: later submits provably queue
  Engine engine(config);
  RunFuture running = engine.submit(bench_model(5));
  RunFuture queued_a = engine.submit(bench_model(4));
  RunFuture queued_b = engine.submit(bench_model(3));

  const bool cancelled = queued_b.cancel();
  if (cancelled) {
    queued_b.wait();
    EXPECT_EQ(queued_b.status(), RunStatus::kCancelled);
    EXPECT_THROW((void)queued_b.get(), ebem::InvalidArgument);
    EXPECT_TRUE(queued_b.cancel());  // idempotent on a cancelled run
  } else {
    // Lost the race: the run had already started and must complete.
    EXPECT_GT(queued_b.get().equivalent_resistance, 0.0);
  }
  // Unaffected runs complete either way.
  EXPECT_GT(running.get().equivalent_resistance, 0.0);
  EXPECT_GT(queued_a.get().equivalent_resistance, 0.0);
  // A finished run can no longer be cancelled.
  EXPECT_FALSE(running.cancel());
  engine.drain();
}

// ---------------------------------------------------------------------------
// PhaseReport: the thread-safe sink under the pool
// ---------------------------------------------------------------------------

TEST(PhaseReportConcurrency, NamedCountersLoseNoIncrementsUnderThePool) {
  PhaseReport report;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  par::ThreadPool pool(kThreads);
  pool.run([&](std::size_t tid) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      report.add_counter("Congruence cache hits", 1.0);
      // A second name forces the insert path to race with lookups too.
      if (tid % 2 == 0) report.add_counter("Right-hand sides solved", 2.0);
      report.add(Phase::kMatrixGeneration, 1e-9, 1e-9);
    }
  });
  EXPECT_DOUBLE_EQ(report.counter("Congruence cache hits"),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(report.counter("Right-hand sides solved"),
                   static_cast<double>(kThreads / 2 * kPerThread) * 2.0);
  EXPECT_NEAR(report.wall_seconds(Phase::kMatrixGeneration),
              static_cast<double>(kThreads * kPerThread) * 1e-9, 1e-12);
}

TEST(SchedulerBackpressure, BoundedQueueCapsOutstandingRunsOverAThousandSubmits) {
  // Regression guard for unbounded submission: with max_pending_runs set, a
  // burst of 1000 submits must never hold more than the bound's worth of
  // non-terminal runs (and their matrices) at once — submit() blocks until
  // a run retires instead of queueing without limit.
  constexpr std::size_t kBound = 4;
  constexpr std::size_t kSubmits = 1000;
  ExecutionConfig config;
  config.num_threads = 1;
  config.pipeline_width = 2;
  config.max_pending_runs = kBound;
  Engine engine(config);

  const bem::BemModel model = bench_model(1);
  std::vector<RunFuture> futures;
  futures.reserve(kSubmits);
  for (std::size_t i = 0; i < kSubmits; ++i) futures.push_back(engine.submit(model));
  const double reference = futures.front().get().equivalent_resistance;
  for (RunFuture& future : futures) {
    EXPECT_DOUBLE_EQ(future.get().equivalent_resistance, reference);
  }

  const SchedulerStats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kSubmits));
  EXPECT_GT(stats.peak_outstanding, 0u);
  EXPECT_LE(stats.peak_outstanding, kBound);
}

TEST(SchedulerBackpressure, UnboundedConfigStillReportsStats) {
  Engine engine;  // max_pending_runs = 0: historical unbounded behavior
  EXPECT_EQ(engine.scheduler_stats().submitted, 0u);  // lazily created
  std::vector<RunFuture> futures;
  for (std::size_t i = 0; i < 8; ++i) futures.push_back(engine.submit(bench_model(1)));
  engine.drain();
  const SchedulerStats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.submitted, 8u);
  // All eight may be outstanding at once — the point of the default.
  EXPECT_LE(stats.peak_outstanding, 8u);
}

TEST(SchedulerBackpressure, RejectsAWindowSmallerThanNothing) {
  ExecutionConfig config;
  config.max_pending_runs = 1;  // legal: fully serialized submission
  Engine engine(config);
  EXPECT_DOUBLE_EQ(engine.submit(bench_model(1)).get().equivalent_resistance,
                   engine.analyze(bench_model(1)).equivalent_resistance);
  EXPECT_LE(engine.scheduler_stats().peak_outstanding, 1u);
}

TEST(PhaseReportConcurrency, ConcurrentMergesIntoOneSinkAreAdditive) {
  // The engine's session report receives merge() from several executors at
  // once; every per-run report must land exactly once.
  PhaseReport sink;
  PhaseReport run;
  run.add(Phase::kLinearSolve, 1.0, 2.0);
  run.add_counter("Cholesky factorizations", 1.0);

  constexpr std::size_t kThreads = 8;
  par::ThreadPool pool(kThreads);
  pool.run([&](std::size_t) { sink.merge(run); });

  EXPECT_DOUBLE_EQ(sink.counter("Cholesky factorizations"), static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(sink.wall_seconds(Phase::kLinearSolve), static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(sink.cpu_seconds(Phase::kLinearSolve), 2.0 * static_cast<double>(kThreads));
}

}  // namespace
}  // namespace ebem::engine

// Design-search ladder: goals drive the chosen design.
#include <gtest/gtest.h>

#include "src/cad/design_search.hpp"
#include "src/common/error.hpp"

namespace ebem::cad {
namespace {

DesignSearchOptions site_30x20() {
  DesignSearchOptions options;
  options.site_x = 30.0;
  options.site_y = 20.0;
  options.samples_x = 7;
  options.samples_y = 5;
  return options;
}

TEST(DesignSearch, TrivialGoalSatisfiedImmediately) {
  DesignGoal goal;
  goal.gpr = 100.0;  // tiny fault: everything is safe
  goal.max_resistance = 1e300;
  goal.criteria.surface_resistivity = 2500.0;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::uniform(0.02), goal, site_30x20());
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.chosen.rods, 0u);
}

TEST(DesignSearch, ResistanceGoalForcesStrongerDesigns) {
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.criteria.surface_resistivity = 2500.0;
  // Find the baseline resistance, then demand ~15% better.
  DesignGoal baseline = goal;
  const DesignSearchResult first =
      search_design(soil::LayeredSoil::uniform(0.02), baseline, site_30x20());
  goal.max_resistance = 0.85 * first.chosen.resistance;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::uniform(0.02), goal, site_30x20());
  EXPECT_TRUE(result.satisfied);
  EXPECT_GT(result.history.size(), 1u);
  EXPECT_LE(result.chosen.resistance, goal.max_resistance);
  // Every earlier candidate failed the goal.
  for (std::size_t i = 0; i + 1 < result.history.size(); ++i) {
    EXPECT_FALSE(result.history[i].satisfied);
  }
}

TEST(DesignSearch, ResistanceDecreasesAlongTheLadder) {
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.max_resistance = 0.0;  // unreachable: walk the whole ladder
  goal.require_touch_safe = false;
  goal.require_step_safe = false;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 5;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::two_layer(0.005, 0.05, 1.5), goal, options);
  EXPECT_FALSE(result.satisfied);
  ASSERT_EQ(result.history.size(), 5u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LT(result.history[i].resistance, result.history[i - 1].resistance) << i;
  }
  // Later steps add rods.
  EXPECT_GT(result.history.back().rods, 0u);
}

TEST(DesignSearch, UnsafeGprNeedsMoreThanTheMinimalMesh) {
  DesignGoal goal;
  goal.gpr = 4e3;
  goal.criteria.fault_duration = 0.5;
  goal.criteria.soil_resistivity = 200.0;
  goal.criteria.surface_resistivity = 2500.0;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 8;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::two_layer(0.005, 0.02, 1.0), goal, options);
  EXPECT_GT(result.history.size(), 1u);
  if (result.satisfied) {
    EXPECT_LE(result.chosen.max_touch, post::tolerable_touch_voltage(goal.criteria));
  }
}

TEST(DesignSearch, ChosenGeometryMatchesCandidate) {
  DesignGoal goal;
  goal.gpr = 100.0;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::uniform(0.02), goal, site_30x20());
  // Conductor count: bars + rods.
  const std::size_t bars = (result.chosen.cells_y + 1) * result.chosen.cells_x +
                           (result.chosen.cells_x + 1) * result.chosen.cells_y;
  EXPECT_EQ(result.conductors.size(), bars + result.chosen.rods);
  EXPECT_NE(result.chosen.label().find("mesh"), std::string::npos);
}

TEST(DesignSearch, Validation) {
  DesignGoal goal;
  DesignSearchOptions bad;
  EXPECT_THROW((void)search_design(soil::LayeredSoil::uniform(0.02), goal, bad),
               ebem::InvalidArgument);
}

TEST(DesignSearch, WarmPathMatchesColdPathExactlyEnough) {
  // Acceptance: end-to-end warm-cache results must match the cache-less
  // cold path to <= 1e-12 on every candidate of the ladder.
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.max_resistance = 0.0;  // walk the whole ladder
  goal.require_touch_safe = false;
  goal.require_step_safe = false;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 4;

  DesignSearchOptions cold_options = options;
  cold_options.warm_cache = false;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.05, 1.5);
  const DesignSearchResult warm = search_design(soil, goal, options);
  const DesignSearchResult cold = search_design(soil, goal, cold_options);

  ASSERT_EQ(warm.history.size(), cold.history.size());
  for (std::size_t i = 0; i < warm.history.size(); ++i) {
    EXPECT_NEAR(warm.history[i].resistance, cold.history[i].resistance,
                1e-12 * cold.history[i].resistance)
        << i;
    EXPECT_NEAR(warm.history[i].max_touch, cold.history[i].max_touch,
                1e-10 * cold.history[i].max_touch + 1e-12)
        << i;
    EXPECT_NEAR(warm.history[i].max_step, cold.history[i].max_step,
                1e-10 * cold.history[i].max_step + 1e-12)
        << i;
  }
  // The warm run actually exercised the cache; the cold run had none.
  EXPECT_GT(warm.cache_stats.hits + warm.cache_stats.misses, 0u);
  EXPECT_EQ(cold.cache_stats.hits + cold.cache_stats.misses, 0u);
}

TEST(DesignSearch, CacheStatisticsAccumulateAcrossCandidates) {
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.max_resistance = 0.0;
  goal.require_touch_safe = false;
  goal.require_step_safe = false;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 3;
  const DesignSearchResult result =
      search_design(soil::LayeredSoil::uniform(0.02), goal, options);

  ASSERT_EQ(result.history.size(), 3u);
  std::size_t hits = 0;
  std::size_t misses = 0;
  for (const DesignCandidate& candidate : result.history) {
    EXPECT_GT(candidate.cache.hits + candidate.cache.misses, 0u) << candidate.label();
    hits += candidate.cache.hits;
    misses += candidate.cache.misses;
  }
  // Ladder totals are exactly the per-candidate deltas summed.
  EXPECT_EQ(result.cache_stats.hits, hits);
  EXPECT_EQ(result.cache_stats.misses, misses);
  // The shared cache kept growing. Candidate snapshots are taken at stage
  // completion, which pipelining does not order by ladder index — so compare
  // every snapshot against the session's final entry count instead of
  // assuming back() was snapped after front().
  for (const DesignCandidate& candidate : result.history) {
    EXPECT_LE(candidate.cache.entries, result.cache_stats.entries) << candidate.label();
  }
  EXPECT_GT(result.cache_stats.entries, 0u);
}

TEST(DesignSearch, PipelinedLadderMatchesAcrossThreadCounts) {
  // Acceptance: the ladder runs through submit() now, so per-candidate
  // results must stay within 1e-12 of each other at every worker count —
  // pipelined stage interleaving and scatter reordering may not move the
  // physics.
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.max_resistance = 0.0;  // walk the whole ladder
  goal.require_touch_safe = false;
  goal.require_step_safe = false;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 3;

  std::vector<double> reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    engine::ExecutionConfig config;
    config.num_threads = threads;
    engine::Engine engine(config);
    DesignSearchOptions threaded = options;
    threaded.engine = &engine;
    const DesignSearchResult result =
        search_design(soil::LayeredSoil::uniform(0.02), goal, threaded);
    ASSERT_EQ(result.history.size(), 3u) << threads;
    if (reference.empty()) {
      for (const DesignCandidate& candidate : result.history) {
        reference.push_back(candidate.resistance);
      }
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_NEAR(result.history[i].resistance, reference[i], 1e-12 * reference[i])
          << "candidate " << i << " threads " << threads;
    }
  }
}

TEST(DesignSearch, ExternalEngineKeepsItsCacheWarmAcrossSearches) {
  DesignGoal goal;
  goal.gpr = 100.0;
  goal.max_resistance = 0.0;
  goal.require_touch_safe = false;
  goal.require_step_safe = false;
  engine::Engine engine;
  DesignSearchOptions options = site_30x20();
  options.max_steps = 2;
  options.engine = &engine;

  const DesignSearchResult first = search_design(soil::LayeredSoil::uniform(0.02), goal, options);
  const std::size_t entries_after_first = engine.cache_stats().entries;
  EXPECT_GT(entries_after_first, 0u);

  // The identical second search replays everything from the warm cache.
  const DesignSearchResult second =
      search_design(soil::LayeredSoil::uniform(0.02), goal, options);
  EXPECT_EQ(second.cache_stats.misses, 0u);
  EXPECT_EQ(engine.cache_stats().entries, entries_after_first);
  ASSERT_EQ(first.history.size(), second.history.size());
  for (std::size_t i = 0; i < first.history.size(); ++i) {
    EXPECT_NEAR(second.history[i].resistance, first.history[i].resistance,
                1e-12 * first.history[i].resistance);
  }
}

}  // namespace
}  // namespace ebem::cad

// engine:: subsystem: ExecutionConfig validation, Engine warm-cache
// behaviour across analyses (including the physics-fingerprint guard),
// FactoredSystem multi-RHS parity and factorization accounting, and the
// Study session that design_search style ladders run on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/study.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {
namespace {

/// Uniform bench-grid family: fixed 5 m cell size, growing extent — nearby
/// systems whose pair geometries heavily overlap (the design_search shape).
bem::BemModel bench_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

// ---------------------------------------------------------------------------
// ExecutionConfig validation
// ---------------------------------------------------------------------------

TEST(ExecutionConfig, DefaultIsValidAndSerial) {
  const ExecutionConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.resolved_threads(), 1u);
}

TEST(ExecutionConfig, PoolWithContradictingThreadCountThrows) {
  // The historical footgun: SolverOptions::pool was silently ignored when
  // num_threads stayed at its default of 1. The config now rejects the
  // contradiction once, at Engine construction.
  par::ThreadPool pool(4);
  ExecutionConfig config;
  config.pool = &pool;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);  // num_threads == 1 != 4
  config.num_threads = 2;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  EXPECT_THROW(Engine{config}, ebem::InvalidArgument);
}

TEST(ExecutionConfig, PoolIsAdoptedWithAutoOrMatchingThreads) {
  par::ThreadPool pool(3);
  ExecutionConfig config;
  config.pool = &pool;
  config.num_threads = 0;  // auto: adopt the pool's size
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.resolved_threads(), 3u);
  config.num_threads = 3;  // explicit match is also fine
  EXPECT_NO_THROW(config.validate());

  Engine engine(config);
  EXPECT_EQ(engine.num_threads(), 3u);
  EXPECT_EQ(engine.pool(), &pool);
}

TEST(ExecutionConfig, RejectsBrokenNumericPolicies) {
  ExecutionConfig config;
  config.congruence_quantum = 0.0;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  config = {};
  config.cg_tolerance = -1.0;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  config = {};
  config.cholesky_block = 0;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  config = {};
  config.cache_max_entries = 0;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
}

TEST(ExecutionConfig, AutoThreadsWithoutPoolUsesHardware) {
  ExecutionConfig config;
  config.num_threads = 0;
  EXPECT_GE(config.resolved_threads(), 1u);
}

TEST(ExecutionConfig, RejectsBrokenStoragePolicies) {
  ExecutionConfig config;
  config.storage.tile_size = 0;
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  config = {};
  config.storage.residency_budget_bytes = 1 << 20;
  config.storage.spill_dir.clear();  // a budget needs somewhere to spill
  EXPECT_THROW(config.validate(), ebem::InvalidArgument);
  config.storage.spill_dir = ".";
  EXPECT_NO_THROW(config.validate());
}

TEST(ExecutionConfig, MatvecCutoffReachesTheSolvePlumbing) {
  ExecutionConfig config;
  config.matvec_parallel_cutoff = 17;
  config.measure_residual = false;
  Engine engine(config);
  EXPECT_EQ(engine.solve_execution().matvec_parallel_cutoff, 17u);
  EXPECT_FALSE(engine.solve_execution().measure_residual);
  // Default stays the measured compile-time crossover.
  Engine default_engine;
  EXPECT_EQ(default_engine.solve_execution().matvec_parallel_cutoff,
            la::SymMatrix::kParallelCutoff);
}

// ---------------------------------------------------------------------------
// Engine: out-of-core storage policy
// ---------------------------------------------------------------------------

TEST(Engine, SpillStorageMatchesInMemoryAndReportsPagerCounters) {
  const bem::BemModel model = bench_model(4);

  Engine in_memory{};
  const bem::AnalysisResult reference = in_memory.analyze(model);

  ExecutionConfig config;
  config.storage.tile_size = 16;
  const std::size_t n = reference.sigma.size();
  config.storage.residency_budget_bytes =
      la::TileLayout(n, 16).total_bytes() / 3;
  Engine spilling(config);
  const bem::AnalysisResult result = spilling.analyze(model);

  ASSERT_EQ(result.sigma.size(), reference.sigma.size());
  for (std::size_t i = 0; i < result.sigma.size(); ++i) {
    EXPECT_NEAR(result.sigma[i], reference.sigma[i],
                1e-12 * std::abs(reference.sigma[i]) + 1e-15);
  }
  // Eviction/IO counters land on the session PhaseReport; the in-memory
  // session keeps a clean report.
  EXPECT_GT(spilling.report().counter(kTileEvictionsCounter), 0.0);
  EXPECT_GT(spilling.report().counter(kTileSpillReadsCounter), 0.0);
  EXPECT_GT(spilling.report().counter(kTileSpillWritesCounter), 0.0);
  EXPECT_EQ(in_memory.report().counter(kTileEvictionsCounter), 0.0);
  EXPECT_GT(result.matrix_tiles.evictions, 0u);
}

TEST(Engine, FactorUnderSpillStorageSolvesAndCountsOnTheReport) {
  const bem::BemModel model = bench_model(4);
  Engine reference{};
  const engine::FactoredSystem ref_factored = reference.factor(model);
  const std::vector<double> ref_x = ref_factored.solve();

  ExecutionConfig config;
  config.storage.tile_size = 16;
  config.storage.residency_budget_bytes =
      la::TileLayout(ref_x.size(), 16).total_bytes() / 3;
  Engine spilling(config);
  const engine::FactoredSystem factored = spilling.factor(model);
  const std::vector<double> x = factored.solve();
  ASSERT_EQ(x.size(), ref_x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref_x[i], 1e-12 * std::abs(ref_x[i]) + 1e-15);
  }
  EXPECT_GT(spilling.report().counter(kTileEvictionsCounter), 0.0);
  EXPECT_EQ(spilling.report().counter(kFactorizationsCounter), 1.0);
}

// ---------------------------------------------------------------------------
// Engine: warm cache across analyses
// ---------------------------------------------------------------------------

TEST(Engine, AnalyzeMatchesSerialShimWithinCacheParity) {
  const bem::BemModel model = bench_model(3);
  const bem::AnalysisResult reference = bem::analyze(model);

  Engine engine;  // warm cache on by default
  const bem::AnalysisResult result = engine.analyze(model);
  EXPECT_NEAR(result.equivalent_resistance, reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
  ASSERT_EQ(result.sigma.size(), reference.sigma.size());
  for (std::size_t i = 0; i < result.sigma.size(); ++i) {
    EXPECT_NEAR(result.sigma[i], reference.sigma[i], 1e-12 * std::abs(reference.sigma[i]));
  }
}

TEST(Engine, CacheStaysWarmAcrossRepeatedAnalyses) {
  const bem::BemModel model = bench_model(3);
  Engine engine;
  (void)engine.analyze(model);
  const bem::CongruenceCacheStats first = engine.cache_stats();
  EXPECT_GT(first.misses, 0u);

  (void)engine.analyze(model);
  const bem::CongruenceCacheStats second = engine.cache_stats();
  // The warm re-run integrates nothing new.
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_EQ(second.entries, first.entries);
  EXPECT_GT(second.hits, first.hits);
}

TEST(Engine, PhysicsChangeDropsTheWarmCache) {
  // Same geometry classes under different soil would replay wrong blocks;
  // the fingerprint guard must clear the cache instead.
  geom::RectGridSpec spec;
  spec.length_x = 20.0;
  spec.length_y = 20.0;
  spec.cells_x = 2;
  spec.cells_y = 2;
  const geom::Mesh mesh = geom::Mesh::build(geom::make_rect_grid(spec));
  const bem::BemModel uniform(mesh, soil::LayeredSoil::uniform(0.02));
  const bem::BemModel layered(mesh, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));

  const bem::AnalysisResult cold_layered = bem::analyze(layered);

  Engine engine;
  Study study(engine);
  (void)study.analyze(uniform);
  const std::size_t entries_after_uniform = engine.cache_stats().entries;
  EXPECT_GT(entries_after_uniform, 0u);
  const std::size_t uniform_lookups =
      study.last_cache_delta().hits + study.last_cache_delta().misses;

  const bem::AnalysisResult warm_layered = study.analyze(layered);
  // Wrong replays would show up as a grossly different resistance.
  EXPECT_NEAR(warm_layered.equivalent_resistance, cold_layered.equivalent_resistance,
              1e-12 * cold_layered.equivalent_resistance);
  // Per-run delta accounting must survive the fingerprint drop: the layered
  // run's counters are its own (no wrap-around, no leftover zeros), and its
  // misses reflect the emptied cache.
  const bem::CongruenceCacheStats delta = study.last_cache_delta();
  const std::size_t pairs = layered.element_count() * (layered.element_count() + 1) / 2;
  EXPECT_EQ(delta.hits + delta.misses, pairs);
  EXPECT_GT(delta.misses, 0u);
  // The session totals keep accumulating across the drop.
  EXPECT_EQ(engine.cache_stats().hits + engine.cache_stats().misses,
            uniform_lookups + pairs);
}

TEST(Engine, SharedPoolServesAssemblyAndSolve) {
  const bem::BemModel model = bench_model(3);
  const bem::AnalysisResult reference = bem::analyze(model);

  ExecutionConfig config;
  config.num_threads = 4;
  config.use_congruence_cache = false;
  Engine engine(config);
  ASSERT_NE(engine.pool(), nullptr);
  EXPECT_EQ(engine.pool()->num_threads(), 4u);

  const bem::AnalysisResult result = engine.analyze(model);
  // Fused streaming assembly reorders scatter accumulation only; the
  // blocked parallel Cholesky is bit-identical by construction.
  EXPECT_NEAR(result.equivalent_resistance, reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
}

// ---------------------------------------------------------------------------
// FactoredSystem: one factorization, many right-hand sides
// ---------------------------------------------------------------------------

class FactoredSystemThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactoredSystemThreads, SolveManyMatchesIndependentSolves) {
  const std::size_t threads = GetParam();
  const bem::BemModel model = bench_model(3);

  ExecutionConfig config;
  config.num_threads = threads;
  Engine engine(config);
  const FactoredSystem system = engine.factor(model);
  const std::size_t n = system.size();
  ASSERT_GT(n, 0u);

  // 8 deterministic right-hand sides: the assembled nu scaled and shifted.
  constexpr std::size_t kRhs = 8;
  std::vector<double> block(n * kRhs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kRhs; ++c) {
      block[i * kRhs + c] = system.rhs()[i] * (1.0 + 0.25 * static_cast<double>(c)) +
                            0.01 * static_cast<double>(i % 7);
    }
  }
  const std::vector<double> many = system.solve_many(block, kRhs);
  ASSERT_EQ(many.size(), n * kRhs);

  // Column-by-column reference through the serial bem::solve front-end on
  // the same matrix. The acceptance bar is 1e-12 relative.
  const bem::AssemblyResult assembled = bem::assemble(model);
  for (std::size_t c = 0; c < kRhs; ++c) {
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = block[i * kRhs + c];
    const std::vector<double> x = bem::solve(assembled.matrix, rhs);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(many[i * kRhs + c], x[i], 1e-12 * std::abs(x[i]) + 1e-15)
          << "column " << c << " row " << i << " threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, FactoredSystemThreads, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(FactoredSystem, EightRhsBlockCostsExactlyOneFactorization) {
  const bem::BemModel model = bench_model(2);
  Engine engine;
  const FactoredSystem system = engine.factor(model);

  constexpr std::size_t kRhs = 8;
  std::vector<double> block(system.size() * kRhs, 1.0);
  (void)system.solve_many(block, kRhs);

  EXPECT_DOUBLE_EQ(engine.report().counter(kFactorizationsCounter), 1.0);
  EXPECT_DOUBLE_EQ(engine.report().counter(kRhsSolvedCounter),
                   static_cast<double>(kRhs));

  // Further solves still do not refactor.
  (void)system.solve();
  EXPECT_DOUBLE_EQ(engine.report().counter(kFactorizationsCounter), 1.0);
  EXPECT_DOUBLE_EQ(engine.report().counter(kRhsSolvedCounter),
                   static_cast<double>(kRhs + 1));
}

TEST(FactoredSystem, OwnRhsSolveMatchesAnalyze) {
  const bem::BemModel model = bench_model(2);
  Engine engine;
  const FactoredSystem system = engine.factor(model);
  const std::vector<double> sigma_hat = system.solve();

  const bem::AnalysisResult reference = bem::analyze(model);  // gpr = 1
  ASSERT_EQ(sigma_hat.size(), reference.sigma.size());
  for (std::size_t i = 0; i < sigma_hat.size(); ++i) {
    EXPECT_NEAR(sigma_hat[i], reference.sigma[i], 1e-12 * std::abs(reference.sigma[i]));
  }
}

// ---------------------------------------------------------------------------
// Study: the warm ladder session
// ---------------------------------------------------------------------------

TEST(Study, WarmHitRateBeatsColdStartOnTheUniformBenchLadder) {
  // The acceptance shape of the warm design loop: candidates of growing
  // extent share the 5 m cell size, so candidate k's pairs are nearly all
  // translated copies of blocks candidates 1..k-1 already integrated. Every
  // candidate after the first must beat the hit rate a cold cache achieves
  // on the same grid.
  Engine engine;
  Study study(engine);
  std::size_t previous_entries = 0;
  for (const std::size_t cells : {3u, 4u, 5u}) {
    const bem::BemModel model = bench_model(cells);
    (void)study.analyze(model);
    const bem::CongruenceCacheStats warm = study.last_cache_delta();

    bem::CongruenceCache cold_cache;
    const bem::AssemblyResult cold = bem::assemble(model, {}, {.cache = &cold_cache});

    if (cells > 3u) {
      EXPECT_GT(warm.hit_rate(), cold.cache_stats.hit_rate()) << cells;
    }
    // The shared cache only grows; each candidate adds its new classes.
    EXPECT_GT(warm.entries, previous_entries) << cells;
    previous_entries = warm.entries;
  }
  EXPECT_EQ(study.runs(), 3u);
}

TEST(Study, WarmResultsMatchColdResults) {
  Engine engine;
  Study study(engine);
  for (const std::size_t cells : {3u, 4u, 5u}) {
    const bem::BemModel model = bench_model(cells);
    const bem::AnalysisResult warm = study.analyze(model);
    const bem::AnalysisResult cold = bem::analyze(model);
    EXPECT_NEAR(warm.equivalent_resistance, cold.equivalent_resistance,
                1e-12 * cold.equivalent_resistance)
        << cells;
  }
}

TEST(Study, FactorGoesThroughTheWarmCache) {
  Engine engine;
  Study study(engine);
  (void)study.analyze(bench_model(3));
  const FactoredSystem system = study.factor(bench_model(3));
  // The second pass over the same model replays everything.
  EXPECT_EQ(study.last_cache_delta().misses, 0u);
  EXPECT_GT(study.last_cache_delta().hits, 0u);
  EXPECT_GT(system.size(), 0u);
}

}  // namespace
}  // namespace ebem::engine

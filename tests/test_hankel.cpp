// Numerical Hankel-transform kernel: uniform limits and multi-layer support.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"

namespace ebem::soil {
namespace {

using geom::Vec3;

TEST(HankelKernel, UniformSoilMatchesMirrorFormula) {
  const double gamma = 0.02;
  const HankelKernel kernel(LayeredSoil::uniform(gamma));
  const Vec3 xi{0, 0, -1.0};
  for (const Vec3 x : {Vec3{2, 0, -0.5}, Vec3{0, 3, -2.0}, Vec3{4, 0, 0.0}}) {
    const double direct =
        std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(x.z - xi.z));
    const double mirror =
        std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(x.z + xi.z));
    const double expected = (1.0 / direct + 1.0 / mirror) / (4.0 * kPi * gamma);
    EXPECT_NEAR(kernel.evaluate(x, xi), expected, 1e-7 * expected);
  }
}

TEST(HankelKernel, DegenerateThreeLayerMatchesTwoLayerImages) {
  // Split the lower layer of a two-layer model into two identical layers:
  // the 3-layer Hankel solve must agree with the 2-layer image series.
  const LayeredSoil two = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const LayeredSoil three({Layer{0.005, 1.0}, Layer{0.016, 2.0}, Layer{0.016, 0.0}});
  const ImageKernel image(two, {1e-13, 8192});
  const HankelKernel hankel(three);
  for (const auto& [x, xi] :
       {std::pair{Vec3{2, 0, -0.5}, Vec3{0, 0, -0.8}}, {Vec3{2, 0, -2.0}, Vec3{0, 0, -0.8}},
        {Vec3{2, 0, -4.0}, Vec3{0, 0, -3.5}}, {Vec3{3, 0, 0.0}, Vec3{0, 0, -0.8}}}) {
    const double expected = image.evaluate(x, xi);
    EXPECT_NEAR(hankel.evaluate(x, xi), expected, 5e-6 * expected) << "x.z=" << x.z;
  }
}

TEST(HankelKernel, DegenerateEqualLayersMatchUniform) {
  const LayeredSoil three({Layer{0.01, 0.7}, Layer{0.01, 1.3}, Layer{0.01, 0.0}});
  const HankelKernel kernel(three);
  const ImageKernel uniform(LayeredSoil::uniform(0.01));
  const Vec3 xi{0, 0, -1.0};
  const Vec3 x{2.5, 0, -0.4};
  const double expected = uniform.evaluate(x, xi);
  EXPECT_NEAR(kernel.evaluate(x, xi), expected, 1e-6 * expected);
}

TEST(HankelKernel, ThreeLayerReciprocity) {
  const LayeredSoil soil({Layer{0.02, 0.8}, Layer{0.004, 1.2}, Layer{0.04, 0.0}});
  const HankelKernel kernel(soil);
  const Vec3 a{1.5, 0, -0.5};   // layer 0
  const Vec3 b{0, 0.5, -1.5};   // layer 1
  const Vec3 c{0.5, 1, -2.8};   // layer 2
  EXPECT_NEAR(kernel.evaluate(a, b), kernel.evaluate(b, a), 1e-5 * kernel.evaluate(a, b));
  EXPECT_NEAR(kernel.evaluate(a, c), kernel.evaluate(c, a), 1e-5 * kernel.evaluate(a, c));
  EXPECT_NEAR(kernel.evaluate(b, c), kernel.evaluate(c, b), 1e-5 * kernel.evaluate(b, c));
}

TEST(HankelKernel, ThreeLayerPotentialContinuity) {
  const LayeredSoil soil({Layer{0.02, 0.8}, Layer{0.004, 1.2}, Layer{0.04, 0.0}});
  const HankelKernel kernel(soil);
  const Vec3 xi{0, 0, -0.4};
  for (double depth : {0.8, 2.0}) {
    const double above = kernel.evaluate({2, 0, -depth + 1e-7}, xi);
    const double below = kernel.evaluate({2, 0, -depth - 1e-7}, xi);
    EXPECT_NEAR(above, below, 1e-4 * std::abs(above)) << depth;
  }
}

TEST(HankelKernel, MiddleLayerShieldsWhenResistive) {
  // A very resistive middle layer suppresses the potential transmitted to
  // the bottom layer compared to a conductive middle layer.
  const LayeredSoil resistive({Layer{0.02, 0.8}, Layer{0.0005, 1.0}, Layer{0.02, 0.0}});
  const LayeredSoil conductive({Layer{0.02, 0.8}, Layer{0.2, 1.0}, Layer{0.02, 0.0}});
  const HankelKernel shielded(resistive);
  const HankelKernel open(conductive);
  const Vec3 xi{0, 0, -0.4};
  const Vec3 deep{0.5, 0, -3.0};
  EXPECT_GT(shielded.evaluate(deep, xi), 0.0);
  EXPECT_LT(shielded.evaluate(deep, xi) / shielded.evaluate({0.5, 0, -0.4}, xi),
            open.evaluate(deep, xi) / open.evaluate({0.5, 0, -0.4}, xi));
}

TEST(HankelKernel, RejectsAirPoints) {
  const HankelKernel kernel(LayeredSoil::uniform(0.01));
  EXPECT_THROW(kernel.evaluate({0, 0, 1.0}, {0, 0, -1.0}), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::soil

// Gauss-Legendre rules: exactness, convergence, caching.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::quad {
namespace {

TEST(GaussLegendre, RejectsZeroOrder) { EXPECT_THROW(gauss_legendre(0), InvalidArgument); }

TEST(GaussLegendre, OnePointRuleIsMidpoint) {
  const Rule rule = gauss_legendre(1);
  ASSERT_EQ(rule.size(), 1u);
  EXPECT_DOUBLE_EQ(rule.nodes[0], 0.0);
  EXPECT_DOUBLE_EQ(rule.weights[0], 2.0);
}

TEST(GaussLegendre, TwoPointRuleMatchesClassicValues) {
  const Rule rule = gauss_legendre(2);
  ASSERT_EQ(rule.size(), 2u);
  EXPECT_NEAR(rule.nodes[0], -1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.nodes[1], 1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 1.0, 1e-14);
}

TEST(GaussLegendre, FivePointRuleMatchesTabulated) {
  const Rule rule = gauss_legendre(5);
  ASSERT_EQ(rule.size(), 5u);
  EXPECT_NEAR(rule.nodes[2], 0.0, 1e-14);
  EXPECT_NEAR(rule.nodes[4], 0.9061798459386640, 1e-13);
  EXPECT_NEAR(rule.weights[2], 0.5688888888888889, 1e-13);
  EXPECT_NEAR(rule.weights[4], 0.2369268850561891, 1e-13);
}

class GaussOrder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussOrder, WeightsSumToTwo) {
  const Rule rule = gauss_legendre(GetParam());
  const double sum = std::accumulate(rule.weights.begin(), rule.weights.end(), 0.0);
  EXPECT_NEAR(sum, 2.0, 1e-13);
}

TEST_P(GaussOrder, NodesAscendAndLieInside) {
  const Rule rule = gauss_legendre(GetParam());
  for (std::size_t i = 0; i < rule.size(); ++i) {
    EXPECT_GT(rule.nodes[i], -1.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    if (i > 0) EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
  }
}

TEST_P(GaussOrder, NodesAreSymmetric) {
  const Rule rule = gauss_legendre(GetParam());
  const std::size_t n = rule.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[n - 1 - i], 1e-14);
    EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-14);
  }
}

TEST_P(GaussOrder, IntegratesPolynomialsOfDegree2nMinus1Exactly) {
  const std::size_t n = GetParam();
  // Integrate x^d over [-1, 1] for every exactly-integrable degree.
  for (std::size_t d = 0; d < 2 * n; ++d) {
    const double numeric = integrate([&](double x) { return std::pow(x, d); }, -1.0, 1.0, n);
    const double exact = (d % 2 == 1) ? 0.0 : 2.0 / static_cast<double>(d + 1);
    EXPECT_NEAR(numeric, exact, 1e-12) << "order " << n << " degree " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussOrder,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 32));

TEST(GaussLegendre, MappedIntervalIntegration) {
  // integral of x^2 over [1, 4] = 21.
  EXPECT_NEAR(integrate([](double x) { return x * x; }, 1.0, 4.0, 4), 21.0, 1e-12);
  // Reversed interval flips the sign.
  EXPECT_NEAR(integrate([](double x) { return x * x; }, 4.0, 1.0, 4), -21.0, 1e-12);
}

TEST(GaussLegendre, SmoothNonPolynomialConverges) {
  // integral of sin over [0, pi] = 2; exp over [0, 1] = e - 1.
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0, kPi, 12), 2.0, 1e-12);
  EXPECT_NEAR(integrate([](double x) { return std::exp(x); }, 0.0, 1.0, 12),
              std::exp(1.0) - 1.0, 1e-12);
}

TEST(GaussLegendre, ConvergenceIsMonotoneForLogKernel) {
  // The BEM outer integrand is log-like near the ends: 1/sqrt(x^2 + a^2)
  // with a = 0.1 (wire radius over element length scale).
  const auto f = [](double x) { return 1.0 / std::sqrt(x * x + 1e-2); };
  const double exact = 2.0 * std::asinh(1.0 / 1e-1);
  double previous_error = 1e300;
  for (std::size_t n : {4, 8, 16, 32, 64}) {
    const double error = std::abs(integrate(f, -1.0, 1.0, n) - exact);
    EXPECT_LT(error, previous_error * 1.5) << n;  // allow small plateaus
    previous_error = error;
  }
  EXPECT_LT(previous_error, 1e-5);
}

TEST(GaussLegendre, CacheReturnsSameRule) {
  const Rule& a = cached_gauss_legendre(7);
  const Rule& b = cached_gauss_legendre(7);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 7u);
}

}  // namespace
}  // namespace ebem::quad

// Packed symmetric and dense matrix storage tests.
#include <gtest/gtest.h>

#include <random>

#include "src/common/error.hpp"
#include "src/la/dense_matrix.hpp"
#include "src/la/sym_matrix.hpp"

namespace ebem::la {
namespace {

TEST(SymMatrix, StorageAliasesSymmetricEntries) {
  SymMatrix a(3);
  a(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(a(1, 2), 5.0);
  a(0, 2) = -1.0;
  EXPECT_DOUBLE_EQ(a(2, 0), -1.0);
}

TEST(SymMatrix, PackedSizeIsTriangular) {
  SymMatrix a(5);
  EXPECT_EQ(a.packed().size(), 15u);
  EXPECT_EQ(a.size(), 5u);
}

TEST(SymMatrix, MultiplyMatchesExplicitForm) {
  SymMatrix a(3);
  a(0, 0) = 2.0;
  a(1, 1) = 3.0;
  a(2, 2) = 4.0;
  a(1, 0) = 1.0;
  a(2, 0) = -1.0;
  a(2, 1) = 0.5;
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1 + 1.0 * 2 + (-1.0) * 3);
  EXPECT_DOUBLE_EQ(y[1], 1.0 * 1 + 3.0 * 2 + 0.5 * 3);
  EXPECT_DOUBLE_EQ(y[2], -1.0 * 1 + 0.5 * 2 + 4.0 * 3);
}

TEST(SymMatrix, MultiplyMatchesDenseReferenceRandom) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 17;
  SymMatrix a(n);
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = dist(rng);
      a(i, j) = v;
      d(i, j) = v;
      d(j, i) = v;
    }
  }
  std::vector<double> x(n);
  for (double& v : x) v = dist(rng);
  std::vector<double> ya(n), yd(n);
  a.multiply(x, ya);
  d.multiply(x, yd);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ya[i], yd[i], 1e-13);
}

TEST(SymMatrix, DiagonalExtraction) {
  SymMatrix a(3);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;
  a(2, 2) = 3.0;
  a(1, 0) = 9.0;
  const std::vector<double> diag = a.diagonal();
  EXPECT_EQ(diag, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SymMatrix, SetZeroClears) {
  SymMatrix a(2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a.set_zero();
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1.0, 0.0, -1.0};
  std::vector<double> y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  std::vector<double> z{1.0, 1.0};
  std::vector<double> w(3);
  a.transpose_multiply(z, w);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(DenseMatrix, TransposeTimesSelfIsSymmetricPsd) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  DenseMatrix a(8, 4);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = dist(rng);
  }
  const DenseMatrix c = a.transpose_times_self();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(c(i, i), 0.0);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
  }
}

TEST(SolveDense, RecoversKnownSolution) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-13);
  EXPECT_NEAR(x[1], 3.0, 1e-13);
}

TEST(SolveDense, PivotsOnZeroLeadingEntry) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const std::vector<double> x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(SolveDense, RandomRoundTrip) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
      a(i, i) += 4.0;  // diagonally dominant, safely invertible
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = dist(rng);
    std::vector<double> b(n);
    a.multiply(x_true, b);
    const std::vector<double> x = solve_dense(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-11);
  }
}

TEST(SolveDense, SingularThrows) {
  DenseMatrix a(2, 2);  // all zeros
  EXPECT_THROW(solve_dense(a, {1.0, 1.0}), InvalidArgument);
}

}  // namespace
}  // namespace ebem::la

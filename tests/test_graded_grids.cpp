// Graded (unequal-spacing) and L-shaped grid builders.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/post/leakage.hpp"

namespace ebem::geom {
namespace {

TEST(GradedPartition, UniformWhenGradingIsOne) {
  const std::vector<double> nodes = graded_partition(10.0, 4, 1.0);
  ASSERT_EQ(nodes.size(), 5u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR(nodes[i], 2.5 * static_cast<double>(i), 1e-12);
  }
}

TEST(GradedPartition, EndpointsExactAndMonotone) {
  for (double grading : {0.5, 1.0, 2.0, 4.0}) {
    const std::vector<double> nodes = graded_partition(37.5, 7, grading);
    EXPECT_DOUBLE_EQ(nodes.front(), 0.0);
    EXPECT_DOUBLE_EQ(nodes.back(), 37.5);
    for (std::size_t i = 1; i < nodes.size(); ++i) EXPECT_GT(nodes[i], nodes[i - 1]);
  }
}

TEST(GradedPartition, GradingCompressesEdges) {
  const std::vector<double> nodes = graded_partition(10.0, 5, 3.0);
  const double edge_cell = nodes[1] - nodes[0];
  const double center_cell = nodes[3] - nodes[2];
  EXPECT_GT(center_cell, 2.0 * edge_cell);
  // Symmetric: last cell equals first cell.
  EXPECT_NEAR(nodes[5] - nodes[4], edge_cell, 1e-12);
}

TEST(GradedPartition, Validation) {
  EXPECT_THROW((void)graded_partition(0.0, 4, 1.0), ebem::InvalidArgument);
  EXPECT_THROW((void)graded_partition(10.0, 0, 1.0), ebem::InvalidArgument);
  EXPECT_THROW((void)graded_partition(10.0, 4, 0.0), ebem::InvalidArgument);
}

TEST(GradedGrid, MatchesUniformGridWhenGradingIsOne) {
  GradedRectGridSpec graded;
  graded.length_x = 40.0;
  graded.length_y = 30.0;
  graded.cells_x = 4;
  graded.cells_y = 3;
  graded.grading = 1.0;
  RectGridSpec uniform;
  uniform.length_x = 40.0;
  uniform.length_y = 30.0;
  uniform.cells_x = 4;
  uniform.cells_y = 3;
  const auto a = make_graded_rect_grid(graded);
  const auto b = make_rect_grid(uniform);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NEAR(total_length(a), total_length(b), 1e-9);
}

TEST(GradedGrid, SameConductorCountAndTotalLengthAsUniform) {
  GradedRectGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 40.0;
  spec.cells_x = 5;
  spec.cells_y = 5;
  spec.grading = 2.5;
  const auto graded = make_graded_rect_grid(spec);
  RectGridSpec uniform;
  uniform.length_x = 40.0;
  uniform.length_y = 40.0;
  uniform.cells_x = 5;
  uniform.cells_y = 5;
  // Same topology, same total conductor length: grading is free material.
  EXPECT_EQ(graded.size(), make_rect_grid(uniform).size());
  EXPECT_NEAR(total_length(graded), total_length(make_rect_grid(uniform)), 1e-9);
}

TEST(GradedGrid, GradingEvensOutLeakageDensity) {
  // The engineering point of unequal spacing: the leakage-density spread
  // (max/mean) shrinks relative to the uniform grid.
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const auto spread = [&](double grading) {
    GradedRectGridSpec spec;
    spec.length_x = 40.0;
    spec.length_y = 40.0;
    spec.cells_x = 5;
    spec.cells_y = 5;
    spec.grading = grading;
    const bem::BemModel model(Mesh::build(make_graded_rect_grid(spec)), soil);
    const bem::AnalysisResult result = bem::analyze(model, {});
    const auto leakage = post::element_leakage(model, result, bem::BasisKind::kLinear);
    const post::LeakageStats stats = post::leakage_stats(model, leakage);
    return stats.max_line_density / stats.mean_line_density;
  };
  EXPECT_LT(spread(2.5), spread(1.0));
}

TEST(LShapedGrid, CountsAndClipping) {
  LShapedGridSpec spec;
  spec.length_x = 40.0;
  spec.length_y = 40.0;
  spec.cut_x = 20.0;
  spec.cut_y = 20.0;
  spec.cells_x = 4;
  spec.cells_y = 4;
  const auto grid = make_l_shaped_grid(spec);
  // Full 4x4 grid has 40 pieces; the cut removes the 2x2 corner's interior
  // pieces. No piece midpoint may lie inside the cut.
  RectGridSpec full;
  full.length_x = 40.0;
  full.length_y = 40.0;
  full.cells_x = 4;
  full.cells_y = 4;
  EXPECT_LT(grid.size(), make_rect_grid(full).size());
  for (const Conductor& c : grid) {
    const Vec3 mid = c.midpoint();
    EXPECT_FALSE(mid.x > 20.0 + 1e-9 && mid.y > 20.0 + 1e-9)
        << mid.x << "," << mid.y;
  }
}

TEST(LShapedGrid, MeshesAndSolves) {
  LShapedGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cut_x = 15.0;
  spec.cut_y = 15.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  const auto grid = make_l_shaped_grid(spec);
  const bem::BemModel model(Mesh::build(grid), soil::LayeredSoil::uniform(0.02));
  const bem::AnalysisResult result = bem::analyze(model, {});
  EXPECT_GT(result.equivalent_resistance, 0.0);
  // The L covers 3/4 of the square's area: Req sits above the full square's.
  RectGridSpec full;
  full.length_x = 30.0;
  full.length_y = 30.0;
  full.cells_x = 3;
  full.cells_y = 3;
  const bem::BemModel full_model(Mesh::build(make_rect_grid(full)),
                                 soil::LayeredSoil::uniform(0.02));
  EXPECT_GT(result.equivalent_resistance,
            bem::analyze(full_model, {}).equivalent_resistance);
}

TEST(LShapedGrid, Validation) {
  LShapedGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cut_x = 35.0;  // cut larger than the grid
  spec.cut_y = 15.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  EXPECT_THROW((void)make_l_shaped_grid(spec), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::geom

// The engine-as-a-service front door, end to end: the strict wire codec
// (parse/reject/round-trip), line framing under truncation and overflow,
// loopback request/response parity against the direct Engine::analyze
// numbers, admission control (zero quotas, oversized models, rate limits,
// the global overload valve), per-tenant warm-cache isolation, per-tenant
// cost accounts reconciling with the per-run reports, concurrent submits
// from many client threads staying inside the backpressure bound, and the
// POSIX socket server speaking the same protocol over real descriptors.
//
// Every suite here is named Service* — the CI TSan job filters on that.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/error.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/blas1.hpp"
#include "src/service/admission.hpp"
#include "src/service/codec.hpp"
#include "src/service/dispatcher.hpp"
#include "src/service/loopback.hpp"
#include "src/service/server.hpp"
#include "src/service/tenant.hpp"

namespace ebem::service {
namespace {

// A small two-tenant service: "acme" with roomy quotas, "gadget" with tight
// ones. Serial compute keeps the numbers deterministic where tests compare
// against direct engine runs.
ServiceConfig small_config() {
  ServiceConfig config;
  TenantConfig acme;
  acme.name = "acme";
  acme.quotas.max_outstanding_runs = 8;
  TenantConfig gadget;
  gadget.name = "gadget";
  gadget.quotas.max_outstanding_runs = 2;
  gadget.quotas.max_elements_per_model = 50;
  config.tenants = {acme, gadget};
  return config;
}

std::string submit_line(const std::string& tenant, std::size_t cells,
                        const std::string& type = "submit_analysis") {
  const double extent = 5.0 * static_cast<double>(cells);
  return std::string("{\"type\":\"") + type + "\",\"tenant\":\"" + tenant +
         "\",\"model\":{\"grid\":{\"length_x\":" + std::to_string(extent) +
         ",\"length_y\":" + std::to_string(extent) + ",\"cells_x\":" + std::to_string(cells) +
         ",\"cells_y\":" + std::to_string(cells) +
         "},\"soil\":{\"conductivities\":[0.005,0.016],\"thicknesses\":[1.0]}}}";
}

std::string report_line(const std::string& tenant, double run_id, int wait_ms = 30'000) {
  return "{\"type\":\"get_report\",\"tenant\":\"" + tenant +
         "\",\"run_id\":" + std::to_string(static_cast<long long>(run_id)) +
         ",\"wait_ms\":" + std::to_string(wait_ms) + "}";
}

/// The model submit_line(cells) describes, built directly.
bem::BemModel direct_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

double field(const Json& response, const char* key) {
  const Json* value = response.find(key);
  EXPECT_NE(value, nullptr) << "missing field " << key << " in " << response.dump();
  return value != nullptr && value->is_number() ? value->as_number() : 0.0;
}

std::string text(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_string() ? value->as_string() : std::string();
}

// ---------------------------------------------------------------------------
// Codec: JSON value
// ---------------------------------------------------------------------------

TEST(ServiceCodec, ParsesAndRoundTripsDocuments) {
  const std::string line =
      "{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true,\"d\":null},\"s\":\"q\\\"\\n\\u00e9\"}";
  const std::optional<Json> document = Json::parse(line);
  ASSERT_TRUE(document.has_value());
  EXPECT_DOUBLE_EQ(document->find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(document->find("b")->find("c")->as_bool());
  EXPECT_TRUE(document->find("b")->find("d")->is_null());
  EXPECT_EQ(document->find("s")->as_string(), "q\"\n\xc3\xa9");

  const std::optional<Json> reparsed = Json::parse(document->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), document->dump());
}

TEST(ServiceCodec, NumberPrecisionSurvivesTheRoundTrip) {
  Json::Object object;
  object.emplace("x", Json(0.1234567890123456789));
  object.emplace("y", Json(1e-308));
  const std::string dumped = Json(std::move(object)).dump();
  const std::optional<Json> reparsed = Json::parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->find("x")->as_number(), 0.1234567890123456789);
  EXPECT_EQ(reparsed->find("y")->as_number(), 1e-308);
}

TEST(ServiceCodec, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(Json::parse("", &error).has_value());
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &error).has_value());  // trailing comma
  EXPECT_FALSE(Json::parse("{\"a\":1} x", &error).has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("{'a':1}", &error).has_value());      // single quotes
  EXPECT_FALSE(Json::parse("{\"a\":NaN}", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":01}", &error).has_value());  // leading zero
  EXPECT_FALSE(Json::parse("{\"a\":1e}", &error).has_value());
  EXPECT_FALSE(Json::parse("\"\\uD800\"", &error).has_value());  // unpaired surrogate
  EXPECT_FALSE(Json::parse("{\"a\":1,\"a\":2}", &error).has_value());  // duplicate key
  EXPECT_FALSE(error.empty());

  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  EXPECT_FALSE(Json::parse(deep, &error).has_value());  // nesting bound
}

// ---------------------------------------------------------------------------
// Codec: request schema
// ---------------------------------------------------------------------------

TEST(ServiceCodec, DecodesASubmitRequest) {
  const Request request = decode_request(submit_line("acme", 3));
  const auto* submit = std::get_if<SubmitRequest>(&request);
  ASSERT_NE(submit, nullptr);
  EXPECT_EQ(submit->tenant, "acme");
  EXPECT_FALSE(submit->factor_solve);
  EXPECT_EQ(submit->model.grid.cells_x, 3u);
  ASSERT_EQ(submit->model.layers.size(), 2u);
  EXPECT_DOUBLE_EQ(submit->model.layers[0].conductivity, 0.005);
  EXPECT_DOUBLE_EQ(submit->model.layers[0].thickness, 1.0);
}

TEST(ServiceCodec, TypedRejectionsForBadRequests) {
  const auto code_of = [](const std::string& line) {
    try {
      (void)decode_request(line);
    } catch (const RequestError& error) {
      return error.code();
    }
    return ErrorCode::kInternal;
  };
  EXPECT_EQ(code_of("not json"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(code_of("[1,2,3]"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(code_of("{\"type\":\"fly_to_the_moon\"}"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(code_of("{\"type\":\"submit_analysis\"}"), ErrorCode::kInvalidArgument);
  // Out-of-range geometry and soil are stopped at the boundary.
  std::string negative = submit_line("acme", 3);
  negative.replace(negative.find("\"length_x\":15"), 14, "\"length_x\":-5");
  EXPECT_EQ(code_of(negative), ErrorCode::kInvalidArgument);
  std::string bad_soil = submit_line("acme", 3);
  bad_soil.replace(bad_soil.find("[0.005"), 6, "[-0.005");
  EXPECT_EQ(code_of(bad_soil), ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of("{\"type\":\"get_report\",\"tenant\":\"acme\",\"run_id\":0}"),
            ErrorCode::kInvalidArgument);  // ids start at 1
  EXPECT_EQ(code_of("{\"type\":\"get_report\",\"tenant\":\"acme\",\"run_id\":1.5}"),
            ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(ServiceFraming, ReassemblesSplitFramesAndStripsCarriageReturns) {
  LineBuffer buffer;
  buffer.append("{\"a\":");
  EXPECT_FALSE(buffer.pop_line().has_value());  // truncated frame: not delivered
  buffer.append("1}\r\n{\"b\":2}\n{\"c\":");
  EXPECT_EQ(buffer.pop_line().value(), "{\"a\":1}");
  EXPECT_EQ(buffer.pop_line().value(), "{\"b\":2}");
  EXPECT_FALSE(buffer.pop_line().has_value());
  EXPECT_GT(buffer.pending_bytes(), 0u);
  EXPECT_FALSE(buffer.overflowed());
}

TEST(ServiceFraming, OversizedLinesTripTheOverflowFlagNotTheAllocator) {
  LineBuffer buffer(64);
  buffer.append(std::string(200, 'x'));
  EXPECT_TRUE(buffer.overflowed());
  EXPECT_FALSE(buffer.pop_line().has_value());
}

// ---------------------------------------------------------------------------
// Loopback end-to-end: parity with the direct engine
// ---------------------------------------------------------------------------

TEST(ServiceLoopback, AnalysisResponseMatchesDirectEngineAnalyze) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);

  const Json submitted = decode_response(client.call(submit_line("acme", 4)));
  ASSERT_EQ(text(submitted, "type"), "submitted") << submitted.dump();
  const double run_id = field(submitted, "run_id");

  const Json report = decode_response(client.call(report_line("acme", run_id)));
  ASSERT_EQ(text(report, "status"), "done") << report.dump();

  engine::Engine direct;
  const bem::AnalysisResult reference = direct.analyze(direct_model(4));
  EXPECT_NEAR(field(report, "equivalent_resistance"), reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
  EXPECT_NEAR(field(report, "total_current"), reference.total_current,
              1e-12 * reference.total_current);
  const double sigma_l2 = std::sqrt(la::dot(reference.sigma, reference.sigma));
  EXPECT_NEAR(field(report, "sigma_l2"), sigma_l2, 1e-12 * sigma_l2);
  EXPECT_EQ(static_cast<std::size_t>(field(report, "elements")),
            direct_model(4).element_count());
}

TEST(ServiceLoopback, FactorSolvePathAgreesWithTheAnalysisPath) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);

  const Json a = decode_response(client.call(submit_line("acme", 3)));
  const Json b = decode_response(client.call(submit_line("acme", 3, "submit_factor_solve")));
  const Json analysis =
      decode_response(client.call(report_line("acme", field(a, "run_id"))));
  const Json factored =
      decode_response(client.call(report_line("acme", field(b, "run_id"))));
  ASSERT_EQ(text(analysis, "status"), "done") << analysis.dump();
  ASSERT_EQ(text(factored, "status"), "done") << factored.dump();
  EXPECT_TRUE(factored.find("factor_solve")->as_bool());

  const double reference = field(analysis, "equivalent_resistance");
  EXPECT_NEAR(field(factored, "equivalent_resistance"), reference, 1e-12 * reference);
  EXPECT_NEAR(field(factored, "sigma_l2"), field(analysis, "sigma_l2"),
              1e-12 * field(analysis, "sigma_l2"));
}

TEST(ServiceLoopback, PollingAnInFlightRunReportsQueuedOrRunningNotAnError) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);
  const Json submitted = decode_response(client.call(submit_line("acme", 6)));
  const double run_id = field(submitted, "run_id");
  // Zero-wait poll immediately after submit: whatever the stage, the
  // response is a well-formed non-terminal (or already-done) report.
  const Json polled = decode_response(client.call(report_line("acme", run_id, 0)));
  EXPECT_EQ(text(polled, "type"), "report");
  const std::string status = text(polled, "status");
  EXPECT_TRUE(status == "queued" || status == "running" || status == "done") << status;
  // And the terminal report is still reachable afterwards.
  const Json final_report = decode_response(client.call(report_line("acme", run_id)));
  EXPECT_EQ(text(final_report, "status"), "done");
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServiceAdmission, UnknownTenantAndForeignRunsAreRefused) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);
  const Json unknown = decode_response(client.call(submit_line("evil_corp", 3)));
  EXPECT_EQ(text(unknown, "code"), "unknown_tenant");

  const Json submitted = decode_response(client.call(submit_line("acme", 3)));
  const double run_id = field(submitted, "run_id");
  const Json foreign = decode_response(client.call(report_line("gadget", run_id)));
  EXPECT_EQ(text(foreign, "code"), "forbidden");
  const Json missing = decode_response(client.call(report_line("acme", 999)));
  EXPECT_EQ(text(missing, "code"), "unknown_run");
}

TEST(ServiceAdmission, ZeroQuotaTenantIsRejectedButStillBilledTheRejection) {
  ServiceConfig config = small_config();
  config.tenants[1].quotas.max_outstanding_runs = 0;  // gadget suspended
  Dispatcher dispatcher(config);
  LoopbackClient client(dispatcher);

  const Json rejected = decode_response(client.call(submit_line("gadget", 3)));
  EXPECT_EQ(text(rejected, "code"), "quota_exceeded");
  const Json stats = decode_response(
      client.call("{\"type\":\"stats\",\"tenant\":\"gadget\"}"));
  EXPECT_DOUBLE_EQ(field(stats, "runs_rejected"), 1.0);
  EXPECT_DOUBLE_EQ(field(stats, "runs_completed"), 0.0);
  // The other tenant is unaffected.
  EXPECT_EQ(text(decode_response(client.call(submit_line("acme", 3))), "type"), "submitted");
}

TEST(ServiceAdmission, OversizedModelsAreStoppedBeforeTheEngine) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);
  // gadget's element quota is 50; a 6x6 grid meshes to 84 conductor
  // segments. The engine must never have seen the run.
  const Json rejected = decode_response(client.call(submit_line("gadget", 6)));
  EXPECT_EQ(text(rejected, "code"), "model_too_large");
  const Json stats = decode_response(
      client.call("{\"type\":\"stats\",\"tenant\":\"gadget\"}"));
  EXPECT_DOUBLE_EQ(field(stats, "engine_submitted"), 0.0);
  EXPECT_DOUBLE_EQ(field(stats, "runs_rejected"), 1.0);
}

TEST(ServiceAdmission, RateWindowLimitsAdmissionsPerSecond) {
  ServiceConfig config = small_config();
  config.tenants[0].quotas.max_runs_per_window = 2;
  config.tenants[0].quotas.window_seconds = 3600.0;  // nothing expires mid-test
  Dispatcher dispatcher(config);
  LoopbackClient client(dispatcher);

  EXPECT_EQ(text(decode_response(client.call(submit_line("acme", 2))), "type"), "submitted");
  EXPECT_EQ(text(decode_response(client.call(submit_line("acme", 2))), "type"), "submitted");
  const Json third = decode_response(client.call(submit_line("acme", 2)));
  EXPECT_EQ(text(third, "code"), "rate_limited");
}

TEST(ServiceAdmission, GlobalBoundRejectsAsOverloadedAcrossTenants) {
  ServiceConfig config = small_config();
  config.max_global_outstanding = 1;
  Dispatcher dispatcher(config);
  LoopbackClient client(dispatcher);

  const Json first = decode_response(client.call(submit_line("acme", 10)));
  ASSERT_EQ(text(first, "type"), "submitted");
  // While acme's (large) run is outstanding, even the *other* tenant bounces.
  const Json second = decode_response(client.call(submit_line("gadget", 2)));
  EXPECT_EQ(text(second, "code"), "overloaded");
  // Harvesting the first run frees the valve.
  EXPECT_EQ(text(decode_response(client.call(report_line("acme", field(first, "run_id")))),
                 "status"),
            "done");
  EXPECT_EQ(text(decode_response(client.call(submit_line("gadget", 2))), "type"), "submitted");
}

// ---------------------------------------------------------------------------
// Tenant isolation and billing
// ---------------------------------------------------------------------------

TEST(ServiceTenants, WarmCacheIsolationSurvivesAnotherTenantsPhysicsChurn) {
  // acme submits the same model twice; gadget churns a *different* soil in
  // between. With per-tenant engines the second acme run replays acme's
  // warm cache — gadget's physics never evicts it. (One shared engine
  // would drop the cache on every fingerprint flip.)
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);

  const Json first = decode_response(client.call(submit_line("acme", 4)));
  (void)client.call(report_line("acme", field(first, "run_id")));

  std::string other_soil = submit_line("gadget", 3);
  other_soil.replace(other_soil.find("[0.005"), 6, "[0.042");
  const Json churn = decode_response(client.call(other_soil));
  (void)client.call(report_line("gadget", field(churn, "run_id")));

  const Json second = decode_response(client.call(submit_line("acme", 4)));
  const Json report = decode_response(client.call(report_line("acme", field(second, "run_id"))));
  ASSERT_EQ(text(report, "status"), "done");
  EXPECT_GT(field(report, "cache_hits"), 0.0);
  EXPECT_DOUBLE_EQ(field(report, "cache_misses"), 0.0)
      << "an identical resubmission should replay entirely from the warm cache";
}

TEST(ServiceTenants, AccountsReconcileWithTheSumOfPerRunReports) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);

  double billed_total = 0.0;
  double billed_elements = 0.0;
  for (const std::size_t cells : {2, 3, 4}) {
    const Json submitted = decode_response(client.call(submit_line("acme", cells)));
    const Json report =
        decode_response(client.call(report_line("acme", field(submitted, "run_id"))));
    ASSERT_EQ(text(report, "status"), "done");
    billed_total += field(report, "total_seconds");
    billed_elements += field(report, "elements");
  }

  const Json stats = decode_response(client.call("{\"type\":\"stats\",\"tenant\":\"acme\"}"));
  EXPECT_DOUBLE_EQ(field(stats, "runs_completed"), 3.0);
  EXPECT_DOUBLE_EQ(field(stats, "elements_billed"), billed_elements);
  // The account *is* the merge of exactly those per-run reports.
  EXPECT_NEAR(field(stats, "total_seconds"), billed_total, 1e-9);
  EXPECT_GE(field(stats, "assembly_seconds"), 0.0);
  EXPECT_LE(field(stats, "assembly_seconds") + field(stats, "solve_seconds"),
            field(stats, "total_seconds") + 1e-9);
}

TEST(ServiceTenants, ConcurrentSubmitsStayInsideTheBackpressureBound) {
  ServiceConfig config = small_config();
  config.tenants[0].quotas.max_outstanding_runs = 3;
  Dispatcher dispatcher(config);

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 4;
  std::vector<std::thread> clients;
  std::atomic<int> accepted{0};
  std::atomic<int> quota_rejected{0};
  std::atomic<int> other{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&dispatcher, &accepted, &quota_rejected, &other] {
      LoopbackClient client(dispatcher);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const Json response = decode_response(client.call(submit_line("acme", 2)));
        const std::string type = text(response, "type");
        if (type == "submitted") {
          accepted.fetch_add(1);
          // Immediately consume the report so slots recycle under load.
          (void)client.call(report_line("acme", field(response, "run_id")));
        } else if (text(response, "code") == "quota_exceeded") {
          quota_rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(accepted.load() + quota_rejected.load(),
            static_cast<int>(kThreads * kPerThread));
  EXPECT_GT(accepted.load(), 0);

  LoopbackClient client(dispatcher);
  const Json stats = decode_response(client.call("{\"type\":\"stats\",\"tenant\":\"acme\"}"));
  // The acceptance criterion: peak outstanding never exceeded the quota,
  // rejections were typed, and the account balances the accepted work.
  EXPECT_LE(field(stats, "peak_outstanding"), 3.0);
  EXPECT_LE(field(stats, "engine_peak_outstanding"), 3.0);
  EXPECT_DOUBLE_EQ(field(stats, "runs_completed"), static_cast<double>(accepted.load()));
  EXPECT_DOUBLE_EQ(field(stats, "runs_rejected"), static_cast<double>(quota_rejected.load()));
  EXPECT_DOUBLE_EQ(field(stats, "outstanding"), 0.0);
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

TEST(ServiceShutdown, DrainsInFlightRunsAndKeepsAnsweringStats) {
  Dispatcher dispatcher(small_config());
  LoopbackClient client(dispatcher);
  const Json submitted = decode_response(client.call(submit_line("acme", 5)));
  ASSERT_EQ(text(submitted, "type"), "submitted");

  const Json ack = decode_response(client.call("{\"type\":\"shutdown\"}"));
  EXPECT_EQ(text(ack, "type"), "shutdown_ok");
  // Drained and billed: the in-flight run completed, its slot retired.
  const Json stats = decode_response(client.call("{\"type\":\"stats\",\"tenant\":\"acme\"}"));
  EXPECT_DOUBLE_EQ(field(stats, "runs_completed"), 1.0);
  EXPECT_DOUBLE_EQ(field(stats, "outstanding"), 0.0);
  // New work is refused, typed; the terminal report is still readable.
  EXPECT_EQ(text(decode_response(client.call(submit_line("acme", 2))), "code"),
            "shutting_down");
  EXPECT_EQ(text(decode_response(client.call(report_line("acme", field(submitted, "run_id")))),
                 "status"),
            "done");
  // Idempotent.
  EXPECT_EQ(text(decode_response(client.call("{\"type\":\"shutdown\"}")), "type"),
            "shutdown_ok");
}

// ---------------------------------------------------------------------------
// Socket server
// ---------------------------------------------------------------------------

TEST(ServiceServer, RoundTripsTheProtocolOverARealSocket) {
  Dispatcher dispatcher(small_config());
  Server server(dispatcher);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  const Json submitted = decode_response(client.call(submit_line("acme", 4)));
  ASSERT_EQ(text(submitted, "type"), "submitted") << submitted.dump();
  const Json report = decode_response(client.call(report_line("acme", field(submitted, "run_id"))));
  ASSERT_EQ(text(report, "status"), "done") << report.dump();

  engine::Engine direct;
  const bem::AnalysisResult reference = direct.analyze(direct_model(4));
  EXPECT_NEAR(field(report, "equivalent_resistance"), reference.equivalent_resistance,
              1e-12 * reference.equivalent_resistance);
  server.stop();
}

TEST(ServiceServer, ManyConnectionsShareOneDispatcher) {
  Dispatcher dispatcher(small_config());
  Server server(dispatcher);

  constexpr std::size_t kClients = 5;
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &done] {
      Client client(server.port());
      const Json submitted = decode_response(client.call(submit_line("acme", 2)));
      if (text(submitted, "type") != "submitted") return;
      const Json report =
          decode_response(client.call(report_line("acme", field(submitted, "run_id"))));
      if (text(report, "status") == "done") done.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(done.load(), static_cast<int>(kClients));
  EXPECT_GE(server.connections_accepted(), kClients);
  server.stop();
}

TEST(ServiceServer, GarbageFramesGetTypedErrorsAndTheConnectionSurvives) {
  Dispatcher dispatcher(small_config());
  Server server(dispatcher);
  Client client(server.port());

  EXPECT_EQ(text(decode_response(client.call("this is not json")), "code"),
            "malformed_request");
  EXPECT_EQ(text(decode_response(client.call("{\"type\":\"warp_drive\"}")), "code"),
            "malformed_request");
  // The same connection still serves valid requests afterwards.
  EXPECT_EQ(text(decode_response(client.call(submit_line("acme", 2))), "type"), "submitted");
  server.stop();
}

TEST(ServiceServer, SplitFramesAcrossWritesAreReassembled) {
  Dispatcher dispatcher(small_config());
  Server server(dispatcher);
  Client client(server.port());

  const std::string line = submit_line("acme", 2) + "\n";
  client.send_raw(line.substr(0, 25));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.send_raw(line.substr(25));
  EXPECT_EQ(text(decode_response(client.read_line()), "type"), "submitted");
  server.stop();
}

TEST(ServiceServer, StopWithLiveClientsIsPromptAndSafe) {
  Dispatcher dispatcher(small_config());
  auto server = std::make_unique<Server>(dispatcher);
  Client client(server->port());
  // A connected, idle client must not block stop(); its recv is shut down.
  server->stop();
  EXPECT_THROW((void)client.call(submit_line("acme", 2)), ebem::IoError);
  server.reset();
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(ServiceConfigValidation, RejectsContradictoryConfigs) {
  ServiceConfig empty;
  EXPECT_THROW(Dispatcher dispatcher(empty), ebem::InvalidArgument);

  ServiceConfig duplicate = small_config();
  duplicate.tenants.push_back(duplicate.tenants[0]);
  EXPECT_THROW(Dispatcher dispatcher(duplicate), ebem::InvalidArgument);

  ServiceConfig bad_gpr = small_config();
  bad_gpr.tenants[0].gpr = 0.0;
  EXPECT_THROW(Dispatcher dispatcher(bad_gpr), ebem::InvalidArgument);
}

}  // namespace
}  // namespace ebem::service

// The geometric DoF ordering layer: la::Permutation unit semantics, RCB
// cluster-tree invariants (leaves partition the DoF set and coincide with
// tile rows, boxes contain their members), identity-permutation bitwise
// parity with the unordered solve paths, and end-to-end ordered-vs-unordered
// analysis parity on uniform and graded grids (ordering with epsilon == 0
// stores the same dense matrix under relabeled rows, so results must agree
// to solver noise, not to a compression tolerance).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/clustering.hpp"
#include "src/bem/solver.hpp"
#include "src/common/error.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/permutation.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem {
namespace {

bem::BemModel uniform_grid_model(std::size_t cells, double side) {
  geom::RectGridSpec spec;
  spec.length_x = side;
  spec.length_y = side;
  spec.cells_x = cells;
  spec.cells_y = cells;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)),
                       soil::LayeredSoil::uniform(0.016));
}

bem::BemModel graded_grid_model(std::size_t cells, double side, double grading) {
  geom::GradedRectGridSpec spec;
  spec.length_x = side;
  spec.length_y = side;
  spec.cells_x = cells;
  spec.cells_y = cells;
  spec.grading = grading;
  return bem::BemModel(geom::Mesh::build(geom::make_graded_rect_grid(spec)),
                       soil::LayeredSoil::uniform(0.016));
}

/// A deterministic non-trivial permutation of [0, n): bit-reversal-flavored
/// shuffle (multiply by an odd constant mod n would not be a bijection for
/// every n; swapping strided positions is).
std::vector<std::size_t> shuffled_map(std::size_t n) {
  std::vector<std::size_t> map(n);
  std::iota(map.begin(), map.end(), std::size_t{0});
  for (std::size_t i = 0; i + 1 < n; i += 2) std::swap(map[i], map[i + 1]);
  std::rotate(map.begin(), map.begin() + n / 3, map.end());
  return map;
}

// ---------------------------------------------------------------------------
// la::Permutation unit semantics
// ---------------------------------------------------------------------------

TEST(Permutation, IdentityMapsEveryIndexToItself) {
  const la::Permutation identity = la::Permutation::identity(7);
  EXPECT_EQ(identity.size(), 7u);
  EXPECT_TRUE(identity.is_identity());
  for (std::size_t i = 0; i < identity.size(); ++i) {
    EXPECT_EQ(identity.to_internal(i), i);
    EXPECT_EQ(identity.to_external(i), i);
  }
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  EXPECT_EQ(identity.gather(v), v);
  EXPECT_EQ(identity.scatter(v), v);
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(la::Permutation({0, 0, 1}), ebem::InvalidArgument);  // duplicate
  EXPECT_THROW(la::Permutation({0, 3, 1}), ebem::InvalidArgument);  // out of range
}

TEST(Permutation, GatherFollowsTheInternalOrder) {
  // external -> internal: 0->2, 1->0, 2->1. Internal slot i must read the
  // external value whose DoF maps there.
  const la::Permutation perm({2, 0, 1});
  EXPECT_FALSE(perm.is_identity());
  const std::vector<double> external = {10.0, 20.0, 30.0};
  const std::vector<double> internal = perm.gather(external);
  EXPECT_EQ(internal, (std::vector<double>{20.0, 30.0, 10.0}));
  EXPECT_EQ(perm.scatter(internal), external);
}

TEST(Permutation, GatherScatterRoundTripIsBitwise) {
  const std::size_t n = 97;  // odd size: exercises the unpaired tail
  const la::Permutation perm(shuffled_map(n));
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(static_cast<double>(i) + 0.5);
  EXPECT_EQ(perm.scatter(perm.gather(v)), v);
  EXPECT_EQ(perm.gather(perm.scatter(v)), v);
}

TEST(Permutation, BlockGatherScatterRoundTripIsBitwise) {
  const std::size_t n = 33;
  const std::size_t num_rhs = 3;
  const la::Permutation perm(shuffled_map(n));
  std::vector<double> block(n * num_rhs);
  for (std::size_t i = 0; i < block.size(); ++i) block[i] = std::cos(static_cast<double>(i));
  const std::vector<double> gathered = perm.gather_block(block, num_rhs);
  EXPECT_EQ(perm.scatter_block(gathered, num_rhs), block);
  // Row-wise semantics: internal row i carries external row to_external(i).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < num_rhs; ++k) {
      EXPECT_EQ(gathered[i * num_rhs + k], block[perm.to_external(i) * num_rhs + k]);
    }
  }
}

TEST(Permutation, SizeMismatchThrows) {
  const la::Permutation perm(shuffled_map(8));
  const std::vector<double> wrong(7, 1.0);
  EXPECT_THROW((void)perm.gather(wrong), ebem::InvalidArgument);
  EXPECT_THROW((void)perm.scatter(wrong), ebem::InvalidArgument);
  EXPECT_THROW((void)perm.gather_block(wrong, 7), ebem::InvalidArgument);
}

// ---------------------------------------------------------------------------
// RCB cluster-tree invariants
// ---------------------------------------------------------------------------

class ClusteringGrids : public ::testing::TestWithParam<bool> {
 protected:
  [[nodiscard]] bem::BemModel model() const {
    return GetParam() ? graded_grid_model(9, 45.0, 2.0) : uniform_grid_model(9, 45.0);
  }
};

TEST_P(ClusteringGrids, LeavesAreExactlyTheTileRows) {
  const bem::BemModel model = this->model();
  const std::size_t tile = 16;
  const std::size_t n = model.dof_count(bem::BasisKind::kLinear);
  const bem::GeometricOrdering ordering =
      bem::geometric_ordering(model, bem::BasisKind::kLinear, tile);

  const std::size_t expected_leaves = (n + tile - 1) / tile;
  ASSERT_EQ(ordering.tree.leaves.size(), expected_leaves);
  EXPECT_EQ(ordering.stats.cluster_leaves, expected_leaves);
  EXPECT_GT(ordering.stats.tree_depth, 0u);

  // Each leaf covers exactly one la::TileLayout tile row, in order.
  for (std::size_t t = 0; t < expected_leaves; ++t) {
    const bem::ClusterNode& leaf = ordering.tree.nodes[ordering.tree.leaves[t]];
    EXPECT_TRUE(leaf.is_leaf());
    EXPECT_EQ(leaf.begin, t * tile);
    EXPECT_EQ(leaf.end, std::min(n, (t + 1) * tile));
  }
}

TEST_P(ClusteringGrids, TreePartitionsTheDofSetAndBoxesContainMembers) {
  const bem::BemModel model = this->model();
  const std::size_t n = model.dof_count(bem::BasisKind::kLinear);
  const bem::GeometricOrdering ordering =
      bem::geometric_ordering(model, bem::BasisKind::kLinear, 16);
  const std::vector<geom::Vec3> positions = bem::dof_positions(model, bem::BasisKind::kLinear);
  ASSERT_EQ(positions.size(), n);
  ASSERT_EQ(ordering.permutation.size(), n);

  ASSERT_FALSE(ordering.tree.nodes.empty());
  EXPECT_EQ(ordering.tree.nodes[0].begin, 0u);
  EXPECT_EQ(ordering.tree.nodes[0].end, n);

  for (std::size_t id = 0; id < ordering.tree.nodes.size(); ++id) {
    const bem::ClusterNode& node = ordering.tree.nodes[id];
    ASSERT_LT(node.begin, node.end);
    if (!node.is_leaf()) {
      // Children appear after the parent and split its range exactly.
      ASSERT_GT(node.left, id);
      ASSERT_GT(node.right, id);
      const bem::ClusterNode& left = ordering.tree.nodes[node.left];
      const bem::ClusterNode& right = ordering.tree.nodes[node.right];
      EXPECT_EQ(left.begin, node.begin);
      EXPECT_EQ(left.end, right.begin);
      EXPECT_EQ(right.end, node.end);
    }
    // The box bounds every member DoF's support point.
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const geom::Vec3& p = positions[ordering.permutation.to_external(i)];
      EXPECT_GE(p.x, node.box_min.x);
      EXPECT_LE(p.x, node.box_max.x);
      EXPECT_GE(p.y, node.box_min.y);
      EXPECT_LE(p.y, node.box_max.y);
      EXPECT_GE(p.z, node.box_min.z);
      EXPECT_LE(p.z, node.box_max.z);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UniformAndGraded, ClusteringGrids, ::testing::Values(false, true),
                         [](const auto& info) { return info.param ? "graded" : "uniform"; });

TEST(Clustering, OrderingIsDeterministicAcrossCalls) {
  const bem::BemModel model = uniform_grid_model(8, 40.0);
  const bem::GeometricOrdering a = bem::geometric_ordering(model, bem::BasisKind::kLinear, 32);
  const bem::GeometricOrdering b = bem::geometric_ordering(model, bem::BasisKind::kLinear, 32);
  EXPECT_EQ(a.permutation, b.permutation);
  EXPECT_EQ(a.tree.nodes.size(), b.tree.nodes.size());
}

TEST(Clustering, ConstantBasisSupportsAreElementMidpoints) {
  const bem::BemModel model = uniform_grid_model(4, 20.0);
  const std::vector<geom::Vec3> positions =
      bem::dof_positions(model, bem::BasisKind::kConstant);
  ASSERT_EQ(positions.size(), model.dof_count(bem::BasisKind::kConstant));
  for (std::size_t e = 0; e < model.element_count(); ++e) {
    const bem::BemElement& element = model.elements()[e];
    const geom::Vec3 mid = 0.5 * (element.a + element.b);
    const std::size_t dof = model.global_dof(bem::BasisKind::kConstant, e, 0);
    EXPECT_DOUBLE_EQ(positions[dof].x, mid.x);
    EXPECT_DOUBLE_EQ(positions[dof].y, mid.y);
    EXPECT_DOUBLE_EQ(positions[dof].z, mid.z);
  }
}

// ---------------------------------------------------------------------------
// Identity-permutation bitwise parity with the unordered paths
// ---------------------------------------------------------------------------

TEST(Ordering, IdentityOrderingSolvesBitwiseLikeUnordered) {
  const bem::BemModel model = uniform_grid_model(6, 30.0);
  const bem::AssemblyResult assembled = bem::assemble(model);
  const std::vector<double> plain = bem::solve(assembled.matrix, assembled.rhs);

  const la::Permutation identity = la::Permutation::identity(assembled.rhs.size());
  bem::SolveExecution execution;
  execution.ordering = &identity;
  const std::vector<double> ordered =
      bem::solve(assembled.matrix, assembled.rhs, {}, execution, nullptr);
  ASSERT_EQ(ordered.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) EXPECT_EQ(ordered[i], plain[i]);
}

TEST(Ordering, FactoredSystemIdentityOrderingIsBitwise) {
  const bem::BemModel model = uniform_grid_model(5, 25.0);
  const bem::AssemblyResult assembled = bem::assemble(model);
  const auto identity =
      std::make_shared<const la::Permutation>(la::Permutation::identity(assembled.rhs.size()));

  const engine::FactoredSystem plain(la::Cholesky(assembled.matrix), assembled.rhs, nullptr,
                                     nullptr);
  const engine::FactoredSystem ordered(la::Cholesky(assembled.matrix), assembled.rhs, nullptr,
                                       nullptr, identity);
  EXPECT_EQ(ordered.solve(), plain.solve());

  const std::size_t n = assembled.rhs.size();
  std::vector<double> block(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    block[i * 2] = assembled.rhs[i];
    block[i * 2 + 1] = 0.5 * assembled.rhs[i] + 1e-3;
  }
  EXPECT_EQ(ordered.solve_many(block, 2), plain.solve_many(block, 2));
}

// ---------------------------------------------------------------------------
// End-to-end ordered-vs-unordered analysis parity
// ---------------------------------------------------------------------------

/// Ordered analysis with epsilon == 0: same dense matrix under relabeled
/// rows. Cholesky pivots in a different order, so parity is to solver
/// round-off (1e-12), not bitwise.
void expect_ordered_analysis_parity(const bem::BemModel& model) {
  engine::Engine plain_engine;
  const bem::AnalysisResult plain = plain_engine.analyze(model);

  engine::ExecutionConfig config;
  config.storage.tile_size = 32;
  config.storage.compression.ordering = la::DofOrdering::kGeometric;
  engine::Engine ordered_engine(config);
  PhaseReport report;
  const bem::AnalysisResult ordered = ordered_engine.analyze(model, {}, &report);

  ASSERT_EQ(ordered.sigma.size(), plain.sigma.size());
  const double r_ref = plain.equivalent_resistance;
  EXPECT_NEAR(ordered.equivalent_resistance, r_ref, 1e-12 * std::abs(r_ref));
  double sigma_scale = 0.0;
  for (const double s : plain.sigma) sigma_scale = std::max(sigma_scale, std::abs(s));
  for (std::size_t i = 0; i < plain.sigma.size(); ++i) {
    EXPECT_NEAR(ordered.sigma[i], plain.sigma[i], 1e-12 * sigma_scale);
  }

  // The ordering evidence must land on the run report.
  const std::size_t n = model.dof_count(bem::BasisKind::kLinear);
  EXPECT_EQ(report.counter(engine::kOrderingsCounter), 1.0);
  EXPECT_EQ(report.counter(engine::kOrderingLeavesCounter),
            static_cast<double>((n + 31) / 32));
  EXPECT_EQ(ordered.ordering_stats.cluster_leaves, (n + 31) / 32);
}

TEST(Ordering, OrderedAnalysisMatchesUnorderedOnUniformGrid) {
  expect_ordered_analysis_parity(uniform_grid_model(8, 40.0));
}

TEST(Ordering, OrderedAnalysisMatchesUnorderedOnGradedGrid) {
  expect_ordered_analysis_parity(graded_grid_model(8, 40.0, 2.5));
}

TEST(Ordering, OrderedFactorHandleSpeaksExternalOrder) {
  const bem::BemModel model = uniform_grid_model(7, 35.0);

  engine::Engine plain_engine;
  const engine::FactoredSystem plain = plain_engine.factor(model);

  engine::ExecutionConfig config;
  config.storage.tile_size = 16;
  config.storage.compression.ordering = la::DofOrdering::kGeometric;
  engine::Engine ordered_engine(config);
  const engine::FactoredSystem ordered = ordered_engine.factor(model);

  // rhs() is assembled in external order on both handles.
  ASSERT_EQ(ordered.rhs().size(), plain.rhs().size());
  for (std::size_t i = 0; i < plain.rhs().size(); ++i) {
    EXPECT_NEAR(ordered.rhs()[i], plain.rhs()[i], 1e-14 * std::abs(plain.rhs()[i]) + 1e-300);
  }

  const std::vector<double> x_plain = plain.solve();
  const std::vector<double> x_ordered = ordered.solve();
  double scale = 0.0;
  for (const double x : x_plain) scale = std::max(scale, std::abs(x));
  for (std::size_t i = 0; i < x_plain.size(); ++i) {
    EXPECT_NEAR(x_ordered[i], x_plain[i], 1e-12 * scale);
  }
}

TEST(Ordering, AssemblyCarriesTheOrderingOnlyWhenAsked) {
  const bem::BemModel model = uniform_grid_model(6, 30.0);

  engine::Engine plain_engine;
  const bem::AssemblyResult plain = plain_engine.assemble(model);
  EXPECT_EQ(plain.ordering, nullptr);
  EXPECT_EQ(plain.ordering_stats.cluster_leaves, 0u);

  engine::ExecutionConfig config;
  config.storage.tile_size = 16;
  config.storage.compression.ordering = la::DofOrdering::kGeometric;
  engine::Engine ordered_engine(config);
  const bem::AssemblyResult ordered = ordered_engine.assemble(model);
  ASSERT_NE(ordered.ordering, nullptr);
  EXPECT_EQ(ordered.ordering->size(), ordered.rhs.size());
  EXPECT_FALSE(ordered.ordering->is_identity());
  EXPECT_GT(ordered.ordering_stats.cluster_leaves, 0u);

  // Same physics, relabeled rows: the ordered matrix holds the plain
  // matrix's entries at permuted positions.
  const la::Permutation& perm = *ordered.ordering;
  const std::size_t n = plain.rhs.size();
  for (std::size_t i = 0; i < n; i += 7) {
    for (std::size_t j = 0; j <= i; j += 5) {
      EXPECT_DOUBLE_EQ(ordered.matrix(perm.to_internal(i), perm.to_internal(j)),
                       plain.matrix(i, j));
    }
  }
}

}  // namespace
}  // namespace ebem

// Schedule simulator: the deterministic model behind Fig. 6.1 and
// Tables 6.2/6.3 (see DESIGN.md §4.1 for the substitution rationale).
#include <gtest/gtest.h>

#include <numeric>

#include "src/parallel/schedule_sim.hpp"

namespace ebem::par {
namespace {

TEST(TriangularCosts, MatchesPaperLoadProfile) {
  const std::vector<double> costs = triangular_costs(4, 2.0);
  EXPECT_EQ(costs, (std::vector<double>{8.0, 6.0, 4.0, 2.0}));
}

TEST(ScheduleSim, OneThreadMakespanEqualsSequentialSum) {
  const std::vector<double> costs = triangular_costs(100);
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  for (const Schedule schedule : {Schedule::static_blocked(), Schedule::dynamic(1),
                                  Schedule::guided(1), Schedule::static_chunked(16)}) {
    const SimResult result = simulate_schedule(costs, 1, schedule);
    EXPECT_DOUBLE_EQ(result.makespan, total);
  }
}

TEST(ScheduleSim, EmptyTaskListIsFree) {
  const SimResult result = simulate_schedule({}, 4, Schedule::dynamic(1));
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.chunks_dispatched, 0u);
}

TEST(ScheduleSim, MakespanNeverBelowCriticalPathOrMeanLoad) {
  const std::vector<double> costs = triangular_costs(408);  // Barbera's M
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  for (std::size_t p : {2u, 4u, 8u, 16u, 64u}) {
    for (const Schedule schedule :
         {Schedule::static_blocked(), Schedule::static_chunked(1), Schedule::dynamic(1),
          Schedule::guided(1), Schedule::dynamic(64)}) {
      const SimResult result = simulate_schedule(costs, p, schedule);
      EXPECT_GE(result.makespan, total / static_cast<double>(p) - 1e-9);
      EXPECT_GE(result.makespan, costs.front() - 1e-9);  // longest single task
    }
  }
}

TEST(ScheduleSim, DynamicOneIsNearOptimalOnTriangularLoad) {
  // The paper's best schedule: Dynamic,1 achieves speed-up ~= p.
  const std::vector<double> costs = triangular_costs(408);
  for (std::size_t p : {2u, 4u, 8u}) {
    const double speedup = simulated_speedup(costs, p, Schedule::dynamic(1));
    EXPECT_GT(speedup, 0.97 * static_cast<double>(p)) << p;
    EXPECT_LE(speedup, static_cast<double>(p) + 1e-9) << p;
  }
}

TEST(ScheduleSim, DefaultStaticSuffersOnLinearlyDecreasingCosts) {
  // Contiguous block partition gives the first thread all the long columns:
  // speed-up caps near total / (sum of the first block) < p. The paper's
  // Table 6.2 "Static" row shows exactly this (4.38 at 8 processors).
  const std::vector<double> costs = triangular_costs(408);
  const double speedup8 = simulate_schedule(costs, 8, Schedule::static_blocked()).makespan;
  const double ideal8 = std::accumulate(costs.begin(), costs.end(), 0.0) / 8.0;
  EXPECT_GT(speedup8, 1.7 * ideal8);  // markedly worse than ideal
}

TEST(ScheduleSim, StaticChunkOneInterleavesWell) {
  // Round-robin chunk 1 balances a linear profile nearly perfectly
  // (Table 6.2: Static,1 reaches 7.99 at 8 processors).
  const std::vector<double> costs = triangular_costs(408);
  const double speedup = simulated_speedup(costs, 8, Schedule::static_chunked(1));
  EXPECT_GT(speedup, 7.8);
}

TEST(ScheduleSim, LargeChunksStarveThreadsAtHighProcessorCounts) {
  // 408 tasks, chunk 64 -> only 7 chunks; at 8 threads one thread idles and
  // the makespan is bounded by the largest chunk ("some processors do not
  // get any work", paper §6.2; Table 6.2 Dynamic,64 stalls at 3.55).
  const std::vector<double> costs = triangular_costs(408);
  const double speedup8 = simulated_speedup(costs, 8, Schedule::dynamic(64));
  EXPECT_LT(speedup8, 4.5);
  const double speedup4 = simulated_speedup(costs, 4, Schedule::dynamic(64));
  EXPECT_GT(speedup4, speedup8 * 0.75);  // 4 threads suffer much less
}

TEST(ScheduleSim, GuidedTracksDynamicOnTriangularLoad) {
  // Table 6.2 shows Guided,1 within a few percent of Dynamic,1; the
  // remaining/(2p) chunk rule keeps the first chunk's cost below the ideal
  // per-thread load even though early columns are the most expensive.
  const std::vector<double> costs = triangular_costs(408);
  for (std::size_t p : {2u, 4u, 8u}) {
    const double guided = simulated_speedup(costs, p, Schedule::guided(1));
    const double dynamic = simulated_speedup(costs, p, Schedule::dynamic(1));
    EXPECT_NEAR(guided, dynamic, 0.15 * dynamic) << p;
  }
}

TEST(ScheduleSim, SpeedupSaturatesBeyondTaskParallelism) {
  // With M tasks the speed-up cannot exceed total/max-task regardless of p.
  const std::vector<double> costs = triangular_costs(32);
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  const double cap = total / costs.front();
  const double speedup = simulated_speedup(costs, 64, Schedule::dynamic(1));
  EXPECT_LE(speedup, cap + 1e-9);
  EXPECT_GT(speedup, 0.8 * cap);
}

TEST(ScheduleSim, PerChunkOverheadPenalizesFineSchedules) {
  const std::vector<double> costs(1000, 1.0);
  const SimOptions overhead{.per_chunk_overhead = 0.5};
  const double fine = simulated_speedup(costs, 4, Schedule::dynamic(1), overhead);
  const double coarse = simulated_speedup(costs, 4, Schedule::dynamic(50), overhead);
  EXPECT_GT(coarse, fine);
}

TEST(ScheduleSim, ChunkCountsAreExact) {
  const std::vector<double> costs(100, 1.0);
  EXPECT_EQ(simulate_schedule(costs, 4, Schedule::dynamic(1)).chunks_dispatched, 100u);
  EXPECT_EQ(simulate_schedule(costs, 4, Schedule::dynamic(10)).chunks_dispatched, 10u);
  EXPECT_EQ(simulate_schedule(costs, 4, Schedule::static_blocked()).chunks_dispatched, 4u);
}

TEST(ScheduleSim, BusyTimesAccountForAllWork) {
  const std::vector<double> costs = triangular_costs(50);
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  const SimResult result = simulate_schedule(costs, 4, Schedule::static_chunked(2));
  const double busy =
      std::accumulate(result.thread_busy_time.begin(), result.thread_busy_time.end(), 0.0);
  EXPECT_NEAR(busy, total, 1e-9);
}

TEST(ScheduleSim, MoreThreadsNeverSlowerUnderDynamicOne) {
  const std::vector<double> costs = triangular_costs(200);
  double previous = simulate_schedule(costs, 1, Schedule::dynamic(1)).makespan;
  for (std::size_t p : {2u, 4u, 8u, 16u, 32u}) {
    const double makespan = simulate_schedule(costs, p, Schedule::dynamic(1)).makespan;
    EXPECT_LE(makespan, previous + 1e-9) << p;
    previous = makespan;
  }
}

}  // namespace
}  // namespace ebem::par

// Micro-bench: direct Cholesky vs diagonally preconditioned CG (paper §4.3:
// "iterative or semiiterative techniques will be preferable ... the cost of
// the system resolution should never prevail").
#include <benchmark/benchmark.h>

#include <random>

#include "src/ebem.hpp"

namespace {

using ebem::la::SymMatrix;

/// SPD matrix with BEM-like structure: strong diagonal, smooth positive
/// off-diagonal decay (1/r-ish coupling).
SymMatrix bem_like_matrix(std::size_t n) {
  SymMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      a(i, j) = 1.0 / (1.0 + 0.5 * static_cast<double>(i - j));
    }
    a(i, i) = 10.0 + 0.01 * static_cast<double>(i % 7);
  }
  return a;
}

void BM_Cholesky(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SymMatrix a = bem_like_matrix(n);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    const ebem::la::Cholesky factor(a);
    benchmark::DoNotOptimize(factor.solve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Complexity(benchmark::oNCubed);

void BM_Pcg(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SymMatrix a = bem_like_matrix(n);
  std::vector<double> b(n, 1.0);
  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto result = ebem::la::conjugate_gradient(a, b, {.tolerance = 1e-12});
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.x.data());
  }
  state.counters["iters"] = static_cast<double>(iterations);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Pcg)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Complexity(benchmark::oNSquared);

void BM_SymMatVec(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SymMatrix a = bem_like_matrix(n);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SymMatVec)->Arg(256)->Arg(1024);

}  // namespace

// Ablation for the paper's §4.3 cost model: matrix generation is
// O(M^2 p^2 / 2) and dominates small/medium problems; direct solving is
// O(N^3 / 3) and would prevail for large ones — which is why the paper
// pairs parallel generation with a PCG solver whose cost "should never
// prevail".
//
// This bench measures generation vs solve time across grid sizes for both
// solvers and reports the generation share.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  std::printf("Matrix generation vs linear solve — uniform soil, growing grids\n\n");
  io::Table table({"cells", "N (dof)", "gen (s)", "chol (s)", "pcg (s)", "pcg iters",
                   "gen share vs chol"});

  for (std::size_t cells : {4u, 8u, 12u, 16u, 20u}) {
    geom::RectGridSpec spec;
    spec.length_x = 10.0 * static_cast<double>(cells);
    spec.length_y = spec.length_x;
    spec.cells_x = cells;
    spec.cells_y = cells;
    const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)),
                              soil::LayeredSoil::uniform(0.02));

    WallTimer generation_timer;
    const bem::AssemblyResult system = bem::assemble(model, {});
    const double generation = generation_timer.seconds();

    WallTimer cholesky_timer;
    bem::SolveStats direct_stats{};
    (void)bem::solve(system.matrix, system.rhs, {.kind = bem::SolverKind::kCholesky},
                     &direct_stats);
    const double cholesky = cholesky_timer.seconds();

    WallTimer pcg_timer;
    bem::SolveStats pcg_stats{};
    (void)bem::solve(system.matrix, system.rhs,
                     {.kind = bem::SolverKind::kPcg, .cg_tolerance = 1e-12}, &pcg_stats);
    const double pcg = pcg_timer.seconds();

    table.add_row({std::to_string(cells) + "x" + std::to_string(cells),
                   std::to_string(system.matrix.size()), io::Table::num(generation, 4),
                   io::Table::num(cholesky, 4), io::Table::num(pcg, 4),
                   std::to_string(pcg_stats.iterations),
                   io::Table::num(100.0 * generation / (generation + cholesky), 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shapes to check: generation grows ~N^2 and dominates at these sizes\n"
              "(uniform soil is the *cheapest* generation case — any layered model\n"
              "multiplies the generation column, never the solve columns); Cholesky\n"
              "grows ~N^3 and closes the gap as N rises; PCG stays far below both,\n"
              "with iteration counts nearly flat in N (the paper's §4.3 conclusion).\n");
  return 0;
}

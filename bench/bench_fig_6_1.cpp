// Fig. 6.1: speed-up vs processor count (1..64) for outer-loop vs
// inner-loop parallelization of the matrix generation.
//
// Outer: the measured per-column costs are scheduled directly (one task per
// column of the element-pair triangle). Inner: each column is an individual
// parallel loop over its rows with a synchronization point per column, which
// is where the granularity penalty the paper describes comes from. A small
// per-chunk dispatch overhead (measured scale, ~2 us) is charged in both
// models; it is negligible for the 400-odd outer tasks and material for the
// ~85k inner tasks.
#include <cstdio>

#include "src/ebem.hpp"

namespace {

double inner_loop_makespan(const std::vector<double>& column_costs, std::size_t p,
                           const ebem::par::SimOptions& overhead) {
  // Columns run sequentially; each column's rows are dynamically scheduled.
  const std::size_t m = column_costs.size();
  double total = 0.0;
  for (std::size_t beta = 0; beta < m; ++beta) {
    const std::size_t rows = m - beta;
    const double row_cost = column_costs[beta] / static_cast<double>(rows);
    const std::vector<double> rows_costs(rows, row_cost);
    total += ebem::par::simulate_schedule(rows_costs, p, ebem::par::Schedule::dynamic(1),
                                          overhead)
                 .makespan;
  }
  return total;
}

}  // namespace

int main() {
  using namespace ebem;
  const cad::BarberaCase barbera = cad::barbera_case();

  cad::DesignOptions options;
  options.analysis.gpr = barbera.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;
  engine::ExecutionConfig config;
  config.measure_column_costs = true;
  // Cache off: the measured column costs must reflect the real integration
  // work the schedule simulator is calibrated against.
  config.use_congruence_cache = false;
  engine::Engine engine(config);
  cad::GroundingSystem system(barbera.conductors, barbera.two_layer_soil, options);
  const cad::Report& report = system.analyze(engine);
  const std::vector<double>& costs = report.column_costs;

  double sequential = 0.0;
  for (double c : costs) sequential += c;
  const par::SimOptions overhead{.per_chunk_overhead = 2e-6};

  std::printf("Fig. 6.1 — Barbera two-layer: speed-up vs number of processors\n");
  std::printf("(outer-loop = continuous line in the paper; inner-loop = dashed)\n\n");
  io::Table table({"p", "outer-loop", "inner-loop"});
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    const double outer =
        par::simulate_schedule(costs, p, par::Schedule::dynamic(1), overhead).makespan;
    const double inner = inner_loop_makespan(costs, p, overhead);
    table.add_row({std::to_string(p), io::Table::num(sequential / outer, 2),
                   io::Table::num(sequential / inner, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape to check vs the paper: outer tracks the ideal line closely up to\n"
              "high processor counts; inner falls away as granularity shrinks (the last\n"
              "columns have fewer rows than processors) and per-column syncs accumulate.\n");
  return 0;
}

// Table 6.2: speed-up of the outer-loop parallelization for every schedule
// and chunk the paper studies, at 1/2/4/8 processors.
//
// Method (DESIGN.md §4.1): the per-column costs of the Barbera two-layer
// matrix generation are *measured* sequentially, then replayed through an
// exact model of static/dynamic/guided chunked scheduling. This host has a
// single core, so wall-clock speed-ups beyond 1 are unobservable; the
// schedule-induced makespans are the machine-independent content of the
// table. A real threaded run is included as a numerical cross-check.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BarberaCase barbera = cad::barbera_case();

  cad::DesignOptions options;
  options.analysis.gpr = barbera.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;
  engine::ExecutionConfig measure_config;
  measure_config.measure_column_costs = true;
  // Cache off: the measured column costs must reflect the real integration
  // work the schedule simulator is calibrated against.
  measure_config.use_congruence_cache = false;
  engine::Engine measure_engine(measure_config);
  cad::GroundingSystem system(barbera.conductors, barbera.two_layer_soil, options);
  const cad::Report& report = system.analyze(measure_engine);
  const std::vector<double>& costs = report.column_costs;
  std::printf("Table 6.2 — Barbera two-layer, outer-loop parallelization speed-ups\n");
  std::printf("(measured %zu column costs, simulated schedules; paper values in header)\n\n",
              costs.size());

  const struct {
    par::Schedule schedule;
    double paper[4];  // paper's 1, 2, 4, 8 processor speed-ups
  } rows[] = {
      {par::Schedule::static_blocked(), {1.01, 1.32, 2.32, 4.38}},
      {par::Schedule::static_chunked(64), {1.02, 1.76, 1.86, 3.55}},
      {par::Schedule::static_chunked(16), {1.02, 1.94, 3.59, 6.23}},
      {par::Schedule::static_chunked(4), {1.01, 2.01, 3.96, 7.36}},
      {par::Schedule::static_chunked(1), {1.02, 2.03, 4.03, 7.99}},
      {par::Schedule::dynamic(64), {1.02, 2.02, 3.56, 3.55}},
      {par::Schedule::dynamic(16), {1.02, 2.02, 4.08, 7.87}},
      {par::Schedule::dynamic(4), {1.01, 2.04, 3.99, 7.90}},
      {par::Schedule::dynamic(1), {1.02, 2.03, 4.09, 8.05}},
      {par::Schedule::guided(64), {1.02, 1.97, 3.56, 3.56}},
      {par::Schedule::guided(16), {1.02, 1.99, 3.96, 8.03}},
      {par::Schedule::guided(4), {1.02, 2.01, 4.11, 7.93}},
      {par::Schedule::guided(1), {1.02, 2.07, 3.95, 8.38}},
  };

  io::Table table({"Schedule ()", "p=1", "p=2", "p=4", "p=8", "paper p=8"});
  for (const auto& row : rows) {
    std::vector<std::string> cells{par::to_string(row.schedule)};
    for (std::size_t p : {1u, 2u, 4u, 8u}) {
      cells.push_back(io::Table::num(par::simulated_speedup(costs, p, row.schedule), 2));
    }
    cells.push_back(io::Table::num(row.paper[3], 2));
    table.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Real threaded cross-check: same numerics, identical matrix.
  engine::ExecutionConfig threaded_config;
  threaded_config.num_threads = 2;
  threaded_config.schedule = par::Schedule::dynamic(1);
  threaded_config.use_congruence_cache = false;  // bitwise check below
  engine::Engine threaded_engine(threaded_config);
  cad::GroundingSystem check(barbera.conductors, barbera.two_layer_soil, options);
  const cad::Report& threaded_report = check.analyze(threaded_engine);
  std::printf("Threaded run (2 threads, Dynamic,1): Req = %.6f vs sequential %.6f — %s\n",
              threaded_report.equivalent_resistance, report.equivalent_resistance,
              threaded_report.equivalent_resistance == report.equivalent_resistance
                  ? "identical"
                  : "DIFFERS");
  std::printf("\nShapes to check vs the paper: Dynamic/Guided with small chunks reach ~p;\n"
              "plain Static stalls near p/2; chunk 64 collapses at p=8 (too few chunks).\n");
  return 0;
}

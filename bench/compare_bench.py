#!/usr/bin/env python3
"""Bench-regression gate: compare current bench JSONL against a baseline.

Every ebem bench emits one JSON object per line (JSONL). This script joins
baseline and current records on a per-bench identity key and fails (exit 1)
when a gated metric regressed by more than the tolerance (default 15%):

  * timings        (assemble_seconds, seconds, ...)   -- lower is better
  * compression_ratio / exact_pair_fraction           -- lower is better
  * cache hit rates (hit_rate, warm_hit_rate)         -- higher is better

Timing metrics are machine-shape dependent: every bench line carries
hw_concurrency and pool_threads for exactly this reason. A timing metric is
only compared when the baseline and current records ran at the *same
pool_threads*; otherwise it is reported as skipped. Machine-independent
quality metrics (compression ratio, pair fraction, hit rates) are always
compared. Records present on only one side are reported but never fail the
gate (grids and sweeps are allowed to grow).

Usage:
  compare_bench.py BASELINE.jsonl CURRENT.jsonl [more pairs ...]
                   [--tolerance 0.15] [--verbose]

Pairs: pass an even number of files, alternating baseline and current.
Re-baselining: see bench/baselines/README.md.
"""

import argparse
import json
import sys

# Identity key fields per bench family: everything that names a case, none
# of the measured outputs.
IDENTITY = {
    "hmatrix": ("case", "elements", "epsilon"),
    "cache": ("grid", "elements", "threads"),
    "cache_warm": ("candidate", "cells"),
    "scaling": ("phase", "threads", "elements"),
    "tiles": ("case", "n", "tile", "residency_budget_bytes"),
    "pipeline": ("candidates", "elements_max", "threads", "cache"),
    "campaign": ("sweep", "scenarios", "cells", "width"),
    "kernels": ("family", "mode", "cells", "threads"),
    "service": ("tenants", "window", "runs", "cells"),
}

# Gated metrics per bench family: (field, direction, is_timing).
# direction "lower" fails when current > baseline * (1 + tol);
# direction "higher" fails when current < baseline * (1 - tol).
METRICS = {
    "hmatrix": (
        ("assemble_seconds", "lower", True),
        ("compression_ratio", "lower", False),
        ("exact_pair_fraction", "lower", False),
    ),
    "cache": (
        ("seconds_on", "lower", True),
        ("hit_rate", "higher", False),
    ),
    "cache_warm": (
        ("warm_seconds", "lower", True),
        ("warm_hit_rate", "higher", False),
    ),
    "scaling": (("seconds", "lower", True),),
    "tiles": (("assemble_seconds", "lower", True),),
    "pipeline": (("pipelined_seconds", "lower", True),),
    "campaign": (
        ("seconds", "lower", True),
        ("hit_rate", "higher", False),
    ),
    # Parity (max_rel_diff_vs_scalar) is gated by bench_kernels --check, not
    # here; the speedup ratio is ISA-dependent, so only raw time is gated.
    "kernels": (("seconds", "lower", True),),
    # Sweep cells are sub-floor fast on CI hardware, so the timing metric
    # mostly self-skips (mean_latency_ms is pure jitter at this scale and
    # is deliberately not gated); "rejected" is the real gate — any
    # rejection inside the in-flight window is an admission bug.
    "service": (
        ("seconds", "lower", True),
        ("rejected", "lower", False),
    ),
}

# Below this absolute value a "lower is better" metric is treated as noise:
# a 2 ms assembly doubling to 4 ms is scheduler jitter, not a regression.
TIMING_FLOOR_SECONDS = 0.05


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue  # benches may interleave human-readable notes
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}:{lineno}: not JSON: {error}")
    return records


def identity_of(record):
    bench = record.get("bench")
    key_fields = IDENTITY.get(bench)
    if key_fields is None:
        return None
    return (bench,) + tuple(record.get(field) for field in key_fields)


def index_records(records):
    indexed = {}
    for record in records:
        key = identity_of(record)
        if key is not None:
            indexed[key] = record  # later lines win, like a re-run would
    return indexed


def compare_pair(baseline_path, current_path, tolerance, verbose):
    baseline = index_records(load_jsonl(baseline_path))
    current = index_records(load_jsonl(current_path))
    failures = []
    skipped = 0
    compared = 0

    for key, base in sorted(baseline.items(), key=repr):
        cur = current.get(key)
        name = "/".join(str(part) for part in key)
        if cur is None:
            print(f"  note: case {name} absent from current run")
            continue
        threads_match = base.get("pool_threads") == cur.get("pool_threads")
        for field, direction, is_timing in METRICS[key[0]]:
            if field not in base or field not in cur:
                continue
            if is_timing and not threads_match:
                skipped += 1
                if verbose:
                    print(
                        f"  skip: {name}.{field} (pool_threads "
                        f"{base.get('pool_threads')} vs {cur.get('pool_threads')})"
                    )
                continue
            base_value, cur_value = float(base[field]), float(cur[field])
            if is_timing and max(base_value, cur_value) < TIMING_FLOOR_SECONDS:
                continue
            compared += 1
            if direction == "lower":
                regressed = cur_value > base_value * (1.0 + tolerance)
            else:
                regressed = cur_value < base_value * (1.0 - tolerance)
            if regressed:
                failures.append(
                    f"{name}.{field}: baseline {base_value:.6g} -> current "
                    f"{cur_value:.6g} ({direction} is better, tolerance "
                    f"{tolerance:.0%})"
                )
            elif verbose:
                print(f"  ok: {name}.{field} {base_value:.6g} -> {cur_value:.6g}")

    print(
        f"{baseline_path} vs {current_path}: {compared} metrics compared, "
        f"{skipped} timing metrics skipped (pool_threads mismatch), "
        f"{len(failures)} regressions"
    )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="baseline/current JSONL pairs")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        parser.error("pass baseline/current files in pairs")

    all_failures = []
    for i in range(0, len(args.files), 2):
        all_failures += compare_pair(
            args.files[i], args.files[i + 1], args.tolerance, args.verbose
        )
    if all_failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

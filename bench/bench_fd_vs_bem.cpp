// Ablation for the paper's feasibility argument (§1/§3): domain
// discretization (FD) vs boundary discretization (BEM) for the same
// grounding problem. The FD column needs five orders of magnitude more
// unknowns to reach percent-level agreement on a single conductor — on a
// full substation grid the gap is what makes FD "completely out of range".
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const std::vector<geom::Conductor> rod{{{0, 0, -0.5}, {0, 0, -8.5}, 0.5}};
  const auto soil = soil::LayeredSoil::uniform(0.01);

  std::printf("FD (domain) vs BEM (boundary) — single 8 m rod, uniform soil\n\n");
  io::Table table({"method", "unknowns", "Req (Ohm)", "time (s)"});

  // BEM at two refinements.
  for (double h : {2.0, 0.5}) {
    geom::MeshOptions mesh_options;
    mesh_options.target_element_length = h;
    const bem::BemModel model(geom::Mesh::build(rod, mesh_options), soil);
    WallTimer timer;
    const bem::AnalysisResult result = bem::analyze(model, {});
    table.add_row({"BEM h=" + io::Table::num(h, 1) + "m",
                   std::to_string(model.dof_count(bem::BasisKind::kLinear)),
                   io::Table::num(result.equivalent_resistance),
                   io::Table::num(timer.seconds(), 4)});
  }

  // FD at growing lattice sizes.
  for (std::size_t cells : {24u, 40u, 56u}) {
    fdm::FdOptions options;
    options.padding = 40.0;
    options.cells_x = cells;
    options.cells_y = cells;
    options.cells_z = (3 * cells) / 4;
    WallTimer timer;
    const fdm::FdResult fd = fdm::solve_grounding(rod, soil, options);
    table.add_row({"FD " + std::to_string(cells) + "^3-ish", std::to_string(fd.unknowns),
                   io::Table::num(fd.equivalent_resistance), io::Table::num(timer.seconds(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape to check: the FD estimates bracket the BEM value while the node-line\n"
              "effective radius converges toward the true one, at unknown counts (and\n"
              "times) that already dwarf the BEM for ONE conductor — the paper's\n"
              "motivation for a boundary-element formulation (§1/§3).\n");
  return 0;
}

// Micro-bench: matrix generation scaling and the analytic-inner-integral
// ablation (paper §4.3: generation is O(M^2 p^2 / 2) and dominates).
#include <benchmark/benchmark.h>

#include "src/ebem.hpp"

namespace {

using namespace ebem;

bem::BemModel grid_model(std::size_t cells, const soil::LayeredSoil& soil) {
  geom::RectGridSpec spec;
  spec.length_x = 10.0 * static_cast<double>(cells);
  spec.length_y = 10.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

void BM_AssembleUniform(benchmark::State& state) {
  const auto soil = soil::LayeredSoil::uniform(0.016);
  const bem::BemModel model = grid_model(static_cast<std::size_t>(state.range(0)), soil);
  bem::AssemblyOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bem::assemble(model, options));
  }
  state.counters["elements"] = static_cast<double>(model.element_count());
  state.SetComplexityN(static_cast<int64_t>(model.element_count()));
}
BENCHMARK(BM_AssembleUniform)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Complexity(benchmark::oNSquared);

void BM_AssembleTwoLayer(benchmark::State& state) {
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const bem::BemModel model = grid_model(static_cast<std::size_t>(state.range(0)), soil);
  bem::AssemblyOptions options;
  options.series.tolerance = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bem::assemble(model, options));
  }
  state.counters["elements"] = static_cast<double>(model.element_count());
}
BENCHMARK(BM_AssembleTwoLayer)->Arg(2)->Arg(3)->Arg(4);

void BM_AssembleInnerMode(benchmark::State& state) {
  // Analytic inner integral vs Gauss x Gauss at matched accuracy targets.
  const auto soil = soil::LayeredSoil::uniform(0.016);
  const bem::BemModel model = grid_model(3, soil);
  bem::AssemblyOptions options;
  if (state.range(0) == 0) {
    options.integrator.inner = bem::InnerIntegration::kAnalytic;
  } else {
    options.integrator.inner = bem::InnerIntegration::kGauss;
    options.integrator.inner_gauss_points = static_cast<std::size_t>(state.range(0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bem::assemble(model, options));
  }
  state.SetLabel(state.range(0) == 0 ? "analytic"
                                     : std::to_string(state.range(0)) + "-pt Gauss");
}
BENCHMARK(BM_AssembleInnerMode)->Arg(0)->Arg(8)->Arg(24);

void BM_SurfaceGridEvaluation(benchmark::State& state) {
  // The second parallelizable stage: potential at many surface points.
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const bem::BemModel model = grid_model(3, soil);
  bem::AnalysisOptions options;
  options.assembly.series.tolerance = 1e-6;
  const bem::AnalysisResult result = bem::analyze(model, options);
  const post::PotentialEvaluator evaluator(model, result.sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.surface_grid(-5, 35, -5, 35, 12, 12));
  }
}
BENCHMARK(BM_SurfaceGridEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

// Table 6.3: Balaidos matrix-generation CPU time and speed-up for soil
// models A, B, C at 1/2/4/8 processors.
//
// CPU time at p=1 is measured; the 2/4/8-processor speed-ups replay the
// measured per-column costs through the Dynamic,1 schedule (the paper's
// chosen configuration). Model A (uniform, 2-term kernels) is near-free;
// model C costs several times model B because elements in both layers pull
// in the slow-converging cross-layer and 4-image upper-layer series — the
// effect the paper calls out in §6.2.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BalaidosCase balaidos = cad::balaidos_case();

  std::printf("Table 6.3 — Balaidos: matrix-generation CPU time (s) and speed-ups\n\n");
  io::Table table({"Soil Model", "t(p=1)", "S(p=2)", "S(p=4)", "S(p=8)", "paper t(p=1)"});

  const struct {
    const char* name;
    soil::LayeredSoil soil;
    double paper_time;
  } models[] = {
      {"A", balaidos.soil_a, 2.44},
      {"B", balaidos.soil_b, 81.26},
      {"C", balaidos.soil_c, 443.28},
  };

  double time_b = 0.0;
  double time_c = 0.0;
  for (const auto& model : models) {
    cad::DesignOptions options;
    options.analysis.gpr = balaidos.gpr;
    options.analysis.assembly.series.tolerance = 1e-6;
    engine::ExecutionConfig config;
    config.measure_column_costs = true;
    // Cache off: measured column costs feed the schedule simulator.
    config.use_congruence_cache = false;
    engine::Engine engine(config);
    cad::GroundingSystem system(balaidos.conductors, model.soil, options);
    const cad::Report& report = system.analyze(engine);
    const double t1 = report.phases.cpu_seconds(Phase::kMatrixGeneration);
    if (model.name[0] == 'B') time_b = t1;
    if (model.name[0] == 'C') time_c = t1;

    std::vector<std::string> cells{model.name, io::Table::num(t1, 3)};
    for (std::size_t p : {2u, 4u, 8u}) {
      cells.push_back(io::Table::num(
          par::simulated_speedup(report.column_costs, p, par::Schedule::dynamic(1)), 2));
    }
    cells.push_back(io::Table::num(model.paper_time, 2));
    table.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Model C / model B cost ratio: %.1fx  (paper: %.1fx)\n", time_c / time_b,
              443.28 / 81.26);
  std::printf("Shapes to check: A << B << C; speed-ups track p for Dynamic,1 (paper\n"
              "reports 1.98/3.98/8.05 for B and 2.03/3.98/8.28 for C).\n");
  return 0;
}

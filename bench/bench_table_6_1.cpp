// Table 6.1: CPU time of each program phase for the Barbera two-layer
// analysis in sequential execution.
//
// The paper (on one 250 MHz R10000 processor) reports matrix generation at
// 1723 s out of a 1724 s total — 99.9% of the work. The absolute numbers
// here are orders of magnitude smaller on modern hardware; the shape to
// check is the matrix-generation share.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BarberaCase barbera = cad::barbera_case();  // paper-scale ~408 segments

  cad::DesignOptions options;
  options.analysis.gpr = barbera.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  cad::GroundingSystem system(barbera.conductors, barbera.two_layer_soil, options);
  const cad::Report& report = system.analyze();

  std::printf("Table 6.1 — Barbera two-layer analysis, sequential execution\n\n");
  std::printf("%s\n", report.phases.to_string().c_str());
  std::printf("Matrix generation share of CPU time: %.2f%%  (paper: 99.9%%)\n",
              100.0 * report.phases.cpu_fraction(Phase::kMatrixGeneration));
  std::printf("Req = %.4f Ohm, I = %.2f kA, %zu elements / %zu DoF\n",
              report.equivalent_resistance, report.total_current / 1e3, report.element_count,
              report.dof_count);
  std::printf("\nPaper reference (O2000, seconds): input 0.737, preprocess 0.045,\n"
              "matrix generation 1723.207, solve 0.211, storage 0.015.\n");
  return 0;
}

// Pipelined-session bench: wall time of a design-ladder batch run
// sequentially (blocking Study::analyze per candidate) vs submitted as one
// pipelined batch (Study::submit, futures consumed in order) on the same
// engine configuration. One JSON line per (cache, threads) configuration
// for artifact archiving; `speedup` > 1 means the scheduler overlapped
// candidate k+1's assembly with candidate k's factorization/solve tail.
// NOTE: on a 1-CPU host the pipeline cannot overlap anything, so speedup
// ~1.0 there and only the scheduler overhead is observable.
//
// Usage: bench_pipeline [cells] [max_threads] [--check]
//   cells        largest ladder candidate, cells per side (default 12 ->
//                312 elements; the ladder walks ... cells-4, cells-2, cells
//                with a fixed 5 m cell size, the design_search shape)
//   max_threads  thread counts 1, 2, 4, ... up to this value (default 1)
//   --check      CI parity smoke: exit nonzero unless the pipelined batch
//                matches the sequential ladder candidate by candidate —
//                bitwise where the policy guarantees it (one worker, cache
//                off: both paths run identical serial arithmetic, and the
//                sequential ladder itself must match the bem::analyze
//                serial shim bit for bit) and to 1e-12 relative otherwise
//                (the congruence cache and scatter reordering admit
//                quantization-level drift, never more).
//
// The JSON lines feed CI's bench-regression gate (bench/compare_bench.py
// vs bench/baselines/, pipelined wall time at matching pool_threads); see
// bench/baselines/README.md for re-baselining.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/scheduler.hpp"
#include "src/engine/study.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"

namespace {

using namespace ebem;

double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::abs(a[k]) + 1e-300;
    worst = std::max(worst, std::abs(a[k] - b[k]) / scale);
  }
  return worst;
}

bem::BemModel ladder_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

std::vector<bem::BemModel> build_ladder(std::size_t cells) {
  const std::size_t first = cells > 4 ? cells - 4 : 2;
  std::vector<bem::BemModel> models;
  for (std::size_t c = first; c <= cells; c += 2) models.push_back(ladder_model(c));
  return models;
}

engine::ExecutionConfig ladder_config(std::size_t threads, bool cache) {
  engine::ExecutionConfig config;
  config.num_threads = threads;
  config.use_congruence_cache = cache;
  return config;
}

struct LadderRun {
  std::vector<bem::AnalysisResult> results;
  double seconds = 0.0;
};

/// Blocking reference: candidate k+1 starts only after candidate k returns.
LadderRun run_sequential(const std::vector<bem::BemModel>& models,
                         const engine::ExecutionConfig& config) {
  engine::Engine engine(config);
  engine::Study study(engine);
  LadderRun run;
  WallTimer timer;
  for (const bem::BemModel& model : models) run.results.push_back(study.analyze(model));
  run.seconds = timer.seconds();
  return run;
}

/// Pipelined batch: every candidate submitted up front, futures consumed in
/// ladder order.
LadderRun run_pipelined(const std::vector<bem::BemModel>& models,
                        const engine::ExecutionConfig& config) {
  engine::Engine engine(config);
  engine::Study study(engine);
  LadderRun run;
  WallTimer timer;
  std::vector<engine::RunFuture> futures;
  futures.reserve(models.size());
  for (const bem::BemModel& model : models) futures.push_back(study.submit(model));
  for (engine::RunFuture& future : futures) run.results.push_back(future.take());
  run.seconds = timer.seconds();
  return run;
}

/// One (cache, threads) configuration: measure both paths, emit JSON,
/// enforce parity in check mode. Returns false on a parity violation.
bool run_config(const std::vector<bem::BemModel>& models, std::size_t threads, bool cache,
                bool check) {
  const engine::ExecutionConfig config = ladder_config(threads, cache);
  const LadderRun sequential = run_sequential(models, config);
  const LadderRun pipelined = run_pipelined(models, config);

  // Bitwise regime: one worker, no cache — identical serial arithmetic on
  // both paths (and on the engine-less shim, checked below).
  const bool bitwise = threads == 1 && !cache;
  double worst = 0.0;
  bool ok = true;
  for (std::size_t k = 0; k < models.size(); ++k) {
    const std::vector<double>& a = sequential.results[k].sigma;
    const std::vector<double>& b = pipelined.results[k].sigma;
    worst = std::max(worst, max_rel_diff(a, b));
    if (bitwise && a != b) ok = false;
    if (check && bitwise) {
      const bem::AnalysisResult shim = bem::analyze(models[k]);
      if (shim.sigma != b ||
          shim.equivalent_resistance != pipelined.results[k].equivalent_resistance) {
        std::fprintf(stderr,
                     "bench_pipeline: pipelined candidate %zu deviates bitwise from the "
                     "serial shim\n",
                     k);
        ok = false;
      }
    }
  }
  if (worst > 1e-12) ok = false;

  std::printf(
      "{\"bench\":\"pipeline\",\"candidates\":%zu,\"elements_max\":%zu,\"threads\":%zu,"
      "\"cache\":\"%s\",\"sequential_seconds\":%.6f,\"pipelined_seconds\":%.6f,"
      "\"speedup\":%.3f,\"max_rel_diff\":%.3e,\"bitwise\":%s,"
      "\"hw_concurrency\":%zu,\"pool_threads\":%zu,\"peak_rss_kb\":%zu}\n",
      models.size(), models.back().element_count(), threads, cache ? "on" : "off",
      sequential.seconds, pipelined.seconds,
      pipelined.seconds > 0.0 ? sequential.seconds / pipelined.seconds : 0.0, worst,
      bitwise ? "true" : "false", par::hardware_threads(), config.resolved_threads(),
      peak_rss_bytes() / 1024);

  if (check && !ok) {
    std::fprintf(stderr,
                 "bench_pipeline: pipelined ladder deviates from sequential (threads=%zu "
                 "cache=%s, max rel diff %.3e%s)\n",
                 threads, cache ? "on" : "off", worst,
                 bitwise ? ", bitwise equality required" : "");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 12;
  std::size_t max_threads = 1;
  bool check = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (positional == 0) {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      max_threads = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (cells < 2 || max_threads == 0) {
    std::fprintf(stderr, "usage: bench_pipeline [cells >= 2] [max_threads >= 1] [--check]\n");
    return 1;
  }

  const std::vector<bem::BemModel> models = build_ladder(cells);

  bool ok = true;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    for (const bool cache : {false, true}) {
      ok = run_config(models, threads, cache, check) && ok;
    }
  }
  if (check && !ok) return 1;
  return 0;
}

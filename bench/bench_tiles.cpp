// Tiled-storage bench: assembly + Cholesky factor + solve of the bench grid
// across (tile_size, residency budget) configurations, comparing the
// out-of-core spill backend against the fully resident in-memory arena.
// One JSON line per configuration for artifact archiving, including the
// pager counters (evictions, spill IO), both stores' peak resident bytes,
// and the process peak RSS — the numbers that make memory wins visible in
// the bench-json CI artifacts.
//
// Usage: bench_tiles [cells] [synthetic_n] [--check]
//   cells        grid cells per side (default 12 -> 312 elements)
//   synthetic_n  size of a synthetic SPD factor+solve case exercising the
//                pager at a dimension the grid alone cannot reach
//                (default 768; 0 skips it)
//   --check      CI smoke: exit nonzero unless every spill configuration
//                 * matches the in-memory solution to 1e-12 relative,
//                 * stays capped at <= 50% of matrix bytes resident in both
//                   the matrix store and the factor's working store, and
//                 * actually paged (evictions and read-backs > 0), with the
//                   eviction/IO counters visible on an engine PhaseReport.
//                Run under `ulimit -v` this proves the out-of-core path
//                works beneath a real address-space cap.
//
// The JSON lines feed CI's bench-regression gate (bench/compare_bench.py
// vs bench/baselines/, assembly timings at matching pool_threads); see
// bench/baselines/README.md for re-baselining.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/tile_store.hpp"
#include "src/parallel/thread_pool.hpp"
#include "tests/support/random_spd.hpp"

namespace {

using namespace ebem;

double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::abs(a[k]) + 1e-300;
    worst = std::max(worst, std::abs(a[k] - b[k]) / scale);
  }
  return worst;
}

struct CaseResult {
  bool spilled = false;
  bool parity_ok = true;
  bool capped_ok = true;
  bool paged_ok = true;
};

/// Factor + solve `matrix` for `rhs`, reporting parity against `reference`
/// and whether both stores stayed within half the matrix bytes.
CaseResult run_case(const char* name, const la::SymMatrix& matrix,
                    const std::vector<double>& rhs, const std::vector<double>& reference,
                    double assemble_seconds) {
  const la::StorageConfig& storage = matrix.storage_config();
  const std::size_t tile = matrix.layout().tile();
  const std::size_t matrix_bytes = matrix.layout().total_bytes();

  WallTimer factor_timer;
  const la::Cholesky factor(matrix, {.block = tile});
  const double factor_seconds = factor_timer.seconds();

  WallTimer solve_timer;
  const std::vector<double> x = factor.solve(rhs);
  const double solve_seconds = solve_timer.seconds();

  const la::TileStoreStats ms = matrix.tile_stats();
  const la::TileStoreStats fs = factor.tile_stats();
  const double diff = max_rel_diff(reference, x);

  CaseResult result;
  result.spilled = storage.residency_budget_bytes > 0;
  result.parity_ok = diff <= 1e-12;
  if (result.spilled) {
    // The factor pins up to three tiles at once, so a <= 50% residency cap
    // is only geometrically feasible from six tiles up; below that the
    // pager still works, but the cap check would be vacuous. Likewise a
    // store whose budget already holds every tile can never evict, so the
    // really-paged gate only applies when the tile count exceeds the
    // budget's slot capacity.
    const bool cap_feasible = 6 * matrix.layout().tile_bytes() <= matrix_bytes;
    result.capped_ok = !cap_feasible || (ms.peak_resident_bytes * 2 <= matrix_bytes &&
                                         fs.peak_resident_bytes * 2 <= matrix_bytes);
    const std::size_t slots = std::max<std::size_t>(
        1, storage.residency_budget_bytes / matrix.layout().tile_bytes());
    const bool can_page = matrix.layout().tile_count() > slots;
    result.paged_ok = !can_page || ((ms.evictions + fs.evictions) > 0 &&
                                    (ms.spill_reads + fs.spill_reads) > 0);
  }
  std::printf(
      "{\"bench\":\"tiles\",\"case\":\"%s\",\"n\":%zu,\"tile\":%zu,"
      "\"residency_budget_bytes\":%zu,\"matrix_bytes\":%zu,"
      "\"matrix_peak_resident\":%zu,\"factor_peak_resident\":%zu,"
      "\"evictions\":%zu,\"spill_writes\":%zu,\"spill_reads\":%zu,"
      "\"assemble_seconds\":%.6f,\"factor_seconds\":%.6f,\"solve_seconds\":%.6f,"
      "\"max_rel_diff\":%.3e,\"hw_concurrency\":%zu,\"pool_threads\":%zu,"
      "\"peak_rss_kb\":%zu}\n",
      name, matrix.size(), tile, storage.residency_budget_bytes, matrix_bytes,
      ms.peak_resident_bytes, fs.peak_resident_bytes, ms.evictions + fs.evictions,
      ms.spill_writes + fs.spill_writes, ms.spill_reads + fs.spill_reads, assemble_seconds,
      factor_seconds, solve_seconds, diff, par::hardware_threads(), std::size_t{1},
      peak_rss_bytes() / 1024);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 12;
  std::size_t synthetic_n = 768;
  bool check = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (positional == 0) {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      synthetic_n = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (cells == 0) {
    std::fprintf(stderr, "usage: bench_tiles [cells >= 1] [synthetic_n] [--check]\n");
    return 1;
  }

  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)), soil);

  bool ok = true;
  const auto account = [&](const CaseResult& r) {
    ok = ok && r.parity_ok && r.capped_ok && r.paged_ok;
  };

  // --- Grid sweep: (tile_size, residency fraction) -------------------------
  const bem::AssemblyResult ref = bem::assemble(model);
  const la::Cholesky ref_factor(ref.matrix);
  const std::vector<double> reference = ref_factor.solve(ref.rhs);

  for (const std::size_t tile : {std::size_t{32}, std::size_t{64}}) {
    for (const double fraction : {0.0, 0.5, 0.25}) {
      const std::size_t total =
          la::TileLayout(ref.matrix.size(), tile).total_bytes();
      la::StorageConfig storage;
      storage.tile_size = tile;
      storage.residency_budget_bytes =
          fraction > 0.0 ? static_cast<std::size_t>(fraction * static_cast<double>(total)) : 0;
      bem::AssemblyExecution execution;
      execution.storage = storage;
      WallTimer assemble_timer;
      const bem::AssemblyResult spilled = bem::assemble(model, {}, execution);
      const double assemble_seconds = assemble_timer.seconds();
      account(run_case("grid", spilled.matrix, spilled.rhs, reference, assemble_seconds));
    }
  }

  // --- Synthetic SPD factor+solve at a larger dimension --------------------
  if (synthetic_n > 0) {
    const la::SymMatrix synthetic = la::testing::random_spd(synthetic_n, 42);
    const std::vector<double> rhs = la::testing::random_vector(synthetic_n, 43);
    const la::Cholesky synthetic_factor(synthetic);
    const std::vector<double> synthetic_reference = synthetic_factor.solve(rhs);
    for (const double fraction : {0.5, 0.25}) {
      la::StorageConfig storage;
      storage.tile_size = 64;
      storage.residency_budget_bytes = static_cast<std::size_t>(
          fraction * static_cast<double>(la::TileLayout(synthetic_n, 64).total_bytes()));
      WallTimer copy_timer;
      la::SymMatrix spilled(synthetic_n, storage);
      la::copy_tiles(synthetic.store(), spilled.store());
      account(run_case("synthetic", spilled, rhs, synthetic_reference, copy_timer.seconds()));
    }
  }

  // --- Engine path: the same spill policy through ExecutionConfig, with the
  // eviction/IO counters landing on the session PhaseReport. ----------------
  {
    engine::ExecutionConfig config;
    config.storage.tile_size = 32;
    config.storage.residency_budget_bytes = static_cast<std::size_t>(
        0.4 * static_cast<double>(la::TileLayout(ref.matrix.size(), 32).total_bytes()));
    engine::Engine engine(config);
    const engine::FactoredSystem factored = engine.factor(model);
    const std::vector<double> x = factored.solve();
    const double diff = max_rel_diff(reference, x);
    const double evictions = engine.report().counter(engine::kTileEvictionsCounter);
    const double read_backs = engine.report().counter(engine::kTileSpillReadsCounter);
    const bool engine_ok = diff <= 1e-12 && evictions > 0 && read_backs > 0;
    ok = ok && engine_ok;
    std::printf(
        "{\"bench\":\"tiles\",\"case\":\"engine_report\",\"n\":%zu,\"tile\":32,"
        "\"residency_budget_bytes\":%zu,\"report_evictions\":%.0f,"
        "\"report_spill_writes\":%.0f,\"report_spill_reads\":%.0f,"
        "\"max_rel_diff\":%.3e,\"hw_concurrency\":%zu,\"pool_threads\":%zu,"
        "\"peak_rss_kb\":%zu}\n",
        ref.matrix.size(), config.storage.residency_budget_bytes, evictions,
        engine.report().counter(engine::kTileSpillWritesCounter), read_backs, diff,
        par::hardware_threads(), engine.num_threads(), peak_rss_bytes() / 1024);
  }

  if (check && !ok) {
    std::fprintf(stderr,
                 "bench_tiles: a spill configuration broke parity, exceeded half the matrix "
                 "bytes resident, or never paged\n");
    return 1;
  }
  return 0;
}

// Fig. 5.4: Balaidos earth-surface potential distribution for soil models
// A, B and C (ASCII contours + CSV exports).
#include <cstdio>
#include <fstream>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BalaidosCase balaidos = cad::balaidos_case();

  cad::DesignOptions options;
  options.analysis.gpr = balaidos.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  const struct {
    const char* name;
    const char* csv;
    soil::LayeredSoil soil;
  } models[] = {
      {"Soil model A (uniform)", "balaidos_surface_a.csv", balaidos.soil_a},
      {"Soil model B (2-layer, 0.7 m)", "balaidos_surface_b.csv", balaidos.soil_b},
      {"Soil model C (2-layer, 1.0 m)", "balaidos_surface_c.csv", balaidos.soil_c},
  };

  for (const auto& model : models) {
    cad::GroundingSystem system(balaidos.conductors, model.soil, options);
    const cad::Report& report = system.analyze();
    std::printf("=== %s ===  (Req %.4f Ohm)\n", model.name, report.equivalent_resistance);
    const auto evaluator = system.potential_evaluator();
    const auto grid = evaluator.surface_grid(-15.0, 95.0, -15.0, 75.0, 29, 25);
    std::printf("%s\n", post::ascii_contour(grid, 58).c_str());
    std::ofstream os(model.csv);
    post::write_contour_csv(os, grid);
    // A representative mid-grid profile for series comparison.
    const auto profile = evaluator.profile({-15, 30, 0}, {95, 30, 0}, 12);
    std::printf("profile y=30m (kV):");
    for (double v : profile) std::printf(" %.2f", v / 1e3);
    std::printf("\n\n");
  }
  std::printf("Expected shape: model C shows the highest surface potentials over the\n"
              "grid (least current escapes through the resistive blanket).\n");
  return 0;
}

// Engine-as-a-service bench: loopback throughput/latency sweep over
// (tenants x in-flight window), plus the CI correctness gates for the wire
// path. One JSON line per sweep cell for artifact archiving and the bench
// regression gate (bench/compare_bench.py vs bench/baselines/).
//
// What the lines show:
//  * runs_per_second / mean_latency_ms across the sweep: how the admission
//    window trades per-run latency for service throughput when several
//    tenants share one compute pool (each tenant drives its own engine, so
//    added tenants contend for CPU but never for warm-cache state);
//  * rejected stays 0 in the sweep — the drivers respect their windows, so
//    any rejection here is an admission-accounting bug (the baseline gates
//    it at zero);
//  * global_peak_outstanding <= tenants x window — the backpressure bound,
//    observable end to end.
//
// Usage: bench_service [runs_per_tenant] [cells] [--check]
//   runs_per_tenant  analyses each tenant submits per sweep cell
//                    (default 24; --check drops it to 8)
//   cells            bench grid cells per side, 5 m pitch (default 3)
//   --check          CI smoke: exit nonzero unless (a) a real socket
//                    round-trip reproduces the direct Engine::analyze
//                    numbers to <= 1e-12 relative, (b) the factor+solve
//                    wire path agrees with the analysis path to the same
//                    tolerance, (c) over-quota load is *rejected* (typed
//                    quota_exceeded, engine peak outstanding at the bound,
//                    no queue growth), and (d) every tenant's billed
//                    account reconciles with the sum of its per-run
//                    reports.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/blas1.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/service/codec.hpp"
#include "src/service/dispatcher.hpp"
#include "src/service/loopback.hpp"
#include "src/service/server.hpp"

namespace {

using namespace ebem;
using service::Json;

std::string tenant_name(std::size_t index) { return "tenant" + std::to_string(index); }

service::ServiceConfig sweep_config(std::size_t tenants, std::size_t window) {
  service::ServiceConfig config;
  config.num_threads = 1;  // determinism/timing contract, like every bench
  for (std::size_t t = 0; t < tenants; ++t) {
    service::TenantConfig tenant;
    tenant.name = tenant_name(t);
    tenant.quotas.max_outstanding_runs = window;
    config.tenants.push_back(tenant);
  }
  return config;
}

std::string submit_line(const std::string& tenant, std::size_t cells, const char* type) {
  const double extent = 5.0 * static_cast<double>(cells);
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"type\":\"%s\",\"tenant\":\"%s\",\"model\":{\"grid\":{\"length_x\":%.3f,"
                "\"length_y\":%.3f,\"cells_x\":%zu,\"cells_y\":%zu},\"soil\":{"
                "\"conductivities\":[0.005,0.016],\"thicknesses\":[1.0]}}}",
                type, tenant.c_str(), extent, extent, cells, cells);
  return buffer;
}

std::string report_line(const std::string& tenant, double run_id) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "{\"type\":\"get_report\",\"tenant\":\"%s\",\"run_id\":%.0f,\"wait_ms\":60000}",
                tenant.c_str(), run_id);
  return buffer;
}

double field(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_number() ? value->as_number() : 0.0;
}

std::string text(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_string() ? value->as_string() : std::string();
}

bem::BemModel direct_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)),
                       soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
}

struct SweepCell {
  std::size_t completed = 0;
  std::size_t failed = 0;
  double seconds = 0.0;
  double sum_latency_seconds = 0.0;
  double billed_seconds = 0.0;
  std::uint64_t rejected = 0;
  std::size_t global_peak = 0;
};

/// One tenant's driver: keep up to `window` runs in flight, harvest oldest
/// first — the steady-state shape of a client that respects its quota.
void drive_tenant(service::Dispatcher& dispatcher, const std::string& tenant, std::size_t runs,
                  std::size_t cells, std::size_t window, std::atomic<std::size_t>* completed,
                  std::atomic<std::size_t>* failed, std::atomic<double>* latency_sum) {
  service::LoopbackClient client(dispatcher);
  const std::string submit = submit_line(tenant, cells, "submit_analysis");
  std::deque<std::pair<double, std::chrono::steady_clock::time_point>> in_flight;
  double local_latency = 0.0;

  const auto harvest_front = [&] {
    const auto [run_id, submitted_at] = in_flight.front();
    in_flight.pop_front();
    const Json report = service::decode_response(client.call(report_line(tenant, run_id)));
    local_latency += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   submitted_at)
                         .count();
    if (text(report, "status") == "done") {
      completed->fetch_add(1, std::memory_order_relaxed);
    } else {
      failed->fetch_add(1, std::memory_order_relaxed);
    }
  };

  for (std::size_t i = 0; i < runs; ++i) {
    if (in_flight.size() == window) harvest_front();
    const Json response = service::decode_response(client.call(submit));
    if (text(response, "type") != "submitted") {
      failed->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    in_flight.emplace_back(field(response, "run_id"), std::chrono::steady_clock::now());
  }
  while (!in_flight.empty()) harvest_front();

  // fetch_add(double) needs C++20 on some libstdc++; emulate with CAS.
  double expected = latency_sum->load(std::memory_order_relaxed);
  while (!latency_sum->compare_exchange_weak(expected, expected + local_latency,
                                             std::memory_order_relaxed)) {
  }
}

SweepCell run_sweep_cell(std::size_t tenants, std::size_t window, std::size_t runs,
                         std::size_t cells) {
  service::Dispatcher dispatcher(sweep_config(tenants, window));
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<double> latency_sum{0.0};

  WallTimer wall;
  std::vector<std::thread> drivers;
  for (std::size_t t = 0; t < tenants; ++t) {
    drivers.emplace_back(drive_tenant, std::ref(dispatcher), tenant_name(t), runs, cells, window,
                         &completed, &failed, &latency_sum);
  }
  for (std::thread& driver : drivers) driver.join();

  SweepCell cell;
  cell.seconds = wall.seconds();
  cell.completed = completed.load();
  cell.failed = failed.load();
  cell.sum_latency_seconds = latency_sum.load();
  const service::DispatcherStats stats = dispatcher.stats();
  cell.rejected = stats.admission.rejected;
  cell.global_peak = stats.admission.global_peak_outstanding;
  service::LoopbackClient client(dispatcher);
  for (std::size_t t = 0; t < tenants; ++t) {
    const Json tenant_stats = service::decode_response(
        client.call("{\"type\":\"stats\",\"tenant\":\"" + tenant_name(t) + "\"}"));
    cell.billed_seconds += field(tenant_stats, "total_seconds");
  }
  return cell;
}

void emit(std::size_t tenants, std::size_t window, std::size_t runs, std::size_t cells,
          const SweepCell& cell) {
  const double total_runs = static_cast<double>(cell.completed);
  std::printf(
      "{\"bench\":\"service\",\"tenants\":%zu,\"window\":%zu,\"runs\":%zu,\"cells\":%zu,"
      "\"completed\":%zu,\"failed\":%zu,\"seconds\":%.6f,\"runs_per_second\":%.3f,"
      "\"mean_latency_ms\":%.3f,\"billed_seconds\":%.6f,\"rejected\":%llu,"
      "\"global_peak_outstanding\":%zu,\"hw_concurrency\":%zu,\"pool_threads\":1,"
      "\"peak_rss_kb\":%zu}\n",
      tenants, window, runs, cells, cell.completed, cell.failed, cell.seconds,
      cell.seconds > 0.0 ? total_runs / cell.seconds : 0.0,
      total_runs > 0.0 ? 1e3 * cell.sum_latency_seconds / total_runs : 0.0,
      cell.billed_seconds, static_cast<unsigned long long>(cell.rejected), cell.global_peak,
      par::hardware_threads(), peak_rss_bytes() / 1024);
}

// ---------------------------------------------------------------- checks ---

bool check_socket_parity(std::size_t cells) {
  service::ServiceConfig config = sweep_config(1, 4);
  service::Dispatcher dispatcher(config);
  service::Server server(dispatcher);  // ephemeral port
  service::Client client(server.port());

  const Json analysis = service::decode_response(
      client.call(submit_line(tenant_name(0), cells, "submit_analysis")));
  const Json factored = service::decode_response(
      client.call(submit_line(tenant_name(0), cells, "submit_factor_solve")));
  if (text(analysis, "type") != "submitted" || text(factored, "type") != "submitted") {
    std::fprintf(stderr, "bench_service: socket submit failed\n");
    return false;
  }
  const Json analysis_report = service::decode_response(
      client.call(report_line(tenant_name(0), field(analysis, "run_id"))));
  const Json factored_report = service::decode_response(
      client.call(report_line(tenant_name(0), field(factored, "run_id"))));
  if (text(analysis_report, "status") != "done" || text(factored_report, "status") != "done") {
    std::fprintf(stderr, "bench_service: socket runs did not complete\n");
    return false;
  }

  engine::Engine direct;
  const bem::AnalysisResult reference = direct.analyze(direct_model(cells));
  const double sigma_l2 = std::sqrt(la::dot(reference.sigma, reference.sigma));
  const auto relative = [](double wire, double ref) { return std::abs(wire - ref) / ref; };
  bool ok = true;
  if (relative(field(analysis_report, "equivalent_resistance"),
               reference.equivalent_resistance) > 1e-12 ||
      relative(field(analysis_report, "total_current"), reference.total_current) > 1e-12 ||
      relative(field(analysis_report, "sigma_l2"), sigma_l2) > 1e-12) {
    std::fprintf(stderr,
                 "bench_service: socket analysis response diverges from direct analyze\n");
    ok = false;
  }
  if (relative(field(factored_report, "equivalent_resistance"),
               reference.equivalent_resistance) > 1e-12 ||
      relative(field(factored_report, "sigma_l2"), sigma_l2) > 1e-12) {
    std::fprintf(stderr, "bench_service: factor+solve wire path diverges from analysis\n");
    ok = false;
  }
  server.stop();
  return ok;
}

bool check_over_quota_rejection(std::size_t cells) {
  // One tenant, quota 2, 10 back-to-back submits with no harvesting: the
  // surplus must bounce with a typed rejection while the engine's pipeline
  // never sees more than the bound — rejection, not queue growth.
  constexpr std::size_t kQuota = 2;
  constexpr std::size_t kSubmits = 10;
  service::Dispatcher dispatcher(sweep_config(1, kQuota));
  service::LoopbackClient client(dispatcher);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kSubmits; ++i) {
    const Json response = service::decode_response(
        client.call(submit_line(tenant_name(0), cells, "submit_analysis")));
    if (text(response, "type") == "submitted") {
      ++accepted;
    } else if (text(response, "code") == "quota_exceeded") {
      ++rejected;
    }
  }
  const Json stats = service::decode_response(
      client.call("{\"type\":\"stats\",\"tenant\":\"" + tenant_name(0) + "\"}"));
  bool ok = true;
  if (rejected == 0 || accepted + rejected != kSubmits) {
    std::fprintf(stderr, "bench_service: over-quota load was not rejected (%zu/%zu)\n",
                 rejected, kSubmits);
    ok = false;
  }
  if (field(stats, "engine_peak_outstanding") > static_cast<double>(kQuota) ||
      field(stats, "peak_outstanding") > static_cast<double>(kQuota)) {
    std::fprintf(stderr, "bench_service: outstanding runs exceeded the quota bound\n");
    ok = false;
  }
  if (field(stats, "runs_rejected") != static_cast<double>(rejected)) {
    std::fprintf(stderr, "bench_service: rejection tally does not match responses\n");
    ok = false;
  }
  return ok;
}

bool check_reconciliation(std::size_t runs, std::size_t cells) {
  // Per-run reports, summed client-side, must equal the server-side bill.
  service::Dispatcher dispatcher(sweep_config(1, 4));
  service::LoopbackClient client(dispatcher);
  double client_side_seconds = 0.0;
  double client_side_elements = 0.0;
  for (std::size_t i = 0; i < runs; ++i) {
    const Json submitted = service::decode_response(
        client.call(submit_line(tenant_name(0), cells, "submit_analysis")));
    const Json report = service::decode_response(
        client.call(report_line(tenant_name(0), field(submitted, "run_id"))));
    if (text(report, "status") != "done") return false;
    client_side_seconds += field(report, "total_seconds");
    client_side_elements += field(report, "elements");
  }
  const Json stats = service::decode_response(
      client.call("{\"type\":\"stats\",\"tenant\":\"" + tenant_name(0) + "\"}"));
  if (std::abs(field(stats, "total_seconds") - client_side_seconds) > 1e-9 ||
      field(stats, "elements_billed") != client_side_elements ||
      field(stats, "runs_completed") != static_cast<double>(runs)) {
    std::fprintf(stderr, "bench_service: tenant account does not reconcile with run reports\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 24;
  std::size_t cells = 3;
  bool check = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (positional == 0) {
      runs = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (runs < 4 || cells < 2) {
    std::fprintf(stderr, "usage: bench_service [runs_per_tenant >= 4] [cells >= 2] [--check]\n");
    return 1;
  }
  if (check && positional == 0) runs = 8;  // reduced smoke unless sized explicitly

  bool ok = true;
  for (const std::size_t tenants : {1u, 2u, 4u}) {
    for (const std::size_t window : {1u, 2u, 4u}) {
      const SweepCell cell = run_sweep_cell(tenants, window, runs, cells);
      emit(tenants, window, runs, cells, cell);
      if (cell.failed != 0 || cell.completed != tenants * runs) {
        std::fprintf(stderr, "bench_service: sweep cell %zux%zu lost runs (%zu/%zu)\n", tenants,
                     window, cell.completed, tenants * runs);
        ok = false;
      }
      if (cell.rejected != 0) {
        std::fprintf(stderr,
                     "bench_service: sweep cell %zux%zu saw rejections inside the window\n",
                     tenants, window);
        ok = false;
      }
      if (cell.global_peak > tenants * window) {
        std::fprintf(stderr, "bench_service: global peak %zu exceeded %zu\n", cell.global_peak,
                     tenants * window);
        ok = false;
      }
    }
  }

  if (!check) return ok ? 0 : 1;

  ok = check_socket_parity(cells + 1) && ok;
  ok = check_over_quota_rejection(cells) && ok;
  ok = check_reconciliation(runs, cells) && ok;
  return ok ? 0 : 1;
}

// Table 5.1: Balaidos equivalent resistance and total leaked current for
// soil models A, B and C.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BalaidosCase balaidos = cad::balaidos_case();

  cad::DesignOptions options;
  options.analysis.gpr = balaidos.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  std::printf("Table 5.1 — Balaidos: equivalent resistance and total current\n\n");
  io::Table table(
      {"Soil Model", "Req (Ohm)", "I (kA)", "paper Req", "paper I", "elements"});

  const struct {
    const char* name;
    soil::LayeredSoil soil;
    double paper_req;
    double paper_current;
  } models[] = {
      {"A", balaidos.soil_a, 0.3366, 29.71},
      {"B", balaidos.soil_b, 0.3522, 28.39},
      {"C", balaidos.soil_c, 0.4860, 20.58},
  };

  for (const auto& model : models) {
    cad::GroundingSystem system(balaidos.conductors, model.soil, options);
    const cad::Report& report = system.analyze();
    table.add_row({model.name, io::Table::num(report.equivalent_resistance),
                   io::Table::num(report.total_current / 1e3, 2),
                   io::Table::num(model.paper_req), io::Table::num(model.paper_current, 2),
                   std::to_string(report.element_count)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Orderings to check against the paper: Req(A) < Req(B) < Req(C); the\n"
              "thicker resistive top layer of model C cuts the leaked current by ~30%%.\n");
  return 0;
}

// H-matrix compression bench: full analyses with the ACA-compressed
// far-field storage backend against the dense in-memory reference, swept
// over element count x block tolerance. One JSON line per case: the
// compression ratio (stored vs dense bytes), the element-pair bill split
// (near / sampled / skipped — the O(M^2) work the far field removed), rank
// statistics, end-to-end safety-quantity parity (post::assess_safety
// touch/step voltages and the equivalent resistance) and peak RSS.
//
// Three grid families, because compressibility is a geometry property of
// the *storage order* (tile rows are contiguous DoF slabs):
//  * square grids, in-place order — slab clusters span the full grid width,
//    far blocks carry high numerical rank and the profit gate keeps most of
//    them dense: the bench shows parity and the honest "refuses to
//    compress" economics;
//  * a long grid (8 x long_cells, a trench/pipeline-style layout) — slab
//    clusters are compact, the far field is genuinely low rank, and the
//    backend breaks the dense wall: this case carries the strictest gates;
//  * a square grid under ordering=geometric — the RCB DoF clustering
//    (src/bem/clustering.hpp) rebuilds the tile rows as near-cubical
//    spatial clusters behind a permutation, so the same square geometry
//    that refuses to compress in place becomes compressible: this case
//    carries the geometry-independence gate.
//
// Every --check gate is per-case (a GateSpec per grid family) — square
// in-place cases are parity-only on purpose, and the two wall cases carry
// different byte ceilings because slab clusters and RCB clusters face
// different rank economics.
//
// Usage: bench_hmatrix [cells...] [--long N] [--ordered N] [--check]
//   cells...    square grid cells per side, each swept over every epsilon
//               (default 12 24)
//   --long N    cells along the long grid's axis (default 260 -> 4428
//               elements, 2349 DoFs; 0 skips the long grid)
//   --ordered N square grid cells per side analyzed under
//               ordering=geometric at epsilon 1e-8 (default 44 -> 3960
//               elements, 2025 DoFs; 0 skips the ordered grid)
//   --check     CI gate: exit nonzero unless every case matches the dense
//               safety quantities to <= epsilon relative, and every
//               >= 2000-element epsilon=1e-8 case additionally meets its
//               family's GateSpec:
//                * long (trench): <= 40% of dense bytes stored, <= 50% of
//                  the exact element pairs integrated;
//                * square_ordered: <= 60% of dense bytes stored and a net
//                  integration bill (near + sampled - replayed) <= 1.3x the
//                  dense pair count — the congruence cache replays congruent
//                  ACA samples instead of re-integrating them;
//               and shows the compression (and, when ordered, ordering)
//               counters on the engine PhaseReport.
//
// New timing/ratio baselines for CI's bench-regression gate are captured
// from this bench's JSON lines — see bench/baselines/README.md for the
// re-baselining workflow.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/phase_report.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/post/safety.hpp"

namespace {

using namespace ebem;

double rel_diff(double value, double reference) {
  return std::abs(value - reference) / (std::abs(reference) + 1e-300);
}

/// Per-family compression gates, armed on >= 2000-element epsilon=1e-8
/// cases under --check. Parity always gates; these are the extra walls.
struct GateSpec {
  double max_ratio = 1.0;        ///< stored bytes / dense bytes ceiling
  double max_exact_pairs = 1.0;  ///< (near + sampled) / dense pair ceiling
};

/// Trench wall: the backend must beat the dense pair bill *and* the dense
/// bytes — slab tile rows are already compact clusters on this geometry.
constexpr GateSpec kLongGates{.max_ratio = 0.40, .max_exact_pairs = 0.50};
/// Ordered-square wall: storage (the geometry-independence claim) *and* the
/// exact-pair bill. ACA samples many borderline blocks on this geometry —
/// historically a ~1.7x oversampling over the dense pair loop — but the
/// congruence cache now replays congruent sampled pairs, so the net
/// integration bill must stay below 1.3x dense.
constexpr GateSpec kOrderedGates{.max_ratio = 0.60, .max_exact_pairs = 1.3};

/// The engineering answers a compressed analysis must preserve.
struct SafetyQuantities {
  double equivalent_resistance = 0.0;
  double max_touch_voltage = 0.0;
  double max_step_voltage = 0.0;
};

SafetyQuantities safety_quantities(const bem::BemModel& model, const bem::AnalysisResult& result,
                                   double extent_x, double extent_y) {
  const post::PotentialEvaluator evaluator(model, result.sigma);
  const post::SafetyAssessment assessment = post::assess_safety(
      evaluator, result.equivalent_resistance * result.total_current, 0.0, extent_x, 0.0,
      extent_y, 20, 20, post::SafetyCriteria{});
  return {result.equivalent_resistance, assessment.max_touch_voltage,
          assessment.max_step_voltage};
}

bem::BemModel make_grid_model(std::size_t cells_x, std::size_t cells_y) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells_x);
  spec.length_y = 5.0 * static_cast<double>(cells_y);
  spec.cells_x = cells_x;
  spec.cells_y = cells_y;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)),
                       soil::LayeredSoil::two_layer(0.005, 0.016, 1.0));
}

struct CaseOutcome {
  bool parity_ok = true;
  bool wall_ok = true;   ///< compression + counter gates (wall cases only)
  bool wall_case = false;
};

CaseOutcome run_compressed_case(const char* name, const bem::BemModel& model, double extent_x,
                                double extent_y, double epsilon, bool ordered,
                                const GateSpec* gates, const SafetyQuantities& reference,
                                double dense_seconds) {
  engine::ExecutionConfig config;
  config.num_threads = 0;  // hardware concurrency
  config.storage.compression = {.epsilon = epsilon, .min_block = 64, .max_rank = 128};
  if (ordered) {
    // Tuned for RCB-clustered square grids: 32-wide tile rows match the
    // clustering leaves, min_block 32 admits the leaf-pair blocks RCB
    // produces, and a small profit budget lets their ~s/4 ranks through
    // (measured on the 44-cell grid at epsilon 1e-8: 56.5% of dense
    // bytes stored, parity 2e-11). The trench cases keep the default
    // knobs so their PR 6 gates measure the unordered backend.
    config.storage.tile_size = 32;
    config.storage.compression.min_block = 32;
    config.storage.compression.max_rank = 64;
    config.storage.compression.min_rank_budget = 8;
    config.storage.compression.ordering = la::DofOrdering::kGeometric;
  }
  engine::Engine engine(config);

  WallTimer timer;
  PhaseReport run_report;
  const bem::AnalysisResult result = engine.analyze(model, {}, &run_report);
  const double total_seconds = timer.seconds();
  const SafetyQuantities quantities = safety_quantities(model, result, extent_x, extent_y);

  const la::CompressionStats& stats = result.compression;
  const bem::FarFieldStats& far = result.far_field;
  const std::size_t element_pairs =
      far.pairs_near + far.pairs_skipped;  // the dense pair bill of this grid
  const double compression_ratio =
      static_cast<double>(stats.stored_bytes) /
      static_cast<double>(std::max<std::size_t>(1, stats.dense_bytes));
  // Replayed samples cost a cached-transform apply, not an integration, so
  // they come off the exact bill.
  const double exact_pair_fraction =
      static_cast<double>(far.pairs_near + far.pairs_sampled - far.pairs_replayed) /
      static_cast<double>(std::max<std::size_t>(1, element_pairs));
  const double parity_resistance =
      rel_diff(quantities.equivalent_resistance, reference.equivalent_resistance);
  const double parity_touch = rel_diff(quantities.max_touch_voltage, reference.max_touch_voltage);
  const double parity_step = rel_diff(quantities.max_step_voltage, reference.max_step_voltage);

  CaseOutcome outcome;
  outcome.parity_ok = parity_resistance <= epsilon && parity_touch <= epsilon &&
                      parity_step <= epsilon;
  outcome.wall_case = gates != nullptr && model.element_count() >= 2000 && epsilon == 1e-8;
  if (outcome.wall_case) {
    // The session report must carry the compression (and ordering) evidence.
    bool counters_ok = run_report.counter(engine::kLowRankBlocksCounter) > 0 &&
                       run_report.counter(engine::kPairsSkippedCounter) > 0 &&
                       run_report.counter(engine::kCompressedStoredBytesCounter) > 0;
    if (ordered) {
      counters_ok = counters_ok && run_report.counter(engine::kOrderingsCounter) > 0 &&
                    run_report.counter(engine::kOrderingLeavesCounter) > 0;
    }
    outcome.wall_ok = compression_ratio <= gates->max_ratio &&
                      exact_pair_fraction <= gates->max_exact_pairs && counters_ok;
  }

  std::printf(
      "{\"bench\":\"hmatrix\",\"case\":\"%s\",\"elements\":%zu,\"dofs\":%zu,"
      "\"epsilon\":%.1e,\"ordered\":%s,\"ordering_leaves\":%zu,"
      "\"low_rank_blocks\":%zu,\"low_rank_tiles\":%zu,"
      "\"dense_tiles\":%zu,\"rank_mean\":%.2f,\"rank_max\":%zu,"
      "\"stored_bytes\":%zu,\"dense_bytes\":%zu,\"compression_ratio\":%.4f,"
      "\"pairs_near\":%zu,\"pairs_sampled\":%zu,\"pairs_skipped\":%zu,"
      "\"pairs_replayed\":%zu,"
      "\"exact_pair_fraction\":%.4f,\"assemble_seconds\":%.6f,"
      "\"solve_seconds\":%.6f,\"total_seconds\":%.6f,\"dense_seconds\":%.6f,"
      "\"parity_resistance\":%.3e,\"parity_touch\":%.3e,\"parity_step\":%.3e,"
      "\"hw_concurrency\":%zu,\"pool_threads\":%zu,\"peak_rss_kb\":%zu}\n",
      name, model.element_count(), result.sigma.size(), epsilon, ordered ? "true" : "false",
      result.ordering_stats.cluster_leaves, stats.low_rank_blocks, stats.low_rank_tiles,
      stats.dense_tiles, stats.mean_rank(), stats.max_rank, stats.stored_bytes,
      stats.dense_bytes, compression_ratio, far.pairs_near, far.pairs_sampled,
      far.pairs_skipped, far.pairs_replayed, exact_pair_fraction,
      run_report.wall_seconds(Phase::kMatrixGeneration),
      run_report.wall_seconds(Phase::kLinearSolve), total_seconds, dense_seconds,
      parity_resistance, parity_touch, parity_step, par::hardware_threads(),
      engine.num_threads(), peak_rss_bytes() / 1024);
  return outcome;
}

/// Dense reference + the family's epsilon sweep for one grid; folds gate
/// outcomes into the flags.
void run_grid(const char* name, std::size_t cells_x, std::size_t cells_y, bool ordered,
              const GateSpec* gates, const std::vector<double>& epsilons, bool& parity_ok,
              bool& wall_ok, bool& wall_seen) {
  const bem::BemModel model = make_grid_model(cells_x, cells_y);
  const double extent_x = 5.0 * static_cast<double>(cells_x);
  const double extent_y = 5.0 * static_cast<double>(cells_y);

  engine::ExecutionConfig dense_config;
  dense_config.num_threads = 0;
  engine::Engine dense_engine(dense_config);
  WallTimer dense_timer;
  const bem::AnalysisResult dense = dense_engine.analyze(model);
  const double dense_seconds = dense_timer.seconds();
  const SafetyQuantities reference = safety_quantities(model, dense, extent_x, extent_y);

  for (const double epsilon : epsilons) {
    const CaseOutcome outcome = run_compressed_case(name, model, extent_x, extent_y, epsilon,
                                                    ordered, gates, reference, dense_seconds);
    parity_ok = parity_ok && outcome.parity_ok;
    if (outcome.wall_case) {
      wall_seen = true;
      wall_ok = wall_ok && outcome.wall_ok;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> cells_list;
  std::size_t long_cells = 260;
  std::size_t ordered_cells = 44;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--long") == 0 && i + 1 < argc) {
      long_cells = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ordered") == 0 && i + 1 < argc) {
      ordered_cells = std::strtoul(argv[++i], nullptr, 10);
    } else {
      cells_list.push_back(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (cells_list.empty()) cells_list = {12, 24};
  for (const std::size_t cells : cells_list) {
    if (cells < 2) {
      std::fprintf(stderr,
                   "usage: bench_hmatrix [cells >= 2 ...] [--long N] [--ordered N] [--check]\n");
      return 1;
    }
  }

  bool parity_ok = true;
  bool wall_ok = true;
  bool wall_seen = false;
  for (const std::size_t cells : cells_list) {
    // In-place order: parity evidence plus the honest refuses-to-compress
    // economics; no byte/pair wall by design.
    run_grid("square", cells, cells, /*ordered=*/false, /*gates=*/nullptr, {1e-6, 1e-8},
             parity_ok, wall_ok, wall_seen);
  }
  if (long_cells >= 2) {
    run_grid("long", 8, long_cells, /*ordered=*/false, &kLongGates, {1e-6, 1e-8}, parity_ok,
             wall_ok, wall_seen);
  }
  if (ordered_cells >= 2) {
    // One epsilon only: the ordered sweep exists to gate the 1e-8 wall, and
    // the dense reference already dominates this grid's wall time.
    run_grid("square_ordered", ordered_cells, ordered_cells, /*ordered=*/true, &kOrderedGates,
             {1e-8}, parity_ok, wall_ok, wall_seen);
  }

  if (check) {
    bool ok = true;
    if (!parity_ok) {
      std::fprintf(stderr, "bench_hmatrix: a compressed case broke safety-quantity parity\n");
      ok = false;
    }
    if (wall_seen && !wall_ok) {
      std::fprintf(stderr,
                   "bench_hmatrix: a >= 2000-element epsilon=1e-8 wall case missed its "
                   "family's compression gates (long: <= 40%% stored bytes and <= 50%% exact "
                   "pairs; square_ordered: <= 60%% stored bytes and <= 1.3x net exact pairs; "
                   "counters reported)\n");
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}

// Strong-scaling bench for the two heavy phases: fused streaming assembly
// and the blocked Cholesky factorization (plus PCG), emitting one JSON line
// per (phase, threads) so runs can be archived and diffed over time
// (BENCH_scaling.json at the repo root holds the reference trajectory).
//
// Usage: bench_scaling [cells] [max_threads] [synthetic_n]
//   cells        grid cells per side (default 12 -> 312 elements)
//   max_threads  thread counts 1, 2, 4, ... up to this value (default 4)
//   synthetic_n  size of the synthetic SPD factorization case (default 1024;
//                the grid's own system is solved too, but a >=200-element
//                grid yields only a few hundred DoFs, too small to show
//                factorization scaling on its own)
//
// The JSON lines feed CI's bench-regression gate (bench/compare_bench.py
// vs bench/baselines/, per-phase timings at matching pool_threads); see
// bench/baselines/README.md for re-baselining.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/bem/solver.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/parallel/thread_pool.hpp"
#include "tests/support/random_spd.hpp"

namespace {

using namespace ebem;

struct PhaseTimes {
  std::vector<std::size_t> threads;
  std::vector<double> seconds;
};

void emit(const char* phase, std::size_t threads, std::size_t elements, std::size_t dofs,
          double seconds, double baseline_seconds, std::size_t matrix_bytes_resident) {
  std::printf(
      "{\"bench\":\"scaling\",\"phase\":\"%s\",\"threads\":%zu,\"elements\":%zu,"
      "\"dofs\":%zu,\"seconds\":%.6f,\"speedup\":%.3f,"
      "\"matrix_bytes_resident\":%zu,\"hw_concurrency\":%zu,\"pool_threads\":%zu,"
      "\"peak_rss_kb\":%zu}\n",
      phase, threads, elements, dofs, seconds, baseline_seconds / seconds,
      matrix_bytes_resident, par::hardware_threads(), threads, peak_rss_bytes() / 1024);
}

double best_of(int repeats, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    run();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cells = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t max_threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::size_t synthetic_n = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 1024;
  if (cells == 0 || max_threads == 0 || synthetic_n == 0) {
    std::fprintf(stderr, "usage: bench_scaling [cells >= 1] [max_threads >= 1] [synthetic_n >= 1]\n");
    return 1;
  }

  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const bem::BemModel model(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
  const std::size_t m = model.element_count();

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  // --- Phase 1: fused streaming assembly on the grid. -----------------------
  double assembly_base = 0.0;
  bem::AssemblyResult system;
  for (const std::size_t threads : thread_counts) {
    par::ThreadPool pool(threads);
    bem::AssemblyExecution execution;
    execution.num_threads = threads;
    execution.schedule = par::Schedule::guided(1);
    execution.pool = &pool;
    const double seconds = best_of(2, [&] { system = bem::assemble(model, {}, execution); });
    if (threads == 1) assembly_base = seconds;
    emit("assembly", threads, m, system.matrix.size(), seconds, assembly_base,
         system.matrix.tile_stats().resident_bytes);
  }

  // --- Phase 2: blocked Cholesky on the grid system and a synthetic SPD. ----
  double grid_chol_base = 0.0;
  for (const std::size_t threads : thread_counts) {
    par::ThreadPool pool(threads);
    const la::CholeskyOptions options{.block = 64, .pool = threads > 1 ? &pool : nullptr};
    const double seconds =
        best_of(3, [&] { const la::Cholesky factor(system.matrix, options); (void)factor; });
    if (threads == 1) grid_chol_base = seconds;
    emit("cholesky_grid", threads, m, system.matrix.size(), seconds, grid_chol_base,
         system.matrix.tile_stats().resident_bytes);
  }

  const la::SymMatrix synthetic = la::testing::random_spd(synthetic_n, 42);
  double synth_chol_base = 0.0;
  for (const std::size_t threads : thread_counts) {
    par::ThreadPool pool(threads);
    const la::CholeskyOptions options{.block = 64, .pool = threads > 1 ? &pool : nullptr};
    const double seconds =
        best_of(3, [&] { const la::Cholesky factor(synthetic, options); (void)factor; });
    if (threads == 1) synth_chol_base = seconds;
    emit("cholesky_synthetic", threads, 0, synthetic_n, seconds, synth_chol_base,
         synthetic.tile_stats().resident_bytes);
  }

  // --- Phase 3: PCG on the grid system (parallel matvec). -------------------
  double pcg_base = 0.0;
  for (const std::size_t threads : thread_counts) {
    par::ThreadPool pool(threads);
    const bem::SolverOptions options{.kind = bem::SolverKind::kPcg};
    const bem::SolveExecution execution{.pool = threads > 1 ? &pool : nullptr};
    const double seconds =
        best_of(3, [&] { (void)bem::solve(system.matrix, system.rhs, options, execution); });
    if (threads == 1) pcg_base = seconds;
    emit("pcg", threads, m, system.matrix.size(), seconds, pcg_base,
         system.matrix.tile_stats().resident_bytes);
  }
  return 0;
}

// Congruence-cache bench: assembly wall time with the cache off vs on, hit
// rate and entry count, plus cache-on/off parity, on two grids:
//  * the uniform rectangular bench grid (the paper's case; nearly all pairs
//    are translated/rotated/reflected/transposed copies of a few hundred
//    classes), and
//  * a geometrically graded grid, the adversarial low-congruence case the
//    cache must degrade gracefully on.
// One JSON line per (grid, threads) for artifact archiving and diffing.
//
// Usage: bench_cache [cells] [max_threads] [--check] [--warm]
//   cells        grid cells per side (default 12 -> 312 elements)
//   max_threads  thread counts 1, 2, 4, ... up to this value (default 1)
//   --check      CI parity smoke: exit nonzero unless cache-on matches
//                cache-off to 1e-12 relative on every packed entry, for
//                every grid and thread count.
//   --warm       cross-candidate mode: run a ladder of uniform grids of
//                growing extent (fixed 5 m cell size) through one warm
//                engine::Study and emit per-candidate hit-rate JSON — the
//                warm rate of candidate k > 1 vs the cold rate a fresh
//                cache achieves on the same grid. This is the design_search
//                reuse pattern in isolation.
//
// The JSON lines double as input to CI's bench-regression gate
// (bench/compare_bench.py vs bench/baselines/): the hit rates gate on
// every run, the timings once the baseline's pool_threads matches the
// runner's. See bench/baselines/README.md for re-baselining.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/study.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"

namespace {

using namespace ebem;

/// Max relative elementwise deviation between two packed matrices.
double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::abs(a[k]) + 1e-300;
    worst = std::max(worst, std::abs(a[k] - b[k]) / scale);
  }
  return worst;
}

double best_of(int repeats, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    run();
    best = std::min(best, timer.seconds());
  }
  return best;
}

soil::LayeredSoil bench_soil() { return soil::LayeredSoil::two_layer(0.005, 0.016, 1.0); }

bem::BemModel uniform_bench_model(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), bench_soil());
}

/// Cross-candidate warm mode: the design_search access pattern — a ladder of
/// similar grids against one warm engine — reduced to its cache behaviour.
int run_warm_ladder(std::size_t cells) {
  const std::size_t first = cells > 6 ? cells - 6 : 2;

  engine::Engine engine;  // serial, warm cache on: isolates cache effects
  bool warm_beats_cold = true;
  std::size_t candidate = 0;
  for (std::size_t c = first; c <= cells; c += 2, ++candidate) {
    const bem::BemModel model = uniform_bench_model(c);

    const bem::CongruenceCacheStats before = engine.cache_stats();
    WallTimer warm_timer;
    (void)engine.assemble(model);
    const double warm_seconds = warm_timer.seconds();
    const bem::CongruenceCacheStats warm = engine.cache_stats().delta_since(before);

    // Cold reference: the same candidate against a fresh cache.
    bem::CongruenceCache cold_cache;
    bem::AssemblyResult cold;
    WallTimer cold_timer;
    cold = bem::assemble(model, {}, {.cache = &cold_cache});
    const double cold_seconds = cold_timer.seconds();
    const bem::CongruenceCacheStats cold_stats = cold.cache_stats;

    if (candidate > 0 && warm.hit_rate() <= cold_stats.hit_rate()) warm_beats_cold = false;
    std::printf(
        "{\"bench\":\"cache_warm\",\"candidate\":%zu,\"cells\":%zu,\"elements\":%zu,"
        "\"warm_hits\":%zu,\"warm_misses\":%zu,\"warm_hit_rate\":%.4f,"
        "\"cold_hit_rate\":%.4f,\"cache_entries\":%zu,"
        "\"warm_seconds\":%.6f,\"cold_seconds\":%.6f,"
        "\"hw_concurrency\":%zu,\"pool_threads\":%zu}\n",
        candidate, c, model.element_count(), warm.hits, warm.misses, warm.hit_rate(),
        cold_stats.hit_rate(), engine.cache_stats().entries, warm_seconds, cold_seconds,
        par::hardware_threads(), engine.num_threads());
  }
  if (!warm_beats_cold) {
    std::fprintf(stderr, "bench_cache --warm: a warm candidate did not beat its cold-start "
                         "hit rate\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 12;
  std::size_t max_threads = 1;
  bool check = false;
  bool warm = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      warm = true;
    } else if (positional == 0) {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      max_threads = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (cells == 0 || max_threads == 0) {
    std::fprintf(stderr,
                 "usage: bench_cache [cells >= 1] [max_threads >= 1] [--check] [--warm]\n");
    return 1;
  }
  if (warm && check) {
    // Refuse rather than silently skip the parity gate: the two modes are
    // separate CI steps with separate pass criteria.
    std::fprintf(stderr, "bench_cache: --check and --warm are mutually exclusive modes\n");
    return 1;
  }
  if (warm) return run_warm_ladder(cells);  // serial; max_threads not used

  const auto soil = bench_soil();
  const double side = 5.0 * static_cast<double>(cells);

  geom::RectGridSpec uniform_spec;
  uniform_spec.length_x = side;
  uniform_spec.length_y = side;
  uniform_spec.cells_x = cells;
  uniform_spec.cells_y = cells;

  geom::GradedRectGridSpec graded_spec;
  graded_spec.length_x = side;
  graded_spec.length_y = side;
  graded_spec.cells_x = cells;
  graded_spec.cells_y = cells;
  graded_spec.grading = 2.2;

  struct GridCase {
    const char* name;
    bem::BemModel model;
  };
  const GridCase cases[] = {
      {"uniform", bem::BemModel(geom::Mesh::build(geom::make_rect_grid(uniform_spec)), soil)},
      {"graded",
       bem::BemModel(geom::Mesh::build(geom::make_graded_rect_grid(graded_spec)), soil)},
  };

  bool parity_ok = true;
  for (const GridCase& grid : cases) {
    const std::size_t m = grid.model.element_count();
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      par::ThreadPool pool(threads);
      bem::AssemblyExecution execution;
      execution.num_threads = threads;
      execution.schedule = par::Schedule::guided(1);
      if (threads > 1) execution.pool = &pool;

      bem::AssemblyResult off;
      const double seconds_off =
          best_of(2, [&] { off = bem::assemble(grid.model, {}, execution); });

      bem::AssemblyResult on;
      // Each repetition owns a cold cache, so the timing includes the
      // signature hashing and warm-up integrations the cache really costs.
      const double seconds_on = best_of(2, [&] {
        bem::CongruenceCache cache;
        execution.cache = &cache;
        on = bem::assemble(grid.model, {}, execution);
        execution.cache = nullptr;
      });

      const double diff = max_rel_diff(off.matrix.packed(), on.matrix.packed());
      const bool ok = diff <= 1e-12;
      parity_ok = parity_ok && ok;
      std::printf(
          "{\"bench\":\"cache\",\"grid\":\"%s\",\"elements\":%zu,\"pairs\":%zu,"
          "\"threads\":%zu,\"hits\":%zu,\"misses\":%zu,\"entries\":%zu,"
          "\"hit_rate\":%.4f,\"seconds_off\":%.6f,\"seconds_on\":%.6f,"
          "\"speedup\":%.3f,\"max_rel_diff\":%.3e,\"parity_ok\":%s,"
          "\"matrix_bytes_resident\":%zu,\"hw_concurrency\":%zu,\"pool_threads\":%zu,"
          "\"peak_rss_kb\":%zu}\n",
          grid.name, m, on.element_pairs, threads, on.cache_stats.hits, on.cache_stats.misses,
          on.cache_stats.entries, on.cache_stats.hit_rate(), seconds_off, seconds_on,
          seconds_off / seconds_on, diff, ok ? "true" : "false",
          on.matrix.tile_stats().resident_bytes, par::hardware_threads(), threads,
          peak_rss_bytes() / 1024);
    }
  }

  if (check && !parity_ok) {
    std::fprintf(stderr, "bench_cache: cache-on assembly deviates from cache-off by more "
                         "than 1e-12 relative\n");
    return 1;
  }
  return 0;
}

// Congruence-cache bench: assembly wall time with the cache off vs on, hit
// rate and entry count, plus cache-on/off parity, on two grids:
//  * the uniform rectangular bench grid (the paper's case; nearly all pairs
//    are translated/rotated/reflected copies of a few hundred classes), and
//  * a geometrically graded grid, the adversarial low-congruence case the
//    cache must degrade gracefully on.
// One JSON line per (grid, threads) for artifact archiving and diffing.
//
// Usage: bench_cache [cells] [max_threads] [--check]
//   cells        grid cells per side (default 12 -> 312 elements)
//   max_threads  thread counts 1, 2, 4, ... up to this value (default 1)
//   --check      CI parity smoke: exit nonzero unless cache-on matches
//                cache-off to 1e-12 relative on every packed entry, for
//                every grid and thread count.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/common/timer.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"

namespace {

using namespace ebem;

/// Max relative elementwise deviation between two packed matrices.
double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::abs(a[k]) + 1e-300;
    worst = std::max(worst, std::abs(a[k] - b[k]) / scale);
  }
  return worst;
}

double best_of(int repeats, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    run();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 12;
  std::size_t max_threads = 1;
  bool check = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (positional == 0) {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      max_threads = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (cells == 0 || max_threads == 0) {
    std::fprintf(stderr, "usage: bench_cache [cells >= 1] [max_threads >= 1] [--check]\n");
    return 1;
  }

  const auto soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const double side = 5.0 * static_cast<double>(cells);

  geom::RectGridSpec uniform_spec;
  uniform_spec.length_x = side;
  uniform_spec.length_y = side;
  uniform_spec.cells_x = cells;
  uniform_spec.cells_y = cells;

  geom::GradedRectGridSpec graded_spec;
  graded_spec.length_x = side;
  graded_spec.length_y = side;
  graded_spec.cells_x = cells;
  graded_spec.cells_y = cells;
  graded_spec.grading = 2.2;

  struct GridCase {
    const char* name;
    bem::BemModel model;
  };
  const GridCase cases[] = {
      {"uniform", bem::BemModel(geom::Mesh::build(geom::make_rect_grid(uniform_spec)), soil)},
      {"graded",
       bem::BemModel(geom::Mesh::build(geom::make_graded_rect_grid(graded_spec)), soil)},
  };

  bool parity_ok = true;
  for (const GridCase& grid : cases) {
    const std::size_t m = grid.model.element_count();
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      par::ThreadPool pool(threads);
      bem::AssemblyOptions options;
      options.num_threads = threads;
      options.schedule = par::Schedule::guided(1);
      if (threads > 1) options.pool = &pool;

      bem::AssemblyResult off;
      const double seconds_off = best_of(2, [&] { off = bem::assemble(grid.model, options); });

      options.use_congruence_cache = true;
      bem::AssemblyResult on;
      // Each repetition owns a cold cache, so the timing includes the
      // signature hashing and warm-up integrations the cache really costs.
      const double seconds_on = best_of(2, [&] { on = bem::assemble(grid.model, options); });

      const double diff = max_rel_diff(off.matrix.packed(), on.matrix.packed());
      const bool ok = diff <= 1e-12;
      parity_ok = parity_ok && ok;
      std::printf(
          "{\"bench\":\"cache\",\"grid\":\"%s\",\"elements\":%zu,\"pairs\":%zu,"
          "\"threads\":%zu,\"hits\":%zu,\"misses\":%zu,\"entries\":%zu,"
          "\"hit_rate\":%.4f,\"seconds_off\":%.6f,\"seconds_on\":%.6f,"
          "\"speedup\":%.3f,\"max_rel_diff\":%.3e,\"parity_ok\":%s}\n",
          grid.name, m, on.element_pairs, threads, on.cache_stats.hits, on.cache_stats.misses,
          on.cache_stats.entries, on.cache_stats.hit_rate(), seconds_off, seconds_on,
          seconds_off / seconds_on, diff, ok ? "true" : "false");
    }
  }

  if (check && !parity_ok) {
    std::fprintf(stderr, "bench_cache: cache-on assembly deviates from cache-off by more "
                         "than 1e-12 relative\n");
    return 1;
  }
  return 0;
}

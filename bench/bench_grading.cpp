// Ablation: unequal (graded) conductor spacing vs the uniform mesh at
// equal conductor cost.
//
// Classical grounding-design result (IEEE Std 80 discussion of unequal
// spacing): compressing conductors toward the perimeter evens out the
// leakage density — edge conductors no longer run far hotter than central
// ones — and trims the mesh (worst touch) voltage for the same material.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const auto soil = soil::LayeredSoil::uniform(0.02);
  const double gpr = 10e3;

  std::printf("Graded vs uniform spacing — 40x40 m grid, 5x5 mesh, equal copper\n\n");
  io::Table table({"grading", "Req (Ohm)", "sigma max/mean", "mesh voltage (V)"});

  for (double grading : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    geom::GradedRectGridSpec spec;
    spec.length_x = 40.0;
    spec.length_y = 40.0;
    spec.cells_x = 5;
    spec.cells_y = 5;
    spec.grading = grading;
    const auto grid = geom::make_graded_rect_grid(spec);

    cad::DesignOptions options;
    options.analysis.gpr = gpr;
    cad::GroundingSystem system(grid, soil, options);
    const cad::Report& report = system.analyze();

    const auto leakage =
        post::element_leakage(system.model(), system.solution(), bem::BasisKind::kLinear);
    const post::LeakageStats stats = post::leakage_stats(system.model(), leakage);

    const auto evaluator = system.potential_evaluator();
    const double mesh_v = post::mesh_voltage(evaluator, gpr, 2.0, 38.0, 2.0, 38.0, 9, 9);

    table.add_row({io::Table::num(grading, 1), io::Table::num(report.equivalent_resistance),
                   io::Table::num(stats.max_line_density / stats.mean_line_density, 3),
                   io::Table::num(mesh_v, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shapes to check: the density spread (max/mean) falls as grading rises;\n"
              "the mesh voltage improves through moderate grading at nearly constant\n"
              "Req (Req depends mostly on area and total length, not the layout).\n");
  return 0;
}

// Scenario-campaign bench: a stochastic two-layer soil sweep (and a damage
// sweep) of the bench grid driven through campaign::Runner, at pipeline
// widths 1 / 2 / 4 with one pool thread. One JSON line per (sweep, width)
// for artifact archiving and the CI bench-regression gate.
//
// What the lines show:
//  * the soil sweep is the fingerprint guard's worst case — every scenario
//    drops the warm cache (cache_drops == scenarios) and the guard's wall
//    cost is the gate_wait_seconds field. Its hit_rate stays high anyway:
//    congruent pairs *within* one grid replay each other even on a
//    just-dropped cache — what the drop actually costs is the
//    cross-scenario increment (compare the damage sweep's hit_rate);
//  * the damage sweep keeps one physics and additionally replays the
//    undamaged majority of the grid across scenarios — the measured
//    argument for batching campaigns by physics;
//  * p5/p50/p95/p99 of GPR and the safety margins are byte-for-byte
//    identical across widths: observations commit in scenario-index order.
//
// Usage: bench_campaign [scenarios] [cells] [--check]
//   scenarios  soil-sweep ensemble size (default 256; the damage sweep runs
//              scenarios/4). The sampler is stratified per ensemble size, so
//              percentiles are comparable only at equal scenario counts.
//   cells      bench grid cells per side, 5 m pitch (default 6 -> 84
//              elements per undamaged scenario)
//   --check    CI determinism smoke: exit nonzero unless the percentile
//              report (resistance, GPR, touch/step margins — all four
//              tracked quantiles) is bit-identical across widths 1/2/4,
//              peak in-flight stayed within the window, and the guard/cache
//              counters are present (soil: one drop per scenario; damage:
//              warm hits > 0).
//
// The JSON lines feed CI's bench-regression gate (bench/compare_bench.py vs
// bench/baselines/); see bench/baselines/README.md for re-baselining.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/campaign/damage_ensemble.hpp"
#include "src/campaign/runner.hpp"
#include "src/campaign/soil_ensemble.hpp"
#include "src/campaign/summary.hpp"
#include "src/common/resource_usage.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/study.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/parallel/thread_pool.hpp"

namespace {

using namespace ebem;

constexpr std::uint64_t kSeed = 2026;
constexpr double kFaultCurrent = 1000.0;  // A

std::vector<geom::Conductor> bench_grid(std::size_t cells) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  return geom::make_rect_grid(spec);
}

campaign::CampaignOptions campaign_options(std::size_t cells, std::size_t width) {
  campaign::CampaignOptions options;
  options.window = 2 * width;
  options.fault_current = kFaultCurrent;
  campaign::SafetyPatch patch;
  patch.x0 = 0.0;
  patch.x1 = 5.0 * static_cast<double>(cells);
  patch.y0 = 0.0;
  patch.y1 = 5.0 * static_cast<double>(cells);
  patch.nx = 4;
  patch.ny = 4;
  patch.criteria.surface_resistivity = 3000.0;
  options.safety = patch;
  return options;
}

campaign::CampaignResult run_sweep(const campaign::ScenarioSource& source, std::size_t cells,
                                   std::size_t width) {
  engine::ExecutionConfig config;
  config.num_threads = 1;  // determinism contract: vary only the width
  config.pipeline_width = width;
  config.max_pending_runs = 2 * width;  // engine-level backstop of the window
  engine::Engine engine(config);
  engine::Study study(engine);
  campaign::Runner runner(study, campaign_options(cells, width));
  return runner.run(source);
}

void emit(const char* sweep, std::size_t scenarios, std::size_t cells, std::size_t width,
          const campaign::CampaignResult& result) {
  std::printf(
      "{\"bench\":\"campaign\",\"sweep\":\"%s\",\"scenarios\":%zu,\"cells\":%zu,"
      "\"width\":%zu,\"completed\":%zu,\"seconds\":%.6f,\"scenarios_per_second\":%.3f,"
      "\"hit_rate\":%.4f,\"cache_drops\":%.0f,\"gate_wait_seconds\":%.6f,"
      "\"p5_gpr\":%.6f,\"p50_gpr\":%.6f,\"p95_gpr\":%.6f,\"p99_gpr\":%.6f,"
      "\"p5_touch_margin\":%.6f,\"p50_touch_margin\":%.6f,\"p95_touch_margin\":%.6f,"
      "\"touch_violations\":%zu,\"peak_in_flight\":%zu,\"window\":%zu,"
      "\"hw_concurrency\":%zu,\"pool_threads\":1,\"peak_rss_kb\":%zu}\n",
      sweep, scenarios, cells, width, result.completed, result.wall_seconds,
      result.wall_seconds > 0.0 ? static_cast<double>(result.completed) / result.wall_seconds
                                : 0.0,
      result.cache.hit_rate(), result.phases.counter(engine::kCacheDropsCounter),
      result.phases.counter(engine::kGateWaitSecondsCounter), result.gpr.p5(), result.gpr.p50(),
      result.gpr.p95(), result.gpr.p99(), result.touch_margin.p5(), result.touch_margin.p50(),
      result.touch_margin.p95(), result.touch_violations, result.peak_in_flight,
      2 * width, par::hardware_threads(), peak_rss_bytes() / 1024);
}

bool percentiles_identical(const campaign::CampaignResult& a, const campaign::CampaignResult& b) {
  for (const double p : campaign::kSummaryProbabilities) {
    if (a.resistance.quantile(p) != b.resistance.quantile(p)) return false;
    if (a.gpr.quantile(p) != b.gpr.quantile(p)) return false;
    if (a.touch_margin.quantile(p) != b.touch_margin.quantile(p)) return false;
    if (a.step_margin.quantile(p) != b.step_margin.quantile(p)) return false;
  }
  return a.touch_violations == b.touch_violations && a.step_violations == b.step_violations;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scenarios = 256;
  std::size_t cells = 6;
  bool check = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (positional == 0) {
      scenarios = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      cells = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (scenarios < 8 || cells < 2) {
    std::fprintf(stderr, "usage: bench_campaign [scenarios >= 8] [cells >= 2] [--check]\n");
    return 1;
  }

  const std::vector<geom::Conductor> grid = bench_grid(cells);
  const auto nominal = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);

  // Soil sweep at widths 1 / 2 / 4 — the determinism triple.
  const campaign::SoilSweep soil_sweep(
      grid, {},
      campaign::SoilEnsemble(campaign::SoilDistribution::relative(nominal, 0.2, 0.2, 0.3),
                             scenarios, kSeed));
  std::vector<campaign::CampaignResult> soil_results;
  for (const std::size_t width : {1u, 2u, 4u}) {
    soil_results.push_back(run_sweep(soil_sweep, cells, width));
    emit("soil", scenarios, cells, width, soil_results.back());
  }

  // Damage sweep (one physics, warm cache shared across scenarios).
  campaign::DamageOptions damage_options;
  damage_options.max_breaks = 3;
  const campaign::DamageSweep damage_sweep(
      campaign::DamageEnsemble(grid, nominal, damage_options, scenarios / 4, kSeed));
  const campaign::CampaignResult damage = run_sweep(damage_sweep, cells, 2);
  emit("damage", scenarios / 4, cells, 2, damage);

  if (!check) return 0;

  bool ok = true;
  if (!percentiles_identical(soil_results[0], soil_results[1]) ||
      !percentiles_identical(soil_results[0], soil_results[2])) {
    std::fprintf(stderr,
                 "bench_campaign: percentile report differs across pipeline widths 1/2/4\n");
    ok = false;
  }
  for (std::size_t i = 0; i < soil_results.size(); ++i) {
    const std::size_t window = 2 * (std::size_t{1} << i);
    if (soil_results[i].peak_in_flight > window) {
      std::fprintf(stderr, "bench_campaign: peak in-flight %zu exceeded window %zu\n",
                   soil_results[i].peak_in_flight, window);
      ok = false;
    }
    if (soil_results[i].phases.counter(engine::kCacheDropsCounter) !=
        static_cast<double>(soil_results[i].completed)) {
      std::fprintf(stderr, "bench_campaign: soil sweep expected one cache drop per scenario\n");
      ok = false;
    }
  }
  if (damage.cache.hits == 0) {
    std::fprintf(stderr, "bench_campaign: damage sweep produced no warm-cache hits\n");
    ok = false;
  }
  if (damage.peak_in_flight > 4) {
    std::fprintf(stderr, "bench_campaign: damage sweep peak in-flight exceeded window\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

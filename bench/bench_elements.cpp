// Ablation: Galerkin linear elements vs constant-collocation elements under
// mesh refinement.
//
// Background (paper §1 and ref [6] "Why do computer methods for grounding
// analysis produce anomalous results?"): older point-matching methods drift
// as segmentation increases. The Galerkin formulation is the paper's answer;
// this bench tracks Req for both bases as elements shrink.
#include <cstdio>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  geom::RectGridSpec spec;
  spec.length_x = 30.0;
  spec.length_y = 30.0;
  spec.cells_x = 3;
  spec.cells_y = 3;
  const auto grid = geom::make_rect_grid(spec);
  const auto soil = soil::LayeredSoil::uniform(0.02);

  std::printf("Element-type ablation — 30x30 m grid, uniform soil (Req in Ohm)\n\n");
  io::Table table({"target elem (m)", "elements", "Galerkin linear", "constant"});

  for (double h : {10.0, 5.0, 2.5, 1.25}) {
    cad::DesignOptions linear;
    linear.mesh.target_element_length = h;
    linear.analysis.assembly.integrator.basis = bem::BasisKind::kLinear;
    cad::GroundingSystem ls(grid, soil, linear);
    const double linear_req = ls.analyze().equivalent_resistance;

    cad::DesignOptions constant = linear;
    constant.analysis.assembly.integrator.basis = bem::BasisKind::kConstant;
    cad::GroundingSystem cs(grid, soil, constant);
    const double constant_req = cs.analyze().equivalent_resistance;

    table.add_row({io::Table::num(h, 2), std::to_string(ls.model().element_count()),
                   io::Table::num(linear_req, 5), io::Table::num(constant_req, 5)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape to check: both bases converge to the same Req from above/below;\n"
              "the Galerkin linear column settles fastest (the paper's design choice).\n");
  return 0;
}

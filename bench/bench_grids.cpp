// Figs. 5.1 and 5.3: the Barbera and Balaidos grid plans.
//
// Prints the geometry inventory next to the paper's stated parameters and
// writes the conductor plans as CSV for external plotting.
#include <cstdio>
#include <fstream>

#include "src/ebem.hpp"

namespace {

void dump_plan(const char* path, const std::vector<ebem::geom::Conductor>& grid) {
  std::ofstream os(path);
  os << "ax,ay,az,bx,by,bz,radius\n";
  for (const auto& c : grid) {
    os << c.a.x << ',' << c.a.y << ',' << c.a.z << ',' << c.b.x << ',' << c.b.y << ',' << c.b.z
       << ',' << c.radius << '\n';
  }
}

}  // namespace

int main() {
  using namespace ebem;

  std::printf("=== Fig. 5.1: Barbera grounding grid plan ===\n");
  const cad::BarberaCase barbera = cad::barbera_case();
  const geom::GridStats bs = geom::grid_stats(barbera.conductors);
  std::printf("conductor segments   %zu      (paper: 408)\n", bs.conductor_count);
  std::printf("bounding box area    %.0f m^2 (paper: right triangle 143 x 89 m)\n",
              bs.area_bbox);
  std::printf("protected area       %.0f m^2 (paper: ~6,600 m^2)\n", 0.5 * bs.area_bbox);
  std::printf("total conductor      %.0f m\n", bs.total_length);
  std::printf("burial depth         %.2f m  (paper: 0.80 m)\n", -bs.max_z);
  const geom::Mesh barbera_mesh = geom::Mesh::build(barbera.conductors);
  std::printf("degrees of freedom   %zu      (paper: 238)\n", barbera_mesh.node_count());
  dump_plan("barbera_plan.csv", barbera.conductors);
  std::printf("plan written to barbera_plan.csv\n\n");

  std::printf("=== Fig. 5.3: Balaidos grounding grid plan ===\n");
  const cad::BalaidosCase balaidos = cad::balaidos_case();
  const geom::GridStats ls = geom::grid_stats(balaidos.conductors);
  std::size_t rods = 0;
  for (const auto& c : balaidos.conductors) {
    if (c.a.x == c.b.x && c.a.y == c.b.y) ++rods;
  }
  std::printf("grid conductors      %zu      (paper: 107)\n", ls.conductor_count - rods);
  std::printf("vertical rods        %zu      (paper: 67, 1.5 m x 14 mm)\n", rods);
  std::printf("bounding box area    %.0f m^2\n", ls.area_bbox);
  std::printf("depth range          %.2f .. %.2f m\n", -ls.max_z, -ls.min_z);
  const geom::Mesh balaidos_mesh = geom::Mesh::build(balaidos.conductors);
  std::printf("elements (unsplit)   %zu      (paper discretization: 241)\n",
              balaidos_mesh.element_count());
  dump_plan("balaidos_plan.csv", balaidos.conductors);
  std::printf("plan written to balaidos_plan.csv\n");
  return 0;
}

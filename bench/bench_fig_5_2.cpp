// Fig. 5.2: Barbera earth-surface potential distribution, uniform vs
// two-layer soil (plus the §5.1 Req / I numbers).
//
// Emits ASCII contour maps, a potential profile across the grid, and CSV
// surface grids (barbera_surface_{uniform,two_layer}.csv).
#include <cstdio>
#include <fstream>

#include "src/ebem.hpp"

int main() {
  using namespace ebem;
  const cad::BarberaCase barbera = cad::barbera_case(12);

  cad::DesignOptions options;
  options.analysis.gpr = barbera.gpr;
  options.analysis.assembly.series.tolerance = 1e-6;

  const struct {
    const char* name;
    const char* csv;
    soil::LayeredSoil soil;
    double paper_req;
    double paper_current;
  } models[] = {
      {"Uniform soil model", "barbera_surface_uniform.csv", barbera.uniform_soil, 0.3128, 31.97},
      {"Two-layer soil model", "barbera_surface_two_layer.csv", barbera.two_layer_soil, 0.3704,
       26.99},
  };

  for (const auto& model : models) {
    cad::GroundingSystem system(barbera.conductors, model.soil, options);
    const cad::Report& report = system.analyze();
    std::printf("=== %s ===\n", model.name);
    std::printf("Req = %.4f Ohm (paper %.4f) | I = %.2f kA (paper %.2f)\n",
                report.equivalent_resistance, model.paper_req, report.total_current / 1e3,
                model.paper_current);

    const auto evaluator = system.potential_evaluator();
    const auto grid = evaluator.surface_grid(-20.0, 100.0, -20.0, 160.0, 31, 31);
    std::printf("%s\n", post::ascii_contour(grid, 62).c_str());
    {
      std::ofstream os(model.csv);
      post::write_contour_csv(os, grid);
    }

    // Potential profile across the triangle interior (y = 40 m line).
    const auto profile = evaluator.profile({-20, 40, 0}, {100, 40, 0}, 13);
    std::printf("profile y=40m, x=-20..100 (kV):");
    for (double v : profile) std::printf(" %.2f", v / 1e3);
    std::printf("\n\n");
  }
  std::printf("Expected shape: the two-layer model (resistive top layer) concentrates\n"
              "equipotential lines closer to the grid edge than the uniform model.\n");
  return 0;
}

// Kernel-evaluation bench: the per-pair cost of the integrator's segment
// kernels, scalar vs batched, per kernel family — the "make cache misses
// fast too" measurement. The congruence cache makes repeated pair
// geometries cheap; this bench tracks what a *miss* costs, which is what
// the batched SoA kernels (src/bem/segment_integrals,
// src/common/simd.hpp) attack.
//
// Families:
//  * uniform    — single-layer soil, 2-term image sweep (kernel cost is
//                 dominated by the segment integrals themselves);
//  * two_layer  — the paper's layered case, O(100)-term image sweeps (the
//                 per-term hoisting and SoA sweep dominate);
//  * hankel     — three-layer soil through the spectral kernel's Gauss
//                 path (panel-batched exponential tables + small in-place
//                 solves inside evaluate_rho).
//
// Modes (uniform / two_layer):
//  * scalar  — IntegratorOptions::SegmentEval::kScalarReference, the
//              pre-batching asinh formulation, one Gauss point at a time;
//  * batched — the default SoA path (one image-term sweep over the whole
//              Gauss-point batch);
//  * mixed   — batched + mixed_tail_threshold = 1e-5 (float tail
//              accumulation experiment; off by default in the library);
//  * warm    — batched + congruence cache, the miss-vs-hit contrast
//              (hit_rate reported).
// The hankel family reports the batched spectral path (there is no scalar
// toggle; the batching lives inside evaluate_rho) plus its parity against
// the two-layer image-series oracle.
//
// One JSON line per (family, mode): seconds (best of 2), ns per element
// pair (per evaluation for hankel), speedup and max packed-entry deviation
// vs the family's scalar mode, pool_threads and peak RSS. The lines feed
// CI's bench-regression gate (bench/compare_bench.py against
// bench/baselines/bench_kernels.jsonl; see bench/baselines/README.md).
//
// Usage: bench_kernels [cells] [--check]
//   cells    grid cells per side (default 12 -> 312 elements; --check
//            defaults to 6 so sanitizer jobs stay fast)
//   --check  CI parity smoke: exit nonzero unless, per family, batched
//            and warm match scalar to <= 1e-12 relative on every packed
//            entry, mixed matches to <= 1e-7 (documented ~1e-9 per-entry
//            bound plus contraction headroom), and the hankel kernel
//            matches the image-series oracle to <= 1e-4 on a two-layer
//            stack. Timing is reported but never gated here — the Release
//            bench job gates seconds against the committed baseline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "src/bem/assembly.hpp"
#include "src/common/resource_usage.hpp"
#include "src/common/timer.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"

namespace {

using namespace ebem;

double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::abs(a[k]) + 1e-300;
    worst = std::max(worst, std::abs(a[k] - b[k]) / scale);
  }
  return worst;
}

double best_of(int repeats, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    run();
    best = std::min(best, timer.seconds());
  }
  return best;
}

bem::BemModel grid_model(std::size_t cells, const soil::LayeredSoil& soil) {
  geom::RectGridSpec spec;
  spec.length_x = 5.0 * static_cast<double>(cells);
  spec.length_y = 5.0 * static_cast<double>(cells);
  spec.cells_x = cells;
  spec.cells_y = cells;
  return bem::BemModel(geom::Mesh::build(geom::make_rect_grid(spec)), soil);
}

void print_line(const char* family, const char* mode, std::size_t cells, std::size_t elements,
                std::size_t pairs, double seconds, double speedup, double diff,
                double hit_rate) {
  std::printf(
      "{\"bench\":\"kernels\",\"family\":\"%s\",\"mode\":\"%s\",\"cells\":%zu,"
      "\"elements\":%zu,\"pairs\":%zu,\"threads\":1,\"seconds\":%.6f,"
      "\"ns_per_pair\":%.1f,\"speedup_vs_scalar\":%.3f,"
      "\"max_rel_diff_vs_scalar\":%.3e,\"hit_rate\":%.4f,"
      "\"hw_concurrency\":%zu,\"pool_threads\":1,\"peak_rss_kb\":%zu}\n",
      family, mode, cells, elements, pairs, seconds,
      seconds * 1e9 / static_cast<double>(std::max<std::size_t>(1, pairs)), speedup, diff,
      hit_rate, par::hardware_threads(), peak_rss_bytes() / 1024);
}

/// Scalar / batched / mixed / warm sweep of one image-kernel family.
bool run_family(const char* family, std::size_t cells, const soil::LayeredSoil& soil) {
  const bem::BemModel model = grid_model(cells, soil);

  bem::AssemblyOptions scalar_options;
  scalar_options.integrator.segment_eval = bem::SegmentEval::kScalarReference;
  bem::AssemblyResult scalar;
  const double scalar_seconds =
      best_of(2, [&] { scalar = bem::assemble(model, scalar_options); });
  print_line(family, "scalar", cells, model.element_count(), scalar.element_pairs,
             scalar_seconds, 1.0, 0.0, 0.0);

  bem::AssemblyResult batched;
  const double batched_seconds = best_of(2, [&] { batched = bem::assemble(model); });
  const double batched_diff = max_rel_diff(scalar.matrix.packed(), batched.matrix.packed());
  print_line(family, "batched", cells, model.element_count(), batched.element_pairs,
             batched_seconds, scalar_seconds / batched_seconds, batched_diff, 0.0);

  bem::AssemblyOptions mixed_options;
  mixed_options.integrator.mixed_tail_threshold = 1e-5;
  bem::AssemblyResult mixed;
  const double mixed_seconds = best_of(2, [&] { mixed = bem::assemble(model, mixed_options); });
  const double mixed_diff = max_rel_diff(scalar.matrix.packed(), mixed.matrix.packed());
  print_line(family, "mixed", cells, model.element_count(), mixed.element_pairs, mixed_seconds,
             scalar_seconds / mixed_seconds, mixed_diff, 0.0);

  bem::AssemblyResult warm;
  // Each repetition owns a cold cache so the timing includes the signature
  // hashing and warm-up integrations the cache really costs (as in
  // bench_cache); the batched kernels price the misses.
  const double warm_seconds = best_of(2, [&] {
    bem::CongruenceCache cache;
    bem::AssemblyExecution execution;
    execution.cache = &cache;
    warm = bem::assemble(model, {}, execution);
  });
  const double warm_diff = max_rel_diff(scalar.matrix.packed(), warm.matrix.packed());
  print_line(family, "warm", cells, model.element_count(), warm.element_pairs, warm_seconds,
             scalar_seconds / warm_seconds, warm_diff, warm.cache_stats.hit_rate());

  return batched_diff <= 1e-12 && warm_diff <= 1e-12 && mixed_diff <= 1e-7;
}

/// Spectral-kernel timing plus the two-layer oracle cross-check. The
/// sample set spans same-layer, cross-layer and near-interface geometry.
bool run_hankel(std::size_t cells) {
  const soil::LayeredSoil three({soil::Layer{1.0 / 400.0, 1.5}, soil::Layer{1.0 / 25.0, 3.0},
                                 soil::Layer{1.0 / 250.0, 0.0}});
  const soil::HankelKernel kernel(three);

  std::vector<geom::Vec3> fields;
  std::vector<geom::Vec3> sources;
  // Depths chosen off every interface (1.0 m on the two-layer oracle stack,
  // 1.5 / 4.5 m on the three-layer stack): a source *exactly* on an
  // interface degenerates the spectral boundary system (the one-sided
  // source-slope sign is evaluated at its own kink — a long-standing edge
  // of the formulation, see hankel_kernel.hpp).
  const double depths[] = {-0.2, -0.9, -2.1, -4.8};
  const double rhos[] = {0.3, 1.0, 4.0, 15.0};
  for (const double zf : depths) {
    for (const double zs : depths) {
      for (const double rho : rhos) {
        fields.push_back({rho, 0.0, zf});
        sources.push_back({0.0, 0.0, zs});
      }
    }
  }

  double sink = 0.0;
  const double seconds = best_of(2, [&] {
    for (std::size_t k = 0; k < fields.size(); ++k) {
      sink += kernel.evaluate_regularized(fields[k], sources[k], 0.01);
    }
  });
  if (!(sink == sink)) return false;  // keep the sweep observable

  // Oracle parity: on a two-layer stack the spectral kernel and the image
  // series must agree (each validates the other; see the kernel headers).
  const soil::LayeredSoil two = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const soil::HankelKernel hankel_two(two);
  const soil::ImageKernel image_two(two);
  double parity = 0.0;
  for (std::size_t k = 0; k < fields.size(); ++k) {
    const double a = hankel_two.evaluate_regularized(fields[k], sources[k], 0.01);
    const double b = image_two.evaluate_regularized(fields[k], sources[k], 0.01);
    parity = std::max(parity, std::abs(a - b) / (std::abs(b) + 1e-300));
  }

  print_line("hankel", "batched", cells, 0, fields.size(), seconds, 1.0, parity, 0.0);
  return parity <= 1e-4;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      cells = std::strtoul(argv[i], nullptr, 10);
    }
  }
  if (cells == 0) cells = check ? 6 : 12;
  if (cells < 2) {
    std::fprintf(stderr, "usage: bench_kernels [cells >= 2] [--check]\n");
    return 1;
  }

  bool ok = true;
  ok = run_family("uniform", cells, soil::LayeredSoil::uniform(0.01)) && ok;
  ok = run_family("two_layer", cells, soil::LayeredSoil::two_layer(0.005, 0.016, 1.0)) && ok;
  ok = run_hankel(cells) && ok;

  if (check && !ok) {
    std::fprintf(stderr,
                 "bench_kernels: a kernel mode broke parity (batched/warm vs scalar > 1e-12, "
                 "mixed > 1e-7, or hankel vs image oracle > 1e-4)\n");
    return 1;
  }
  return 0;
}

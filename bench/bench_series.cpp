// Micro-bench: image-series kernel evaluation cost across soil
// configurations and tolerances.
//
// Quantifies §4.3's observation that two-layer matrix generation is far
// more expensive than uniform (infinite vs 2-term series) and §6.2's note
// that layer contrast (|kappa| -> 1) slows convergence — the root cause of
// Table 6.3's model B vs C gap.
#include <benchmark/benchmark.h>

#include "src/ebem.hpp"

namespace {

using ebem::geom::Vec3;
using ebem::soil::ImageKernel;
using ebem::soil::LayeredSoil;
using ebem::soil::SeriesOptions;

void BM_KernelUniform(benchmark::State& state) {
  const ImageKernel kernel(LayeredSoil::uniform(0.016));
  const Vec3 x{3, 0, -0.5};
  const Vec3 xi{0, 0, -0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.evaluate_regularized(x, xi, 0.006));
  }
  state.counters["terms"] = static_cast<double>(kernel.terms(0, 0).size());
}
BENCHMARK(BM_KernelUniform);

void BM_KernelTwoLayerContrast(benchmark::State& state) {
  // kappa sweep: 0.1 .. 0.9 by argument; higher contrast -> longer series.
  const double kappa = static_cast<double>(state.range(0)) / 10.0;
  // Solve (g1-g2)/(g1+g2) = -kappa with g2 = 0.016.
  const double g2 = 0.016;
  const double g1 = g2 * (1.0 - kappa) / (1.0 + kappa);
  const ImageKernel kernel(LayeredSoil::two_layer(g1, g2, 1.0), SeriesOptions{1e-9, 4096});
  const Vec3 x{3, 0, -0.5};
  const Vec3 xi{0, 0, -0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.evaluate_regularized(x, xi, 0.006));
  }
  state.counters["terms"] = static_cast<double>(kernel.terms(0, 0).size());
}
BENCHMARK(BM_KernelTwoLayerContrast)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(9);

void BM_KernelByLayerPair(benchmark::State& state) {
  // The four (source, field) layer families have different image counts:
  // upper-upper carries 4 images per reflection (model C's burden).
  const LayeredSoil soil = LayeredSoil::two_layer(0.0025, 0.02, 1.0);
  const ImageKernel kernel(soil, SeriesOptions{1e-9, 4096});
  const bool src_upper = state.range(0) != 0;
  const bool field_upper = state.range(1) != 0;
  const Vec3 xi{0, 0, src_upper ? -0.5 : -1.5};
  const Vec3 x{3, 0, field_upper ? -0.4 : -1.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.evaluate_regularized(x, xi, 0.006));
  }
  state.counters["terms"] = static_cast<double>(
      kernel.terms(src_upper ? 0 : 1, field_upper ? 0 : 1).size());
}
BENCHMARK(BM_KernelByLayerPair)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({0, 0});

void BM_SegmentInnerIntegralAnalytic(benchmark::State& state) {
  // The workhorse closed form behind every elemental coefficient.
  const Vec3 p{0.5, 1.0, -0.8};
  const Vec3 a{0, 0, -0.8};
  const Vec3 b{5, 0, -0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebem::bem::segment_potentials(p, a, b, 0.006));
  }
}
BENCHMARK(BM_SegmentInnerIntegralAnalytic);

void BM_HankelOracle(benchmark::State& state) {
  // The validation oracle is orders of magnitude slower than the image
  // series — which is why the production path uses images.
  const LayeredSoil soil = LayeredSoil::two_layer(0.005, 0.016, 1.0);
  const ebem::soil::HankelKernel kernel(soil);
  const Vec3 x{3, 0, -0.5};
  const Vec3 xi{0, 0, -0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.evaluate(x, xi));
  }
}
BENCHMARK(BM_HankelOracle)->Unit(benchmark::kMicrosecond);

}  // namespace

#include "src/fdm/fd_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/la/cg.hpp"

namespace ebem::fdm {

namespace {

/// Node classification on the FD lattice.
enum class NodeKind : std::uint8_t {
  kFree,       ///< unknown potential
  kElectrode,  ///< Dirichlet V = 1 (the GPR-normalized electrode)
  kGround,     ///< Dirichlet V = 0 (truncated far boundary)
};

/// Squared distance from point p to the segment a-b.
double segment_distance2(geom::Vec3 p, geom::Vec3 a, geom::Vec3 b) {
  const geom::Vec3 axis = b - a;
  const double len2 = geom::dot(axis, axis);
  double t = len2 > 0.0 ? geom::dot(p - a, axis) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const geom::Vec3 nearest = a + t * axis;
  const geom::Vec3 d = p - nearest;
  return geom::dot(d, d);
}

struct Lattice {
  double x0 = 0.0, y0 = 0.0;
  double hx = 0.0, hy = 0.0, hz = 0.0;
  std::size_t nx = 0, ny = 0, nz = 0;  // node counts per direction

  [[nodiscard]] std::size_t count() const { return nx * ny * nz; }
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return (k * ny + j) * nx + i;
  }
  [[nodiscard]] geom::Vec3 position(std::size_t i, std::size_t j, std::size_t k) const {
    return {x0 + hx * static_cast<double>(i), y0 + hy * static_cast<double>(j),
            -hz * static_cast<double>(k)};
  }
};

}  // namespace

FdResult solve_grounding(const std::vector<geom::Conductor>& conductors,
                         const soil::LayeredSoil& soil, const FdOptions& options) {
  EBEM_EXPECT(!conductors.empty(), "no conductors");
  EBEM_EXPECT(options.padding > 0.0, "padding must be positive");
  EBEM_EXPECT(options.cells_x >= 8 && options.cells_y >= 8 && options.cells_z >= 8,
              "FD grid too coarse");

  // Box: conductor bounding box padded laterally and below; top at z = 0.
  double min_x = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x, max_y = max_x, min_z = min_x;
  for (const geom::Conductor& c : conductors) {
    for (const geom::Vec3& p : {c.a, c.b}) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
      min_z = std::min(min_z, p.z);
      EBEM_EXPECT(p.z < 0.0, "conductors must be buried");
    }
  }

  Lattice grid;
  grid.nx = options.cells_x + 1;
  grid.ny = options.cells_y + 1;
  grid.nz = options.cells_z + 1;
  grid.x0 = min_x - options.padding;
  grid.y0 = min_y - options.padding;
  grid.hx = (max_x - min_x + 2.0 * options.padding) / static_cast<double>(options.cells_x);
  grid.hy = (max_y - min_y + 2.0 * options.padding) / static_cast<double>(options.cells_y);
  grid.hz = (-min_z + options.padding) / static_cast<double>(options.cells_z);

  // Classify nodes.
  std::vector<NodeKind> kind(grid.count(), NodeKind::kFree);
  const double min_h = std::min({grid.hx, grid.hy, grid.hz});
  std::size_t electrode_nodes = 0;
  for (std::size_t k = 0; k < grid.nz; ++k) {
    for (std::size_t j = 0; j < grid.ny; ++j) {
      for (std::size_t i = 0; i < grid.nx; ++i) {
        const std::size_t idx = grid.index(i, j, k);
        if (i == 0 || i + 1 == grid.nx || j == 0 || j + 1 == grid.ny || k + 1 == grid.nz) {
          kind[idx] = NodeKind::kGround;  // truncated far field
          continue;
        }
        const geom::Vec3 p = grid.position(i, j, k);
        for (const geom::Conductor& c : conductors) {
          // Conductors thinner than the lattice collapse to the nearest
          // node line (effective radius ~ half a cell).
          const double capture = std::max(c.radius, 0.5 * min_h);
          if (segment_distance2(p, c.a, c.b) <= square(capture)) {
            kind[idx] = NodeKind::kElectrode;
            ++electrode_nodes;
            break;
          }
        }
      }
    }
  }
  EBEM_EXPECT(electrode_nodes > 0, "no FD node captured an electrode; refine the grid");

  // Compress free nodes.
  std::vector<std::size_t> free_index(grid.count(), 0);
  std::size_t n_free = 0;
  for (std::size_t idx = 0; idx < grid.count(); ++idx) {
    if (kind[idx] == NodeKind::kFree) free_index[idx] = n_free++;
  }

  // Face conductances (top row carries half-height lateral faces so the
  // surface Neumann condition is the natural one).
  const double gx_area = grid.hy * grid.hz / grid.hx;
  const double gy_area = grid.hx * grid.hz / grid.hy;
  const double gz_area = grid.hx * grid.hy / grid.hz;
  const auto face_gamma = [&](double z_face) {
    return soil.conductivity(soil.layer_of(std::min(z_face, 0.0)));
  };

  struct Face {
    long di, dj, dk;
  };
  static constexpr Face kFaces[] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                                    {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};

  // Conductance of the face from node (i,j,k) toward (i+di, j+dj, k+dk).
  const auto conductance = [&](std::size_t i, std::size_t j, std::size_t k, const Face& f) {
    const double z = -grid.hz * static_cast<double>(k);
    if (f.dk != 0) {
      const double z_face = z - 0.5 * grid.hz * static_cast<double>(f.dk);
      return gz_area * face_gamma(z_face);
    }
    double g = (f.di != 0 ? gx_area : gy_area) * face_gamma(z);
    if (k == 0) g *= 0.5;  // half control volume at the surface
    (void)i;
    (void)j;
    return g;
  };

  const auto neighbor_exists = [&](std::size_t i, std::size_t j, std::size_t k, const Face& f) {
    const long ni = static_cast<long>(i) + f.di;
    const long nj = static_cast<long>(j) + f.dj;
    const long nk = static_cast<long>(k) + f.dk;
    return ni >= 0 && nj >= 0 && nk >= 0 && ni < static_cast<long>(grid.nx) &&
           nj < static_cast<long>(grid.ny) && nk < static_cast<long>(grid.nz);
  };

  // Assemble the RHS and diagonal once; apply the stencil matrix-free.
  std::vector<double> rhs(n_free, 0.0);
  std::vector<double> diagonal(n_free, 0.0);
  for (std::size_t k = 0; k < grid.nz; ++k) {
    for (std::size_t j = 0; j < grid.ny; ++j) {
      for (std::size_t i = 0; i < grid.nx; ++i) {
        const std::size_t idx = grid.index(i, j, k);
        if (kind[idx] != NodeKind::kFree) continue;
        const std::size_t row = free_index[idx];
        for (const Face& f : kFaces) {
          if (!neighbor_exists(i, j, k, f)) continue;  // surface: natural Neumann
          const double g = conductance(i, j, k, f);
          diagonal[row] += g;
          const std::size_t nidx =
              grid.index(i + static_cast<std::size_t>(f.di), j + static_cast<std::size_t>(f.dj),
                         k + static_cast<std::size_t>(f.dk));
          if (kind[nidx] == NodeKind::kElectrode) rhs[row] += g;  // V = 1
        }
      }
    }
  }

  la::LinearOperator op;
  op.size = n_free;
  op.diagonal = diagonal;
  op.apply = [&](std::span<const double> x, std::span<double> y) {
    for (std::size_t row = 0; row < n_free; ++row) y[row] = 0.0;
    for (std::size_t k = 0; k < grid.nz; ++k) {
      for (std::size_t j = 0; j < grid.ny; ++j) {
        for (std::size_t i = 0; i < grid.nx; ++i) {
          const std::size_t idx = grid.index(i, j, k);
          if (kind[idx] != NodeKind::kFree) continue;
          const std::size_t row = free_index[idx];
          double sum = diagonal[row] * x[row];
          for (const Face& f : kFaces) {
            if (!neighbor_exists(i, j, k, f)) continue;
            const std::size_t nidx = grid.index(i + static_cast<std::size_t>(f.di),
                                                j + static_cast<std::size_t>(f.dj),
                                                k + static_cast<std::size_t>(f.dk));
            if (kind[nidx] != NodeKind::kFree) continue;
            sum -= conductance(i, j, k, f) * x[free_index[nidx]];
          }
          y[row] = sum;
        }
      }
    }
  };

  la::CgOptions cg_options;
  cg_options.tolerance = options.cg_tolerance;
  cg_options.max_iterations = options.max_iterations;
  const la::CgResult cg = la::conjugate_gradient(op, rhs, cg_options);

  // Total current: flux out of every electrode node.
  double current = 0.0;
  for (std::size_t k = 0; k < grid.nz; ++k) {
    for (std::size_t j = 0; j < grid.ny; ++j) {
      for (std::size_t i = 0; i < grid.nx; ++i) {
        const std::size_t idx = grid.index(i, j, k);
        if (kind[idx] != NodeKind::kElectrode) continue;
        for (const Face& f : kFaces) {
          if (!neighbor_exists(i, j, k, f)) continue;
          const std::size_t nidx = grid.index(i + static_cast<std::size_t>(f.di),
                                              j + static_cast<std::size_t>(f.dj),
                                              k + static_cast<std::size_t>(f.dk));
          if (kind[nidx] == NodeKind::kElectrode) continue;
          const double v_neighbor =
              kind[nidx] == NodeKind::kFree ? cg.x[free_index[nidx]] : 0.0;
          current += conductance(i, j, k, f) * (1.0 - v_neighbor);
        }
      }
    }
  }
  EBEM_ENSURE(current > 0.0, "non-positive FD leakage current");

  FdResult result;
  result.total_current = current;
  result.equivalent_resistance = 1.0 / current;
  result.unknowns = n_free;
  result.electrode_nodes = electrode_nodes;
  result.cg_iterations = cg.iterations;
  result.converged = cg.converged;
  return result;
}

}  // namespace ebem::fdm

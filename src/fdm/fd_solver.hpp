// Finite-difference reference solver for the grounding problem.
//
// The paper dismisses domain discretization up front: "the use of standard
// numerical techniques (FEM or FD) should involve a completely out of range
// computing effort since discretization of the domain (the whole ground) is
// required" (§1/§3). This module builds exactly that baseline — a
// variable-coefficient 7-point FD discretization of div(gamma grad V) = 0
// on a truncated earth box, electrode nodes pinned to the GPR, matrix-free
// Jacobi-PCG solve — for two purposes:
//  1. an independent cross-check of the BEM equivalent resistance, and
//  2. a quantitative reproduction of the paper's cost argument (see
//     bench_fd_vs_bem: ~10^5 unknowns and seconds for one conductor at
//     percent-level accuracy vs a handful of boundary elements).
//
// Accuracy caveats (validation-grade by design): the earth is truncated to
// a box with V = 0 on its far boundary (error ~ box size), and a conductor
// thinner than half a cell is represented by its nearest node line, which
// behaves like a conductor of effective radius O(cell size). Tests use
// resolvable (thick) conductors and loose tolerances.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/conductor.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::fdm {

struct FdOptions {
  double padding = 30.0;        ///< box margin around the conductors [m]
  std::size_t cells_x = 48;     ///< grid cells per direction
  std::size_t cells_y = 48;
  std::size_t cells_z = 32;
  double cg_tolerance = 1e-8;
  std::size_t max_iterations = 0;  ///< 0 = automatic
};

struct FdResult {
  double equivalent_resistance = 0.0;  ///< [Ohm] at unit GPR
  double total_current = 0.0;          ///< [A] at unit GPR
  std::size_t unknowns = 0;            ///< free FD nodes
  std::size_t electrode_nodes = 0;
  std::size_t cg_iterations = 0;
  bool converged = false;
};

/// Solve the electrokinetic problem for the grounding system on an FD grid
/// and return the equivalent resistance (unit GPR).
[[nodiscard]] FdResult solve_grounding(const std::vector<geom::Conductor>& conductors,
                                       const soil::LayeredSoil& soil,
                                       const FdOptions& options = {});

}  // namespace ebem::fdm

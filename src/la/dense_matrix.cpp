#include "src/la/dense_matrix.hpp"

#include <cassert>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::la {

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == cols_ && y.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * x[j];
    y[i] = sum;
  }
}

DenseMatrix DenseMatrix::transpose_times_self() const {
  DenseMatrix c(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < rows_; ++k) sum += (*this)(k, i) * (*this)(k, j);
      c(i, j) = sum;
      c(j, i) = sum;
    }
  }
  return c;
}

void DenseMatrix::transpose_multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == rows_ && y.size() == cols_);
  for (std::size_t j = 0; j < cols_; ++j) y[j] = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) y[j] += (*this)(i, j) * x[i];
  }
}

std::vector<double> solve_dense(DenseMatrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  EBEM_EXPECT(a.cols() == n && b.size() == n, "solve_dense requires a square system");
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > std::abs(a(pivot, k))) pivot = i;
    }
    EBEM_EXPECT(std::abs(a(pivot, k)) > 0.0, "singular matrix in solve_dense");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      for (std::size_t j = k; j < n; ++j) a(i, j) -= factor * a(k, j);
      b[i] -= factor * b[k];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a(i, j) * x[j];
    x[i] = sum / a(i, i);
  }
  return x;
}

}  // namespace ebem::la

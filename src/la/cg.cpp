#include "src/la/cg.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/la/blas1.hpp"

namespace ebem::la {

CgResult conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                            const CgOptions& options) {
  const std::size_t n = a.size;
  EBEM_EXPECT(b.size() == n, "right-hand-side size mismatch");
  CgResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }
  EBEM_EXPECT(static_cast<bool>(a.apply), "operator has no apply function");

  std::vector<double> inv_diag(n, 1.0);
  if (options.jacobi_preconditioner && !a.diagonal.empty()) {
    EBEM_EXPECT(a.diagonal.size() == n, "diagonal size mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      EBEM_EXPECT(a.diagonal[i] > 0.0, "Jacobi preconditioner requires a positive diagonal");
      inv_diag[i] = 1.0 / a.diagonal[i];
    }
  }

  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;

  const double b_norm = nrm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  double rz = dot(r, z);
  const std::size_t max_iters =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    a.apply(p, ap);
    const double p_ap = dot(p, ap);
    EBEM_EXPECT(p_ap > 0.0, "matrix is not positive definite in CG");
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = iter + 1;
    result.relative_residual = nrm2(r) / b_norm;
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

CgResult conjugate_gradient(const SymMatrix& a, std::span<const double> b,
                            const CgOptions& options) {
  LinearOperator op;
  op.size = a.size();
  op.apply = [&a, pool = options.pool,
              cutoff = options.parallel_cutoff](std::span<const double> x, std::span<double> y) {
    a.multiply(x, y, pool, cutoff);
  };
  if (options.jacobi_preconditioner) op.diagonal = a.diagonal();
  return conjugate_gradient(op, b, options);
}

}  // namespace ebem::la

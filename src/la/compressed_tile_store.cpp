#include "src/la/compressed_tile_store.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::la {

namespace {

/// Invert tile_index = ti (ti + 1) / 2 + tj back to (ti, tj).
void tile_coordinates(std::size_t tile_index, std::size_t* ti, std::size_t* tj) {
  std::size_t i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(tile_index) + 1.0) - 1.0) / 2.0);
  while (i * (i + 1) / 2 > tile_index) --i;           // float round-down
  while ((i + 1) * (i + 2) / 2 <= tile_index) ++i;    // float round-up
  *ti = i;
  *tj = tile_index - i * (i + 1) / 2;
}

}  // namespace

CompressedTileStore::CompressedTileStore(const TileLayout& layout, const StorageConfig& config)
    : TileStore(layout, config), tile_block_(layout.tile_count(), kNone),
      dense_(layout.tile_count()) {
  EBEM_EXPECT(config.compression.enabled(),
              "CompressedTileStore requires an enabled compression config");
}

void CompressedTileStore::install(LowRankBlock block) {
  const TileLayout& l = layout();
  const std::size_t tile = l.tile();
  EBEM_EXPECT(block.row_begin < block.row_end && block.col_begin < block.col_end,
              "low-rank block must be non-empty");
  EBEM_EXPECT(block.row_end <= l.n() && block.col_end <= block.row_begin,
              "low-rank block must lie strictly below the diagonal");
  EBEM_EXPECT(block.row_begin % tile == 0 && block.col_begin % tile == 0 &&
                  (block.row_end % tile == 0 || block.row_end == l.n()) &&
                  (block.col_end % tile == 0 || block.col_end == l.n()),
              "low-rank block ranges must be tile-aligned");
  EBEM_EXPECT(block.u.size() == block.rows() * block.rank &&
                  block.v.size() == block.cols() * block.rank,
              "low-rank factor shapes do not match the block ranges");

  const std::size_t block_id = blocks_.size();
  for (std::size_t ti = l.tile_of(block.row_begin); ti <= l.tile_of(block.row_end - 1); ++ti) {
    for (std::size_t tj = l.tile_of(block.col_begin); tj <= l.tile_of(block.col_end - 1); ++tj) {
      const std::size_t t = l.tile_index(ti, tj);
      EBEM_EXPECT(tile_block_[t] == kNone, "low-rank blocks must not overlap");
      EBEM_EXPECT(dense_[t].empty(),
                  "cannot install a low-rank block over an already materialized dense tile");
      tile_block_[t] = block_id;
    }
  }
  factor_bytes_ += block.factor_bytes();
  blocks_.push_back(std::move(block));
  const std::scoped_lock lock(mutex_);
  const std::size_t resident =
      dense_payload_bytes_ + factor_bytes_ + slots_.size() * l.tile_bytes();
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident);
}

void CompressedTileStore::decompress_tile(std::size_t tile_index, double* out) const {
  const TileLayout& l = layout();
  std::size_t ti = 0, tj = 0;
  tile_coordinates(tile_index, &ti, &tj);
  const LowRankBlock& block = blocks_[tile_block_[tile_index]];
  const std::size_t rows = l.rows_in(ti);
  const std::size_t cols = l.rows_in(tj);
  const std::size_t uoff = l.row_begin(ti) - block.row_begin;
  const std::size_t voff = l.row_begin(tj) - block.col_begin;
  const std::size_t rank = block.rank;
  std::fill(out, out + l.tile_doubles(), 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ui = block.u.data() + (uoff + i) * rank;
    double* row = out + i * l.tile();
    for (std::size_t j = 0; j < cols; ++j) {
      const double* vj = block.v.data() + (voff + j) * rank;
      double sum = 0.0;
      for (std::size_t k = 0; k < rank; ++k) sum += ui[k] * vj[k];
      row[j] = sum;
    }
  }
}

TileGuard CompressedTileStore::checkout_index(std::size_t tile_index, TileAccess access) const {
  const TileLayout& l = layout();
  if (tile_block_[tile_index] == kNone) {
    const std::scoped_lock lock(mutex_);
    std::vector<double>& payload = dense_[tile_index];
    if (payload.empty()) {
      payload.assign(l.tile_doubles(), 0.0);
      dense_payload_bytes_ += l.tile_bytes();
      const std::size_t resident =
          dense_payload_bytes_ + factor_bytes_ + slots_.size() * l.tile_bytes();
      peak_resident_bytes_ = std::max(peak_resident_bytes_, resident);
    }
    return {this, tile_index, payload.data(), access};
  }

  EBEM_EXPECT(access == TileAccess::kRead,
              "tiles covered by a low-rank far-field block are read-only; "
              "writes must go to near-field (dense) tiles");
  const std::scoped_lock lock(mutex_);
  const auto it = resident_.find(tile_index);
  if (it != resident_.end()) {
    Slot& slot = slots_[it->second];
    slot.pins += 1;
    slot.stamp = ++clock_;
    return {this, tile_index, slot.data.data(), access};
  }
  // Miss: reuse the stalest unpinned slot once the cache is full, else grow.
  // Deque growth never moves existing slots, so outstanding guards stay
  // valid. The decompression runs under the mutex — blocks are small (rank x
  // tile work) and the only concurrent walkers are read-only consumers.
  std::size_t id = kNone;
  if (slots_.size() >= kScratchSlots) {
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].pins == 0 && slots_[s].stamp < oldest) {
        oldest = slots_[s].stamp;
        id = s;
      }
    }
  }
  if (id == kNone) {
    slots_.emplace_back();
    id = slots_.size() - 1;
    const std::size_t resident =
        dense_payload_bytes_ + factor_bytes_ + slots_.size() * l.tile_bytes();
    peak_resident_bytes_ = std::max(peak_resident_bytes_, resident);
  } else if (slots_[id].tile != kNone) {
    resident_.erase(slots_[id].tile);
    scratch_evictions_ += 1;
  }
  Slot& slot = slots_[id];
  slot.data.resize(l.tile_doubles());
  decompress_tile(tile_index, slot.data.data());
  slot.tile = tile_index;
  slot.pins = 1;
  slot.stamp = ++clock_;
  resident_[tile_index] = id;
  return {this, tile_index, slot.data.data(), access};
}

void CompressedTileStore::commit_index(std::size_t tile_index, TileAccess) const {
  if (tile_block_[tile_index] == kNone) return;  // dense payloads never move
  const std::scoped_lock lock(mutex_);
  const auto it = resident_.find(tile_index);
  EBEM_ENSURE(it != resident_.end(), "commit of a low-rank tile that is not checked out");
  Slot& slot = slots_[it->second];
  EBEM_ENSURE(slot.pins > 0, "commit of a low-rank tile that is not pinned");
  slot.pins -= 1;
}

void CompressedTileStore::set_zero() {
  const std::scoped_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    EBEM_ENSURE(slot.pins == 0, "set_zero with low-rank tiles still checked out");
  }
  // Zero content means no far field: drop the factors, zero what is dense.
  blocks_.clear();
  std::fill(tile_block_.begin(), tile_block_.end(), kNone);
  factor_bytes_ = 0;
  for (std::vector<double>& payload : dense_) std::fill(payload.begin(), payload.end(), 0.0);
  slots_.clear();
  resident_.clear();
}

std::unique_ptr<TileStore> CompressedTileStore::clone() const {
  auto copy = std::make_unique<CompressedTileStore>(layout(), config());
  copy->tile_block_ = tile_block_;
  copy->blocks_ = blocks_;
  copy->dense_ = dense_;
  copy->dense_payload_bytes_ = dense_payload_bytes_;
  copy->factor_bytes_ = factor_bytes_;
  copy->peak_resident_bytes_ = dense_payload_bytes_ + factor_bytes_;
  return copy;
}

TileStoreStats CompressedTileStore::stats() const {
  const std::scoped_lock lock(mutex_);
  TileStoreStats s;
  s.resident_bytes = dense_payload_bytes_ + factor_bytes_ + slots_.size() * layout().tile_bytes();
  s.peak_resident_bytes = std::max(peak_resident_bytes_, s.resident_bytes);
  s.evictions = scratch_evictions_;
  return s;
}

CompressionStats CompressedTileStore::compression_stats() const {
  const std::scoped_lock lock(mutex_);
  CompressionStats s;
  s.dense_bytes = layout().total_bytes();
  s.low_rank_blocks = blocks_.size();
  for (const LowRankBlock& block : blocks_) {
    s.rank_sum += block.rank;
    s.max_rank = std::max(s.max_rank, block.rank);
    s.stored_bytes += block.factor_bytes();
  }
  for (std::size_t t = 0; t < tile_block_.size(); ++t) {
    if (tile_block_[t] != kNone) {
      s.low_rank_tiles += 1;
    } else if (!dense_[t].empty()) {
      s.dense_tiles += 1;
      s.stored_bytes += layout().tile_bytes();
    }
  }
  return s;
}

}  // namespace ebem::la

#include "src/la/aca.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ebem::la {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[nodiscard]] double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

AcaResult adaptive_cross(std::size_t rows, std::size_t cols, const AcaSampler& sample_row,
                         const AcaSampler& sample_col, const AcaOptions& options) {
  EBEM_EXPECT(rows >= 1 && cols >= 1, "ACA needs a non-empty block");
  EBEM_EXPECT(options.epsilon > 0.0 && std::isfinite(options.epsilon),
              "ACA epsilon must be positive and finite");
  EBEM_EXPECT(options.max_rank >= 1, "ACA rank budget must be at least 1");

  const std::size_t full_rank = std::min(rows, cols);
  const std::size_t cap = std::min(options.max_rank, full_rank);

  // Rank-1 terms as separate vectors during the build (packed row-major at
  // the end): the residual updates stream one term at a time anyway.
  std::vector<std::vector<double>> us;
  std::vector<std::vector<double>> vs;
  std::vector<char> used_row(rows, 0);
  std::vector<char> used_col(cols, 0);
  std::vector<double> row(cols);
  std::vector<double> col(rows);

  AcaResult result;
  // Running ||A_k||_F^2 of the approximation, accumulated incrementally:
  // ||A_k||^2 = ||A_{k-1}||^2 + 2 sum_m (u_m . u_k)(v_m . v_k) + ||u_k||^2 ||v_k||^2.
  double norm2 = 0.0;
  std::size_t pivot_row = 0;

  for (;;) {
    // Residual row at the pivot: sampled row minus the current approximation.
    sample_row(pivot_row, row.data());
    result.rows_sampled += 1;
    used_row[pivot_row] = 1;
    for (std::size_t m = 0; m < us.size(); ++m) {
      const double f = us[m][pivot_row];
      if (f == 0.0) continue;
      const double* vm = vs[m].data();
      for (std::size_t j = 0; j < cols; ++j) row[j] -= f * vm[j];
    }

    std::size_t pivot_col = kNone;
    double best = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      if (used_col[j] != 0) continue;
      const double a = std::abs(row[j]);
      if (a > best) {
        best = a;
        pivot_col = j;
      }
    }
    if (pivot_col == kNone || best == 0.0) {
      // The residual row vanishes — this row is already reproduced exactly.
      // Move to the next unvisited row; when none remain, every row is
      // captured and the approximation is exact.
      pivot_row = kNone;
      for (std::size_t i = 0; i < rows; ++i) {
        if (used_row[i] == 0) {
          pivot_row = i;
          break;
        }
      }
      if (pivot_row == kNone) {
        result.converged = true;
        break;
      }
      continue;
    }

    const double pivot = row[pivot_col];
    std::vector<double> vk(cols);
    for (std::size_t j = 0; j < cols; ++j) vk[j] = row[j] / pivot;

    sample_col(pivot_col, col.data());
    result.cols_sampled += 1;
    used_col[pivot_col] = 1;
    std::vector<double> uk(std::move(col));
    for (std::size_t m = 0; m < us.size(); ++m) {
      const double f = vs[m][pivot_col];
      if (f == 0.0) continue;
      const double* um = us[m].data();
      for (std::size_t i = 0; i < rows; ++i) uk[i] -= f * um[i];
    }
    col.resize(rows);  // uk stole the buffer; restore for the next sample

    const double uu = dot(uk, uk);
    const double vv = dot(vk, vk);
    double cross = 0.0;
    for (std::size_t m = 0; m < us.size(); ++m) cross += dot(us[m], uk) * dot(vs[m], vk);
    norm2 += 2.0 * cross + uu * vv;
    us.push_back(std::move(uk));
    vs.push_back(std::move(vk));

    if (uu * vv <= options.epsilon * options.epsilon * norm2) {
      result.converged = true;
      break;
    }
    if (us.size() >= cap) {
      // A cross approximation on min(rows, cols) distinct pivots reproduces
      // the block exactly; stopping on the caller's budget does not.
      result.converged = cap == full_rank;
      break;
    }

    // Next pivot row: largest |u_k| entry among unvisited rows.
    pivot_row = kNone;
    best = -1.0;
    const std::vector<double>& last_u = us.back();
    for (std::size_t i = 0; i < rows; ++i) {
      if (used_row[i] != 0) continue;
      const double a = std::abs(last_u[i]);
      if (a > best) {
        best = a;
        pivot_row = i;
      }
    }
    if (pivot_row == kNone) {
      result.converged = true;  // all rows visited: exact on every row
      break;
    }
  }

  result.rank = us.size();
  result.u.resize(rows * result.rank);
  result.v.resize(cols * result.rank);
  for (std::size_t k = 0; k < result.rank; ++k) {
    for (std::size_t i = 0; i < rows; ++i) result.u[i * result.rank + k] = us[k][i];
    for (std::size_t j = 0; j < cols; ++j) result.v[j * result.rank + k] = vs[k][j];
  }
  return result;
}

}  // namespace ebem::la

#include "src/la/sym_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/common/error.hpp"
#include "src/la/compressed_tile_store.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {

namespace {

/// Far-field part of y = A x on a compressed store: each low-rank block
/// contributes y_I += U (V^T x_J) and, by symmetry, y_J += V (U^T x_I) —
/// O(rank (rows + cols)) per block instead of decompressing rows x cols
/// entries. Serial and in fixed block order, so the result is deterministic.
void apply_low_rank_blocks(const CompressedTileStore& store, std::span<const double> x,
                           std::span<double> y) {
  std::vector<double> w;
  for (const LowRankBlock& block : store.blocks()) {
    const std::size_t rank = block.rank;
    if (rank == 0) continue;
    w.assign(2 * rank, 0.0);
    double* wv = w.data();         // V^T x_J
    double* wu = w.data() + rank;  // U^T x_I
    for (std::size_t j = 0; j < block.cols(); ++j) {
      const double xj = x[block.col_begin + j];
      const double* vj = block.v.data() + j * rank;
      for (std::size_t k = 0; k < rank; ++k) wv[k] += vj[k] * xj;
    }
    for (std::size_t i = 0; i < block.rows(); ++i) {
      const double xi = x[block.row_begin + i];
      const double* ui = block.u.data() + i * rank;
      for (std::size_t k = 0; k < rank; ++k) wu[k] += ui[k] * xi;
    }
    for (std::size_t i = 0; i < block.rows(); ++i) {
      const double* ui = block.u.data() + i * rank;
      double yi = 0.0;
      for (std::size_t k = 0; k < rank; ++k) yi += ui[k] * wv[k];
      y[block.row_begin + i] += yi;
    }
    for (std::size_t j = 0; j < block.cols(); ++j) {
      const double* vj = block.v.data() + j * rank;
      double yj = 0.0;
      for (std::size_t k = 0; k < rank; ++k) yj += vj[k] * wu[k];
      y[block.col_begin + j] += yj;
    }
  }
}

/// Contiguous tile-row strips with approximately equal tile counts (tile
/// row I holds I + 1 tiles, so equal-count strips mean equal flops).
std::vector<std::size_t> balanced_tile_row_strips(std::size_t tile_rows, std::size_t strips) {
  std::vector<std::size_t> bounds(strips + 1, tile_rows);
  bounds[0] = 0;
  const double total = 0.5 * static_cast<double>(tile_rows) * static_cast<double>(tile_rows + 1);
  for (std::size_t s = 1; s < strips; ++s) {
    const double share = total * static_cast<double>(s) / static_cast<double>(strips);
    const auto r = static_cast<std::size_t>(std::sqrt(2.0 * share));
    bounds[s] = std::clamp(r, bounds[s - 1], tile_rows);
  }
  return bounds;
}

}  // namespace

SymMatrix::SymMatrix(std::size_t n, const StorageConfig& storage)
    : n_(n), store_(make_tile_store(n, storage)), direct_(store_->direct_data()) {}

SymMatrix::SymMatrix(const SymMatrix& other)
    : n_(other.n_), store_(other.store_ ? other.store_->clone() : nullptr),
      direct_(store_ ? store_->direct_data() : nullptr) {}

SymMatrix& SymMatrix::operator=(const SymMatrix& other) {
  if (this != &other) {
    SymMatrix copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::size_t SymMatrix::arena_slot(std::size_t i, std::size_t j) const {
  const TileLayout& layout = store_->layout();
  return layout.tile_index(layout.tile_of(i), layout.tile_of(j)) * layout.tile_doubles() +
         layout.tile_offset(i, j);
}

template <typename Op>
void SymMatrix::apply_entry(std::size_t i, std::size_t j, Op&& op) {
  if (i < j) std::swap(i, j);
  if (direct_ != nullptr) {
    op(direct_[arena_slot(i, j)]);
    return;
  }
  const TileLayout& layout = store_->layout();
  const TileGuard guard =
      store_->checkout(layout.tile_of(i), layout.tile_of(j), TileAccess::kWrite);
  op(guard.data()[layout.tile_offset(i, j)]);
}

double& SymMatrix::operator()(std::size_t i, std::size_t j) {
  EBEM_EXPECT(direct_ != nullptr,
              "mutable entry references require in-memory tile storage; "
              "use set()/add() on a spill-backed or compressed matrix");
  if (i < j) std::swap(i, j);
  return direct_[arena_slot(i, j)];
}

double SymMatrix::get(std::size_t i, std::size_t j) const {
  if (i < j) std::swap(i, j);
  if (direct_ != nullptr) return direct_[arena_slot(i, j)];
  const TileLayout& layout = store_->layout();
  const TileGuard guard =
      store_->checkout(layout.tile_of(i), layout.tile_of(j), TileAccess::kRead);
  return guard.data()[layout.tile_offset(i, j)];
}

void SymMatrix::set(std::size_t i, std::size_t j, double value) {
  apply_entry(i, j, [value](double& entry) { entry = value; });
}

void SymMatrix::add(std::size_t i, std::size_t j, double value) {
  apply_entry(i, j, [value](double& entry) { entry += value; });
}

void SymMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == n_ && y.size() == n_);
  std::fill(y.begin(), y.end(), 0.0);
  if (n_ == 0) return;
  const TileLayout& layout = store_->layout();
  const std::size_t tile = layout.tile();
  // Compressed backend: low-rank tiles are skipped in the dense walk and
  // applied directly from their factors afterwards, so the matvec never
  // decompresses the far field.
  const auto* compressed = dynamic_cast<const CompressedTileStore*>(store_.get());
  // Walk each lower-triangle tile once, scattering both (i, j) and (j, i).
  for (std::size_t ti = 0; ti < layout.tile_rows(); ++ti) {
    const std::size_t i0 = layout.row_begin(ti), i1 = layout.row_end(ti);
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      if (compressed != nullptr && compressed->tile_is_low_rank(ti, tj)) continue;
      const TileGuard guard = store_->checkout(ti, tj, TileAccess::kRead);
      const double* t = guard.data();
      const std::size_t j0 = layout.row_begin(tj);
      const std::size_t j1 = layout.row_end(tj);
      if (tj < ti) {
        for (std::size_t i = i0; i < i1; ++i) {
          const double* row = t + (i - i0) * tile;
          const double xi = x[i];
          double yi = 0.0;
          for (std::size_t j = j0; j < j1; ++j) {
            const double a = row[j - j0];
            yi += a * x[j];
            y[j] += a * xi;
          }
          y[i] += yi;
        }
      } else {
        // Diagonal tile: strictly-lower part scatters both ways, the
        // diagonal entry once.
        for (std::size_t i = i0; i < i1; ++i) {
          const double* row = t + (i - i0) * tile;
          const double xi = x[i];
          double yi = 0.0;
          for (std::size_t j = j0; j < i; ++j) {
            const double a = row[j - j0];
            yi += a * x[j];
            y[j] += a * xi;
          }
          y[i] += yi + row[i - j0] * xi;
        }
      }
    }
  }
  if (compressed != nullptr) apply_low_rank_blocks(*compressed, x, y);
}

void SymMatrix::multiply(std::span<const double> x, std::span<double> y, par::ThreadPool* pool,
                         std::size_t parallel_cutoff) const {
  // The strip-parallel walk assumes uniformly dense tile rows; on a
  // compressed store the far field is an O(rank (rows + cols)) factor
  // application that no longer dominates, so the serial walk (which skips
  // low-rank tiles) is both correct and fast enough.
  if (pool == nullptr || pool->num_threads() <= 1 || n_ < parallel_cutoff ||
      dynamic_cast<const CompressedTileStore*>(store_.get()) != nullptr) {
    multiply(x, y);
    return;
  }
  assert(x.size() == n_ && y.size() == n_);
  const TileLayout& layout = store_->layout();
  const std::size_t tile = layout.tile();
  const std::size_t strips = pool->num_threads();
  const std::vector<std::size_t> bounds = balanced_tile_row_strips(layout.tile_rows(), strips);
  // Reused per calling thread: PCG invokes this once per iteration, and a
  // fresh strips*n allocation each time would dominate small systems. The
  // workers must see the *caller's* buffer, and lambdas do not capture
  // thread_local storage — hence the local alias below.
  thread_local std::vector<double> scratch;
  scratch.assign(strips * n_, 0.0);
  double* const partials = scratch.data();

  // Pass 1: strip s walks its tile rows, owning y[i] for its rows and
  // scattering every transpose contribution into its private partial
  // vector. static_chunked(1) over strip ids pins strip s to thread s.
  par::parallel_for_chunks(
      *pool, strips, par::Schedule::static_chunked(1),
      [&](par::ChunkRange range, std::size_t) {
        for (std::size_t s = range.begin; s < range.end; ++s) {
          double* partial = partials + s * n_;
          for (std::size_t ti = bounds[s]; ti < bounds[s + 1]; ++ti) {
            const std::size_t i0 = layout.row_begin(ti), i1 = layout.row_end(ti);
            for (std::size_t i = i0; i < i1; ++i) y[i] = 0.0;
            for (std::size_t tj = 0; tj <= ti; ++tj) {
              const TileGuard guard = store_->checkout(ti, tj, TileAccess::kRead);
              const double* t = guard.data();
              const std::size_t j0 = layout.row_begin(tj);
              const std::size_t j1 = layout.row_end(tj);
              for (std::size_t i = i0; i < i1; ++i) {
                const double* row = t + (i - i0) * tile;
                const double xi = x[i];
                const std::size_t jmax = tj < ti ? j1 : i;
                double yi = 0.0;
                for (std::size_t j = j0; j < jmax; ++j) {
                  const double a = row[j - j0];
                  yi += a * x[j];
                  partial[j] += a * xi;
                }
                if (tj == ti) yi += row[i - j0] * xi;
                y[i] += yi;
              }
            }
          }
        }
      });

  // Pass 2: reduce the strip partials in fixed strip order.
  par::parallel_for_chunks(*pool, n_, par::Schedule::static_blocked(),
                           [&](par::ChunkRange range, std::size_t) {
                             for (std::size_t i = range.begin; i < range.end; ++i) {
                               double yi = y[i];
                               for (std::size_t s = 0; s < strips; ++s) {
                                 yi += partials[s * n_ + i];
                               }
                               y[i] = yi;
                             }
                           });
}

std::vector<double> SymMatrix::diagonal() const {
  std::vector<double> diag(n_);
  if (n_ == 0) return diag;
  const TileLayout& layout = store_->layout();
  for (std::size_t ti = 0; ti < layout.tile_rows(); ++ti) {
    const TileGuard guard = store_->checkout(ti, ti, TileAccess::kRead);
    const double* t = guard.data();
    for (std::size_t i = layout.row_begin(ti); i < layout.row_end(ti); ++i) {
      const std::size_t local = i - layout.row_begin(ti);
      diag[i] = t[local * layout.tile() + local];
    }
  }
  return diag;
}

std::vector<double> SymMatrix::packed() const {
  if (store_ == nullptr) return {};
  return packed_lower(*store_);
}

void SymMatrix::set_zero() {
  if (store_ != nullptr) store_->set_zero();
}

}  // namespace ebem::la

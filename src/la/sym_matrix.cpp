#include "src/la/sym_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {

namespace {

/// Contiguous row strips with approximately equal packed-entry counts
/// (row i holds i + 1 entries, so equal-count strips mean equal flops).
std::vector<std::size_t> balanced_row_strips(std::size_t n, std::size_t strips) {
  std::vector<std::size_t> bounds(strips + 1, n);
  bounds[0] = 0;
  const double total = 0.5 * static_cast<double>(n) * static_cast<double>(n + 1);
  for (std::size_t s = 1; s < strips; ++s) {
    const double share = total * static_cast<double>(s) / static_cast<double>(strips);
    // Smallest r with r (r + 1) / 2 >= share.
    const auto r = static_cast<std::size_t>(std::sqrt(2.0 * share));
    bounds[s] = std::clamp(r, bounds[s - 1], n);
  }
  return bounds;
}

}  // namespace

void SymMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == n_ && y.size() == n_);
  std::fill(y.begin(), y.end(), 0.0);
  // Walk the packed triangle once, scattering both (i,j) and (j,i).
  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    double yi = 0.0;
    const double xi = x[i];
    for (std::size_t j = 0; j < i; ++j, ++k) {
      const double a = data_[k];
      yi += a * x[j];
      y[j] += a * xi;
    }
    yi += data_[k++] * xi;  // diagonal
    y[i] += yi;
  }
}

void SymMatrix::multiply(std::span<const double> x, std::span<double> y,
                         par::ThreadPool* pool) const {
  if (pool == nullptr || pool->num_threads() <= 1 || n_ < kParallelCutoff) {
    multiply(x, y);
    return;
  }
  assert(x.size() == n_ && y.size() == n_);
  const std::size_t strips = pool->num_threads();
  const std::vector<std::size_t> bounds = balanced_row_strips(n_, strips);
  // Reused per calling thread: PCG invokes this once per iteration, and a
  // fresh strips*n allocation each time would dominate small systems. The
  // workers must see the *caller's* buffer, and lambdas do not capture
  // thread_local storage — hence the local alias below.
  thread_local std::vector<double> scratch;
  scratch.assign(strips * n_, 0.0);
  double* const partials = scratch.data();

  // Pass 1: strip s walks its rows contiguously, owning y[i] for its rows
  // and scattering the transpose part into its private partial vector.
  // static_chunked(1) over strip ids pins strip s to thread s.
  par::parallel_for_chunks(
      *pool, strips, par::Schedule::static_chunked(1),
      [&](par::ChunkRange range, std::size_t) {
        for (std::size_t s = range.begin; s < range.end; ++s) {
          double* partial = partials + s * n_;
          for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
            const double* row = data_.data() + i * (i + 1) / 2;
            const double xi = x[i];
            double yi = 0.0;
            for (std::size_t j = 0; j < i; ++j) {
              const double a = row[j];
              yi += a * x[j];
              partial[j] += a * xi;
            }
            y[i] = yi + row[i] * xi;
          }
        }
      });

  // Pass 2: reduce the strip partials in fixed strip order.
  par::parallel_for_chunks(*pool, n_, par::Schedule::static_blocked(),
                           [&](par::ChunkRange range, std::size_t) {
                             for (std::size_t i = range.begin; i < range.end; ++i) {
                               double yi = y[i];
                               for (std::size_t s = 0; s < strips; ++s) {
                                 yi += partials[s * n_ + i];
                               }
                               y[i] = yi;
                             }
                           });
}

std::vector<double> SymMatrix::diagonal() const {
  std::vector<double> diag(n_);
  for (std::size_t i = 0; i < n_; ++i) diag[i] = (*this)(i, i);
  return diag;
}

void SymMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

}  // namespace ebem::la

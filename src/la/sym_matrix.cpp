#include "src/la/sym_matrix.hpp"

#include <algorithm>
#include <cassert>

namespace ebem::la {

void SymMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == n_ && y.size() == n_);
  std::fill(y.begin(), y.end(), 0.0);
  // Walk the packed triangle once, scattering both (i,j) and (j,i).
  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    double yi = 0.0;
    const double xi = x[i];
    for (std::size_t j = 0; j < i; ++j, ++k) {
      const double a = data_[k];
      yi += a * x[j];
      y[j] += a * xi;
    }
    yi += data_[k++] * xi;  // diagonal
    y[i] += yi;
  }
}

std::vector<double> SymMatrix::diagonal() const {
  std::vector<double> diag(n_);
  for (std::size_t i = 0; i < n_; ++i) diag[i] = (*this)(i, i);
  return diag;
}

void SymMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

}  // namespace ebem::la

// Diagonally (Jacobi) preconditioned Conjugate Gradient.
//
// The paper's preferred solver for medium/large systems: "the best results
// have been obtained by a diagonal preconditioned conjugate gradient
// algorithm with assembly of the global matrix" (§4.3).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::la {

/// Matrix-free SPD operator: y = A x plus the diagonal for Jacobi
/// preconditioning. Used by solvers that never form their matrix (the
/// finite-difference validator's 7-point stencil).
struct LinearOperator {
  std::size_t size = 0;
  std::function<void(std::span<const double>, std::span<double>)> apply;
  std::vector<double> diagonal;  ///< empty disables the Jacobi preconditioner
};

struct CgOptions {
  double tolerance = 1e-12;      ///< relative residual ||r|| / ||b||
  std::size_t max_iterations = 0;  ///< 0 means 10 * N
  bool jacobi_preconditioner = true;
  /// Non-owning worker pool: parallelizes the dominant A*p product of the
  /// SymMatrix overload (the O(N) vector updates stay serial). Null = serial.
  par::ThreadPool* pool = nullptr;
  /// Serial/parallel crossover of the pooled matvec (see
  /// SymMatrix::kParallelCutoff); engine::ExecutionConfig threads a session
  /// override through here.
  std::size_t parallel_cutoff = SymMatrix::kParallelCutoff;
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solve A x = b for SPD A. Never throws on non-convergence; inspect
/// `converged` (BEM matrices are well conditioned after Jacobi scaling).
[[nodiscard]] CgResult conjugate_gradient(const SymMatrix& a, std::span<const double> b,
                                          const CgOptions& options = {});

/// Matrix-free variant.
[[nodiscard]] CgResult conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                                          const CgOptions& options = {});

}  // namespace ebem::la

// H-matrix style tile-store backend: low-rank far field, dense near field.
//
// The third TileStore backend (see tile_store.hpp). The store starts out
// all-dense-capable; during assembly the far-field builder installs
// admissible tile blocks as U V^T factors (rank r << block size, built by
// ACA from integrator samples — the dense far-field payload is never
// materialized). Tiles covered by a factor are *read-only*: a read checkout
// decompresses the tile's U and V row slices into a bounded scratch-slot
// cache and pins the slot; a write checkout of such a tile throws, which is
// how the backend catches any consumer that would silently corrupt the
// factorized far field. Uncovered (near-field) tiles behave like the
// in-memory arena, allocated lazily on first checkout.
//
// Byte accounting is per-representation: resident_bytes prices dense tiles
// at their payload, low-rank blocks at their factor size and scratch slots
// at one tile each, so the residency gauges (and the engine counters fed
// from them) report the honest compressed footprint, not the dense
// equivalent. compression_stats() exposes the stored-vs-dense breakdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/la/tile_store.hpp"

namespace ebem::la {

/// One admissible far-field block stored as U V^T over whole tiles. The DoF
/// ranges are tile-aligned (ends may be clamped to n) and lie strictly
/// below the diagonal: col_end <= row_begin, so the block never touches a
/// diagonal tile and (row, col) order is unambiguous.
struct LowRankBlock {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::size_t col_begin = 0;
  std::size_t col_end = 0;
  std::size_t rank = 0;
  std::vector<double> u;  ///< rows() x rank, row-major
  std::vector<double> v;  ///< cols() x rank, row-major

  [[nodiscard]] std::size_t rows() const { return row_end - row_begin; }
  [[nodiscard]] std::size_t cols() const { return col_end - col_begin; }
  [[nodiscard]] std::size_t factor_bytes() const {
    return (u.size() + v.size()) * sizeof(double);
  }
};

class CompressedTileStore final : public TileStore {
 public:
  CompressedTileStore(const TileLayout& layout, const StorageConfig& config);

  /// Dense tiles hand out their (lazily allocated) payload directly; tiles
  /// covered by a low-rank block decompress into a scratch slot on kRead and
  /// throw ebem::InvalidArgument on kWrite.
  [[nodiscard]] TileGuard checkout_index(std::size_t tile_index,
                                         TileAccess access) const override;
  void set_zero() override;
  [[nodiscard]] std::unique_ptr<TileStore> clone() const override;
  [[nodiscard]] TileStoreStats stats() const override;

  /// Install one far-field factor. Requires tile-aligned DoF ranges strictly
  /// below the diagonal, no overlap with previously installed blocks, and no
  /// already-materialized dense payload in the covered tiles. Not
  /// thread-safe against concurrent checkouts — the far-field builder
  /// installs every block before assembly's scatter loop starts.
  void install(LowRankBlock block);

  /// Whether tile (ti, tj) is covered by an installed low-rank block (and is
  /// therefore read-only). Lock-free: the coverage map is immutable between
  /// install() calls, which precede all concurrent access.
  [[nodiscard]] bool tile_is_low_rank(std::size_t ti, std::size_t tj) const {
    return tile_block_[layout().tile_index(ti, tj)] != kNone;
  }

  [[nodiscard]] const std::vector<LowRankBlock>& blocks() const { return blocks_; }

  /// Stored-vs-dense byte breakdown and rank profile of the current content.
  [[nodiscard]] CompressionStats compression_stats() const;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  /// Unpinned decompressed tiles retained for reuse; beyond this the stalest
  /// slot is recycled. Sized for a handful of concurrent tile walkers, not
  /// for holding the far field resident — that would defeat the compression.
  static constexpr std::size_t kScratchSlots = 32;

  struct Slot {
    std::vector<double> data;
    std::size_t tile = kNone;
    std::size_t pins = 0;
    std::uint64_t stamp = 0;
  };

  void commit_index(std::size_t tile_index, TileAccess access) const override;
  /// Rebuild tile `tile_index` from its covering block: out is the row-major
  /// tile payload (edge padding zeroed).
  void decompress_tile(std::size_t tile_index, double* out) const;

  std::vector<std::size_t> tile_block_;  ///< tile index -> block id or kNone
  std::vector<LowRankBlock> blocks_;
  /// Lazily allocated dense (near-field) tile payloads. The outer vector is
  /// sized once; an inner vector's data pointer is stable after allocation,
  /// so guards may outlive the mutex that allocated them.
  mutable std::vector<std::vector<double>> dense_;

  mutable std::mutex mutex_;
  mutable std::deque<Slot> slots_;
  mutable std::unordered_map<std::size_t, std::size_t> resident_;  ///< tile -> slot
  mutable std::uint64_t clock_ = 0;
  mutable std::size_t dense_payload_bytes_ = 0;
  mutable std::size_t factor_bytes_ = 0;
  mutable std::size_t peak_resident_bytes_ = 0;
  mutable std::size_t scratch_evictions_ = 0;
};

}  // namespace ebem::la

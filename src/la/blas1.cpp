#include "src/la/blas1.hpp"

#include <cassert>
#include <cmath>

namespace ebem::la {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double amax(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace ebem::la

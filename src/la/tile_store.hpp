// Pluggable storage of a dense symmetric matrix as fixed-size lower-triangle
// tiles — the layer that makes "where the coefficients live" a policy.
//
// The Galerkin BEM matrix is the only O(N^2) object left in the library, and
// a single contiguous packed array caps N at single-node memory. A TileStore
// instead holds the lower triangle as square tile_size x tile_size blocks
// with checkout/commit semantics: an algorithm checks a tile out (pinning it
// resident), reads or writes its row-major payload, and commits it back by
// dropping the guard. Two backends implement the contract:
//
//   * InMemoryTileStore — one contiguous arena, tiles are zero-copy views,
//     checkout/commit are pointer math. The default; numerically this is
//     today's dense matrix, just blocked.
//   * SpillTileStore — a file-backed pager with an LRU residency budget in
//     bytes. Tiles beyond the budget are spilled to an (unlinked) scratch
//     file and read back on demand, so factorization of an N x N system runs
//     with only a configurable fraction of the matrix resident. Eviction and
//     IO counters surface on TileStoreStats.
//   * CompressedTileStore (compressed_tile_store.hpp) — the H-matrix style
//     backend: well-separated tile blocks are held as low-rank U V^T factors
//     (built by ACA during assembly) and decompress into a bounded scratch
//     cache on read checkout; near-field tiles stay dense and exact.
//
// Tile-walking consumers (SymMatrix::multiply, the blocked Cholesky with
// panel = tile column, the fused assembly scatter) touch O(1) tiles at a
// time, which is what keeps the pager's working set bounded and lets all
// three backends sit behind one checkout interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ebem::la {

/// DoF ordering applied at the matrix boundary before tiling. The matrix
/// then stores rows/columns in the chosen *internal* order while every
/// caller-visible vector (RHS, solution) stays in the model's external
/// order — the la::Permutation carried on the AssemblyResult is the seam.
enum class DofOrdering {
  kNone,       ///< keep the model's DoF numbering (tile rows = index slabs)
  kGeometric,  ///< RCB cluster-tree order (bem::geometric_ordering): tile
               ///< rows become compact spatial clusters, making far-field
               ///< compressibility independent of the mesh numbering
};

/// Low-rank (H-matrix) compression policy of one symmetric matrix. Enabled
/// by a positive epsilon; the matrix store then becomes a
/// CompressedTileStore whose admissible far-field tile blocks hold U V^T
/// factors instead of dense payloads. The epsilon is the accuracy contract:
/// each compressed block approximates its exact counterpart to a relative
/// (Frobenius) tolerance of epsilon, so solution-level quantities track the
/// dense reference to about that level.
struct CompressionConfig {
  /// Relative block tolerance; 0 disables compression (dense tiles only).
  double epsilon = 0.0;
  /// Minimum DoFs per side for a block to be worth compressing; smaller
  /// admissible blocks stay dense (a low-rank factor on a tiny block costs
  /// more than the dense payload it replaces).
  std::size_t min_block = 64;
  /// Rank budget per block; a block that fails to meet epsilon within this
  /// rank is split and retried on its halves.
  std::size_t max_rank = 128;
  /// Minimum *profitable* rank budget a block must offer before ACA samples
  /// a single entry. A block only pays when rank * (rows + cols) undercuts
  /// half the dense bytes it covers; blocks whose budget under that rule
  /// falls below this floor are left dense outright — their ranks would sit
  /// in the 20-35 band measured at the admissibility boundary, so sampling
  /// them is a coin flip that costs about what it could save. The default
  /// is tuned for 64-DoF tiles; tests and small-tile setups may lower it.
  std::size_t min_rank_budget = 48;
  /// Storage-order policy. kGeometric is what makes *square* grids compress
  /// (their in-place DoF slabs are high-rank); it is honored even with
  /// epsilon == 0 — the matrix is then dense but spatially reordered, which
  /// the permutation-parity tests rely on.
  DofOrdering ordering = DofOrdering::kNone;

  [[nodiscard]] bool enabled() const { return epsilon > 0.0; }

  friend bool operator==(const CompressionConfig&, const CompressionConfig&) = default;
};

/// Storage policy of one symmetric matrix (and of the Cholesky factor
/// derived from it): tile geometry plus the out-of-core pager knobs.
struct StorageConfig {
  /// Rows/columns per square tile. Clamped to the matrix dimension, so a
  /// small system is always a single tile.
  std::size_t tile_size = 64;
  /// Resident-tile budget in bytes for the spill backend; 0 keeps the whole
  /// matrix in memory (InMemoryTileStore). The budget is per store — a
  /// matrix and its Cholesky factor each own one.
  std::size_t residency_budget_bytes = 0;
  /// Directory for the pager's scratch file (created with mkstemp and
  /// immediately unlinked). Only used when residency_budget_bytes > 0.
  std::string spill_dir = ".";
  /// Low-rank far-field compression (CompressedTileStore backend). Mutually
  /// exclusive with a spill residency budget: a compressed matrix is already
  /// small, and the factors have no tile-granular spill representation.
  CompressionConfig compression;

  friend bool operator==(const StorageConfig&, const StorageConfig&) = default;
};

/// Validate one storage policy; throws ebem::InvalidArgument with messages
/// prefixed by `context` (e.g. "ExecutionConfig"). The single source of the
/// storage invariants, shared by the session-level config validator and the
/// engine's per-run submit overrides so the two paths cannot drift.
void validate_storage_config(const StorageConfig& config, const char* context);

/// Tile geometry of an n x n symmetric matrix: the lower triangle is covered
/// by tiles (I, J) with I >= J; tile (I, J) holds rows [I*t, min((I+1)*t, n))
/// by columns [J*t, ...) as a row-major t x t block (edge tiles are padded,
/// diagonal tiles carry their upper-triangle padding as zeros).
class TileLayout {
 public:
  TileLayout() = default;
  TileLayout(std::size_t n, std::size_t tile_size);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t tile() const { return tile_; }
  /// Number of tile rows/columns: ceil(n / tile).
  [[nodiscard]] std::size_t tile_rows() const { return tile_rows_; }
  /// Number of lower-triangle tiles.
  [[nodiscard]] std::size_t tile_count() const {
    return tile_rows_ * (tile_rows_ + 1) / 2;
  }
  /// Doubles per tile slot.
  [[nodiscard]] std::size_t tile_doubles() const { return tile_ * tile_; }
  [[nodiscard]] std::size_t tile_bytes() const { return tile_doubles() * sizeof(double); }
  /// Total bytes of all lower-triangle tiles (the spill file's extent).
  [[nodiscard]] std::size_t total_bytes() const { return tile_count() * tile_bytes(); }

  /// Packed lower-triangle index of tile (I, J) with I >= J.
  [[nodiscard]] std::size_t tile_index(std::size_t ti, std::size_t tj) const {
    return ti * (ti + 1) / 2 + tj;
  }
  /// Tile row/column holding global index i.
  [[nodiscard]] std::size_t tile_of(std::size_t i) const { return i / tile_; }
  [[nodiscard]] std::size_t row_begin(std::size_t ti) const { return ti * tile_; }
  /// Clamped end row of tile row ti.
  [[nodiscard]] std::size_t row_end(std::size_t ti) const {
    const std::size_t end = (ti + 1) * tile_;
    return end < n_ ? end : n_;
  }
  [[nodiscard]] std::size_t rows_in(std::size_t ti) const { return row_end(ti) - row_begin(ti); }

  /// Offset of entry (i, j), i >= j, inside its tile's row-major payload.
  [[nodiscard]] std::size_t tile_offset(std::size_t i, std::size_t j) const {
    return (i % tile_) * tile_ + (j % tile_);
  }

 private:
  std::size_t n_ = 0;
  std::size_t tile_ = 1;
  std::size_t tile_rows_ = 0;
};

/// Cumulative pager counters of one store. All zeros for the in-memory
/// backend except the resident-byte gauges (the whole arena is resident).
struct TileStoreStats {
  std::size_t evictions = 0;      ///< resident tiles displaced by the LRU
  std::size_t spill_writes = 0;   ///< dirty tiles written to the scratch file
  std::size_t spill_reads = 0;    ///< spilled tiles read back on checkout
  std::size_t bytes_written = 0;
  std::size_t bytes_read = 0;
  std::size_t resident_bytes = 0;       ///< tile bytes in memory right now
  std::size_t peak_resident_bytes = 0;  ///< high-water mark of the above

  /// Counter-only difference (gauges copied from *this) — how a caller turns
  /// cumulative store stats into a per-phase delta.
  [[nodiscard]] TileStoreStats delta_since(const TileStoreStats& before) const;
};

/// Compression outcome of one CompressedTileStore — how much of the dense
/// lower triangle the low-rank factors replaced. All zeros for the dense
/// backends.
struct CompressionStats {
  std::size_t low_rank_blocks = 0;  ///< installed U V^T blocks
  std::size_t low_rank_tiles = 0;   ///< tiles covered by those blocks
  std::size_t dense_tiles = 0;      ///< materialized dense (near-field) tiles
  /// Bytes actually held: dense tile payloads plus low-rank factors. The
  /// honest price of the matrix — what resident_bytes gauges report.
  std::size_t stored_bytes = 0;
  /// What the same lower triangle would cost fully dense
  /// (TileLayout::total_bytes()); stored_bytes / dense_bytes is the
  /// compression ratio.
  std::size_t dense_bytes = 0;
  std::size_t rank_sum = 0;  ///< sum of block ranks (mean = rank_sum / blocks)
  std::size_t max_rank = 0;

  [[nodiscard]] double mean_rank() const {
    return low_rank_blocks == 0
               ? 0.0
               : static_cast<double>(rank_sum) / static_cast<double>(low_rank_blocks);
  }
  [[nodiscard]] double ratio() const {
    return dense_bytes == 0 ? 1.0
                            : static_cast<double>(stored_bytes) / static_cast<double>(dense_bytes);
  }
};

enum class TileAccess {
  kRead,   ///< payload will only be read; commit leaves the tile clean
  kWrite,  ///< payload may be modified; commit marks the tile dirty
};

class TileStore;

/// RAII checkout handle: holds the tile pinned (the pager cannot evict it)
/// until destruction commits it back. Movable, not copyable.
class TileGuard {
 public:
  TileGuard(const TileStore* store, std::size_t tile_index, double* data, TileAccess access)
      : store_(store), tile_index_(tile_index), data_(data), access_(access) {}
  TileGuard(TileGuard&& other) noexcept
      : store_(other.store_), tile_index_(other.tile_index_), data_(other.data_),
        access_(other.access_) {
    other.store_ = nullptr;
  }
  TileGuard& operator=(TileGuard&& other) noexcept;
  TileGuard(const TileGuard&) = delete;
  TileGuard& operator=(const TileGuard&) = delete;
  ~TileGuard();

  /// Row-major tile_size x tile_size payload.
  [[nodiscard]] double* data() const { return data_; }

 private:
  const TileStore* store_;
  std::size_t tile_index_;
  double* data_;
  TileAccess access_;
};

/// Abstract store of the lower-triangle tiles of one symmetric matrix.
/// Checkout/commit are const (and thread-safe) so read-only algorithms on a
/// const matrix can page tiles in; logical content mutation goes through
/// TileAccess::kWrite checkouts on a non-const owner.
class TileStore {
 public:
  explicit TileStore(const TileLayout& layout, const StorageConfig& config)
      : layout_(layout), config_(config) {}
  virtual ~TileStore() = default;
  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  [[nodiscard]] const TileLayout& layout() const { return layout_; }
  [[nodiscard]] const StorageConfig& config() const { return config_; }

  /// Check tile (ti, tj), ti >= tj, out of the store. The returned guard
  /// pins the tile resident; destroying it commits the tile back.
  [[nodiscard]] TileGuard checkout(std::size_t ti, std::size_t tj, TileAccess access) const {
    return checkout_index(layout_.tile_index(ti, tj), access);
  }
  [[nodiscard]] virtual TileGuard checkout_index(std::size_t tile_index,
                                                 TileAccess access) const = 0;

  /// Reset every entry to zero. Requires no outstanding checkouts.
  virtual void set_zero() = 0;

  /// Deep copy with the same backend and config (a spill store clones into
  /// its own fresh scratch file).
  [[nodiscard]] virtual std::unique_ptr<TileStore> clone() const = 0;

  /// Arena base when tiles are directly addressable without checkout (the
  /// in-memory backend); null for paged backends. Entry (i, j) of tile t
  /// lives at direct_data()[t * tile_doubles() + tile_offset(i, j)].
  [[nodiscard]] virtual double* direct_data() const { return nullptr; }

  [[nodiscard]] virtual TileStoreStats stats() const = 0;

 private:
  friend class TileGuard;
  /// Commit half of the checkout contract; called by ~TileGuard.
  virtual void commit_index(std::size_t tile_index, TileAccess access) const = 0;

  TileLayout layout_;
  StorageConfig config_;
};

/// Default backend: one contiguous arena, zero-copy views, no paging.
class InMemoryTileStore final : public TileStore {
 public:
  InMemoryTileStore(const TileLayout& layout, const StorageConfig& config);

  [[nodiscard]] TileGuard checkout_index(std::size_t tile_index,
                                         TileAccess access) const override;
  void set_zero() override;
  [[nodiscard]] std::unique_ptr<TileStore> clone() const override;
  [[nodiscard]] double* direct_data() const override { return arena_.data(); }
  [[nodiscard]] TileStoreStats stats() const override;

 private:
  void commit_index(std::size_t tile_index, TileAccess access) const override;

  mutable std::vector<double> arena_;
};

/// Out-of-core backend: an LRU pager over an unlinked scratch file. At most
/// ceil(residency_budget_bytes / tile_bytes) tiles (>= 1) are resident;
/// checking out a non-resident tile evicts the least-recently-used unpinned
/// one (writing it to the file if dirty) and reads the requested tile back
/// (or zero-fills it on first touch). Victim selection is O(1) amortized:
/// resident slots sit on an intrusive recency list and a fault takes the
/// list head, walking past only pinned or mid-IO slots (bounded by the
/// worker count, never by the resident-tile count). The disk IO itself runs *outside* the
/// pager mutex — the faulting slot is marked busy and concurrent checkouts
/// of other tiles proceed; only checkouts of a tile whose slot is in flight
/// wait. When every resident tile is pinned the store grows transiently
/// past the budget rather than deadlocking — the peak_resident_bytes gauge
/// records it, so a too-small budget is visible, not fatal. Throws
/// ebem::IoError when the spill directory is unwritable or scratch-file IO
/// fails.
class SpillTileStore final : public TileStore {
 public:
  SpillTileStore(const TileLayout& layout, const StorageConfig& config);
  ~SpillTileStore() override;

  [[nodiscard]] TileGuard checkout_index(std::size_t tile_index,
                                         TileAccess access) const override;
  void set_zero() override;
  [[nodiscard]] std::unique_ptr<TileStore> clone() const override;
  [[nodiscard]] TileStoreStats stats() const override;

  /// Resident-tile capacity implied by the byte budget (>= 1).
  [[nodiscard]] std::size_t max_resident_tiles() const { return max_resident_; }

 private:
  static constexpr std::size_t kNoTile = static_cast<std::size_t>(-1);

  void commit_index(std::size_t tile_index, TileAccess access) const override;
  /// Raw scratch-file IO of one tile payload; called with the mutex
  /// *released* (the owning slot is marked busy while these run).
  void write_tile(const double* data, std::size_t tile_index) const;
  void read_tile(double* data, std::size_t tile_index) const;

  struct Pager;  // mutex + condvar + slots + maps; defined in the .cpp
  std::unique_ptr<Pager> pager_;
  std::size_t max_resident_ = 1;
  int fd_ = -1;
};

/// Create the backend `config` asks for: the compressed (low-rank) store
/// when compression is enabled, a spill store when residency_budget_bytes >
/// 0, the in-memory arena otherwise. The layout's tile size is
/// config.tile_size clamped to n.
[[nodiscard]] std::unique_ptr<TileStore> make_tile_store(std::size_t n,
                                                         const StorageConfig& config);

/// Copy the lower-triangle content of `src` into `dst` (same n, any tile
/// sizes/backends); at most one tile of each store is pinned at a time, so
/// re-tiling stays within both stores' residency budgets.
void copy_tiles(const TileStore& src, TileStore& dst);

/// Materialize the packed row-major lower triangle (n(n+1)/2 doubles) —
/// the interchange/debug format, not the storage format.
[[nodiscard]] std::vector<double> packed_lower(const TileStore& store);

}  // namespace ebem::la

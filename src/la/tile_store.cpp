#include "src/la/tile_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "src/common/error.hpp"
#include "src/la/compressed_tile_store.hpp"

namespace ebem::la {

void validate_storage_config(const StorageConfig& config, const char* context) {
  EBEM_EXPECT(config.tile_size >= 1,
              std::string(context) + ": storage.tile_size must be at least 1");
  EBEM_EXPECT(config.residency_budget_bytes == 0 || !config.spill_dir.empty(),
              std::string(context) + ": a residency budget needs a non-empty storage.spill_dir");
  const CompressionConfig& compression = config.compression;
  EBEM_EXPECT(compression.epsilon >= 0.0 && std::isfinite(compression.epsilon),
              std::string(context) + ": storage.compression.epsilon must be finite and >= 0");
  EBEM_EXPECT(compression.ordering == DofOrdering::kNone ||
                  compression.ordering == DofOrdering::kGeometric,
              std::string(context) + ": storage.compression.ordering is not a known DofOrdering");
  if (compression.enabled()) {
    EBEM_EXPECT(compression.min_block >= 1,
                std::string(context) + ": storage.compression.min_block must be at least 1");
    EBEM_EXPECT(compression.max_rank >= 1,
                std::string(context) + ": storage.compression.max_rank must be at least 1");
    EBEM_EXPECT(compression.min_rank_budget >= 1,
                std::string(context) +
                    ": storage.compression.min_rank_budget must be at least 1");
    EBEM_EXPECT(config.residency_budget_bytes == 0,
                std::string(context) +
                    ": storage.compression and a spill residency budget are mutually "
                    "exclusive; pick one backend");
  }
}

TileLayout::TileLayout(std::size_t n, std::size_t tile_size)
    : n_(n), tile_(std::max<std::size_t>(1, std::min(tile_size, std::max<std::size_t>(1, n)))),
      tile_rows_(n == 0 ? 0 : (n + tile_ - 1) / tile_) {}

TileStoreStats TileStoreStats::delta_since(const TileStoreStats& before) const {
  TileStoreStats d = *this;
  d.evictions -= before.evictions;
  d.spill_writes -= before.spill_writes;
  d.spill_reads -= before.spill_reads;
  d.bytes_written -= before.bytes_written;
  d.bytes_read -= before.bytes_read;
  return d;
}

TileGuard& TileGuard::operator=(TileGuard&& other) noexcept {
  if (this != &other) {
    if (store_ != nullptr) store_->commit_index(tile_index_, access_);
    store_ = other.store_;
    tile_index_ = other.tile_index_;
    data_ = other.data_;
    access_ = other.access_;
    other.store_ = nullptr;
  }
  return *this;
}

TileGuard::~TileGuard() {
  if (store_ != nullptr) store_->commit_index(tile_index_, access_);
}

// ------------------------------------------------------------ in-memory ---

InMemoryTileStore::InMemoryTileStore(const TileLayout& layout, const StorageConfig& config)
    : TileStore(layout, config), arena_(layout.tile_count() * layout.tile_doubles(), 0.0) {}

TileGuard InMemoryTileStore::checkout_index(std::size_t tile_index, TileAccess access) const {
  return {this, tile_index, arena_.data() + tile_index * layout().tile_doubles(), access};
}

void InMemoryTileStore::commit_index(std::size_t, TileAccess) const {}

void InMemoryTileStore::set_zero() { std::fill(arena_.begin(), arena_.end(), 0.0); }

std::unique_ptr<TileStore> InMemoryTileStore::clone() const {
  auto copy = std::make_unique<InMemoryTileStore>(layout(), config());
  copy->arena_ = arena_;
  return copy;
}

TileStoreStats InMemoryTileStore::stats() const {
  TileStoreStats s;
  s.resident_bytes = arena_.size() * sizeof(double);
  s.peak_resident_bytes = s.resident_bytes;
  return s;
}

// ---------------------------------------------------------------- spill ---

struct SpillTileStore::Pager {
  struct Slot {
    std::vector<double> data;
    std::size_t tile = kNoTile;
    std::size_t pins = 0;
    bool dirty = false;
    /// A fault's IO (write-back of the previous tenant and/or read of the
    /// new one) is in flight with the mutex released; the slot must not be
    /// touched or evicted until it clears.
    bool busy = false;
    /// Intrusive LRU links (slot ids): every slot sits on one list ordered
    /// stale -> fresh, pinned or not, so recency is a position, not a
    /// timestamp.
    std::size_t lru_prev = kNoTile;
    std::size_t lru_next = kNoTile;
  };

  std::mutex mutex;
  std::condition_variable cv;  ///< signaled when a busy slot settles
  /// Deque, not vector: a concurrent fault's emplace_back must not move
  /// existing Slot objects — checkout holds a Slot reference (and the
  /// payload pointer) across the unlocked IO window, and guards hold
  /// payload pointers for arbitrarily long.
  std::deque<Slot> slots;
  /// tile index -> slot id for the resident set. During a fault both the
  /// outgoing and the incoming tile map to the busy slot, so concurrent
  /// checkouts of either wait instead of double-faulting.
  std::unordered_map<std::size_t, std::size_t> resident;
  /// Tiles with valid content in the scratch file; everything else is a
  /// logical zero on first touch.
  std::vector<bool> on_disk;
  /// LRU list bounds: head is the stalest slot (first eviction candidate),
  /// tail the freshest. A fault walks from the head past pinned/busy slots
  /// only — O(pinned + in-flight), never O(resident slots) like the
  /// timestamp scan this replaced (ROADMAP follow-up from the tiled-storage
  /// PR: thousands of resident tiles were fine, millions were not).
  std::size_t lru_head = kNoTile;
  std::size_t lru_tail = kNoTile;
  TileStoreStats stats;

  void lru_unlink(std::size_t id) {
    Slot& slot = slots[id];
    if (slot.lru_prev != kNoTile) {
      slots[slot.lru_prev].lru_next = slot.lru_next;
    } else {
      lru_head = slot.lru_next;
    }
    if (slot.lru_next != kNoTile) {
      slots[slot.lru_next].lru_prev = slot.lru_prev;
    } else {
      lru_tail = slot.lru_prev;
    }
    slot.lru_prev = kNoTile;
    slot.lru_next = kNoTile;
  }

  void lru_push_back(std::size_t id) {
    Slot& slot = slots[id];
    slot.lru_prev = lru_tail;
    slot.lru_next = kNoTile;
    if (lru_tail != kNoTile) {
      slots[lru_tail].lru_next = id;
    } else {
      lru_head = id;
    }
    lru_tail = id;
  }

  /// Mark `id` most recently used — exactly where the old scheme bumped its
  /// timestamp (checkout hits and completed faults), so the list order *is*
  /// the timestamp order and eviction choices (hence all pager stats) are
  /// identical.
  void lru_touch(std::size_t id) {
    lru_unlink(id);
    lru_push_back(id);
  }
};

SpillTileStore::SpillTileStore(const TileLayout& layout, const StorageConfig& config)
    : TileStore(layout, config), pager_(std::make_unique<Pager>()) {
  EBEM_EXPECT(config.residency_budget_bytes > 0,
              "SpillTileStore requires a positive residency budget");
  max_resident_ = std::max<std::size_t>(1, config.residency_budget_bytes / layout.tile_bytes());
  pager_->on_disk.assign(layout.tile_count(), false);

  std::string path = config.spill_dir + "/ebem-spill-XXXXXX";
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    throw IoError("SpillTileStore: spill directory '" + config.spill_dir +
                  "' is not writable: " + std::strerror(errno));
  }
  // Anonymous scratch space: the pager holds the only reference, so the
  // file vanishes with the process no matter how it exits.
  ::unlink(path.c_str());
}

SpillTileStore::~SpillTileStore() {
  if (fd_ >= 0) ::close(fd_);
}

void SpillTileStore::write_tile(const double* data, std::size_t tile_index) const {
  const std::size_t bytes = layout().tile_bytes();
  const ssize_t written =
      ::pwrite(fd_, data, bytes, static_cast<off_t>(tile_index * bytes));
  if (written != static_cast<ssize_t>(bytes)) {
    throw IoError(std::string("SpillTileStore: spill-file write failed: ") +
                  std::strerror(errno));
  }
}

void SpillTileStore::read_tile(double* data, std::size_t tile_index) const {
  const std::size_t bytes = layout().tile_bytes();
  const ssize_t got = ::pread(fd_, data, bytes, static_cast<off_t>(tile_index * bytes));
  if (got != static_cast<ssize_t>(bytes)) {
    throw IoError(std::string("SpillTileStore: spill-file read failed: ") +
                  std::strerror(errno));
  }
}

TileGuard SpillTileStore::checkout_index(std::size_t tile_index, TileAccess access) const {
  Pager& p = *pager_;
  std::unique_lock lock(p.mutex);
  for (;;) {
    const auto it = p.resident.find(tile_index);
    if (it != p.resident.end()) {
      Pager::Slot& slot = p.slots[it->second];
      if (slot.busy) {
        // Another thread is paging this slot (our tile in, or our tile's
        // payload out); wait for it to settle and re-resolve.
        p.cv.wait(lock);
        continue;
      }
      slot.pins += 1;
      p.lru_touch(it->second);
      // The payload pointer stays valid while pinned: pinned slots are
      // never evicted, and growth never moves existing Slots (deque).
      return {this, tile_index, slot.data.data(), access};
    }

    // Fault: at capacity, evict the stalest tile that is neither pinned nor
    // mid-IO — the walk from the list head skips only pinned/busy slots, so
    // victim selection is O(pins in flight), not O(resident slots).
    std::size_t id = kNoTile;
    if (p.slots.size() >= max_resident_) {
      for (std::size_t s = p.lru_head; s != kNoTile; s = p.slots[s].lru_next) {
        if (p.slots[s].pins == 0 && !p.slots[s].busy) {
          id = s;
          break;
        }
      }
    }
    if (id == kNoTile) {
      // Below capacity — or every resident tile pinned/busy, in which case
      // grow past the budget instead of deadlocking (peak_resident_bytes
      // records it).
      p.slots.emplace_back();
      id = p.slots.size() - 1;
      p.lru_push_back(id);
      p.stats.resident_bytes = p.slots.size() * layout().tile_bytes();
      p.stats.peak_resident_bytes =
          std::max(p.stats.peak_resident_bytes, p.stats.resident_bytes);
    }
    Pager::Slot& slot = p.slots[id];
    const std::size_t old_tile = slot.tile;
    const bool write_back = old_tile != kNoTile && slot.dirty;
    const bool read_back = p.on_disk[tile_index];
    // Claim the slot for the incoming tile; both tenants stay mapped and
    // the slot busy while the mutex is released for the IO, so concurrent
    // checkouts of either tile wait instead of double-faulting.
    slot.busy = true;
    slot.tile = tile_index;
    slot.data.resize(layout().tile_doubles());
    p.resident.emplace(tile_index, id);

    lock.unlock();
    std::exception_ptr io_error;
    bool wrote = false;
    try {
      if (write_back) {
        write_tile(slot.data.data(), old_tile);
        wrote = true;
      }
      if (read_back) {
        read_tile(slot.data.data(), tile_index);
      } else {
        std::fill(slot.data.begin(), slot.data.end(), 0.0);
      }
    } catch (...) {
      io_error = std::current_exception();
    }
    lock.lock();

    slot.busy = false;
    if (wrote) {
      p.on_disk[old_tile] = true;
      p.stats.spill_writes += 1;
      p.stats.bytes_written += layout().tile_bytes();
    }
    if (io_error != nullptr) {
      // Roll back to a consistent map. A failed write-back leaves the old
      // payload intact in the slot — restore the old tenancy (still
      // dirty). Any other failure leaves the slot empty: the old tile is
      // safe on disk (just written, previously written, or logically zero)
      // and the incoming tile was never delivered.
      p.resident.erase(tile_index);
      if (write_back && !wrote) {
        slot.tile = old_tile;
      } else {
        if (old_tile != kNoTile) p.resident.erase(old_tile);
        slot.tile = kNoTile;
        slot.dirty = false;
      }
      p.cv.notify_all();
      std::rethrow_exception(io_error);
    }
    if (old_tile != kNoTile) {
      // Counted only now: a rolled-back fault did not actually evict.
      p.resident.erase(old_tile);
      p.stats.evictions += 1;
    }
    if (read_back) {
      p.stats.spill_reads += 1;
      p.stats.bytes_read += layout().tile_bytes();
    }
    slot.dirty = false;
    slot.pins = 1;
    p.lru_touch(id);
    p.cv.notify_all();
    return {this, tile_index, slot.data.data(), access};
  }
}

void SpillTileStore::commit_index(std::size_t tile_index, TileAccess access) const {
  Pager& p = *pager_;
  const std::scoped_lock lock(p.mutex);
  const auto it = p.resident.find(tile_index);
  EBEM_ENSURE(it != p.resident.end(), "commit of a tile that is not resident");
  Pager::Slot& slot = p.slots[it->second];
  EBEM_ENSURE(slot.pins > 0, "commit of a tile that is not checked out");
  slot.pins -= 1;
  if (access == TileAccess::kWrite) slot.dirty = true;
}

void SpillTileStore::set_zero() {
  Pager& p = *pager_;
  const std::scoped_lock lock(p.mutex);
  for (const Pager::Slot& slot : p.slots) {
    EBEM_ENSURE(slot.pins == 0 && !slot.busy, "set_zero with tiles still checked out");
  }
  p.slots.clear();
  p.resident.clear();
  p.lru_head = kNoTile;
  p.lru_tail = kNoTile;
  // Everything on disk becomes stale; first touch re-materializes zeros.
  std::fill(p.on_disk.begin(), p.on_disk.end(), false);
  p.stats.resident_bytes = 0;
}

std::unique_ptr<TileStore> SpillTileStore::clone() const {
  auto copy = std::make_unique<SpillTileStore>(layout(), config());
  copy_tiles(*this, *copy);
  return copy;
}

TileStoreStats SpillTileStore::stats() const {
  const std::scoped_lock lock(pager_->mutex);
  TileStoreStats s = pager_->stats;
  s.resident_bytes = pager_->slots.size() * layout().tile_bytes();
  return s;
}

// -------------------------------------------------------------- helpers ---

std::unique_ptr<TileStore> make_tile_store(std::size_t n, const StorageConfig& config) {
  validate_storage_config(config, "make_tile_store");
  const TileLayout layout(n, config.tile_size);
  if (config.compression.enabled()) {
    return std::make_unique<CompressedTileStore>(layout, config);
  }
  if (config.residency_budget_bytes > 0) {
    return std::make_unique<SpillTileStore>(layout, config);
  }
  return std::make_unique<InMemoryTileStore>(layout, config);
}

void copy_tiles(const TileStore& src, TileStore& dst) {
  const TileLayout& sl = src.layout();
  const TileLayout& dl = dst.layout();
  EBEM_EXPECT(sl.n() == dl.n(), "copy_tiles requires equal matrix dimensions");
  // Walk destination tiles; for each, stream the overlapping source tiles.
  // One tile of each store is pinned at a time, so the copy itself respects
  // both residency budgets (this is how the Cholesky re-tiles its input).
  for (std::size_t ti = 0; ti < dl.tile_rows(); ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      const TileGuard dguard = dst.checkout(ti, tj, TileAccess::kWrite);
      double* d = dguard.data();
      const std::size_t i0 = dl.row_begin(ti), i1 = dl.row_end(ti);
      const std::size_t j0 = dl.row_begin(tj), j1 = dl.row_end(tj);
      for (std::size_t sp = sl.tile_of(i0); sp <= sl.tile_of(i1 - 1); ++sp) {
        const std::size_t ri0 = std::max(i0, sl.row_begin(sp));
        const std::size_t ri1 = std::min(i1, sl.row_end(sp));
        for (std::size_t sq = sl.tile_of(j0); sq <= std::min(sp, sl.tile_of(j1 - 1)); ++sq) {
          const std::size_t rj0 = std::max(j0, sl.row_begin(sq));
          const std::size_t rj1 = std::min(j1, sl.row_end(sq));
          if (rj0 >= rj1 || ri0 >= ri1) continue;
          const TileGuard sguard = src.checkout(sp, sq, TileAccess::kRead);
          const double* s = sguard.data();
          for (std::size_t i = ri0; i < ri1; ++i) {
            const std::size_t jmax = std::min(rj1, i + 1);  // lower triangle only
            for (std::size_t j = rj0; j < jmax; ++j) {
              d[(i - i0) * dl.tile() + (j - j0)] = s[sl.tile_offset(i, j)];
            }
          }
        }
      }
    }
  }
}

std::vector<double> packed_lower(const TileStore& store) {
  const TileLayout& layout = store.layout();
  const std::size_t n = layout.n();
  std::vector<double> packed(n * (n + 1) / 2, 0.0);
  for (std::size_t ti = 0; ti < layout.tile_rows(); ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      const TileGuard guard = store.checkout(ti, tj, TileAccess::kRead);
      const double* t = guard.data();
      const std::size_t i0 = layout.row_begin(ti), i1 = layout.row_end(ti);
      const std::size_t j0 = layout.row_begin(tj);
      const std::size_t j1 = layout.row_end(tj);
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t jmax = std::min(j1, i + 1);
        for (std::size_t j = j0; j < jmax; ++j) {
          packed[i * (i + 1) / 2 + j] = t[(i - i0) * layout.tile() + (j - j0)];
        }
      }
    }
  }
  return packed;
}

}  // namespace ebem::la

// Adaptive Cross Approximation with partial pivoting — the low-rank engine
// behind the compressed (H-matrix style) tile-store backend.
//
// ACA builds a rank-k approximation A ~ U V^T of an m x n block from k
// sampled rows and k sampled columns, never materializing the block: each
// step subtracts the current approximation from a freshly sampled pivot
// row, normalizes it into v_k, samples the pivot column into u_k, and stops
// when the new term's norm falls below epsilon times the running Frobenius
// estimate of the approximation. For the asymptotically smooth layered-soil
// kernels of this library, well-separated (admissible) blocks have
// exponentially decaying singular values, so k stays far below min(m, n)
// and the block costs O(k (m + n)) samples instead of m * n integrations.
//
// The sampler callbacks are the only coupling to the producer: the far-field
// assembly hands in closures that evaluate one matrix row/column via
// bem::Integrator element-pair integrals (see bem/far_field.hpp), and the
// unit tests hand in closures over synthetic matrices.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ebem::la {

struct AcaOptions {
  /// Relative stopping tolerance: accept rank k when ||u_k|| ||v_k|| <=
  /// epsilon * ||A_k||_F (Frobenius norm of the running approximation).
  double epsilon = 1e-8;
  /// Rank budget; exceeding it without meeting the tolerance reports
  /// converged == false so the caller can split the block instead.
  std::size_t max_rank = 128;
};

struct AcaResult {
  std::size_t rank = 0;
  /// True when the tolerance was met (or the block was reproduced exactly);
  /// false when the rank budget ran out first.
  bool converged = false;
  std::vector<double> u;  ///< rows x rank, row-major
  std::vector<double> v;  ///< cols x rank, row-major
  std::size_t rows_sampled = 0;
  std::size_t cols_sampled = 0;
};

/// Row/column sampler: fill `out` with entries A(index, :) or A(:, index).
using AcaSampler = std::function<void(std::size_t index, double* out)>;

/// Partially pivoted ACA of an implicit rows x cols matrix. Deterministic:
/// pivots depend only on the sampled values, never on thread timing.
[[nodiscard]] AcaResult adaptive_cross(std::size_t rows, std::size_t cols,
                                       const AcaSampler& sample_row, const AcaSampler& sample_col,
                                       const AcaOptions& options);

}  // namespace ebem::la

// Dense symmetric matrix in packed lower-triangular storage.
//
// The Galerkin BEM system matrix is dense, symmetric and positive definite
// (paper §4.2); packed storage halves the memory footprint, which is the
// same trade the paper makes when it assembles only the M(M+1)/2 triangle.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::la {

class SymMatrix {
 public:
  SymMatrix() = default;
  explicit SymMatrix(std::size_t n) : n_(n), data_(n * (n + 1) / 2, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Element access; (i, j) and (j, i) alias the same storage.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[index(i, j)];
  }
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) { return data_[index(i, j)]; }

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Below this dimension the pooled multiply falls back to the serial walk
  /// (bitwise identical to the pool-less overload): dispatching two parallel
  /// regions costs more than the whole matvec — measured 0.37x "speedup" at
  /// 4 threads on a 169-DoF PCG solve with the old 128 cutoff.
  static constexpr std::size_t kParallelCutoff = 512;

  /// y = A x on `pool`'s workers: the packed triangle is split into
  /// weight-balanced row strips, each strip scattering its transpose part
  /// into a per-strip partial that a second parallel pass reduces in fixed
  /// strip order — so the result is deterministic for a given pool size.
  /// Falls back to the serial walk for a null/single-thread pool or a matrix
  /// smaller than kParallelCutoff.
  void multiply(std::span<const double> x, std::span<double> y, par::ThreadPool* pool) const;

  /// Diagonal entries, used by the Jacobi preconditioner.
  [[nodiscard]] std::vector<double> diagonal() const;

  [[nodiscard]] std::span<const double> packed() const { return data_; }
  [[nodiscard]] std::span<double> packed() { return data_; }

  void set_zero();

 private:
  // Packed lower-triangle (row-major) index of (i, j) with i >= j.
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace ebem::la

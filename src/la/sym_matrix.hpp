// Dense symmetric matrix over a pluggable tile store.
//
// The Galerkin BEM system matrix is dense, symmetric and positive definite
// (paper §4.2); only the lower triangle is stored, as fixed-size square
// tiles behind the la::TileStore interface (tile_store.hpp). The default
// backend is the contiguous in-memory arena; a StorageConfig with a
// residency budget selects the file-backed spill pager, which lets systems
// larger than memory be assembled, multiplied and factored with a bounded
// resident set; a StorageConfig with compression enabled selects the
// low-rank (H-matrix) backend, whose far-field tiles multiply() applies
// straight from their U V^T factors. Algorithms walk tiles, never one flat
// array.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/la/tile_store.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::la {

class SymMatrix {
 public:
  SymMatrix() = default;
  explicit SymMatrix(std::size_t n, const StorageConfig& storage = {});

  /// Deep copy: re-creates the same backend (a spill-backed matrix clones
  /// into its own fresh scratch file).
  SymMatrix(const SymMatrix& other);
  SymMatrix& operator=(const SymMatrix& other);
  SymMatrix(SymMatrix&&) noexcept = default;
  SymMatrix& operator=(SymMatrix&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Entry value; (i, j) and (j, i) alias the same storage. Works on every
  /// backend (paged backends check the tile out and back in).
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const { return get(i, j); }

  /// Mutable entry reference — only for directly addressable (in-memory)
  /// storage, where the reference is stable; throws ebem::InvalidArgument on
  /// a paged backend (use set()/add() there).
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j);

  [[nodiscard]] double get(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double value);
  void add(std::size_t i, std::size_t j, double value);

  /// y = A x, walking the lower-triangle tiles once (each scatters both its
  /// (i, j) and (j, i) contributions).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Below this dimension the pooled multiply falls back to the serial walk
  /// (bitwise identical to the pool-less overload): dispatching two parallel
  /// regions costs more than the whole matvec — measured 0.37x "speedup" at
  /// 4 threads on a 169-DoF PCG solve with the old 128 cutoff. This is the
  /// *default* crossover; engine::ExecutionConfig::matvec_parallel_cutoff
  /// tunes it per session without recompiling.
  static constexpr std::size_t kParallelCutoff = 512;

  /// y = A x on `pool`'s workers: tile rows are split into weight-balanced
  /// strips, each strip owning y for its rows and scattering its transpose
  /// part into a per-strip partial that a second parallel pass reduces in
  /// fixed strip order — deterministic for a given pool size. Falls back to
  /// the serial walk for a null/single-thread pool or a matrix smaller than
  /// `parallel_cutoff`.
  void multiply(std::span<const double> x, std::span<double> y, par::ThreadPool* pool,
                std::size_t parallel_cutoff = kParallelCutoff) const;

  /// Diagonal entries, used by the Jacobi preconditioner.
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Materialized packed row-major lower triangle (n(n+1)/2 doubles) — an
  /// interchange/debug format, not a view of storage.
  [[nodiscard]] std::vector<double> packed() const;

  void set_zero();

  /// The backing tile store (layout, checkout, pager counters).
  [[nodiscard]] const TileStore& store() const { return *store_; }
  [[nodiscard]] TileStore& store() { return *store_; }
  [[nodiscard]] const StorageConfig& storage_config() const { return store_->config(); }
  [[nodiscard]] const TileLayout& layout() const { return store_->layout(); }
  [[nodiscard]] TileStoreStats tile_stats() const {
    return store_ ? store_->stats() : TileStoreStats{};
  }

 private:
  /// Arena offset of entry (i, j), i >= j — the one place the tile-slot
  /// address arithmetic lives.
  [[nodiscard]] std::size_t arena_slot(std::size_t i, std::size_t j) const;
  /// Run `op(entry)` on (i, j) through the backend-appropriate write path.
  template <typename Op>
  void apply_entry(std::size_t i, std::size_t j, Op&& op);

  std::size_t n_ = 0;
  std::unique_ptr<TileStore> store_;
  /// Cached store_->direct_data(): non-null iff entries are addressable
  /// without checkout (the scalar-access fast path).
  double* direct_ = nullptr;
};

}  // namespace ebem::la

// Level-1 dense vector kernels (BLAS-lite).
//
// The library carries its own minimal kernels instead of depending on an
// external BLAS: problem sizes in grounding analysis (N ~ 10^2..10^4) are
// dominated by matrix *generation*, not by these operations (paper §4.3).
#pragma once

#include <span>
#include <vector>

namespace ebem::la {

using Vector = std::vector<double>;

/// dot(x, y) = sum_i x_i y_i. Sizes must match.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

/// Euclidean norm of x.
[[nodiscard]] double nrm2(std::span<const double> x);

/// Maximum absolute entry of x (0 for an empty span).
[[nodiscard]] double amax(std::span<const double> x);

}  // namespace ebem::la

#include "src/la/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {

Cholesky::Cholesky(const SymMatrix& a) : Cholesky(a, {}) {}

Cholesky::Cholesky(const SymMatrix& a, const CholeskyOptions& options)
    : n_(a.size()), l_(a.packed().begin(), a.packed().end()) {
  EBEM_EXPECT(options.block >= 1, "panel width must be at least 1");
  par::ThreadPool* pool =
      (options.pool != nullptr && options.pool->num_threads() > 1) ? options.pool : nullptr;
  for (std::size_t k0 = 0; k0 < n_; k0 += options.block) {
    const std::size_t k1 = std::min(k0 + options.block, n_);
    factor_diagonal_block(k0, k1);
    panel_solve(k0, k1, pool);
    trailing_update(k0, k1, pool);
  }
}

void Cholesky::factor_diagonal_block(std::size_t k0, std::size_t k1) {
  // Right-looking: previous panels' trailing updates already applied, so
  // only columns within the panel enter the dot products.
  for (std::size_t j = k0; j < k1; ++j) {
    const double* row_j = l_.data() + index(j, k0);
    double diag = l_[index(j, j)];
    for (std::size_t k = k0; k < j; ++k) {
      const double ljk = row_j[k - k0];
      diag -= ljk * ljk;
    }
    EBEM_EXPECT(diag > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    l_[index(j, j)] = ljj;
    for (std::size_t i = j + 1; i < k1; ++i) {
      const double* row_i = l_.data() + index(i, k0);
      double sum = l_[index(i, j)];
      for (std::size_t k = k0; k < j; ++k) sum -= row_i[k - k0] * row_j[k - k0];
      l_[index(i, j)] = sum / ljj;
    }
  }
}

void Cholesky::panel_solve(std::size_t k0, std::size_t k1, par::ThreadPool* pool) {
  if (k1 >= n_) return;
  const auto solve_row = [&](std::size_t i) {
    double* row_i = l_.data() + index(i, k0);
    for (std::size_t j = k0; j < k1; ++j) {
      const double* row_j = l_.data() + index(j, k0);
      double sum = row_i[j - k0];
      for (std::size_t k = k0; k < j; ++k) sum -= row_i[k - k0] * row_j[k - k0];
      row_i[j - k0] = sum / row_j[j - k0];
    }
  };
  const std::size_t rows = n_ - k1;
  if (pool == nullptr) {
    for (std::size_t r = 0; r < rows; ++r) solve_row(k1 + r);
    return;
  }
  par::parallel_for(*pool, rows, par::Schedule::guided(1),
                    [&](std::size_t r) { solve_row(k1 + r); });
}

void Cholesky::trailing_update(std::size_t k0, std::size_t k1, par::ThreadPool* pool) {
  if (k1 >= n_) return;
  const std::size_t width = k1 - k0;
  // Row i of the Schur complement subtracts the panel-dot of rows i and j;
  // both panel segments are contiguous in packed row-major storage.
  const auto update_row = [&](std::size_t i) {
    const double* panel_i = l_.data() + index(i, k0);
    double* row_i = l_.data() + index(i, k1);
    for (std::size_t j = k1; j <= i; ++j) {
      const double* panel_j = l_.data() + index(j, k0);
      double sum = 0.0;
      for (std::size_t k = 0; k < width; ++k) sum += panel_i[k] * panel_j[k];
      row_i[j - k1] -= sum;
    }
  };
  const std::size_t rows = n_ - k1;
  if (pool == nullptr) {
    for (std::size_t r = 0; r < rows; ++r) update_row(k1 + r);
    return;
  }
  // Row cost grows linearly with i, the exact triangular profile the
  // guided schedule balances.
  par::parallel_for(*pool, rows, par::Schedule::guided(1),
                    [&](std::size_t r) { update_row(k1 + r); });
}

std::vector<double> Cholesky::solve_many(std::span<const double> b, std::size_t num_rhs,
                                         par::ThreadPool* pool) const {
  EBEM_EXPECT(num_rhs >= 1, "need at least one right-hand side");
  EBEM_EXPECT(b.size() == n_ * num_rhs, "right-hand-side block size mismatch");
  std::vector<double> x(b.begin(), b.end());

  // Substitute one contiguous chunk of columns through both triangles. The
  // inner loops run over the chunk, so each L entry is fetched once per
  // chunk instead of once per column.
  const auto solve_chunk = [&](std::size_t c0, std::size_t c1) {
    const std::size_t width = c1 - c0;
    // Forward substitution: L Y = B.
    for (std::size_t i = 0; i < n_; ++i) {
      double* xi = x.data() + i * num_rhs + c0;
      const double* row_i = l_.data() + index(i, 0);
      for (std::size_t j = 0; j < i; ++j) {
        const double lij = row_i[j];
        const double* xj = x.data() + j * num_rhs + c0;
        for (std::size_t c = 0; c < width; ++c) xi[c] -= lij * xj[c];
      }
      const double lii = l_[index(i, i)];
      for (std::size_t c = 0; c < width; ++c) xi[c] /= lii;
    }
    // Back substitution: L^T X = Y.
    for (std::size_t i = n_; i-- > 0;) {
      double* xi = x.data() + i * num_rhs + c0;
      for (std::size_t j = i + 1; j < n_; ++j) {
        const double lji = l_[index(j, i)];
        const double* xj = x.data() + j * num_rhs + c0;
        for (std::size_t c = 0; c < width; ++c) xi[c] -= lji * xj[c];
      }
      const double lii = l_[index(i, i)];
      for (std::size_t c = 0; c < width; ++c) xi[c] /= lii;
    }
  };

  // Fixed chunk width: the chunk partition — and with it every column's
  // summation order — is independent of the worker count, keeping the
  // result bitwise stable across thread counts and schedules.
  constexpr std::size_t kChunk = 8;
  const std::size_t chunks = (num_rhs + kChunk - 1) / kChunk;
  const auto run_chunk = [&](std::size_t chunk) {
    const std::size_t c0 = chunk * kChunk;
    solve_chunk(c0, std::min(c0 + kChunk, num_rhs));
  };
  if (pool == nullptr || pool->num_threads() <= 1 || chunks <= 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  } else {
    par::parallel_for(*pool, chunks, par::Schedule::static_blocked(), run_chunk);
  }
  return x;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  EBEM_EXPECT(b.size() == n_, "right-hand-side size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_[index(i, j)] * x[j];
    x[i] = sum / l_[index(i, i)];
  }
  // Back substitution: L^T x = y.
  for (std::size_t i = n_; i-- > 0;) {
    double sum = x[i];
    for (std::size_t j = i + 1; j < n_; ++j) sum -= l_[index(j, i)] * x[j];
    x[i] = sum / l_[index(i, i)];
  }
  return x;
}

}  // namespace ebem::la

#include "src/la/cholesky.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace ebem::la {

Cholesky::Cholesky(const SymMatrix& a) : n_(a.size()), l_(a.packed().begin(), a.packed().end()) {
  for (std::size_t j = 0; j < n_; ++j) {
    double diag = l_[index(j, j)];
    for (std::size_t k = 0; k < j; ++k) {
      const double ljk = l_[index(j, k)];
      diag -= ljk * ljk;
    }
    EBEM_EXPECT(diag > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    l_[index(j, j)] = ljj;
    for (std::size_t i = j + 1; i < n_; ++i) {
      double sum = l_[index(i, j)];
      for (std::size_t k = 0; k < j; ++k) sum -= l_[index(i, k)] * l_[index(j, k)];
      l_[index(i, j)] = sum / ljj;
    }
  }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  EBEM_EXPECT(b.size() == n_, "right-hand-side size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_[index(i, j)] * x[j];
    x[i] = sum / l_[index(i, i)];
  }
  // Back substitution: L^T x = y.
  for (std::size_t i = n_; i-- > 0;) {
    double sum = x[i];
    for (std::size_t j = i + 1; j < n_; ++j) sum -= l_[index(j, i)] * x[j];
    x[i] = sum / l_[index(i, i)];
  }
  return x;
}

}  // namespace ebem::la

#include "src/la/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::la {

Cholesky::Cholesky(const SymMatrix& a) : Cholesky(a, {}) {}

Cholesky::Cholesky(const SymMatrix& a, const CholeskyOptions& options) : n_(a.size()) {
  EBEM_EXPECT(options.block >= 1, "panel width must be at least 1");
  StorageConfig config =
      options.storage.value_or(n_ > 0 ? a.storage_config() : StorageConfig{});
  config.tile_size = options.block;
  // The factor is never compressed: fill-in destroys the low-rank structure,
  // so a compressed input matrix densifies through copy_tiles below (its
  // read checkouts decompress tile by tile) into a plain store.
  config.compression = {};
  l_ = make_tile_store(n_, config);
  if (n_ == 0) return;
  copy_tiles(a.store(), *l_);

  par::ThreadPool* pool =
      (options.pool != nullptr && options.pool->num_threads() > 1) ? options.pool : nullptr;
  const std::size_t tile_rows = l_->layout().tile_rows();
  for (std::size_t kt = 0; kt < tile_rows; ++kt) {
    factor_diagonal_tile(kt);
    panel_solve(kt, pool);
    trailing_update(kt, pool);
  }
}

void Cholesky::factor_diagonal_tile(std::size_t kt) {
  const TileLayout& layout = l_->layout();
  const std::size_t tile = layout.tile();
  const std::size_t rows = layout.rows_in(kt);
  const TileGuard guard = l_->checkout(kt, kt, TileAccess::kWrite);
  double* t = guard.data();
  // Right-looking: previous panels' trailing updates already applied, so
  // only columns within the panel enter the dot products.
  for (std::size_t j = 0; j < rows; ++j) {
    const double* row_j = t + j * tile;
    double diag = row_j[j];
    for (std::size_t k = 0; k < j; ++k) diag -= row_j[k] * row_j[k];
    EBEM_EXPECT(diag > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    t[j * tile + j] = ljj;
    for (std::size_t i = j + 1; i < rows; ++i) {
      double* row_i = t + i * tile;
      double sum = row_i[j];
      for (std::size_t k = 0; k < j; ++k) sum -= row_i[k] * row_j[k];
      row_i[j] = sum / ljj;
    }
  }
}

void Cholesky::panel_solve(std::size_t kt, par::ThreadPool* pool) {
  const TileLayout& layout = l_->layout();
  const std::size_t tile_rows = layout.tile_rows();
  if (kt + 1 >= tile_rows) return;
  const std::size_t tile = layout.tile();
  const std::size_t width = layout.rows_in(kt);
  const auto solve_tile = [&](std::size_t it) {
    const TileGuard diag_guard = l_->checkout(kt, kt, TileAccess::kRead);
    const TileGuard panel_guard = l_->checkout(it, kt, TileAccess::kWrite);
    const double* d = diag_guard.data();
    double* p = panel_guard.data();
    const std::size_t rows = layout.rows_in(it);
    for (std::size_t r = 0; r < rows; ++r) {
      double* row = p + r * tile;
      for (std::size_t c = 0; c < width; ++c) {
        const double* diag_row = d + c * tile;
        double sum = row[c];
        for (std::size_t k = 0; k < c; ++k) sum -= row[k] * diag_row[k];
        row[c] = sum / diag_row[c];
      }
    }
  };
  const std::size_t tiles = tile_rows - kt - 1;
  if (pool == nullptr) {
    for (std::size_t r = 0; r < tiles; ++r) solve_tile(kt + 1 + r);
    return;
  }
  par::parallel_for(*pool, tiles, par::Schedule::guided(1),
                    [&](std::size_t r) { solve_tile(kt + 1 + r); });
}

void Cholesky::trailing_update(std::size_t kt, par::ThreadPool* pool) {
  const TileLayout& layout = l_->layout();
  const std::size_t tile_rows = layout.tile_rows();
  if (kt + 1 >= tile_rows) return;
  const std::size_t tile = layout.tile();
  const std::size_t width = layout.rows_in(kt);
  // Update tile (it, jt) of the Schur complement from panel tiles (it, kt)
  // and (jt, kt); three pins per worker, the pager's bounded working set.
  const auto update_tile = [&](std::size_t it, std::size_t jt) {
    const TileGuard left_guard = l_->checkout(it, kt, TileAccess::kRead);
    const TileGuard right_guard = l_->checkout(jt, kt, TileAccess::kRead);
    const TileGuard out_guard = l_->checkout(it, jt, TileAccess::kWrite);
    const double* a = left_guard.data();
    const double* b = right_guard.data();
    double* out = out_guard.data();
    const std::size_t rows = layout.rows_in(it);
    const std::size_t cols = layout.rows_in(jt);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* ar = a + r * tile;
      double* out_r = out + r * tile;
      // Diagonal tiles update their lower triangle only.
      const std::size_t cmax = it == jt ? r + 1 : cols;
      for (std::size_t c = 0; c < cmax; ++c) {
        const double* bc = b + c * tile;
        double sum = 0.0;
        for (std::size_t k = 0; k < width; ++k) sum += ar[k] * bc[k];
        out_r[c] -= sum;
      }
    }
  };
  // Flattened (it, jt) pairs with kt < jt <= it; tile cost grows with the
  // tile-row index, the profile the guided schedule balances.
  const std::size_t m = tile_rows - kt - 1;
  const std::size_t pairs = m * (m + 1) / 2;
  const auto update_pair = [&](std::size_t p) {
    // p = local_i * (local_i + 1) / 2 + local_j over the local triangle.
    auto local_i = static_cast<std::size_t>((std::sqrt(8.0 * static_cast<double>(p) + 1.0) - 1.0) / 2.0);
    while (local_i * (local_i + 1) / 2 > p) --local_i;
    while ((local_i + 1) * (local_i + 2) / 2 <= p) ++local_i;
    const std::size_t local_j = p - local_i * (local_i + 1) / 2;
    update_tile(kt + 1 + local_i, kt + 1 + local_j);
  };
  if (pool == nullptr) {
    for (std::size_t p = 0; p < pairs; ++p) update_pair(p);
    return;
  }
  par::parallel_for(*pool, pairs, par::Schedule::guided(1), update_pair);
}

void Cholesky::solve_chunk(double* x, std::size_t num_rhs, std::size_t c0,
                           std::size_t c1) const {
  const TileLayout& layout = l_->layout();
  const std::size_t tile = layout.tile();
  const std::size_t tile_rows = layout.tile_rows();
  const std::size_t width = c1 - c0;

  // Forward substitution: L Y = B. Off-diagonal tiles of tile row ti apply
  // in ascending tj, then the diagonal tile finishes and divides each row.
  for (std::size_t ti = 0; ti < tile_rows; ++ti) {
    const std::size_t i0 = layout.row_begin(ti);
    const std::size_t rows = layout.rows_in(ti);
    for (std::size_t tj = 0; tj < ti; ++tj) {
      const TileGuard guard = l_->checkout(ti, tj, TileAccess::kRead);
      const double* t = guard.data();
      const std::size_t j0 = layout.row_begin(tj);
      const std::size_t cols = layout.rows_in(tj);
      for (std::size_t r = 0; r < rows; ++r) {
        double* xi = x + (i0 + r) * num_rhs + c0;
        const double* row = t + r * tile;
        for (std::size_t cl = 0; cl < cols; ++cl) {
          const double lij = row[cl];
          const double* xj = x + (j0 + cl) * num_rhs + c0;
          for (std::size_t c = 0; c < width; ++c) xi[c] -= lij * xj[c];
        }
      }
    }
    const TileGuard guard = l_->checkout(ti, ti, TileAccess::kRead);
    const double* t = guard.data();
    for (std::size_t r = 0; r < rows; ++r) {
      double* xi = x + (i0 + r) * num_rhs + c0;
      const double* row = t + r * tile;
      for (std::size_t cl = 0; cl < r; ++cl) {
        const double lij = row[cl];
        const double* xj = x + (i0 + cl) * num_rhs + c0;
        for (std::size_t c = 0; c < width; ++c) xi[c] -= lij * xj[c];
      }
      const double lii = row[r];
      for (std::size_t c = 0; c < width; ++c) xi[c] /= lii;
    }
  }

  // Back substitution: L^T X = Y. Tile rows descend; the transpose
  // contributions of tiles (tj, ti), tj > ti, apply in ascending tj, then
  // the diagonal tile finalizes its rows bottom-up.
  for (std::size_t ti = tile_rows; ti-- > 0;) {
    const std::size_t i0 = layout.row_begin(ti);
    const std::size_t rows = layout.rows_in(ti);
    for (std::size_t tj = ti + 1; tj < tile_rows; ++tj) {
      const TileGuard guard = l_->checkout(tj, ti, TileAccess::kRead);
      const double* t = guard.data();
      const std::size_t j0 = layout.row_begin(tj);
      const std::size_t tjrows = layout.rows_in(tj);
      for (std::size_t r = 0; r < rows; ++r) {
        double* xi = x + (i0 + r) * num_rhs + c0;
        for (std::size_t jl = 0; jl < tjrows; ++jl) {
          const double lji = t[jl * tile + r];
          const double* xj = x + (j0 + jl) * num_rhs + c0;
          for (std::size_t c = 0; c < width; ++c) xi[c] -= lji * xj[c];
        }
      }
    }
    const TileGuard guard = l_->checkout(ti, ti, TileAccess::kRead);
    const double* t = guard.data();
    for (std::size_t r = rows; r-- > 0;) {
      double* xi = x + (i0 + r) * num_rhs + c0;
      for (std::size_t jl = r + 1; jl < rows; ++jl) {
        const double lji = t[jl * tile + r];
        const double* xj = x + (i0 + jl) * num_rhs + c0;
        for (std::size_t c = 0; c < width; ++c) xi[c] -= lji * xj[c];
      }
      const double lii = t[r * tile + r];
      for (std::size_t c = 0; c < width; ++c) xi[c] /= lii;
    }
  }
}

std::vector<double> Cholesky::solve_many(std::span<const double> b, std::size_t num_rhs,
                                         par::ThreadPool* pool) const {
  EBEM_EXPECT(num_rhs >= 1, "need at least one right-hand side");
  EBEM_EXPECT(b.size() == n_ * num_rhs, "right-hand-side block size mismatch");
  std::vector<double> x(b.begin(), b.end());
  if (n_ == 0) return x;

  // Fixed chunk width: the chunk partition — and with it every column's
  // summation order — is independent of the worker count, keeping the
  // result bitwise stable across thread counts and schedules.
  constexpr std::size_t kChunk = 8;
  const std::size_t chunks = (num_rhs + kChunk - 1) / kChunk;
  const auto run_chunk = [&](std::size_t chunk) {
    const std::size_t lo = chunk * kChunk;
    solve_chunk(x.data(), num_rhs, lo, std::min(lo + kChunk, num_rhs));
  };
  if (pool == nullptr || pool->num_threads() <= 1 || chunks <= 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  } else {
    par::parallel_for(*pool, chunks, par::Schedule::static_blocked(), run_chunk);
  }
  return x;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  EBEM_EXPECT(b.size() == n_, "right-hand-side size mismatch");
  std::vector<double> x(b.begin(), b.end());
  if (n_ == 0) return x;
  solve_chunk(x.data(), 1, 0, 1);
  return x;
}

std::vector<double> Cholesky::packed_factor() const {
  if (l_ == nullptr) return {};
  return packed_lower(*l_);
}

}  // namespace ebem::la

// LL^T Cholesky factorization of a packed symmetric positive-definite matrix.
//
// The direct O(N^3/3) reference solver of the paper's §4.3 cost analysis.
#pragma once

#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::la {

/// Cholesky factor of an SPD matrix; factorization happens at construction.
/// Throws ebem::InvalidArgument if the matrix is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const SymMatrix& a);

  /// Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::vector<double> l_;  // packed lower triangle of L

  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    return i * (i + 1) / 2 + j;
  }
};

}  // namespace ebem::la

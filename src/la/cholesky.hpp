// LL^T Cholesky factorization of a packed symmetric positive-definite matrix.
//
// The direct O(N^3/3) reference solver of the paper's §4.3 cost analysis.
// Factorization is blocked right-looking: panels of `block` columns are
// factored in place, and the panel solve plus trailing-submatrix update —
// which carry almost all of the N^3 work — run in parallel over rows when a
// worker pool is supplied. Every entry of L is produced by exactly one
// worker with a fixed summation order, so the factor is bit-identical
// regardless of thread count or schedule timing.
#pragma once

#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::la {

struct CholeskyOptions {
  /// Panel width of the blocked algorithm. Values around 32-128 keep the
  /// panel resident in cache during the trailing update.
  std::size_t block = 64;
  /// Non-owning worker pool for the panel solve and trailing update;
  /// null (or a single-thread pool) selects the serial blocked path.
  par::ThreadPool* pool = nullptr;
};

/// Cholesky factor of an SPD matrix; factorization happens at construction.
/// Throws ebem::InvalidArgument if the matrix is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const SymMatrix& a);
  Cholesky(const SymMatrix& a, const CholeskyOptions& options);

  /// Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve A X = B for `num_rhs` right-hand sides at once, reusing this
  /// factorization. `b` is the n x num_rhs block in row-major layout
  /// (b[i * num_rhs + c] is row i of column c); the result uses the same
  /// layout. The substitutions are blocked over RHS columns: each row of L
  /// is loaded once per column chunk and applied to the whole chunk, which
  /// is where the multi-RHS path beats num_rhs independent solve() calls.
  /// Chunks run in parallel over `pool` when provided; each column's
  /// arithmetic is identical to solve() in the same order, so the result is
  /// bit-equal to column-by-column solve() for every thread count.
  [[nodiscard]] std::vector<double> solve_many(std::span<const double> b, std::size_t num_rhs,
                                               par::ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Packed lower triangle of L (row-major), exposed for tests.
  [[nodiscard]] std::span<const double> packed_factor() const { return l_; }

 private:
  std::size_t n_;
  std::vector<double> l_;  // packed lower triangle of L

  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    return i * (i + 1) / 2 + j;
  }

  /// Unblocked factorization of the diagonal block [k0, k1) x [k0, k1)
  /// of the current Schur complement.
  void factor_diagonal_block(std::size_t k0, std::size_t k1);
  /// L[i, k0:k1] <- L[i, k0:k1] L11^-T for all rows i >= k1.
  void panel_solve(std::size_t k0, std::size_t k1, par::ThreadPool* pool);
  /// Trailing Schur complement: A22 -= L21 L21^T.
  void trailing_update(std::size_t k0, std::size_t k1, par::ThreadPool* pool);
};

}  // namespace ebem::la

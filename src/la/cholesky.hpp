// LL^T Cholesky factorization of a tiled symmetric positive-definite matrix.
//
// The direct O(N^3/3) reference solver of the paper's §4.3 cost analysis.
// Factorization is blocked right-looking over the factor's tile store with
// panel = tile column: the diagonal tile is factored in place, the panel
// tiles below it are triangular-solved, and the trailing Schur update
// subtracts one tile-by-tile outer product — the panel solve and trailing
// update, which carry almost all of the N^3 work, run in parallel over
// tiles when a worker pool is supplied. Every entry of L is produced by
// exactly one worker with a fixed summation order, so the factor is
// bit-identical regardless of thread count or schedule timing.
//
// The working store is pluggable (tile_store.hpp): by default the factor
// inherits the input matrix's storage policy, so factoring a spill-backed
// matrix pages panels through the same residency budget and an N x N
// factorization runs with only a configured fraction of the triangle
// resident. At most three tiles are pinned per worker at any moment.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/la/sym_matrix.hpp"
#include "src/la/tile_store.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::la {

struct CholeskyOptions {
  /// Panel width of the blocked algorithm — the tile size of the factor's
  /// working store. Values around 32-128 keep the three pinned tiles of the
  /// trailing update resident in cache.
  std::size_t block = 64;
  /// Non-owning worker pool for the panel solve and trailing update;
  /// null (or a single-thread pool) selects the serial blocked path.
  par::ThreadPool* pool = nullptr;
  /// Storage policy of the factor's working store (residency budget and
  /// spill directory; the tile size always comes from `block`). Defaults to
  /// inheriting the input matrix's policy, so a spill-backed system is
  /// factored out of core without further configuration.
  std::optional<StorageConfig> storage;
};

/// Cholesky factor of an SPD matrix; factorization happens at construction.
/// Throws ebem::InvalidArgument if the matrix is not positive definite and
/// ebem::IoError if a spill-backed working store cannot reach its scratch
/// file — both are ebem::Error.
class Cholesky {
 public:
  explicit Cholesky(const SymMatrix& a);
  Cholesky(const SymMatrix& a, const CholeskyOptions& options);

  /// Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve A X = B for `num_rhs` right-hand sides at once, reusing this
  /// factorization. `b` is the n x num_rhs block in row-major layout
  /// (b[i * num_rhs + c] is row i of column c); the result uses the same
  /// layout. The substitutions are blocked over RHS columns: each tile of L
  /// is loaded once per column chunk and applied to the whole chunk, which
  /// is where the multi-RHS path beats num_rhs independent solve() calls.
  /// Chunks run in parallel over `pool` when provided; each column's
  /// arithmetic is identical to solve() in the same order, so the result is
  /// bit-equal to column-by-column solve() for every thread count.
  [[nodiscard]] std::vector<double> solve_many(std::span<const double> b, std::size_t num_rhs,
                                               par::ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Materialized packed lower triangle of L (row-major), exposed for tests.
  [[nodiscard]] std::vector<double> packed_factor() const;

  /// Pager counters of the factor's working store (zeros when in-memory).
  [[nodiscard]] TileStoreStats tile_stats() const {
    return l_ ? l_->stats() : TileStoreStats{};
  }

 private:
  std::size_t n_ = 0;
  std::unique_ptr<TileStore> l_;  ///< tiles of L (strict lower + diagonal)

  /// Unblocked factorization of diagonal tile (kt, kt).
  void factor_diagonal_tile(std::size_t kt);
  /// Tiles (it, kt), it > kt: L_ik <- L_ik L_kk^-T.
  void panel_solve(std::size_t kt, par::ThreadPool* pool);
  /// Trailing Schur complement: L_ij -= L_ik L_jk^T for kt < jt <= it.
  void trailing_update(std::size_t kt, par::ThreadPool* pool);
  /// Substitute columns [c0, c1) of the row-major n x num_rhs block through
  /// both triangles, in the exact per-column order of solve().
  void solve_chunk(double* x, std::size_t num_rhs, std::size_t c0, std::size_t c1) const;
};

}  // namespace ebem::la

#include "src/la/permutation.hpp"

#include <numeric>

#include "src/common/error.hpp"

namespace ebem::la {

Permutation::Permutation(std::vector<std::size_t> internal_of_external)
    : internal_of_external_(std::move(internal_of_external)) {
  const std::size_t n = internal_of_external_.size();
  external_of_internal_.assign(n, n);  // n marks "unassigned" during validation
  for (std::size_t external = 0; external < n; ++external) {
    const std::size_t internal = internal_of_external_[external];
    EBEM_EXPECT(internal < n, "Permutation: index out of range");
    EBEM_EXPECT(external_of_internal_[internal] == n,
                "Permutation: duplicate internal index — the map is not a bijection");
    external_of_internal_[internal] = external;
  }
}

Permutation Permutation::identity(std::size_t n) {
  std::vector<std::size_t> map(n);
  std::iota(map.begin(), map.end(), std::size_t{0});
  return Permutation(std::move(map));
}

bool Permutation::is_identity() const {
  for (std::size_t i = 0; i < internal_of_external_.size(); ++i) {
    if (internal_of_external_[i] != i) return false;
  }
  return true;
}

std::vector<double> Permutation::gather(std::span<const double> external) const {
  EBEM_EXPECT(external.size() == size(), "Permutation::gather: vector length mismatch");
  std::vector<double> internal(size());
  for (std::size_t i = 0; i < size(); ++i) internal[i] = external[external_of_internal_[i]];
  return internal;
}

std::vector<double> Permutation::scatter(std::span<const double> internal) const {
  EBEM_EXPECT(internal.size() == size(), "Permutation::scatter: vector length mismatch");
  std::vector<double> external(size());
  for (std::size_t i = 0; i < size(); ++i) external[external_of_internal_[i]] = internal[i];
  return external;
}

std::vector<double> Permutation::gather_block(std::span<const double> external,
                                              std::size_t num_rhs) const {
  EBEM_EXPECT(external.size() == size() * num_rhs,
              "Permutation::gather_block: block length mismatch");
  std::vector<double> internal(external.size());
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t src = external_of_internal_[i] * num_rhs;
    for (std::size_t k = 0; k < num_rhs; ++k) internal[i * num_rhs + k] = external[src + k];
  }
  return internal;
}

std::vector<double> Permutation::scatter_block(std::span<const double> internal,
                                               std::size_t num_rhs) const {
  EBEM_EXPECT(internal.size() == size() * num_rhs,
              "Permutation::scatter_block: block length mismatch");
  std::vector<double> external(internal.size());
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t dst = external_of_internal_[i] * num_rhs;
    for (std::size_t k = 0; k < num_rhs; ++k) external[dst + k] = internal[i * num_rhs + k];
  }
  return external;
}

}  // namespace ebem::la

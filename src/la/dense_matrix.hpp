// General dense row-major matrix, used by the estimation module's normal
// equations and by tests that need non-symmetric storage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ebem::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }

  /// y = A x (sizes must match).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// C = A^T A, the Gauss-Newton normal matrix.
  [[nodiscard]] DenseMatrix transpose_times_self() const;

  /// y = A^T x.
  void transpose_multiply(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] std::span<const double> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve the small dense SPD system A x = b by Gaussian elimination with
/// partial pivoting; intended for estimation-sized systems (n <= ~10).
[[nodiscard]] std::vector<double> solve_dense(DenseMatrix a, std::vector<double> b);

}  // namespace ebem::la

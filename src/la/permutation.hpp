// A validated DoF permutation: the boundary between *external* indices (the
// mesh/model numbering every caller speaks) and *internal* indices (the
// storage order of a tiled matrix).
//
// The H-matrix backend compresses well only when tile rows are spatially
// coherent clusters, and tile rows are contiguous *internal* index ranges —
// so geometry-independent compression needs the freedom to renumber DoFs for
// storage without leaking that renumbering to any caller. A Permutation is
// that seam: assembly scatters entries through to_internal(), the solve
// paths gather the right-hand side into internal order and scatter the
// solution back, and everything outside the matrix boundary (models, RHS
// vectors, sigma results, post-processing) stays in external order. Dense
// consumers (SymMatrix, TileStore, Cholesky) never see the permutation at
// all — a permuted matrix is just a symmetric matrix over relabeled rows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ebem::la {

class Permutation {
 public:
  /// Empty permutation (size 0) — distinct from identity(n); mostly useful
  /// as a default-constructed placeholder.
  Permutation() = default;

  /// Build from the external -> internal index map. Throws
  /// ebem::InvalidArgument unless the map is a bijection on [0, n).
  explicit Permutation(std::vector<std::size_t> internal_of_external);

  [[nodiscard]] static Permutation identity(std::size_t n);

  [[nodiscard]] std::size_t size() const { return internal_of_external_.size(); }

  /// True when every index maps to itself (identity; trivially true at 0).
  [[nodiscard]] bool is_identity() const;

  [[nodiscard]] std::size_t to_internal(std::size_t external) const {
    return internal_of_external_[external];
  }
  [[nodiscard]] std::size_t to_external(std::size_t internal) const {
    return external_of_internal_[internal];
  }

  [[nodiscard]] const std::vector<std::size_t>& internal_of_external() const {
    return internal_of_external_;
  }
  [[nodiscard]] const std::vector<std::size_t>& external_of_internal() const {
    return external_of_internal_;
  }

  /// Gather an external-order vector into internal order:
  /// out[i] = v[to_external(i)]. Throws unless v.size() == size().
  [[nodiscard]] std::vector<double> gather(std::span<const double> external) const;

  /// Scatter an internal-order vector back to external order:
  /// out[to_external(i)] = v[i] — the exact inverse of gather().
  [[nodiscard]] std::vector<double> scatter(std::span<const double> internal) const;

  /// Row-wise gather of a row-major n x num_rhs block (la::Cholesky's
  /// solve_many layout): internal row i is external row to_external(i).
  [[nodiscard]] std::vector<double> gather_block(std::span<const double> external,
                                                 std::size_t num_rhs) const;

  /// Row-wise scatter of a row-major n x num_rhs block — inverse of
  /// gather_block().
  [[nodiscard]] std::vector<double> scatter_block(std::span<const double> internal,
                                                  std::size_t num_rhs) const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<std::size_t> internal_of_external_;
  std::vector<std::size_t> external_of_internal_;
};

}  // namespace ebem::la

// EarthBEM umbrella header: the full public API.
//
// Quick tour:
//   engine::ExecutionConfig — every execution knob (threads, schedule,
//       backend, warm congruence cache, solver kind/tolerances, matrix
//       storage policy, pipeline width) in one validated struct, configured
//       once per session
//   engine::Engine          — the long-lived execution context: one worker
//       pool, one warm cache, one cumulative PhaseReport across analyses
//   engine::Study           — a session binding an Engine to fixed physics;
//       study.analyze(model) per candidate, study.factor(model) for a
//       FactoredSystem whose solve/solve_many reuse one factorization
//   geom::make_rect_grid / make_triangular_grid  — build a grid design
//   soil::LayeredSoil                            — uniform / layered soil
//   cad::GroundingSystem                         — mesh + solve + report
//       (pass an Engine or Study to analyze() to share warm resources)
//   cad::search_design                           — the CAD ladder, all
//       candidates submitted as one pipelined batch on one warm Study
//   post::PotentialEvaluator / assess_safety     — surface potentials, safety
//   estimation::fit_two_layer                    — soil parameters from soundings
//
// Asynchronous sessions (engine/): independent analyses — the paper's CAD
// loop evaluating many nearby candidates — should be *submitted*, not run
// one blocking call at a time. engine::Engine::submit(model) (and
// Study::submit) return an engine::RunFuture immediately; the engine's
// Scheduler decomposes every run into assemble -> factor -> solve stages
// and dispatches ready stages from one queue onto a small set of stage
// executors (ExecutionConfig::pipeline_width, default 2), so candidate
// k+1's assembly overlaps candidate k's factorization/solve tail on the
// shared pool. Futures offer wait/ready/get plus the run's own PhaseReport
// and its exact congruence-cache delta (tallied inside the run — correct
// even while runs share the warm cache concurrently); per-run
// SubmitOptions (storage budget, residual measurement) are validated at
// submit time. A physics change between submits defers the warm-cache
// clear until in-flight assemblies drain. The blocking analyze()/factor()
// calls are thin submit+get shims over the same pipeline, so both paths
// produce identical numbers. examples/pipeline.cpp is the walkthrough;
// bench/bench_pipeline.cpp measures sequential vs pipelined ladder wall
// time and gates parity in CI.
//
// Matrix storage (la/): the Galerkin matrix — the method's one O(N^2)
// object — lives behind the pluggable la::TileStore interface as fixed-size
// lower-triangle tiles with checkout/commit semantics. Two backends ship:
// la::InMemoryTileStore (default; one contiguous arena, zero-copy tile
// views) and la::SpillTileStore (file-backed LRU pager; an
// ExecutionConfig::storage residency budget in bytes caps how much of the
// matrix — and of its Cholesky factor — is resident, so systems beyond
// single-node memory assemble, multiply and factor out of core, with
// eviction/IO counters on the session PhaseReport). Every consumer walks
// tiles: the fused assembly scatter locks per tile, the blocked Cholesky
// uses panel = tile column, SymMatrix::multiply and PCG stream the
// triangle tile by tile. A future H-matrix / low-rank backend slots in
// behind the same checkout interface (see tile_store.hpp and ROADMAP.md).
// examples/out_of_core.cpp is the walkthrough.
//
// The bem:: free functions (analyze, assemble, solve) remain as serial
// shims; their option structs carry physics only. Anything that runs more
// than one analysis should hold an engine::Engine.
// See examples/quickstart.cpp for a complete walkthrough.
#pragma once

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/element.hpp"
#include "src/bem/integrator.hpp"
#include "src/bem/segment_integrals.hpp"
#include "src/bem/solver.hpp"
#include "src/cad/cases.hpp"
#include "src/cad/design_search.hpp"
#include "src/cad/grounding_system.hpp"
#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/phase_report.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/execution_config.hpp"
#include "src/engine/factored_system.hpp"
#include "src/engine/scheduler.hpp"
#include "src/engine/study.hpp"
#include "src/estimation/wenner.hpp"
#include "src/fdm/fd_solver.hpp"
#include "src/geom/conductor.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/geom/vec3.hpp"
#include "src/io/csv.hpp"
#include "src/io/grid_file.hpp"
#include "src/io/report_writer.hpp"
#include "src/io/table.hpp"
#include "src/la/blas1.hpp"
#include "src/la/cg.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/dense_matrix.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/la/tile_store.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/openmp_backend.hpp"
#include "src/parallel/schedule.hpp"
#include "src/parallel/schedule_sim.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/post/contour.hpp"
#include "src/post/leakage.hpp"
#include "src/post/safety.hpp"
#include "src/post/surface_potential.hpp"
#include "src/quad/gauss.hpp"
#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"
#include "src/soil/kernel_factory.hpp"
#include "src/soil/point_kernel.hpp"
#include "src/soil/soil_model.hpp"

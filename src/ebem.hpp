// EarthBEM umbrella header: the full public API.
//
// Quick tour:
//   engine::ExecutionConfig — every execution knob (threads, schedule,
//       backend, warm congruence cache, solver kind/tolerances, matrix
//       storage policy, pipeline width) in one validated struct, configured
//       once per session
//   engine::Engine          — the long-lived execution context: one worker
//       pool, one warm cache, one cumulative PhaseReport across analyses
//   engine::Study           — a session binding an Engine to fixed physics;
//       study.analyze(model) per candidate, study.factor(model) for a
//       FactoredSystem whose solve/solve_many reuse one factorization
//   geom::make_rect_grid / make_triangular_grid  — build a grid design
//   soil::LayeredSoil                            — uniform / layered soil
//   cad::GroundingSystem                         — mesh + solve + report
//       (pass an Engine or Study to analyze() to share warm resources)
//   cad::search_design                           — the CAD ladder, all
//       candidates submitted as one pipelined batch on one warm Study
//   post::PotentialEvaluator / assess_safety     — surface potentials, safety
//   estimation::fit_two_layer                    — soil parameters from soundings
//       (with per-parameter log-space uncertainties when the sounding has
//       redundancy — TwoLayerFit::sigma_log_* / residual_sigma)
//   campaign::Runner                             — scenario campaigns: stochastic
//       soil + damage sweeps reduced to percentile safety reports
//   service::Dispatcher / Server                 — the engine as a multi-tenant
//       service: line-delimited JSON over a socket, admission control, quotas,
//       per-tenant warm caches and cost accounts
//
// Scenario campaigns (campaign/): one safety verdict against one fitted
// soil is a point estimate; a campaign answers "how safe is this design
// over what the site could plausibly be?". campaign::SoilEnsemble samples
// two-layer soils around a fitted point with a seeded, counter-based
// stratified sampler (no global RNG: scenario i is a pure function of
// (seed, i), so ensembles re-generate exactly) — feed it
// SoilDistribution::from_fit(fit) to propagate the Wenner inversion's own
// uncertainty, or SoilDistribution::relative for hand-set spreads.
// campaign::DamageEnsemble ablates the conductor network instead (removed
// or segmented conductors, deterministically re-meshed per scenario).
// campaign::Runner drives either source through engine::Study::submit with
// a bounded in-flight window (backpressure: a 10k-scenario campaign holds
// at most `window` assembled matrices), harvests futures in completion
// order, and commits observations into streaming summaries strictly in
// scenario-index order — which makes the reported P5/P50/P95/P99 of
// R_eq, GPR and touch/step margins bit-identical across pipeline widths
// for a fixed seed. Summaries are campaign::MetricSummary: exact
// order-statistic quantiles with distribution-free confidence half-widths
// (the runner's early-stop rule watches one of them), or O(1)-memory
// P-squared markers for very large ensembles. Soil sweeps are the warm
// cache's worst case (one physics drop per scenario — the cost shows up as
// "Warm cache physics drops" / "Assembly gate wait seconds" on the
// campaign's PhaseReport rollup); damage sweeps keep one physics and
// replay the undamaged majority of the grid, so batch campaigns by
// physics. examples/campaign.cpp is the walkthrough;
// bench/bench_campaign.cpp measures both sweeps and gates the
// width-determinism contract in CI.
//
// Asynchronous sessions (engine/): independent analyses — the paper's CAD
// loop evaluating many nearby candidates — should be *submitted*, not run
// one blocking call at a time. engine::Engine::submit(model) (and
// Study::submit) return an engine::RunFuture immediately; the engine's
// Scheduler decomposes every run into assemble -> factor -> solve stages
// and dispatches ready stages from one queue onto a small set of stage
// executors (ExecutionConfig::pipeline_width, default 2), so candidate
// k+1's assembly overlaps candidate k's factorization/solve tail on the
// shared pool. Futures offer wait/ready/get plus the run's own PhaseReport
// and its exact congruence-cache delta (tallied inside the run — correct
// even while runs share the warm cache concurrently); per-run
// SubmitOptions (storage budget, residual measurement) are validated at
// submit time. A physics change between submits defers the warm-cache
// clear until in-flight assemblies drain. The blocking analyze()/factor()
// calls are thin submit+get shims over the same pipeline, so both paths
// produce identical numbers. examples/pipeline.cpp is the walkthrough;
// bench/bench_pipeline.cpp measures sequential vs pipelined ladder wall
// time and gates parity in CI.
//
// Matrix storage (la/): the Galerkin matrix — the method's one O(N^2)
// object — lives behind the pluggable la::TileStore interface as fixed-size
// lower-triangle tiles with checkout/commit semantics. Three backends ship:
// la::InMemoryTileStore (default; one contiguous arena, zero-copy tile
// views), la::SpillTileStore (file-backed LRU pager; an
// ExecutionConfig::storage residency budget in bytes caps how much of the
// matrix — and of its Cholesky factor — is resident, so systems beyond
// single-node memory assemble, multiply and factor out of core, with
// eviction/IO counters on the session PhaseReport), and
// la::CompressedTileStore (H-matrix; set ExecutionConfig::storage
// .compression). Every consumer walks tiles: the fused assembly scatter
// locks per tile, the blocked Cholesky uses panel = tile column,
// SymMatrix::multiply and PCG stream the triangle tile by tile.
// examples/out_of_core.cpp is the walkthrough.
//
// Compressed far-field storage (la/ + bem/): with
// ExecutionConfig::storage.compression set, assembly partitions the tile
// triangle by the bem::pair_signature separation gate — the same quantized
// predicate the congruence cache trusts — and builds each well-separated
// block as a low-rank U V^T pair by adaptive cross approximation
// (la::adaptive_cross), sampling individual matrix rows/columns from the
// bem::Integrator instead of ever materializing the dense block. The far
// field's exact pair integrations are *skipped*, so both memory and the
// O(M^2) pair bill shrink. Accuracy is a contract, not a hope:
// CompressionConfig::epsilon bounds each block's Frobenius error, and end
// to end the safety quantities (equivalent resistance, touch/step
// voltages) match the dense backend to ~epsilon. Two honest caveats:
// compressibility is a geometry property — under the in-place DoF order,
// tile rows of a *square* grid are full-width slabs with high numerical
// rank, and the profit gate (CompressionConfig::min_rank_budget) keeps
// such blocks dense rather than paying ACA sampling for nothing, while
// elongated trench/pipeline-style grids compress to a third of the dense
// bytes — and ACA samples bypass the congruence cache, so on highly
// congruent grids compression trades wall time for memory. Consumers are
// oblivious: checkout decompresses tiles on the fly, and Cholesky
// densifies via la::copy_tiles. Block/rank/byte/pair counters land on the
// session PhaseReport; bench/bench_hmatrix.cpp sweeps element count x
// epsilon and gates the >= 2000-element trench case in CI (<= 40% stored
// bytes, <= 50% exact pairs, parity within epsilon).
//
// Geometric DoF ordering (bem/clustering + la/permutation): the square-grid
// caveat above is an *ordering* artifact, not a physics one — so
// ExecutionConfig::storage.compression.ordering = la::DofOrdering::kGeometric
// renumbers the DoFs by recursive coordinate bisection (bem::
// geometric_ordering) before the matrix is created. RCB splits on DoF
// cardinality at tile-aligned counts, so every cluster-tree leaf IS one
// tile row and leaf boxes stay near-cubical on any mesh; the resulting
// la::Permutation is applied once, at the matrix boundary: assembly
// scatters entries through to_internal(), the solve paths gather the RHS
// and scatter the solution back, and every caller-visible vector (rhs,
// sigma, post-processing) stays in model order. SymMatrix, the tile
// stores and Cholesky never see the permutation — an ordered matrix is
// just a symmetric matrix over relabeled rows — and the ordering is
// honored even at epsilon == 0 (dense but reordered), which is what the
// Ordering* parity tests exploit. With it, the same square grid that
// refuses to compress in place stores <= 60% of the dense bytes at
// epsilon 1e-8 (bench/bench_hmatrix.cpp's square_ordered wall case, CI
// gated); ordering counters (orderings, cluster leaves, tree depth) land
// on the session PhaseReport.
//
// Batched SIMD kernels (bem/segment_integrals + common/simd.hpp): every
// mitigation above helps *repeated* geometry; the batched kernel path makes
// the cache misses themselves fast. The integrator evaluates the paper's
// closed-form segment potentials in structure-of-arrays batches through a
// branch-free, single-division log1p formulation that vectorizes under
// `#pragma omp simd` (the library compiles with -fopenmp-simd; hot
// functions are multiversioned via target_clones for AVX2/AVX-512), with
// branch-free simd_log1p/simd_exp replacing serializing libm calls. The
// fused image sweep picks its loop order by series length: layered-soil
// sweeps (O(100) image terms) vectorize over the terms with register
// accumulators per Gauss point, short uniform-soil sweeps over the points
// — on the 312-element two-layer bench grid, cold assembly drops ~6x vs
// the scalar asinh reference (bench/bench_kernels.cpp; the reference stays
// selectable as IntegratorOptions::segment_eval for cross-checks, parity
// <= 1e-12 CI-gated via bench_kernels --check). ACA far-field sampling now
// also consults the congruence cache (FarFieldStats::pairs_replayed): on
// ordered square grids ~99.9% of sampled pairs replay, cutting the
// compressed backend's net pair bill below half of dense. The multi-layer
// spectral kernel batches too — its per-lambda boundary system is
// assembled symbolically once per evaluation and solved for whole
// quadrature panels on per-thread workspaces (soil/hankel_kernel). An
// opt-in mixed-precision experiment (IntegratorOptions::
// mixed_tail_threshold) runs the small-weight image tail in single
// precision, documented bound ~1e-9 at threshold 1e-5 — measurably outside
// the 1e-12 parity contract, hence off by default.
//
// Serving the engine (service/): everything above assumes the caller links
// the library; the service layer puts the same engine behind a network front
// door instead. The transport is deliberately primitive — line-delimited
// JSON over a blocking socket (service::Server, thread-per-connection,
// loopback only) — because all the tenancy logic lives in the
// transport-agnostic service::Dispatcher underneath: a strict dependency-free
// codec rejects malformed frames with typed error payloads *before* any
// engine is touched; service::TenantRegistry gives every tenant its own
// Study-backed session (own Engine, own warm congruence cache — isolation by
// construction, since the cache's physics-fingerprint guard only ever sees
// one tenant's soils) over one shared worker pool; an AdmissionController
// enforces per-tenant quotas (outstanding runs, elements per model, a
// sliding rate window) plus one global outstanding bound, rejecting
// immediately with a typed code (quota_exceeded / rate_limited / overloaded
// / model_too_large) rather than queueing unboundedly; and a harvester
// thread reaps completed RunFutures, billing each run's own PhaseReport —
// wall seconds by phase, elements, cache hits — into that tenant's
// CostAccount, which the wire's stats request exposes as the bill.
// Graceful shutdown drains in-flight runs and flushes accounts before the
// socket closes; a shutting_down code refuses latecomers. The wire
// factor_solve path reproduces analyze()'s numbers to <= 1e-12 (CI-gated by
// bench/bench_service.cpp --check). service::LoopbackClient runs the whole
// protocol in-process for tests; examples/serve.cpp walks the socket
// surface end to end.
//
// The bem:: free functions (analyze, assemble, solve) remain as serial
// shims; their option structs carry physics only. Anything that runs more
// than one analysis should hold an engine::Engine.
// See examples/quickstart.cpp for a complete walkthrough.
#pragma once

#include "src/bem/analysis.hpp"
#include "src/bem/assembly.hpp"
#include "src/bem/clustering.hpp"
#include "src/bem/element.hpp"
#include "src/bem/integrator.hpp"
#include "src/bem/segment_integrals.hpp"
#include "src/bem/solver.hpp"
#include "src/cad/cases.hpp"
#include "src/cad/design_search.hpp"
#include "src/cad/grounding_system.hpp"
#include "src/campaign/damage_ensemble.hpp"
#include "src/campaign/runner.hpp"
#include "src/campaign/sampler.hpp"
#include "src/campaign/soil_ensemble.hpp"
#include "src/campaign/summary.hpp"
#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/phase_report.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/execution_config.hpp"
#include "src/engine/factored_system.hpp"
#include "src/engine/scheduler.hpp"
#include "src/engine/study.hpp"
#include "src/estimation/wenner.hpp"
#include "src/fdm/fd_solver.hpp"
#include "src/geom/conductor.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/geom/vec3.hpp"
#include "src/io/csv.hpp"
#include "src/io/grid_file.hpp"
#include "src/io/report_writer.hpp"
#include "src/io/table.hpp"
#include "src/la/blas1.hpp"
#include "src/la/cg.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/dense_matrix.hpp"
#include "src/la/permutation.hpp"
#include "src/la/sym_matrix.hpp"
#include "src/la/tile_store.hpp"
#include "src/parallel/parallel_for.hpp"
#include "src/parallel/openmp_backend.hpp"
#include "src/parallel/schedule.hpp"
#include "src/parallel/schedule_sim.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/post/contour.hpp"
#include "src/post/leakage.hpp"
#include "src/post/safety.hpp"
#include "src/post/surface_potential.hpp"
#include "src/quad/gauss.hpp"
#include "src/service/admission.hpp"
#include "src/service/codec.hpp"
#include "src/service/dispatcher.hpp"
#include "src/service/loopback.hpp"
#include "src/service/server.hpp"
#include "src/service/tenant.hpp"
#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"
#include "src/soil/kernel_factory.hpp"
#include "src/soil/point_kernel.hpp"
#include "src/soil/soil_model.hpp"

#include "src/estimation/wenner.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/la/dense_matrix.hpp"

namespace ebem::estimation {

double wenner_apparent_resistivity(const soil::LayeredSoil& soil, double spacing,
                                   double tolerance, std::size_t max_terms) {
  EBEM_EXPECT(spacing > 0.0, "Wenner spacing must be positive");
  if (soil.layer_count() == 1) return soil.resistivity(0);
  EBEM_EXPECT(soil.layer_count() == 2, "Wenner forward model supports 1 or 2 layers");

  const double rho1 = soil.resistivity(0);
  const double rho2 = soil.resistivity(1);
  const double h = soil.interface_depth(0);
  // In resistivity form the reflection coefficient flips sign relative to
  // the conductivity form used elsewhere.
  const double kappa = (rho2 - rho1) / (rho2 + rho1);

  double sum = 0.0;
  double kn = 1.0;
  for (std::size_t n = 1; n <= max_terms; ++n) {
    kn *= kappa;
    const double ratio = 2.0 * static_cast<double>(n) * h / spacing;
    const double term = kn * (1.0 / std::sqrt(1.0 + square(ratio)) -
                              1.0 / std::sqrt(4.0 + square(ratio)));
    sum += term;
    if (std::abs(term) < tolerance * std::max(std::abs(1.0 + 4.0 * sum), 1.0)) break;
  }
  return rho1 * (1.0 + 4.0 * sum);
}

namespace {

/// Model parameterization: p = (log rho1, log rho2, log H) keeps all three
/// positive and makes the misfit surface much better conditioned.
struct Params {
  double log_rho1;
  double log_rho2;
  double log_h;

  [[nodiscard]] soil::LayeredSoil soil() const {
    return soil::LayeredSoil::two_layer(1.0 / std::exp(log_rho1), 1.0 / std::exp(log_rho2),
                                        std::exp(log_h));
  }
};

double misfit(const Params& p, const std::vector<WennerReading>& readings,
              std::vector<double>* residuals = nullptr) {
  const soil::LayeredSoil soil = p.soil();
  double sum = 0.0;
  if (residuals != nullptr) residuals->resize(readings.size());
  for (std::size_t k = 0; k < readings.size(); ++k) {
    const double model = wenner_apparent_resistivity(soil, readings[k].spacing);
    const double r = std::log(model) - std::log(readings[k].apparent_resistivity);
    if (residuals != nullptr) (*residuals)[k] = r;
    sum += r * r;
  }
  return sum;
}

/// Finite-difference Jacobian of the log-residual vector in the 3 log
/// parameters, at `p` with residuals `residuals` already evaluated there.
la::DenseMatrix residual_jacobian(const Params& p, const std::vector<WennerReading>& readings,
                                  const std::vector<double>& residuals) {
  constexpr double kStep = 1e-6;
  la::DenseMatrix jacobian(readings.size(), 3);
  for (std::size_t c = 0; c < 3; ++c) {
    Params q = p;
    (c == 0 ? q.log_rho1 : c == 1 ? q.log_rho2 : q.log_h) += kStep;
    std::vector<double> perturbed;
    misfit(q, readings, &perturbed);
    for (std::size_t k = 0; k < readings.size(); ++k) {
      jacobian(k, c) = (perturbed[k] - residuals[k]) / kStep;
    }
  }
  return jacobian;
}

/// Residual-based linearized uncertainty: covariance = s^2 (J^T J)^{-1} via
/// the closed-form 3x3 inverse. Leaves the fit's uncertainty fields zeroed
/// (uncertainty_valid == false) when there is no redundancy or J^T J is
/// numerically singular.
void attach_uncertainty(TwoLayerFit& fit, const Params& p,
                        const std::vector<WennerReading>& readings,
                        const std::vector<double>& residuals, double misfit_value) {
  const std::size_t m = readings.size();
  if (m <= 3) return;
  const la::DenseMatrix jacobian = residual_jacobian(p, readings, residuals);
  const la::DenseMatrix normal = jacobian.transpose_times_self();

  // Adjugate inverse of the symmetric 3x3 normal matrix; the determinant
  // threshold is relative to the diagonal scale so a resolved-but-soft
  // parameter still passes while a flat curve (H unresolved) does not.
  const double a = normal(0, 0), b = normal(0, 1), c = normal(0, 2);
  const double d = normal(1, 1), e = normal(1, 2), f = normal(2, 2);
  const double det =
      a * (d * f - e * e) - b * (b * f - e * c) + c * (b * e - d * c);
  const double scale = std::max({a, d, f, 1e-300});
  if (!(std::abs(det) > 1e-12 * scale * scale * scale)) return;

  const double inv00 = (d * f - e * e) / det;
  const double inv11 = (a * f - c * c) / det;
  const double inv22 = (a * d - b * b) / det;
  if (inv00 < 0.0 || inv11 < 0.0 || inv22 < 0.0) return;

  const double s2 = misfit_value / static_cast<double>(m - 3);
  fit.residual_sigma = std::sqrt(s2);
  fit.sigma_log_rho1 = std::sqrt(s2 * inv00);
  fit.sigma_log_rho2 = std::sqrt(s2 * inv11);
  fit.sigma_log_h = std::sqrt(s2 * inv22);
  fit.uncertainty_valid = true;
}

}  // namespace

TwoLayerFit fit_two_layer(const std::vector<WennerReading>& readings,
                          const FitOptions& options) {
  EBEM_EXPECT(readings.size() >= 3, "need at least three Wenner readings");
  for (const WennerReading& r : readings) {
    EBEM_EXPECT(r.spacing > 0.0 && r.apparent_resistivity > 0.0,
                "readings must have positive spacing and resistivity");
  }

  // Initial guess: shallow readings see rho1, deep readings see rho2, and
  // the layer depth starts at the geometric mean of the spacings.
  auto sorted = readings;
  std::sort(sorted.begin(), sorted.end(),
            [](const WennerReading& a, const WennerReading& b) { return a.spacing < b.spacing; });
  Params p{std::log(sorted.front().apparent_resistivity),
           std::log(sorted.back().apparent_resistivity),
           0.5 * (std::log(sorted.front().spacing) + std::log(sorted.back().spacing))};

  double lambda = options.initial_damping;
  std::vector<double> residuals;
  double current = misfit(p, readings, &residuals);

  TwoLayerFit fit;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    fit.iterations = iter + 1;
    const la::DenseMatrix jacobian = residual_jacobian(p, readings, residuals);
    // Levenberg-Marquardt step: (J^T J + lambda I) dp = -J^T r.
    la::DenseMatrix normal = jacobian.transpose_times_self();
    std::vector<double> gradient(3);
    jacobian.transpose_multiply(residuals, gradient);
    for (std::size_t c = 0; c < 3; ++c) {
      normal(c, c) += lambda * std::max(normal(c, c), 1e-12);
      gradient[c] = -gradient[c];
    }
    const std::vector<double> step = la::solve_dense(std::move(normal), gradient);

    Params trial = p;
    trial.log_rho1 += step[0];
    trial.log_rho2 += step[1];
    trial.log_h += step[2];
    std::vector<double> trial_residuals;
    const double trial_misfit = misfit(trial, readings, &trial_residuals);
    if (trial_misfit < current) {
      p = trial;
      residuals = std::move(trial_residuals);
      current = trial_misfit;
      lambda = std::max(lambda * 0.3, 1e-12);
      const double step_norm =
          std::sqrt(step[0] * step[0] + step[1] * step[1] + step[2] * step[2]);
      if (step_norm < options.tolerance) {
        fit.converged = true;
        break;
      }
    } else {
      lambda *= 10.0;
      if (lambda > 1e12) break;  // stuck; report the best point found
    }
  }
  fit.soil = p.soil();
  fit.rms_log_misfit = std::sqrt(current / static_cast<double>(readings.size()));
  if (!fit.converged) fit.converged = fit.rms_log_misfit < 1e-6;
  attach_uncertainty(fit, p, readings, residuals, current);
  return fit;
}

}  // namespace ebem::estimation

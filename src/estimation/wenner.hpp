// Wenner four-point sounding: forward model and two-layer inversion.
//
// The paper's layered models take "an apparent scalar conductivity that must
// be experimentally obtained" per layer; in practice those values come from
// Wenner-array resistivity soundings. This module closes that loop: the
// forward model predicts the apparent resistivity curve rho_a(a) of a
// two-layer earth, and the inversion recovers (rho_1, rho_2, H) from
// measured soundings by damped Gauss-Newton on log-resistivities.
#pragma once

#include <cstddef>
#include <vector>

#include "src/soil/soil_model.hpp"

namespace ebem::estimation {

/// Apparent resistivity measured by a Wenner array of spacing `a` [m] over a
/// two-layer earth (classical image-series formula, e.g. Tagg):
///   rho_a = rho_1 [1 + 4 sum_n kappa_rho^n ( (1 + (2nH/a)^2)^{-1/2}
///                                          - (4 + (2nH/a)^2)^{-1/2} ) ]
/// with kappa_rho = (rho_2 - rho_1)/(rho_2 + rho_1).
[[nodiscard]] double wenner_apparent_resistivity(const soil::LayeredSoil& soil, double spacing,
                                                 double tolerance = 1e-12,
                                                 std::size_t max_terms = 10000);

struct WennerReading {
  double spacing = 0.0;              ///< electrode spacing a [m]
  double apparent_resistivity = 0.0; ///< measured rho_a [Ohm m]
};

struct FitOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-10;        ///< relative step-size stop criterion
  double initial_damping = 1e-3;
};

struct TwoLayerFit {
  soil::LayeredSoil soil = soil::LayeredSoil::uniform(1.0);
  double rms_log_misfit = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Fit a two-layer model to Wenner readings. Needs >= 3 readings spanning
/// spacings around the expected layer thickness.
[[nodiscard]] TwoLayerFit fit_two_layer(const std::vector<WennerReading>& readings,
                                        const FitOptions& options = {});

}  // namespace ebem::estimation

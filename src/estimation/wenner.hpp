// Wenner four-point sounding: forward model and two-layer inversion.
//
// The paper's layered models take "an apparent scalar conductivity that must
// be experimentally obtained" per layer; in practice those values come from
// Wenner-array resistivity soundings. This module closes that loop: the
// forward model predicts the apparent resistivity curve rho_a(a) of a
// two-layer earth, and the inversion recovers (rho_1, rho_2, H) from
// measured soundings by damped Gauss-Newton on log-resistivities.
#pragma once

#include <cstddef>
#include <vector>

#include "src/soil/soil_model.hpp"

namespace ebem::estimation {

/// Apparent resistivity measured by a Wenner array of spacing `a` [m] over a
/// two-layer earth (classical image-series formula, e.g. Tagg):
///   rho_a = rho_1 [1 + 4 sum_n kappa_rho^n ( (1 + (2nH/a)^2)^{-1/2}
///                                          - (4 + (2nH/a)^2)^{-1/2} ) ]
/// with kappa_rho = (rho_2 - rho_1)/(rho_2 + rho_1).
[[nodiscard]] double wenner_apparent_resistivity(const soil::LayeredSoil& soil, double spacing,
                                                 double tolerance = 1e-12,
                                                 std::size_t max_terms = 10000);

struct WennerReading {
  double spacing = 0.0;              ///< electrode spacing a [m]
  double apparent_resistivity = 0.0; ///< measured rho_a [Ohm m]
};

struct FitOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-10;        ///< relative step-size stop criterion
  double initial_damping = 1e-3;
};

struct TwoLayerFit {
  soil::LayeredSoil soil = soil::LayeredSoil::uniform(1.0);
  double rms_log_misfit = 0.0;
  std::size_t iterations = 0;
  bool converged = false;

  // Goodness of fit and per-parameter uncertainty, from the residuals at
  // the converged point. The fit works in log parameters, so the sigmas are
  // standard deviations of (log rho1, log rho2, log H) — exactly the
  // lognormal spreads a campaign::SoilEnsemble samples from. They are the
  // classical linearized estimates: residual variance
  // s^2 = ||r||^2 / (m - 3), covariance s^2 (J^T J)^{-1} with J the
  // Jacobian of the log-residuals at the solution.
  /// Unbiased residual standard deviation s in log-resistivity space; 0 when
  /// the problem has no redundancy (m <= 3).
  double residual_sigma = 0.0;
  double sigma_log_rho1 = 0.0;  ///< 1-sigma of log rho1
  double sigma_log_rho2 = 0.0;  ///< 1-sigma of log rho2
  double sigma_log_h = 0.0;     ///< 1-sigma of log H
  /// True when the sigmas are meaningful: more than 3 readings and a
  /// non-singular J^T J (a flat curve — equal layers — leaves H unresolved
  /// and fails this).
  bool uncertainty_valid = false;
};

/// Fit a two-layer model to Wenner readings. Needs >= 3 readings spanning
/// spacings around the expected layer thickness.
[[nodiscard]] TwoLayerFit fit_two_layer(const std::vector<WennerReading>& readings,
                                        const FitOptions& options = {});

}  // namespace ebem::estimation

// service::LoopbackClient — the in-process transport.
//
// Drives a Dispatcher through the exact byte path the socket server uses —
// LineBuffer framing in, one response line out — with no file descriptors
// involved. This is what unit tests and the service bench run against: the
// whole service core (codec, admission, tenants, harvest, billing) under
// test, deterministically, with the transport reduced to a function call.
// Any number of LoopbackClients may share one Dispatcher from concurrent
// threads — that *is* the many-connections test.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/service/codec.hpp"
#include "src/service/dispatcher.hpp"

namespace ebem::service {

class LoopbackClient {
 public:
  /// The dispatcher is borrowed and must outlive the client.
  explicit LoopbackClient(Dispatcher& dispatcher,
                          std::size_t max_line_bytes = LineBuffer::kDefaultMaxLineBytes)
      : dispatcher_(&dispatcher), buffer_(max_line_bytes) {}

  /// Send one request line (newline appended here, like a socket client
  /// would) and return the response line. Framing errors — an embedded
  /// newline splitting the request, an oversized line — surface exactly as
  /// the socket path reports them: a malformed_request error response.
  [[nodiscard]] std::string call(std::string_view request);

  /// Feed raw bytes (possibly partial or multiple frames) and collect a
  /// response per completed line — the socket server's read loop, verbatim.
  /// Returns the responses in order; nullopt entries never occur (every
  /// frame gets an answer, even garbage).
  [[nodiscard]] std::vector<std::string> feed(std::string_view bytes);

 private:
  Dispatcher* dispatcher_;
  LineBuffer buffer_;
};

}  // namespace ebem::service

// service::tenant — per-tenant sessions, quotas, and cost accounts.
//
// Multi-tenancy in this service is isolation by construction: every tenant
// gets its own engine::Engine (own warm CongruenceCache, own scheduler, own
// session PhaseReport) bound into an engine::Study pinned to the tenant's
// physics. The engines share one par::ThreadPool — compute is pooled,
// *state* is not — so tenant A's design ladder keeps replaying its warm
// cache no matter how often tenant B's soil churn would have invalidated a
// shared one. (The Engine's physics-fingerprint guard drops its cache on
// any physics change; with one engine per tenant that guard only ever sees
// that tenant's physics.)
//
// Each session also carries the tenant's declared quotas (admission.hpp
// enforces them), its admission ledger, and a CostAccount: the cumulative
// bill built by merging every completed run's PhaseReport — assembly /
// factor / solve seconds, cache hits, tiles, pairs — plus run/element
// tallies, queryable live through the stats endpoint.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/bem/element.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/engine.hpp"
#include "src/engine/study.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/service/codec.hpp"

namespace ebem::service {

/// Per-tenant admission limits. Zeros mean "unlimited" everywhere except
/// max_outstanding_runs, where 0 is a real (revoked) quota: every submit is
/// rejected — the way an operator suspends a tenant without unregistering
/// it and losing its bill.
struct TenantQuotas {
  /// Runs submitted but not yet harvested. 0 rejects every submit.
  std::size_t max_outstanding_runs = 4;
  /// Meshed element count bound per model; checked after meshing, before
  /// the engine sees the run. 0 = unlimited.
  std::size_t max_elements_per_model = 0;
  /// Rate limit: at most this many admissions per sliding window_seconds
  /// window. 0 = unlimited.
  std::size_t max_runs_per_window = 0;
  double window_seconds = 1.0;
};

/// One tenant's registration: name on the wire, quotas, and the fixed GPR
/// its Study applies to every submitted model.
struct TenantConfig {
  std::string name;
  TenantQuotas quotas;
  double gpr = 1.0;  ///< Ground Potential Rise [V] of every run
};

/// The whole service's configuration: who may call, and how much compute
/// backs them.
struct ServiceConfig {
  std::vector<TenantConfig> tenants;
  /// Workers in the pool shared by every tenant engine; 1 = serial engines.
  std::size_t num_threads = 1;
  /// Pipeline width of each tenant engine's scheduler.
  std::size_t pipeline_width = 2;
  /// Global bound on runs outstanding across all tenants — the service-wide
  /// backpressure valve (typed "overloaded" rejection at the bound).
  /// 0 resolves to the sum of the tenant outstanding quotas.
  std::size_t max_global_outstanding = 0;

  /// Throws ebem::InvalidArgument on duplicate/empty tenant names or
  /// non-positive gpr / window_seconds.
  void validate() const;

  /// The resolved global bound (sum of tenant quotas when 0).
  [[nodiscard]] std::size_t resolved_global_outstanding() const;
};

/// A tenant's cumulative bill. Completed runs merge their PhaseReport in
/// (thread-safe — PhaseReport is a locking sink) and bump the tallies;
/// rejections are tallied too, so "how often did we say no" is as queryable
/// as "how much did we do".
class CostAccount {
 public:
  /// Fold one completed run into the bill: its report, its meshed element
  /// count, and whether it failed (failed runs bill their report too — the
  /// compute happened).
  void bill_run(const PhaseReport& run_report, std::size_t elements, bool failed);

  void record_rejection(ErrorCode code);

  [[nodiscard]] std::uint64_t runs_completed() const {
    return runs_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t runs_failed() const {
    return runs_failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t runs_rejected() const {
    return runs_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t elements_billed() const {
    return elements_billed_.load(std::memory_order_relaxed);
  }

  /// The merged per-run reports — phase seconds and counters. Live-safe
  /// reads via counter()/counters_snapshot()/wall_seconds on the returned
  /// reference (PhaseReport locks internally).
  [[nodiscard]] const PhaseReport& bill() const { return bill_; }

 private:
  PhaseReport bill_;
  std::atomic<std::uint64_t> runs_completed_{0};
  std::atomic<std::uint64_t> runs_failed_{0};
  std::atomic<std::uint64_t> runs_rejected_{0};
  std::atomic<std::uint64_t> elements_billed_{0};
};

/// The admission ledger AdmissionController keeps per tenant: outstanding
/// runs (admitted, not yet retired), the observed peak, and the sliding
/// rate window. Guarded by the controller's mutex, not its own.
struct AdmissionLedger {
  std::size_t outstanding = 0;
  std::size_t peak_outstanding = 0;
  std::deque<double> window;  ///< admission timestamps [monotonic seconds]
};

/// Everything the service holds for one tenant: engine + study (warm state),
/// quotas, admission ledger, bill.
class TenantSession {
 public:
  /// `shared_pool` may be null (serial engines). The engine's
  /// max_pending_runs backstop is set from the outstanding quota; the
  /// admission controller rejects before that bound can ever block.
  TenantSession(const TenantConfig& config, par::ThreadPool* shared_pool,
                std::size_t pipeline_width);

  [[nodiscard]] const TenantConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] engine::Engine& engine() { return *engine_; }
  [[nodiscard]] engine::Study& study() { return *study_; }
  [[nodiscard]] CostAccount& account() { return account_; }
  [[nodiscard]] const CostAccount& account() const { return account_; }
  [[nodiscard]] AdmissionLedger& ledger() { return ledger_; }

 private:
  TenantConfig config_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<engine::Study> study_;
  CostAccount account_;
  AdmissionLedger ledger_;
};

/// Owns the shared pool and every tenant session; lookup by wire name.
class TenantRegistry {
 public:
  explicit TenantRegistry(const ServiceConfig& config);

  /// Null when the name is unregistered (callers map that to
  /// ErrorCode::kUnknownTenant).
  [[nodiscard]] TenantSession* find(const std::string& name);

  [[nodiscard]] std::vector<TenantSession*> sessions();

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t pool_threads() const { return pool_ ? pool_->num_threads() : 1; }

 private:
  ServiceConfig config_;
  std::unique_ptr<par::ThreadPool> pool_;  ///< shared compute; null = serial
  // Sessions are created once at construction and never move: stable
  // addresses are the lookup contract.
  std::map<std::string, std::unique_ptr<TenantSession>> sessions_;
};

/// Mesh a validated wire ModelSpec into a BemModel (decode_request already
/// range-checked every field; this is pure construction).
[[nodiscard]] bem::BemModel build_model(const ModelSpec& spec);

}  // namespace ebem::service

#include "src/service/tenant.hpp"

#include <set>
#include <utility>

#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/geom/mesh.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::service {

void ServiceConfig::validate() const {
  EBEM_EXPECT(!tenants.empty(), "a service needs at least one registered tenant");
  EBEM_EXPECT(pipeline_width >= 1, "pipeline_width must be >= 1");
  std::set<std::string> names;
  for (const TenantConfig& tenant : tenants) {
    EBEM_EXPECT(!tenant.name.empty(), "tenant names must be non-empty");
    EBEM_EXPECT(names.insert(tenant.name).second,
                "duplicate tenant name '" + tenant.name + "'");
    EBEM_EXPECT(tenant.gpr > 0.0, "tenant gpr must be positive");
    EBEM_EXPECT(tenant.quotas.window_seconds > 0.0, "window_seconds must be positive");
  }
}

std::size_t ServiceConfig::resolved_global_outstanding() const {
  if (max_global_outstanding > 0) return max_global_outstanding;
  std::size_t total = 0;
  for (const TenantConfig& tenant : tenants) total += tenant.quotas.max_outstanding_runs;
  return total;
}

void CostAccount::bill_run(const PhaseReport& run_report, std::size_t elements, bool failed) {
  bill_.merge(run_report);
  elements_billed_.fetch_add(elements, std::memory_order_relaxed);
  (failed ? runs_failed_ : runs_completed_).fetch_add(1, std::memory_order_relaxed);
}

void CostAccount::record_rejection(ErrorCode code) {
  runs_rejected_.fetch_add(1, std::memory_order_relaxed);
  bill_.add_counter(std::string("Rejections: ") + error_code_name(code), 1.0);
}

TenantSession::TenantSession(const TenantConfig& config, par::ThreadPool* shared_pool,
                             std::size_t pipeline_width)
    : config_(config) {
  engine::ExecutionConfig execution;
  if (shared_pool != nullptr) {
    execution.pool = shared_pool;
    execution.num_threads = 0;  // adopt the shared pool's size
  } else {
    execution.num_threads = 1;
  }
  execution.pipeline_width = pipeline_width;
  // Engine-level backstop: admission rejects at the quota before this bound
  // could ever block the submitting thread (admission outstanding is
  // retired at harvest, strictly after the run turns terminal, so it always
  // dominates the scheduler's non-terminal count).
  execution.max_pending_runs = config.quotas.max_outstanding_runs;
  engine_ = std::make_unique<engine::Engine>(execution);

  bem::AnalysisOptions options;
  options.gpr = config.gpr;
  study_ = std::make_unique<engine::Study>(*engine_, options);
}

TenantRegistry::TenantRegistry(const ServiceConfig& config) : config_(config) {
  config_.validate();
  if (config_.num_threads > 1) pool_ = std::make_unique<par::ThreadPool>(config_.num_threads);
  for (const TenantConfig& tenant : config_.tenants) {
    sessions_.emplace(tenant.name, std::make_unique<TenantSession>(tenant, pool_.get(),
                                                                   config_.pipeline_width));
  }
}

TenantSession* TenantRegistry::find(const std::string& name) {
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<TenantSession*> TenantRegistry::sessions() {
  std::vector<TenantSession*> out;
  out.reserve(sessions_.size());
  for (auto& [name, session] : sessions_) out.push_back(session.get());
  return out;
}

bem::BemModel build_model(const ModelSpec& spec) {
  const std::vector<geom::Conductor> conductors = geom::make_rect_grid(spec.grid);
  const geom::Mesh mesh = geom::Mesh::build(conductors);
  return bem::BemModel(mesh, soil::LayeredSoil(spec.layers));
}

}  // namespace ebem::service

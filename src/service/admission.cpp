#include "src/service/admission.hpp"

#include <chrono>
#include <string>

#include "src/common/error.hpp"

namespace ebem::service {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(std::size_t max_global_outstanding)
    : max_global_outstanding_(max_global_outstanding) {
  EBEM_EXPECT(max_global_outstanding_ >= 1, "global outstanding bound must be >= 1");
}

void AdmissionController::reject(TenantSession& session, ErrorCode code,
                                 const std::string& message) {
  // Called with mutex_ held; tally outside any throw path ambiguity.
  ++rejected_;
  session.account().record_rejection(code);
  throw RequestError(code, message);
}

void AdmissionController::admit(TenantSession& session, std::size_t elements) {
  const TenantQuotas& quotas = session.config().quotas;
  const std::scoped_lock lock(mutex_);
  AdmissionLedger& ledger = session.ledger();

  if (shutting_down_) {
    reject(session, ErrorCode::kShuttingDown, "service is draining; submit again later");
  }
  if (quotas.max_elements_per_model > 0 && elements > quotas.max_elements_per_model) {
    reject(session, ErrorCode::kModelTooLarge,
           "model meshes to " + std::to_string(elements) + " elements; tenant limit is " +
               std::to_string(quotas.max_elements_per_model));
  }
  if (ledger.outstanding >= quotas.max_outstanding_runs) {
    reject(session, ErrorCode::kQuotaExceeded,
           quotas.max_outstanding_runs == 0
               ? "tenant quota is zero"
               : "tenant at max outstanding runs (" +
                     std::to_string(quotas.max_outstanding_runs) + ")");
  }
  if (quotas.max_runs_per_window > 0) {
    const double now = monotonic_seconds();
    while (!ledger.window.empty() && now - ledger.window.front() > quotas.window_seconds) {
      ledger.window.pop_front();
    }
    if (ledger.window.size() >= quotas.max_runs_per_window) {
      reject(session, ErrorCode::kRateLimited,
             "tenant exceeded " + std::to_string(quotas.max_runs_per_window) + " runs per " +
                 std::to_string(quotas.window_seconds) + "s window");
    }
    ledger.window.push_back(now);
  }
  if (global_outstanding_ >= max_global_outstanding_) {
    // The rate-window stamp above must not survive a global rejection.
    if (quotas.max_runs_per_window > 0) ledger.window.pop_back();
    reject(session, ErrorCode::kOverloaded,
           "service at global outstanding bound (" +
               std::to_string(max_global_outstanding_) + ")");
  }

  ++ledger.outstanding;
  if (ledger.outstanding > ledger.peak_outstanding) {
    ledger.peak_outstanding = ledger.outstanding;
  }
  ++global_outstanding_;
  if (global_outstanding_ > global_peak_outstanding_) {
    global_peak_outstanding_ = global_outstanding_;
  }
  ++admitted_;
}

void AdmissionController::retire(TenantSession& session) {
  const std::scoped_lock lock(mutex_);
  AdmissionLedger& ledger = session.ledger();
  EBEM_ENSURE(ledger.outstanding > 0 && global_outstanding_ > 0,
              "retire() without a matching admit()");
  --ledger.outstanding;
  --global_outstanding_;
}

void AdmissionController::begin_shutdown() {
  const std::scoped_lock lock(mutex_);
  shutting_down_ = true;
}

AdmissionStats AdmissionController::stats() const {
  const std::scoped_lock lock(mutex_);
  AdmissionStats stats;
  stats.global_outstanding = global_outstanding_;
  stats.global_peak_outstanding = global_peak_outstanding_;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  return stats;
}

AdmissionLedger AdmissionController::ledger_snapshot(TenantSession& session) const {
  const std::scoped_lock lock(mutex_);
  return session.ledger();
}

}  // namespace ebem::service

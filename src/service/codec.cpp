#include "src/service/codec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace ebem::service {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedRequest:
      return "malformed_request";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kUnknownTenant:
      return "unknown_tenant";
    case ErrorCode::kUnknownRun:
      return "unknown_run";
    case ErrorCode::kForbidden:
      return "forbidden";
    case ErrorCode::kModelTooLarge:
      return "model_too_large";
    case ErrorCode::kQuotaExceeded:
      return "quota_exceeded";
    case ErrorCode::kRateLimited:
      return "rate_limited";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

// ---------------------------------------------------------------- JSON value ---

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& object = as_object();
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view; positions are byte offsets
/// so error messages point at the offending byte.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> value = parse_value(0);
    if (value) {
      skip_whitespace();
      if (pos_ != text_.size()) value.reset(), fail("trailing garbage after document");
    }
    if (!value && error) *error = error_;
    return value;
  }

 private:
  std::optional<Json> fail(std::string_view message) {
    if (error_.empty()) {
      std::ostringstream os;
      os << message << " at byte " << pos_;
      error_ = os.str();
    }
    return std::nullopt;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Json> parse_value(std::size_t depth) {
    if (depth > Json::kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return consume_literal("null") ? std::optional<Json>(Json(nullptr))
                                       : fail("invalid literal");
      case 't':
        return consume_literal("true") ? std::optional<Json>(Json(true)) : fail("invalid literal");
      case 'f':
        return consume_literal("false") ? std::optional<Json>(Json(false))
                                        : fail("invalid literal");
      case '"':
        return parse_string();
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Json(std::move(out));
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(&code)) return fail("invalid \\u escape");
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: require the paired low surrogate.
              unsigned low = 0;
              if (!consume('\\') || !consume('u') || !parse_hex4(&low) || low < 0xDC00 ||
                  low > 0xDFFF) {
                return fail("unpaired surrogate");
              }
              const unsigned cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              append_utf8(out, cp);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return fail("unpaired surrogate");
            } else {
              append_utf8(out, code);
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail("invalid token");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return fail("number out of range");
    }
    return Json(value);
  }

  std::optional<Json> parse_array(std::size_t depth) {
    ++pos_;  // '['
    Json::Array items;
    skip_whitespace();
    if (consume(']')) return Json(std::move(items));
    while (true) {
      std::optional<Json> item = parse_value(depth + 1);
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_whitespace();
      if (consume(']')) return Json(std::move(items));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Json> parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Json::Object members;
    skip_whitespace();
    if (consume('}')) return Json(std::move(members));
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::optional<Json> key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      if (!members.emplace(key->as_string(), std::move(*value)).second) {
        return fail("duplicate object key");
      }
      skip_whitespace();
      if (consume('}')) return Json(std::move(members));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_string(const std::string& value, std::string& out) {
  out.push_back('"');
  for (const char raw : value) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  // Integral values serialize without an exponent or trailing ".0" so ids
  // and counts stay readable; %.17g otherwise guarantees round-trip.
  if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void dump_value(const Json& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(member, out);
    }
    out.push_back('}');
  }
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// ------------------------------------------------------------- line framing ---

void LineBuffer::append(std::string_view bytes) {
  if (overflowed_) return;  // stream already condemned; drop further input
  buffer_.append(bytes);
  // Overflow means "some line with no newline yet exceeds the bound": only
  // the tail after the last newline can still grow, so check that.
  const std::size_t last_newline = buffer_.rfind('\n');
  const std::size_t tail = last_newline == std::string::npos ? buffer_.size()
                                                             : buffer_.size() - last_newline - 1;
  if (tail > max_line_bytes_) overflowed_ = true;
}

std::optional<std::string> LineBuffer::pop_line() {
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::size_t end = newline;
  if (end > 0 && buffer_[end - 1] == '\r') --end;
  if (end > max_line_bytes_) {
    overflowed_ = true;
    return std::nullopt;
  }
  std::string line = buffer_.substr(0, end);
  buffer_.erase(0, newline + 1);
  return line;
}

// ----------------------------------------------------------- request schema ---

namespace {

[[noreturn]] void reject(ErrorCode code, const std::string& message) {
  throw RequestError(code, message);
}

const Json& require_field(const Json& object, std::string_view key) {
  const Json* field = object.find(key);
  if (field == nullptr) {
    reject(ErrorCode::kInvalidArgument, "missing required field '" + std::string(key) + "'");
  }
  return *field;
}

std::string require_string(const Json& object, std::string_view key) {
  const Json& field = require_field(object, key);
  if (!field.is_string()) {
    reject(ErrorCode::kInvalidArgument, "field '" + std::string(key) + "' must be a string");
  }
  return field.as_string();
}

double require_number(const Json& object, std::string_view key, double min_value,
                      double max_value) {
  const Json& field = require_field(object, key);
  if (!field.is_number()) {
    reject(ErrorCode::kInvalidArgument, "field '" + std::string(key) + "' must be a number");
  }
  const double value = field.as_number();
  if (!(value >= min_value && value <= max_value)) {
    std::ostringstream os;
    os << "field '" << key << "' out of range [" << min_value << ", " << max_value << "]: "
       << value;
    reject(ErrorCode::kInvalidArgument, os.str());
  }
  return value;
}

std::size_t require_count(const Json& object, std::string_view key, std::size_t min_value,
                          std::size_t max_value) {
  const double value = require_number(object, key, static_cast<double>(min_value),
                                      static_cast<double>(max_value));
  if (value != std::floor(value)) {
    reject(ErrorCode::kInvalidArgument, "field '" + std::string(key) + "' must be an integer");
  }
  return static_cast<std::size_t>(value);
}

ModelSpec decode_model(const Json& request) {
  const Json& model = require_field(request, "model");
  if (!model.is_object()) reject(ErrorCode::kInvalidArgument, "field 'model' must be an object");

  ModelSpec spec;
  const Json& grid = require_field(model, "grid");
  if (!grid.is_object()) reject(ErrorCode::kInvalidArgument, "field 'grid' must be an object");
  spec.grid.length_x = require_number(grid, "length_x", 1e-3, ModelLimits::kMaxExtentMeters);
  spec.grid.length_y = require_number(grid, "length_y", 1e-3, ModelLimits::kMaxExtentMeters);
  spec.grid.cells_x = require_count(grid, "cells_x", 1, ModelLimits::kMaxCellsPerSide);
  spec.grid.cells_y = require_count(grid, "cells_y", 1, ModelLimits::kMaxCellsPerSide);
  if (const Json* depth = grid.find("depth")) {
    if (!depth->is_number() || !(depth->as_number() > 0.0) ||
        depth->as_number() > ModelLimits::kMaxDepthMeters) {
      reject(ErrorCode::kInvalidArgument, "field 'depth' out of range");
    }
    spec.grid.depth = depth->as_number();
  }
  if (const Json* radius = grid.find("radius")) {
    if (!radius->is_number() || !(radius->as_number() > 0.0) ||
        radius->as_number() > ModelLimits::kMaxRadiusMeters) {
      reject(ErrorCode::kInvalidArgument, "field 'radius' out of range");
    }
    spec.grid.radius = radius->as_number();
  }

  const Json& soil = require_field(model, "soil");
  if (!soil.is_object()) reject(ErrorCode::kInvalidArgument, "field 'soil' must be an object");
  const Json& conductivities = require_field(soil, "conductivities");
  if (!conductivities.is_array() || conductivities.as_array().empty() ||
      conductivities.as_array().size() > ModelLimits::kMaxSoilLayers) {
    reject(ErrorCode::kInvalidArgument, "field 'conductivities' must be a non-empty array of at "
                                        "most " +
                                            std::to_string(ModelLimits::kMaxSoilLayers) +
                                            " numbers");
  }
  const Json* thicknesses = soil.find("thicknesses");
  const std::size_t layer_count = conductivities.as_array().size();
  if (thicknesses != nullptr &&
      (!thicknesses->is_array() || thicknesses->as_array().size() != layer_count - 1)) {
    reject(ErrorCode::kInvalidArgument,
           "field 'thicknesses' must be an array with one entry per non-terminal layer");
  }
  for (std::size_t i = 0; i < layer_count; ++i) {
    const Json& sigma = conductivities.as_array()[i];
    if (!sigma.is_number() || !(sigma.as_number() > 0.0) || sigma.as_number() > 1e6) {
      reject(ErrorCode::kInvalidArgument, "conductivities entries must be in (0, 1e6] S/m");
    }
    double thickness = 0.0;  // last layer: ignored (infinite)
    if (i + 1 < layer_count) {
      if (thicknesses == nullptr) {
        reject(ErrorCode::kInvalidArgument,
               "field 'thicknesses' is required for multi-layer soil");
      }
      const Json& entry = thicknesses->as_array()[i];
      if (!entry.is_number() || !(entry.as_number() > 0.0) ||
          entry.as_number() > ModelLimits::kMaxExtentMeters) {
        reject(ErrorCode::kInvalidArgument, "thicknesses entries must be positive and bounded");
      }
      thickness = entry.as_number();
    }
    spec.layers.push_back(soil::Layer{sigma.as_number(), thickness});
  }
  return spec;
}

}  // namespace

Request decode_request(std::string_view line) {
  std::string parse_error;
  std::optional<Json> document = Json::parse(line, &parse_error);
  if (!document) reject(ErrorCode::kMalformedRequest, "invalid JSON: " + parse_error);
  if (!document->is_object()) {
    reject(ErrorCode::kMalformedRequest, "request must be a JSON object");
  }
  const Json* type = document->find("type");
  if (type == nullptr || !type->is_string()) {
    reject(ErrorCode::kMalformedRequest, "request must carry a string 'type'");
  }
  const std::string& kind = type->as_string();

  if (kind == "submit_analysis" || kind == "submit_factor_solve") {
    SubmitRequest request;
    request.tenant = require_string(*document, "tenant");
    request.model = decode_model(*document);
    request.factor_solve = kind == "submit_factor_solve";
    return request;
  }
  if (kind == "get_report") {
    ReportRequest request;
    request.tenant = require_string(*document, "tenant");
    request.run_id = static_cast<std::uint64_t>(
        require_count(*document, "run_id", 1, std::size_t{1} << 53));
    if (document->find("wait_ms") != nullptr) {
      request.wait_ms = static_cast<std::uint32_t>(
          require_count(*document, "wait_ms", 0, ReportRequest::kMaxWaitMs));
    }
    return request;
  }
  if (kind == "stats") {
    StatsRequest request;
    if (document->find("tenant") != nullptr) request.tenant = require_string(*document, "tenant");
    return request;
  }
  if (kind == "shutdown") return ShutdownRequest{};

  reject(ErrorCode::kMalformedRequest, "unknown request type '" + kind + "'");
}

// --------------------------------------------------------- response builders ---

std::string error_response(ErrorCode code, std::string_view message) {
  Json::Object object;
  object.emplace("type", Json("error"));
  object.emplace("code", Json(error_code_name(code)));
  object.emplace("message", Json(std::string(message)));
  return Json(std::move(object)).dump();
}

std::string submitted_response(std::uint64_t run_id, std::string_view tenant,
                               std::size_t elements) {
  Json::Object object;
  object.emplace("type", Json("submitted"));
  object.emplace("run_id", Json(static_cast<double>(run_id)));
  object.emplace("tenant", Json(std::string(tenant)));
  object.emplace("elements", Json(static_cast<double>(elements)));
  return Json(std::move(object)).dump();
}

std::string report_response(const RunReport& report) {
  Json::Object object;
  object.emplace("type", Json("report"));
  object.emplace("run_id", Json(static_cast<double>(report.run_id)));
  object.emplace("status", Json(report.status));
  object.emplace("factor_solve", Json(report.factor_solve));
  if (!report.error.empty()) object.emplace("error", Json(report.error));
  if (report.status == "done") {
    object.emplace("equivalent_resistance", Json(report.equivalent_resistance));
    object.emplace("total_current", Json(report.total_current));
    object.emplace("sigma_l2", Json(report.sigma_l2));
    object.emplace("elements", Json(static_cast<double>(report.elements)));
    object.emplace("assembly_seconds", Json(report.assembly_seconds));
    object.emplace("solve_seconds", Json(report.solve_seconds));
    object.emplace("total_seconds", Json(report.total_seconds));
    object.emplace("cache_hits", Json(report.cache_hits));
    object.emplace("cache_misses", Json(report.cache_misses));
  }
  return Json(std::move(object)).dump();
}

Json decode_response(std::string_view line) {
  std::string parse_error;
  std::optional<Json> document = Json::parse(line, &parse_error);
  if (!document || !document->is_object()) {
    reject(ErrorCode::kInternal, "malformed response line: " + parse_error);
  }
  return std::move(*document);
}

}  // namespace ebem::service

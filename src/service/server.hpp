// service::Server — the minimal blocking POSIX-socket front door.
//
// A deliberately small loop: bind 127.0.0.1 (ephemeral port when asked for
// port 0 — tests and the bench discover the real port via port()), accept
// on a poll()ed listener so stop() is prompt, and serve each connection on
// its own thread through the same LineBuffer framing and Dispatcher::handle
// path the loopback transport uses. Every service decision — admission,
// quotas, billing, shutdown semantics — lives in the Dispatcher; this file
// only moves bytes, which is what keeps the core transport-agnostic and
// unit-testable without sockets.
//
// Client is the matching blocking line client (connect, one line out, one
// line back), enough for the example, the bench and the end-to-end tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/service/codec.hpp"
#include "src/service/dispatcher.hpp"

namespace ebem::service {

class Server {
 public:
  /// Bind and listen on 127.0.0.1:`port` (0 = ephemeral; see port()) and
  /// start the accept loop. The dispatcher is borrowed and must outlive the
  /// server. Throws ebem::IoError when the socket cannot be set up.
  Server(Dispatcher& dispatcher, std::uint16_t port = 0);

  /// Calls stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port — the requested one, or the kernel-assigned ephemeral
  /// port when constructed with 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting, shut down every live connection's socket, join all
  /// connection threads. Idempotent. Does NOT shut down the dispatcher —
  /// in-flight engine runs keep running and stay billable; wire-initiated
  /// shutdown goes through the "shutdown" request instead.
  void stop();

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Dispatcher* dispatcher_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex stop_mutex_;  ///< serializes stop() callers
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};

  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;         ///< live sockets, for stop()
  std::vector<std::thread> connection_threads_;

  std::thread acceptor_;
};

/// Blocking line-protocol client: one call() = one request line out, one
/// response line back. Not thread-safe; use one per thread.
class Client {
 public:
  /// Connect to 127.0.0.1:`port`; throws ebem::IoError on failure.
  explicit Client(std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `request` (newline appended) and block for the response line.
  /// Throws ebem::IoError when the connection drops mid-exchange.
  [[nodiscard]] std::string call(std::string_view request);

  /// Send raw bytes without framing — for tests that need to speak garbage.
  void send_raw(std::string_view bytes);

  /// Block for the next response line.
  [[nodiscard]] std::string read_line();

 private:
  int fd_ = -1;
  LineBuffer buffer_;
};

}  // namespace ebem::service

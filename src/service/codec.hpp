// service::codec — the wire contract of the engine-as-a-service front door.
//
// The service speaks line-delimited JSON: one request object per line, one
// response object per line, over any byte transport (the in-process
// loopback in service/loopback.hpp or the POSIX socket server in
// service/server.hpp). This header is the whole protocol: a dependency-free
// JSON value with a strict parser/serializer, the typed request structs,
// strict schema validation that rejects malformed or out-of-range requests
// with a typed error payload *before* anything touches an engine
// (validate-then-act: nothing past this boundary ever sees an unvalidated
// field), the response builders, and the line-framing buffer both
// transports share.
//
// Every rejection is typed: an error response carries a stable ErrorCode
// string ("quota_exceeded", "overloaded", ...) a client can branch on —
// the 429-style codes are immediate, never queued.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::service {

// ------------------------------------------------------------ typed errors ---

/// Every way the service refuses a request, each with a stable wire name.
/// The first group is protocol/validation (the request itself is wrong);
/// the second is admission (the request is fine, the service refuses the
/// work right now — the immediate "429" family, never queued).
enum class ErrorCode {
  kMalformedRequest,  ///< not JSON, not an object, or no recognizable type
  kInvalidArgument,   ///< schema violation: wrong type, missing or out-of-range field
  kUnknownTenant,     ///< tenant name not registered
  kUnknownRun,        ///< run_id never issued (or already expired)
  kForbidden,         ///< run_id exists but belongs to another tenant
  kModelTooLarge,     ///< meshed element count exceeds the tenant's quota
  kQuotaExceeded,     ///< tenant at max outstanding runs (or zero-quota)
  kRateLimited,       ///< tenant exceeded max runs per time window
  kOverloaded,        ///< global outstanding bound reached — backpressure
  kShuttingDown,      ///< server draining; no new work accepted
  kInternal,          ///< a run or the service itself failed unexpectedly
};

/// Stable wire spelling ("malformed_request", "quota_exceeded", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// The one exception type the service layers throw at the request boundary;
/// the dispatcher catches it and encodes the typed error response. Derives
/// from ebem::Error like everything the library throws.
class RequestError : public ebem::Error {
 public:
  RequestError(ErrorCode code, const std::string& message)
      : Error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// ---------------------------------------------------------------- JSON value ---

/// Minimal JSON document: null / bool / number / string / array / object.
/// Strict by construction — parse() accepts exactly RFC 8259 text (no
/// comments, no trailing commas, no NaN/Infinity), serialization round-trips
/// doubles through %.17g. Objects are ordered maps so serialization is
/// deterministic. This is deliberately dependency-free: the codec is the
/// service's outermost trust boundary and owns every byte it accepts.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool value) : value_(value) {}        // NOLINT(google-explicit-constructor)
  Json(double value) : value_(value) {}      // NOLINT(google-explicit-constructor)
  Json(int value) : value_(static_cast<double>(value)) {}  // NOLINT(google-explicit-constructor)
  Json(std::string value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* value) : value_(std::string(value)) {}  // NOLINT(google-explicit-constructor)
  Json(Array value) : value_(std::move(value)) {}    // NOLINT(google-explicit-constructor)
  Json(Object value) : value_(std::move(value)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(value_); }

  /// Member lookup on an object; null when absent or when this is not an
  /// object (so schema code can chain lookups and validate once).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Parse exactly one JSON document spanning the whole text (trailing
  /// whitespace allowed, trailing garbage rejected). On failure returns
  /// nullopt and, when `error` is non-null, a one-line explanation with the
  /// byte offset. Nesting beyond kMaxDepth is rejected.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  /// Serialize to a single line (no raw newlines — strings escape control
  /// characters), parse(dump()) round-trips including number precision.
  [[nodiscard]] std::string dump() const;

  static constexpr std::size_t kMaxDepth = 32;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

// ------------------------------------------------------------- line framing ---

/// Splits an incoming byte stream into protocol lines. Both transports feed
/// raw reads through one of these: partial lines stay buffered until their
/// newline arrives (a truncated frame is simply never delivered), and a
/// line longer than `max_line_bytes` trips overflowed() so the connection
/// can answer with a framing error and close instead of buffering without
/// bound.
class LineBuffer {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = std::size_t{1} << 20;

  explicit LineBuffer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  void append(std::string_view bytes);

  /// Next complete line (terminator stripped, including a preceding '\r'),
  /// or nullopt when no full line is buffered yet.
  [[nodiscard]] std::optional<std::string> pop_line();

  /// The current (undelivered) line exceeded the bound; the stream is no
  /// longer trustworthy and the connection should be closed after an error.
  [[nodiscard]] bool overflowed() const { return overflowed_; }

  /// Bytes buffered but not yet delivered (a truncated trailing frame).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool overflowed_ = false;
};

// ----------------------------------------------------------- request schema ---

/// The analysis model a request carries over the wire: a rectangular grid
/// spec plus a layered-soil stack. Decoded fields are range-checked by
/// decode_request (validate-then-act), so holders of a ModelSpec can trust
/// every field.
struct ModelSpec {
  geom::RectGridSpec grid;
  std::vector<soil::Layer> layers;  ///< last layer's thickness is infinite
};

/// submit_analysis / submit_factor_solve: run one model for this tenant.
/// factor_solve runs assemble+factor through Engine::submit_factor and
/// answers the unit-GPR right-hand side by substitution at harvest — same
/// numbers as the analysis path, exercising the FactoredSystem surface.
struct SubmitRequest {
  std::string tenant;
  ModelSpec model;
  bool factor_solve = false;
};

/// get_report: poll (wait_ms == 0) or wait up to wait_ms for a run's
/// terminal report. Billing is server-side and happens whether or not
/// anyone ever asks.
struct ReportRequest {
  std::string tenant;
  std::uint64_t run_id = 0;
  std::uint32_t wait_ms = 0;

  static constexpr std::uint32_t kMaxWaitMs = 60'000;
};

/// stats: the server-wide admission/throughput picture, or one tenant's
/// cumulative bill when `tenant` is present.
struct StatsRequest {
  std::optional<std::string> tenant;
};

/// shutdown: stop admitting, drain every tenant engine, flush the accounts.
/// Stats and reports stay answerable afterwards.
struct ShutdownRequest {};

using Request = std::variant<SubmitRequest, ReportRequest, StatsRequest, ShutdownRequest>;

/// Decode and strictly validate one request line. Throws RequestError
/// (kMalformedRequest for non-JSON / missing type, kInvalidArgument for any
/// schema violation: unknown field types, non-finite numbers, out-of-range
/// geometry or soil values). Nothing downstream re-validates.
[[nodiscard]] Request decode_request(std::string_view line);

/// Bounds decode_request enforces on ModelSpec — public so tests and docs
/// agree with the implementation.
struct ModelLimits {
  static constexpr double kMaxExtentMeters = 10'000.0;
  static constexpr std::size_t kMaxCellsPerSide = 4096;
  static constexpr double kMaxDepthMeters = 100.0;
  static constexpr double kMaxRadiusMeters = 1.0;
  static constexpr std::size_t kMaxSoilLayers = 8;
};

// --------------------------------------------------------- response builders ---

/// {"type":"error","code":<stable name>,"message":...}
[[nodiscard]] std::string error_response(ErrorCode code, std::string_view message);

/// {"type":"submitted","run_id":...,"tenant":...,"elements":...}
[[nodiscard]] std::string submitted_response(std::uint64_t run_id, std::string_view tenant,
                                             std::size_t elements);

/// One terminal (or in-flight) run report; the payload of get_report.
struct RunReport {
  std::uint64_t run_id = 0;
  std::string status;  ///< "queued" | "running" | "done" | "failed"
  bool factor_solve = false;
  std::string error;  ///< failed runs: the run's exception message
  // "done" payload — the safety quantities plus this run's bill lines.
  double equivalent_resistance = 0.0;
  double total_current = 0.0;
  double sigma_l2 = 0.0;  ///< L2 norm of the leakage density, a parity probe
  std::size_t elements = 0;
  double assembly_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
};

[[nodiscard]] std::string report_response(const RunReport& report);

/// Decode helper for clients (the bench's parity check, tests): parse a
/// response line back into a Json document, throwing RequestError on
/// malformed responses.
[[nodiscard]] Json decode_response(std::string_view line);

}  // namespace ebem::service

#include "src/service/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"

namespace ebem::service {

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Write all of `bytes`, retrying on EINTR / partial writes.
bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Dispatcher& dispatcher, std::uint16_t port) : dispatcher_(&dispatcher) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket(): " + std::string(std::strerror(errno)));

  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::strerror(errno);
    close_quietly(listen_fd_);
    throw IoError("bind(127.0.0.1:" + std::to_string(port) + "): " + message);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string message = std::strerror(errno);
    close_quietly(listen_fd_);
    throw IoError("listen(): " + message);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const std::string message = std::strerror(errno);
    close_quietly(listen_fd_);
    throw IoError("getsockname(): " + message);
  }
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Poll with a timeout so stop() is noticed within one tick even if no
    // connection ever arrives.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      close_quietly(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::scoped_lock lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  LineBuffer buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or stop() shut the socket down)
    buffer.append(std::string_view(chunk, static_cast<std::size_t>(n)));
    while (std::optional<std::string> line = buffer.pop_line()) {
      const std::string response = dispatcher_->handle(*line) + "\n";
      if (!write_all(fd, response)) {
        open = false;
        break;
      }
    }
    if (buffer.overflowed()) {
      // The stream is no longer frameable; answer once and hang up.
      (void)write_all(fd, error_response(ErrorCode::kMalformedRequest,
                                         "request line exceeds the frame bound") +
                              "\n");
      break;
    }
  }
  close_quietly(fd);
}

void Server::stop() {
  // One caller owns the whole teardown; concurrent/repeat calls wait here
  // and then find nothing left to do.
  const std::scoped_lock stop_lock(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  close_quietly(listen_fd_);
  listen_fd_ = -1;

  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    const std::scoped_lock lock(connections_mutex_);
    fds.swap(connection_fds_);
    threads.swap(connection_threads_);
  }
  // Shut the sockets down so blocked recv()s return, then join.
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

Client::Client(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw IoError("socket(): " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::strerror(errno);
    close_quietly(fd_);
    throw IoError("connect(127.0.0.1:" + std::to_string(port) + "): " + message);
  }
}

Client::~Client() { close_quietly(fd_); }

std::string Client::call(std::string_view request) {
  send_raw(std::string(request) + "\n");
  return read_line();
}

void Client::send_raw(std::string_view bytes) {
  if (!write_all(fd_, bytes)) throw IoError("send(): connection lost");
}

std::string Client::read_line() {
  while (true) {
    if (std::optional<std::string> line = buffer_.pop_line()) return *line;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("recv(): connection closed before a full response line");
    buffer_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

}  // namespace ebem::service

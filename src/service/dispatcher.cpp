#include "src/service/dispatcher.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/engine/factored_system.hpp"
#include "src/la/blas1.hpp"

namespace ebem::service {

namespace {

using std::chrono::milliseconds;

/// How long the harvester parks on each in-flight future per sweep. Small
/// enough to notice any of many runs turning terminal promptly, large
/// enough that an idle sweep costs no measurable CPU.
constexpr milliseconds kHarvestPollInterval{2};

}  // namespace

Dispatcher::Dispatcher(const ServiceConfig& config)
    : registry_(config), admission_(config.resolved_global_outstanding()) {
  harvester_ = std::thread([this] { harvester_loop(); });
}

Dispatcher::~Dispatcher() { shutdown(); }

std::string Dispatcher::handle(std::string_view line) {
  try {
    const Request request = decode_request(line);
    if (const auto* submit = std::get_if<SubmitRequest>(&request)) {
      return handle_submit(*submit);
    }
    if (const auto* report = std::get_if<ReportRequest>(&request)) {
      return handle_report(*report);
    }
    if (const auto* stats = std::get_if<StatsRequest>(&request)) {
      return handle_stats(*stats);
    }
    shutdown();
    Json::Object object;
    object.emplace("type", Json("shutdown_ok"));
    object.emplace("runs_harvested", Json(static_cast<double>(stats().runs_harvested)));
    return Json(std::move(object)).dump();
  } catch (const RequestError& error) {
    return error_response(error.code(), error.what());
  } catch (const std::exception& error) {
    return error_response(ErrorCode::kInternal, error.what());
  }
}

std::string Dispatcher::handle_submit(const SubmitRequest& request) {
  TenantSession* session = registry_.find(request.tenant);
  if (session == nullptr) {
    throw RequestError(ErrorCode::kUnknownTenant,
                       "tenant '" + request.tenant + "' is not registered");
  }

  // Mesh before admission: the element quota is checked against the meshed
  // size, and a model the codec accepted can still be rejected here without
  // the engine ever seeing it.
  bem::BemModel model = build_model(request.model);
  const std::size_t elements = model.element_count();
  admission_.admit(*session, elements);

  auto record = std::make_shared<RunRecord>();
  record->session = session;
  record->elements = elements;
  record->factor_solve = request.factor_solve;
  try {
    if (request.factor_solve) {
      record->factor_future =
          session->engine().submit_factor(std::move(model), session->study().options());
    } else {
      record->run_future = session->study().submit(std::move(model));
    }
  } catch (...) {
    admission_.retire(*session);
    throw;
  }

  {
    const std::scoped_lock lock(runs_mutex_);
    record->id = next_run_id_++;
    runs_.emplace(record->id, record);
    pending_ids_.insert(record->id);
  }
  runs_cv_.notify_all();
  return submitted_response(record->id, request.tenant, elements);
}

std::string Dispatcher::handle_report(const ReportRequest& request) {
  TenantSession* session = registry_.find(request.tenant);
  if (session == nullptr) {
    throw RequestError(ErrorCode::kUnknownTenant,
                       "tenant '" + request.tenant + "' is not registered");
  }
  std::shared_ptr<RunRecord> record;
  {
    const std::scoped_lock lock(runs_mutex_);
    const auto it = runs_.find(request.run_id);
    if (it != runs_.end()) record = it->second;
  }
  if (record == nullptr) {
    throw RequestError(ErrorCode::kUnknownRun,
                       "run " + std::to_string(request.run_id) + " was never issued");
  }
  if (record->session != session) {
    // A tenant may only observe its own runs — don't even confirm the id.
    throw RequestError(ErrorCode::kForbidden,
                       "run " + std::to_string(request.run_id) + " belongs to another tenant");
  }

  const auto timeout = std::chrono::duration_cast<std::chrono::nanoseconds>(
      milliseconds(request.wait_ms));
  if (!future_terminal(*record, timeout)) {
    RunReport report;
    report.run_id = record->id;
    report.factor_solve = record->factor_solve;
    const engine::RunStatus status = record->factor_solve ? record->factor_future.status()
                                                          : record->run_future.status();
    report.status = status == engine::RunStatus::kQueued ? "queued" : "running";
    return report_response(report);
  }
  harvest(record);
  const std::scoped_lock lock(record->mutex);
  return report_response(record->report);
}

std::string Dispatcher::handle_stats(const StatsRequest& request) {
  if (!request.tenant) {
    const DispatcherStats snapshot = stats();
    Json::Object object;
    object.emplace("type", Json("stats"));
    object.emplace("tenants", Json(static_cast<double>(registry_.sessions().size())));
    object.emplace("pool_threads", Json(static_cast<double>(registry_.pool_threads())));
    object.emplace("admitted", Json(static_cast<double>(snapshot.admission.admitted)));
    object.emplace("rejected", Json(static_cast<double>(snapshot.admission.rejected)));
    object.emplace("global_outstanding",
                   Json(static_cast<double>(snapshot.admission.global_outstanding)));
    object.emplace("global_peak_outstanding",
                   Json(static_cast<double>(snapshot.admission.global_peak_outstanding)));
    object.emplace("runs_harvested", Json(static_cast<double>(snapshot.runs_harvested)));
    object.emplace("shutting_down", Json(snapshot.shutting_down));
    return Json(std::move(object)).dump();
  }

  TenantSession* session = registry_.find(*request.tenant);
  if (session == nullptr) {
    throw RequestError(ErrorCode::kUnknownTenant,
                       "tenant '" + *request.tenant + "' is not registered");
  }
  const AdmissionLedger ledger = admission_.ledger_snapshot(*session);
  const CostAccount& account = session->account();
  const PhaseReport& bill = account.bill();
  const engine::SchedulerStats engine_stats = session->engine().scheduler_stats();

  Json::Object object;
  object.emplace("type", Json("tenant_stats"));
  object.emplace("tenant", Json(session->name()));
  object.emplace("outstanding", Json(static_cast<double>(ledger.outstanding)));
  object.emplace("peak_outstanding", Json(static_cast<double>(ledger.peak_outstanding)));
  object.emplace("runs_completed", Json(static_cast<double>(account.runs_completed())));
  object.emplace("runs_failed", Json(static_cast<double>(account.runs_failed())));
  object.emplace("runs_rejected", Json(static_cast<double>(account.runs_rejected())));
  object.emplace("elements_billed", Json(static_cast<double>(account.elements_billed())));
  object.emplace("assembly_seconds", Json(bill.wall_seconds(Phase::kMatrixGeneration)));
  object.emplace("solve_seconds", Json(bill.wall_seconds(Phase::kLinearSolve)));
  object.emplace("total_seconds", Json(bill.total_wall_seconds()));
  object.emplace("cache_hits", Json(bill.counter(bem::kCacheHitsCounter)));
  object.emplace("cache_misses", Json(bill.counter(bem::kCacheMissesCounter)));
  object.emplace("engine_submitted", Json(static_cast<double>(engine_stats.submitted)));
  object.emplace("engine_peak_outstanding",
                 Json(static_cast<double>(engine_stats.peak_outstanding)));
  return Json(std::move(object)).dump();
}

bool Dispatcher::future_terminal(RunRecord& record, std::chrono::nanoseconds timeout) {
  return record.factor_solve ? record.factor_future.wait_for(timeout)
                             : record.run_future.wait_for(timeout);
}

RunReport Dispatcher::build_report(RunRecord& record) {
  RunReport report;
  report.run_id = record.id;
  report.factor_solve = record.factor_solve;
  report.elements = record.elements;

  const PhaseReport& run_phase = record.factor_solve ? record.factor_future.report()
                                                     : record.run_future.report();
  report.assembly_seconds = run_phase.wall_seconds(Phase::kMatrixGeneration);
  report.solve_seconds = run_phase.wall_seconds(Phase::kLinearSolve);
  report.total_seconds = run_phase.total_wall_seconds();
  report.cache_hits = run_phase.counter(bem::kCacheHitsCounter);
  report.cache_misses = run_phase.counter(bem::kCacheMissesCounter);

  try {
    if (record.factor_solve) {
      // Answer the unit-GPR problem by substitution, then rescale — exactly
      // finish_analysis()'s arithmetic, so both wire paths agree to the
      // last bit modulo the solver route.
      engine::FactoredSystem system = record.factor_future.take();
      std::vector<double> sigma = system.solve();
      const double normalized_current = la::dot(system.rhs(), sigma);
      EBEM_ENSURE(normalized_current > 0.0, "non-positive total leakage current");
      const double gpr = record.session->config().gpr;
      report.equivalent_resistance = 1.0 / normalized_current;
      report.total_current = gpr * normalized_current;
      la::scal(gpr, sigma);
      report.sigma_l2 = std::sqrt(la::dot(sigma, sigma));
    } else {
      const bem::AnalysisResult& result = record.run_future.get();
      report.equivalent_resistance = result.equivalent_resistance;
      report.total_current = result.total_current;
      report.sigma_l2 = std::sqrt(la::dot(result.sigma, result.sigma));
    }
    report.status = "done";
  } catch (const std::exception& error) {
    report.status = "failed";
    report.error = error.what();
  }
  return report;
}

void Dispatcher::harvest(const std::shared_ptr<RunRecord>& record) {
  {
    std::unique_lock lock(record->mutex);
    if (record->harvest == RunRecord::Harvest::kDone) return;
    if (record->harvest == RunRecord::Harvest::kInProgress) {
      record->cv.wait(lock, [&] { return record->harvest == RunRecord::Harvest::kDone; });
      return;
    }
    record->harvest = RunRecord::Harvest::kInProgress;
  }

  // Slow work (a factor+solve harvest runs substitutions) happens with no
  // dispatcher-wide lock held; only this thread owns the claim.
  RunReport report = build_report(*record);
  const bool failed = report.status == "failed";

  {
    const std::scoped_lock lock(record->mutex);
    record->report = std::move(report);
    record->harvest = RunRecord::Harvest::kDone;
  }
  record->cv.notify_all();

  // Bill the run's own PhaseReport — the same numbers the engine's session
  // report received — and release the admission slot last, so "outstanding"
  // can never undercount live work.
  const PhaseReport& run_phase = record->factor_solve ? record->factor_future.report()
                                                      : record->run_future.report();
  record->session->account().bill_run(run_phase, record->elements, failed);
  admission_.retire(*record->session);

  {
    const std::scoped_lock lock(runs_mutex_);
    pending_ids_.erase(record->id);
    ++runs_harvested_;
  }
  runs_cv_.notify_all();
}

void Dispatcher::harvester_loop() {
  std::unique_lock lock(runs_mutex_);
  while (!stop_harvester_) {
    if (pending_ids_.empty()) {
      runs_cv_.wait(lock, [&] { return stop_harvester_ || !pending_ids_.empty(); });
      continue;
    }
    std::vector<std::shared_ptr<RunRecord>> pending;
    pending.reserve(pending_ids_.size());
    for (const std::uint64_t id : pending_ids_) pending.push_back(runs_.at(id));
    lock.unlock();
    for (const std::shared_ptr<RunRecord>& record : pending) {
      if (future_terminal(*record, kHarvestPollInterval)) harvest(record);
    }
    lock.lock();
  }
}

void Dispatcher::shutdown() {
  {
    const std::scoped_lock lock(runs_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  admission_.begin_shutdown();
  // Drain every tenant engine: all submitted runs reach a terminal state.
  for (TenantSession* session : registry_.sessions()) session->engine().drain();
  // Harvest (and bill) whatever the harvester has not claimed yet.
  std::vector<std::shared_ptr<RunRecord>> pending;
  {
    const std::scoped_lock lock(runs_mutex_);
    pending.reserve(pending_ids_.size());
    for (const std::uint64_t id : pending_ids_) pending.push_back(runs_.at(id));
  }
  for (const std::shared_ptr<RunRecord>& record : pending) harvest(record);
  {
    const std::scoped_lock lock(runs_mutex_);
    stop_harvester_ = true;
  }
  runs_cv_.notify_all();
  if (harvester_.joinable()) harvester_.join();
  // A submit that slipped past admission before begin_shutdown() may have
  // landed after the sweep above; bill those stragglers too.
  pending.clear();
  {
    const std::scoped_lock lock(runs_mutex_);
    for (const std::uint64_t id : pending_ids_) pending.push_back(runs_.at(id));
  }
  for (const std::shared_ptr<RunRecord>& record : pending) {
    if (future_terminal(*record, std::chrono::seconds(60))) harvest(record);
  }
}

DispatcherStats Dispatcher::stats() {
  DispatcherStats snapshot;
  snapshot.admission = admission_.stats();
  const std::scoped_lock lock(runs_mutex_);
  snapshot.runs_tracked = runs_.size();
  snapshot.runs_harvested = runs_harvested_;
  snapshot.shutting_down = shut_down_;
  return snapshot;
}

}  // namespace ebem::service

#include "src/service/loopback.hpp"

#include <vector>

namespace ebem::service {

std::string LoopbackClient::call(std::string_view request) {
  std::vector<std::string> responses = feed(std::string(request) + "\n");
  if (responses.size() != 1) {
    // A request containing a raw newline framed into several requests (or
    // none) — the client misused the protocol.
    return error_response(ErrorCode::kMalformedRequest,
                          "request must be exactly one newline-free line");
  }
  return responses.front();
}

std::vector<std::string> LoopbackClient::feed(std::string_view bytes) {
  std::vector<std::string> responses;
  buffer_.append(bytes);
  while (std::optional<std::string> line = buffer_.pop_line()) {
    responses.push_back(dispatcher_->handle(*line));
  }
  if (buffer_.overflowed()) {
    responses.push_back(
        error_response(ErrorCode::kMalformedRequest, "request line exceeds the frame bound"));
  }
  return responses;
}

}  // namespace ebem::service

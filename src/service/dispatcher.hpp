// service::Dispatcher — the transport-agnostic core of the service.
//
// One Dispatcher is the whole server minus the bytes: handle() maps one
// request line to one response line, thread-safe, so any number of
// connection threads (socket server) or in-process callers (loopback) share
// it. Behind handle() sit the TenantRegistry (per-tenant engines + warm
// caches), the AdmissionController (typed rejections in front of every
// submit), a run table of in-flight futures, and a harvester thread that
// watches those futures with deadlines (FutureBase::wait_for), publishes
// each terminal run's RunReport, bills the tenant's CostAccount with the
// run's PhaseReport, and retires the admission slot — billing happens
// whether or not a client ever asks for the report.
//
// shutdown() is graceful and idempotent: stop admitting (typed
// shutting_down rejections), drain every tenant engine, harvest and bill
// everything still in flight, then join the harvester. Reports and stats
// stay answerable after shutdown — the bill outlives the work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>

#include "src/engine/scheduler.hpp"
#include "src/service/admission.hpp"
#include "src/service/codec.hpp"
#include "src/service/tenant.hpp"

namespace ebem::service {

/// The dispatcher-wide picture (server stats endpoint, tests, bench gates).
struct DispatcherStats {
  std::size_t runs_tracked = 0;     ///< submitted runs still remembered
  std::uint64_t runs_harvested = 0;  ///< terminal runs billed and retired
  AdmissionStats admission;
  bool shutting_down = false;
};

class Dispatcher {
 public:
  explicit Dispatcher(const ServiceConfig& config);

  /// Calls shutdown().
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// One request line in, one response line out (no trailing newline).
  /// Never throws: every failure becomes a typed error response. Safe from
  /// any number of threads concurrently.
  [[nodiscard]] std::string handle(std::string_view line);

  /// Graceful stop: reject new submits, drain every tenant engine, harvest
  /// and bill all in-flight runs, join the harvester. Idempotent; stats and
  /// get_report keep answering afterwards.
  void shutdown();

  [[nodiscard]] DispatcherStats stats();

  [[nodiscard]] TenantRegistry& registry() { return registry_; }
  [[nodiscard]] AdmissionController& admission() { return admission_; }

 private:
  /// One submitted run: its future, its identity, and the harvest state
  /// machine. The record-level mutex serializes harvest claiming between
  /// the harvester thread and a waiting get_report — whichever sees the
  /// future turn terminal first does the (possibly slow) harvest work
  /// without holding any dispatcher-wide lock.
  struct RunRecord {
    std::uint64_t id = 0;
    TenantSession* session = nullptr;
    std::size_t elements = 0;
    bool factor_solve = false;
    engine::RunFuture run_future;
    engine::FactorFuture factor_future;

    std::mutex mutex;
    std::condition_variable cv;
    enum class Harvest { kPending, kInProgress, kDone } harvest = Harvest::kPending;
    RunReport report;  ///< published payload, valid once harvest == kDone
  };

  std::string handle_submit(const SubmitRequest& request);
  std::string handle_report(const ReportRequest& request);
  std::string handle_stats(const StatsRequest& request);

  /// True when the record's future is terminal (waiting up to `timeout`).
  static bool future_terminal(RunRecord& record, std::chrono::nanoseconds timeout);

  /// Claim and perform the harvest if still pending; wait for the claimant
  /// otherwise. On return the record's report is published and the run is
  /// billed + retired. Requires the future to be terminal.
  void harvest(const std::shared_ptr<RunRecord>& record);

  /// Build the published RunReport from a terminal future (analysis or
  /// factor+solve flavor) — the only place wire numbers are derived.
  RunReport build_report(RunRecord& record);

  void harvester_loop();

  TenantRegistry registry_;
  AdmissionController admission_;

  std::mutex runs_mutex_;
  std::condition_variable runs_cv_;  ///< new work / shutdown for the harvester
  std::map<std::uint64_t, std::shared_ptr<RunRecord>> runs_;
  std::set<std::uint64_t> pending_ids_;  ///< not yet harvested
  std::uint64_t next_run_id_ = 1;
  std::uint64_t runs_harvested_ = 0;
  bool stop_harvester_ = false;
  bool shut_down_ = false;

  std::thread harvester_;
};

}  // namespace ebem::service

// service::AdmissionController — the decision point in front of every
// Engine::submit.
//
// The engine's own backpressure (ExecutionConfig::max_pending_runs) is
// *blocking*: at the bound, submit parks the submitting thread. A network
// front door must never do that — a tenant at quota gets an immediate,
// typed rejection (the 429 family) while other tenants keep flowing. So the
// controller keeps its own ledgers: per-tenant outstanding counts (admitted
// at submit, retired at harvest — strictly after the run is terminal, which
// is why the engine-level bound can never actually block underneath it), a
// sliding rate window per tenant, and one global outstanding bound shared
// by everyone. Every rejection is tallied on the tenant's CostAccount.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "src/service/codec.hpp"
#include "src/service/tenant.hpp"

namespace ebem::service {

/// The controller-wide picture the stats endpoint reports.
struct AdmissionStats {
  std::size_t global_outstanding = 0;
  std::size_t global_peak_outstanding = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

class AdmissionController {
 public:
  /// `max_global_outstanding` bounds runs outstanding across all tenants
  /// (must be >= 1 — a service that can run nothing is a config error).
  explicit AdmissionController(std::size_t max_global_outstanding);

  /// Admit one run of `elements` meshed elements for this tenant, or throw
  /// RequestError with the first matching typed rejection, in order:
  /// shutting_down, model_too_large, quota_exceeded (at — or with a zero —
  /// outstanding quota), rate_limited, overloaded (global bound). On
  /// success the tenant's and the global outstanding counts are up; the
  /// caller owes a retire() once the run is harvested. Rejections are
  /// recorded on the tenant's account before the throw.
  void admit(TenantSession& session, std::size_t elements);

  /// Release one admitted run (after harvest — the run is terminal and
  /// billed). Balanced with admit() by the dispatcher.
  void retire(TenantSession& session);

  /// Stop admitting: every subsequent admit() throws shutting_down.
  void begin_shutdown();

  [[nodiscard]] AdmissionStats stats() const;

  /// This tenant's ledger under the controller's lock (outstanding / peak).
  [[nodiscard]] AdmissionLedger ledger_snapshot(TenantSession& session) const;

 private:
  [[noreturn]] void reject(TenantSession& session, ErrorCode code, const std::string& message);

  mutable std::mutex mutex_;
  std::size_t max_global_outstanding_;
  std::size_t global_outstanding_ = 0;
  std::size_t global_peak_outstanding_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ebem::service

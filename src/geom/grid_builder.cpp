#include "src/geom/grid_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace ebem::geom {

namespace {

void validate_common(double depth, double radius) {
  EBEM_EXPECT(depth > 0.0, "burial depth must be positive");
  EBEM_EXPECT(radius > 0.0, "conductor radius must be positive");
}

}  // namespace

std::vector<Conductor> make_rect_grid(const RectGridSpec& spec) {
  EBEM_EXPECT(spec.length_x > 0.0 && spec.length_y > 0.0, "grid extents must be positive");
  EBEM_EXPECT(spec.cells_x >= 1 && spec.cells_y >= 1, "need at least one cell per direction");
  validate_common(spec.depth, spec.radius);

  const double dx = spec.length_x / static_cast<double>(spec.cells_x);
  const double dy = spec.length_y / static_cast<double>(spec.cells_y);
  const double z = -spec.depth;
  std::vector<Conductor> grid;
  grid.reserve((spec.cells_x + 1) * spec.cells_y + (spec.cells_y + 1) * spec.cells_x);

  // Bars parallel to x, split at every crossing with a y-parallel bar.
  for (std::size_t j = 0; j <= spec.cells_y; ++j) {
    const double y = static_cast<double>(j) * dy;
    for (std::size_t i = 0; i < spec.cells_x; ++i) {
      const double x0 = static_cast<double>(i) * dx;
      grid.push_back({{x0, y, z}, {x0 + dx, y, z}, spec.radius});
    }
  }
  // Bars parallel to y.
  for (std::size_t i = 0; i <= spec.cells_x; ++i) {
    const double x = static_cast<double>(i) * dx;
    for (std::size_t j = 0; j < spec.cells_y; ++j) {
      const double y0 = static_cast<double>(j) * dy;
      grid.push_back({{x, y0, z}, {x, y0 + dy, z}, spec.radius});
    }
  }
  return grid;
}

std::vector<Conductor> make_triangular_grid(const TriangularGridSpec& spec) {
  EBEM_EXPECT(spec.leg_x > 0.0 && spec.leg_y > 0.0, "triangle legs must be positive");
  EBEM_EXPECT(spec.cells_x >= 1 && spec.cells_y >= 1, "need at least one cell per direction");
  validate_common(spec.depth, spec.radius);

  const double dx = spec.leg_x / static_cast<double>(spec.cells_x);
  const double dy = spec.leg_y / static_cast<double>(spec.cells_y);
  const double z = -spec.depth;
  std::vector<Conductor> grid;

  // A point (x, y) is inside the triangle with vertices (0,0), (leg_x,0),
  // (0,leg_y) iff x/leg_x + y/leg_y <= 1.
  const auto inside = [&](double x, double y) {
    return x / spec.leg_x + y / spec.leg_y <= 1.0 + 1e-9;
  };
  // Clip parameter of the hypotenuse along an x-parallel bar at height y.
  const auto hyp_x = [&](double y) { return spec.leg_x * (1.0 - y / spec.leg_y); };
  const auto hyp_y = [&](double x) { return spec.leg_y * (1.0 - x / spec.leg_x); };

  // x-parallel bars, clipped by the hypotenuse.
  for (std::size_t j = 0; j <= spec.cells_y; ++j) {
    const double y = static_cast<double>(j) * dy;
    for (std::size_t i = 0; i < spec.cells_x; ++i) {
      const double x0 = static_cast<double>(i) * dx;
      const double x1 = x0 + dx;
      if (!inside(x0, y)) break;
      const double x_end = inside(x1, y) ? x1 : hyp_x(y);
      if (x_end - x0 > 1e-9) grid.push_back({{x0, y, z}, {x_end, y, z}, spec.radius});
    }
  }
  // y-parallel bars, clipped by the hypotenuse.
  for (std::size_t i = 0; i <= spec.cells_x; ++i) {
    const double x = static_cast<double>(i) * dx;
    for (std::size_t j = 0; j < spec.cells_y; ++j) {
      const double y0 = static_cast<double>(j) * dy;
      const double y1 = y0 + dy;
      if (!inside(x, y0)) break;
      const double y_end = inside(x, y1) ? y1 : hyp_y(x);
      if (y_end - y0 > 1e-9) grid.push_back({{x, y0, z}, {x, y_end, z}, spec.radius});
    }
  }
  // Hypotenuse perimeter conductor, one segment per x-column so it shares
  // nodes with the clipped bar endpoints.
  for (std::size_t i = 0; i < spec.cells_x; ++i) {
    const double x0 = static_cast<double>(i) * dx;
    const double x1 = x0 + dx;
    grid.push_back({{x0, hyp_y(x0), z}, {x1, hyp_y(x1), z}, spec.radius});
  }
  return grid;
}

std::vector<double> graded_partition(double length, std::size_t cells, double grading) {
  EBEM_EXPECT(length > 0.0, "partition length must be positive");
  EBEM_EXPECT(cells >= 1, "need at least one cell");
  EBEM_EXPECT(grading > 0.0, "grading must be positive");
  // Cell widths grow geometrically from the edges toward the center:
  // w_i proportional to grading^(d_i) with d_i the normalized distance of
  // cell i from the nearer edge (0 at the edge, 1 at the center).
  std::vector<double> widths(cells);
  const double half = std::max((static_cast<double>(cells) - 1.0) / 2.0, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    const double edge_distance =
        static_cast<double>(std::min(i, cells - 1 - i)) / half;
    widths[i] = std::pow(grading, edge_distance);
    total += widths[i];
  }
  std::vector<double> nodes(cells + 1);
  nodes[0] = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    nodes[i + 1] = nodes[i] + widths[i] * length / total;
  }
  nodes[cells] = length;  // kill accumulation error exactly
  return nodes;
}

std::vector<Conductor> make_graded_rect_grid(const GradedRectGridSpec& spec) {
  EBEM_EXPECT(spec.length_x > 0.0 && spec.length_y > 0.0, "grid extents must be positive");
  EBEM_EXPECT(spec.cells_x >= 1 && spec.cells_y >= 1, "need at least one cell per direction");
  validate_common(spec.depth, spec.radius);
  const std::vector<double> xs = graded_partition(spec.length_x, spec.cells_x, spec.grading);
  const std::vector<double> ys = graded_partition(spec.length_y, spec.cells_y, spec.grading);
  const double z = -spec.depth;
  std::vector<Conductor> grid;
  for (double y : ys) {
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      grid.push_back({{xs[i], y, z}, {xs[i + 1], y, z}, spec.radius});
    }
  }
  for (double x : xs) {
    for (std::size_t j = 0; j + 1 < ys.size(); ++j) {
      grid.push_back({{x, ys[j], z}, {x, ys[j + 1], z}, spec.radius});
    }
  }
  return grid;
}

std::vector<Conductor> make_l_shaped_grid(const LShapedGridSpec& spec) {
  EBEM_EXPECT(spec.length_x > 0.0 && spec.length_y > 0.0, "grid extents must be positive");
  EBEM_EXPECT(spec.cut_x > 0.0 && spec.cut_x < spec.length_x, "cut_x must be inside the grid");
  EBEM_EXPECT(spec.cut_y > 0.0 && spec.cut_y < spec.length_y, "cut_y must be inside the grid");
  EBEM_EXPECT(spec.cells_x >= 2 && spec.cells_y >= 2, "need at least two cells per direction");
  validate_common(spec.depth, spec.radius);

  const double dx = spec.length_x / static_cast<double>(spec.cells_x);
  const double dy = spec.length_y / static_cast<double>(spec.cells_y);
  const double z = -spec.depth;
  // A bar piece belongs to the L iff its midpoint is outside the removed
  // (+x, +y) corner rectangle.
  const auto inside = [&](double x, double y) {
    return !(x > spec.length_x - spec.cut_x + 1e-9 && y > spec.length_y - spec.cut_y + 1e-9);
  };
  std::vector<Conductor> grid;
  for (std::size_t j = 0; j <= spec.cells_y; ++j) {
    const double y = static_cast<double>(j) * dy;
    for (std::size_t i = 0; i < spec.cells_x; ++i) {
      const double x0 = static_cast<double>(i) * dx;
      if (inside(x0 + 0.5 * dx, y)) grid.push_back({{x0, y, z}, {x0 + dx, y, z}, spec.radius});
    }
  }
  for (std::size_t i = 0; i <= spec.cells_x; ++i) {
    const double x = static_cast<double>(i) * dx;
    for (std::size_t j = 0; j < spec.cells_y; ++j) {
      const double y0 = static_cast<double>(j) * dy;
      if (inside(x, y0 + 0.5 * dy)) grid.push_back({{x, y0, z}, {x, y0 + dy, z}, spec.radius});
    }
  }
  return grid;
}

void add_rods(std::vector<Conductor>& grid, const std::vector<Vec3>& positions, double depth,
              const RodSpec& rod) {
  EBEM_EXPECT(rod.length > 0.0, "rod length must be positive");
  EBEM_EXPECT(rod.radius > 0.0, "rod radius must be positive");
  validate_common(depth, rod.radius);
  for (const Vec3& p : positions) {
    grid.push_back({{p.x, p.y, -depth}, {p.x, p.y, -(depth + rod.length)}, rod.radius});
  }
}

std::vector<Vec3> perimeter_rod_positions(const RectGridSpec& spec, std::size_t count) {
  EBEM_EXPECT(count >= 1, "need at least one rod");
  // Walk the rectangle perimeter and drop rods at equal arc-length spacing.
  const double perimeter = 2.0 * (spec.length_x + spec.length_y);
  std::vector<Vec3> positions;
  positions.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    double s = perimeter * static_cast<double>(k) / static_cast<double>(count);
    double x = 0.0;
    double y = 0.0;
    if (s < spec.length_x) {
      x = s;
      y = 0.0;
    } else if (s < spec.length_x + spec.length_y) {
      x = spec.length_x;
      y = s - spec.length_x;
    } else if (s < 2.0 * spec.length_x + spec.length_y) {
      x = spec.length_x - (s - spec.length_x - spec.length_y);
      y = spec.length_y;
    } else {
      x = 0.0;
      y = spec.length_y - (s - 2.0 * spec.length_x - spec.length_y);
    }
    positions.push_back({x, y, 0.0});
  }
  return positions;
}

GridStats grid_stats(const std::vector<Conductor>& grid) {
  GridStats stats;
  stats.conductor_count = grid.size();
  stats.total_length = total_length(grid);
  double min_x = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x;
  double max_y = max_x;
  stats.min_z = min_x;
  stats.max_z = max_x;
  for (const Conductor& c : grid) {
    for (const Vec3& p : {c.a, c.b}) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
      stats.min_z = std::min(stats.min_z, p.z);
      stats.max_z = std::max(stats.max_z, p.z);
    }
  }
  if (!grid.empty()) stats.area_bbox = (max_x - min_x) * (max_y - min_y);
  return stats;
}

}  // namespace ebem::geom

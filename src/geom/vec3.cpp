#include "src/geom/vec3.hpp"

#include <ostream>

#include "src/common/error.hpp"

namespace ebem::geom {

Vec3 normalized(Vec3 v) {
  const double n = norm(v);
  EBEM_EXPECT(n > 0.0, "cannot normalize a zero vector");
  return v / n;
}

std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace ebem::geom

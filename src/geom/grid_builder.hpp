// Parametric builders for grounding-grid geometries.
//
// The paper's test cases are real substations (Barberá: a right-triangle
// 143 x 89 m grid of 408 conductor segments; Balaidós: a 107-conductor mesh
// with 67 vertical rods). The exact CAD plans are not published, so these
// builders generate grids from the stated global parameters: outline,
// spacing, burial depth, conductor diameter, rod layout. See DESIGN.md §4.2.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/conductor.hpp"

namespace ebem::geom {

struct RectGridSpec {
  double length_x = 0.0;      ///< grid extent in x [m]
  double length_y = 0.0;      ///< grid extent in y [m]
  std::size_t cells_x = 1;    ///< number of mesh cells along x
  std::size_t cells_y = 1;    ///< number of mesh cells along y
  double depth = 0.8;         ///< burial depth (conductors at z = -depth) [m]
  double radius = 6.0e-3;     ///< conductor radius [m]
};

/// Rectangular mesh grid: (cells_x+1) transversal + (cells_y+1) longitudinal
/// bars, each split at every crossing so conductors meet at shared nodes.
[[nodiscard]] std::vector<Conductor> make_rect_grid(const RectGridSpec& spec);

struct TriangularGridSpec {
  double leg_x = 0.0;       ///< horizontal leg of the right triangle [m]
  double leg_y = 0.0;       ///< vertical leg of the right triangle [m]
  std::size_t cells_x = 1;
  std::size_t cells_y = 1;
  double depth = 0.8;
  double radius = 6.0e-3;
};

/// Right-triangle grid (Barberá-like): a rectangular mesh clipped by the
/// hypotenuse from (leg_x, 0) to (0, leg_y), with the hypotenuse itself laid
/// as a perimeter conductor. Segments are split at all crossings.
[[nodiscard]] std::vector<Conductor> make_triangular_grid(const TriangularGridSpec& spec);

struct GradedRectGridSpec {
  double length_x = 0.0;
  double length_y = 0.0;
  std::size_t cells_x = 1;
  std::size_t cells_y = 1;
  /// Ratio of the central cell width to the edge cell width. > 1 compresses
  /// conductors toward the perimeter — the classical unequal-spacing layout
  /// that evens out the leakage density (edge conductors work hardest) and
  /// trims mesh/touch voltages at equal conductor cost.
  double grading = 1.0;
  double depth = 0.8;
  double radius = 6.0e-3;
};

/// Rectangular grid with geometrically graded spacing (grading = 1 is the
/// uniform grid of make_rect_grid).
[[nodiscard]] std::vector<Conductor> make_graded_rect_grid(const GradedRectGridSpec& spec);

/// The graded 1D partition used by make_graded_rect_grid: `cells + 1` node
/// coordinates over [0, length]. Exposed for tests.
[[nodiscard]] std::vector<double> graded_partition(double length, std::size_t cells,
                                                   double grading);

struct LShapedGridSpec {
  double length_x = 0.0;  ///< overall extent in x
  double length_y = 0.0;  ///< overall extent in y
  double cut_x = 0.0;     ///< cut-out size in x (removed from the +x/+y corner)
  double cut_y = 0.0;     ///< cut-out size in y
  std::size_t cells_x = 1;
  std::size_t cells_y = 1;
  double depth = 0.8;
  double radius = 6.0e-3;
};

/// L-shaped mesh grid: the rectangle minus its (+x, +y) corner rectangle —
/// the other common real-substation footprint besides rectangles and the
/// Barbera-style triangle.
[[nodiscard]] std::vector<Conductor> make_l_shaped_grid(const LShapedGridSpec& spec);

struct RodSpec {
  double length = 1.5;     ///< rod length [m], driven downward from the grid plane
  double radius = 7.0e-3;  ///< rod radius [m]
};

/// Append vertical rods at the given plan positions, starting at z = -depth
/// and extending down to z = -(depth + rod length).
void add_rods(std::vector<Conductor>& grid, const std::vector<Vec3>& positions,
              double depth, const RodSpec& rod);

/// Evenly spaced rod positions along the perimeter nodes of a rectangular
/// grid, the common engineering layout; `count` rods are selected.
[[nodiscard]] std::vector<Vec3> perimeter_rod_positions(const RectGridSpec& spec,
                                                        std::size_t count);

/// Summary statistics used by tests and the grid benches.
struct GridStats {
  std::size_t conductor_count = 0;
  double total_length = 0.0;
  double min_z = 0.0;
  double max_z = 0.0;
  double area_bbox = 0.0;  ///< bounding-box plan area
};

[[nodiscard]] GridStats grid_stats(const std::vector<Conductor>& grid);

}  // namespace ebem::geom

// Boundary-element mesh over a conductor network.
//
// Conductors are subdivided into straight elements; endpoint coordinates are
// deduplicated into shared nodes so a linear (hat-function) Galerkin basis
// can span element boundaries — the paper's "408 linear leakage current
// elements which implies 238 degrees of freedom" relation.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/conductor.hpp"
#include "src/geom/vec3.hpp"

namespace ebem::geom {

/// One straight boundary element (a piece of a conductor axis).
struct MeshElement {
  Vec3 a;
  Vec3 b;
  double radius = 0.0;
  std::size_t node_a = 0;  ///< global node index of endpoint a
  std::size_t node_b = 0;  ///< global node index of endpoint b

  [[nodiscard]] double length() const { return distance(a, b); }
};

struct MeshOptions {
  /// Target element length [m]; every conductor is split into
  /// ceil(length / target) equal elements. 0 keeps one element per conductor.
  double target_element_length = 0.0;
  /// Coordinates closer than this are merged into one node [m].
  double node_merge_tolerance = 1e-6;
};

class Mesh {
 public:
  Mesh() = default;

  /// Build the element mesh from a conductor network.
  static Mesh build(const std::vector<Conductor>& conductors, const MeshOptions& options = {});

  [[nodiscard]] const std::vector<MeshElement>& elements() const { return elements_; }
  [[nodiscard]] const std::vector<Vec3>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t element_count() const { return elements_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Total axial length of all elements.
  [[nodiscard]] double total_length() const;

  /// Shallowest and deepest element z (both negative for buried grids).
  [[nodiscard]] double min_z() const;
  [[nodiscard]] double max_z() const;

 private:
  std::vector<MeshElement> elements_;
  std::vector<Vec3> nodes_;
};

}  // namespace ebem::geom

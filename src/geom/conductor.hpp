// A cylindrical grounding conductor: a bare metal bar between two points.
//
// Real grids are meshes of such conductors — horizontal bars at burial depth
// plus vertical ground rods (paper §1). Conductors are later subdivided into
// boundary elements by the mesh builder.
#pragma once

#include <vector>

#include "src/geom/vec3.hpp"

namespace ebem::geom {

struct Conductor {
  Vec3 a;
  Vec3 b;
  double radius = 0.0;  ///< cylinder radius [m]

  [[nodiscard]] double length() const { return distance(a, b); }
  [[nodiscard]] Vec3 midpoint() const { return 0.5 * (a + b); }
  /// Lateral (dissipating) surface area, 2*pi*r*L.
  [[nodiscard]] double surface_area() const;
};

/// Total axial length of a conductor set.
[[nodiscard]] double total_length(const std::vector<Conductor>& conductors);

}  // namespace ebem::geom

// 3D vector type used throughout the geometry and BEM modules.
//
// Coordinate convention (fixed across the library): z points *up*, the earth
// surface is the plane z = 0, and buried conductors have z < 0.
#pragma once

#include <cmath>
#include <iosfwd>

namespace ebem::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Vec3 operator*(double s, Vec3 v) { return {s * v.x, s * v.y, s * v.z}; }
  friend constexpr Vec3 operator*(Vec3 v, double s) { return s * v; }
  friend constexpr Vec3 operator/(Vec3 v, double s) { return {v.x / s, v.y / s, v.z / s}; }
  Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  friend constexpr bool operator==(Vec3 a, Vec3 b) = default;
};

[[nodiscard]] constexpr double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

[[nodiscard]] constexpr Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

[[nodiscard]] inline double norm(Vec3 v) { return std::sqrt(dot(v, v)); }

[[nodiscard]] inline double distance(Vec3 a, Vec3 b) { return norm(a - b); }

/// Unit vector along v; v must be nonzero.
[[nodiscard]] Vec3 normalized(Vec3 v);

std::ostream& operator<<(std::ostream& os, Vec3 v);

}  // namespace ebem::geom

#include "src/geom/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/common/error.hpp"

namespace ebem::geom {

namespace {

/// Spatial hash that merges nearby coordinates into node indices.
class NodeIndex {
 public:
  explicit NodeIndex(double tolerance) : tol_(tolerance), inv_cell_(1.0 / (4.0 * tolerance)) {}

  std::size_t intern(Vec3 p, std::vector<Vec3>& nodes) {
    // Check the 27 neighbouring hash cells for an existing node within
    // tolerance (a point near a cell border may have been binned next door).
    const long cx = cell(p.x);
    const long cy = cell(p.y);
    const long cz = cell(p.z);
    for (long ix = cx - 1; ix <= cx + 1; ++ix) {
      for (long iy = cy - 1; iy <= cy + 1; ++iy) {
        for (long iz = cz - 1; iz <= cz + 1; ++iz) {
          const auto it = map_.find(key(ix, iy, iz));
          if (it == map_.end()) continue;
          for (const std::size_t idx : it->second) {
            if (distance(nodes[idx], p) <= tol_) return idx;
          }
        }
      }
    }
    const std::size_t idx = nodes.size();
    nodes.push_back(p);
    map_[key(cx, cy, cz)].push_back(idx);
    return idx;
  }

 private:
  [[nodiscard]] long cell(double v) const { return static_cast<long>(std::floor(v * inv_cell_)); }
  [[nodiscard]] static std::uint64_t key(long x, long y, long z) {
    // Pack three 21-bit signed cells; fine for any realistic substation.
    const auto u = [](long v) { return static_cast<std::uint64_t>(v + (1L << 20)) & 0x1FFFFF; };
    return (u(x) << 42) | (u(y) << 21) | u(z);
  }

  double tol_;
  double inv_cell_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> map_;
};

}  // namespace

Mesh Mesh::build(const std::vector<Conductor>& conductors, const MeshOptions& options) {
  EBEM_EXPECT(!conductors.empty(), "cannot mesh an empty conductor set");
  EBEM_EXPECT(options.node_merge_tolerance > 0.0, "node merge tolerance must be positive");
  Mesh mesh;
  NodeIndex index(options.node_merge_tolerance);

  for (const Conductor& c : conductors) {
    const double length = c.length();
    EBEM_EXPECT(length > options.node_merge_tolerance, "degenerate conductor (zero length)");
    std::size_t pieces = 1;
    if (options.target_element_length > 0.0) {
      pieces = static_cast<std::size_t>(std::ceil(length / options.target_element_length));
      pieces = std::max<std::size_t>(pieces, 1);
    }
    const Vec3 step = (c.b - c.a) / static_cast<double>(pieces);
    Vec3 start = c.a;
    for (std::size_t k = 0; k < pieces; ++k) {
      // Compute the endpoint from the conductor ends to avoid drift.
      const Vec3 end = (k + 1 == pieces) ? c.b : c.a + static_cast<double>(k + 1) * step;
      MeshElement element;
      element.a = start;
      element.b = end;
      element.radius = c.radius;
      element.node_a = index.intern(start, mesh.nodes_);
      element.node_b = index.intern(end, mesh.nodes_);
      EBEM_ENSURE(element.node_a != element.node_b, "element endpoints merged to one node");
      mesh.elements_.push_back(element);
      start = end;
    }
  }
  return mesh;
}

double Mesh::total_length() const {
  double sum = 0.0;
  for (const MeshElement& e : elements_) sum += e.length();
  return sum;
}

double Mesh::min_z() const {
  double v = std::numeric_limits<double>::max();
  for (const MeshElement& e : elements_) v = std::min({v, e.a.z, e.b.z});
  return v;
}

double Mesh::max_z() const {
  double v = std::numeric_limits<double>::lowest();
  for (const MeshElement& e : elements_) v = std::max({v, e.a.z, e.b.z});
  return v;
}

}  // namespace ebem::geom

#include "src/geom/conductor.hpp"

#include "src/common/math_utils.hpp"

namespace ebem::geom {

double Conductor::surface_area() const { return 2.0 * kPi * radius * length(); }

double total_length(const std::vector<Conductor>& conductors) {
  double sum = 0.0;
  for (const Conductor& c : conductors) sum += c.length();
  return sum;
}

}  // namespace ebem::geom

// parallel_for with OpenMP schedule semantics over a persistent thread pool.
//
// This is the loop engine the assembly and post-processing stages use; the
// schedule vocabulary matches the paper's Table 6.2 study exactly.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "src/parallel/schedule.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::par {

/// Half-open iteration chunk [begin, end).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

/// The chunks a static schedule assigns to `thread_id`, in execution order.
/// Exposed for testing and for the schedule simulator (the simulator must
/// partition identically to the real executor).
[[nodiscard]] std::vector<ChunkRange> static_chunks_for_thread(std::size_t n,
                                                               std::size_t num_threads,
                                                               std::size_t thread_id,
                                                               std::size_t chunk);

/// Next guided chunk size given remaining iterations (OpenMP rule:
/// remaining / num_threads, floored at the minimum chunk, >= 1).
[[nodiscard]] std::size_t guided_chunk_size(std::size_t remaining, std::size_t num_threads,
                                            std::size_t min_chunk);

/// Run body(i) for i in [0, n) on `pool` under `schedule`.
void parallel_for(ThreadPool& pool, std::size_t n, const Schedule& schedule,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(range, thread_id) receives whole chunks, which lets
/// callers keep per-thread scratch state without false sharing.
void parallel_for_chunks(ThreadPool& pool, std::size_t n, const Schedule& schedule,
                         const std::function<void(ChunkRange, std::size_t)>& body);

/// Convenience: one-shot pool of `num_threads`.
void parallel_for(std::size_t num_threads, std::size_t n, const Schedule& schedule,
                  const std::function<void(std::size_t)>& body);

}  // namespace ebem::par

// parallel_for with OpenMP schedule semantics over a persistent thread pool.
//
// This is the loop engine the assembly, solver and post-processing stages
// use; the schedule vocabulary matches the paper's Table 6.2 study exactly.
// The body parameter is a template so per-iteration dispatch inlines — the
// assembly triangle loop runs millions of tiny bodies and a std::function
// call per iteration is measurable overhead there.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/parallel/schedule.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::par {

/// Half-open iteration chunk [begin, end).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

/// The chunks a static schedule assigns to `thread_id`, in execution order.
/// Exposed for testing and for the schedule simulator (the simulator must
/// partition identically to the real executor).
[[nodiscard]] std::vector<ChunkRange> static_chunks_for_thread(std::size_t n,
                                                               std::size_t num_threads,
                                                               std::size_t thread_id,
                                                               std::size_t chunk);

/// Next guided chunk size given remaining iterations (OpenMP rule:
/// remaining / num_threads, floored at the minimum chunk, >= 1).
[[nodiscard]] std::size_t guided_chunk_size(std::size_t remaining, std::size_t num_threads,
                                            std::size_t min_chunk);

[[noreturn]] void unhandled_schedule_kind();

/// Chunked variant: body(range, thread_id) receives whole chunks, which lets
/// callers keep per-thread scratch state without false sharing.
template <typename Body>  // void(ChunkRange, std::size_t thread_id)
void parallel_for_chunks(ThreadPool& pool, std::size_t n, const Schedule& schedule, Body&& body) {
  const std::size_t num_threads = pool.num_threads();
  if (n == 0) return;

  switch (schedule.kind) {
    case ScheduleKind::kStatic: {
      pool.run([&](std::size_t tid) {
        for (const ChunkRange& range :
             static_chunks_for_thread(n, num_threads, tid, schedule.chunk)) {
          body(range, tid);
        }
      });
      return;
    }
    case ScheduleKind::kDynamic: {
      const std::size_t chunk = std::max<std::size_t>(schedule.chunk, 1);
      std::atomic<std::size_t> next{0};
      pool.run([&](std::size_t tid) {
        for (;;) {
          const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) return;
          body({begin, std::min(begin + chunk, n)}, tid);
        }
      });
      return;
    }
    case ScheduleKind::kGuided: {
      const std::size_t min_chunk = std::max<std::size_t>(schedule.chunk, 1);
      std::atomic<std::size_t> next{0};
      pool.run([&](std::size_t tid) {
        for (;;) {
          // Reserve a chunk sized from the *current* remaining count. The
          // reservation races benignly: a stale `remaining` only changes the
          // chunk size, never correctness, because fetch_add hands out
          // disjoint ranges.
          const std::size_t seen = next.load(std::memory_order_relaxed);
          if (seen >= n) return;
          const std::size_t size = guided_chunk_size(n - seen, num_threads, min_chunk);
          const std::size_t begin = next.fetch_add(size, std::memory_order_relaxed);
          if (begin >= n) return;
          body({begin, std::min(begin + size, n)}, tid);
        }
      });
      return;
    }
  }
  unhandled_schedule_kind();
}

/// Run body(i) for i in [0, n) on `pool` under `schedule`.
template <typename Body>  // void(std::size_t)
void parallel_for(ThreadPool& pool, std::size_t n, const Schedule& schedule, Body&& body) {
  parallel_for_chunks(pool, n, schedule, [&body](ChunkRange range, std::size_t) {
    for (std::size_t i = range.begin; i < range.end; ++i) body(i);
  });
}

/// Convenience: one-shot pool of `num_threads`. Prefer passing a persistent
/// ThreadPool when calling in a loop — pool construction spawns threads.
template <typename Body>
void parallel_for(std::size_t num_threads, std::size_t n, const Schedule& schedule, Body&& body) {
  ThreadPool pool(num_threads);
  parallel_for(pool, n, schedule, std::forward<Body>(body));
}

}  // namespace ebem::par

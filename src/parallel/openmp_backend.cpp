#include "src/parallel/openmp_backend.hpp"

#ifdef EBEM_HAS_OPENMP
#include <omp.h>
#endif

#include "src/common/error.hpp"

namespace ebem::par {

#ifdef EBEM_HAS_OPENMP

bool openmp_available() { return true; }

void openmp_parallel_for(std::size_t num_threads, std::size_t n, const Schedule& schedule,
                         const std::function<void(std::size_t)>& body) {
  EBEM_EXPECT(num_threads >= 1, "need at least one thread");
  omp_sched_t kind = omp_sched_dynamic;
  switch (schedule.kind) {
    case ScheduleKind::kStatic:
      kind = omp_sched_static;
      break;
    case ScheduleKind::kDynamic:
      kind = omp_sched_dynamic;
      break;
    case ScheduleKind::kGuided:
      kind = omp_sched_guided;
      break;
  }
  // chunk 0 selects the OpenMP default for the kind, as in our Schedule.
  omp_set_schedule(kind, static_cast<int>(schedule.chunk));

  const auto count = static_cast<long long>(n);
#pragma omp parallel for schedule(runtime) num_threads(static_cast<int>(num_threads))
  for (long long i = 0; i < count; ++i) {
    body(static_cast<std::size_t>(i));
  }
}

#else  // !EBEM_HAS_OPENMP

bool openmp_available() { return false; }

void openmp_parallel_for(std::size_t num_threads, std::size_t n, const Schedule& /*schedule*/,
                         const std::function<void(std::size_t)>& body) {
  EBEM_EXPECT(num_threads >= 1, "need at least one thread");
  for (std::size_t i = 0; i < n; ++i) body(i);
}

#endif

}  // namespace ebem::par

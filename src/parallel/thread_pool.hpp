// A minimal fork-join thread pool.
//
// The pool runs one "parallel region" at a time: run() hands every worker
// the same callable with its thread id, mirroring an OpenMP parallel region.
// Workers persist across regions to avoid thread create/join overhead in
// repeated assembly benchmarks.
//
// run() is safe to call from several threads at once: concurrent regions are
// serialized in arrival order behind an internal mutex, never interleaved.
// This is what lets the engine::Scheduler's stage executors share one pool —
// while executor A's region (say, candidate k's trailing update) occupies
// the workers, executor B runs the serial parts of its own stage and queues
// its next region; regions themselves never overlap, so every parallel_for
// keeps its single-region semantics (and its determinism guarantees).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ebem::par {

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (>= 1). The calling thread
  /// participates as thread 0, so only num_threads - 1 workers are spawned.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Execute `body(thread_id)` on every thread (ids 0..num_threads-1) and
  /// wait for all of them. Exceptions thrown by workers are rethrown on the
  /// calling thread (first one wins). Thread-safe: concurrent callers take
  /// turns — each region runs exclusively. Do not call run() from inside a
  /// region body (the nested region would wait on itself).
  void run(const std::function<void(std::size_t)>& body);

 private:
  void worker_loop(std::size_t thread_id);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes whole regions across concurrent run() callers; held for the
  /// full fork-to-join span so a region's workers only ever see one body.
  std::mutex region_mutex_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;
};

/// Hardware concurrency, never reporting less than 1.
[[nodiscard]] std::size_t hardware_threads();

}  // namespace ebem::par

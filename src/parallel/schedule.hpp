// Loop-scheduling policy vocabulary, mirroring the OpenMP `schedule` clause
// the paper studies in Table 6.2 (static / dynamic / guided, each with an
// optional chunk parameter).
#pragma once

#include <cstddef>
#include <string>

namespace ebem::par {

enum class ScheduleKind {
  kStatic,   ///< iterations pre-partitioned into round-robin chunks
  kDynamic,  ///< threads grab the next chunk as they finish one
  kGuided,   ///< dynamic with exponentially decreasing chunk sizes
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::kDynamic;
  /// Chunk size; 0 selects the OpenMP default (static: even block split,
  /// dynamic: 1, guided: minimum chunk of 1).
  std::size_t chunk = 1;

  [[nodiscard]] static Schedule static_chunked(std::size_t chunk) {
    return {ScheduleKind::kStatic, chunk};
  }
  [[nodiscard]] static Schedule static_blocked() { return {ScheduleKind::kStatic, 0}; }
  [[nodiscard]] static Schedule dynamic(std::size_t chunk = 1) {
    return {ScheduleKind::kDynamic, chunk};
  }
  [[nodiscard]] static Schedule guided(std::size_t chunk = 1) {
    return {ScheduleKind::kGuided, chunk};
  }
};

/// "Dynamic,1"-style label matching the paper's Table 6.2 rows.
[[nodiscard]] std::string to_string(const Schedule& schedule);

}  // namespace ebem::par

#include "src/parallel/parallel_for.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ebem::par {

std::vector<ChunkRange> static_chunks_for_thread(std::size_t n, std::size_t num_threads,
                                                 std::size_t thread_id, std::size_t chunk) {
  EBEM_EXPECT(num_threads >= 1, "need at least one thread");
  EBEM_EXPECT(thread_id < num_threads, "thread id out of range");
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (chunk == 0) {
    // OpenMP default static: one contiguous block per thread, sizes as even
    // as possible (first n % p threads get one extra iteration).
    const std::size_t base = n / num_threads;
    const std::size_t extra = n % num_threads;
    const std::size_t size = base + (thread_id < extra ? 1 : 0);
    if (size == 0) return chunks;
    const std::size_t begin =
        thread_id * base + std::min<std::size_t>(thread_id, extra);
    chunks.push_back({begin, begin + size});
    return chunks;
  }
  // Chunked static: chunks dealt round-robin.
  for (std::size_t start = thread_id * chunk; start < n; start += num_threads * chunk) {
    chunks.push_back({start, std::min(start + chunk, n)});
  }
  return chunks;
}

std::size_t guided_chunk_size(std::size_t remaining, std::size_t num_threads,
                              std::size_t min_chunk) {
  // remaining / (2 p), the classic guided rule (used by the SGI MIPSpro
  // runtime the paper ran on, among others). The plain remaining / p variant
  // hands the first thread half the triangle's cost on linearly decreasing
  // loops and can never reach the paper's measured Guided,1 ~ p speed-ups.
  const std::size_t proportional = remaining / (2 * num_threads);
  return std::max<std::size_t>({proportional, min_chunk, 1});
}

void unhandled_schedule_kind() { EBEM_ENSURE(false, "unhandled schedule kind"); }

}  // namespace ebem::par

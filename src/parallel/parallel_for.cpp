#include "src/parallel/parallel_for.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ebem::par {

std::vector<ChunkRange> static_chunks_for_thread(std::size_t n, std::size_t num_threads,
                                                 std::size_t thread_id, std::size_t chunk) {
  EBEM_EXPECT(num_threads >= 1, "need at least one thread");
  EBEM_EXPECT(thread_id < num_threads, "thread id out of range");
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (chunk == 0) {
    // OpenMP default static: one contiguous block per thread, sizes as even
    // as possible (first n % p threads get one extra iteration).
    const std::size_t base = n / num_threads;
    const std::size_t extra = n % num_threads;
    const std::size_t size = base + (thread_id < extra ? 1 : 0);
    if (size == 0) return chunks;
    const std::size_t begin =
        thread_id * base + std::min<std::size_t>(thread_id, extra);
    chunks.push_back({begin, begin + size});
    return chunks;
  }
  // Chunked static: chunks dealt round-robin.
  for (std::size_t start = thread_id * chunk; start < n; start += num_threads * chunk) {
    chunks.push_back({start, std::min(start + chunk, n)});
  }
  return chunks;
}

std::size_t guided_chunk_size(std::size_t remaining, std::size_t num_threads,
                              std::size_t min_chunk) {
  // remaining / (2 p), the classic guided rule (used by the SGI MIPSpro
  // runtime the paper ran on, among others). The plain remaining / p variant
  // hands the first thread half the triangle's cost on linearly decreasing
  // loops and can never reach the paper's measured Guided,1 ~ p speed-ups.
  const std::size_t proportional = remaining / (2 * num_threads);
  return std::max<std::size_t>({proportional, min_chunk, 1});
}

void parallel_for_chunks(ThreadPool& pool, std::size_t n, const Schedule& schedule,
                         const std::function<void(ChunkRange, std::size_t)>& body) {
  const std::size_t num_threads = pool.num_threads();
  if (n == 0) return;

  switch (schedule.kind) {
    case ScheduleKind::kStatic: {
      pool.run([&](std::size_t tid) {
        for (const ChunkRange& range :
             static_chunks_for_thread(n, num_threads, tid, schedule.chunk)) {
          body(range, tid);
        }
      });
      return;
    }
    case ScheduleKind::kDynamic: {
      const std::size_t chunk = std::max<std::size_t>(schedule.chunk, 1);
      std::atomic<std::size_t> next{0};
      pool.run([&](std::size_t tid) {
        for (;;) {
          const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) return;
          body({begin, std::min(begin + chunk, n)}, tid);
        }
      });
      return;
    }
    case ScheduleKind::kGuided: {
      const std::size_t min_chunk = std::max<std::size_t>(schedule.chunk, 1);
      std::atomic<std::size_t> next{0};
      pool.run([&](std::size_t tid) {
        for (;;) {
          // Reserve a chunk sized from the *current* remaining count. The
          // reservation races benignly: a stale `remaining` only changes the
          // chunk size, never correctness, because fetch_add hands out
          // disjoint ranges.
          const std::size_t seen = next.load(std::memory_order_relaxed);
          if (seen >= n) return;
          const std::size_t size = guided_chunk_size(n - seen, num_threads, min_chunk);
          const std::size_t begin = next.fetch_add(size, std::memory_order_relaxed);
          if (begin >= n) return;
          body({begin, std::min(begin + size, n)}, tid);
        }
      });
      return;
    }
  }
  EBEM_ENSURE(false, "unhandled schedule kind");
}

void parallel_for(ThreadPool& pool, std::size_t n, const Schedule& schedule,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, n, schedule, [&](ChunkRange range, std::size_t) {
    for (std::size_t i = range.begin; i < range.end; ++i) body(i);
  });
}

void parallel_for(std::size_t num_threads, std::size_t n, const Schedule& schedule,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool(num_threads);
  parallel_for(pool, n, schedule, body);
}

}  // namespace ebem::par

// OpenMP execution backend for the schedule vocabulary.
//
// The paper parallelized with OpenMP compiler directives on the SGI Origin
// 2000 (§6.1: portability, clarity, and the loop "is transformable into an
// adequate form so that directives are efficient"). This backend maps our
// Schedule type onto `omp_set_schedule` + `schedule(runtime)` loops so the
// exact same assembly code paths can run under either the portable thread
// pool or a real OpenMP runtime. Compiled to a sequential fallback when
// OpenMP is unavailable.
#pragma once

#include <cstddef>
#include <functional>

#include "src/parallel/schedule.hpp"

namespace ebem::par {

/// True when the library was built against an OpenMP runtime.
[[nodiscard]] bool openmp_available();

/// Run body(i) for i in [0, n) under the given schedule with `num_threads`
/// OpenMP threads. Falls back to a sequential loop without OpenMP.
void openmp_parallel_for(std::size_t num_threads, std::size_t n, const Schedule& schedule,
                         const std::function<void(std::size_t)>& body);

}  // namespace ebem::par

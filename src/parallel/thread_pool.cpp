#include "src/parallel/thread_pool.hpp"

#include "src/common/error.hpp"

namespace ebem::par {

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  EBEM_EXPECT(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t id = 1; id < num_threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& body) {
  // One region at a time: a second caller parks here until the current
  // region's join completes, keeping body_/generation_/remaining_ single-use.
  const std::scoped_lock region(region_mutex_);
  {
    std::scoped_lock lock(mutex_);
    body_ = &body;
    first_exception_ = nullptr;
    remaining_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The calling thread is thread 0.
  try {
    body(0);
  } catch (...) {
    std::scoped_lock lock(mutex_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
  if (first_exception_) std::rethrow_exception(first_exception_);
}

void ThreadPool::worker_loop(std::size_t thread_id) {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || (body_ != nullptr && generation_ != seen_generation); });
      if (stopping_) return;
      seen_generation = generation_;
      body = body_;
    }
    try {
      (*body)(thread_id);
    } catch (...) {
      std::scoped_lock lock(mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    {
      std::scoped_lock lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace ebem::par

#include "src/parallel/schedule.hpp"

namespace ebem::par {

std::string to_string(const Schedule& schedule) {
  std::string name;
  switch (schedule.kind) {
    case ScheduleKind::kStatic:
      name = "Static";
      break;
    case ScheduleKind::kDynamic:
      name = "Dynamic";
      break;
    case ScheduleKind::kGuided:
      name = "Guided";
      break;
  }
  if (schedule.chunk > 0) {
    name += "," + std::to_string(schedule.chunk);
  }
  return name;
}

}  // namespace ebem::par

#include "src/parallel/schedule_sim.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "src/common/error.hpp"
#include "src/parallel/parallel_for.hpp"

namespace ebem::par {

namespace {

double chunk_cost(std::span<const double> costs, ChunkRange range) {
  double sum = 0.0;
  for (std::size_t i = range.begin; i < range.end; ++i) sum += costs[i];
  return sum;
}

SimResult simulate_static(std::span<const double> costs, std::size_t num_threads,
                          std::size_t chunk, const SimOptions& options) {
  SimResult result;
  result.thread_busy_time.assign(num_threads, 0.0);
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    for (const ChunkRange& range :
         static_chunks_for_thread(costs.size(), num_threads, tid, chunk)) {
      result.thread_busy_time[tid] += chunk_cost(costs, range) + options.per_chunk_overhead;
      ++result.chunks_dispatched;
    }
  }
  result.makespan =
      *std::max_element(result.thread_busy_time.begin(), result.thread_busy_time.end());
  return result;
}

/// Greedy list scheduling: the thread that becomes free first takes the next
/// chunk in iteration order — exactly what a dynamic/guided runtime does.
SimResult simulate_greedy(std::span<const double> costs, std::size_t num_threads,
                          const Schedule& schedule, const SimOptions& options) {
  SimResult result;
  result.thread_busy_time.assign(num_threads, 0.0);

  using Entry = std::pair<double, std::size_t>;  // (available time, tid)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (std::size_t tid = 0; tid < num_threads; ++tid) queue.push({0.0, tid});

  const std::size_t n = costs.size();
  const std::size_t min_chunk = std::max<std::size_t>(schedule.chunk, 1);
  std::size_t next = 0;
  while (next < n) {
    const auto [time, tid] = queue.top();
    queue.pop();
    std::size_t size = min_chunk;
    if (schedule.kind == ScheduleKind::kGuided) {
      size = guided_chunk_size(n - next, num_threads, min_chunk);
    }
    const ChunkRange range{next, std::min(next + size, n)};
    next = range.end;
    const double finish = time + chunk_cost(costs, range) + options.per_chunk_overhead;
    result.thread_busy_time[tid] = finish;
    ++result.chunks_dispatched;
    queue.push({finish, tid});
  }
  result.makespan =
      *std::max_element(result.thread_busy_time.begin(), result.thread_busy_time.end());
  return result;
}

}  // namespace

SimResult simulate_schedule(std::span<const double> task_costs, std::size_t num_threads,
                            const Schedule& schedule, const SimOptions& options) {
  EBEM_EXPECT(num_threads >= 1, "need at least one thread");
  if (task_costs.empty()) {
    SimResult result;
    result.thread_busy_time.assign(num_threads, 0.0);
    return result;
  }
  if (schedule.kind == ScheduleKind::kStatic) {
    return simulate_static(task_costs, num_threads, schedule.chunk, options);
  }
  return simulate_greedy(task_costs, num_threads, schedule, options);
}

double simulated_speedup(std::span<const double> task_costs, std::size_t num_threads,
                         const Schedule& schedule, const SimOptions& options) {
  const double sequential =
      std::accumulate(task_costs.begin(), task_costs.end(), 0.0);
  if (sequential == 0.0) return 1.0;
  const SimResult sim = simulate_schedule(task_costs, num_threads, schedule, options);
  return sequential / sim.makespan;
}

std::vector<double> triangular_costs(std::size_t m, double unit) {
  std::vector<double> costs(m);
  for (std::size_t i = 0; i < m; ++i) costs[i] = unit * static_cast<double>(m - i);
  return costs;
}

}  // namespace ebem::par

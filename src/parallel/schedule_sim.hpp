// Deterministic discrete-event simulator of chunked loop scheduling.
//
// Why this exists: the paper measured speed-ups on a 64-processor SGI
// Origin 2000; this build environment exposes a single core, so speed-ups
// beyond 1 are physically unobservable here. The speed-up *shape* in
// Fig. 6.1 and Tables 6.2/6.3, however, is a property of the scheduling
// policy applied to the per-task costs of the triangular assembly loop
// (column i couples elements i..M-1, so costs decrease linearly). Given the
// *measured* sequential per-task costs, this simulator replays the exact
// assignment rules of static/dynamic/guided chunked scheduling and reports
// per-thread makespans for any processor count — which is precisely the
// quantity the paper's tables report, minus machine noise. See DESIGN.md §4.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/parallel/schedule.hpp"

namespace ebem::par {

struct SimOptions {
  /// Fixed cost charged to a thread every time it acquires a chunk; models
  /// the parallel-runtime dispatch overhead that makes fine-grained
  /// schedules lose efficiency at high processor counts.
  double per_chunk_overhead = 0.0;
};

struct SimResult {
  double makespan = 0.0;                  ///< finish time of the slowest thread
  std::vector<double> thread_busy_time;   ///< per-thread total work incl. overhead
  std::size_t chunks_dispatched = 0;
};

/// Simulate executing tasks with the given per-task costs on `num_threads`
/// under `schedule`. Dynamic/guided model the greedy behaviour of the real
/// runtime: the thread with the earliest available time takes the next chunk.
[[nodiscard]] SimResult simulate_schedule(std::span<const double> task_costs,
                                          std::size_t num_threads, const Schedule& schedule,
                                          const SimOptions& options = {});

/// Speed-up of the simulated parallel execution relative to the plain
/// sequential sum of task costs (the paper's reference point).
[[nodiscard]] double simulated_speedup(std::span<const double> task_costs,
                                       std::size_t num_threads, const Schedule& schedule,
                                       const SimOptions& options = {});

/// Per-column costs of the symmetric pair loop: column i of M couples with
/// columns i..M-1, so cost(i) = (M - i) * unit. This is the analytic load
/// profile of the paper's outer loop ("a triangle of M columns, of which the
/// first one has M rows and the last one has 1 row").
[[nodiscard]] std::vector<double> triangular_costs(std::size_t m, double unit = 1.0);

}  // namespace ebem::par

#include "src/io/report_writer.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem::io {

namespace {

/// Lower-snake-case JSON key for a phase name ("Matrix Generation" ->
/// "matrix_generation").
std::string phase_key(Phase phase) {
  std::string key = phase_name(phase);
  for (char& c : key) {
    if (c == ' ') {
      c = '_';
    } else {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return key;
}

}  // namespace

void write_report_json(std::ostream& os, const cad::Report& report) {
  os << std::setprecision(12);
  os << "{\n";
  os << "  \"gpr_volts\": " << report.gpr << ",\n";
  os << "  \"equivalent_resistance_ohm\": " << report.equivalent_resistance << ",\n";
  os << "  \"total_current_amps\": " << report.total_current << ",\n";
  os << "  \"element_count\": " << report.element_count << ",\n";
  os << "  \"dof_count\": " << report.dof_count << ",\n";
  os << "  \"phases_cpu_seconds\": {\n";
  constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto phase = static_cast<Phase>(i);
    os << "    \"" << phase_key(phase) << "\": " << report.phases.cpu_seconds(phase);
    os << (i + 1 < kNumPhases ? ",\n" : "\n");
  }
  os << "  },\n";
  os << "  \"matrix_generation_share\": "
     << report.phases.cpu_fraction(Phase::kMatrixGeneration) << "\n";
  os << "}\n";
}

std::string report_json(const cad::Report& report) {
  std::ostringstream os;
  write_report_json(os, report);
  return os.str();
}

void write_report_json_file(const std::string& path, const cad::Report& report) {
  std::ofstream os(path);
  EBEM_EXPECT(os.good(), "cannot open '" + path + "' for writing");
  write_report_json(os, report);
}

}  // namespace ebem::io

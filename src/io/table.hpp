// Fixed-width table formatter used by the bench harnesses to print rows in
// the same layout as the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ebem::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells are printed as given.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  [[nodiscard]] static std::string num(double value, int precision = 4);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ebem::io

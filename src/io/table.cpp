#include "src/io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EBEM_EXPECT(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EBEM_EXPECT(cells.size() == headers_.size(), "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ebem::io

// CSV writers for analysis results (leakage densities, profiles, grids).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace ebem::io {

/// Write columns as CSV; all columns must share one length.
void write_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<std::span<const double>>& columns);

/// Write columns to a file; throws on I/O failure.
void write_csv_file(const std::string& path, const std::vector<std::string>& headers,
                    const std::vector<std::span<const double>>& columns);

}  // namespace ebem::io

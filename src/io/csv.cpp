#include "src/io/csv.hpp"

#include <fstream>
#include <ostream>

#include "src/common/error.hpp"

namespace ebem::io {

void write_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<std::span<const double>>& columns) {
  EBEM_EXPECT(headers.size() == columns.size(), "header/column count mismatch");
  EBEM_EXPECT(!columns.empty(), "need at least one column");
  const std::size_t rows = columns.front().size();
  for (const auto& column : columns) {
    EBEM_EXPECT(column.size() == rows, "CSV columns must have equal length");
  }
  for (std::size_t c = 0; c < headers.size(); ++c) {
    os << headers[c] << (c + 1 < headers.size() ? ',' : '\n');
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << columns[c][r] << (c + 1 < columns.size() ? ',' : '\n');
    }
  }
}

void write_csv_file(const std::string& path, const std::vector<std::string>& headers,
                    const std::vector<std::span<const double>>& columns) {
  std::ofstream os(path);
  EBEM_EXPECT(os.good(), "cannot open '" + path + "' for writing");
  write_csv(os, headers, columns);
}

}  // namespace ebem::io

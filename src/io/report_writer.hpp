// Machine-readable analysis report (JSON).
//
// The CAD facade produces a Report; downstream tooling (plotting, design
// databases, regression dashboards) consumes it through this writer. The
// emitted JSON is flat and stable: one object with scalar fields plus the
// per-phase timing map.
#pragma once

#include <iosfwd>
#include <string>

#include "src/cad/grounding_system.hpp"

namespace ebem::io {

/// Serialize the report as a single JSON object.
void write_report_json(std::ostream& os, const cad::Report& report);

/// Convenience: to string / to file.
[[nodiscard]] std::string report_json(const cad::Report& report);
void write_report_json_file(const std::string& path, const cad::Report& report);

}  // namespace ebem::io

// Plain-text grid description format (reader/writer).
//
// A minimal CAD exchange format for grounding designs:
//
//   # comment
//   soil uniform <conductivity>
//   soil layer <conductivity> <thickness>       (repeatable; last = infinite)
//   conductor <ax> <ay> <az> <bx> <by> <bz> <radius>
//   rod <x> <y> <depth> <length> <radius>
//
// Used by the examples so designs can be edited without recompiling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/geom/conductor.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::io {

struct GridDescription {
  std::vector<geom::Conductor> conductors;
  std::vector<soil::Layer> soil_layers;

  [[nodiscard]] soil::LayeredSoil soil() const { return soil::LayeredSoil(soil_layers); }
};

/// Parse a grid description; throws ebem::InvalidArgument with a line number
/// on malformed input.
[[nodiscard]] GridDescription read_grid(std::istream& is);
[[nodiscard]] GridDescription read_grid_file(const std::string& path);

void write_grid(std::ostream& os, const GridDescription& description);
void write_grid_file(const std::string& path, const GridDescription& description);

}  // namespace ebem::io

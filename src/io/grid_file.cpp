#include "src/io/grid_file.hpp"

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace ebem::io {

GridDescription read_grid(std::istream& is) {
  GridDescription description;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto fail = [&](const std::string& what) {
      EBEM_EXPECT(false, "grid file line " + std::to_string(line_number) + ": " + what);
    };
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    if (keyword == "soil") {
      std::string kind;
      if (!(ls >> kind)) fail("expected 'uniform' or 'layer' after 'soil'");
      if (kind == "uniform") {
        double conductivity = 0.0;
        if (!(ls >> conductivity)) fail("expected conductivity");
        description.soil_layers.push_back({conductivity, 0.0});
      } else if (kind == "layer") {
        double conductivity = 0.0;
        double thickness = 0.0;
        if (!(ls >> conductivity >> thickness)) fail("expected conductivity and thickness");
        description.soil_layers.push_back({conductivity, thickness});
      } else {
        fail("unknown soil kind '" + kind + "'");
      }
    } else if (keyword == "conductor") {
      geom::Conductor c;
      if (!(ls >> c.a.x >> c.a.y >> c.a.z >> c.b.x >> c.b.y >> c.b.z >> c.radius)) {
        fail("expected 7 numbers after 'conductor'");
      }
      description.conductors.push_back(c);
    } else if (keyword == "rod") {
      double x = 0.0, y = 0.0, depth = 0.0, length = 0.0, radius = 0.0;
      if (!(ls >> x >> y >> depth >> length >> radius)) {
        fail("expected 5 numbers after 'rod'");
      }
      description.conductors.push_back(
          {{x, y, -depth}, {x, y, -(depth + length)}, radius});
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  EBEM_EXPECT(!description.soil_layers.empty(), "grid file declares no soil model");
  EBEM_EXPECT(!description.conductors.empty(), "grid file declares no conductors");
  return description;
}

GridDescription read_grid_file(const std::string& path) {
  std::ifstream is(path);
  EBEM_EXPECT(is.good(), "cannot open grid file '" + path + "'");
  return read_grid(is);
}

void write_grid(std::ostream& os, const GridDescription& description) {
  os << "# EarthBEM grid description\n";
  for (std::size_t i = 0; i < description.soil_layers.size(); ++i) {
    const soil::Layer& layer = description.soil_layers[i];
    if (description.soil_layers.size() == 1) {
      os << "soil uniform " << layer.conductivity << '\n';
    } else {
      os << "soil layer " << layer.conductivity << ' ' << layer.thickness << '\n';
    }
  }
  for (const geom::Conductor& c : description.conductors) {
    os << "conductor " << c.a.x << ' ' << c.a.y << ' ' << c.a.z << ' ' << c.b.x << ' ' << c.b.y
       << ' ' << c.b.z << ' ' << c.radius << '\n';
  }
}

void write_grid_file(const std::string& path, const GridDescription& description) {
  std::ofstream os(path);
  EBEM_EXPECT(os.good(), "cannot open '" + path + "' for writing");
  write_grid(os, description);
}

}  // namespace ebem::io

// Horizontally stratified soil model (paper eq. 2.3).
//
// The soil is a stack of C horizontal layers below the surface z = 0, each
// with a scalar apparent conductivity gamma_c [1/(Ohm m)] and a thickness
// (the last layer extends to z -> -infinity). The paper argues two-layer
// (sometimes three-layer) models suffice for safe designs; the image-series
// kernel covers two layers, and the numerical Hankel kernel covers any C.
#pragma once

#include <cstddef>
#include <vector>

namespace ebem::soil {

struct Layer {
  double conductivity = 0.0;  ///< gamma_c [1/(Ohm m)]
  double thickness = 0.0;     ///< [m]; ignored (infinite) for the last layer
};

class LayeredSoil {
 public:
  /// Uniform (single-layer) soil.
  [[nodiscard]] static LayeredSoil uniform(double conductivity);

  /// Two-layer soil: upper layer of the given thickness over an infinite
  /// lower layer.
  [[nodiscard]] static LayeredSoil two_layer(double upper_conductivity,
                                             double lower_conductivity,
                                             double upper_thickness);

  /// General stack; the last layer's thickness is ignored (infinite).
  explicit LayeredSoil(std::vector<Layer> layers);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t c) const { return layers_[c]; }
  [[nodiscard]] double conductivity(std::size_t c) const { return layers_[c].conductivity; }
  [[nodiscard]] double resistivity(std::size_t c) const { return 1.0 / layers_[c].conductivity; }

  /// Index of the layer containing depth z (z <= 0; the surface belongs to
  /// layer 0). Points below the last interface belong to the last layer.
  [[nodiscard]] std::size_t layer_of(double z) const;

  /// Depth (positive) of the interface between layers c and c+1.
  [[nodiscard]] double interface_depth(std::size_t c) const;

  /// Reflection coefficient kappa = (gamma_1 - gamma_2)/(gamma_1 + gamma_2)
  /// of a two-layer model (paper §3). Requires layer_count() == 2.
  [[nodiscard]] double reflection_coefficient() const;

  [[nodiscard]] bool is_uniform() const { return layers_.size() == 1; }

 private:
  std::vector<Layer> layers_;
  std::vector<double> interface_depths_;  // cumulative, size C-1
};

}  // namespace ebem::soil

#include "src/soil/image_series.hpp"

#include <atomic>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/simd.hpp"

namespace ebem::soil {

namespace {

/// Vectorized core of the image sum: sum_l w_l / sqrt(rho2 + (xz - z_l)^2)
/// with z_l = mirror_l * xiz + offset_l, over the SoA term arrays.
EBEM_SIMD_MULTIVERSION
double image_sum(const double* EBEM_RESTRICT weight, const double* EBEM_RESTRICT mirror,
                 const double* EBEM_RESTRICT offset, std::size_t count, double rho2, double xz,
                 double xiz) {
  double sum = 0.0;
  EBEM_SIMD_LOOP_REDUCE(+ : sum)
  for (std::size_t l = 0; l < count; ++l) {
    const double dz = xz - (mirror[l] * xiz + offset[l]);
    sum += weight[l] / std::sqrt(rho2 + dz * dz);
  }
  return sum;
}

}  // namespace

ImageKernel::ImageKernel(const LayeredSoil& soil, const SeriesOptions& options)
    : soil_(soil), options_(options) {
  static std::atomic<std::uint64_t> next_epoch{1};
  epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
  EBEM_EXPECT(options.tolerance > 0.0 && options.tolerance < 1.0,
              "series tolerance must be in (0, 1)");
  EBEM_EXPECT(options.max_reflections >= 1, "need at least one reflection");
  if (soil_.layer_count() == 1) {
    build_uniform();
  } else if (soil_.layer_count() == 2) {
    build_two_layer();
  } else {
    EBEM_EXPECT(false,
                "image-series kernel supports 1 or 2 layers; use HankelKernel for deeper stacks");
  }
  build_soa();
}

void ImageKernel::build_soa() {
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 2; ++c) {
      TermSoA& soa = soa_[b][c];
      soa.weight.reserve(terms_[b][c].size());
      soa.mirror.reserve(terms_[b][c].size());
      soa.offset.reserve(terms_[b][c].size());
      for (const ImageTerm& term : terms_[b][c]) {
        soa.weight.push_back(term.weight);
        soa.mirror.push_back(term.mirror);
        soa.offset.push_back(term.offset);
      }
    }
  }
}

void ImageKernel::build_uniform() {
  // Classical half-space result: the source plus its mirror across the
  // insulating surface ("the series are reduced to only two summands").
  terms_[0][0] = {{1.0, 1.0, 0.0}, {1.0, -1.0, 0.0}};
}

std::size_t ImageKernel::reflections_needed() const {
  const double kappa = std::abs(soil_.reflection_coefficient());
  if (kappa == 0.0) return 0;
  // Smallest n with kappa^n < tolerance.
  const double n = std::log(options_.tolerance) / std::log(kappa);
  const auto needed = static_cast<std::size_t>(std::ceil(std::max(n, 0.0)));
  return std::min(needed, options_.max_reflections);
}

void ImageKernel::build_two_layer() {
  const double kappa = soil_.reflection_coefficient();
  const double h = soil_.interface_depth(0);  // upper-layer thickness H
  const std::size_t n_max = reflections_needed();

  // b=0, c=0 (source and field in the upper layer).
  {
    auto& t = terms_[0][0];
    t.push_back({1.0, 1.0, 0.0});   // primary
    t.push_back({1.0, -1.0, 0.0});  // surface mirror
    double w = 1.0;
    for (std::size_t n = 1; n <= n_max; ++n) {
      w *= kappa;
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, off});
      t.push_back({w, -1.0, off});
      t.push_back({w, 1.0, -off});
      t.push_back({w, -1.0, -off});
    }
  }
  // b=0, c=1 (source above the interface, field below).
  {
    auto& t = terms_[0][1];
    double w = 1.0 + kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, off});
      t.push_back({w, -1.0, off});
      w *= kappa;
    }
  }
  // b=1, c=0 (source below the interface, field above).
  {
    auto& t = terms_[1][0];
    double w = 1.0 - kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, -off});
      t.push_back({w, -1.0, off});
      w *= kappa;
    }
  }
  // b=1, c=1 (source and field in the lower layer).
  {
    auto& t = terms_[1][1];
    t.push_back({1.0, 1.0, 0.0});                // primary
    t.push_back({-kappa, -1.0, -2.0 * h});       // mirror across the interface
    double w = 1.0 - kappa * kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      t.push_back({w, -1.0, 2.0 * static_cast<double>(n) * h});
      w *= kappa;
    }
  }
}

const std::vector<ImageTerm>& ImageKernel::terms(std::size_t b, std::size_t c) const {
  EBEM_EXPECT(b < soil_.layer_count() && c < soil_.layer_count(), "layer index out of range");
  return terms_[b][c];
}

double ImageKernel::prefactor(std::size_t b) const {
  return 1.0 / (4.0 * kPi * soil_.conductivity(b));
}

double ImageKernel::evaluate(geom::Vec3 x, geom::Vec3 xi) const {
  return evaluate_regularized(x, xi, 0.0);
}

double ImageKernel::evaluate_regularized(geom::Vec3 x, geom::Vec3 xi, double radius) const {
  const std::size_t b = soil_.layer_of(xi.z);
  const std::size_t c = soil_.layer_of(x.z);
  const double rho2 = square(x.x - xi.x) + square(x.y - xi.y) + square(radius);
  const TermSoA& soa = soa_[b][c];
  return prefactor(b) *
         image_sum(soa.weight.data(), soa.mirror.data(), soa.offset.data(), soa.weight.size(),
                   rho2, x.z, xi.z);
}

void ImageKernel::evaluate_regularized_batch(geom::Vec3 x, const geom::Vec3* xi,
                                             std::size_t count, double radius,
                                             double* out) const {
  const std::size_t c = soil_.layer_of(x.z);
  const double radius2 = square(radius);
  for (std::size_t k = 0; k < count; ++k) {
    // Per-source layer lookup on purpose: an inner quadrature's nodes all
    // lie on one element, but nothing in the interface promises that.
    const std::size_t b = soil_.layer_of(xi[k].z);
    const double rho2 = square(x.x - xi[k].x) + square(x.y - xi[k].y) + radius2;
    const TermSoA& soa = soa_[b][c];
    out[k] = prefactor(b) *
             image_sum(soa.weight.data(), soa.mirror.data(), soa.offset.data(),
                       soa.weight.size(), rho2, x.z, xi[k].z);
  }
}

}  // namespace ebem::soil

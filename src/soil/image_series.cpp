#include "src/soil/image_series.hpp"

#include <atomic>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"

namespace ebem::soil {

ImageKernel::ImageKernel(const LayeredSoil& soil, const SeriesOptions& options)
    : soil_(soil), options_(options) {
  static std::atomic<std::uint64_t> next_epoch{1};
  epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
  EBEM_EXPECT(options.tolerance > 0.0 && options.tolerance < 1.0,
              "series tolerance must be in (0, 1)");
  EBEM_EXPECT(options.max_reflections >= 1, "need at least one reflection");
  if (soil_.layer_count() == 1) {
    build_uniform();
  } else if (soil_.layer_count() == 2) {
    build_two_layer();
  } else {
    EBEM_EXPECT(false,
                "image-series kernel supports 1 or 2 layers; use HankelKernel for deeper stacks");
  }
}

void ImageKernel::build_uniform() {
  // Classical half-space result: the source plus its mirror across the
  // insulating surface ("the series are reduced to only two summands").
  terms_[0][0] = {{1.0, 1.0, 0.0}, {1.0, -1.0, 0.0}};
}

std::size_t ImageKernel::reflections_needed() const {
  const double kappa = std::abs(soil_.reflection_coefficient());
  if (kappa == 0.0) return 0;
  // Smallest n with kappa^n < tolerance.
  const double n = std::log(options_.tolerance) / std::log(kappa);
  const auto needed = static_cast<std::size_t>(std::ceil(std::max(n, 0.0)));
  return std::min(needed, options_.max_reflections);
}

void ImageKernel::build_two_layer() {
  const double kappa = soil_.reflection_coefficient();
  const double h = soil_.interface_depth(0);  // upper-layer thickness H
  const std::size_t n_max = reflections_needed();

  // b=0, c=0 (source and field in the upper layer).
  {
    auto& t = terms_[0][0];
    t.push_back({1.0, 1.0, 0.0});   // primary
    t.push_back({1.0, -1.0, 0.0});  // surface mirror
    double w = 1.0;
    for (std::size_t n = 1; n <= n_max; ++n) {
      w *= kappa;
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, off});
      t.push_back({w, -1.0, off});
      t.push_back({w, 1.0, -off});
      t.push_back({w, -1.0, -off});
    }
  }
  // b=0, c=1 (source above the interface, field below).
  {
    auto& t = terms_[0][1];
    double w = 1.0 + kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, off});
      t.push_back({w, -1.0, off});
      w *= kappa;
    }
  }
  // b=1, c=0 (source below the interface, field above).
  {
    auto& t = terms_[1][0];
    double w = 1.0 - kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      const double off = 2.0 * static_cast<double>(n) * h;
      t.push_back({w, 1.0, -off});
      t.push_back({w, -1.0, off});
      w *= kappa;
    }
  }
  // b=1, c=1 (source and field in the lower layer).
  {
    auto& t = terms_[1][1];
    t.push_back({1.0, 1.0, 0.0});                // primary
    t.push_back({-kappa, -1.0, -2.0 * h});       // mirror across the interface
    double w = 1.0 - kappa * kappa;
    for (std::size_t n = 0; n <= n_max; ++n) {
      t.push_back({w, -1.0, 2.0 * static_cast<double>(n) * h});
      w *= kappa;
    }
  }
}

const std::vector<ImageTerm>& ImageKernel::terms(std::size_t b, std::size_t c) const {
  EBEM_EXPECT(b < soil_.layer_count() && c < soil_.layer_count(), "layer index out of range");
  return terms_[b][c];
}

double ImageKernel::prefactor(std::size_t b) const {
  return 1.0 / (4.0 * kPi * soil_.conductivity(b));
}

double ImageKernel::evaluate(geom::Vec3 x, geom::Vec3 xi) const {
  return evaluate_regularized(x, xi, 0.0);
}

double ImageKernel::evaluate_regularized(geom::Vec3 x, geom::Vec3 xi, double radius) const {
  const std::size_t b = soil_.layer_of(xi.z);
  const std::size_t c = soil_.layer_of(x.z);
  const double rho2 = square(x.x - xi.x) + square(x.y - xi.y) + square(radius);
  double sum = 0.0;
  for (const ImageTerm& term : terms(b, c)) {
    const double z_image = term.mirror * xi.z + term.offset;
    sum += term.weight / std::sqrt(rho2 + square(x.z - z_image));
  }
  return prefactor(b) * sum;
}

}  // namespace ebem::soil

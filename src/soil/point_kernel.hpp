// Abstract point Green's function interface.
//
// The BEM integrator consumes kernels through this interface so the fast
// two-layer image series and the general C-layer Hankel kernel are
// interchangeable: grids in 1-2 layer soils assemble with closed-form inner
// integrals over images, deeper stacks fall back to generic quadrature of
// the (much more expensive) spectral kernel — mirroring the paper's remark
// that three-and-more-layer models push CPU time "up to un-admissible
// levels" (§4.2).
#pragma once

#include <cstddef>

#include "src/geom/vec3.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::soil {

class PointKernel {
 public:
  virtual ~PointKernel() = default;

  /// Potential at x per unit point current at xi, thin-wire regularized
  /// (r -> sqrt(r^2 + radius^2)), including the 1/(4 pi gamma_b) prefactor.
  [[nodiscard]] virtual double evaluate_regularized(geom::Vec3 x, geom::Vec3 xi,
                                                    double radius) const = 0;

  /// Batched variant for the integrator's inner quadrature: potentials at x
  /// of the point sources xi[0..count), one shared regularization radius,
  /// out[k] = evaluate_regularized(x, xi[k], radius). The default is the
  /// plain loop; kernels with vectorizable structure (the image series)
  /// override it with a structure-of-arrays sweep.
  virtual void evaluate_regularized_batch(geom::Vec3 x, const geom::Vec3* xi, std::size_t count,
                                          double radius, double* out) const {
    for (std::size_t k = 0; k < count; ++k) out[k] = evaluate_regularized(x, xi[k], radius);
  }

  [[nodiscard]] virtual const LayeredSoil& soil_model() const = 0;
};

}  // namespace ebem::soil

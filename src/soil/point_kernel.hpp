// Abstract point Green's function interface.
//
// The BEM integrator consumes kernels through this interface so the fast
// two-layer image series and the general C-layer Hankel kernel are
// interchangeable: grids in 1-2 layer soils assemble with closed-form inner
// integrals over images, deeper stacks fall back to generic quadrature of
// the (much more expensive) spectral kernel — mirroring the paper's remark
// that three-and-more-layer models push CPU time "up to un-admissible
// levels" (§4.2).
#pragma once

#include "src/geom/vec3.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::soil {

class PointKernel {
 public:
  virtual ~PointKernel() = default;

  /// Potential at x per unit point current at xi, thin-wire regularized
  /// (r -> sqrt(r^2 + radius^2)), including the 1/(4 pi gamma_b) prefactor.
  [[nodiscard]] virtual double evaluate_regularized(geom::Vec3 x, geom::Vec3 xi,
                                                    double radius) const = 0;

  [[nodiscard]] virtual const LayeredSoil& soil_model() const = 0;
};

}  // namespace ebem::soil

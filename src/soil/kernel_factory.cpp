#include "src/soil/kernel_factory.hpp"

namespace ebem::soil {

std::unique_ptr<PointKernel> make_kernel(const LayeredSoil& soil, const SeriesOptions& series,
                                         const HankelOptions& hankel) {
  if (soil.layer_count() <= 2) {
    return std::make_unique<ImageKernel>(soil, series);
  }
  return std::make_unique<HankelKernel>(soil, hankel);
}

}  // namespace ebem::soil

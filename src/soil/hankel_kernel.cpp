#include "src/soil/hankel_kernel.hpp"

#include <algorithm>
#include <functional>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/la/dense_matrix.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::soil {

namespace {
constexpr double kInfiniteDepth = std::numeric_limits<double>::infinity();
}

HankelKernel::HankelKernel(const LayeredSoil& soil, const HankelOptions& options)
    : soil_(soil), options_(options) {
  EBEM_EXPECT(options.tolerance > 0.0, "tolerance must be positive");
  EBEM_EXPECT(options.lambda_cut > 0.0, "lambda cut must be positive");
  const std::size_t c_count = soil_.layer_count();
  tops_.resize(c_count);
  bottoms_.resize(c_count);
  double depth = 0.0;
  for (std::size_t c = 0; c < c_count; ++c) {
    tops_[c] = depth;
    if (c + 1 < c_count) {
      depth = soil_.interface_depth(c);
      bottoms_[c] = depth;
    } else {
      bottoms_[c] = kInfiniteDepth;
    }
  }
}

double HankelKernel::spectral_coefficient(double lambda, double z_source,
                                          std::size_t source_layer, double z_field,
                                          std::size_t field_layer) const {
  const std::size_t c_count = soil_.layer_count();
  const std::size_t n = 2 * c_count - 1;  // up_c for all layers, dn_c for all but last

  // Unknown layout: up_c at 2c, dn_c at 2c+1 (last layer has no dn).
  const auto up_index = [](std::size_t c) { return 2 * c; };
  const auto dn_index = [](std::size_t c) { return 2 * c + 1; };

  // Scaled basis: V_c(z) = up_c e^{lambda (z + top_c)} + dn_c e^{-lambda (z + bottom_c)}
  // keeps every matrix entry in [-1, 1] regardless of lambda (no overflow).
  const auto up_factor = [&](std::size_t c, double z) { return std::exp(lambda * (z + tops_[c])); };
  const auto dn_factor = [&](std::size_t c, double z) {
    return std::exp(-lambda * (z + bottoms_[c]));
  };
  const auto source_term = [&](std::size_t c, double z) {
    return c == source_layer ? std::exp(-lambda * std::abs(z - z_source)) : 0.0;
  };
  // dS/dz divided by lambda.
  const auto source_slope = [&](std::size_t c, double z) {
    if (c != source_layer) return 0.0;
    const double sign = z >= z_source ? -1.0 : 1.0;
    return sign * std::exp(-lambda * std::abs(z - z_source));
  };

  la::DenseMatrix a(n, n);
  std::vector<double> rhs(n, 0.0);
  std::size_t row = 0;

  // Surface Neumann condition at z = 0 (divided by lambda).
  a(row, up_index(0)) = up_factor(0, 0.0);
  if (c_count > 1) a(row, dn_index(0)) = -dn_factor(0, 0.0);
  rhs[row] = -source_slope(0, 0.0);
  ++row;

  // Interface conditions.
  for (std::size_t c = 0; c + 1 < c_count; ++c) {
    const double z = -bottoms_[c];
    const bool next_has_dn = (c + 2 < c_count);
    // Potential continuity: V_c(z) = V_{c+1}(z).
    a(row, up_index(c)) = up_factor(c, z);
    a(row, dn_index(c)) = dn_factor(c, z);
    a(row, up_index(c + 1)) = -up_factor(c + 1, z);
    if (next_has_dn) a(row, dn_index(c + 1)) = -dn_factor(c + 1, z);
    rhs[row] = source_term(c + 1, z) - source_term(c, z);
    ++row;
    // Flux continuity: gamma_c V_c'(z) = gamma_{c+1} V_{c+1}'(z) (over lambda).
    const double g0 = soil_.conductivity(c);
    const double g1 = soil_.conductivity(c + 1);
    a(row, up_index(c)) = g0 * up_factor(c, z);
    a(row, dn_index(c)) = -g0 * dn_factor(c, z);
    a(row, up_index(c + 1)) = -g1 * up_factor(c + 1, z);
    if (next_has_dn) a(row, dn_index(c + 1)) = g1 * dn_factor(c + 1, z);
    rhs[row] = g1 * source_slope(c + 1, z) - g0 * source_slope(c, z);
    ++row;
  }
  EBEM_ENSURE(row == n, "boundary system row count mismatch");

  const std::vector<double> coeffs = la::solve_dense(std::move(a), std::move(rhs));

  double value = coeffs[up_index(field_layer)] * up_factor(field_layer, z_field);
  if (field_layer + 1 < c_count) {
    value += coeffs[dn_index(field_layer)] * dn_factor(field_layer, z_field);
  }
  return value;
}

double HankelKernel::evaluate(geom::Vec3 x, geom::Vec3 xi) const {
  const double rho = std::sqrt(square(x.x - xi.x) + square(x.y - xi.y));
  return evaluate_rho(rho, x.z, xi.z);
}

double HankelKernel::evaluate_regularized(geom::Vec3 x, geom::Vec3 xi, double radius) const {
  const double rho =
      std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(radius));
  return evaluate_rho(rho, x.z, xi.z);
}

double HankelKernel::evaluate_rho(double rho, double z_field, double z_source) const {
  EBEM_EXPECT(z_field <= 0.0 && z_source < 0.0, "points must be at or below the surface");
  const std::size_t b = soil_.layer_of(z_source);
  const std::size_t c = soil_.layer_of(z_field);
  const geom::Vec3 x{rho, 0.0, z_field};
  const geom::Vec3 xi{0.0, 0.0, z_source};
  const double prefactor = 1.0 / (4.0 * kPi * soil_.conductivity(b));

  double direct = 0.0;
  if (b == c) {
    direct = 1.0 / std::sqrt(square(rho) + square(x.z - xi.z));
  }

  // Secondary-potential decay scale: the slowest mode is the reflection
  // with the smallest vertical gap — the surface image (|z| + |z_s|) or an
  // interface image (|2D - |z| - |z_s|| for interface depth D). Points close
  // to an interface make that gap small and the spectrum wide.
  const double depth_sum = std::abs(x.z) + std::abs(xi.z);
  double zeta = depth_sum;
  for (std::size_t i = 0; i + 1 < soil_.layer_count(); ++i) {
    const double gap = std::abs(2.0 * soil_.interface_depth(i) - depth_sum);
    if (gap > 0.0) zeta = std::min(zeta, gap);
  }
  zeta = std::max(zeta, 1e-2);
  const double lambda_max = options_.lambda_cut / zeta;

  // Panel width resolves the J0 oscillation; sharp spectral features (the
  // ~(1 - kappa)/(2H) peak near lambda = 0 when layers contrast strongly)
  // are handled by adaptive refinement inside each panel.
  double width = lambda_max / 16.0;
  if (rho > 0.0) width = std::min(width, kPi / rho);

  const quad::Rule& coarse = quad::cached_gauss_legendre(10);
  const quad::Rule& fine = quad::cached_gauss_legendre(20);
  const auto integrand = [&](double lambda) {
    const double f = spectral_coefficient(lambda, xi.z, b, x.z, c);
    return rho > 0.0 ? f * std::cyl_bessel_j(0.0, lambda * rho) : f;
  };
  const auto quadrature = [&](const quad::Rule& rule, double a0, double b0) {
    const double mid = 0.5 * (a0 + b0);
    const double half = 0.5 * (b0 - a0);
    double sum = 0.0;
    for (std::size_t q = 0; q < rule.size(); ++q) {
      sum += rule.weights[q] * integrand(mid + half * rule.nodes[q]);
    }
    return half * sum;
  };
  // Adaptive bisection: accept a span once G20 agrees with G10.
  std::size_t panels_used = 0;
  const std::function<double(double, double, double, int)> refine =
      [&](double a0, double b0, double abs_tol, int depth) -> double {
    const double g10 = quadrature(coarse, a0, b0);
    const double g20 = quadrature(fine, a0, b0);
    ++panels_used;
    if (std::abs(g20 - g10) <= abs_tol || depth >= 24 ||
        panels_used >= options_.max_panels) {
      return g20;
    }
    const double mid = 0.5 * (a0 + b0);
    return refine(a0, mid, 0.5 * abs_tol, depth + 1) +
           refine(mid, b0, 0.5 * abs_tol, depth + 1);
  };

  double integral = 0.0;
  double tail = 0.0;
  std::size_t quiet_panels = 0;
  for (double a0 = 0.0; a0 < lambda_max && panels_used < options_.max_panels; a0 += width) {
    const double b0 = std::min(a0 + width, lambda_max);
    // Tolerance scale: the accumulated integral or direct term when
    // available; otherwise the panel's own coarse estimate (cross-layer
    // kernels have no direct term and start from integral = 0).
    const double rough = std::abs(quadrature(coarse, a0, b0));
    const double scale = std::max({std::abs(integral), direct, rough, 1e-300});
    const double panel_sum = refine(a0, b0, options_.tolerance * scale, 0);
    integral += panel_sum;
    tail = std::abs(panel_sum);
    if (tail < options_.tolerance * std::max({std::abs(integral), direct, 1e-300})) {
      if (++quiet_panels >= 3) break;
    } else {
      quiet_panels = 0;
    }
  }

  return prefactor * (direct + integral);
}

}  // namespace ebem::soil

#include "src/soil/hankel_kernel.hpp"

#include <algorithm>
#include <functional>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/math_utils.hpp"
#include "src/common/simd.hpp"
#include "src/quad/gauss.hpp"

namespace ebem::soil {

namespace {

constexpr double kInfiniteDepth = std::numeric_limits<double>::infinity();

/// Symbolic form of the per-lambda boundary system: every matrix, rhs and
/// output entry is `scale * exp(lambda * args[arg])` with scale and the
/// exponent coefficient fixed by the geometry (z_source, z_field, layer
/// stack) — lambda only enters through the exponentials. Built once per
/// evaluate_rho call; evaluated for whole panels of lambda nodes at a time.
struct SpectralSystem {
  struct MatrixEntry {
    std::size_t row, col, arg;
    double scale;
  };
  struct VectorEntry {
    std::size_t index, arg;
    double scale;
  };

  std::size_t n = 0;                 ///< unknowns: up_c all layers, dn_c all but last
  std::vector<MatrixEntry> matrix;
  std::vector<VectorEntry> rhs;
  std::vector<VectorEntry> out;      ///< f_c(lambda) = sum of these over the solution
  std::vector<double> args;          ///< distinct exponent coefficients (all finite, <= 0)

  std::size_t arg_id(double k) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == k) return i;
    }
    args.push_back(k);
    return args.size() - 1;
  }
};

/// exp table fill: out[q] = exp(scale * lambdas[q]), the vectorized inner
/// loop of the spectral batch (one sweep per distinct exponent coefficient).
EBEM_SIMD_MULTIVERSION
void exp_scaled_batch(double scale, const double* EBEM_RESTRICT lambdas, std::size_t count,
                      double* EBEM_RESTRICT out) {
  EBEM_SIMD_LOOP
  for (std::size_t q = 0; q < count; ++q) out[q] = simd_exp(scale * lambdas[q]);
}

/// In-place Gaussian elimination with partial pivoting for the tiny (n <=
/// 2 * layers - 1) boundary systems; solution lands in b. Allocation-free —
/// the per-node replacement for the general la::solve_dense.
void solve_small_inplace(double* a, double* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(a[i * n + k]);
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    EBEM_ENSURE(best > 0.0, "singular spectral boundary system");
    if (pivot != k) {
      for (std::size_t j = k; j < n; ++j) std::swap(a[k * n + j], a[pivot * n + j]);
      std::swap(b[k], b[pivot]);
    }
    const double inv = 1.0 / a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a[i * n + k] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a[i * n + j] -= factor * a[k * n + j];
      b[i] -= factor * b[k];
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    double sum = b[k];
    for (std::size_t j = k + 1; j < n; ++j) sum -= a[k * n + j] * b[j];
    b[k] = sum / a[k * n + k];
  }
}

/// Evaluate f_c(lambda) for a batch of lambda nodes against one symbolic
/// system: vectorized exponential tables, then one small in-place solve per
/// node on thread-local scratch.
void spectral_batch(const SpectralSystem& sys, const double* lambdas, std::size_t count,
                    double* out) {
  thread_local std::vector<double> exps;
  thread_local std::vector<double> work;
  exps.resize(sys.args.size() * count);
  for (std::size_t a = 0; a < sys.args.size(); ++a) {
    exp_scaled_batch(sys.args[a], lambdas, count, exps.data() + a * count);
  }
  const std::size_t n = sys.n;
  work.resize(n * n + n);
  double* matrix = work.data();
  double* rhs = matrix + n * n;
  for (std::size_t q = 0; q < count; ++q) {
    std::memset(matrix, 0, n * (n + 1) * sizeof(double));
    for (const SpectralSystem::MatrixEntry& e : sys.matrix) {
      matrix[e.row * n + e.col] += e.scale * exps[e.arg * count + q];
    }
    for (const SpectralSystem::VectorEntry& e : sys.rhs) {
      rhs[e.index] += e.scale * exps[e.arg * count + q];
    }
    solve_small_inplace(matrix, rhs, n);
    double value = 0.0;
    for (const SpectralSystem::VectorEntry& e : sys.out) {
      value += rhs[e.index] * e.scale * exps[e.arg * count + q];
    }
    out[q] = value;
  }
}

}  // namespace

HankelKernel::HankelKernel(const LayeredSoil& soil, const HankelOptions& options)
    : soil_(soil), options_(options) {
  EBEM_EXPECT(options.tolerance > 0.0, "tolerance must be positive");
  EBEM_EXPECT(options.lambda_cut > 0.0, "lambda cut must be positive");
  const std::size_t c_count = soil_.layer_count();
  tops_.resize(c_count);
  bottoms_.resize(c_count);
  double depth = 0.0;
  for (std::size_t c = 0; c < c_count; ++c) {
    tops_[c] = depth;
    if (c + 1 < c_count) {
      depth = soil_.interface_depth(c);
      bottoms_[c] = depth;
    } else {
      bottoms_[c] = kInfiniteDepth;
    }
  }
}

namespace {

/// Assemble the symbolic boundary system. The scaled basis
///   V_c(z) = up_c e^{lambda (z + top_c)} + dn_c e^{-lambda (z + bottom_c)}
/// keeps every matrix entry in [-1, 1] regardless of lambda (no overflow),
/// and makes every entry a fixed scale times exp(lambda * k): the exponent
/// coefficients k depend only on geometry, so they are registered once here
/// and tabulated per lambda batch. The last layer's dn basis (infinite
/// bottom) is never referenced, so every registered k is finite.
SpectralSystem build_spectral_system(const LayeredSoil& soil, const std::vector<double>& tops,
                                     const std::vector<double>& bottoms, double z_source,
                                     std::size_t source_layer, double z_field,
                                     std::size_t field_layer) {
  const std::size_t c_count = soil.layer_count();
  SpectralSystem sys;
  sys.n = 2 * c_count - 1;  // up_c for all layers, dn_c for all but last

  // Unknown layout: up_c at 2c, dn_c at 2c+1 (last layer has no dn).
  const auto up_index = [](std::size_t c) { return 2 * c; };
  const auto dn_index = [](std::size_t c) { return 2 * c + 1; };
  const auto up_arg = [&](std::size_t c, double z) { return sys.arg_id(z + tops[c]); };
  const auto dn_arg = [&](std::size_t c, double z) { return sys.arg_id(-(z + bottoms[c])); };
  // Source term S(z) = e^{-lambda |z - z_source|}; its slope over lambda is
  // sign * S with sign = -1 above the source, +1 below.
  const auto source_arg = [&](double z) { return sys.arg_id(-std::abs(z - z_source)); };
  const auto source_sign = [&](double z) { return z >= z_source ? -1.0 : 1.0; };

  std::size_t row = 0;
  // Surface Neumann condition at z = 0 (divided by lambda).
  sys.matrix.push_back({row, up_index(0), up_arg(0, 0.0), 1.0});
  if (c_count > 1) sys.matrix.push_back({row, dn_index(0), dn_arg(0, 0.0), -1.0});
  if (source_layer == 0) sys.rhs.push_back({row, source_arg(0.0), -source_sign(0.0)});
  ++row;

  // Interface conditions.
  for (std::size_t c = 0; c + 1 < c_count; ++c) {
    const double z = -bottoms[c];
    const bool next_has_dn = (c + 2 < c_count);
    // Potential continuity: V_c(z) = V_{c+1}(z).
    sys.matrix.push_back({row, up_index(c), up_arg(c, z), 1.0});
    sys.matrix.push_back({row, dn_index(c), dn_arg(c, z), 1.0});
    sys.matrix.push_back({row, up_index(c + 1), up_arg(c + 1, z), -1.0});
    if (next_has_dn) sys.matrix.push_back({row, dn_index(c + 1), dn_arg(c + 1, z), -1.0});
    if (source_layer == c + 1) sys.rhs.push_back({row, source_arg(z), 1.0});
    if (source_layer == c) sys.rhs.push_back({row, source_arg(z), -1.0});
    ++row;
    // Flux continuity: gamma_c V_c'(z) = gamma_{c+1} V_{c+1}'(z) (over lambda).
    const double g0 = soil.conductivity(c);
    const double g1 = soil.conductivity(c + 1);
    sys.matrix.push_back({row, up_index(c), up_arg(c, z), g0});
    sys.matrix.push_back({row, dn_index(c), dn_arg(c, z), -g0});
    sys.matrix.push_back({row, up_index(c + 1), up_arg(c + 1, z), -g1});
    if (next_has_dn) sys.matrix.push_back({row, dn_index(c + 1), dn_arg(c + 1, z), g1});
    if (source_layer == c + 1) sys.rhs.push_back({row, source_arg(z), g1 * source_sign(z)});
    if (source_layer == c) sys.rhs.push_back({row, source_arg(z), -g0 * source_sign(z)});
    ++row;
  }
  EBEM_ENSURE(row == sys.n, "boundary system row count mismatch");

  sys.out.push_back({up_index(field_layer), up_arg(field_layer, z_field), 1.0});
  if (field_layer + 1 < c_count) {
    sys.out.push_back({dn_index(field_layer), dn_arg(field_layer, z_field), 1.0});
  }
  return sys;
}

}  // namespace

double HankelKernel::evaluate(geom::Vec3 x, geom::Vec3 xi) const {
  const double rho = std::sqrt(square(x.x - xi.x) + square(x.y - xi.y));
  return evaluate_rho(rho, x.z, xi.z);
}

double HankelKernel::evaluate_regularized(geom::Vec3 x, geom::Vec3 xi, double radius) const {
  const double rho =
      std::sqrt(square(x.x - xi.x) + square(x.y - xi.y) + square(radius));
  return evaluate_rho(rho, x.z, xi.z);
}

double HankelKernel::evaluate_rho(double rho, double z_field, double z_source) const {
  EBEM_EXPECT(z_field <= 0.0 && z_source < 0.0, "points must be at or below the surface");
  const std::size_t b = soil_.layer_of(z_source);
  const std::size_t c = soil_.layer_of(z_field);
  const geom::Vec3 x{rho, 0.0, z_field};
  const geom::Vec3 xi{0.0, 0.0, z_source};
  const double prefactor = 1.0 / (4.0 * kPi * soil_.conductivity(b));

  double direct = 0.0;
  if (b == c) {
    direct = 1.0 / std::sqrt(square(rho) + square(x.z - xi.z));
  }

  // Secondary-potential decay scale: the slowest mode is the reflection
  // with the smallest vertical gap — the surface image (|z| + |z_s|) or an
  // interface image (|2D - |z| - |z_s|| for interface depth D). Points close
  // to an interface make that gap small and the spectrum wide.
  const double depth_sum = std::abs(x.z) + std::abs(xi.z);
  double zeta = depth_sum;
  for (std::size_t i = 0; i + 1 < soil_.layer_count(); ++i) {
    const double gap = std::abs(2.0 * soil_.interface_depth(i) - depth_sum);
    if (gap > 0.0) zeta = std::min(zeta, gap);
  }
  zeta = std::max(zeta, 1e-2);
  const double lambda_max = options_.lambda_cut / zeta;

  // Panel width resolves the J0 oscillation; sharp spectral features (the
  // ~(1 - kappa)/(2H) peak near lambda = 0 when layers contrast strongly)
  // are handled by adaptive refinement inside each panel.
  double width = lambda_max / 16.0;
  if (rho > 0.0) width = std::min(width, kPi / rho);

  const quad::Rule& coarse = quad::cached_gauss_legendre(10);
  const quad::Rule& fine = quad::cached_gauss_legendre(20);
  // One symbolic system per evaluation; each panel's nodes share its
  // exponential tables (J0 stays scalar — the spectral solve dominates).
  const SpectralSystem sys = build_spectral_system(soil_, tops_, bottoms_, xi.z, b, x.z, c);
  const auto quadrature = [&](const quad::Rule& rule, double a0, double b0) {
    const double mid = 0.5 * (a0 + b0);
    const double half = 0.5 * (b0 - a0);
    thread_local std::vector<double> lambdas;
    thread_local std::vector<double> values;
    lambdas.resize(rule.size());
    values.resize(rule.size());
    for (std::size_t q = 0; q < rule.size(); ++q) lambdas[q] = mid + half * rule.nodes[q];
    spectral_batch(sys, lambdas.data(), rule.size(), values.data());
    double sum = 0.0;
    for (std::size_t q = 0; q < rule.size(); ++q) {
      const double f =
          rho > 0.0 ? values[q] * std::cyl_bessel_j(0.0, lambdas[q] * rho) : values[q];
      sum += rule.weights[q] * f;
    }
    return half * sum;
  };
  // Adaptive bisection: accept a span once G20 agrees with G10.
  std::size_t panels_used = 0;
  const std::function<double(double, double, double, int)> refine =
      [&](double a0, double b0, double abs_tol, int depth) -> double {
    const double g10 = quadrature(coarse, a0, b0);
    const double g20 = quadrature(fine, a0, b0);
    ++panels_used;
    if (std::abs(g20 - g10) <= abs_tol || depth >= 24 ||
        panels_used >= options_.max_panels) {
      return g20;
    }
    const double mid = 0.5 * (a0 + b0);
    return refine(a0, mid, 0.5 * abs_tol, depth + 1) +
           refine(mid, b0, 0.5 * abs_tol, depth + 1);
  };

  double integral = 0.0;
  double tail = 0.0;
  std::size_t quiet_panels = 0;
  for (double a0 = 0.0; a0 < lambda_max && panels_used < options_.max_panels; a0 += width) {
    const double b0 = std::min(a0 + width, lambda_max);
    // Tolerance scale: the accumulated integral or direct term when
    // available; otherwise the panel's own coarse estimate (cross-layer
    // kernels have no direct term and start from integral = 0).
    const double rough = std::abs(quadrature(coarse, a0, b0));
    const double scale = std::max({std::abs(integral), direct, rough, 1e-300});
    const double panel_sum = refine(a0, b0, options_.tolerance * scale, 0);
    integral += panel_sum;
    tail = std::abs(panel_sum);
    if (tail < options_.tolerance * std::max({std::abs(integral), direct, 1e-300})) {
      if (++quiet_panels >= 3) break;
    } else {
      quiet_panels = 0;
    }
  }

  return prefactor * (direct + integral);
}

}  // namespace ebem::soil

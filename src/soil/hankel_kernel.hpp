// General C-layer Green's function by numerical inverse Hankel transform.
//
// For each transform variable lambda, the layered-potential coefficients
// solve a small linear system assembled from the surface Neumann condition
// and the potential/flux continuity conditions at every interface
// (paper eq. 2.3); the potential is then recovered as
//   V(rho, z) = 1/(4 pi gamma_b) [ direct 1/r term (same layer only)
//               + Integral_0^inf f_c(lambda) J0(lambda rho) d lambda ].
//
// This kernel serves two purposes:
//  1. an independent *oracle* for the two-layer image series (the tests
//     cross-validate one against the other), and
//  2. three-and-more-layer soil support, which the paper names as the
//     extension whose series become double/triple sums (§4.2): here the
//     lambda-domain solve generalizes with no extra code.
//
// It is O(quadrature points) per evaluation and therefore used for
// validation and small studies, not inside the assembly hot loop.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/vec3.hpp"
#include "src/soil/point_kernel.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::soil {

struct HankelOptions {
  double tolerance = 1e-9;       ///< adaptive quadrature tolerance (relative)
  double lambda_cut = 60.0;      ///< integrate lambda in [0, lambda_cut / zeta]
  std::size_t max_panels = 4096; ///< refinement cap for the adaptive rule

  friend bool operator==(const HankelOptions&, const HankelOptions&) = default;
};

class HankelKernel final : public PointKernel {
 public:
  explicit HankelKernel(const LayeredSoil& soil, const HankelOptions& options = {});

  /// Potential at x per unit point current at xi (both strictly below the
  /// surface), including the 1/(4 pi gamma_b) prefactor. The source must
  /// not sit *exactly* on a layer interface: the boundary system evaluates
  /// the one-sided source-slope sign at its own kink there and degenerates
  /// to the trivial solution (a formulation edge, present since the
  /// original per-lambda solve; perturb the depth by an ulp instead).
  [[nodiscard]] double evaluate(geom::Vec3 x, geom::Vec3 xi) const;

  /// Thin-wire regularization: the horizontal offset is inflated to
  /// sqrt(rho^2 + radius^2), exactly as the image kernel regularizes.
  [[nodiscard]] double evaluate_regularized(geom::Vec3 x, geom::Vec3 xi,
                                            double radius) const override;

  [[nodiscard]] const LayeredSoil& soil() const { return soil_; }
  [[nodiscard]] const LayeredSoil& soil_model() const override { return soil_; }

 private:
  /// Axisymmetric evaluation at horizontal offset rho. The per-lambda
  /// boundary system (secondary-potential coefficient f_c(lambda),
  /// normalized so V_secondary = prefactor * Integral f_c J0(lambda rho)
  /// d lambda) is assembled symbolically once per evaluation — every matrix,
  /// rhs and output entry is a constant scale times exp(lambda * k) for a
  /// fixed coefficient k — and then evaluated for a whole quadrature
  /// panel's lambda nodes at a time: the exponential tables are filled with
  /// one vectorized sweep per coefficient and each node's small dense system
  /// is solved in place on a per-thread workspace (no allocation per node).
  [[nodiscard]] double evaluate_rho(double rho, double z_field, double z_source) const;

  LayeredSoil soil_;
  HankelOptions options_;
  std::vector<double> tops_;     // top depth of each layer (positive)
  std::vector<double> bottoms_;  // bottom depth (last layer: +inf marker)
};

}  // namespace ebem::soil

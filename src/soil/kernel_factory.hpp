// Kernel selection: image series for 1-2 layers, spectral (Hankel) kernel
// for deeper stacks.
#pragma once

#include <memory>

#include "src/soil/hankel_kernel.hpp"
#include "src/soil/image_series.hpp"
#include "src/soil/point_kernel.hpp"

namespace ebem::soil {

/// Build the natural kernel for the soil model: the closed-form image
/// series when it exists (1 or 2 layers), otherwise the numerical Hankel
/// kernel. The returned kernel is what the BEM integrator consumes.
[[nodiscard]] std::unique_ptr<PointKernel> make_kernel(const LayeredSoil& soil,
                                                       const SeriesOptions& series = {},
                                                       const HankelOptions& hankel = {});

}  // namespace ebem::soil

#include "src/soil/soil_model.hpp"

#include "src/common/error.hpp"

namespace ebem::soil {

LayeredSoil LayeredSoil::uniform(double conductivity) {
  return LayeredSoil({Layer{conductivity, 0.0}});
}

LayeredSoil LayeredSoil::two_layer(double upper_conductivity, double lower_conductivity,
                                   double upper_thickness) {
  EBEM_EXPECT(upper_thickness > 0.0, "upper-layer thickness must be positive");
  return LayeredSoil({Layer{upper_conductivity, upper_thickness},
                      Layer{lower_conductivity, 0.0}});
}

LayeredSoil::LayeredSoil(std::vector<Layer> layers) : layers_(std::move(layers)) {
  EBEM_EXPECT(!layers_.empty(), "soil model needs at least one layer");
  double depth = 0.0;
  for (std::size_t c = 0; c < layers_.size(); ++c) {
    EBEM_EXPECT(layers_[c].conductivity > 0.0, "layer conductivity must be positive");
    if (c + 1 < layers_.size()) {
      EBEM_EXPECT(layers_[c].thickness > 0.0, "inner layer thickness must be positive");
      depth += layers_[c].thickness;
      interface_depths_.push_back(depth);
    }
  }
}

std::size_t LayeredSoil::layer_of(double z) const {
  EBEM_EXPECT(z <= 1e-12, "soil points must have z <= 0 (below the surface)");
  const double depth = -z;
  for (std::size_t c = 0; c < interface_depths_.size(); ++c) {
    if (depth <= interface_depths_[c]) return c;
  }
  return layers_.size() - 1;
}

double LayeredSoil::interface_depth(std::size_t c) const {
  EBEM_EXPECT(c + 1 < layers_.size(), "interface index out of range");
  return interface_depths_[c];
}

double LayeredSoil::reflection_coefficient() const {
  EBEM_EXPECT(layers_.size() == 2, "reflection coefficient is a two-layer quantity");
  const double g1 = layers_[0].conductivity;
  const double g2 = layers_[1].conductivity;
  return (g1 - g2) / (g1 + g2);
}

}  // namespace ebem::soil

// Method-of-images Green's function for uniform and two-layer soils.
//
// This is the paper's eq. (3.2): the kernel k_bc(x, xi) is an infinite
// series of 1/r terms, one per image of the source point xi, with weights
// psi_l(kappa) that depend only on the reflection coefficient
// kappa = (gamma_1 - gamma_2)/(gamma_1 + gamma_2) and on which layers hold
// the source (b) and the field point (c). Every image position is an affine
// map of the source z-coordinate, z' = mirror * z_s + offset with
// mirror = +/-1 — which is what lets the BEM integrator apply its analytic
// segment integrals term by term (the image of a straight segment is a
// straight segment).
//
// Image families (surface at z = 0, upper-layer thickness H, source z_s < 0;
// derivation via Hankel transform, cross-validated against soil/hankel_kernel):
//   b=0,c=0: 1 at z_s and -z_s; kappa^n at {±z_s ± 2nH} (4 images), n>=1
//   b=0,c=1: (1+kappa) kappa^n at {2nH + z_s, 2nH - z_s}, n>=0
//   b=1,c=0: (1-kappa) kappa^n at {z_s - 2nH, -z_s + 2nH}, n>=0
//   b=1,c=1: 1 at z_s; -kappa at -z_s - 2H; (1-kappa^2) kappa^n at
//            {-z_s + 2nH}, n>=0
// For uniform soil the series collapses to the classical two summands
// (source + its mirror across the surface).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geom/vec3.hpp"
#include "src/soil/point_kernel.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::soil {

/// One image of a point source: the image sits at z' = mirror * z_s + offset
/// (same x, y) and contributes weight / r to the kernel series.
struct ImageTerm {
  double weight = 0.0;
  double mirror = 1.0;  ///< +1 or -1
  double offset = 0.0;  ///< [m]
};

struct SeriesOptions {
  /// Image families are truncated once |kappa|^n drops below this relative
  /// tolerance (the paper's "summed until a tolerance is fulfilled").
  double tolerance = 1e-9;
  /// Hard cap on n per family (the paper's "upper limit of summands").
  std::size_t max_reflections = 128;

  friend bool operator==(const SeriesOptions&, const SeriesOptions&) = default;
};

/// Point Green's function for a uniform or two-layer soil: evaluate(x, xi)
/// returns the potential at x per unit current injected at xi, including the
/// 1/(4 pi gamma_b) prefactor of eq. (3.1).
class ImageKernel final : public PointKernel {
 public:
  explicit ImageKernel(const LayeredSoil& soil, const SeriesOptions& options = {});

  /// Potential at x per unit point current at xi (both with z <= 0).
  [[nodiscard]] double evaluate(geom::Vec3 x, geom::Vec3 xi) const;

  /// Same, with the thin-wire regularization r -> sqrt(r^2 + radius^2).
  [[nodiscard]] double evaluate_regularized(geom::Vec3 x, geom::Vec3 xi,
                                            double radius) const override;

  /// SoA override: the image sum per source runs over the precomputed
  /// weight/mirror/offset arrays in one vectorized sweep (the scalar entry
  /// uses the same sweep with one source, so both agree exactly).
  void evaluate_regularized_batch(geom::Vec3 x, const geom::Vec3* xi, std::size_t count,
                                  double radius, double* out) const override;

  [[nodiscard]] const LayeredSoil& soil_model() const override { return soil_; }

  /// The precomputed image family for (source layer b, field layer c).
  [[nodiscard]] const std::vector<ImageTerm>& terms(std::size_t b, std::size_t c) const;

  /// 1/(4 pi gamma_b) prefactor for sources in layer b.
  [[nodiscard]] double prefactor(std::size_t b) const;

  [[nodiscard]] const LayeredSoil& soil() const { return soil_; }
  [[nodiscard]] const SeriesOptions& options() const { return options_; }

  /// Process-unique instance id. Memoization that keys on a kernel must use
  /// this, not the object address: a new kernel allocated where a destroyed
  /// one lived would otherwise replay stale cached state (the integrator's
  /// per-thread image-frame workspace hit exactly that hazard).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  /// Structure-of-arrays mirror of one image family, what the vectorized
  /// evaluation sweeps actually read (the AoS terms() stays the public and
  /// integrator-facing form; both are built once in the constructor).
  struct TermSoA {
    std::vector<double> weight;
    std::vector<double> mirror;
    std::vector<double> offset;
  };

  void build_uniform();
  void build_two_layer();
  void build_soa();
  [[nodiscard]] std::size_t reflections_needed() const;

  LayeredSoil soil_;
  SeriesOptions options_;
  std::uint64_t epoch_ = 0;
  // terms_[b][c]; only [0][0] populated for uniform soil.
  std::vector<ImageTerm> terms_[2][2];
  TermSoA soa_[2][2];
};

}  // namespace ebem::soil

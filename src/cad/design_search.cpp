#include "src/cad/design_search.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/geom/grid_builder.hpp"

namespace ebem::cad {

std::string DesignCandidate::label() const {
  return std::to_string(cells_x) + "x" + std::to_string(cells_y) + " mesh + " +
         std::to_string(rods) + " rods";
}

namespace {

/// One ladder rung in flight: the meshed system, its submitted analysis and
/// the geometry/identity needed to finish the candidate when its future is
/// consumed.
struct PendingCandidate {
  DesignCandidate candidate;
  std::vector<geom::Conductor> conductors;
  GroundingSystem system;
  engine::RunFuture future;
};

}  // namespace

DesignSearchResult search_design(const soil::LayeredSoil& soil, const DesignGoal& goal,
                                 const DesignSearchOptions& options) {
  EBEM_EXPECT(options.site_x > 0.0 && options.site_y > 0.0, "site extents must be positive");
  EBEM_EXPECT(goal.gpr > 0.0, "GPR must be positive");
  EBEM_EXPECT(options.max_steps >= 1, "need at least one ladder step");

  const double aspect = options.site_y / options.site_x;
  DesignSearchResult result;

  // One execution context for the whole ladder: the candidates share the
  // soil and numerics, so every elemental block integrated for candidate k
  // is a legitimate warm-cache entry for candidates k+1.. — the "many
  // nearby analyses" loop the Engine exists for.
  std::optional<engine::Engine> owned_engine;
  engine::Engine* eng = options.engine;
  if (eng == nullptr) {
    engine::ExecutionConfig config;
    config.use_congruence_cache = options.warm_cache;
    owned_engine.emplace(config);
    eng = &*owned_engine;
  }
  bem::AnalysisOptions analysis;
  analysis.gpr = goal.gpr;
  analysis.assembly.series.tolerance = 1e-6;
  engine::Study study(*eng, analysis);

  // Submit the whole ladder as a pipelined batch: meshing is cheap next to
  // analysis, so every candidate is built and handed to the engine's
  // scheduler up front — assembly of candidate k+1 overlaps the
  // factorization/solve of candidate k on the shared pool. Results are
  // consumed strictly in ladder order below; the tail beyond the first
  // satisfying candidate is cancelled (runs that never started simply never
  // run).
  std::vector<PendingCandidate> ladder;
  ladder.reserve(options.max_steps);
  // Whatever ends the walk early — a meshing/submission failure, the first
  // satisfying candidate, or a failed run unwinding out of adopt() — must
  // cancel every submitted-but-unconsumed rung on the way out, or the
  // engine (a locally owned one via its destructor drain) would grind
  // through the remaining candidates first.
  struct TailCanceller {
    std::vector<PendingCandidate>& ladder;
    std::size_t consumed = 0;
    ~TailCanceller() {
      // Best effort: rungs that have not started never will; rungs already
      // in flight finish in the background (their results are simply never
      // consumed) before the engine or ladder goes away.
      for (std::size_t tail = consumed; tail < ladder.size(); ++tail) {
        (void)ladder[tail].future.cancel();
      }
    }
  } unconsumed{ladder};
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    // Ladder: mesh density grows with every step; from the third step on,
    // perimeter rods are added in growing counts. Rods come later because
    // meshing is usually the cheaper Req lever in uniform soil, while rods
    // pay off once a conductive lower layer is reachable.
    const std::size_t cells_x = 2 + step;
    const std::size_t cells_y =
        std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(
                                     static_cast<double>(cells_x) * aspect)));
    const std::size_t rods = step < 2 ? 0 : 4 * (step - 1);

    geom::RectGridSpec spec;
    spec.length_x = options.site_x;
    spec.length_y = options.site_y;
    spec.cells_x = cells_x;
    spec.cells_y = cells_y;
    spec.depth = options.depth;
    spec.radius = options.conductor_radius;
    std::vector<geom::Conductor> conductors = geom::make_rect_grid(spec);
    if (rods > 0) {
      geom::add_rods(conductors, geom::perimeter_rod_positions(spec, rods), options.depth,
                     options.rod);
    }

    DesignOptions design_options;
    design_options.analysis = analysis;
    PendingCandidate pending{
        .candidate = {},
        .conductors = conductors,
        .system = GroundingSystem(std::move(conductors), soil, design_options),
        .future = {},
    };
    pending.candidate.cells_x = cells_x;
    pending.candidate.cells_y = cells_y;
    pending.candidate.rods = rods;
    pending.future = pending.system.submit(study);
    ladder.push_back(std::move(pending));
  }

  // Consume in ladder order; per-candidate cache deltas come from each run's
  // own tally, so they stay exact even though the runs overlapped.
  std::size_t chosen_index = ladder.size() - 1;
  for (std::size_t step = 0; step < ladder.size(); ++step) {
    PendingCandidate& pending = ladder[step];
    unconsumed.consumed = step + 1;
    const Report& report = pending.system.adopt(pending.future);

    DesignCandidate& candidate = pending.candidate;
    candidate.resistance = report.equivalent_resistance;
    candidate.cache = report.cache_stats;

    const auto evaluator = pending.system.potential_evaluator();
    // Touch exposure exists only where grounded structures stand — inside
    // the site footprint; step exposure extends to the surroundings, so the
    // step patch carries the margin.
    const post::SafetyAssessment touch_assessment =
        post::assess_safety(evaluator, goal.gpr, 0.0, options.site_x, 0.0, options.site_y,
                            options.samples_x, options.samples_y, goal.criteria);
    const post::SafetyAssessment step_assessment = post::assess_safety(
        evaluator, goal.gpr, -options.safety_margin, options.site_x + options.safety_margin,
        -options.safety_margin, options.site_y + options.safety_margin, options.samples_x,
        options.samples_y, goal.criteria);
    candidate.max_touch = touch_assessment.max_touch_voltage;
    candidate.max_step = step_assessment.max_step_voltage;

    candidate.satisfied = candidate.resistance <= goal.max_resistance &&
                          (!goal.require_touch_safe || touch_assessment.touch_safe()) &&
                          (!goal.require_step_safe || step_assessment.step_safe());
    result.history.push_back(candidate);
    result.chosen = candidate;
    chosen_index = step;
    // Ladder totals are the consumed candidates' own deltas summed — the
    // only aggregation that stays exact when runs overlap (a global
    // before/after snapshot would also count still-in-flight tail runs).
    result.cache_stats.hits += candidate.cache.hits;
    result.cache_stats.misses += candidate.cache.misses;
    if (candidate.satisfied) {
      result.satisfied = true;
      break;
    }
  }
  result.conductors = std::move(ladder[chosen_index].conductors);
  result.cache_stats.entries = eng->cache_stats().entries;
  return result;
}

}  // namespace ebem::cad

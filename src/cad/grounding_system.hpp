// High-level CAD entry point, mirroring the paper's TOTBEM-style system:
// a grounding design (conductors) + a soil model + analysis options in,
// a full engineering report out, with the per-phase timings of Table 6.1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/common/phase_report.hpp"
#include "src/engine/study.hpp"
#include "src/geom/conductor.hpp"
#include "src/geom/mesh.hpp"
#include "src/io/grid_file.hpp"
#include "src/post/surface_potential.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::cad {

/// Physics of one design run: meshing + analysis options. Execution (threads,
/// caches, solver policy) belongs to the engine::Engine a run is handed to.
struct DesignOptions {
  geom::MeshOptions mesh;
  bem::AnalysisOptions analysis;
};

/// Everything a design review needs from one run.
struct Report {
  double gpr = 0.0;
  double equivalent_resistance = 0.0;  ///< [Ohm]
  double total_current = 0.0;          ///< [A]
  std::size_t element_count = 0;
  std::size_t dof_count = 0;
  PhaseReport phases;
  std::vector<double> column_costs;    ///< per-column matrix-generation cost, if measured
  /// Congruence-cache counters of this run alone (zeros when the run had no
  /// warm engine cache).
  bem::CongruenceCacheStats cache_stats;

  [[nodiscard]] std::string summary() const;
};

/// A grounding system under analysis. Owns the split/meshed model so that
/// post-processing (surface potentials, safety) can reuse the solution.
class GroundingSystem {
 public:
  /// Build from raw conductors; conductors are split at soil interfaces and
  /// meshed during construction (the "Data Preprocessing" phase).
  GroundingSystem(std::vector<geom::Conductor> conductors, soil::LayeredSoil soil,
                  const DesignOptions& options = {});

  /// Load design + soil from a grid description file ("Data Input" phase).
  [[nodiscard]] static GroundingSystem from_file(const std::string& path,
                                                 const DesignOptions& options = {});

  /// Run (or re-run) the analysis on the serial reference path (cold, no
  /// shared resources). Sessions evaluating several systems should pass an
  /// Engine or Study instead.
  const Report& analyze();

  /// Run against an engine's shared pool, warm cache and solver policy;
  /// phase timings/counters also accumulate into the engine's report.
  const Report& analyze(engine::Engine& engine);

  /// Run as one step of a Study session. The study's physics options must
  /// equal this system's analysis options (throws ebem::InvalidArgument
  /// otherwise) — one physics per session is what keeps the shared warm
  /// cache valid and the post-processing consistent.
  const Report& analyze(engine::Study& study);

  /// Pipelined flavor of analyze(Study&): submit this system's model to the
  /// study's scheduler and return the future immediately (same options
  /// check). Several systems submitted back to back pipeline their
  /// assemble/factor/solve stages on the engine's shared pool; hand the
  /// future back to adopt() to install the result — cad::search_design
  /// drives its whole candidate ladder this way.
  [[nodiscard]] engine::RunFuture submit(engine::Study& study);

  /// Install a submitted run's result as this system's solution (waits on
  /// the future; rethrows the run's failure). The returned report carries
  /// the run's phase timings and its exact per-run cache delta.
  const Report& adopt(engine::RunFuture& future);

  /// Post-processing evaluator over the last analyze() solution.
  [[nodiscard]] post::PotentialEvaluator potential_evaluator(
      const post::PotentialOptions& options = {}) const;

  [[nodiscard]] const bem::BemModel& model() const { return model_; }
  [[nodiscard]] const Report& report() const;
  [[nodiscard]] const bem::AnalysisResult& solution() const;
  [[nodiscard]] const DesignOptions& options() const { return options_; }

 private:
  GroundingSystem(std::vector<geom::Conductor> conductors, soil::LayeredSoil soil,
                  const DesignOptions& options, PhaseReport input_phases);

  const Report& finish_report(const PhaseReport& phases,
                              const bem::CongruenceCacheStats& cache_stats);

  static bem::BemModel preprocess(std::vector<geom::Conductor> conductors,
                                  const soil::LayeredSoil& soil, const DesignOptions& options,
                                  PhaseReport& phases);

  DesignOptions options_;
  PhaseReport setup_phases_;
  bem::BemModel model_;
  std::optional<bem::AnalysisResult> solution_;
  std::optional<Report> report_;
};

}  // namespace ebem::cad

#include "src/cad/cases.hpp"

#include <cmath>

#include "src/geom/grid_builder.hpp"

namespace ebem::cad {

BarberaCase barbera_case(std::size_t refinement) {
  // Figure 5.1: the right angle sits at the origin, the long leg (~143 m)
  // along y and the short leg (~89 m) along x.
  geom::TriangularGridSpec spec;
  spec.leg_x = 89.0;
  spec.leg_y = 143.0;
  spec.cells_x = refinement;
  spec.cells_y = static_cast<std::size_t>(
      std::lround(static_cast<double>(refinement) * spec.leg_y / spec.leg_x));
  spec.depth = 0.80;
  spec.radius = 12.85e-3 / 2.0;

  BarberaCase result{
      .conductors = geom::make_triangular_grid(spec),
      .uniform_soil = soil::LayeredSoil::uniform(0.016),
      .two_layer_soil = soil::LayeredSoil::two_layer(0.005, 0.016, 1.0),
      .gpr = 10e3,
  };
  return result;
}

BalaidosCase balaidos_case() {
  // Figure 5.3: an 80 x 60 m mesh with ~10 m spacing (110 conductors, the
  // closest regular layout to the paper's 107).
  geom::RectGridSpec spec;
  spec.length_x = 80.0;
  spec.length_y = 60.0;
  spec.cells_x = 8;
  spec.cells_y = 6;
  spec.depth = 0.80;
  spec.radius = 11.28e-3 / 2.0;

  std::vector<geom::Conductor> grid = geom::make_rect_grid(spec);

  // 67 rods: one at each of the 63 grid intersections plus 4 at perimeter
  // mid-side points (rods are 1.5 m long, 14.0 mm diameter).
  std::vector<geom::Vec3> rod_positions;
  rod_positions.reserve(67);
  const double dx = spec.length_x / static_cast<double>(spec.cells_x);
  const double dy = spec.length_y / static_cast<double>(spec.cells_y);
  for (std::size_t i = 0; i <= spec.cells_x; ++i) {
    for (std::size_t j = 0; j <= spec.cells_y; ++j) {
      rod_positions.push_back({dx * static_cast<double>(i), dy * static_cast<double>(j), 0.0});
    }
  }
  rod_positions.push_back({spec.length_x / 2.0 - dx / 2.0, 0.0, 0.0});
  rod_positions.push_back({spec.length_x / 2.0 - dx / 2.0, spec.length_y, 0.0});
  rod_positions.push_back({0.0, spec.length_y / 2.0 - dy / 2.0, 0.0});
  rod_positions.push_back({spec.length_x, spec.length_y / 2.0 - dy / 2.0, 0.0});

  geom::RodSpec rod;
  rod.length = 1.5;
  rod.radius = 14.0e-3 / 2.0;
  geom::add_rods(grid, rod_positions, spec.depth, rod);

  BalaidosCase result{
      .conductors = std::move(grid),
      .soil_a = soil::LayeredSoil::uniform(0.020),
      .soil_b = soil::LayeredSoil::two_layer(0.0025, 0.020, 0.70),
      .soil_c = soil::LayeredSoil::two_layer(0.0025, 0.020, 1.00),
      .gpr = 10e3,
  };
  return result;
}

}  // namespace ebem::cad

// Automated grounding-design search: the CAD loop around the solver.
//
// Given a site footprint, a soil model and the design goals (maximum
// equivalent resistance, IEEE Std 80 touch/step compliance), walk a ladder
// of progressively stronger candidate designs — denser meshes, then
// perimeter rods — and return the first one that satisfies every goal. This
// is the "design" half of the paper's Computer Aided Design framing: the
// solver makes each candidate cheap enough to evaluate inside a loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/cad/grounding_system.hpp"
#include "src/engine/engine.hpp"
#include "src/geom/grid_builder.hpp"
#include "src/post/safety.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::cad {

struct DesignGoal {
  double gpr = 10e3;              ///< fault GPR to design for [V]
  double max_resistance = 1e300;  ///< required Req upper bound [Ohm]
  bool require_touch_safe = true;
  bool require_step_safe = true;
  post::SafetyCriteria criteria;
};

struct DesignSearchOptions {
  double site_x = 0.0;          ///< footprint extent [m]
  double site_y = 0.0;
  double depth = 0.8;
  double conductor_radius = 6.0e-3;
  geom::RodSpec rod;            ///< rod type used when the ladder adds rods
  std::size_t max_steps = 8;    ///< ladder length
  double safety_margin = 5.0;   ///< assessment patch margin around the site [m]
  std::size_t samples_x = 9;    ///< assessment sampling
  std::size_t samples_y = 9;
  /// Externally owned engine to run the ladder on (its warm cache then also
  /// persists *across* searches). Null makes the search own a serial
  /// warm-cache engine for the duration of the ladder.
  engine::Engine* engine = nullptr;
  /// Disable the warm congruence cache of the internally owned engine — the
  /// cold reference path (ignored when `engine` is supplied).
  bool warm_cache = true;
};

struct DesignCandidate {
  std::size_t cells_x = 0;
  std::size_t cells_y = 0;
  std::size_t rods = 0;
  double resistance = 0.0;
  double max_touch = 0.0;
  double max_step = 0.0;
  bool satisfied = false;
  /// Congruence-cache counters of this candidate's assembly alone: the hits
  /// of candidate k > 1 include every block it replayed from the warm cache
  /// filled by candidates 1..k-1.
  bem::CongruenceCacheStats cache;

  [[nodiscard]] std::string label() const;
};

struct DesignSearchResult {
  bool satisfied = false;
  DesignCandidate chosen;                 ///< last evaluated (best) candidate
  std::vector<DesignCandidate> history;   ///< every candidate in order
  std::vector<geom::Conductor> conductors;  ///< geometry of the chosen design
  /// Warm-cache counters accumulated over the whole ladder.
  bem::CongruenceCacheStats cache_stats;
};

/// Run the ladder search. Every candidate goes through one engine::Study —
/// submitted up front as a pipelined batch (the engine's scheduler overlaps
/// candidate k+1's assembly with candidate k's factorization/solve on the
/// shared pool) and consumed strictly in ladder order, so the congruence
/// cache stays warm from candidate to candidate and each candidate reports
/// its own exact hit/miss delta. The first satisfying candidate cancels the
/// queued tail. Throws on invalid inputs; never throws for "no design
/// satisfied the goals" (check `satisfied`).
[[nodiscard]] DesignSearchResult search_design(const soil::LayeredSoil& soil,
                                               const DesignGoal& goal,
                                               const DesignSearchOptions& options);

}  // namespace ebem::cad

#include "src/cad/grounding_system.hpp"

#include <sstream>

#include "src/bem/element.hpp"
#include "src/common/error.hpp"
#include "src/common/timer.hpp"

namespace ebem::cad {

std::string Report::summary() const {
  std::ostringstream os;
  os << "GPR                    " << gpr << " V\n"
     << "Equivalent resistance  " << equivalent_resistance << " Ohm\n"
     << "Total ground current   " << total_current / 1000.0 << " kA\n"
     << "Elements / DoF         " << element_count << " / " << dof_count << "\n"
     << phases.to_string();
  return os.str();
}

bem::BemModel GroundingSystem::preprocess(std::vector<geom::Conductor> conductors,
                                          const soil::LayeredSoil& soil,
                                          const DesignOptions& options, PhaseReport& phases) {
  WallTimer wall;
  CpuTimer cpu;
  const std::vector<geom::Conductor> split = bem::split_at_interfaces(conductors, soil);
  const geom::Mesh mesh = geom::Mesh::build(split, options.mesh);
  bem::BemModel model(mesh, soil);
  phases.add(Phase::kPreprocessing, wall.seconds(), cpu.seconds());
  return model;
}

GroundingSystem::GroundingSystem(std::vector<geom::Conductor> conductors, soil::LayeredSoil soil,
                                 const DesignOptions& options)
    : GroundingSystem(std::move(conductors), std::move(soil), options, PhaseReport{}) {}

GroundingSystem::GroundingSystem(std::vector<geom::Conductor> conductors, soil::LayeredSoil soil,
                                 const DesignOptions& options, PhaseReport input_phases)
    : options_(options),
      setup_phases_(input_phases),
      model_(preprocess(std::move(conductors), soil, options, setup_phases_)) {}

GroundingSystem GroundingSystem::from_file(const std::string& path,
                                           const DesignOptions& options) {
  WallTimer wall;
  CpuTimer cpu;
  io::GridDescription description = io::read_grid_file(path);
  PhaseReport phases;
  phases.add(Phase::kDataInput, wall.seconds(), cpu.seconds());
  return GroundingSystem(std::move(description.conductors), description.soil(), options,
                         phases);
}

const Report& GroundingSystem::analyze() {
  PhaseReport phases = setup_phases_;
  solution_ = bem::analyze(model_, options_.analysis, &phases);
  return finish_report(phases, bem::CongruenceCacheStats{});
}

const Report& GroundingSystem::analyze(engine::Engine& engine) {
  PhaseReport phases = setup_phases_;
  solution_ = engine.analyze(model_, options_.analysis, &phases);
  // The run tallied its own cache lookups — exact even when other runs
  // shared the engine's cache concurrently.
  return finish_report(phases, solution_->cache_stats);
}

const Report& GroundingSystem::analyze(engine::Study& study) {
  // A Study pins one physics for its whole session (that is what keeps the
  // shared warm cache valid), and this system's post-processing (potential
  // evaluator basis, GPR scaling) runs off its construction-time options —
  // so the two must agree. Silently letting either side win would e.g.
  // rescale every safety voltage to the other GPR without any error.
  EBEM_EXPECT(study.options() == options_.analysis,
              "GroundingSystem::analyze(Study&): the study's analysis options differ from "
              "this system's; construct both from the same AnalysisOptions");
  PhaseReport phases = setup_phases_;
  solution_ = study.analyze(model_, &phases);
  return finish_report(phases, solution_->cache_stats);
}

engine::RunFuture GroundingSystem::submit(engine::Study& study) {
  // Same agreement contract as analyze(Study&), checked at submission.
  EBEM_EXPECT(study.options() == options_.analysis,
              "GroundingSystem::submit(Study&): the study's analysis options differ from "
              "this system's; construct both from the same AnalysisOptions");
  return study.submit(model_);
}

const Report& GroundingSystem::adopt(engine::RunFuture& future) {
  EBEM_EXPECT(future.valid(), "GroundingSystem::adopt: empty future");
  bem::AnalysisResult result = future.take();
  // Cheap belonging check: a future produced for a different system would
  // pair the wrong sigma with this mesh and silently corrupt every surface
  // potential downstream.
  EBEM_EXPECT(result.sigma.size() ==
                  model_.dof_count(options_.analysis.assembly.integrator.basis),
              "GroundingSystem::adopt: the future's solution does not match this system's "
              "model; adopt only futures from this system's submit()");
  solution_ = std::move(result);
  PhaseReport phases = setup_phases_;
  phases.merge(future.report());
  return finish_report(phases, solution_->cache_stats);
}

const Report& GroundingSystem::finish_report(const PhaseReport& phases,
                                             const bem::CongruenceCacheStats& cache_stats) {
  Report report;
  report.gpr = options_.analysis.gpr;
  report.equivalent_resistance = solution_->equivalent_resistance;
  report.total_current = solution_->total_current;
  report.element_count = model_.element_count();
  report.dof_count = model_.dof_count(options_.analysis.assembly.integrator.basis);
  report.phases = phases;
  report.column_costs = solution_->column_costs;
  report.cache_stats = cache_stats;
  report_ = std::move(report);
  return *report_;
}

post::PotentialEvaluator GroundingSystem::potential_evaluator(
    const post::PotentialOptions& options) const {
  EBEM_EXPECT(solution_.has_value(), "call analyze() before requesting post-processing");
  post::PotentialOptions merged = options;
  merged.integrator.basis = options_.analysis.assembly.integrator.basis;
  // Normalized solution: sigma at GPR / gpr gives the unit-GPR distribution;
  // the evaluator works with the actual-GPR sigma directly.
  return post::PotentialEvaluator(model_, solution_->sigma, merged);
}

const Report& GroundingSystem::report() const {
  EBEM_EXPECT(report_.has_value(), "call analyze() first");
  return *report_;
}

const bem::AnalysisResult& GroundingSystem::solution() const {
  EBEM_EXPECT(solution_.has_value(), "call analyze() first");
  return *solution_;
}

}  // namespace ebem::cad

// The paper's two evaluation cases, rebuilt from the published parameters.
//
// Barberá (paper §5.1): a right-triangle-shaped grid, 143 x 89 m, 408
// cylindrical conductor segments of diameter 12.85 mm buried at 0.80 m,
// protecting ~6,600 m^2; GPR 10 kV. Soils: uniform gamma = 0.016 (Ohm m)^-1,
// and two-layer gamma_1 = 0.005 / gamma_2 = 0.016 (Ohm m)^-1 with a 1.0 m
// upper layer.
//
// Balaidós (paper §5.2): 107 conductors of diameter 11.28 mm at 0.80 m plus
// 67 vertical rods (1.5 m long, 14.0 mm diameter); GPR 10 kV; 241 elements.
// Soil models: A uniform 0.020; B two-layer 0.0025 / 0.020 with 0.70 m upper
// layer (all electrodes in the lower layer); C the same but with a 1.0 m
// upper layer (grid in the upper layer, rod tips in the lower).
//
// The exact CAD plans are not published; geometry is generated from these
// parameters (see DESIGN.md §4.2 for why this preserves the evaluation).
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/conductor.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::cad {

// ---------------------------------------------------------------------------
// Barberá

struct BarberaCase {
  std::vector<geom::Conductor> conductors;
  soil::LayeredSoil uniform_soil;
  soil::LayeredSoil two_layer_soil;
  double gpr = 10e3;
};

/// Build the Barberá grid. `refinement` scales the mesh density; the default
/// reproduces the paper's ~408 segments.
[[nodiscard]] BarberaCase barbera_case(std::size_t refinement = 15);

// ---------------------------------------------------------------------------
// Balaidós

struct BalaidosCase {
  std::vector<geom::Conductor> conductors;  ///< grid bars + 67 rods
  soil::LayeredSoil soil_a;                 ///< uniform 0.020
  soil::LayeredSoil soil_b;                 ///< two-layer, 0.70 m upper layer
  soil::LayeredSoil soil_c;                 ///< two-layer, 1.00 m upper layer
  double gpr = 10e3;
};

[[nodiscard]] BalaidosCase balaidos_case();

}  // namespace ebem::cad

#include "src/engine/scheduler.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/engine/engine.hpp"
#include "src/la/blas1.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/permutation.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {

namespace detail {

/// One submitted run. Stage products are only ever touched by the single
/// executor running the run's current stage (a run has at most one ready or
/// executing stage at any time), so they need no locking of their own; the
/// mutex/cv pair orders the status handshake with the futures.
struct RunState {
  explicit RunState(std::optional<bem::BemModel> owned) : owned_model(std::move(owned)) {}

  // Immutable after submit().
  bool factor_only = false;
  /// The async submits' own model copy; empty for blocking-shim runs, which
  /// borrow the caller's model for the (waited-on) run lifetime.
  std::optional<bem::BemModel> owned_model;
  const bem::BemModel* model = nullptr;  ///< owned_model or the borrowed one
  bem::AnalysisOptions options;
  bem::AnalysisExecution execution;  ///< engine plumbing + per-run overrides
  std::optional<std::uint64_t> fingerprint;  ///< set when the warm cache is on
  std::uint64_t sequence = 0;
  Engine* engine = nullptr;

  // Stage products, handed from stage to stage.
  std::optional<bem::AssemblyResult> assembled;
  std::optional<la::Cholesky> factor;

  // Outputs.
  std::optional<bem::AnalysisResult> analysis;
  std::optional<FactoredSystem> factored;
  PhaseReport report;
  bem::CongruenceCacheStats cache_delta;
  std::exception_ptr error;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  RunStatus status = RunStatus::kQueued;
};

}  // namespace detail

using detail::RunState;

namespace {

constexpr int kStageAssemble = 0;
constexpr int kStageFactor = 1;
constexpr int kStageSolve = 2;

/// Heap order of the ready-queue: a later stage beats an earlier one (finish
/// runs before starting new assemblies), ties go to the older run — which is
/// what keeps results flowing out in submission order and bounds the number
/// of assembled matrices alive to ~width.
constexpr auto task_before = [](const auto& a, const auto& b) {
  if (a.stage != b.stage) return a.stage < b.stage;
  return a.run->sequence > b.run->sequence;
};

[[nodiscard]] bool is_terminal(RunStatus status) {
  return status == RunStatus::kDone || status == RunStatus::kFailed ||
         status == RunStatus::kCancelled;
}

[[nodiscard]] RunStatus status_of(const RunState& run) {
  const std::scoped_lock lock(run.mutex);
  return run.status;
}

void wait_terminal(const RunState& run) {
  std::unique_lock lock(run.mutex);
  run.cv.wait(lock, [&] { return is_terminal(run.status); });
}

[[nodiscard]] bool wait_terminal_for(const RunState& run, std::chrono::nanoseconds timeout) {
  std::unique_lock lock(run.mutex);
  if (timeout <= std::chrono::nanoseconds::zero()) return is_terminal(run.status);
  return run.cv.wait_for(lock, timeout, [&] { return is_terminal(run.status); });
}

/// Wait, then leave the run locked-in as kDone or throw its error.
void wait_success(const RunState& run, const char* what) {
  std::unique_lock lock(run.mutex);
  run.cv.wait(lock, [&] { return is_terminal(run.status); });
  if (run.status == RunStatus::kFailed) std::rethrow_exception(run.error);
  EBEM_EXPECT(run.status != RunStatus::kCancelled,
              std::string(what) + ": the run was cancelled before it started");
}

bool cancel_run(RunState& run) {
  {
    const std::scoped_lock lock(run.mutex);
    if (run.status == RunStatus::kQueued) {
      run.status = RunStatus::kCancelled;
    }
    if (run.status != RunStatus::kCancelled) return false;
  }
  run.cv.notify_all();
  return true;
}

void stage_assemble(RunState& run) {
  WallTimer wall;
  CpuTimer cpu;
  bem::AssemblyResult assembled;
  {
    // Admission: if this run's physics differs from the warm cache's, wait
    // for in-flight assemblies to drain, then the stale entries are dropped
    // before ours starts. Factor/solve stages never touch the cache, so
    // they keep pipelining across the physics change.
    const AssemblyGate gate(*run.engine, run.fingerprint, &run.report);
    assembled = bem::assemble(*run.model, run.options.assembly, run.execution.assembly);
  }
  run.report.add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
  if (run.execution.assembly.cache != nullptr) {
    // The assembly tallied its own lookups, so this is exact even with other
    // runs hitting the shared cache concurrently.
    run.cache_delta = assembled.cache_stats;
    run.report.add_counter(bem::kCacheHitsCounter, static_cast<double>(run.cache_delta.hits));
    run.report.add_counter(bem::kCacheMissesCounter,
                           static_cast<double>(run.cache_delta.misses));
  }
  run.assembled = std::move(assembled);
}

void stage_factor(RunState& run) {
  WallTimer wall;
  CpuTimer cpu;
  run.factor.emplace(run.assembled->matrix,
                     la::CholeskyOptions{.block = run.execution.solve.cholesky_block,
                                         .pool = run.execution.solve.pool});
  run.report.add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  run.report.add_counter(kFactorizationsCounter, 1.0);
  if (run.factor_only) {
    Engine& engine = *run.engine;
    run.factored.emplace(std::move(*run.factor), std::move(run.assembled->rhs), engine.pool(),
                         &engine.report(), run.assembled->ordering);
    // Matrix-store counters cover assembly plus the factor copy-in; the
    // factor store keeps paging for the handle's lifetime and is counted at
    // this snapshot.
    add_tile_counters(run.report, run.assembled->matrix.tile_stats());
    add_tile_counters(run.report, run.factored->factor().tile_stats());
    add_compression_counters(run.report, run.assembled->compression, run.assembled->far_field);
    add_ordering_counters(run.report, run.assembled->ordering_stats);
    run.factor.reset();
    run.assembled.reset();
  }
}

void stage_solve(RunState& run) {
  bem::AssemblyResult& system = *run.assembled;
  WallTimer wall;
  CpuTimer cpu;
  bem::SolveStats stats;
  std::vector<double> sigma_hat;
  if (run.execution.solver.kind == bem::SolverKind::kCholesky) {
    // The factor stage already built L; substitute and optionally measure
    // the achieved residual — the same arithmetic bem::solve runs, split at
    // the factorization so the O(N^3) part pipelined separately. Under a
    // geometric ordering the factor and matrix live in internal order:
    // gather the rhs, do everything there, scatter the solution at the end.
    const bem::SolveExecution& exec = run.execution.solve;
    const la::Permutation* ordering = system.ordering.get();
    const la::Cholesky& factor = *run.factor;
    std::vector<double> gathered_rhs;
    std::span<const double> rhs = system.rhs;
    if (ordering != nullptr) {
      gathered_rhs = ordering->gather(system.rhs);
      rhs = gathered_rhs;
    }
    std::vector<double> x = factor.solve(rhs);
    stats.iterations = 0;
    stats.factor_tiles = factor.tile_stats();
    if (exec.measure_residual) {
      std::vector<double> r(rhs.begin(), rhs.end());
      std::vector<double> ax(rhs.size());
      system.matrix.multiply(x, ax, exec.pool, exec.matvec_parallel_cutoff);
      la::axpy(-1.0, ax, r);
      const double b_norm = la::nrm2(rhs);
      stats.relative_residual = b_norm > 0.0 ? la::nrm2(r) / b_norm : 0.0;
    }
    sigma_hat = ordering != nullptr ? ordering->scatter(x) : std::move(x);
  } else {
    // Iterative path: no factor stage ran; this is exactly the blocking
    // solve (including its permutation boundary).
    bem::SolveExecution exec = run.execution.solve;
    exec.ordering = system.ordering.get();
    sigma_hat = bem::solve(system.matrix, system.rhs, run.execution.solver, exec, &stats);
  }
  run.report.add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());

  wall.reset();
  cpu.reset();
  bem::AnalysisResult result =
      bem::finish_analysis(std::move(system), std::move(sigma_hat), run.options.gpr);
  result.solve_stats = stats;
  run.report.add(Phase::kResultsStorage, wall.seconds(), cpu.seconds());
  add_tile_counters(run.report, result.matrix_tiles);
  add_tile_counters(run.report, result.solve_stats.factor_tiles);
  add_compression_counters(run.report, result.compression, result.far_field);
  add_ordering_counters(run.report, result.ordering_stats);
  run.factor.reset();
  run.assembled.reset();
  run.analysis = std::move(result);
}

}  // namespace

// ------------------------------------------------------------- futures ---

void SubmitOptions::validate() const {
  if (storage.has_value()) la::validate_storage_config(*storage, "SubmitOptions");
}

bool FutureBase::ready() const {
  EBEM_EXPECT(valid(), "ready() on an empty run future");
  return is_terminal(status_of(*state_));
}

RunStatus FutureBase::status() const {
  EBEM_EXPECT(valid(), "status() on an empty run future");
  return status_of(*state_);
}

void FutureBase::wait() const {
  EBEM_EXPECT(valid(), "wait() on an empty run future");
  wait_terminal(*state_);
}

bool FutureBase::wait_for(std::chrono::nanoseconds timeout) const {
  EBEM_EXPECT(valid(), "wait_for() on an empty run future");
  return wait_terminal_for(*state_, timeout);
}

const PhaseReport& FutureBase::report() const {
  EBEM_EXPECT(valid(), "report() on an empty run future");
  wait_terminal(*state_);
  return state_->report;
}

const bem::CongruenceCacheStats& FutureBase::cache_delta() const {
  EBEM_EXPECT(valid(), "cache_delta() on an empty run future");
  wait_terminal(*state_);
  return state_->cache_delta;
}

bool FutureBase::cancel() const {
  EBEM_EXPECT(valid(), "cancel() on an empty run future");
  return cancel_run(*state_);
}

const bem::AnalysisResult& RunFuture::get() const {
  EBEM_EXPECT(valid(), "get() on an empty RunFuture");
  wait_success(*state_, "RunFuture::get()");
  EBEM_EXPECT(state_->analysis.has_value(),
              "RunFuture::get(): result already taken — take() consumes it for every copy "
              "of the future");
  return *state_->analysis;
}

bem::AnalysisResult RunFuture::take() {
  EBEM_EXPECT(valid(), "take() on an empty RunFuture");
  wait_success(*state_, "RunFuture::take()");
  EBEM_EXPECT(state_->analysis.has_value(), "RunFuture::take(): result already taken");
  bem::AnalysisResult result = std::move(*state_->analysis);
  state_->analysis.reset();
  return result;
}

FactoredSystem FactorFuture::take() {
  EBEM_EXPECT(valid(), "take() on an empty FactorFuture");
  wait_success(*state_, "FactorFuture::take()");
  EBEM_EXPECT(state_->factored.has_value(), "FactorFuture::take(): result already taken");
  FactoredSystem system = std::move(*state_->factored);
  state_->factored.reset();
  return system;
}

// ----------------------------------------------------------- scheduler ---

Scheduler::Scheduler(Engine& engine, std::size_t width, std::size_t max_pending)
    : engine_(engine), max_pending_(max_pending) {
  EBEM_EXPECT(width >= 1, "Scheduler needs at least one stage executor");
  executors_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  // Executors drain the remaining queue before exiting, so every submitted
  // run reaches a terminal state and no future waits forever.
  ready_cv_.notify_all();
  for (std::thread& executor : executors_) executor.join();
}

std::shared_ptr<RunState> Scheduler::make_run(std::optional<bem::BemModel> owned,
                                              const bem::BemModel* model,
                                              const bem::AnalysisOptions& options,
                                              const SubmitOptions& overrides,
                                              bool factor_only) {
  // Everything that can be rejected is rejected here, on the submitting
  // thread — never on an executor mid-pipeline.
  EBEM_EXPECT(options.gpr > 0.0, "GPR must be positive");
  overrides.validate();

  auto run = std::make_shared<RunState>(std::move(owned));
  run->model = run->owned_model.has_value() ? &*run->owned_model : model;
  run->factor_only = factor_only;
  run->options = options;
  run->execution = engine_.analysis_execution();
  if (overrides.storage.has_value()) run->execution.assembly.storage = *overrides.storage;
  if (overrides.measure_residual.has_value()) {
    run->execution.solve.measure_residual = *overrides.measure_residual;
  }
  if (engine_.cache() != nullptr) {
    run->fingerprint = physics_fingerprint(run->model->soil(), options.assembly);
  }
  run->engine = &engine_;

  {
    std::unique_lock lock(mutex_);
    // Backpressure: at the bound, park the submitting thread until a run
    // retires. Executors never submit, so a waiting submitter cannot stall
    // the drain that frees its slot.
    if (max_pending_ > 0) {
      submit_cv_.wait(lock, [&] { return outstanding_ < max_pending_; });
    }
    run->sequence = next_sequence_++;
    ++submitted_;
    ++outstanding_;
    peak_outstanding_ = std::max(peak_outstanding_, outstanding_);
    ready_.push_back({run, kStageAssemble});
    std::push_heap(ready_.begin(), ready_.end(), task_before);
  }
  ready_cv_.notify_one();
  return run;
}

SchedulerStats Scheduler::stats() const {
  const std::scoped_lock lock(mutex_);
  return {.submitted = submitted_, .peak_outstanding = peak_outstanding_};
}

RunFuture Scheduler::submit(bem::BemModel model, const bem::AnalysisOptions& options,
                            const SubmitOptions& overrides) {
  return RunFuture(
      make_run(std::move(model), nullptr, options, overrides, /*factor_only=*/false));
}

FactorFuture Scheduler::submit_factor(bem::BemModel model, const bem::AnalysisOptions& options,
                                      const SubmitOptions& overrides) {
  // The handles are direct-solver by definition; the configured solver
  // policy governs analysis runs only (same contract as Engine::factor).
  return FactorFuture(
      make_run(std::move(model), nullptr, options, overrides, /*factor_only=*/true));
}

RunFuture Scheduler::submit_borrowed(const bem::BemModel& model,
                                     const bem::AnalysisOptions& options,
                                     const SubmitOptions& overrides) {
  return RunFuture(make_run(std::nullopt, &model, options, overrides, /*factor_only=*/false));
}

FactorFuture Scheduler::submit_factor_borrowed(const bem::BemModel& model,
                                               const bem::AnalysisOptions& options,
                                               const SubmitOptions& overrides) {
  return FactorFuture(make_run(std::nullopt, &model, options, overrides, /*factor_only=*/true));
}

void Scheduler::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void Scheduler::enqueue(Task task) {
  {
    const std::scoped_lock lock(mutex_);
    ready_.push_back(std::move(task));
    std::push_heap(ready_.begin(), ready_.end(), task_before);
  }
  ready_cv_.notify_one();
}

void Scheduler::executor_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and nothing left to drain
      std::pop_heap(ready_.begin(), ready_.end(), task_before);
      task = std::move(ready_.back());
      ready_.pop_back();
    }
    execute_stage(task);
  }
}

void Scheduler::execute_stage(const Task& task) {
  RunState& run = *task.run;
  if (task.stage == kStageAssemble) {
    // First stage: claim the run (or honor a cancel that won the race).
    const std::scoped_lock lock(run.mutex);
    if (run.status == RunStatus::kCancelled) {
      // finish_run would re-notify and must not merge anything; just settle
      // the bookkeeping.
      const std::scoped_lock qlock(mutex_);
      retire_locked();
      return;
    }
    run.status = RunStatus::kRunning;
  }

  try {
    switch (task.stage) {
      case kStageAssemble:
        stage_assemble(run);
        break;
      case kStageFactor:
        stage_factor(run);
        break;
      default:
        stage_solve(run);
        break;
    }
  } catch (...) {
    run.error = std::current_exception();
    finish_run(task.run, RunStatus::kFailed);
    return;
  }

  int next = -1;
  if (task.stage == kStageAssemble) {
    const bool direct = run.execution.solver.kind == bem::SolverKind::kCholesky;
    next = (run.factor_only || direct) ? kStageFactor : kStageSolve;
  } else if (task.stage == kStageFactor && !run.factor_only) {
    next = kStageSolve;
  }
  if (next < 0) {
    finish_run(task.run, RunStatus::kDone);
  } else {
    enqueue({task.run, next});
  }
}

void Scheduler::finish_run(const std::shared_ptr<RunState>& run, RunStatus status) {
  // Session accounting only for completed runs — the blocking path never
  // merged a partially executed run's timings either.
  if (status == RunStatus::kDone) engine_.report().merge(run->report);
  {
    const std::scoped_lock lock(run->mutex);
    run->status = status;
  }
  run->cv.notify_all();
  {
    const std::scoped_lock lock(mutex_);
    retire_locked();
  }
}

void Scheduler::retire_locked() {
  --outstanding_;
  if (outstanding_ == 0) drained_cv_.notify_all();
  if (max_pending_ > 0) submit_cv_.notify_one();
}

}  // namespace ebem::engine

#include "src/engine/factored_system.hpp"

#include <utility>

#include "src/common/phase_report.hpp"
#include "src/engine/counters.hpp"

namespace ebem::engine {

FactoredSystem::FactoredSystem(la::Cholesky factor, std::vector<double> rhs,
                               par::ThreadPool* pool, PhaseReport* report)
    : factor_(std::move(factor)), rhs_(std::move(rhs)), pool_(pool), report_(report) {}

std::vector<double> FactoredSystem::solve() const { return solve(rhs_); }

std::vector<double> FactoredSystem::solve(std::span<const double> rhs) const {
  if (report_ != nullptr) report_->add_counter(kRhsSolvedCounter, 1.0);
  return factor_.solve(rhs);
}

std::vector<double> FactoredSystem::solve_many(std::span<const double> rhs_block,
                                               std::size_t num_rhs) const {
  if (report_ != nullptr) report_->add_counter(kRhsSolvedCounter, static_cast<double>(num_rhs));
  return factor_.solve_many(rhs_block, num_rhs, pool_);
}

}  // namespace ebem::engine

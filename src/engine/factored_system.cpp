#include "src/engine/factored_system.hpp"

#include <utility>

#include "src/common/phase_report.hpp"
#include "src/engine/counters.hpp"

namespace ebem::engine {

FactoredSystem::FactoredSystem(la::Cholesky factor, std::vector<double> rhs,
                               par::ThreadPool* pool, PhaseReport* report,
                               std::shared_ptr<const la::Permutation> ordering)
    : factor_(std::move(factor)),
      rhs_(std::move(rhs)),
      pool_(pool),
      report_(report),
      ordering_(std::move(ordering)) {}

std::vector<double> FactoredSystem::solve() const { return solve(rhs_); }

std::vector<double> FactoredSystem::solve(std::span<const double> rhs) const {
  if (report_ != nullptr) report_->add_counter(kRhsSolvedCounter, 1.0);
  if (ordering_ == nullptr) return factor_.solve(rhs);
  return ordering_->scatter(factor_.solve(ordering_->gather(rhs)));
}

std::vector<double> FactoredSystem::solve_many(std::span<const double> rhs_block,
                                               std::size_t num_rhs) const {
  if (report_ != nullptr) report_->add_counter(kRhsSolvedCounter, static_cast<double>(num_rhs));
  if (ordering_ == nullptr) return factor_.solve_many(rhs_block, num_rhs, pool_);
  return ordering_->scatter_block(
      factor_.solve_many(ordering_->gather_block(rhs_block, num_rhs), num_rhs, pool_), num_rhs);
}

}  // namespace ebem::engine

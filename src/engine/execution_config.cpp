#include "src/engine/execution_config.hpp"

#include "src/common/error.hpp"
#include "src/parallel/thread_pool.hpp"

namespace ebem::engine {

std::size_t ExecutionConfig::resolved_threads() const {
  if (pool != nullptr) return pool->num_threads();
  if (num_threads == 0) return par::hardware_threads();
  return num_threads;
}

void ExecutionConfig::validate() const {
  if (pool != nullptr) {
    // A supplied pool must be the one source of truth for the worker count:
    // the historical footgun was a pool that was silently ignored whenever
    // num_threads stayed at its default of 1.
    EBEM_EXPECT(num_threads == 0 || num_threads == pool->num_threads(),
                "ExecutionConfig: num_threads contradicts the supplied pool's size; "
                "set num_threads = 0 to adopt the pool's worker count");
  }
  EBEM_EXPECT(congruence_quantum > 0.0, "ExecutionConfig: congruence quantum must be positive");
  EBEM_EXPECT(cache_max_entries >= 1, "ExecutionConfig: cache_max_entries must be at least 1");
  EBEM_EXPECT(cg_tolerance > 0.0, "ExecutionConfig: cg_tolerance must be positive");
  EBEM_EXPECT(cholesky_block >= 1, "ExecutionConfig: cholesky_block must be at least 1");
  la::validate_storage_config(storage, "ExecutionConfig");
  EBEM_EXPECT(pipeline_width >= 1, "ExecutionConfig: pipeline_width must be at least 1");
}

}  // namespace ebem::engine

// engine::Scheduler — asynchronous, pipelined execution of analysis runs.
//
// The paper's workload is a CAD loop: many independent analyses of nearby
// grounding-grid candidates. Blocking calls leave the pool idle through each
// candidate's serial solve tail; this scheduler instead accepts whole runs
// up front (Engine::submit / Study::submit return a RunFuture immediately)
// and decomposes each into its pipeline stages
//
//     assemble  ->  [factor]  ->  solve / finish
//
// dispatched from one ready-queue onto a small, fixed set of stage
// executors. Runs do not own threads — task handoff is event-driven: an
// executor pops the best ready stage, runs it, and pushes the run's next
// stage back. Each stage still fans out internally over the engine's shared
// par::ThreadPool via parallel_for (regions are serialized inside the pool),
// so while candidate k's factorization occupies the workers, candidate
// k+1's assembly stage runs its serial sections and queues its own regions:
// the workers stay busy through what used to be dead time between runs.
//
// The ready-queue prefers later stages of older runs over starting new
// assemblies, which both delivers results roughly in submission order and
// bounds how many assembled matrices are alive at once (~pipeline_width).
//
// Concurrency contract with the engine's warm resources:
//  * the congruence cache is shared by concurrent assemblies (it is a
//    sharded, thread-safe map; per-run hit/miss deltas are tallied inside
//    each assembly, not diffed from the shared counters);
//  * a submitted run whose physics fingerprint differs from the cache's
//    current physics waits until in-flight assemblies drain, then the stale
//    entries are dropped — never mid-assembly (see Engine::begin_assembly);
//  * per-run PhaseReports merge into the engine's session report through
//    PhaseReport's internally locked merge, so no counter increment is lost.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/bem/analysis.hpp"
#include "src/engine/factored_system.hpp"
#include "src/la/tile_store.hpp"

namespace ebem::engine {

class Engine;
class Scheduler;

/// Per-run overrides of the engine's session-wide execution policy,
/// validated at submit() time — a bad override throws ebem::InvalidArgument
/// on the submitting thread, never on an executor mid-pipeline.
struct SubmitOptions {
  /// Storage policy of this run's matrix (and factor) stores. Note that a
  /// residency budget is per store per run: with pipeline_width runs in
  /// flight the session's resident total is up to width x budget, so a
  /// session-level cap should be divided across the width before
  /// submitting.
  std::optional<la::StorageConfig> storage;
  /// Override ExecutionConfig::measure_residual for this run.
  std::optional<bool> measure_residual;

  /// Throws ebem::InvalidArgument on contradictions (zero tile size, a
  /// residency budget without a spill_dir).
  void validate() const;
};

enum class RunStatus {
  kQueued,     ///< submitted, no stage started yet (cancellable)
  kRunning,    ///< some stage is executing or between stages
  kDone,       ///< result available
  kFailed,     ///< a stage threw; get() rethrows
  kCancelled,  ///< cancelled before the first stage; get() throws
};

namespace detail {
struct RunState;
}  // namespace detail

/// Shared handle surface of one submitted run: lifecycle queries, the
/// per-run report and cache-delta, and best-effort cancel. Copyable (all
/// copies observe the same run); default-constructed handles are empty
/// (valid() == false). RunFuture/FactorFuture add only their payload
/// accessor.
class FutureBase {
 public:
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// Non-blocking: has the run reached a terminal state (done/failed/
  /// cancelled)?
  [[nodiscard]] bool ready() const;
  [[nodiscard]] RunStatus status() const;
  /// Block until terminal.
  void wait() const;
  /// Block until terminal or until `timeout` elapses, whichever comes
  /// first; returns whether the run is terminal. A non-positive timeout is
  /// a non-blocking poll. This is what lets one dispatcher thread watch
  /// many runs with deadlines instead of parking a thread per run (the
  /// service layer's harvest loop is the canonical caller).
  [[nodiscard]] bool wait_for(std::chrono::nanoseconds timeout) const;
  /// This run's phase timings and counters; blocks until terminal (the
  /// same numbers the engine's session report received).
  [[nodiscard]] const PhaseReport& report() const;
  /// Congruence-cache hits/misses of this run alone (exact under
  /// concurrency — tallied inside the run's assembly); blocks until
  /// terminal.
  [[nodiscard]] const bem::CongruenceCacheStats& cache_delta() const;
  /// Best-effort cancel: succeeds only while the run is still queued (no
  /// stage started). Returns whether the run will never execute.
  bool cancel() const;

 protected:
  FutureBase() = default;
  explicit FutureBase(std::shared_ptr<detail::RunState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::RunState> state_;
};

/// Future of a submitted analysis run (Engine/Study::submit).
class RunFuture : public FutureBase {
 public:
  RunFuture() = default;

  /// Block, then return the result; rethrows the run's exception on
  /// failure and throws ebem::InvalidArgument on a cancelled run. The
  /// result stays owned by the future, so get() may be called repeatedly.
  [[nodiscard]] const bem::AnalysisResult& get() const;
  /// Block, then move the result out (one shot — the blocking shims'
  /// flavor).
  [[nodiscard]] bem::AnalysisResult take();

 private:
  friend class Scheduler;
  using FutureBase::FutureBase;
};

/// Future of a submitted assemble+factor run (Engine::submit_factor).
class FactorFuture : public FutureBase {
 public:
  FactorFuture() = default;

  /// Block, then move the factored system out (one shot; the handle borrows
  /// the engine's pool and report, so the Engine must outlive it).
  [[nodiscard]] FactoredSystem take();

 private:
  friend class Scheduler;
  using FutureBase::FutureBase;
};

/// Lifetime accounting of a scheduler — what the backpressure bound and the
/// campaign bench assert against.
struct SchedulerStats {
  std::uint64_t submitted = 0;        ///< runs accepted so far
  std::size_t peak_outstanding = 0;   ///< max simultaneous non-terminal runs
};

/// The engine's stage scheduler. Owned by (and only constructible through)
/// an Engine; public mainly so tests can name it. Destruction drains: every
/// submitted run reaches a terminal state before the executors join.
class Scheduler {
 public:
  /// `max_pending` bounds runs submitted but not yet terminal (0 =
  /// unbounded): at the bound, submit blocks until a run retires.
  Scheduler(Engine& engine, std::size_t width, std::size_t max_pending = 0);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] RunFuture submit(bem::BemModel model, const bem::AnalysisOptions& options,
                                 const SubmitOptions& overrides);
  [[nodiscard]] FactorFuture submit_factor(bem::BemModel model,
                                           const bem::AnalysisOptions& options,
                                           const SubmitOptions& overrides);

  /// Blocking-shim flavors: no model copy is taken, so the caller must keep
  /// `model` alive until the returned future is terminal — which the
  /// blocking analyze()/factor() shims guarantee by waiting on the future
  /// before they return. Asynchronous callers use the owning overloads
  /// above instead.
  [[nodiscard]] RunFuture submit_borrowed(const bem::BemModel& model,
                                          const bem::AnalysisOptions& options,
                                          const SubmitOptions& overrides);
  [[nodiscard]] FactorFuture submit_factor_borrowed(const bem::BemModel& model,
                                                    const bem::AnalysisOptions& options,
                                                    const SubmitOptions& overrides);

  /// Block until every run submitted so far is terminal.
  void drain();

  [[nodiscard]] std::size_t width() const { return executors_.size(); }

  /// Snapshot of the lifetime accounting (peak_outstanding is exact: it is
  /// maintained under the same lock that admits submissions).
  [[nodiscard]] SchedulerStats stats() const;

 private:
  struct Task {
    std::shared_ptr<detail::RunState> run;
    int stage;
  };

  /// `owned` carries the async submits' model copy (the run then points at
  /// it); empty for the borrowed shims, where `model` is caller-kept.
  std::shared_ptr<detail::RunState> make_run(std::optional<bem::BemModel> owned,
                                             const bem::BemModel* model,
                                             const bem::AnalysisOptions& options,
                                             const SubmitOptions& overrides, bool factor_only);
  void enqueue(Task task);
  void executor_loop();
  void execute_stage(const Task& task);
  void finish_run(const std::shared_ptr<detail::RunState>& run, RunStatus status);

  /// Called on both retirement paths (finish_run and the cancelled-before-
  /// start bookkeeping) under mutex_; wakes drain() and bounded submitters.
  void retire_locked();

  Engine& engine_;
  std::size_t max_pending_ = 0;  ///< 0 = unbounded (immutable after ctor)

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;    ///< executors: a task or stop arrived
  std::condition_variable drained_cv_;  ///< drain(): outstanding_ hit zero
  std::condition_variable submit_cv_;   ///< bounded submit: a slot opened
  std::vector<Task> ready_;             ///< heap: later stages first, then FIFO
  std::size_t outstanding_ = 0;         ///< submitted runs not yet terminal
  std::size_t peak_outstanding_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace ebem::engine

// A factored Galerkin system: one Cholesky factorization, many solves.
//
// The CAD loops around the solver (design ladders, soil-estimation sweeps,
// safety scans) repeatedly need solutions of the *same* system for
// different right-hand sides; refactoring the O(N^3/3) triangle for each of
// them would dwarf the O(N^2) substitutions. A FactoredSystem is the handle
// engine::Engine::factor / engine::Study::factor return: it owns the factor
// (and the assembled nu of eq. 4.6), references the Engine's worker pool,
// and answers each subsequent right-hand side with substitutions only.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/la/cholesky.hpp"
#include "src/la/permutation.hpp"

namespace ebem {
class PhaseReport;
}  // namespace ebem

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::engine {

class FactoredSystem {
 public:
  /// `pool` and `report` are borrowed (typically from the owning Engine,
  /// which must outlive the handle); either may be null. `ordering` is the
  /// geometric DoF permutation the factored matrix was assembled under
  /// (AssemblyResult::ordering) — with it set, every solve gathers its rhs
  /// into the factor's internal order and scatters the solution back, so
  /// the handle speaks external (model) order exactly like an unordered one.
  FactoredSystem(la::Cholesky factor, std::vector<double> rhs, par::ThreadPool* pool,
                 PhaseReport* report,
                 std::shared_ptr<const la::Permutation> ordering = nullptr);

  [[nodiscard]] std::size_t size() const { return factor_.size(); }

  /// The assembled right-hand side nu (integral of each test function).
  [[nodiscard]] const std::vector<double>& rhs() const { return rhs_; }

  /// Solve for the system's own rhs() — the normalized unit-GPR problem.
  [[nodiscard]] std::vector<double> solve() const;

  /// Solve for one arbitrary right-hand side; no refactorization.
  [[nodiscard]] std::vector<double> solve(std::span<const double> rhs) const;

  /// Solve for `num_rhs` right-hand sides at once (row-major n x num_rhs
  /// block, see la::Cholesky::solve_many). Matches column-by-column solve()
  /// bit for bit at every thread count, at one blocked substitution sweep
  /// instead of num_rhs independent ones.
  [[nodiscard]] std::vector<double> solve_many(std::span<const double> rhs_block,
                                               std::size_t num_rhs) const;

  [[nodiscard]] const la::Cholesky& factor() const { return factor_; }

 private:
  la::Cholesky factor_;
  std::vector<double> rhs_;  ///< external order, like every public vector
  par::ThreadPool* pool_;
  PhaseReport* report_;
  std::shared_ptr<const la::Permutation> ordering_;
};

}  // namespace ebem::engine

// The single execution contract of an engine::Engine: every knob that
// describes *how* analyses run — worker threads, schedules, backends, the
// congruence-cache policy, the solver choice and its tolerances — in one
// validated struct, configured once per session.
//
// Before the Engine existed these knobs were smeared across four option
// structs (AssemblyOptions, SolverOptions, AnalysisOptions, DesignOptions),
// each carrying its own num_threads/pool pair with subtly different
// semantics; the worst of them — SolverOptions::pool being silently ignored
// whenever num_threads stayed 1 — is exactly the class of contradiction
// validate() now rejects up front.
#pragma once

#include <cstddef>

#include "src/bem/assembly.hpp"
#include "src/bem/congruence_cache.hpp"
#include "src/bem/pair_signature.hpp"
#include "src/bem/solver.hpp"
#include "src/parallel/schedule.hpp"

namespace ebem::par {
class ThreadPool;
}  // namespace ebem::par

namespace ebem::engine {

struct ExecutionConfig {
  // --- parallelism -------------------------------------------------------
  /// Worker count shared by the assembly and solve phases; 1 is the serial
  /// reference path, 0 resolves to the external pool's size (or the
  /// hardware concurrency when no pool is supplied).
  std::size_t num_threads = 1;
  /// Optional externally owned worker pool. When set, num_threads must be 0
  /// (adopt the pool's size) or match it exactly — validate() throws on any
  /// other combination instead of silently ignoring one of the two.
  par::ThreadPool* pool = nullptr;
  par::Schedule schedule = par::Schedule::dynamic(1);
  bem::ParallelLoop loop = bem::ParallelLoop::kOuter;
  bem::Backend backend = bem::Backend::kThreadPool;
  /// Stage executors of the engine's pipelining scheduler — the number of
  /// submitted runs whose stages (assemble / factor / solve) may be in
  /// flight at once. Runs do not own threads: a fixed set of executors pops
  /// ready stages off one queue, so 2 is enough to overlap candidate k+1's
  /// assembly with candidate k's factorization/solve on the shared pool
  /// (the ready queue prefers finishing older runs over starting new ones,
  /// which also bounds how many assembled matrices are alive at once).
  /// Must be >= 1; 1 serializes submitted runs in submission order.
  std::size_t pipeline_width = 2;
  /// Bound on runs submitted but not yet terminal (queued + executing).
  /// 0 keeps the historical unbounded queue; with a bound, submit() blocks
  /// the submitting thread until a run retires — backpressure, so a loop
  /// that submits thousands of scenarios cannot pile up thousands of queued
  /// runs (each queued run holds its model copy, and the ready-queue's
  /// stage preference only bounds *assembled matrices*, not queue entries).
  /// Campaign-style drivers should set this to a small multiple of
  /// pipeline_width; see campaign::Runner, which adds its own result-side
  /// window on top.
  std::size_t max_pending_runs = 0;

  // --- congruence cache --------------------------------------------------
  /// Keep one warm congruence cache across every assembly the Engine runs:
  /// nearby systems (design ladders, estimation sweeps) replay each other's
  /// elemental blocks. The Engine drops the cache automatically whenever
  /// the physics fingerprint (soil + integrator/series options) changes.
  bool use_congruence_cache = true;
  double congruence_quantum = bem::kDefaultCongruenceQuantum;
  std::size_t cache_max_entries = bem::CongruenceCache::kDefaultMaxEntries;

  // --- solver ------------------------------------------------------------
  bem::SolverKind solver = bem::SolverKind::kCholesky;
  double cg_tolerance = 1e-12;
  std::size_t cg_max_iterations = 0;  ///< 0 = automatic
  std::size_t cholesky_block = 64;
  /// Serial/parallel crossover of the pooled symmetric matvec (PCG's A*p
  /// and the direct path's residual check): systems smaller than this take
  /// the bitwise-serial walk. The compile-time default
  /// (la::SymMatrix::kParallelCutoff) was measured once on one machine;
  /// this knob lets a session tune the crossover without recompiling.
  std::size_t matvec_parallel_cutoff = la::SymMatrix::kParallelCutoff;
  /// Report the direct solver's achieved relative residual on SolveStats.
  /// The check costs one O(N^2) matvec per solve — under a spill-backed
  /// storage budget that is a full re-page of the matrix — so out-of-core
  /// sessions that don't need the statistic should turn it off.
  bool measure_residual = true;

  // --- matrix storage -----------------------------------------------------
  /// Tile geometry and residency policy of every matrix (and Cholesky
  /// factor) the engine's analyses allocate. The default is the fully
  /// resident in-memory tile arena; setting residency_budget_bytes > 0
  /// selects the file-backed spill pager, capping resident matrix bytes per
  /// store — the out-of-core path for grids beyond single-node memory.
  /// Eviction and spill-IO counters land on the session PhaseReport.
  /// Setting storage.compression.epsilon > 0 instead selects the low-rank
  /// (H-matrix) backend: assembly builds well-separated tile blocks as ACA
  /// U V^T factors accurate to epsilon and skips their exact pair
  /// integrations; compression counters (blocks, stored vs dense bytes,
  /// rank sum, pairs skipped/sampled) land on the session PhaseReport.
  /// Compression and a spill residency budget are mutually exclusive.
  /// Setting storage.compression.ordering = la::DofOrdering::kGeometric
  /// additionally stores each matrix under an RCB geometric DoF clustering
  /// (src/bem/clustering.hpp) — the permutation is applied and undone at
  /// the matrix boundary, results stay in model order, and square grids
  /// whose in-place DoF slabs refuse to compress become compressible;
  /// ordering counters land on the session PhaseReport.
  la::StorageConfig storage;

  // --- instrumentation ---------------------------------------------------
  /// Record per-column assembly costs (schedule-simulator input).
  bool measure_column_costs = false;

  /// Worker count after resolving num_threads == 0 against the pool /
  /// hardware concurrency.
  [[nodiscard]] std::size_t resolved_threads() const;

  /// Throws ebem::InvalidArgument on any internal contradiction (thread /
  /// pool mismatch, non-positive tolerances or quanta). Engine construction
  /// validates exactly once; the config is immutable afterwards.
  void validate() const;
};

}  // namespace ebem::engine

#include "src/engine/engine.hpp"

#include <bit>

#include "src/common/hash.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::engine {

namespace {

[[nodiscard]] std::uint64_t word_of(double value) { return std::bit_cast<std::uint64_t>(value); }

}  // namespace

std::uint64_t physics_fingerprint(const soil::LayeredSoil& soil,
                                  const bem::AssemblyOptions& options) {
  std::uint64_t h = 0x9d7fb3a5c1e42b17ULL;
  h = hash_combine(h, soil.layer_count());
  for (std::size_t c = 0; c < soil.layer_count(); ++c) {
    h = hash_combine(h, word_of(soil.conductivity(c)));
    if (c + 1 < soil.layer_count()) h = hash_combine(h, word_of(soil.interface_depth(c)));
  }
  const bem::IntegratorOptions& integrator = options.integrator;
  h = hash_combine(h, static_cast<std::uint64_t>(integrator.basis));
  h = hash_combine(h, static_cast<std::uint64_t>(integrator.inner));
  h = hash_combine(h, integrator.outer_gauss_points);
  h = hash_combine(h, integrator.inner_gauss_points);
  h = hash_combine(h, static_cast<std::uint64_t>(integrator.segment_eval));
  h = hash_combine(h, word_of(integrator.mixed_tail_threshold));
  h = hash_combine(h, word_of(options.series.tolerance));
  h = hash_combine(h, options.series.max_reflections);
  h = hash_combine(h, word_of(options.hankel.tolerance));
  h = hash_combine(h, word_of(options.hankel.lambda_cut));
  h = hash_combine(h, options.hankel.max_panels);
  return h;
}

AssemblyGate::AssemblyGate(Engine& engine, const std::optional<std::uint64_t>& fingerprint,
                           PhaseReport* run_report)
    : engine_(engine) {
  engine.begin_assembly(fingerprint, run_report);
}

AssemblyGate::~AssemblyGate() { engine_.end_assembly(); }

Engine::Engine(const ExecutionConfig& config)
    : config_(config), threads_(config.resolved_threads()) {
  config_.validate();
  if (config_.pool != nullptr) {
    pool_ = config_.pool;
  } else if (threads_ > 1) {
    owned_pool_.emplace(threads_);
    pool_ = &*owned_pool_;
  }
  if (config_.use_congruence_cache) {
    cache_.emplace(config_.congruence_quantum, config_.cache_max_entries);
  }
}

Engine::~Engine() {
  // unique_ptr order alone would do (scheduler_ is declared last), but be
  // explicit: the scheduler's destructor drains every submitted run while
  // the pool and cache are still alive.
  scheduler_.reset();
}

Scheduler& Engine::scheduler() {
  const std::scoped_lock lock(scheduler_mutex_);
  if (scheduler_ == nullptr) {
    scheduler_ =
        std::make_unique<Scheduler>(*this, config_.pipeline_width, config_.max_pending_runs);
  }
  return *scheduler_;
}

SchedulerStats Engine::scheduler_stats() {
  const std::scoped_lock lock(scheduler_mutex_);
  return scheduler_ != nullptr ? scheduler_->stats() : SchedulerStats{};
}

RunFuture Engine::submit(bem::BemModel model, const bem::AnalysisOptions& options,
                         const SubmitOptions& overrides) {
  return scheduler().submit(std::move(model), options, overrides);
}

FactorFuture Engine::submit_factor(bem::BemModel model, const bem::AnalysisOptions& options,
                                   const SubmitOptions& overrides) {
  return scheduler().submit_factor(std::move(model), options, overrides);
}

void Engine::drain() {
  // Snapshot the pointer, then drain unlocked: holding scheduler_mutex_
  // through the drain would park concurrent submit() callers for the full
  // remaining wall time of every in-flight run. The scheduler itself only
  // dies with the Engine, so the unlocked call is safe.
  Scheduler* scheduler = nullptr;
  {
    const std::scoped_lock lock(scheduler_mutex_);
    scheduler = scheduler_.get();
  }
  if (scheduler != nullptr) scheduler->drain();
}

void Engine::clear_cache() {
  std::unique_lock lock(gate_mutex_);
  // Never drop entries under a run that is replaying them.
  gate_cv_.wait(lock, [&] { return active_assemblies_ == 0; });
  if (cache_) cache_->clear();
  cache_fingerprint_.reset();
}

void Engine::begin_assembly(const std::optional<std::uint64_t>& fingerprint,
                            PhaseReport* run_report) {
  if (!cache_ || !fingerprint.has_value()) {
    // No shared warm state to keep coherent: admit unconditionally (the
    // counter still balances end_assembly and keeps clear_cache honest).
    const std::scoped_lock lock(gate_mutex_);
    ++active_assemblies_;
    return;
  }
  std::unique_lock lock(gate_mutex_);
  // A matching run joins the in-flight set immediately; a physics change
  // waits for the set to drain, then clears — so entries of the old physics
  // are never dropped (or replayed) mid-assembly.
  const auto admissible = [&] {
    return active_assemblies_ == 0 ||
           (cache_fingerprint_.has_value() && *cache_fingerprint_ == *fingerprint);
  };
  double wait_seconds = 0.0;
  if (!admissible()) {
    const WallTimer wait_timer;
    gate_cv_.wait(lock, admissible);
    wait_seconds = wait_timer.seconds();
  }
  bool dropped = false;
  if (!cache_fingerprint_.has_value() || *cache_fingerprint_ != *fingerprint) {
    // Different physics, same geometry classes would replay wrong blocks:
    // drop the warm entries. The hit/miss counters survive — they are
    // session statistics; per-run deltas are tallied inside each assembly.
    cache_->drop_entries();
    cache_fingerprint_ = *fingerprint;
    dropped = true;
  }
  ++active_assemblies_;
  lock.unlock();
  // Guard-cost accounting, outside the gate lock (the report has its own).
  // Pipelined runs pay into their own report (merged into the session sink
  // on completion); the blocking assemble path pays the session directly.
  PhaseReport& sink = run_report != nullptr ? *run_report : report_;
  if (dropped) sink.add_counter(kCacheDropsCounter, 1.0);
  if (wait_seconds > 0.0) sink.add_counter(kGateWaitSecondsCounter, wait_seconds);
}

void Engine::end_assembly() {
  {
    const std::scoped_lock lock(gate_mutex_);
    --active_assemblies_;
  }
  gate_cv_.notify_all();
}

bem::AssemblyExecution Engine::assembly_execution() {
  bem::AssemblyExecution execution;
  execution.num_threads = threads_;
  execution.pool = config_.backend == bem::Backend::kThreadPool ? pool_ : nullptr;
  execution.schedule = config_.schedule;
  execution.loop = config_.loop;
  execution.backend = config_.backend;
  execution.storage = config_.storage;
  execution.measure_column_costs = config_.measure_column_costs;
  execution.cache = cache_ ? &*cache_ : nullptr;
  return execution;
}

bem::SolveExecution Engine::solve_execution() const {
  return {.pool = pool_,
          .cholesky_block = config_.cholesky_block,
          .matvec_parallel_cutoff = config_.matvec_parallel_cutoff,
          .measure_residual = config_.measure_residual};
}

bem::SolverOptions Engine::solver_options() const {
  return {.kind = config_.solver,
          .cg_tolerance = config_.cg_tolerance,
          .cg_max_iterations = config_.cg_max_iterations};
}

bem::AnalysisExecution Engine::analysis_execution() {
  bem::AnalysisExecution execution;
  execution.assembly = assembly_execution();
  execution.solver = solver_options();
  execution.solve = solve_execution();
  return execution;
}

bem::AssemblyResult Engine::assemble(const bem::BemModel& model,
                                     const bem::AssemblyOptions& options) {
  std::optional<std::uint64_t> fingerprint;
  if (cache_) fingerprint = physics_fingerprint(model.soil(), options);
  bem::AssemblyResult result;
  {
    const AssemblyGate gate(*this, fingerprint);
    result = bem::assemble(model, options, assembly_execution());
  }
  // The matrix's store is created inside this call, so its cumulative
  // counters are exactly this assembly's delta — fold them in like the
  // analyze/factor paths do.
  add_tile_counters(report_, result.matrix_tiles);
  add_compression_counters(report_, result.compression, result.far_field);
  add_ordering_counters(report_, result.ordering_stats);
  return result;
}

std::vector<double> Engine::solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                  bem::SolveStats* stats) {
  bem::SolveStats local_stats;
  bem::SolveStats* sink = stats != nullptr ? stats : &local_stats;
  bem::SolveExecution execution = solve_execution();
  // The local sink exists only to harvest the pager counters; don't let it
  // trigger the residual check's O(N^2) matvec the caller never asked for.
  if (stats == nullptr) execution.measure_residual = false;
  std::vector<double> x = bem::solve(matrix, rhs, solver_options(), execution, sink);
  // Counted only once the factorization actually happened (the direct path
  // factors exactly once per solve; a throw above counts nothing).
  if (config_.solver == bem::SolverKind::kCholesky) {
    report_.add_counter(kFactorizationsCounter, 1.0);
  }
  // The factor's working store is created and retired inside this call, so
  // its cumulative counters are exactly this solve's delta. The matrix is
  // caller-owned (cumulative across their calls) and not re-counted here.
  add_tile_counters(report_, sink->factor_tiles);
  return x;
}

bem::AnalysisResult Engine::analyze(const bem::BemModel& model,
                                    const bem::AnalysisOptions& options,
                                    PhaseReport* run_report) {
  // Borrowed submit: take() below blocks until the run is terminal, so the
  // caller's model provably outlives it and no copy is needed.
  RunFuture future = scheduler().submit_borrowed(model, options, {});
  bem::AnalysisResult result = future.take();
  if (run_report != nullptr) run_report->merge(future.report());
  return result;
}

FactoredSystem Engine::factor(const bem::BemModel& model, const bem::AnalysisOptions& options) {
  return scheduler().submit_factor_borrowed(model, options, {}).take();
}

}  // namespace ebem::engine

#include "src/engine/engine.hpp"

#include <bit>

#include "src/common/hash.hpp"
#include "src/common/timer.hpp"
#include "src/engine/counters.hpp"
#include "src/la/cholesky.hpp"
#include "src/soil/soil_model.hpp"

namespace ebem::engine {

namespace {

[[nodiscard]] std::uint64_t word_of(double value) { return std::bit_cast<std::uint64_t>(value); }

/// Order-dependent hash of everything the elemental blocks depend on besides
/// pair geometry. Geometry congruence is the cache key's job; this pins the
/// physics the key deliberately leaves out.
[[nodiscard]] std::uint64_t physics_fingerprint(const soil::LayeredSoil& soil,
                                                const bem::AssemblyOptions& options) {
  std::uint64_t h = 0x9d7fb3a5c1e42b17ULL;
  h = hash_combine(h, soil.layer_count());
  for (std::size_t c = 0; c < soil.layer_count(); ++c) {
    h = hash_combine(h, word_of(soil.conductivity(c)));
    if (c + 1 < soil.layer_count()) h = hash_combine(h, word_of(soil.interface_depth(c)));
  }
  const bem::IntegratorOptions& integrator = options.integrator;
  h = hash_combine(h, static_cast<std::uint64_t>(integrator.basis));
  h = hash_combine(h, static_cast<std::uint64_t>(integrator.inner));
  h = hash_combine(h, integrator.outer_gauss_points);
  h = hash_combine(h, integrator.inner_gauss_points);
  h = hash_combine(h, word_of(options.series.tolerance));
  h = hash_combine(h, options.series.max_reflections);
  h = hash_combine(h, word_of(options.hankel.tolerance));
  h = hash_combine(h, word_of(options.hankel.lambda_cut));
  h = hash_combine(h, options.hankel.max_panels);
  return h;
}

}  // namespace

Engine::Engine(const ExecutionConfig& config)
    : config_(config), threads_(config.resolved_threads()) {
  config_.validate();
  if (config_.pool != nullptr) {
    pool_ = config_.pool;
  } else if (threads_ > 1) {
    owned_pool_.emplace(threads_);
    pool_ = &*owned_pool_;
  }
  if (config_.use_congruence_cache) {
    cache_.emplace(config_.congruence_quantum, config_.cache_max_entries);
  }
}

void Engine::add_cache_counters(const bem::CongruenceCacheStats& delta) {
  if (!cache_) return;
  // Same counter names bem::analyze reports, so factor- and analyze-path
  // runs accumulate into one session view.
  report_.add_counter(bem::kCacheHitsCounter, static_cast<double>(delta.hits));
  report_.add_counter(bem::kCacheMissesCounter, static_cast<double>(delta.misses));
}

namespace {

/// Fold one store's pager counters into a report. Fully resident stores
/// contribute nothing, so in-memory sessions keep a clean Table 6.1.
void add_tile_counters(PhaseReport& report, const la::TileStoreStats& stats) {
  if (stats.evictions == 0 && stats.spill_writes == 0 && stats.spill_reads == 0) return;
  report.add_counter(kTileEvictionsCounter, static_cast<double>(stats.evictions));
  report.add_counter(kTileSpillWritesCounter, static_cast<double>(stats.spill_writes));
  report.add_counter(kTileSpillReadsCounter, static_cast<double>(stats.spill_reads));
}

}  // namespace

void Engine::clear_cache() {
  if (cache_) cache_->clear();
  cache_fingerprint_.reset();
}

void Engine::refresh_cache_fingerprint(const bem::BemModel& model,
                                       const bem::AssemblyOptions& options) {
  if (!cache_) return;
  const std::uint64_t fingerprint = physics_fingerprint(model.soil(), options);
  if (cache_fingerprint_.has_value() && *cache_fingerprint_ != fingerprint) {
    // Different physics, same geometry classes would replay wrong blocks:
    // drop the warm entries. The hit/miss counters survive — they are
    // session statistics, and per-run deltas are snapshotted around this.
    cache_->drop_entries();
  }
  cache_fingerprint_ = fingerprint;
}

bem::AssemblyExecution Engine::assembly_execution() {
  bem::AssemblyExecution execution;
  execution.num_threads = threads_;
  execution.pool = config_.backend == bem::Backend::kThreadPool ? pool_ : nullptr;
  execution.schedule = config_.schedule;
  execution.loop = config_.loop;
  execution.backend = config_.backend;
  execution.storage = config_.storage;
  execution.measure_column_costs = config_.measure_column_costs;
  execution.cache = cache_ ? &*cache_ : nullptr;
  return execution;
}

bem::SolveExecution Engine::solve_execution() const {
  return {.pool = pool_,
          .cholesky_block = config_.cholesky_block,
          .matvec_parallel_cutoff = config_.matvec_parallel_cutoff,
          .measure_residual = config_.measure_residual};
}

bem::SolverOptions Engine::solver_options() const {
  return {.kind = config_.solver,
          .cg_tolerance = config_.cg_tolerance,
          .cg_max_iterations = config_.cg_max_iterations};
}

bem::AnalysisExecution Engine::analysis_execution() {
  bem::AnalysisExecution execution;
  execution.assembly = assembly_execution();
  execution.solver = solver_options();
  execution.solve = solve_execution();
  return execution;
}

bem::AssemblyResult Engine::assemble(const bem::BemModel& model,
                                     const bem::AssemblyOptions& options) {
  refresh_cache_fingerprint(model, options);
  bem::AssemblyResult result = bem::assemble(model, options, assembly_execution());
  // The matrix's store is created inside this call, so its cumulative
  // counters are exactly this assembly's delta — fold them in like the
  // analyze/factor paths do.
  add_tile_counters(report_, result.matrix_tiles);
  return result;
}

std::vector<double> Engine::solve(const la::SymMatrix& matrix, std::span<const double> rhs,
                                  bem::SolveStats* stats) {
  bem::SolveStats local_stats;
  bem::SolveStats* sink = stats != nullptr ? stats : &local_stats;
  bem::SolveExecution execution = solve_execution();
  // The local sink exists only to harvest the pager counters; don't let it
  // trigger the residual check's O(N^2) matvec the caller never asked for.
  if (stats == nullptr) execution.measure_residual = false;
  std::vector<double> x = bem::solve(matrix, rhs, solver_options(), execution, sink);
  // Counted only once the factorization actually happened (the direct path
  // factors exactly once per solve; a throw above counts nothing).
  if (config_.solver == bem::SolverKind::kCholesky) {
    report_.add_counter(kFactorizationsCounter, 1.0);
  }
  // The factor's working store is created and retired inside this call, so
  // its cumulative counters are exactly this solve's delta. The matrix is
  // caller-owned (cumulative across their calls) and not re-counted here.
  add_tile_counters(report_, sink->factor_tiles);
  return x;
}

bem::AnalysisResult Engine::analyze(const bem::BemModel& model,
                                    const bem::AnalysisOptions& options,
                                    PhaseReport* run_report) {
  refresh_cache_fingerprint(model, options.assembly);
  PhaseReport run;
  bem::AnalysisResult result = bem::analyze(model, options, analysis_execution(), &run);
  // Into the per-run report first, so run_report really is "this run's view
  // of the same numbers" — factorizations included, and only on success.
  if (config_.solver == bem::SolverKind::kCholesky) {
    run.add_counter(kFactorizationsCounter, 1.0);
  }
  add_tile_counters(run, result.matrix_tiles);
  add_tile_counters(run, result.solve_stats.factor_tiles);
  report_.merge(run);
  if (run_report != nullptr) run_report->merge(run);
  return result;
}

FactoredSystem Engine::factor(const bem::BemModel& model, const bem::AnalysisOptions& options) {
  refresh_cache_fingerprint(model, options.assembly);
  WallTimer wall;
  CpuTimer cpu;
  const bem::CongruenceCacheStats cache_before = cache_stats();
  bem::AssemblyResult system =
      bem::assemble(model, options.assembly, assembly_execution());
  report_.add(Phase::kMatrixGeneration, wall.seconds(), cpu.seconds());
  add_cache_counters(system.cache_stats.delta_since(cache_before));

  wall.reset();
  cpu.reset();
  la::Cholesky factor(system.matrix, {.block = config_.cholesky_block, .pool = pool_});
  report_.add(Phase::kLinearSolve, wall.seconds(), cpu.seconds());
  report_.add_counter(kFactorizationsCounter, 1.0);
  // Matrix-store counters cover assembly plus the factor copy-in; the
  // factor store keeps paging for the handle's lifetime and is counted at
  // this snapshot (its substitutions re-read tiles, not the matrix).
  add_tile_counters(report_, system.matrix.tile_stats());
  add_tile_counters(report_, factor.tile_stats());
  return FactoredSystem(std::move(factor), std::move(system.rhs), pool_, &report_);
}

}  // namespace ebem::engine

// Names of the session counters an Engine accumulates on its PhaseReport —
// shared constants so the analyze, solve and factor paths (and any test or
// report consumer) land on the same totals. The congruence-cache counter
// names live with their producer in src/bem/analysis.hpp.
#pragma once

#include "src/bem/clustering.hpp"
#include "src/bem/far_field.hpp"
#include "src/common/phase_report.hpp"
#include "src/la/tile_store.hpp"

namespace ebem::engine {

/// Incremented once per successful direct (Cholesky) factorization —
/// Engine::analyze/solve with SolverKind::kCholesky, and Engine::factor.
inline constexpr const char* kFactorizationsCounter = "Cholesky factorizations";

/// Incremented per right-hand side answered by a FactoredSystem (solve adds
/// one, solve_many adds the block width). Together with
/// kFactorizationsCounter this lets a session assert "k solves, one
/// factorization".
inline constexpr const char* kRhsSolvedCounter = "Right-hand sides solved";

/// Fingerprint-guard cost counters (Engine::begin_assembly). A run whose
/// physics fingerprint differs from the warm cache's drains the in-flight
/// assemblies and drops the warm entries before it starts; the drop count
/// and the wall seconds spent parked at the gate quantify what a
/// physics-changing workload (a campaign soil sweep is the worst case — a
/// drop per scenario) pays for cache coherence. Physics-stable workloads
/// (design ladders, damage sweeps) keep both at zero.
inline constexpr const char* kCacheDropsCounter = "Warm cache physics drops";
inline constexpr const char* kGateWaitSecondsCounter = "Assembly gate wait seconds";

/// Tile-pager counters, summed over the matrix store and the Cholesky
/// factor's working store of each run. All stay zero for fully resident
/// (in-memory) storage; with an ExecutionConfig::storage residency budget
/// they record how hard the out-of-core path worked — evictions, dirty
/// tiles written to the spill file, and tiles read back on checkout.
inline constexpr const char* kTileEvictionsCounter = "Tile evictions";
inline constexpr const char* kTileSpillWritesCounter = "Tile spill writes";
inline constexpr const char* kTileSpillReadsCounter = "Tile spill read-backs";

/// Fold one store's pager counters into a report. Fully resident stores
/// contribute nothing, so in-memory sessions keep a clean Table 6.1. Shared
/// by the blocking Engine paths and the scheduler's staged pipeline.
inline void add_tile_counters(PhaseReport& report, const la::TileStoreStats& stats) {
  if (stats.evictions == 0 && stats.spill_writes == 0 && stats.spill_reads == 0) return;
  report.add_counter(kTileEvictionsCounter, static_cast<double>(stats.evictions));
  report.add_counter(kTileSpillWritesCounter, static_cast<double>(stats.spill_writes));
  report.add_counter(kTileSpillReadsCounter, static_cast<double>(stats.spill_reads));
}

/// Far-field compression counters, folded per assembling run when
/// ExecutionConfig::storage.compression is enabled. Everything is additive
/// across runs — the mean block rank is deliberately stored as its numerator
/// (rank sum; divide by the block count to recover the mean), because a
/// ratio would not accumulate meaningfully on a shared PhaseReport.
inline constexpr const char* kLowRankBlocksCounter = "Low-rank far-field blocks";
inline constexpr const char* kLowRankTilesCounter = "Low-rank tiles";
inline constexpr const char* kCompressedStoredBytesCounter = "Compressed matrix bytes stored";
inline constexpr const char* kCompressedDenseBytesCounter = "Compressed matrix bytes (dense equivalent)";
inline constexpr const char* kFarFieldRankSumCounter = "Far-field block rank sum";
inline constexpr const char* kPairsSkippedCounter = "Element pairs skipped (far field)";
inline constexpr const char* kPairsSampledCounter = "Element pairs sampled (ACA)";

/// Fold one run's compression outcome into a report; dense runs (no blocks,
/// nothing skipped) contribute nothing.
inline void add_compression_counters(PhaseReport& report, const la::CompressionStats& stats,
                                     const bem::FarFieldStats& far_field) {
  if (stats.low_rank_blocks == 0 && far_field.pairs_skipped == 0) return;
  report.add_counter(kLowRankBlocksCounter, static_cast<double>(stats.low_rank_blocks));
  report.add_counter(kLowRankTilesCounter, static_cast<double>(stats.low_rank_tiles));
  report.add_counter(kCompressedStoredBytesCounter, static_cast<double>(stats.stored_bytes));
  report.add_counter(kCompressedDenseBytesCounter, static_cast<double>(stats.dense_bytes));
  report.add_counter(kFarFieldRankSumCounter, static_cast<double>(stats.rank_sum));
  report.add_counter(kPairsSkippedCounter, static_cast<double>(far_field.pairs_skipped));
  report.add_counter(kPairsSampledCounter, static_cast<double>(far_field.pairs_sampled));
}

/// Geometric-ordering counters, folded per assembling run when
/// ExecutionConfig::storage.compression.ordering == kGeometric. Additive
/// like everything on a PhaseReport: leaves and depth accumulate as sums —
/// divide either by the ordering count to recover a per-run mean.
inline constexpr const char* kOrderingsCounter = "Geometric DoF orderings";
inline constexpr const char* kOrderingLeavesCounter = "Ordering cluster leaves";
inline constexpr const char* kOrderingDepthCounter = "Ordering tree depth (sum)";

/// Fold one run's ordering summary into a report; unordered runs (no
/// cluster leaves) contribute nothing.
inline void add_ordering_counters(PhaseReport& report, const bem::OrderingStats& stats) {
  if (stats.cluster_leaves == 0) return;
  report.add_counter(kOrderingsCounter, 1.0);
  report.add_counter(kOrderingLeavesCounter, static_cast<double>(stats.cluster_leaves));
  report.add_counter(kOrderingDepthCounter, static_cast<double>(stats.tree_depth));
}

}  // namespace ebem::engine

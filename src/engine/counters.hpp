// Names of the session counters an Engine accumulates on its PhaseReport —
// shared constants so the analyze, solve and factor paths (and any test or
// report consumer) land on the same totals. The congruence-cache counter
// names live with their producer in src/bem/analysis.hpp.
#pragma once

namespace ebem::engine {

/// Incremented once per successful direct (Cholesky) factorization —
/// Engine::analyze/solve with SolverKind::kCholesky, and Engine::factor.
inline constexpr const char* kFactorizationsCounter = "Cholesky factorizations";

/// Incremented per right-hand side answered by a FactoredSystem (solve adds
/// one, solve_many adds the block width). Together with
/// kFactorizationsCounter this lets a session assert "k solves, one
/// factorization".
inline constexpr const char* kRhsSolvedCounter = "Right-hand sides solved";

/// Tile-pager counters, summed over the matrix store and the Cholesky
/// factor's working store of each run. All stay zero for fully resident
/// (in-memory) storage; with an ExecutionConfig::storage residency budget
/// they record how hard the out-of-core path worked — evictions, dirty
/// tiles written to the spill file, and tiles read back on checkout.
inline constexpr const char* kTileEvictionsCounter = "Tile evictions";
inline constexpr const char* kTileSpillWritesCounter = "Tile spill writes";
inline constexpr const char* kTileSpillReadsCounter = "Tile spill read-backs";

}  // namespace ebem::engine
